(* File size without the unix library. *)
let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n
