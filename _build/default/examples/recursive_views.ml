(* Recursive virtual views — the case SMOQE exists for.

   The bibliography schema nests sections inside sections; hiding the
   review plumbing and embargoed sections produces a view whose extraction
   paths need Kleene closure, and whose queries XPath alone could not be
   rewritten for (paper §1).

   Run with: dune exec examples/recursive_views.exe *)

module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Ismoqe = Smoqe.Ismoqe
module Dtd = Smoqe_xml.Dtd
module Tree = Smoqe_xml.Tree
module Pretty = Smoqe_rxpath.Pretty
module Ast = Smoqe_rxpath.Ast
module Derive = Smoqe_security.Derive
module Policy = Smoqe_security.Policy
module Bib = Smoqe_workload.Bib

let banner title = Printf.printf "\n=== %s ===\n" title

(* A policy that hides the entire section skeleton but re-grants paragraph
   access: paragraphs at ANY nesting depth are promoted to their book, so
   sigma(book, para) must traverse the hidden section* cycle — a Kleene
   star no plain XPath view definition could express. *)
let flatten_policy =
  match
    Policy.of_string Bib.dtd
      "ann(book, author) = N\n\
       ann(book, review) = N\n\
       ann(book, section) = N\n\
       ann(section, para) = Y\n"
  with
  | Ok p -> p
  | Error msg -> failwith msg

let () =
  banner "a recursive document schema";
  print_string (Ismoqe.schema_graph Bib.dtd);
  Printf.printf "recursive: %b\n" (Dtd.is_recursive Bib.dtd);

  banner "hiding a recursive region forces Kleene closure";
  let view = Derive.derive flatten_policy in
  (match Derive.sigma view ~parent:"book" ~child:"para" with
  | Some p -> Printf.printf "sigma(book, para) = %s\n" (Pretty.path_to_string p)
  | None -> failwith "para not exposed");
  print_string "\nview DTD:\n";
  print_string (Dtd.to_string (Derive.view_dtd view));

  banner "querying the flattened view";
  let doc = Bib.generate ~seed:41 ~n_books:3 ~section_depth:4 () in
  let engine = Engine.of_tree ~dtd:Bib.dtd doc in
  (match Engine.register_policy engine ~group:"readers" flatten_policy with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let reader =
    match Session.login engine (Session.Member "readers") with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  (match Session.run reader "book/para" with
  | Ok o ->
    Printf.printf
      "book/para on the view reaches %d paragraphs buried at any depth\n"
      (List.length o.Engine.answers);
    let deepest =
      List.fold_left (fun m n -> max m (Tree.depth doc n)) 0 o.Engine.answers
    in
    Printf.printf "deepest paragraph sat %d levels down in the document\n"
      deepest
  | Error msg -> failwith msg);

  banner "the embargo view (Bib.policy): conditional exposure";
  let engine2 = Engine.of_tree ~dtd:Bib.dtd doc in
  (match Engine.register_policy engine2 ~group:"public" Bib.policy with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let public =
    match Session.login engine2 (Session.Member "public") with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let count s q =
    match Session.run s q with
    | Ok o -> List.length o.Engine.answers
    | Error msg -> failwith msg
  in
  Printf.printf "public sections: %d (internal ones: %d)\n"
    (count public "//section")
    (count public "//section[title = 'internal']");
  Printf.printf "reviewer names reachable: %d\n" (count public "//reviewer");

  banner "rewriting stays linear even for recursive views";
  let step k =
    let rec build k =
      if k = 0 then Ast.Tag "para"
      else Ast.seq (Ast.Tag "section") (build (k - 1))
    in
    build k
  in
  List.iter
    (fun k ->
      let q = step k in
      match
        Engine.rewrite_only engine2 ~group:"public"
          (Pretty.path_to_string q)
      with
      | Ok mfa ->
        Printf.printf "query size %2d -> MFA size %4d\n" (Ast.size q)
          (Smoqe_automata.Mfa.size mfa)
      | Error msg -> failwith msg)
    [ 1; 2; 4; 8; 16 ]
