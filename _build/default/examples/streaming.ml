(* StAX mode on a document larger than you would want to hold as a DOM:
   the file is written to disk, then queried in a single sequential scan
   through the pull parser — the engine never builds the tree.

   Run with: dune exec examples/streaming.exe *)

module Engine = Smoqe.Engine
module Stats = Smoqe_hype.Stats
module Hospital = Smoqe_workload.Hospital
module Serializer = Smoqe_xml.Serializer

let () =
  (* ~60k nodes of hospital records, streamed to a temp file. *)
  let doc = Hospital.generate ~seed:99 ~n_patients:3000 ~recursion_depth:2 () in
  let path = Filename.temp_file "smoqe_stream" ".xml" in
  Serializer.to_file ~indent:false path doc;
  let size_kb = (Unix_size.file_size path + 1023) / 1024 in
  Printf.printf "wrote %s (%d KiB, %d nodes)\n" path size_kb
    (Smoqe_xml.Tree.n_nodes doc);

  let engine =
    match Engine.of_file path with Ok e -> e | Error msg -> failwith msg
  in

  let run query =
    match Engine.query engine ~mode:Engine.Stax query with
    | Error msg -> failwith msg
    | Ok o ->
      Printf.printf
        "%-55s -> %5d answers | %d pass over the file, %d/%d nodes processed\n"
        query
        (List.length o.Engine.answers)
        o.Engine.stats.Stats.passes_over_data
        o.Engine.stats.Stats.nodes_alive
        (o.Engine.stats.Stats.nodes_entered + Stats.total_skipped o.Engine.stats)
  in
  run "patient/pname";
  run "//medication";
  run "patient[visit/treatment/medication = 'autism']/pname";
  run Smoqe_workload.Queries.q0;

  (* DOM and StAX agree on everything above. *)
  let agree query =
    match
      ( Engine.query engine ~mode:Engine.Dom query,
        Engine.query engine ~mode:Engine.Stax query )
    with
    | Ok a, Ok b -> a.Engine.answers = b.Engine.answers
    | _ -> false
  in
  Printf.printf "\nDOM/StAX agreement on the suite: %b\n"
    (List.for_all agree (List.map snd Smoqe_workload.Queries.suite));
  Sys.remove path
