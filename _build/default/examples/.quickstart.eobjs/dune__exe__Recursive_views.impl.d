examples/recursive_views.ml: List Printf Smoqe Smoqe_automata Smoqe_rxpath Smoqe_security Smoqe_workload Smoqe_xml
