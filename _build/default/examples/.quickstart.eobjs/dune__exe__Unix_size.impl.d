examples/unix_size.ml:
