examples/quickstart.mli:
