examples/secure_store.mli:
