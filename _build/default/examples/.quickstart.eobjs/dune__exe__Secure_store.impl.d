examples/secure_store.ml: Array Filename List Printf Smoqe Smoqe_hype Smoqe_security Smoqe_store Smoqe_workload Smoqe_xml String Sys
