examples/streaming.mli:
