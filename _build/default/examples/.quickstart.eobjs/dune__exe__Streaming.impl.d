examples/streaming.ml: Filename List Printf Smoqe Smoqe_hype Smoqe_workload Smoqe_xml Sys Unix_size
