examples/quickstart.ml: List Printf Smoqe Smoqe_hype
