examples/hospital_security.mli:
