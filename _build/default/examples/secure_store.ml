(* A persistent multi-tenant deployment: one document on disk, a policy
   per user group, sessions enforcing who sees what — across restarts.

   Run with: dune exec examples/secure_store.exe *)

module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Store = Smoqe_store.Store
module Policy = Smoqe_security.Policy
module Hospital = Smoqe_workload.Hospital

let banner title = Printf.printf "\n=== %s ===\n" title

let ok = function Ok v -> v | Error msg -> failwith msg

(* A second group: billing sees visit dates but neither names nor medical
   content. *)
let billing_policy =
  ok
    (Policy.of_string Hospital.dtd
       "ann(patient, pname) = N\n\
        ann(visit, treatment) = N\n")

let () =
  let dir = Filename.temp_file "smoqe_demo_store" "" in
  Sys.remove dir;

  banner "initialize the store";
  let doc = Hospital.generate ~seed:404 ~n_patients:20 ~recursion_depth:2 () in
  let store = ok (Store.create ~dir ~dtd:Hospital.dtd doc) in
  ok (Store.add_policy store ~group:"researchers" Hospital.policy);
  ok (Store.add_policy store ~group:"billing" billing_policy);
  Printf.printf "created %s with groups: %s\n" dir
    (String.concat ", " (Store.groups store));

  banner "a restart later: reopen from disk";
  let store = ok (Store.open_dir dir) in
  Printf.printf "document: %d nodes; index loaded: %b; groups: %s\n"
    (Smoqe_xml.Tree.n_nodes (Engine.document (Store.engine store)))
    (Engine.index (Store.engine store) <> None)
    (String.concat ", " (Store.groups store));

  banner "three users, three worlds";
  let admin = ok (Store.login store Session.Admin) in
  let researcher = ok (Store.login store (Session.Member "researchers")) in
  let billing = ok (Store.login store (Session.Member "billing")) in
  let count s q =
    match Session.run s q with
    | Ok o -> string_of_int (List.length o.Engine.answers)
    | Error msg -> "error: " ^ msg
  in
  Printf.printf "%-22s %-10s %-12s %-10s\n" "query" "admin" "researcher"
    "billing";
  List.iter
    (fun q ->
      Printf.printf "%-22s %-10s %-12s %-10s\n" q (count admin q)
        (count researcher q) (count billing q))
    [ "//pname"; "//medication"; "//date"; "//patient" ];

  banner "static refusal: the schema knows before the data is read";
  (match Session.run researcher "//pname" with
  | Ok o ->
    Printf.printf
      "researcher //pname: %d answers, %d passes over the document \
       (rejected against the view schema)\n"
      (List.length o.Engine.answers)
      o.Engine.stats.Smoqe_hype.Stats.passes_over_data
  | Error msg -> failwith msg);

  banner "policy revocation";
  ok (Store.remove_policy store ~group:"billing");
  (match Store.login store (Session.Member "billing") with
  | Error msg -> Printf.printf "billing login now fails: %s\n" msg
  | Ok _ -> failwith "revoked group can still log in");

  (* tidy up the temp store *)
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  rm_rf dir
