(* The paper's running example, end to end (Fig. 3):

   1. the hospital DTD and the access-control policy S0;
   2. automatic derivation of the view specification sigma-0 and view DTD;
   3. an administrator and a researcher querying the same document —
      the researcher's queries are rewritten through the virtual view;
   4. proof that nothing the policy hides can be reached.

   Run with: dune exec examples/hospital_security.exe *)

module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Ismoqe = Smoqe.Ismoqe
module Serializer = Smoqe_xml.Serializer
module Tree = Smoqe_xml.Tree
module Derive = Smoqe_security.Derive
module Materialize = Smoqe_security.Materialize
module Hospital = Smoqe_workload.Hospital

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  banner "document schema (Fig. 3a)";
  print_string (Ismoqe.schema_graph Hospital.dtd);

  banner "policy S0 and derived view (Fig. 3b-d)";
  let view = Derive.derive Hospital.policy in
  print_string (Ismoqe.view_specification view);

  (* A hospital with patients, some treated for autism. *)
  let doc = Hospital.generate ~seed:2006 ~n_patients:8 ~recursion_depth:2 () in
  let engine = Engine.of_tree ~dtd:Hospital.dtd doc in
  (match Engine.register_policy engine ~group:"researchers" Hospital.policy with
  | Ok () -> ()
  | Error msg -> failwith msg);

  banner "two sessions, one document";
  let admin =
    match Session.login engine Session.Admin with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let researcher =
    match Session.login engine (Session.Member "researchers") with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let count session query =
    match Session.run session query with
    | Ok o -> List.length o.Engine.answers
    | Error msg -> failwith (query ^ ": " ^ msg)
  in
  Printf.printf "admin       //pname      -> %d patient names\n"
    (count admin "//pname");
  Printf.printf "researcher  //pname      -> %d  (names are hidden)\n"
    (count researcher "//pname");
  Printf.printf "admin       //medication -> %d medications\n"
    (count admin "//medication");
  Printf.printf
    "researcher  //medication -> %d  (only autism patients' records)\n"
    (count researcher "//medication");

  banner "a view query and its rewriting (Fig. 4)";
  let q = "patient[treatment/medication = 'autism']/treatment/medication" in
  (match Engine.rewrite_only engine ~group:"researchers" q with
  | Ok mfa ->
    Printf.printf "view query: %s\nrewritten MFA: %d states, %d transitions\n"
      q
      (Smoqe_automata.Mfa.n_states mfa)
      (Smoqe_automata.Mfa.n_transitions mfa)
  | Error msg -> failwith msg);
  (match Session.run researcher q with
  | Ok o ->
    Printf.printf "answers (no view was materialized):\n";
    List.iter
      (fun n ->
        Printf.printf "  node %d: %s\n" n
          (Serializer.subtree_to_string ~indent:false doc n))
      o.Engine.answers
  | Error msg -> failwith msg);

  banner "the rewriting contract: Q'(T) = Q(V(T))";
  let parse s =
    match Smoqe_rxpath.Parser.path_of_string s with
    | Ok p -> p
    | Error m -> failwith m
  in
  let through_engine =
    match Session.run researcher q with
    | Ok o -> o.Engine.answers
    | Error m -> failwith m
  in
  let through_materialization = Materialize.doc_answers view doc (parse q) in
  Printf.printf "virtual = materialized: %b (%d answers)\n"
    (List.sort_uniq compare through_engine = through_materialization)
    (List.length through_materialization);

  banner "non-disclosure";
  let m = Materialize.materialize view doc in
  let leaked tag = Tree.id_of_tag m.Materialize.tree tag <> None in
  List.iter
    (fun tag -> Printf.printf "view contains <%s>? %b\n" tag (leaked tag))
    [ "pname"; "visit"; "date"; "test"; "medication" ]
