(* Quickstart: load a document, pose Regular XPath queries, inspect the
   answers and the engine's statistics.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Smoqe.Engine
module Ismoqe = Smoqe.Ismoqe

let document =
  {|<library>
      <shelf floor="1">
        <book><title>A Tale of Queries</title><year>2004</year></book>
        <book><title>The Automaton</title><year>2006</year></book>
      </shelf>
      <shelf floor="2">
        <box>
          <book><title>Hidden Gem</title><year>2006</year></book>
        </box>
      </shelf>
    </library>|}

let () =
  (* Parse errors come back as values, with a location. *)
  (match Engine.of_string "<library><oops></library>" with
  | Error msg -> Printf.printf "malformed input is rejected: %s\n\n" msg
  | Ok _ -> assert false);

  let engine =
    match Engine.of_string document with
    | Ok e -> e
    | Error msg -> failwith msg
  in

  let show query =
    match Engine.query engine query with
    | Error msg -> Printf.printf "error for %s: %s\n" query msg
    | Ok outcome ->
      Printf.printf "Q: %s\n" query;
      List.iter (fun xml -> Printf.printf "   %s\n" xml) outcome.Engine.answer_xml;
      Printf.printf "\n"
  in

  (* 1. A plain path query. *)
  show "shelf/book/title";

  (* 2. The descendant axis finds books wherever they hide. *)
  show "//book[year = '2006']/title";

  (* 3. General Kleene closure — Regular XPath's extension over XPath. *)
  show "(shelf | box)*/book/title";

  (* 4. Streaming (StAX) mode: same answers, one sequential scan. *)
  (match
     ( Engine.query engine ~mode:Engine.Dom "//book/title",
       Engine.query engine ~mode:Engine.Stax "//book/title" )
   with
  | Ok dom, Ok stax ->
    Printf.printf "DOM and StAX agree: %b (%d answers; StAX made %d pass)\n"
      (dom.Engine.answers = stax.Engine.answers)
      (List.length dom.Engine.answers)
      stax.Engine.stats.Smoqe_hype.Stats.passes_over_data
  | _ -> assert false);

  (* 5. Statistics: HyPE visits each node at most once. *)
  match Engine.query engine "//book[year = '2004']" with
  | Ok outcome ->
    Printf.printf "\nengine counters for the last query:\n%s\n"
      (Ismoqe.stats_table outcome.Engine.stats)
  | Error msg -> failwith msg
