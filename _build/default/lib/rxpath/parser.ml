exception Error of int * string

type token =
  | NAME of string
  | STRING of string
  | DOT
  | STAR
  | SLASH
  | DSLASH
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | PIPE
  | EQ
  | PLUS
  | QMARK
  | AND
  | OR
  | NOT
  | TEXT_FN
  | TRUE_FN
  | EOF

(* --- Lexer ------------------------------------------------------------ *)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit off tok = toks := (off, tok) :: !toks in
  let i = ref 0 in
  while !i < n do
    let off = !i in
    let c = src.[off] in
    if is_ws c then incr i
    else if c = '/' then
      if off + 1 < n && src.[off + 1] = '/' then begin
        emit off DSLASH;
        i := off + 2
      end
      else begin
        emit off SLASH;
        incr i
      end
    else if c = '(' then (emit off LPAREN; incr i)
    else if c = ')' then (emit off RPAREN; incr i)
    else if c = '[' then (emit off LBRACK; incr i)
    else if c = ']' then (emit off RBRACK; incr i)
    else if c = '|' then (emit off PIPE; incr i)
    else if c = '=' then (emit off EQ; incr i)
    else if c = '*' then (emit off STAR; incr i)
    else if c = '+' then (emit off PLUS; incr i)
    else if c = '?' then (emit off QMARK; incr i)
    else if c = '.' then (emit off DOT; incr i)
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let j = ref (off + 1) in
      while !j < n && src.[!j] <> quote do
        incr j
      done;
      if !j >= n then raise (Error (off, "unterminated string literal"));
      emit off (STRING (String.sub src (off + 1) (!j - off - 1)));
      i := !j + 1
    end
    else if is_name_start c then begin
      let j = ref off in
      while !j < n && is_name_char src.[!j] do
        incr j
      done;
      let name = String.sub src off (!j - off) in
      i := !j;
      (* Function-call forms: text(), true(). *)
      let followed_by_parens () =
        let k = ref !i in
        while !k < n && is_ws src.[!k] do
          incr k
        done;
        if !k < n && src.[!k] = '(' then begin
          let k2 = ref (!k + 1) in
          while !k2 < n && is_ws src.[!k2] do
            incr k2
          done;
          if !k2 < n && src.[!k2] = ')' then begin
            i := !k2 + 1;
            true
          end
          else false
        end
        else false
      in
      match name with
      | "and" -> emit off AND
      | "or" -> emit off OR
      | "not" -> emit off NOT
      | "text" when followed_by_parens () -> emit off TEXT_FN
      | "true" when followed_by_parens () -> emit off TRUE_FN
      | _ -> emit off (NAME name)
    end
    else raise (Error (off, Printf.sprintf "unexpected character %C" c))
  done;
  emit n EOF;
  Array.of_list (List.rev !toks)

(* --- Parser ----------------------------------------------------------- *)

type state = { toks : (int * token) array; mutable pos : int }

let peek st = snd st.toks.(st.pos)
let offset st = fst st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let err st msg = raise (Error (offset st, msg))

let expect st tok msg =
  if peek st = tok then advance st else err st msg

let rec parse_path st =
  let first = parse_seq st in
  let rec loop acc =
    match peek st with
    | PIPE ->
      advance st;
      loop (Ast.union acc (parse_seq st))
    | _ -> acc
  in
  loop first

and parse_seq st =
  (* Optional leading axis: '/' is a no-op (root-relative queries), '//'
     prefixes the descendant closure. *)
  let first =
    match peek st with
    | SLASH ->
      advance st;
      parse_step st
    | DSLASH ->
      advance st;
      Ast.seq Ast.descendant_or_self (parse_step st)
    | _ -> parse_step st
  in
  let rec loop acc =
    match peek st with
    | SLASH ->
      advance st;
      loop (Ast.seq acc (parse_step st))
    | DSLASH ->
      advance st;
      loop (Ast.seq acc (Ast.seq Ast.descendant_or_self (parse_step st)))
    | _ -> acc
  in
  loop first

and parse_step st =
  let primary, grouped =
    match peek st with
    | NAME s -> advance st; (Ast.Tag s, false)
    | STAR -> advance st; (Ast.Wildcard, false)
    | DOT -> advance st; (Ast.Self, false)
    | TEXT_FN -> advance st; (Ast.Text, false)
    | LPAREN ->
      advance st;
      let p = parse_path st in
      expect st RPAREN "expected ')'";
      (p, true)
    | _ -> err st "expected a step"
  in
  parse_postfix st primary grouped

and parse_postfix st p grouped =
  match peek st with
  | STAR when grouped ->
    advance st;
    parse_postfix st (Ast.star p) true
  | PLUS when grouped ->
    advance st;
    parse_postfix st (Ast.plus p) true
  | QMARK when grouped ->
    advance st;
    parse_postfix st (Ast.opt p) true
  | LBRACK ->
    advance st;
    let q = parse_qual st in
    expect st RBRACK "expected ']'";
    parse_postfix st (Ast.filter p q) true
  | _ -> p

and parse_qual st =
  let first = parse_and_qual st in
  let rec loop acc =
    match peek st with
    | OR ->
      advance st;
      loop (Ast.q_or acc (parse_and_qual st))
    | _ -> acc
  in
  loop first

and parse_and_qual st =
  let first = parse_not_qual st in
  let rec loop acc =
    match peek st with
    | AND ->
      advance st;
      loop (Ast.q_and acc (parse_not_qual st))
    | _ -> acc
  in
  loop first

and parse_not_qual st =
  match peek st with
  | NOT ->
    advance st;
    expect st LPAREN "expected '(' after not";
    let q = parse_qual st in
    expect st RPAREN "expected ')'";
    Ast.q_not q
  | TRUE_FN ->
    advance st;
    Ast.True
  | LPAREN ->
    (* Ambiguous: '(path)...' continuing as a path atom, or '(qual)'.
       Try the path reading first; fall back to a parenthesized qual. *)
    let save = st.pos in
    (try parse_atom st
     with Error _ ->
       st.pos <- save;
       advance st;
       let q = parse_qual st in
       expect st RPAREN "expected ')'";
       q)
  | _ -> parse_atom st

and parse_atom st =
  let p = parse_path st in
  match peek st with
  | EQ ->
    advance st;
    (match peek st with
    | STRING s ->
      advance st;
      Ast.Value_eq (p, s)
    | _ -> err st "expected a string literal after '='")
  | _ -> Ast.Exists p

let finish st v =
  match peek st with
  | EOF -> v
  | _ -> err st "trailing input"

let path_of_string_exn src =
  let st = { toks = tokenize src; pos = 0 } in
  finish st (parse_path st)

let wrap f src =
  match f src with
  | v -> Ok v
  | exception Error (off, msg) ->
    Result.Error (Printf.sprintf "at offset %d: %s" off msg)

let path_of_string src = wrap path_of_string_exn src

let qual_of_string src =
  wrap
    (fun src ->
      let st = { toks = tokenize src; pos = 0 } in
      finish st (parse_qual st))
    src
