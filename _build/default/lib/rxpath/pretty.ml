open Ast

(* Precedences: 0 union, 1 seq, 2 postfix/atom. *)

let quote c =
  if String.contains c '\'' then Printf.sprintf "\"%s\"" c
  else Printf.sprintf "'%s'" c

let rec pp_prec prec ppf p =
  match p with
  | Self -> Fmt.string ppf "."
  | Tag s -> Fmt.string ppf s
  | Wildcard -> Fmt.string ppf "*"
  | Text -> Fmt.string ppf "text()"
  | Seq (a, b) ->
    let body ppf = Fmt.pf ppf "%a/%a" (pp_prec 1) a (pp_prec 1) b in
    if prec > 1 then Fmt.pf ppf "(%t)" body else body ppf
  | Union (a, b) ->
    let body ppf = Fmt.pf ppf "%a | %a" (pp_prec 0) a (pp_prec 0) b in
    if prec > 0 then Fmt.pf ppf "(%t)" body else body ppf
  | Star p -> Fmt.pf ppf "(%a)*" (pp_prec 0) p
  | Filter (p, q) -> Fmt.pf ppf "%a[%a]" (pp_prec 2) p pp_qual q

and pp_qual ppf q = pp_qual_prec 0 ppf q

and pp_qual_prec prec ppf q =
  match q with
  | True -> Fmt.string ppf "true()"
  | Exists p -> pp_prec 0 ppf p
  | Value_eq (p, c) -> Fmt.pf ppf "%a = %s" (pp_prec 1) p (quote c)
  | Not q -> Fmt.pf ppf "not(%a)" (pp_qual_prec 0) q
  | And (a, b) ->
    let body ppf =
      Fmt.pf ppf "%a and %a" (pp_qual_prec 1) a (pp_qual_prec 1) b
    in
    if prec > 1 then Fmt.pf ppf "(%t)" body else body ppf
  | Or (a, b) ->
    let body ppf =
      Fmt.pf ppf "%a or %a" (pp_qual_prec 0) a (pp_qual_prec 0) b
    in
    if prec > 0 then Fmt.pf ppf "(%t)" body else body ppf

let pp_path ppf p = pp_prec 0 ppf p
let path_to_string p = Fmt.str "%a" pp_path p
let qual_to_string q = Fmt.str "%a" pp_qual q
