type path =
  | Self
  | Tag of string
  | Wildcard
  | Text
  | Seq of path * path
  | Union of path * path
  | Star of path
  | Filter of path * qual

and qual =
  | True
  | Exists of path
  | Value_eq of path * string
  | Not of qual
  | And of qual * qual
  | Or of qual * qual

(* [seq] and [union] normalize to right-nested form, so that syntactically
   different parses of the same expression compare equal. *)
let rec seq a b =
  match a, b with
  | Self, p | p, Self -> p
  | Seq (x, y), _ -> seq x (seq y b)
  | _ -> Seq (a, b)

let union a b =
  let rec branches acc = function
    | Union (x, y) -> branches (branches acc x) y
    | p -> if List.mem p acc then acc else acc @ [ p ]
  in
  let rec rebuild = function
    | [] -> invalid_arg "Ast.union"
    | [ p ] -> p
    | p :: rest -> Union (p, rebuild rest)
  in
  rebuild (branches (branches [] a) b)

let star p =
  match p with
  | Star _ as s -> s
  | Self -> Self
  | _ -> Star p

let filter p q = match q with True -> p | _ -> Filter (p, q)

let descendant_or_self = Star Wildcard

let plus p = seq p (star p)

let opt p = match p with Self -> Self | _ -> Union (Self, p)

let rec q_and a b =
  match a, b with
  | True, q | q, True -> q
  | And (x, y), _ -> q_and x (q_and y b)
  | _ -> And (a, b)

let q_or a b =
  let rec branches acc = function
    | Or (x, y) -> branches (branches acc x) y
    | q -> if List.mem q acc then acc else acc @ [ q ]
  in
  let rec rebuild = function
    | [] -> invalid_arg "Ast.q_or"
    | [ q ] -> q
    | q :: rest -> Or (q, rebuild rest)
  in
  rebuild (branches (branches [] a) b)

let q_not = function Not q -> q | q -> Not q

let rec size = function
  | Self | Tag _ | Wildcard | Text -> 1
  | Seq (a, b) | Union (a, b) -> 1 + size a + size b
  | Star p -> 1 + size p
  | Filter (p, q) -> 1 + size p + qual_size q

and qual_size = function
  | True -> 1
  | Exists p -> 1 + size p
  | Value_eq (p, _) -> 1 + size p
  | Not q -> 1 + qual_size q
  | And (a, b) | Or (a, b) -> 1 + qual_size a + qual_size b

let equal (a : path) (b : path) = a = b
let compare (a : path) (b : path) = Stdlib.compare a b

let tags p =
  let add acc s = if List.mem s acc then acc else acc @ [ s ] in
  let rec go_p acc = function
    | Self | Wildcard | Text -> acc
    | Tag s -> add acc s
    | Seq (a, b) | Union (a, b) -> go_p (go_p acc a) b
    | Star p -> go_p acc p
    | Filter (p, q) -> go_q (go_p acc p) q
  and go_q acc = function
    | True -> acc
    | Exists p | Value_eq (p, _) -> go_p acc p
    | Not q -> go_q acc q
    | And (a, b) | Or (a, b) -> go_q (go_q acc a) b
  in
  go_p [] p
