(** Parser for Regular XPath concrete syntax.

    Grammar (postfix [*], [+], [?] apply to parenthesized groups and
    bracketed filters, matching the paper's notation [(parent/patient)*]):

    {v
    path  ::= seq ('|' seq)*
    seq   ::= ('/' | '//')? step (('/' | '//') step)*
    step  ::= primary ('*' | '+' | '?' | '[' qual ']')*
    primary ::= NAME | '*' | '.' | 'text()' | '(' path ')'
    qual  ::= aq ('or' aq)*
    aq    ::= nq ('and' nq)*
    nq    ::= 'not' '(' qual ')' | 'true()' | '(' qual ')' | atom
    atom  ::= path ('=' STRING)?
    v}

    [p//q] expands to [p/D/q] where [D] is the closure of the wildcard
    step; a leading [/] is ignored (queries are root-relative); a leading
    [//] prefixes that closure.  String literals use
    single or double quotes without escapes.  [and], [or] and [not] are
    reserved words and cannot be used as element names. *)

exception Error of int * string
(** [Error (offset, message)] — byte offset into the input. *)

val path_of_string : string -> (Ast.path, string) result

val path_of_string_exn : string -> Ast.path
(** Raises {!Error}. *)

val qual_of_string : string -> (Ast.qual, string) result
