(** Printing Regular XPath back to concrete syntax.

    The output re-parses to the same AST (a qcheck property), with minimal
    parenthesization: union binds weakest, then composition, then the
    postfix star and qualifiers. *)

val pp_path : Format.formatter -> Ast.path -> unit
val pp_qual : Format.formatter -> Ast.qual -> unit

val path_to_string : Ast.path -> string
val qual_to_string : Ast.qual -> string
