(** Regular XPath abstract syntax.

    Regular XPath [Marx, EDBT'04] is XPath's child-axis fragment extended
    with general Kleene closure [(p)*] — the mild extension under which
    rewriting over recursively defined views is closed (paper, §1).  A path
    denotes a binary relation over document nodes; a query's answer is the
    image of the root.

    The descendant-or-self axis [//] is surface syntax: the parser expands
    [p//q] into the composition of [p], the wildcard closure, and [q]. *)

type path =
  | Self  (** [.] — the identity relation (ε). *)
  | Tag of string  (** a child element with this tag *)
  | Wildcard  (** [*] — any child element *)
  | Text  (** [text()] — a child text node *)
  | Seq of path * path  (** [p/q] — composition *)
  | Union of path * path  (** [p | q] *)
  | Star of path  (** [(p)*] — reflexive-transitive closure *)
  | Filter of path * qual  (** [p\[q\]] — restrict the targets *)

and qual =
  | True
  | Exists of path  (** [\[p\]] — some node is reachable via [p] *)
  | Value_eq of path * string
      (** [\[p = 'c'\]] — some node reachable via [p] has value [c] (a text
          node's content, or the concatenation of an element's immediate
          text children).  [text() = 'c'] is [Value_eq (Text, c)]. *)
  | Not of qual
  | And of qual * qual
  | Or of qual * qual

val seq : path -> path -> path
(** Composition, normalized: units eliminated ([seq Self p = p]) and
    nesting reassociated to the right, so different parses of one
    expression compare equal. *)

val union : path -> path -> path
(** Union, right-nested, with adjacent duplicates collapsed. *)

val q_and : qual -> qual -> qual
(** Conjunction, right-nested, with [True] units eliminated. *)

val q_or : qual -> qual -> qual

val q_not : qual -> qual
(** Negation with double-negation elimination. *)

val star : path -> path
(** Closure with idempotence: [star (star p) = star p]. *)

val filter : path -> qual -> path
(** Filtering with [True] elimination. *)

val descendant_or_self : path
(** The closure of the wildcard step — what [//] expands to. *)

val plus : path -> path
(** [(p)+ = p/(p)*]. *)

val opt : path -> path
(** [(p)? = . | p]. *)

val size : path -> int
(** Number of AST constructors, qualifiers included — the size measure of
    the rewriting experiment (paper §3, Rewriter). *)

val qual_size : qual -> int

val equal : path -> path -> bool
val compare : path -> path -> int

val tags : path -> string list
(** All tags mentioned, in first-occurrence order. *)
