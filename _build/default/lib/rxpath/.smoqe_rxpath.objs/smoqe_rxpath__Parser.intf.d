lib/rxpath/parser.mli: Ast
