lib/rxpath/semantics.ml: Ast Hashtbl Int Set Smoqe_xml String
