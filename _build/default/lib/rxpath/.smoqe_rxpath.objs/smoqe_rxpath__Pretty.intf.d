lib/rxpath/pretty.mli: Ast Format
