lib/rxpath/ast.ml: List Stdlib
