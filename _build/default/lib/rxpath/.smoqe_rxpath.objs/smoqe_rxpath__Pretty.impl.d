lib/rxpath/pretty.ml: Ast Fmt Printf String
