lib/rxpath/semantics.mli: Ast Set Smoqe_xml
