lib/rxpath/parser.ml: Array Ast List Printf Result String
