lib/rxpath/ast.mli:
