(** Reference set semantics for Regular XPath.

    Direct, obviously-correct implementation of the relational semantics:
    paths map node sets to node sets, closure by fixpoint, qualifiers by
    memoized recursive evaluation.  This module is the oracle against which
    the MFA/HyPE engine, the StAX engine and the baselines are tested; it is
    also the [Naive] baseline of experiment E1. *)

module Node_set : Set.S with type elt = int

val eval :
  Smoqe_xml.Tree.t -> Ast.path -> from:Node_set.t -> Node_set.t
(** Image of [from] under the path relation. *)

val holds : Smoqe_xml.Tree.t -> Ast.qual -> Smoqe_xml.Tree.node -> bool

val answers : Smoqe_xml.Tree.t -> Ast.path -> Node_set.t
(** [eval] from the root — the answer of the query. *)

val answer_list : Smoqe_xml.Tree.t -> Ast.path -> int list
(** Answers in document order. *)
