lib/robust/budget.mli:
