lib/robust/error.mli: Format
