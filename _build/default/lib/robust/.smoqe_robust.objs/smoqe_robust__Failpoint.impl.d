lib/robust/failpoint.ml: Hashtbl List Printf String Sys
