lib/robust/error.ml: Budget Failpoint Fmt Printexc Printf
