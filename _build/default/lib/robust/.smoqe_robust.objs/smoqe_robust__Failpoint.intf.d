lib/robust/failpoint.mli:
