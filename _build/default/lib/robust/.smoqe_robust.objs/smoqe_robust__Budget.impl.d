lib/robust/budget.ml: List Option Printf String Unix
