type t = {
  deadline : float; (* absolute, seconds since the epoch; infinity = none *)
  timeout_ms : int option;
  nodes_limit : int; (* max_int = unlimited: the hot compare never fires *)
  max_nodes : int option;
  max_cans : int option;
  max_states : int option;
  max_depth : int option;
  mutable nodes : int;
}

exception Exceeded of { what : string; limit : string }

let exceeded ~what ~limit = raise (Exceeded { what; limit })

let create ?timeout_ms ?max_nodes ?max_cans ?max_states ?max_depth () =
  let deadline =
    match timeout_ms with
    | None -> infinity
    | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.)
  in
  { deadline; timeout_ms;
    nodes_limit = Option.value max_nodes ~default:max_int;
    max_nodes; max_cans; max_states; max_depth; nodes = 0 }

let check_deadline t =
  if Unix.gettimeofday () > t.deadline then
    exceeded ~what:"timeout_ms"
      ~limit:(string_of_int (Option.value t.timeout_ms ~default:0) ^ "ms")

(* The hot-path check: one increment and two int compares per node; the
   clock is read only every 256 ticks. *)
let tick_node t =
  let n = t.nodes + 1 in
  t.nodes <- n;
  if n > t.nodes_limit then
    exceeded ~what:"max_nodes" ~limit:(string_of_int t.nodes_limit);
  if n land 255 = 0 then check_deadline t

(* Batched form for the evaluators: the caller counts locally and settles
   every [k] units, so the per-node cost is a single local increment. *)
let tick_nodes t k =
  let n = t.nodes + k in
  t.nodes <- n;
  if n > t.nodes_limit then
    exceeded ~what:"max_nodes" ~limit:(string_of_int t.nodes_limit);
  if n lsr 8 > (n - k) lsr 8 then check_deadline t

let check_depth t depth =
  match t.max_depth with
  | Some m when depth > m -> exceeded ~what:"max_depth" ~limit:(string_of_int m)
  | Some _ | None -> ()

let check_cans t n =
  match t.max_cans with
  | Some m when n > m -> exceeded ~what:"max_cans" ~limit:(string_of_int m)
  | Some _ | None -> ()

let check_states t n =
  match t.max_states with
  | Some m when n > m -> exceeded ~what:"max_states" ~limit:(string_of_int m)
  | Some _ | None -> ()

let nodes_scanned t = t.nodes

let describe t =
  let dims =
    List.filter_map
      (fun (name, v) -> Option.map (fun v -> Printf.sprintf "%s=%d" name v) v)
      [
        ("timeout_ms", t.timeout_ms);
        ("max_nodes", t.max_nodes);
        ("max_cans", t.max_cans);
        ("max_states", t.max_states);
        ("max_depth", t.max_depth);
      ]
  in
  match dims with [] -> "unlimited" | _ -> String.concat ", " dims
