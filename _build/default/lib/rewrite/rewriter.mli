(** Query rewriting over virtual views, in MFA form (paper §3, Rewriter).

    Given a security view [V] and a user query [Q] over the view schema,
    [rewrite V Q] builds an MFA [M] over the {e document} such that running
    [M] on any document [T] yields exactly [Q(V(T))] — without ever
    materializing [V].

    Construction: the query is compiled to an MFA over the view alphabet;
    its states are then paired with view element types, and every view
    transition on a type [B] in context [A] is replaced by a spliced-in
    copy of the extraction automaton of [sigma(A, B)].  Qualifiers and
    their atoms are instantiated per context type.  The result is linear in
    the size of [Q] (for a fixed view) — the property experiment E5
    contrasts with the exponential expression-level rewriting of
    {!Expr_rewriter}. *)

val rewrite : Smoqe_security.Derive.view -> Smoqe_rxpath.Ast.path ->
  Smoqe_automata.Mfa.t
(** The returned MFA is evaluated with the ordinary HyPE engine; its
    answers are document node ids (each the image of a view answer). *)
