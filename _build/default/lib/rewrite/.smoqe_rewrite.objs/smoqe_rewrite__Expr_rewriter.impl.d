lib/rewrite/expr_rewriter.ml: Hashtbl List Option Smoqe_rxpath Smoqe_security Smoqe_xml
