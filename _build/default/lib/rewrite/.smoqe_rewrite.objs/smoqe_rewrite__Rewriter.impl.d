lib/rewrite/rewriter.ml: Array Hashtbl List Smoqe_automata Smoqe_rxpath Smoqe_security Smoqe_xml
