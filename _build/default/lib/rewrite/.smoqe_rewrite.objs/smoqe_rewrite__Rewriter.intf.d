lib/rewrite/rewriter.mli: Smoqe_automata Smoqe_rxpath Smoqe_security
