lib/rewrite/expr_rewriter.mli: Smoqe_rxpath Smoqe_security
