(** Expression-level view rewriting — the approach SMOQE {e avoids}.

    Rewriting a view query into a plain Regular XPath expression requires
    tracking, for every subexpression, the set of view types it can end at,
    and composing per-type continuations; unions multiply through
    compositions and Kleene closures, so the output can be exponential in
    the query size (paper §3, Rewriter: "the size of Q', if directly
    represented as Regular XPath expressions, may be exponential").

    This module implements that direct rewriting faithfully so experiment
    E5 can measure the blow-up against the linear MFA of {!Rewriter}.  It
    is also a second correctness oracle: the produced expression, evaluated
    with the reference semantics, must agree with the MFA.

    The result value shares subterms internally (it is a DAG in memory),
    so sizes are accounted as the {e expanded} tree size — what writing the
    expression out would cost — and tracked incrementally: walking the
    result with a naive size function may itself take exponential time. *)

exception Too_large of float
(** Raised when the expanded size exceeds the budget; carries the size
    reached. *)

val rewrite :
  ?max_size:float ->
  Smoqe_security.Derive.view ->
  Smoqe_rxpath.Ast.path ->
  Smoqe_rxpath.Ast.path
(** Document-level expression equivalent to the view query.
    [max_size] (default [1e6]) bounds the expanded size of every
    intermediate expression. *)

val rewrite_sized :
  ?max_size:float ->
  Smoqe_security.Derive.view ->
  Smoqe_rxpath.Ast.path ->
  Smoqe_rxpath.Ast.path * float
(** Also return the expanded tree size of the result. *)
