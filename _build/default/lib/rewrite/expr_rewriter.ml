module Ast = Smoqe_rxpath.Ast
module Dtd = Smoqe_xml.Dtd
module Derive = Smoqe_security.Derive

exception Too_large of float

type ptype =
  | Elem_t of string
  | Text_t

(* Expressions paired with their expanded (tree) size.  Results share
   subterms in memory, so sizes are threaded through construction instead
   of recomputed — a naive traversal of the shared structure would itself
   be exponential. *)
type sized = {
  expr : Ast.path;
  size : float;
}

type sized_qual = {
  q : Ast.qual;
  q_size : float;
}

(* Entries: (exit type, expression) pairs for a rewritten subexpression.
   Deliberately NOT merged per exit type: merging by type is precisely the
   sharing that the MFA representation provides, and this module models the
   paper's "direct representation as Regular XPath expressions". *)
type entries = (ptype * sized) list

type state = {
  budget : float;
  mutable fuel : int; (* bounds total rewriting work *)
}

let q_false = { q = Ast.Not Ast.True; q_size = 2. }

let spend st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise (Too_large st.budget)

let guard st size = if size > st.budget then raise (Too_large size)

let s_self = { expr = Ast.Self; size = 1. }

let s_seq st a b =
  match a.expr, b.expr with
  | Ast.Self, _ -> b
  | _, Ast.Self -> a
  | _ ->
    let size = a.size +. b.size +. 1. in
    guard st size;
    { expr = Ast.Seq (a.expr, b.expr); size }

let s_union st a b =
  if a.expr == b.expr then a
  else begin
    let size = a.size +. b.size +. 1. in
    guard st size;
    { expr = Ast.Union (a.expr, b.expr); size }
  end

let s_star st a =
  match a.expr with
  | Ast.Self -> s_self
  | Ast.Star _ -> a
  | _ ->
    let size = a.size +. 1. in
    guard st size;
    { expr = Ast.Star a.expr; size }

let s_filter st a { q; q_size } =
  match q with
  | Ast.True -> a
  | _ ->
    let size = a.size +. q_size +. 1. in
    guard st size;
    { expr = Ast.Filter (a.expr, q); size }

let union_all = function
  | [] -> None
  | first :: rest ->
    Some (fun st -> List.fold_left (fun acc e -> s_union st acc e) first rest)

let rewrite_sized ?(max_size = 1e6) view query =
  let view_dtd = Derive.view_dtd view in
  let st = { budget = max_size; fuel = 2_000_000 } in
  let ptypes =
    List.map (fun t -> Elem_t t) (Derive.visible_types view) @ [ Text_t ]
  in
  (* sigma expressions are reused all over the output; size them once. *)
  let sigma_cache = Hashtbl.create 32 in
  let sigma parent child =
    match Hashtbl.find_opt sigma_cache (parent, child) with
    | Some s -> s
    | None ->
      let s =
        match Derive.sigma view ~parent ~child with
        | Some p -> { expr = p; size = float_of_int (Ast.size p) }
        | None -> invalid_arg "Expr_rewriter: missing sigma"
      in
      Hashtbl.add sigma_cache (parent, child) s;
      s
  in
  let rec rw p (at : ptype) : entries =
    spend st;
    match p with
    | Ast.Self -> [ (at, s_self) ]
    | Ast.Tag child ->
      (match at with
      | Text_t -> []
      | Elem_t a ->
        if List.mem child (Derive.exposed_children view a) then
          [ (Elem_t child, sigma a child) ]
        else [])
    | Ast.Wildcard ->
      (match at with
      | Text_t -> []
      | Elem_t a ->
        List.map
          (fun child -> (Elem_t child, sigma a child))
          (Derive.exposed_children view a))
    | Ast.Text ->
      (match at with
      | Text_t -> []
      | Elem_t a ->
        if Dtd.allows_text view_dtd a then
          [ (Text_t, { expr = Ast.Text; size = 1. }) ]
        else [])
    | Ast.Seq (p1, p2) ->
      List.concat_map
        (fun (mid, e1) ->
          List.map (fun (out, e2) -> (out, s_seq st e1 e2)) (rw p2 mid))
        (rw p1 at)
    | Ast.Union (p1, p2) -> rw p1 at @ rw p2 at
    | Ast.Star body -> closure body at
    | Ast.Filter (p1, q) ->
      List.map (fun (out, e) -> (out, s_filter st e (rw_qual q out))) (rw p1 at)

  (* Kleene closure of a type-changing step: Warshall-Kleene over the
     matrix of one-step rewritings — state elimination multiplies
     expression sizes, the other source of blow-up. *)
  and closure body at : entries =
    let matrix : (ptype * ptype, sized) Hashtbl.t = Hashtbl.create 32 in
    let get i j = Hashtbl.find_opt matrix (i, j) in
    let put i j e = Hashtbl.replace matrix (i, j) e in
    List.iter
      (fun i ->
        List.iter
          (fun (j, e) ->
            match get i j with
            | None -> put i j e
            | Some existing -> put i j (s_union st existing e))
          (rw body i))
      ptypes;
    List.iter
      (fun k ->
        let loop = match get k k with None -> s_self | Some e -> s_star st e in
        List.iter
          (fun i ->
            match get i k with
            | None -> ()
            | Some ik ->
              List.iter
                (fun j ->
                  match get k j with
                  | None -> ()
                  | Some kj ->
                    spend st;
                    let via = s_seq st ik (s_seq st loop kj) in
                    (match get i j with
                    | None -> put i j via
                    | Some existing -> put i j (s_union st existing via)))
                ptypes)
          ptypes)
      ptypes;
    let reached =
      List.filter_map (fun j -> Option.map (fun e -> (j, e)) (get at j)) ptypes
    in
    (at, s_self) :: reached

  and rw_qual q (at : ptype) : sized_qual =
    spend st;
    match q with
    | Ast.True -> { q = Ast.True; q_size = 1. }
    | Ast.Exists p ->
      (match union_all (List.map snd (rw p at)) with
      | None -> q_false
      | Some mk ->
        let e = mk st in
        { q = Ast.Exists e.expr; q_size = e.size +. 1. })
    | Ast.Value_eq (p, c) ->
      (match union_all (List.map snd (rw p at)) with
      | None -> q_false
      | Some mk ->
        let e = mk st in
        { q = Ast.Value_eq (e.expr, c); q_size = e.size +. 1. })
    | Ast.Not q ->
      let s = rw_qual q at in
      { q = Ast.q_not s.q; q_size = s.q_size +. 1. }
    | Ast.And (q1, q2) ->
      let a = rw_qual q1 at and b = rw_qual q2 at in
      { q = Ast.q_and a.q b.q; q_size = a.q_size +. b.q_size +. 1. }
    | Ast.Or (q1, q2) ->
      let a = rw_qual q1 at and b = rw_qual q2 at in
      { q = Ast.q_or a.q b.q; q_size = a.q_size +. b.q_size +. 1. }
  in
  let root_type = Elem_t (Dtd.root view_dtd) in
  match union_all (List.map snd (rw query root_type)) with
  | Some mk ->
    let e = mk st in
    (e.expr, e.size)
  | None ->
    (* No view node is ever selected; any unsatisfiable expression works. *)
    (Ast.filter Ast.Self q_false.q, 3.)

let rewrite ?max_size view query = fst (rewrite_sized ?max_size view query)
