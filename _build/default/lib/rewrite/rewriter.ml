module Ast = Smoqe_rxpath.Ast
module Nfa = Smoqe_automata.Nfa
module Afa = Smoqe_automata.Afa
module Mfa = Smoqe_automata.Mfa
module Compile = Smoqe_automata.Compile
module Dtd = Smoqe_xml.Dtd
module Derive = Smoqe_security.Derive

(* Product context: the view element type a run is currently at, or a view
   text node. *)
type ptype =
  | Elem_t of string
  | Text_t

let rewrite view query =
  let vm = Compile.compile query in
  let vnfa = vm.Mfa.nfa in
  let b = Mfa.create_builder () in
  let view_dtd = Derive.view_dtd view in
  let types = Derive.visible_types view in
  let ptypes = List.map (fun t -> Elem_t t) types @ [ Text_t ] in
  (* Product states, built eagerly: (view state, context type). *)
  let state_tbl : (int * ptype, int) Hashtbl.t = Hashtbl.create 256 in
  for s = 0 to vnfa.Nfa.n_states - 1 do
    List.iter
      (fun pt -> Hashtbl.replace state_tbl (s, pt) (Mfa.fresh_state b))
      ptypes
  done;
  let pstate s pt = Hashtbl.find state_tbl (s, pt) in
  (* Product atoms: one per (view atom, context type). *)
  let atom_tbl : (int * ptype, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun aid (atom : Afa.atom) ->
      List.iter
        (fun pt ->
          let id =
            Mfa.add_atom b ~start:(pstate atom.Afa.start pt)
              ~value:atom.Afa.value
          in
          Hashtbl.replace atom_tbl (aid, pt) id)
        ptypes)
    vm.Mfa.atoms;
  let patom aid pt = Hashtbl.find atom_tbl (aid, pt) in
  (* Product qualifiers, in ascending view-qualifier order so that the
     nested-before-enclosing id invariant HyPE relies on is preserved. *)
  let qual_tbl : (int * ptype, int) Hashtbl.t = Hashtbl.create 64 in
  let rec map_formula pt = function
    | Afa.F_true -> Afa.F_true
    | Afa.F_atom aid -> Afa.F_atom (patom aid pt)
    | Afa.F_not f -> Afa.F_not (map_formula pt f)
    | Afa.F_and (f, g) -> Afa.F_and (map_formula pt f, map_formula pt g)
    | Afa.F_or (f, g) -> Afa.F_or (map_formula pt f, map_formula pt g)
  in
  Array.iteri
    (fun qid formula ->
      List.iter
        (fun pt ->
          let id = Mfa.add_qual b (map_formula pt formula) in
          Hashtbl.replace qual_tbl (qid, pt) id)
        ptypes)
    vm.Mfa.quals;
  let pqual qid pt = Hashtbl.find qual_tbl (qid, pt) in
  (* Decorations and transitions. *)
  let exposed parent = Derive.exposed_children view parent in
  let sigma parent child =
    match Derive.sigma view ~parent ~child with
    | Some p -> p
    | None -> invalid_arg "Rewriter: missing sigma for an exposed child"
  in
  for s = 0 to vnfa.Nfa.n_states - 1 do
    List.iter
      (fun pt ->
        let here = pstate s pt in
        List.iter
          (fun accept ->
            match accept with
            | Nfa.Select -> Mfa.add_select b here
            | Nfa.Atom_accept aid ->
              (* The accepting run's origin context type is not known
                 statically; mark for every instance — the engine matches
                 accepts against each run's own atom id. *)
              List.iter
                (fun origin_pt ->
                  Mfa.add_accept_atom b here (patom aid origin_pt))
                ptypes)
          vnfa.Nfa.accepts.(s);
        List.iter (fun q -> Mfa.add_check b here (pqual q pt)) vnfa.Nfa.checks.(s);
        List.iter (fun s' -> Mfa.add_eps b here (pstate s' pt)) vnfa.Nfa.eps.(s);
        List.iter
          (fun (test, s') ->
            match pt with
            | Text_t -> () (* text nodes have no children *)
            | Elem_t a ->
              (match test with
              | Nfa.Element child ->
                if List.mem child (exposed a) then
                  Compile.build_path b (sigma a child) ~entry:here
                    ~exit:(pstate s' (Elem_t child))
              | Nfa.Any_element ->
                List.iter
                  (fun child ->
                    Compile.build_path b (sigma a child) ~entry:here
                      ~exit:(pstate s' (Elem_t child)))
                  (exposed a)
              | Nfa.Text_node ->
                if Dtd.allows_text view_dtd a then
                  Mfa.add_edge b here Nfa.Text_node (pstate s' Text_t)))
          vnfa.Nfa.delta.(s))
      ptypes
  done;
  let root_type = Dtd.root view_dtd in
  Mfa.freeze b ~start:(pstate vm.Mfa.start (Elem_t root_type))
