(** A second domain workload: a bibliography with recursively nested
    sections, plus a policy hiding reviewer identities and embargoed
    content.  Exercises view derivation over a recursive region that is
    {e not} a simple self-loop (sections within sections within books). *)

val dtd : Smoqe_xml.Dtd.t
(** [bib -> book*], [book -> title, author*, review*, section*],
    [section -> title, para*, section*], [review -> reviewer, comment],
    PCDATA leaves. *)

val policy : Smoqe_security.Policy.t
(** Hide authors and reviewer names; expose review comments directly under
    books; expose only sections whose title is not ["internal"]. *)

val policy_text : string

val generate :
  ?seed:int -> n_books:int -> section_depth:int -> unit -> Smoqe_xml.Tree.t
(** Valid against {!dtd}; deterministic per seed. *)
