module Dtd = Smoqe_xml.Dtd
module Tree = Smoqe_xml.Tree

let dtd =
  Dtd.create ~root:"corp"
    [
      ("corp", Dtd.Children (Dtd.Star (Dtd.Name "dept")));
      ( "dept",
        Dtd.Children
          (Dtd.Seq
             ( Dtd.Name "dname",
               Dtd.Star
                 (Dtd.Alt
                    ( Dtd.Alt (Dtd.Name "sales", Dtd.Name "audit"),
                      Dtd.Alt (Dtd.Name "hr", Dtd.Name "inventory") )) )) );
      ("sales", Dtd.Children (Dtd.Star (Dtd.Name "order")));
      ( "order",
        Dtd.Children (Dtd.Seq (Dtd.Star (Dtd.Name "item"), Dtd.Name "total")) );
      ("audit", Dtd.Children (Dtd.Star (Dtd.Name "finding")));
      ( "finding",
        Dtd.Children (Dtd.Seq (Dtd.Name "severity", Dtd.Name "note")) );
      ("hr", Dtd.Children (Dtd.Star (Dtd.Name "employee")));
      ( "employee",
        Dtd.Children (Dtd.Seq (Dtd.Name "ename", Dtd.Name "salary")) );
      ("inventory", Dtd.Children (Dtd.Star (Dtd.Name "widget")));
      ("widget", Dtd.Children (Dtd.Seq (Dtd.Name "sku", Dtd.Name "qty")));
      ("dname", Dtd.Mixed []);
      ("item", Dtd.Mixed []);
      ("total", Dtd.Mixed []);
      ("severity", Dtd.Mixed []);
      ("note", Dtd.Mixed []);
      ("ename", Dtd.Mixed []);
      ("salary", Dtd.Mixed []);
      ("sku", Dtd.Mixed []);
      ("qty", Dtd.Mixed []);
    ]

let generate ?(seed = 13) ~n_departments ~section_size () =
  let rng = Random.State.make [| seed |] in
  let leaf tag v = Tree.E (tag, [], [ Tree.T v ]) in
  let order i =
    Tree.E
      ( "order",
        [],
        List.init (1 + Random.State.int rng 3) (fun j ->
            leaf "item" (Printf.sprintf "i%d-%d" i j))
        @ [ leaf "total" (string_of_int (Random.State.int rng 1000)) ] )
  in
  let finding i =
    Tree.E
      ( "finding",
        [],
        [
          leaf "severity"
            (match Random.State.int rng 3 with
            | 0 -> "high"
            | 1 -> "medium"
            | _ -> "low");
          leaf "note" (Printf.sprintf "note-%d" i);
        ] )
  in
  let employee i =
    Tree.E
      ( "employee",
        [],
        [
          leaf "ename" (Printf.sprintf "emp-%d" i);
          leaf "salary" (string_of_int (30_000 + Random.State.int rng 50_000));
        ] )
  in
  let widget i =
    Tree.E
      ( "widget",
        [],
        [
          leaf "sku" (Printf.sprintf "sku-%d" i);
          leaf "qty" (string_of_int (Random.State.int rng 100));
        ] )
  in
  let section kind =
    match kind with
    | 0 -> Tree.E ("sales", [], List.init section_size order)
    | 1 -> Tree.E ("audit", [], List.init section_size finding)
    | 2 -> Tree.E ("hr", [], List.init section_size employee)
    | _ -> Tree.E ("inventory", [], List.init section_size widget)
  in
  let dept d =
    let first = Random.State.int rng 4 in
    let sections =
      if Random.State.int rng 100 < 30 then
        [ section first; section ((first + 1 + Random.State.int rng 3) mod 4) ]
      else [ section first ]
    in
    Tree.E ("dept", [], leaf "dname" (Printf.sprintf "dept-%d" d) :: sections)
  in
  Tree.of_source (Tree.E ("corp", [], List.init n_departments dept))

let queries =
  [
    ("audit notes", "//finding[severity = 'high']/note");
    ("salaries", "//employee/salary");
    ("order items", "dept/sales/order[total]/item");
    ("skus", "//widget/sku");
    ("names (anti-case)", "//dname");
  ]
