lib/workload/hospital.ml: Array List Printf Random Smoqe_security Smoqe_xml
