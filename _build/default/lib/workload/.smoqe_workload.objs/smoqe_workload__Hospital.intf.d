lib/workload/hospital.mli: Smoqe_security Smoqe_xml
