lib/workload/queries.mli: Smoqe_rxpath
