lib/workload/federation.mli: Smoqe_xml
