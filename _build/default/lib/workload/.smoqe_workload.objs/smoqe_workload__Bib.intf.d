lib/workload/bib.mli: Smoqe_security Smoqe_xml
