lib/workload/federation.ml: List Printf Random Smoqe_xml
