lib/workload/queries.ml: List Printf Smoqe_rxpath
