lib/workload/random_dtd.mli: Smoqe_rxpath Smoqe_security Smoqe_xml
