lib/workload/docgen.mli: Smoqe_xml
