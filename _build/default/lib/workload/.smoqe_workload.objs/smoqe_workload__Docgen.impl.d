lib/workload/docgen.ml: Hashtbl List Random Smoqe_xml
