lib/workload/bib.ml: Array List Printf Random Smoqe_security Smoqe_xml
