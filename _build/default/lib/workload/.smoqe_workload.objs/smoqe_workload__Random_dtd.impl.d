lib/workload/random_dtd.ml: List Printf Random Smoqe_rxpath Smoqe_security Smoqe_xml
