module Dtd = Smoqe_xml.Dtd
module Tree = Smoqe_xml.Tree
module Policy = Smoqe_security.Policy

let dtd =
  Dtd.create ~root:"bib"
    [
      ("bib", Dtd.Children (Dtd.Star (Dtd.Name "book")));
      ( "book",
        Dtd.Children
          (Dtd.Seq
             ( Dtd.Name "title",
               Dtd.Seq
                 ( Dtd.Star (Dtd.Name "author"),
                   Dtd.Seq
                     ( Dtd.Star (Dtd.Name "review"),
                       Dtd.Star (Dtd.Name "section") ) ) )) );
      ( "section",
        Dtd.Children
          (Dtd.Seq
             ( Dtd.Name "title",
               Dtd.Seq (Dtd.Star (Dtd.Name "para"), Dtd.Star (Dtd.Name "section"))
             )) );
      ("review", Dtd.Children (Dtd.Seq (Dtd.Name "reviewer", Dtd.Name "comment")));
      ("title", Dtd.Mixed []);
      ("author", Dtd.Mixed []);
      ("reviewer", Dtd.Mixed []);
      ("comment", Dtd.Mixed []);
      ("para", Dtd.Mixed []);
    ]

let policy_text =
  "ann(book, author) = N\n\
   ann(book, review) = N\n\
   ann(review, comment) = Y\n\
   ann(book, section) = [not(title = 'internal')]\n\
   ann(section, section) = [not(title = 'internal')]\n"

let policy =
  match Policy.of_string dtd policy_text with
  | Ok p -> p
  | Error msg -> invalid_arg ("Bib.policy: " ^ msg)

let titles = [| "intro"; "methods"; "results"; "internal"; "appendix" |]
let words = [| "lorem"; "ipsum"; "dolor"; "sit"; "amet" |]

let generate ?(seed = 11) ~n_books ~section_depth () =
  let rng = Random.State.make [| seed |] in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let text tag pool = Tree.E (tag, [], [ Tree.T (pick pool) ]) in
  let rec section depth =
    let subs =
      if depth > 0 then
        List.init (Random.State.int rng 3) (fun _ -> section (depth - 1))
      else []
    in
    let paras =
      List.init (1 + Random.State.int rng 2) (fun _ -> text "para" words)
    in
    Tree.E ("section", [], (text "title" titles :: paras) @ subs)
  in
  let book i =
    let authors =
      List.init (1 + Random.State.int rng 2) (fun _ -> text "author" words)
    in
    let reviews =
      List.init (Random.State.int rng 3) (fun _ ->
          Tree.E
            ( "review",
              [],
              [ text "reviewer" words; text "comment" words ] ))
    in
    let sections =
      List.init (1 + Random.State.int rng 2) (fun _ ->
          section section_depth)
    in
    Tree.E
      ( "book",
        [],
        (Tree.E ("title", [], [ Tree.T (Printf.sprintf "book-%d" i) ])
         :: authors)
        @ reviews @ sections )
  in
  Tree.of_source (Tree.E ("bib", [], List.init n_books book))
