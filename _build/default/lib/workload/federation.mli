(** A heterogeneous "federated corporation" workload for the TAX index
    experiment (E3).

    Real deployments that need an index are rarely uniform: different
    departments hold different record kinds.  TAX discriminates subtrees by
    the element {e types} they contain, so a query about audit findings can
    prune every department that files no audits — the "large document
    subtrees" pruning of the paper's Indexer section.  Each generated
    department hosts only one or two of the four section kinds. *)

val dtd : Smoqe_xml.Dtd.t

val generate :
  ?seed:int -> n_departments:int -> section_size:int -> unit -> Smoqe_xml.Tree.t
(** [section_size] is the number of records per hosted section.  Valid
    against {!dtd}; deterministic per seed. *)

val queries : (string * string) list
(** Selective queries, each targeting one record kind. *)
