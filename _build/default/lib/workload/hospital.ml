module Dtd = Smoqe_xml.Dtd
module Tree = Smoqe_xml.Tree
module Policy = Smoqe_security.Policy

let dtd =
  Dtd.create ~root:"hospital"
    [
      ("hospital", Dtd.Children (Dtd.Star (Dtd.Name "patient")));
      ( "patient",
        Dtd.Children
          (Dtd.Seq
             ( Dtd.Name "pname",
               Dtd.Seq
                 (Dtd.Star (Dtd.Name "visit"), Dtd.Star (Dtd.Name "parent"))
             )) );
      ("parent", Dtd.Children (Dtd.Name "patient"));
      ("visit", Dtd.Children (Dtd.Seq (Dtd.Name "treatment", Dtd.Name "date")));
      ( "treatment",
        Dtd.Children (Dtd.Alt (Dtd.Name "test", Dtd.Name "medication")) );
      ("pname", Dtd.Mixed []);
      ("date", Dtd.Mixed []);
      ("test", Dtd.Mixed []);
      ("medication", Dtd.Mixed []);
    ]

let policy_text =
  "ann(hospital, patient) = [visit/treatment/medication = 'autism']\n\
   ann(patient, pname) = N\n\
   ann(patient, visit) = N\n\
   ann(visit, treatment) = [medication]\n\
   ann(treatment, test) = N\n"

let policy =
  match Policy.of_string dtd policy_text with
  | Ok p -> p
  | Error msg -> invalid_arg ("Hospital.policy: " ^ msg)

let medications = [ "autism"; "headache"; "insomnia"; "flu" ]

let first_names =
  [| "Ann"; "Bob"; "Carol"; "Dan"; "Eve"; "Fred"; "Gina"; "Hugo" |]

let generate ?(seed = 7) ~n_patients ~recursion_depth () =
  let rng = Random.State.make [| seed |] in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let meds = Array.of_list medications in
  let visit () =
    let treatment =
      if Random.State.int rng 100 < 60 then
        Tree.E ("medication", [], [ Tree.T (pick meds) ])
      else
        Tree.E
          ( "test",
            [],
            [ Tree.T (Printf.sprintf "t%d" (Random.State.int rng 100)) ] )
    in
    Tree.E
      ( "visit",
        [],
        [
          Tree.E ("treatment", [], [ treatment ]);
          Tree.E
            ( "date",
              [],
              [ Tree.T (Printf.sprintf "2006-%02d-%02d"
                          (1 + Random.State.int rng 12)
                          (1 + Random.State.int rng 28)) ] );
        ] )
  in
  let rec patient depth idx =
    let visits = List.init (1 + Random.State.int rng 3) (fun _ -> visit ()) in
    let parents =
      if depth > 0 && Random.State.int rng 100 < 70 then
        [ Tree.E ("parent", [], [ patient (depth - 1) (idx * 7 + 1) ]) ]
      else []
    in
    Tree.E
      ( "patient",
        [],
        Tree.E
          ("pname", [], [ Tree.T (Printf.sprintf "%s-%d" (pick first_names) idx) ])
        :: (visits @ parents) )
  in
  let patients = List.init n_patients (fun i -> patient recursion_depth i) in
  Tree.of_source (Tree.E ("hospital", [], patients))

