(** The paper's running example (Fig. 3): the hospital schema, the access
    control policy S0, and a parameterized generator of hospital records
    (the documents the demo's evaluation runs on — no public corpus exists,
    so they are synthesized from the figure's own schema). *)

val dtd : Smoqe_xml.Dtd.t
(** Fig. 3(a): [hospital -> patient*], [patient -> pname, visit*, parent*],
    [parent -> patient], [visit -> treatment, date],
    [treatment -> test | medication], PCDATA leaves. *)

val policy : Smoqe_security.Policy.t
(** Fig. 3(b) — S0: expose only patients treated for autism, hiding their
    names, tests and visit structure. *)

val policy_text : string
(** S0 in the concrete annotation syntax (kept parseable for the CLI and
    documentation). *)

val generate :
  ?seed:int ->
  n_patients:int ->
  recursion_depth:int ->
  unit ->
  Smoqe_xml.Tree.t
(** A hospital document: [n_patients] top-level patients, each with 1–3
    visits (medications drawn from a pool containing ["autism"] and
    ["headache"], or tests), and chains of [parent] ancestors up to
    [recursion_depth] deep.  Valid against {!dtd}; deterministic per
    seed. *)

val medications : string list
(** The medication vocabulary used by the generator. *)
