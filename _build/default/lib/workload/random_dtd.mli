(** Random (possibly recursive) DTDs and random policies over them — the
    workload of experiment E7 and of the rewriting property tests.

    Generated schemas always admit finite documents: every type's content
    is a sequence of starred/optional groups plus at least a PCDATA escape
    at the leaves. *)

val generate :
  ?seed:int ->
  n_types:int ->
  recursion:bool ->
  unit ->
  Smoqe_xml.Dtd.t
(** [n_types >= 2]; with [recursion] the generator adds back-edges to
    ancestors (inside starred groups, so expansion can always stop). *)

val random_policy :
  ?seed:int ->
  ?deny_ratio:float ->
  ?cond_ratio:float ->
  Smoqe_xml.Dtd.t ->
  Smoqe_security.Policy.t
(** Annotate a random subset of edges: [deny_ratio] of them [N],
    [cond_ratio] conditional on a child-existence or value qualifier,
    the rest [Y] or unannotated. *)

val random_query :
  ?seed:int ->
  ?size:int ->
  tags:string list ->
  unit ->
  Smoqe_rxpath.Ast.path
(** A random Regular XPath query over a tag vocabulary. *)
