module Dtd = Smoqe_xml.Dtd
module Ast = Smoqe_rxpath.Ast
module Policy = Smoqe_security.Policy

let type_name i = Printf.sprintf "t%d" i

let generate ?(seed = 3) ~n_types ~recursion () =
  if n_types < 2 then invalid_arg "Random_dtd.generate: n_types must be >= 2";
  let rng = Random.State.make [| seed |] in
  let prods =
    List.init n_types (fun i ->
        let name = type_name i in
        if i >= n_types - 1 then (name, Dtd.Mixed [])
        else begin
          (* Children drawn from deeper types (guaranteeing finite
             expansion), optionally plus a starred back-edge. *)
          let n_kids = 1 + Random.State.int rng 3 in
          let kid () =
            let j = i + 1 + Random.State.int rng (n_types - i - 1) in
            let base = Dtd.Name (type_name j) in
            match Random.State.int rng 4 with
            | 0 -> Dtd.Star base
            | 1 -> Dtd.Opt base
            | 2 -> Dtd.Plus base
            | _ -> base
          in
          let kids = List.init n_kids (fun _ -> kid ()) in
          let kids =
            if recursion && Random.State.int rng 100 < 50 then begin
              let back = Random.State.int rng (i + 1) in
              Dtd.Star (Dtd.Name (type_name back)) :: kids
            end
            else kids
          in
          let regex =
            match kids with
            | [] -> Dtd.Eps
            | first :: rest ->
              List.fold_left (fun acc r -> Dtd.Seq (acc, r)) first rest
          in
          (name, Dtd.Children regex)
        end)
  in
  Dtd.create ~root:(type_name 0) prods

let random_policy ?(seed = 5) ?(deny_ratio = 0.3) ?(cond_ratio = 0.2) dtd =
  let rng = Random.State.make [| seed |] in
  let anns =
    List.filter_map
      (fun (parent, child) ->
        let r = Random.State.float rng 1.0 in
        if r < deny_ratio then Some ((parent, child), Policy.Deny)
        else if r < deny_ratio +. cond_ratio then begin
          let q =
            match Random.State.int rng 3 with
            | 0 ->
              (* child has some grandchild of a random reachable type *)
              let types = Dtd.child_types dtd child in
              (match types with
              | [] -> Ast.Exists Ast.Text
              | ts ->
                Ast.Exists
                  (Ast.Tag (List.nth ts (Random.State.int rng (List.length ts)))))
            | 1 -> Ast.Exists (Ast.seq Ast.descendant_or_self Ast.Text)
            | _ ->
              Ast.Value_eq
                ( Ast.seq Ast.descendant_or_self Ast.Text,
                  if Random.State.bool rng then "alpha" else "beta" )
          in
          Some ((parent, child), Policy.Cond q)
        end
        else if r < deny_ratio +. cond_ratio +. 0.2 then
          Some ((parent, child), Policy.Allow)
        else None)
      (List.sort_uniq compare (Dtd.edges dtd))
  in
  Policy.create dtd anns

let random_query ?(seed = 9) ?(size = 8) ~tags () =
  let rng = Random.State.make [| seed |] in
  let pick_tag () = List.nth tags (Random.State.int rng (List.length tags)) in
  let rec path n =
    if n <= 1 then
      match Random.State.int rng 5 with
      | 0 -> Ast.Self
      | 1 -> Ast.Wildcard
      | 2 -> Ast.Text
      | _ -> Ast.Tag (pick_tag ())
    else
      match Random.State.int rng 10 with
      | 0 | 1 | 2 | 3 -> Ast.seq (path (n / 2)) (path (n - (n / 2)))
      | 4 | 5 -> Ast.union (path (n / 2)) (path (n - (n / 2)))
      | 6 -> Ast.star (path (n - 1))
      | 7 | 8 -> Ast.filter (path (n / 2)) (qual (n - (n / 2)))
      | _ -> Ast.Tag (pick_tag ())
  and qual n =
    if n <= 1 then
      match Random.State.int rng 3 with
      | 0 -> Ast.Value_eq (Ast.Text, "alpha")
      | 1 -> Ast.Exists (Ast.Tag (pick_tag ()))
      | _ -> Ast.Exists Ast.Wildcard
    else
      match Random.State.int rng 6 with
      | 0 -> Ast.q_not (qual (n - 1))
      | 1 -> Ast.q_and (qual (n / 2)) (qual (n - (n / 2)))
      | 2 -> Ast.q_or (qual (n / 2)) (qual (n - (n / 2)))
      | _ -> Ast.Exists (path (n - 1))
  in
  path size
