(** The set-at-a-time reference evaluator as a baseline, with work
    counters.  This is {!Smoqe_rxpath.Semantics} (memoized fixpoint
    semantics) packaged for the benchmark harness. *)

type result = {
  answers : int list;
  passes_over_data : int;  (** conceptual: 1 (operates on a loaded tree) *)
}

val run : Smoqe_xml.Tree.t -> Smoqe_rxpath.Ast.path -> result
