lib/baseline/two_pass.ml: Array Bytes List Smoqe_automata Smoqe_xml String
