lib/baseline/two_pass.mli: Smoqe_automata Smoqe_rxpath Smoqe_xml
