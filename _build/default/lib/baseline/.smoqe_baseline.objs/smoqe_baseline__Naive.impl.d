lib/baseline/naive.ml: Smoqe_rxpath
