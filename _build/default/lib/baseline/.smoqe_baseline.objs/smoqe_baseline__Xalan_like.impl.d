lib/baseline/xalan_like.ml: List Smoqe_rxpath Smoqe_xml String
