lib/baseline/naive.mli: Smoqe_rxpath Smoqe_xml
