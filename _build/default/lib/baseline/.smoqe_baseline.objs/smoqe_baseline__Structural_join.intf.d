lib/baseline/structural_join.mli: Smoqe_rxpath Smoqe_tax Smoqe_xml
