lib/baseline/structural_join.ml: Array Hashtbl List Printf Smoqe_rxpath Smoqe_tax Smoqe_xml
