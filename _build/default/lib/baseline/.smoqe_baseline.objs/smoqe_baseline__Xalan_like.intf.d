lib/baseline/xalan_like.mli: Smoqe_rxpath Smoqe_xml
