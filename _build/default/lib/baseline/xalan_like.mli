(** A Xalan/Saxon-style baseline: per-node recursive evaluation with
    random access and {e no} memoization, automata, or pruning.

    Each step re-scans child lists; each qualifier is re-evaluated from
    scratch at every candidate node, re-traversing subtrees that HyPE
    visits once.  Kleene closure is evaluated by iterated expansion with a
    visited set (per evaluation, not shared).  This reproduces the
    algorithmic behaviour the paper penalizes main-memory XPath engines
    for: "need to randomly access the document during evaluation" (§2, XML
    documents) and re-traversal per predicate (experiments E1/E4). *)

type result = {
  answers : int list;
  node_visits : int;
      (** total node touches — grows superlinearly on predicate-heavy
          queries, unlike HyPE's single visit per node *)
  passes_over_data : int;
}

val run : Smoqe_xml.Tree.t -> Smoqe_rxpath.Ast.path -> result
