(** Structural-join evaluation over region labels — the 2006
    state-of-the-art for descendant-axis queries, and the paper's foil for
    TAX: excellent on pure [/]/[//] tag chains, {e inapplicable} beyond
    them (§3, Indexer: "limited in scope").

    A query in the fragment

    {v steps ::= ('/' | '//') tag ( ('/' | '//') tag )*  (text() allowed last) v}

    is evaluated bottom-up from the inverted tag lists with merge-based
    stab joins (laminar-interval sweeps), never touching nodes outside the
    step tags.  Anything else — wildcards, Kleene closure, qualifiers,
    unions — is rejected with {!Unsupported}. *)

type step =
  | Child of string
  | Desc of string
  | Child_text
  | Desc_text

val plan : Smoqe_rxpath.Ast.path -> (step list, string) result
(** Translate a Regular XPath query into the fragment, or say why not. *)

type outcome = {
  answers : int list;
  list_items_scanned : int;
      (** inverted-list entries touched — the join's work measure *)
}

val run :
  Smoqe_tax.Region.t ->
  Smoqe_xml.Tree.t ->
  Smoqe_rxpath.Ast.path ->
  (outcome, string) result
(** Plan and execute; [Error] when the query is outside the fragment. *)
