type result = {
  answers : int list;
  passes_over_data : int;
}

let run tree path =
  { answers = Smoqe_rxpath.Semantics.answer_list tree path;
    passes_over_data = 1 }
