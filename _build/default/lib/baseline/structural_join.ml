module Tree = Smoqe_xml.Tree
module Region = Smoqe_tax.Region
module Ast = Smoqe_rxpath.Ast

type step =
  | Child of string
  | Desc of string
  | Child_text
  | Desc_text

(* Flatten the right-nested Seq spine into steps.  The parser desugars
   [//a] into [Star Wildcard / a], so a [Star Wildcard] marks the next
   step as descendant. *)
let plan path =
  let rec steps acc pending_desc p =
    match p with
    | Ast.Seq (a, b) ->
      (match a with
      | Ast.Star Ast.Wildcard ->
        if pending_desc then Error "redundant descendant marker"
        else steps acc true b
      | Ast.Tag s -> steps ((if pending_desc then Desc s else Child s) :: acc) false b
      | Ast.Text -> Error "text() before the end of the path"
      | Ast.Self | Ast.Wildcard | Ast.Seq _ | Ast.Union _ | Ast.Star _
      | Ast.Filter _ ->
        outside a)
    | Ast.Tag s -> Ok (List.rev ((if pending_desc then Desc s else Child s) :: acc))
    | Ast.Text ->
      Ok (List.rev ((if pending_desc then Desc_text else Child_text) :: acc))
    | Ast.Star Ast.Wildcard -> Error "descendant marker with no step after it"
    | Ast.Self | Ast.Wildcard | Ast.Union _ | Ast.Star _ | Ast.Filter _ ->
      outside p
  and outside p =
    let what =
      match p with
      | Ast.Self -> "a self step"
      | Ast.Wildcard -> "a wildcard"
      | Ast.Union _ -> "a union"
      | Ast.Star _ -> "a Kleene closure"
      | Ast.Filter _ -> "a qualifier"
      | Ast.Tag _ | Ast.Text | Ast.Seq _ -> "this construct"
    in
    Error
      (Printf.sprintf
         "structural joins cannot evaluate %s: only /tag and //tag chains"
         what)
  in
  steps [] false path

type outcome = {
  answers : int list;
  list_items_scanned : int;
}

(* context and candidates are in document order (pre-order ids). *)
let descendant_join tree scanned context candidates =
  (* Sweep both lists; intervals are laminar, so a running maximum of the
     subtree ends of the contexts already passed tells whether the current
     candidate is covered. *)
  let out = ref [] in
  let max_end = ref (-1) in
  let ctx = ref context in
  List.iter
    (fun d ->
      incr scanned;
      let rec advance () =
        match !ctx with
        | c :: rest when c < d ->
          let e = Tree.subtree_end tree c in
          if e > !max_end then max_end := e;
          ctx := rest;
          advance ()
        | _ -> ()
      in
      advance ();
      if d < !max_end then out := d :: !out)
    candidates;
  List.rev !out

let child_join tree scanned context candidates =
  let in_context = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace in_context c ()) context;
  List.filter
    (fun d ->
      incr scanned;
      match Tree.parent tree d with
      | Some p -> Hashtbl.mem in_context p
      | None -> false)
    candidates

let run region tree path =
  match plan path with
  | Error msg -> Error msg
  | Ok steps ->
    let scanned = ref 0 in
    let apply context step =
      let candidates, relation =
        match step with
        | Child tag -> (Region.nodes_with_tag region tag, `Child)
        | Desc tag -> (Region.nodes_with_tag region tag, `Desc)
        | Child_text -> (Region.text_nodes region, `Child)
        | Desc_text -> (Region.text_nodes region, `Desc)
      in
      let candidates = Array.to_list candidates in
      match relation with
      | `Child -> child_join tree scanned context candidates
      | `Desc -> descendant_join tree scanned context candidates
    in
    let answers = List.fold_left apply [ Tree.root ] steps in
    Ok { answers; list_items_scanned = !scanned }
