(** An Arb-style baseline (Koch, VLDB'03): tree-automaton evaluation in
    multiple passes (paper §3, Evaluator, the contrast to HyPE).

    Pass 0 preprocesses the document into a binary (first-child /
    next-sibling) encoding — Arb's required data conversion.  Pass 1 walks
    the tree bottom-up and decides {e every} qualifier of the query at
    {e every} node (no pruning: predicates are resolved globally before
    selection).  Pass 2 walks top-down running the selection automaton
    with all predicates pre-resolved.  Negated qualifiers are handled by
    stratified resolution in nesting order, as in the original.

    Results agree with HyPE and the reference semantics (tested); the
    point of the module is the cost profile: three passes over the data
    and predicate work proportional to (nodes x automaton), where HyPE
    does one pass and skips dead regions. *)

type result = {
  answers : int list;
  passes_over_data : int;  (** always 3: preprocess, bottom-up, top-down *)
  predicate_work : int;
      (** (node, state) pairs examined by the bottom-up pass *)
}

val run : Smoqe_automata.Mfa.t -> Smoqe_xml.Tree.t -> result

val eval : Smoqe_xml.Tree.t -> Smoqe_rxpath.Ast.path -> result
(** Compile-and-run convenience. *)
