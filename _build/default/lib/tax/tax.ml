module Tree = Smoqe_xml.Tree

(* One bitset of tag ids per node, flattened into a single int array:
   row [n] occupies words [n*w .. n*w+w-1]. Bit [i] of the row is set when
   tag id [i] occurs among the strict descendants of [n]. *)
type t = {
  words_per_row : int;
  bits : int array;
  n_nodes : int;
  n_tags : int;
}

let bits_per_word = Sys.int_size

let build tree =
  let n = Tree.n_nodes tree in
  let n_tags = Tree.n_tags tree in
  let w = (n_tags + bits_per_word - 1) / bits_per_word in
  let w = max w 1 in
  let bits = Array.make (n * w) 0 in
  (* Bottom-up: process nodes in reverse pre-order, so every node is seen
     after all of its descendants. *)
  for node = n - 1 downto 0 do
    Tree.iter_children tree node (fun c ->
        (* fold child's row into ours *)
        for k = 0 to w - 1 do
          bits.((node * w) + k) <- bits.((node * w) + k) lor bits.((c * w) + k)
        done;
        let tag = Tree.tag_id tree c in
        let word = tag / bits_per_word and bit = tag mod bits_per_word in
        bits.((node * w) + word) <-
          bits.((node * w) + word) lor (1 lsl bit))
  done;
  { words_per_row = w; bits; n_nodes = n; n_tags }

let mem t node tag =
  if tag < 0 || tag >= t.n_tags then false
  else begin
    let word = tag / bits_per_word and bit = tag mod bits_per_word in
    t.bits.((node * t.words_per_row) + word) land (1 lsl bit) <> 0
  end

let mem_name t tree node name =
  match Tree.id_of_tag tree name with
  | None -> false
  | Some id -> mem t node id

let has_text t node = mem t node Tree.text_tag

let n_nodes t = t.n_nodes
let n_tags t = t.n_tags

let descendant_tags t tree node =
  let out = ref [] in
  for tag = t.n_tags - 1 downto 0 do
    if mem t node tag then out := Tree.tag_name tree tag :: !out
  done;
  List.sort String.compare !out

let memory_words t = Array.length t.bits

let equal a b =
  a.n_nodes = b.n_nodes && a.n_tags = b.n_tags
  && a.words_per_row = b.words_per_row
  && a.bits = b.bits

let row_bits t node =
  let out = ref [] in
  for tag = t.n_tags - 1 downto 0 do
    if mem t node tag then out := tag :: !out
  done;
  !out

let of_rows ~n_tags rows =
  let n = Array.length rows in
  let w = max 1 ((n_tags + bits_per_word - 1) / bits_per_word) in
  let bits = Array.make (n * w) 0 in
  Array.iteri
    (fun node tags ->
      List.iter
        (fun tag ->
          if tag < 0 || tag >= n_tags then invalid_arg "Tax.of_rows";
          let word = tag / bits_per_word and bit = tag mod bits_per_word in
          bits.((node * w) + word) <- bits.((node * w) + word) lor (1 lsl bit))
        tags)
    rows;
  { words_per_row = w; bits; n_nodes = n; n_tags }
