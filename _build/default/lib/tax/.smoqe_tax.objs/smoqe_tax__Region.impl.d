lib/tax/region.ml: Array Smoqe_xml
