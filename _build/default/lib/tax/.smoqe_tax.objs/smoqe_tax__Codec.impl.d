lib/tax/codec.ml: Array Buffer Bytes Char Hashtbl List Tax
