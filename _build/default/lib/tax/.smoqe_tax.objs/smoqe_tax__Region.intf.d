lib/tax/region.mli: Smoqe_xml
