lib/tax/tax.mli: Smoqe_xml
