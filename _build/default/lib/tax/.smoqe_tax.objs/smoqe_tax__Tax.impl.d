lib/tax/tax.ml: Array List Smoqe_xml String Sys
