lib/tax/codec.mli: Tax
