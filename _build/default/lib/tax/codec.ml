(* Binary format (all integers LEB128 varints):
     magic "TAX1"
     n_nodes  n_tags  n_distinct_rows
     dictionary: for each row, bit count then delta-encoded bit positions
     body: run-length encoded row references: (row_index, run_length)*
   Rows are interned in first-occurrence order. *)

let magic = "TAX1"

let add_varint buf n =
  if n < 0 then invalid_arg "Codec: negative integer";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

type reader = { data : bytes; mutable pos : int }

exception Corrupt of string

let read_varint r =
  let rec go shift acc =
    if r.pos >= Bytes.length r.data then raise (Corrupt "truncated varint");
    let b = Char.code (Bytes.get r.data r.pos) in
    r.pos <- r.pos + 1;
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let to_bytes idx =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let n = Tax.n_nodes idx and n_tags = Tax.n_tags idx in
  add_varint buf n;
  add_varint buf n_tags;
  (* Intern rows. *)
  let dict = Hashtbl.create 64 in
  let rev_rows = ref [] in
  let n_rows = ref 0 in
  let row_ids =
    Array.init n (fun node ->
        let row = Tax.row_bits idx node in
        match Hashtbl.find_opt dict row with
        | Some id -> id
        | None ->
          let id = !n_rows in
          incr n_rows;
          Hashtbl.add dict row id;
          rev_rows := row :: !rev_rows;
          id)
  in
  add_varint buf !n_rows;
  List.iter
    (fun row ->
      add_varint buf (List.length row);
      let prev = ref 0 in
      List.iter
        (fun tag ->
          add_varint buf (tag - !prev);
          prev := tag)
        row)
    (List.rev !rev_rows);
  (* Run-length encode the row references. *)
  let i = ref 0 in
  while !i < n do
    let id = row_ids.(!i) in
    let j = ref (!i + 1) in
    while !j < n && row_ids.(!j) = id do
      incr j
    done;
    add_varint buf id;
    add_varint buf (!j - !i);
    i := !j
  done;
  Buffer.to_bytes buf

let of_bytes data =
  try
    if Bytes.length data < 4 || Bytes.sub_string data 0 4 <> magic then
      raise (Corrupt "bad magic");
    let r = { data; pos = 4 } in
    let n = read_varint r in
    let n_tags = read_varint r in
    let n_rows = read_varint r in
    if n_rows > n + 1 then raise (Corrupt "implausible dictionary size");
    let dict =
      Array.init n_rows (fun _ ->
          let count = read_varint r in
          if count > n_tags then raise (Corrupt "row wider than tag space");
          let prev = ref 0 in
          List.init count (fun _ ->
              let tag = !prev + read_varint r in
              prev := tag;
              tag))
    in
    let rows = Array.make n [] in
    let filled = ref 0 in
    while !filled < n do
      let id = read_varint r in
      let len = read_varint r in
      if id >= n_rows then raise (Corrupt "row reference out of range");
      if len = 0 || !filled + len > n then raise (Corrupt "bad run length");
      for k = !filled to !filled + len - 1 do
        rows.(k) <- dict.(id)
      done;
      filled := !filled + len
    done;
    if r.pos <> Bytes.length data then raise (Corrupt "trailing bytes");
    Ok (Tax.of_rows ~n_tags rows)
  with
  | Corrupt msg -> Error msg
  | Invalid_argument msg -> Error msg

let save path idx =
  let oc = open_out_bin path in
  match output_bytes oc (to_bytes idx) with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    raise e

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let result =
      try
        let len = in_channel_length ic in
        let data = Bytes.create len in
        really_input ic data 0 len;
        of_bytes data
      with
      | End_of_file -> Error "truncated file"
      | Sys_error msg -> Error msg
    in
    close_in_noerr ic;
    result
