module Tree = Smoqe_xml.Tree

type t = {
  tree : Tree.t;
  post : int array;
  (* inverted lists per tag id; index 0 (the text tag) holds text nodes *)
  by_tag : int array array;
}

let build tree =
  let n = Tree.n_nodes tree in
  let post = Array.make n 0 in
  let counter = ref 0 in
  let rec walk node =
    Tree.iter_children tree node walk;
    post.(node) <- !counter;
    incr counter
  in
  walk Tree.root;
  let counts = Array.make (Tree.n_tags tree) 0 in
  for node = 0 to n - 1 do
    counts.(Tree.tag_id tree node) <- counts.(Tree.tag_id tree node) + 1
  done;
  let by_tag = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (Tree.n_tags tree) 0 in
  for node = 0 to n - 1 do
    let tag = Tree.tag_id tree node in
    by_tag.(tag).(fill.(tag)) <- node;
    fill.(tag) <- fill.(tag) + 1
  done;
  { tree; post; by_tag }

let pre _ node = node
let post t node = t.post.(node)
let level t node = Tree.depth t.tree node

let is_ancestor t ~anc ~desc =
  anc < desc && t.post.(desc) < t.post.(anc)

let nodes_with_tag t tag =
  match Tree.id_of_tag t.tree tag with
  | None -> [||]
  | Some id -> t.by_tag.(id)

let text_nodes t = t.by_tag.(Tree.text_tag)

let memory_words t =
  Array.length t.post
  + Array.fold_left (fun acc a -> acc + Array.length a) 0 t.by_tag
