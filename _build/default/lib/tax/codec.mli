(** Compressed on-disk form of the TAX index.

    The paper's indexer "constructs the TAX index, compresses it before it
    is stored in disk, and uploads it from disk when needed".  The format
    exploits the index's redundancy: distinct descendant-type sets are
    interned into a dictionary (leaves share the empty set, repeated record
    shapes share rows), rows are stored as delta-encoded bit positions, and
    the per-node row references are run-length encoded.  All integers are
    LEB128 varints, so the encoding is independent of the word size. *)

val to_bytes : Tax.t -> bytes

val of_bytes : bytes -> (Tax.t, string) result
(** Fails with a message on a corrupt or truncated buffer. *)

val save : string -> Tax.t -> unit
(** Write to a file.  Raises [Sys_error] on IO failure. *)

val load : string -> (Tax.t, string) result
