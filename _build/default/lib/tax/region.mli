(** Region (interval) labeling with inverted tag lists — the classic XML
    indexing scheme the paper contrasts TAX with (§3, Indexer: techniques
    that "focus mainly on optimizing the evaluation of '//' ... they are
    limited in scope").

    Each node carries a [(pre, post, level)] label; ancestorship is two
    integer comparisons.  Per-tag inverted lists (in document order) feed
    structural joins ({!Smoqe_baseline.Structural_join}). *)

type t

val build : Smoqe_xml.Tree.t -> t
(** One pass over the document. *)

val pre : t -> Smoqe_xml.Tree.node -> int
val post : t -> Smoqe_xml.Tree.node -> int
val level : t -> Smoqe_xml.Tree.node -> int

val is_ancestor : t -> anc:Smoqe_xml.Tree.node -> desc:Smoqe_xml.Tree.node -> bool
(** Strict ancestorship, by label comparison only. *)

val nodes_with_tag : t -> string -> int array
(** All elements with this tag, in document order ([[||]] if unused). *)

val text_nodes : t -> int array

val memory_words : t -> int
(** Size of the label arrays plus inverted lists, in words. *)
