type role =
  | Admin
  | Member of string

type t = {
  engine : Engine.t;
  role : role;
}

let login engine role =
  match role with
  | Admin -> Ok { engine; role }
  | Member group ->
    (match Engine.view engine ~group with
    | Some _ -> Ok { engine; role }
    | None -> Error (Printf.sprintf "no view registered for group %s" group))

let role t = t.role

let schema t =
  match t.role with
  | Admin -> Engine.dtd t.engine
  | Member group -> Engine.view_dtd t.engine ~group

let run t ?mode ?use_index ?trace text =
  match t.role with
  | Admin -> Engine.query t.engine ?mode ?use_index ?trace text
  | Member group -> Engine.query t.engine ~group ?mode ?use_index ?trace text

let can_access_document t =
  match t.role with Admin -> true | Member _ -> false
