module Tree = Smoqe_xml.Tree
module Dtd = Smoqe_xml.Dtd
module Serializer = Smoqe_xml.Serializer
module Mfa = Smoqe_automata.Mfa
module Dot = Smoqe_automata.Dot
module Derive = Smoqe_security.Derive
module Policy = Smoqe_security.Policy
module Trace = Smoqe_hype.Trace
module Stats = Smoqe_hype.Stats
module Tax = Smoqe_tax.Tax

let schema_graph dtd =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "schema (root: %s)\n" (Dtd.root dtd));
  (* Depth-first walk of the schema graph, cutting cycles at back-edges. *)
  let visited = Hashtbl.create 16 in
  let rec walk depth name =
    let pad = String.make (2 * depth) ' ' in
    let content =
      match Dtd.content dtd name with
      | None -> "?"
      | Some c -> Fmt.str "%a" (fun ppf -> function
          | Dtd.Empty -> Fmt.string ppf "EMPTY"
          | Dtd.Any -> Fmt.string ppf "ANY"
          | Dtd.Mixed [] -> Fmt.string ppf "#PCDATA"
          | Dtd.Mixed names ->
            Fmt.pf ppf "(#PCDATA | %a)*" Fmt.(list ~sep:(any " | ") string) names
          | Dtd.Children r -> Dtd.pp_regex ppf r) c
    in
    if Hashtbl.mem visited name then
      Buffer.add_string buf (Printf.sprintf "%s%s -> (see above)\n" pad name)
    else begin
      Hashtbl.add visited name ();
      Buffer.add_string buf (Printf.sprintf "%s%s -> %s\n" pad name content);
      List.iter (walk (depth + 1)) (Dtd.child_types dtd name)
    end
  in
  walk 1 (Dtd.root dtd);
  Buffer.contents buf

let view_specification view =
  let buf = Buffer.create 1024 in
  (match Derive.policy view with
  | Some policy ->
    Buffer.add_string buf "== access control policy ==\n";
    Buffer.add_string buf (Policy.to_string policy);
    Buffer.add_string buf "\n== derived view specification ==\n"
  | None -> Buffer.add_string buf "== view specification (manual) ==\n");
  Buffer.add_string buf (Fmt.str "%a" Derive.pp_spec view);
  Buffer.add_string buf "\n== view DTD exposed to users ==\n";
  Buffer.add_string buf (Dtd.to_string (Derive.view_dtd view));
  (match Derive.approximated view with
  | [] -> ()
  | names ->
    Buffer.add_string buf
      (Printf.sprintf
         "(content models of %s widened to a star form: recursive hidden \
          region)\n"
         (String.concat ", " names)));
  Buffer.contents buf

let mfa_ascii = Dot.mfa_to_ascii
let mfa_dot mfa = Dot.mfa_to_dot mfa

let color_of_mark = function
  | Trace.Visited -> "\027[36m" (* cyan *)
  | Trace.Dead -> "\027[90m" (* gray *)
  | Trace.Skipped_dead -> "\027[90m"
  | Trace.Pruned_tax -> "\027[35m" (* magenta *)
  | Trace.In_cans -> "\027[33m" (* yellow *)
  | Trace.Answer -> "\027[32m" (* green *)

let evaluation_trace ?(color = true) trace tree =
  if not color then Trace.render trace tree
  else begin
    let buf = Buffer.create 2048 in
    Tree.iter_preorder tree (fun n ->
        let pad = String.make (2 * Tree.depth tree n) ' ' in
        let label =
          if Tree.is_text tree n then
            Printf.sprintf "%S" (Tree.text_content tree n)
          else "<" ^ Tree.name tree n ^ ">"
        in
        let marks = Trace.marks trace n in
        let tint =
          if List.mem Trace.Answer marks then color_of_mark Trace.Answer
          else if List.mem Trace.In_cans marks then color_of_mark Trace.In_cans
          else
            match marks with
            | m :: _ -> color_of_mark m
            | [] -> "\027[90m"
        in
        let status =
          match marks with
          | [] -> "-"
          | ms -> String.concat "," (List.map Trace.mark_to_string ms)
        in
        Buffer.add_string buf
          (Printf.sprintf "%4d %s%s%-30s %s\027[0m\n" n pad tint label status));
    Buffer.contents buf
  end

let tax_view idx tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "TAX index (descendant element types per node)\n";
  Tree.iter_preorder tree (fun n ->
      if Tree.is_element tree n then begin
        let pad = String.make (2 * Tree.depth tree n) ' ' in
        let tags = Tax.descendant_tags idx tree n in
        Buffer.add_string buf
          (Printf.sprintf "%4d %s<%s> {%s}\n" n pad (Tree.name tree n)
             (String.concat ", " tags))
      end);
  Buffer.contents buf

let answers_text tree answers =
  let buf = Buffer.create 1024 in
  List.iter
    (fun n ->
      if Tree.is_text tree n then begin
        Buffer.add_string buf (Serializer.escape_text (Tree.text_content tree n));
        Buffer.add_char buf '\n'
      end
      else Buffer.add_string buf (Serializer.subtree_to_string ~indent:true tree n))
    answers;
  Buffer.contents buf

let answers_tree tree answers =
  let buf = Buffer.create 1024 in
  let answer_set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace answer_set n ()) answers;
  Tree.iter_preorder tree (fun n ->
      let pad = String.make (2 * Tree.depth tree n) ' ' in
      let label =
        if Tree.is_text tree n then Printf.sprintf "%S" (Tree.text_content tree n)
        else "<" ^ Tree.name tree n ^ ">"
      in
      let marker = if Hashtbl.mem answer_set n then "  <== answer" else "" in
      Buffer.add_string buf (Printf.sprintf "%s%s%s\n" pad label marker));
  Buffer.contents buf

let stats_table stats = Fmt.str "%a" Stats.pp stats
