(** iSMOQE, the terminal edition.

    The demo paper's GUI (its Figs. 2, 4(b), 5, 6) displays schema graphs,
    automata, evaluation traces with per-node colors, the TAX index and
    query results as text or trees.  This module renders the same
    information for terminals: ASCII art and ANSI colors, plus Graphviz
    DOT output for the automata. *)

val schema_graph : Smoqe_xml.Dtd.t -> string
(** Indented schema graph with content models — the view-specification
    panel (Fig. 2). *)

val view_specification : Smoqe_security.Derive.view -> string
(** Policy, sigma expressions and view DTD side by side (Fig. 3). *)

val mfa_ascii : Smoqe_automata.Mfa.t -> string
(** Adjacency rendering of an MFA (Fig. 4). *)

val mfa_dot : Smoqe_automata.Mfa.t -> string
(** Graphviz DOT for the same (pipe into [dot -Tsvg]). *)

val evaluation_trace :
  ?color:bool -> Smoqe_hype.Trace.t -> Smoqe_xml.Tree.t -> string
(** Per-node colored trace of a HyPE run: visited, in Cans, answer, or
    which optimization pruned it (Fig. 5 and the output visualizer's
    node-marking mode).  With [color] (default [true] when the output is a
    tty — pass explicitly for files), marks are ANSI-colored. *)

val tax_view : Smoqe_tax.Tax.t -> Smoqe_xml.Tree.t -> string
(** Per-node descendant-type sets (Fig. 6). *)

val answers_text : Smoqe_xml.Tree.t -> int list -> string
(** The output visualizer's text mode: answers as XML fragments. *)

val answers_tree : Smoqe_xml.Tree.t -> int list -> string
(** The tree mode: the document skeleton with answer nodes marked. *)

val stats_table : Smoqe_hype.Stats.t -> string
