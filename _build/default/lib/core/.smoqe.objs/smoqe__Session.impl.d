lib/core/session.ml: Engine Printf Result Smoqe_robust
