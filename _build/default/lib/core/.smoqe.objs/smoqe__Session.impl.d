lib/core/session.ml: Engine Printf
