lib/core/engine.ml: Fmt Fun Hashtbl List Logs Option Printf Result Smoqe_automata Smoqe_hype Smoqe_rewrite Smoqe_robust Smoqe_rxpath Smoqe_security Smoqe_tax Smoqe_xml
