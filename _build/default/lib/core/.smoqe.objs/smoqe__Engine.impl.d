lib/core/engine.ml: Fmt Hashtbl List Logs Option Printf Result Smoqe_automata Smoqe_hype Smoqe_rewrite Smoqe_rxpath Smoqe_security Smoqe_tax Smoqe_xml
