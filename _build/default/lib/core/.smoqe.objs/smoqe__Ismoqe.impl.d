lib/core/ismoqe.ml: Buffer Fmt Hashtbl List Printf Smoqe_automata Smoqe_hype Smoqe_security Smoqe_tax Smoqe_xml String
