lib/core/session.mli: Engine Smoqe_hype Smoqe_robust Smoqe_xml
