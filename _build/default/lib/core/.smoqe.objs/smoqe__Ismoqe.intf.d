lib/core/ismoqe.mli: Smoqe_automata Smoqe_hype Smoqe_security Smoqe_tax Smoqe_xml
