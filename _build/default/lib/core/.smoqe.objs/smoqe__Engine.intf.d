lib/core/engine.mli: Smoqe_automata Smoqe_hype Smoqe_robust Smoqe_security Smoqe_tax Smoqe_xml
