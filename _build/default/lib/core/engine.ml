module Tree = Smoqe_xml.Tree
module Parser = Smoqe_xml.Parser
module Pull = Smoqe_xml.Pull
module Serializer = Smoqe_xml.Serializer
module Dtd = Smoqe_xml.Dtd
module Validator = Smoqe_xml.Validator
module Rx_parser = Smoqe_rxpath.Parser
module Compile = Smoqe_automata.Compile
module Mfa = Smoqe_automata.Mfa
module Policy = Smoqe_security.Policy
module Derive = Smoqe_security.Derive
module Rewriter = Smoqe_rewrite.Rewriter
module Eval_dom = Smoqe_hype.Eval_dom
module Eval_stax = Smoqe_hype.Eval_stax
module Tax = Smoqe_tax.Tax
module Codec = Smoqe_tax.Codec

type mode =
  | Dom
  | Stax

type source =
  | From_string of string
  | From_file of string
  | From_tree

type t = {
  tree : Tree.t;
  source : source;
  dtd : Dtd.t option;
  views : (string, Derive.view) Hashtbl.t;
  mutable group_order : string list;
  mutable tax : Tax.t option;
}

type outcome = {
  answers : int list;
  answer_xml : string list;
  stats : Smoqe_hype.Stats.t;
  mfa : Mfa.t;
  cans_size : int;
}

let log_src = Logs.Src.create "smoqe.engine" ~doc:"SMOQE engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let make ?dtd tree source =
  { tree; source; dtd; views = Hashtbl.create 4; group_order = []; tax = None }

let validate_against dtd tree =
  match Validator.validate dtd tree with
  | Ok () -> Ok ()
  | Error (err :: _) ->
    Error (Fmt.str "document invalid: %a" Validator.pp_error err)
  | Error [] -> Ok ()

let of_tree ?dtd tree = make ?dtd tree From_tree

let of_string ?dtd input =
  match Parser.tree_of_string input with
  | exception Pull.Error (line, col, msg) ->
    Error (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | exception Invalid_argument msg -> Error msg
  | tree ->
    (match dtd with
    | None -> Ok (make tree (From_string input))
    | Some d ->
      (match validate_against d tree with
      | Ok () -> Ok (make ~dtd:d tree (From_string input))
      | Error msg -> Error msg))

let of_file ?dtd path =
  match Parser.tree_of_file path with
  | exception Pull.Error (line, col, msg) ->
    Error (Printf.sprintf "%s:%d:%d: %s" path line col msg)
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | tree ->
    (match dtd with
    | None -> Ok (make tree (From_file path))
    | Some d ->
      (match validate_against d tree with
      | Ok () -> Ok (make ~dtd:d tree (From_file path))
      | Error msg -> Error msg))

let document t = t.tree
let dtd t = t.dtd

let register_policy t ~group policy =
  match t.dtd with
  | None -> Error "engine has no DTD: policies need a schema"
  | Some d ->
    if not (Dtd.equal d (Policy.dtd policy)) then
      Error "policy is defined over a different DTD"
    else begin
      match Derive.derive policy with
      | exception Derive.Unsupported msg -> Error msg
      | view ->
        if not (Hashtbl.mem t.views group) then
          t.group_order <- t.group_order @ [ group ];
        Hashtbl.replace t.views group view;
        Log.info (fun m -> m "registered view for group %s" group);
        Ok ()
    end

let groups t = t.group_order
let view t ~group = Hashtbl.find_opt t.views group
let view_dtd t ~group = Option.map Derive.view_dtd (view t ~group)

let build_index t = t.tax <- Some (Tax.build t.tree)
let index t = t.tax

let save_index t path =
  match t.tax with
  | None -> Error "no index built"
  | Some idx ->
    (match Codec.save path idx with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg)

let load_index t path =
  match Codec.load path with
  | Error msg -> Error msg
  | Ok idx ->
    if Tax.n_nodes idx <> Tree.n_nodes t.tree then
      Error "index does not match the document"
    else begin
      t.tax <- Some idx;
      Ok ()
    end

let compile_query t ?group ?(optimize = true) text =
  match Rx_parser.path_of_string text with
  | Error msg -> Error ("query: " ^ msg)
  | Ok path ->
    let raw =
      match group with
      | None -> Ok (Compile.compile path)
      | Some g ->
        (match view t ~group:g with
        | None -> Error (Printf.sprintf "unknown group %s" g)
        | Some v -> Ok (Rewriter.rewrite v path))
    in
    if optimize then Result.map Smoqe_automata.Optimize.optimize raw else raw

let rewrite_only t ~group ?optimize text =
  compile_query t ~group ?optimize text

let answer_xml t answers =
  List.map
    (fun n ->
      if Tree.is_text t.tree n then
        Serializer.escape_text (Tree.text_content t.tree n)
      else Serializer.subtree_to_string ~indent:false t.tree n)
    answers

let statically_empty t mfa =
  match t.dtd with
  | None -> false
  | Some d ->
    Smoqe_automata.Analysis.satisfiable mfa d = Smoqe_automata.Analysis.Empty

let query t ?group ?(mode = Dom) ?use_index ?optimize ?trace text =
  match compile_query t ?group ?optimize text with
  | Error msg -> Error msg
  | Ok mfa when statically_empty t mfa ->
    (* The schema proves the query selects nothing: skip the document. *)
    Log.info (fun m -> m "query statically empty against the schema");
    let stats = Smoqe_hype.Stats.create () in
    stats.Smoqe_hype.Stats.passes_over_data <- 0;
    Ok { answers = []; answer_xml = []; stats; mfa; cans_size = 0 }
  | Ok mfa ->
    (match mode with
    | Dom ->
      let tax =
        match use_index, t.tax with
        | Some false, _ | _, None -> None
        | (Some true | None), Some idx -> Some idx
      in
      let r = Eval_dom.run ?tax ?trace mfa t.tree in
      Ok
        {
          answers = r.Eval_dom.answers;
          answer_xml = answer_xml t r.Eval_dom.answers;
          stats = r.Eval_dom.stats;
          mfa;
          cans_size = r.Eval_dom.cans_size;
        }
    | Stax ->
      let run_pull pull =
        let r = Eval_stax.run ~capture:true ?trace mfa pull in
        {
          answers = r.Eval_stax.answers;
          answer_xml = List.map snd r.Eval_stax.captured;
          stats = r.Eval_stax.stats;
          mfa;
          cans_size = r.Eval_stax.cans_size;
        }
      in
      (match t.source with
      | From_string s -> Ok (run_pull (Pull.of_string s))
      | From_file path ->
        let ic = open_in_bin path in
        let result =
          try Ok (run_pull (Pull.of_channel ic)) with
          | Pull.Error (line, col, msg) ->
            Error (Printf.sprintf "%s:%d:%d: %s" path line col msg)
        in
        close_in_noerr ic;
        result
      | From_tree ->
        let r =
          Eval_stax.run_events ~capture:true ?trace mfa
            (Parser.events_of_tree t.tree)
        in
        Ok
          {
            answers = r.Eval_stax.answers;
            answer_xml = List.map snd r.Eval_stax.captured;
            stats = r.Eval_stax.stats;
            mfa;
            cans_size = r.Eval_stax.cans_size;
          }))
