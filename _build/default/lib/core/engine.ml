module Tree = Smoqe_xml.Tree
module Parser = Smoqe_xml.Parser
module Pull = Smoqe_xml.Pull
module Serializer = Smoqe_xml.Serializer
module Dtd = Smoqe_xml.Dtd
module Dtd_parser = Smoqe_xml.Dtd_parser
module Validator = Smoqe_xml.Validator
module Rx_parser = Smoqe_rxpath.Parser
module Compile = Smoqe_automata.Compile
module Mfa = Smoqe_automata.Mfa
module Policy = Smoqe_security.Policy
module Derive = Smoqe_security.Derive
module Rewriter = Smoqe_rewrite.Rewriter
module Eval_dom = Smoqe_hype.Eval_dom
module Eval_stax = Smoqe_hype.Eval_stax
module Stats = Smoqe_hype.Stats
module Tax = Smoqe_tax.Tax
module Codec = Smoqe_tax.Codec
module Error = Smoqe_robust.Error
module Budget = Smoqe_robust.Budget
module Failpoint = Smoqe_robust.Failpoint

(* Teach the taxonomy this stack's exception types: the guard at the
   façade maps anything the libraries throw into one Error.t.  Runs once,
   when this module is initialized. *)
let () =
  Error.register_classifier (function
    | Pull.Error (line, col, msg) ->
      Some (Error.Parse_error { loc = Some (Error.location ~line ~col ()); msg })
    | Dtd_parser.Error (off, msg) ->
      Some
        (Error.Parse_error
           { loc = None; msg = Printf.sprintf "DTD offset %d: %s" off msg })
    | Derive.Unsupported msg -> Some (Error.Policy_error msg)
    | Smoqe_rewrite.Expr_rewriter.Too_large n ->
      Some
        (Error.Query_error
           (Printf.sprintf "expression rewriting exceeded the size budget \
                            (reached %.2g)" n))
    | Smoqe_hype.Engine.Driver_error msg ->
      Some (Error.Internal ("evaluation driver: " ^ msg))
    | _ -> None)

type mode =
  | Dom
  | Stax

type source =
  | From_string of string
  | From_file of string
  | From_tree

type t = {
  tree : Tree.t;
  source : source;
  dtd : Dtd.t option;
  views : (string, Derive.view) Hashtbl.t;
  mutable group_order : string list;
  mutable tax : Tax.t option;
}

type outcome = {
  answers : int list;
  answer_xml : string list;
  stats : Stats.t;
  mfa : Mfa.t;
  cans_size : int;
}

let log_src = Logs.Src.create "smoqe.engine" ~doc:"SMOQE engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let make ?dtd tree source =
  { tree; source; dtd; views = Hashtbl.create 4; group_order = []; tax = None }

let validate_against dtd tree =
  match Validator.validate dtd tree with
  | Ok () -> Ok ()
  | Error (err :: _) ->
    Error (Fmt.str "document invalid: %a" Validator.pp_error err)
  | Error [] -> Ok ()

let of_tree ?dtd tree = make ?dtd tree From_tree

let with_dtd ?dtd tree source =
  match dtd with
  | None -> Ok (make tree source)
  | Some d ->
    (match validate_against d tree with
    | Ok () -> Ok (make ~dtd:d tree source)
    | Error msg -> Error msg)

let of_string ?dtd input =
  match Parser.tree_of_string_res input with
  | Error msg -> Error ("parse error at " ^ msg)
  | Ok tree -> with_dtd ?dtd tree (From_string input)

let of_file ?dtd path =
  match Parser.tree_of_file_res path with
  | Error msg -> Error msg
  | Ok tree -> with_dtd ?dtd tree (From_file path)

let document t = t.tree
let dtd t = t.dtd

let register_policy t ~group policy =
  match t.dtd with
  | None -> Error "engine has no DTD: policies need a schema"
  | Some d ->
    if not (Dtd.equal d (Policy.dtd policy)) then
      Error "policy is defined over a different DTD"
    else begin
      match Derive.derive policy with
      | exception Derive.Unsupported msg -> Error msg
      | view ->
        if not (Hashtbl.mem t.views group) then
          t.group_order <- t.group_order @ [ group ];
        Hashtbl.replace t.views group view;
        Log.info (fun m -> m "registered view for group %s" group);
        Ok ()
    end

let groups t = t.group_order
let view t ~group = Hashtbl.find_opt t.views group
let view_dtd t ~group = Option.map Derive.view_dtd (view t ~group)

let build_index t = t.tax <- Some (Tax.build t.tree)
let index t = t.tax

let save_index t path =
  match t.tax with
  | None -> Error "no index built"
  | Some idx ->
    (match Codec.save path idx with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
    | exception Failpoint.Injected site -> Error ("injected fault at " ^ site))

let load_index t path =
  let loaded =
    match
      Error.guard (fun () ->
          Failpoint.trigger "index.load";
          Codec.load path)
    with
    | Ok r -> r
    | Error e -> Error (Error.to_string e)
  in
  match loaded with
  | Error msg -> Error msg
  | Ok idx ->
    if Tax.n_nodes idx <> Tree.n_nodes t.tree then
      Error "index does not match the document"
    else begin
      t.tax <- Some idx;
      Ok ()
    end

(* --- query compilation ---------------------------------------------------- *)

let compile_query_robust t ?group ?(optimize = true) ?budget text =
  match Rx_parser.path_of_string text with
  | Error msg -> Error (Error.Query_error msg)
  | Ok path ->
    Result.join
      (Error.guard (fun () ->
           let raw =
             match group with
             | None -> Ok (Compile.compile ?budget path)
             | Some g ->
               (match view t ~group:g with
               | None ->
                 Error (Error.Policy_error (Printf.sprintf "unknown group %s" g))
               | Some v -> Ok (Rewriter.rewrite v path))
           in
           Result.map
             (fun mfa ->
               let mfa =
                 if optimize then Smoqe_automata.Optimize.optimize mfa else mfa
               in
               (* A rewritten view query can be much larger than the text
                  the user typed: re-check the state budget on the final
                  automaton. *)
               (match budget with
               | None -> ()
               | Some b -> Budget.check_states b (Mfa.n_states mfa));
               mfa)
             raw))

let compile_query t ?group ?optimize text =
  Result.map_error Error.to_string
    (compile_query_robust t ?group ?optimize text)

let rewrite_only t ~group ?optimize text =
  compile_query t ~group ?optimize text

let answer_xml t answers =
  List.map
    (fun n ->
      if Tree.is_text t.tree n then
        Serializer.escape_text (Tree.text_content t.tree n)
      else Serializer.subtree_to_string ~indent:false t.tree n)
    answers

let statically_empty t mfa =
  match t.dtd with
  | None -> false
  | Some d ->
    Smoqe_automata.Analysis.satisfiable mfa d = Smoqe_automata.Analysis.Empty

(* --- evaluation ------------------------------------------------------------ *)

let budget_error (what, limit) stats =
  Error.Budget_exceeded
    { what; limit; partial_stats = Stats.to_assoc stats }

(* DOM evaluation; [degraded_from_stax] marks a retry after a StAX driver
   failure.  Requesting the index without one loaded is served unindexed
   and recorded as a degradation rather than failed. *)
let run_dom t ~mfa ?use_index ?budget ?trace ~degraded_from_stax () =
  let index_requested = use_index = Some true in
  let tax =
    match use_index, t.tax with
    | Some false, _ | _, None -> None
    | (Some true | None), Some idx -> Some idx
  in
  let r = Eval_dom.run ?tax ?budget ?trace mfa t.tree in
  match r.Eval_dom.budget_hit with
  | Some hit -> Error (budget_error hit r.Eval_dom.stats)
  | None ->
    let stats = r.Eval_dom.stats in
    if degraded_from_stax then begin
      stats.Stats.degraded_stax_retry <- 1;
      (* the failed StAX scan consumed a pass over the data too *)
      stats.Stats.passes_over_data <- stats.Stats.passes_over_data + 1
    end;
    if index_requested && tax = None then begin
      stats.Stats.degraded_no_index <- 1;
      Log.warn (fun m -> m "index requested but unavailable: unindexed pass")
    end;
    Ok
      {
        answers = r.Eval_dom.answers;
        answer_xml = answer_xml t r.Eval_dom.answers;
        stats;
        mfa;
        cans_size = r.Eval_dom.cans_size;
      }

let run_stax t ~mfa ?budget ?trace () =
  let outcome_of r =
    match r.Eval_stax.budget_hit with
    | Some hit -> Error (budget_error hit r.Eval_stax.stats)
    | None ->
      Ok
        {
          answers = r.Eval_stax.answers;
          answer_xml = List.map snd r.Eval_stax.captured;
          stats = r.Eval_stax.stats;
          mfa;
          cans_size = r.Eval_stax.cans_size;
        }
  in
  match t.source with
  | From_string s ->
    outcome_of (Eval_stax.run ~capture:true ?budget ?trace mfa (Pull.of_string s))
  | From_file path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        outcome_of
          (Eval_stax.run ~capture:true ?budget ?trace mfa (Pull.of_channel ic)))
  | From_tree ->
    outcome_of
      (Eval_stax.run_events ~capture:true ?budget ?trace mfa
         (Parser.events_of_tree t.tree))

let query_robust t ?group ?(mode = Dom) ?use_index ?optimize ?budget ?trace
    text =
  match compile_query_robust t ?group ?optimize ?budget text with
  | Error e -> Error e
  | Ok mfa when statically_empty t mfa ->
    (* The schema proves the query selects nothing: skip the document. *)
    Log.info (fun m -> m "query statically empty against the schema");
    let stats = Stats.create () in
    stats.Stats.passes_over_data <- 0;
    Ok { answers = []; answer_xml = []; stats; mfa; cans_size = 0 }
  | Ok mfa ->
    (match mode with
    | Dom ->
      Result.join
        (Error.guard (fun () ->
             run_dom t ~mfa ?use_index ?budget ?trace
               ~degraded_from_stax:false ()))
    | Stax ->
      (match
         Result.join (Error.guard (fun () -> run_stax t ~mfa ?budget ?trace ()))
       with
      | Ok outcome -> Ok outcome
      | Error ((Error.Budget_exceeded _ | Error.Query_error _
               | Error.Policy_error _) as e) ->
        Error e
      | Error stax_failure ->
        (* Degradation ladder: a StAX driver failure (I/O fault, parse
           error on the stored source, contract violation) is retried once
           in DOM mode on the already-loaded tree. *)
        Log.warn (fun m ->
            m "StAX evaluation failed (%s): retrying in DOM mode"
              (Error.to_string stax_failure));
        Result.join
          (Error.guard (fun () ->
               run_dom t ~mfa ?use_index ?budget ?trace
                 ~degraded_from_stax:true ()))))

let query t ?group ?mode ?use_index ?optimize ?budget ?trace text =
  Result.map_error Error.to_string
    (query_robust t ?group ?mode ?use_index ?optimize ?budget ?trace text)
