lib/store/store.ml: Buffer Filename Fmt List Printf Result Smoqe Smoqe_robust Smoqe_security Smoqe_xml String Sys
