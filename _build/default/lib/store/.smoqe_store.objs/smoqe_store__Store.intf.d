lib/store/store.mli: Smoqe Smoqe_security Smoqe_xml
