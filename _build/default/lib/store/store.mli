(** On-disk SMOQE stores.

    A store is a directory holding everything the engine needs to serve a
    document securely across sessions: the document, its DTD, the
    compressed TAX index (built once, "uploaded from disk when needed" —
    paper §3, Indexer), and one access-control policy per user group.

    Layout:
    {v
    <dir>/MANIFEST            format marker and file inventory
    <dir>/document.xml
    <dir>/document.dtd        (when a DTD was provided)
    <dir>/document.tax        compressed TAX index
    <dir>/policies/<group>.policy
    v}

    All operations return [Error] with a message rather than raising on
    IO or format problems. *)

type t

val create :
  dir:string ->
  ?dtd:Smoqe_xml.Dtd.t ->
  Smoqe_xml.Tree.t ->
  (t, string) result
(** Initialize a store in [dir] (created if missing, must be empty of
    SMOQE files), serialize the document, build and persist the index. *)

val open_dir : string -> (t, string) result
(** Open an existing store: parses the manifest, loads document, DTD,
    index and all policies, and prepares an engine. *)

val dir : t -> string

val engine : t -> Smoqe.Engine.t
(** The ready engine: document loaded, index loaded, one view registered
    per stored policy. *)

val add_policy :
  t -> group:string -> Smoqe_security.Policy.t -> (unit, string) result
(** Persist a policy and register its derived view with the engine.
    Requires the store to have a DTD. *)

val remove_policy : t -> group:string -> (unit, string) result

val groups : t -> string list

val login :
  t -> Smoqe.Session.role -> (Smoqe.Session.t, string) result
(** Convenience: a session against the store's engine. *)
