module Tree = Smoqe_xml.Tree
module Dtd = Smoqe_xml.Dtd
module Dtd_parser = Smoqe_xml.Dtd_parser
module Xml_parser = Smoqe_xml.Parser
module Serializer = Smoqe_xml.Serializer
module Policy = Smoqe_security.Policy
module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Failpoint = Smoqe_robust.Failpoint

type t = {
  dir : string;
  dtd : Dtd.t option;
  tree : Tree.t;
  mutable policies : (string * Policy.t) list; (* group order preserved *)
  mutable engine : Engine.t;
}

let manifest_name = "MANIFEST"
let document_name = "document.xml"
let dtd_name = "document.dtd"
let index_name = "document.tax"
let policies_dir = "policies"

let ( / ) = Filename.concat

let read_file path =
  match
    Failpoint.trigger "store.read";
    open_in_bin path
  with
  | exception Sys_error msg -> Error msg
  | exception Failpoint.Injected site ->
    Error (path ^ ": injected fault at " ^ site)
  | ic ->
    let result =
      try Ok (really_input_string ic (in_channel_length ic))
      with End_of_file -> Error (path ^ ": truncated")
    in
    close_in_noerr ic;
    result

let write_file path contents =
  match
    Failpoint.trigger "store.write";
    open_out_bin path
  with
  | exception Sys_error msg -> Error msg
  | exception Failpoint.Injected site ->
    Error (path ^ ": injected fault at " ^ site)
  | oc ->
    (match output_string oc contents with
    | () ->
      close_out oc;
      Ok ()
    | exception Sys_error msg ->
      close_out_noerr oc;
      Error msg)

let ( let* ) = Result.bind

let valid_group g =
  g <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       g

(* The manifest is the inventory: one "key value..." line per entry. *)
let render_manifest t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "smoqe-store 1\n";
  Buffer.add_string buf (Printf.sprintf "document %s\n" document_name);
  if t.dtd <> None then
    Buffer.add_string buf (Printf.sprintf "dtd %s\n" dtd_name);
  Buffer.add_string buf (Printf.sprintf "index %s\n" index_name);
  List.iter
    (fun (group, _) ->
      Buffer.add_string buf
        (Printf.sprintf "policy %s %s\n" group
           (policies_dir ^ "/" ^ group ^ ".policy")))
    t.policies;
  Buffer.contents buf

let save_manifest t = write_file (t.dir / manifest_name) (render_manifest t)

let build_engine dir dtd tree policies =
  let engine = Engine.of_tree ?dtd tree in
  let* () =
    List.fold_left
      (fun acc (group, policy) ->
        let* () = acc in
        Engine.register_policy engine ~group policy)
      (Ok ()) policies
  in
  (match Engine.load_index engine (dir / index_name) with
  | Ok () -> ()
  | Error _ ->
    (* index missing, stale or unreadable: rebuild in memory and try to
       rewrite it.  A failed rewrite only degrades persistence — the store
       still opens and serves (indexed) queries; the next open rebuilds. *)
    Engine.build_index engine;
    (match Engine.save_index engine (dir / index_name) with
    | Ok () -> ()
    | Error _ -> ()));
  Ok engine

let create ~dir ?dtd tree =
  let* () =
    if Sys.file_exists dir then
      if Sys.is_directory dir then
        if Sys.file_exists (dir / manifest_name) then
          Error (dir ^ ": already a SMOQE store")
        else Ok ()
      else Error (dir ^ ": not a directory")
    else begin
      match Sys.mkdir dir 0o755 with
      | () -> Ok ()
      | exception Sys_error msg -> Error msg
    end
  in
  let* () =
    match dtd with
    | None -> Ok ()
    | Some d ->
      (match Smoqe_xml.Validator.validate d tree with
      | Ok () -> write_file (dir / dtd_name) (Dtd.to_string d)
      | Error (e :: _) ->
        Error (Fmt.str "document invalid: %a" Smoqe_xml.Validator.pp_error e)
      | Error [] -> Ok ())
  in
  let* () =
    write_file (dir / document_name)
      (Serializer.to_string ~indent:false ~decl:true tree)
  in
  (match Sys.mkdir (dir / policies_dir) 0o755 with
  | () -> ()
  | exception Sys_error _ -> ());
  let* engine = build_engine dir dtd tree [] in
  let t = { dir; dtd; tree; policies = []; engine } in
  let* () = save_manifest t in
  Ok t

let parse_manifest contents =
  let lines =
    String.split_on_char '\n' contents
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | "smoqe-store 1" :: rest ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        (match String.split_on_char ' ' line with
        | [ "document"; _ ] | [ "dtd"; _ ] | [ "index"; _ ] ->
          go acc rest
        | [ "policy"; group; path ] -> go ((group, path) :: acc) rest
        | _ -> Error (Printf.sprintf "bad manifest line: %s" line))
    in
    go [] rest
  | _ -> Error "not a SMOQE store (bad manifest header)"

let open_dir dir =
  let* manifest = read_file (dir / manifest_name) in
  let* policy_entries = parse_manifest manifest in
  let* doc_text = read_file (dir / document_name) in
  let* tree =
    match Xml_parser.tree_of_string_res doc_text with
    | Ok tree -> Ok tree
    | Error msg -> Error (Printf.sprintf "%s: %s" document_name msg)
  in
  let* dtd =
    if Sys.file_exists (dir / dtd_name) then begin
      let* dtd_text = read_file (dir / dtd_name) in
      match Dtd_parser.of_string dtd_text with
      | dtd -> Ok (Some dtd)
      | exception Dtd_parser.Error (off, msg) ->
        Error (Printf.sprintf "%s: offset %d: %s" dtd_name off msg)
      | exception Invalid_argument msg -> Error (dtd_name ^ ": " ^ msg)
    end
    else Ok None
  in
  let* policies =
    List.fold_left
      (fun acc (group, path) ->
        let* acc = acc in
        let* text = read_file (dir / path) in
        match dtd with
        | None -> Error "store has policies but no DTD"
        | Some d ->
          let* policy = Policy.of_string d text in
          Ok ((group, policy) :: acc))
      (Ok []) policy_entries
  in
  let policies = List.rev policies in
  let* engine = build_engine dir dtd tree policies in
  Ok { dir; dtd; tree; policies; engine }

let dir t = t.dir
let engine t = t.engine
let groups t = List.map fst t.policies

let add_policy t ~group policy =
  if not (valid_group group) then
    Error (Printf.sprintf "invalid group name %S" group)
  else begin
    let* () = Engine.register_policy t.engine ~group policy in
    let* () =
      write_file
        (t.dir / policies_dir / (group ^ ".policy"))
        (Policy.to_string policy)
    in
    t.policies <- List.remove_assoc group t.policies @ [ (group, policy) ];
    save_manifest t
  end

let remove_policy t ~group =
  if not (List.mem_assoc group t.policies) then
    Error (Printf.sprintf "no policy for group %s" group)
  else begin
    t.policies <- List.remove_assoc group t.policies;
    (try Sys.remove (t.dir / policies_dir / (group ^ ".policy"))
     with Sys_error _ -> ());
    (* The engine has no view-removal operation: rebuild it. *)
    let* engine = build_engine t.dir t.dtd t.tree t.policies in
    t.engine <- engine;
    save_manifest t
  end

let login t role = Session.login t.engine role
