type error = {
  node : Tree.node;
  element : string;
  message : string;
}

let pp_error ppf e =
  Fmt.pf ppf "node %d <%s>: %s" e.node e.element e.message

(* Brzozowski derivatives over content-model regexes.  Content models are
   small, so we recompute derivatives without memoization; smart
   constructors keep the intermediate regexes compact. *)

let seq a b =
  match a, b with
  | Dtd.Eps, r | r, Dtd.Eps -> r
  | _ -> Dtd.Seq (a, b)

let alt a b = if a = b then a else Dtd.Alt (a, b)

(* The empty language, encoded without extending Dtd.regex: we use a
   dedicated name that cannot clash with element names. *)
let void = Dtd.Name "\000void"

let is_void r = r = void

let rec nullable = function
  | Dtd.Eps -> true
  | Dtd.Name _ | Dtd.Pcdata -> false
  | Dtd.Seq (a, b) -> nullable a && nullable b
  | Dtd.Alt (a, b) -> nullable a || nullable b
  | Dtd.Star _ | Dtd.Opt _ -> true
  | Dtd.Plus r -> nullable r

let rec deriv sym = function
  | Dtd.Eps -> void
  | Dtd.Name s -> if s = sym then Dtd.Eps else void
  | Dtd.Pcdata -> if sym = "#text" then Dtd.Eps else void
  | Dtd.Seq (a, b) ->
    let da = deriv sym a in
    let left = if is_void da then void else seq da b in
    if nullable a then begin
      let db = deriv sym b in
      if is_void left then db else if is_void db then left else alt left db
    end
    else left
  | Dtd.Alt (a, b) ->
    let da = deriv sym a and db = deriv sym b in
    if is_void da then db else if is_void db then da else alt da db
  | Dtd.Star r as star ->
    let dr = deriv sym r in
    if is_void dr then void else seq dr star
  | Dtd.Plus r ->
    let dr = deriv sym r in
    if is_void dr then void else seq dr (Dtd.Star r)
  | Dtd.Opt r -> deriv sym r

let matches r names =
  let rec go r = function
    | [] -> nullable r
    | sym :: rest ->
      let d = deriv sym r in
      if is_void d then false else go d rest
  in
  go r names

let child_names t n =
  List.map
    (fun c -> if Tree.is_text t c then "#text" else Tree.name t c)
    (Tree.children t n)

let check_element dtd t n errors =
  let tag = Tree.name t n in
  match Dtd.content dtd tag with
  | None ->
    { node = n; element = tag; message = "undeclared element type" } :: errors
  | Some Dtd.Any -> errors
  | Some Dtd.Empty ->
    if Tree.children t n = [] then errors
    else
      { node = n; element = tag; message = "EMPTY element has children" }
      :: errors
  | Some (Dtd.Mixed allowed) ->
    Tree.fold_children t n ~init:errors ~f:(fun errors c ->
        if Tree.is_text t c then errors
        else
          let child_tag = Tree.name t c in
          if List.mem child_tag allowed then errors
          else
            {
              node = n;
              element = tag;
              message =
                Printf.sprintf "element %s not allowed in mixed content"
                  child_tag;
            }
            :: errors)
  | Some (Dtd.Children r) ->
    let names = child_names t n in
    (* Element content: text children are invalid outright. *)
    let errors =
      if List.mem "#text" names then
        { node = n; element = tag; message = "text in element content" }
        :: errors
      else errors
    in
    let element_names = List.filter (fun s -> s <> "#text") names in
    if matches r element_names then errors
    else
      {
        node = n;
        element = tag;
        message =
          Fmt.str "children (%a) do not match content model %a"
            Fmt.(list ~sep:comma string)
            element_names Dtd.pp_regex r;
      }
      :: errors

let validate dtd t =
  let errors = ref [] in
  if Tree.name t Tree.root <> Dtd.root dtd then
    errors :=
      [
        {
          node = Tree.root;
          element = Tree.name t Tree.root;
          message =
            Printf.sprintf "root element is not %s" (Dtd.root dtd);
        };
      ];
  Tree.iter_preorder t (fun n ->
      if Tree.is_element t n then
        errors := check_element dtd t n !errors);
  match List.rev !errors with [] -> Ok () | es -> Error es

let is_valid dtd t = Result.is_ok (validate dtd t)
