(** Parser for DTD syntax.

    Accepts either a full [<!DOCTYPE root [ ... ]>] declaration or a bare
    sequence of [<!ELEMENT ...>] declarations (the root then defaults to
    the first declared element, or to [root] when given).  Comments and
    whitespace are skipped; attribute-list and entity declarations inside
    the internal subset are ignored. *)

exception Error of int * string
(** [Error (offset, message)]: syntax error at a byte offset. *)

val of_string : ?root:string -> string -> Dtd.t
(** May raise {!Error}, or [Invalid_argument] for inconsistent
    declarations (see {!Dtd.create}). *)

val of_file : ?root:string -> string -> Dtd.t
