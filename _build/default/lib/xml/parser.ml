(* Folding pull events into a Tree.source, then into a Tree.  The stack
   holds, for each open element, its tag, attributes and the reversed list
   of children built so far. *)

type frame = { tag : string; attrs : (string * string) list;
               mutable rev_kids : Tree.source list }

let build_from next =
  let stack : frame list ref = ref [] in
  let result = ref None in
  let push_kid kid =
    match !stack with
    | [] ->
      (match kid with
      | Tree.E _ ->
        if !result <> None then invalid_arg "Parser: multiple roots";
        result := Some kid
      | Tree.T _ -> invalid_arg "Parser: text outside the root element")
    | frame :: _ -> frame.rev_kids <- kid :: frame.rev_kids
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some ev ->
      (match ev with
      | Pull.Start_element (tag, attrs) ->
        stack := { tag; attrs; rev_kids = [] } :: !stack
      | Pull.End_element tag ->
        (match !stack with
        | [] -> invalid_arg "Parser: unbalanced end element"
        | frame :: rest ->
          if frame.tag <> tag then invalid_arg "Parser: mismatched end element";
          stack := rest;
          push_kid (Tree.E (frame.tag, frame.attrs, List.rev frame.rev_kids)))
      | Pull.Text s -> push_kid (Tree.T s));
      loop ()
  in
  loop ();
  if !stack <> [] then invalid_arg "Parser: unclosed elements";
  match !result with
  | None -> invalid_arg "Parser: empty document"
  | Some src -> Tree.of_source src

let tree_of_string ?keep_ws ?budget s =
  let p = Pull.of_string ?keep_ws ?budget s in
  build_from (fun () -> Pull.next p)

let tree_of_channel ?keep_ws ?budget ic =
  let p = Pull.of_channel ?keep_ws ?budget ic in
  build_from (fun () -> Pull.next p)

let tree_of_file ?keep_ws ?budget path =
  let ic = open_in_bin path in
  match tree_of_channel ?keep_ws ?budget ic with
  | t -> close_in ic; t
  | exception e -> close_in_noerr ic; raise e

(* Result-returning variants: the raise/result split of this module used to
   force every caller to re-enumerate the parser's exceptions. *)
let res_of ?file f =
  match f () with
  | t -> Ok t
  | exception Pull.Error (line, col, msg) ->
    Error
      (match file with
      | Some path -> Printf.sprintf "%s:%d:%d: %s" path line col msg
      | None -> Printf.sprintf "%d:%d: %s" line col msg)
  | exception Invalid_argument msg -> Error msg
  | exception Sys_error msg -> Error msg
  | exception Stack_overflow ->
    Error "document too deeply nested (stack overflow)"
  | exception Smoqe_robust.Budget.Exceeded { what; limit } ->
    Error (Printf.sprintf "budget exceeded: %s (limit %s)" what limit)
  | exception Smoqe_robust.Failpoint.Injected site ->
    Error ("injected fault at " ^ site)

let tree_of_string_res ?keep_ws ?budget s =
  res_of (fun () -> tree_of_string ?keep_ws ?budget s)

let tree_of_file_res ?keep_ws ?budget path =
  res_of ~file:path (fun () -> tree_of_file ?keep_ws ?budget path)

let tree_of_events events =
  let remaining = ref events in
  let next () =
    match !remaining with
    | [] -> None
    | ev :: rest -> remaining := rest; Some ev
  in
  build_from next

let events_of_tree t =
  let rec go n acc =
    if Tree.is_text t n then Pull.Text (Tree.text_content t n) :: acc
    else begin
      let tag = Tree.name t n in
      let acc = Pull.Start_element (tag, Tree.attributes t n) :: acc in
      let acc = Tree.fold_children t n ~init:acc ~f:(fun acc c -> go c acc) in
      Pull.End_element tag :: acc
    end
  in
  List.rev (go Tree.root [])
