(** DTD schemas: the view- and document-schema substrate of SMOQE.

    A DTD is a root element type plus one production per element type,
    [A -> content].  Content models are the usual regular expressions over
    element names; PCDATA marks text content.  Recursive DTDs — the case
    SMOQE is specifically built to support — are first-class: productions
    may reach their own type (e.g. [parent -> patient] under
    [patient -> ..., parent*] in the paper's hospital schema). *)

type regex =
  | Eps
  | Name of string
  | Pcdata
  | Seq of regex * regex
  | Alt of regex * regex
  | Star of regex
  | Plus of regex
  | Opt of regex

type content =
  | Empty  (** [EMPTY] *)
  | Any  (** [ANY] *)
  | Children of regex  (** element content *)
  | Mixed of string list  (** [(#PCDATA | a | b)*] *)

type t

val create : root:string -> (string * content) list -> t
(** Build a DTD.  Raises [Invalid_argument] when the root has no
    production, a type has two productions, or a content model mentions a
    type with no production. *)

val root : t -> string

val element_names : t -> string list
(** All declared element types, root first, in declaration order. *)

val content : t -> string -> content option

val productions : t -> (string * content) list

val child_types : t -> string -> string list
(** Element types that may occur as children of the given type, in first
    mention order ([[]] for undeclared types). *)

val allows_text : t -> string -> bool
(** Whether text children are allowed (PCDATA present, [Mixed] or [Any]). *)

val edges : t -> (string * string) list
(** All (parent type, child type) pairs of the schema graph. *)

val is_recursive : t -> bool
(** Whether the schema graph has a cycle. *)

val reachable : t -> string list
(** Types reachable from the root (root included). *)

val rename_type : t -> old_name:string -> new_name:string -> t
(** Consistently rename an element type.  Raises [Invalid_argument] if the
    new name already exists. *)

val pp : Format.formatter -> t -> unit
(** Render in DTD syntax, one [<!ELEMENT ...>] line per production. *)

val to_string : t -> string

val pp_regex : Format.formatter -> regex -> unit

val equal : t -> t -> bool
