lib/xml/dtd.mli: Format
