lib/xml/parser.mli: Pull Smoqe_robust Tree
