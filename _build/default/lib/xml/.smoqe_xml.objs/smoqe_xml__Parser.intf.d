lib/xml/parser.mli: Pull Tree
