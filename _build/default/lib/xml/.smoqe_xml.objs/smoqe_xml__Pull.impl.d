lib/xml/pull.ml: Buffer Bytes Char List Printf String
