lib/xml/pull.ml: Buffer Bytes Char List Printf Smoqe_robust String
