lib/xml/serializer.ml: Buffer List Pull String Tree
