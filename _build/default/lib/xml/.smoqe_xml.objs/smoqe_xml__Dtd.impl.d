lib/xml/dtd.ml: Fmt Hashtbl List Printf
