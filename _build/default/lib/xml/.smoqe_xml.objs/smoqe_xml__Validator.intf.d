lib/xml/validator.mli: Dtd Format Tree
