lib/xml/validator.ml: Dtd Fmt List Printf Result Tree
