lib/xml/tree.ml: Array Buffer Fmt Hashtbl List Printf String
