lib/xml/pull.mli: Smoqe_robust
