lib/xml/pull.mli:
