lib/xml/dtd_parser.ml: Dtd List Option Printf String
