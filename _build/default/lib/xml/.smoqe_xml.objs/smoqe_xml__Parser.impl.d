lib/xml/parser.ml: List Pull Tree
