lib/xml/parser.ml: List Printf Pull Smoqe_robust Tree
