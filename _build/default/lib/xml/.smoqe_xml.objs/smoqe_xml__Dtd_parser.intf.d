lib/xml/dtd_parser.mli: Dtd
