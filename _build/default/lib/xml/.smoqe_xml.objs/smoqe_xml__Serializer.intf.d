lib/xml/serializer.mli: Pull Tree
