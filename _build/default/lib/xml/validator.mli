(** DTD validation of documents, via Brzozowski derivatives of the content
    models.  Used to check generated documents, materialized views against
    the derived view DTD, and user inputs. *)

type error = {
  node : Tree.node;
  element : string;  (** the offending element's tag *)
  message : string;
}

val validate : Dtd.t -> Tree.t -> (unit, error list) result
(** All violations, in document order: undeclared element types, root-type
    mismatch, children sequences not matching the content model, and text
    where the content model forbids it. *)

val is_valid : Dtd.t -> Tree.t -> bool

val pp_error : Format.formatter -> error -> unit

val matches : Dtd.regex -> string list -> bool
(** [matches r names]: does the word of element names match the content
    regex?  ([Pcdata] in [r] matches the pseudo-name ["#text"].) *)
