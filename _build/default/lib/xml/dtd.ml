type regex =
  | Eps
  | Name of string
  | Pcdata
  | Seq of regex * regex
  | Alt of regex * regex
  | Star of regex
  | Plus of regex
  | Opt of regex

type content =
  | Empty
  | Any
  | Children of regex
  | Mixed of string list

type t = {
  root : string;
  prods : (string * content) list; (* declaration order, root first *)
  table : (string, content) Hashtbl.t;
}

let rec regex_names acc = function
  | Eps | Pcdata -> acc
  | Name s -> if List.mem s acc then acc else acc @ [ s ]
  | Seq (a, b) | Alt (a, b) -> regex_names (regex_names acc a) b
  | Star r | Plus r | Opt r -> regex_names acc r

let content_names = function
  | Empty | Any -> []
  | Children r -> regex_names [] r
  | Mixed names ->
    List.fold_left
      (fun acc s -> if List.mem s acc then acc else acc @ [ s ])
      [] names

(* Reassociate Seq and Alt to the right so that structurally different but
   equivalent parses (the parser is left-associative) compare equal. *)
let rec normalize_regex = function
  | (Eps | Pcdata | Name _) as r -> r
  | Seq (Seq (a, b), c) -> normalize_regex (Seq (a, Seq (b, c)))
  | Seq (a, b) -> Seq (normalize_regex a, normalize_regex b)
  | Alt (Alt (a, b), c) -> normalize_regex (Alt (a, Alt (b, c)))
  | Alt (a, b) -> Alt (normalize_regex a, normalize_regex b)
  | Star r -> Star (normalize_regex r)
  | Plus r -> Plus (normalize_regex r)
  | Opt r -> Opt (normalize_regex r)

let normalize_content = function
  | (Empty | Any | Mixed _) as c -> c
  | Children r -> Children (normalize_regex r)

let create ~root prods =
  let prods = List.map (fun (n, c) -> (n, normalize_content c)) prods in
  let table = Hashtbl.create 32 in
  List.iter
    (fun (name, content) ->
      if Hashtbl.mem table name then
        invalid_arg (Printf.sprintf "Dtd.create: duplicate production for %s" name);
      Hashtbl.add table name content)
    prods;
  if not (Hashtbl.mem table root) then
    invalid_arg (Printf.sprintf "Dtd.create: no production for root %s" root);
  List.iter
    (fun (name, content) ->
      List.iter
        (fun child ->
          if not (Hashtbl.mem table child) then
            invalid_arg
              (Printf.sprintf
                 "Dtd.create: %s mentions undeclared element type %s" name
                 child))
        (content_names content))
    prods;
  (* Put the root production first for readability. *)
  let prods =
    (root, Hashtbl.find table root)
    :: List.filter (fun (name, _) -> name <> root) prods
  in
  { root; prods; table }

let root t = t.root
let element_names t = List.map fst t.prods
let content t name = Hashtbl.find_opt t.table name
let productions t = t.prods

let child_types t name =
  match content t name with None -> [] | Some c -> content_names c

let allows_text t name =
  match content t name with
  | None | Some (Empty | Children _) -> false
  | Some (Any | Mixed _) -> true
  | exception Not_found -> false

let edges t =
  List.concat_map
    (fun (name, content) ->
      List.map (fun child -> (name, child)) (content_names content))
    t.prods

let reachable t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      order := name :: !order;
      List.iter visit (child_types t name)
    end
  in
  visit t.root;
  List.rev !order

let is_recursive t =
  (* DFS with colors over the schema graph. *)
  let color = Hashtbl.create 16 in
  let cyclic = ref false in
  let rec visit name =
    match Hashtbl.find_opt color name with
    | Some `Gray -> cyclic := true
    | Some `Black -> ()
    | None ->
      Hashtbl.replace color name `Gray;
      List.iter visit (child_types t name);
      Hashtbl.replace color name `Black
  in
  List.iter (fun (name, _) -> visit name) t.prods;
  !cyclic

let rec rename_regex ~old_name ~new_name = function
  | Eps -> Eps
  | Pcdata -> Pcdata
  | Name s -> Name (if s = old_name then new_name else s)
  | Seq (a, b) ->
    Seq (rename_regex ~old_name ~new_name a, rename_regex ~old_name ~new_name b)
  | Alt (a, b) ->
    Alt (rename_regex ~old_name ~new_name a, rename_regex ~old_name ~new_name b)
  | Star r -> Star (rename_regex ~old_name ~new_name r)
  | Plus r -> Plus (rename_regex ~old_name ~new_name r)
  | Opt r -> Opt (rename_regex ~old_name ~new_name r)

let rename_content ~old_name ~new_name = function
  | (Empty | Any) as c -> c
  | Children r -> Children (rename_regex ~old_name ~new_name r)
  | Mixed names ->
    Mixed (List.map (fun s -> if s = old_name then new_name else s) names)

let rename_type t ~old_name ~new_name =
  if List.mem_assoc new_name t.prods then
    invalid_arg (Printf.sprintf "Dtd.rename_type: %s already exists" new_name);
  let prods =
    List.map
      (fun (name, c) ->
        let name = if name = old_name then new_name else name in
        (name, rename_content ~old_name ~new_name c))
      t.prods
  in
  let root = if t.root = old_name then new_name else t.root in
  create ~root prods

(* Precedence for printing: Alt < Seq < postfix. *)
let rec pp_regex_prec prec ppf r =
  let paren p body =
    if prec > p then Fmt.pf ppf "(%t)" body else body ppf
  in
  match r with
  | Eps -> Fmt.string ppf "EMPTY"
  | Pcdata -> Fmt.string ppf "#PCDATA"
  | Name s -> Fmt.string ppf s
  | Alt (a, b) ->
    paren 0 (fun ppf ->
        Fmt.pf ppf "%a | %a" (pp_regex_prec 0) a (pp_regex_prec 0) b)
  | Seq (a, b) ->
    paren 1 (fun ppf ->
        Fmt.pf ppf "%a, %a" (pp_regex_prec 1) a (pp_regex_prec 1) b)
  | Star r -> Fmt.pf ppf "%a*" (pp_regex_prec 2) r
  | Plus r -> Fmt.pf ppf "%a+" (pp_regex_prec 2) r
  | Opt r -> Fmt.pf ppf "%a?" (pp_regex_prec 2) r

let pp_regex ppf r = pp_regex_prec 0 ppf r

let pp_content ppf = function
  | Empty -> Fmt.string ppf "EMPTY"
  | Any -> Fmt.string ppf "ANY"
  | Children r -> Fmt.pf ppf "(%a)" pp_regex r
  | Mixed [] -> Fmt.string ppf "(#PCDATA)"
  | Mixed names ->
    Fmt.pf ppf "(#PCDATA | %a)*" Fmt.(list ~sep:(any " | ") string) names

let pp ppf t =
  List.iter
    (fun (name, c) -> Fmt.pf ppf "<!ELEMENT %s %a>@." name pp_content c)
    t.prods

let to_string t = Fmt.str "%a" pp t

let equal a b =
  a.root = b.root
  && List.length a.prods = List.length b.prods
  && List.for_all
       (fun (name, c) ->
         match content b name with Some c' -> c = c' | None -> false)
       a.prods
