(** Convenience DOM parsing: {!Pull} events folded into a {!Tree}. *)

val tree_of_string : ?keep_ws:bool -> string -> Tree.t
(** Parse a complete document.  Raises {!Pull.Error} on malformed input. *)

val tree_of_channel : ?keep_ws:bool -> in_channel -> Tree.t

val tree_of_file : ?keep_ws:bool -> string -> Tree.t

val tree_of_events : Pull.event list -> Tree.t
(** Build from an already-produced event list.  Raises [Invalid_argument]
    if the events are not balanced around a single root. *)

val events_of_tree : Tree.t -> Pull.event list
(** The event stream a streaming parse of the serialized tree would
    produce (text nodes emitted as-is). *)
