module Tree = Smoqe_xml.Tree
module Dtd = Smoqe_xml.Dtd
module Semantics = Smoqe_rxpath.Semantics

type materialized = {
  tree : Tree.t;
  provenance : int array;
}

let materialize view doc =
  let view_dtd = Derive.view_dtd view in
  if Tree.name doc Tree.root <> Dtd.root view_dtd then
    invalid_arg "Materialize: document root does not match the DTD root";
  (* Provenance is appended in construction order, which is pre-order. *)
  let rev_prov = ref [] in
  let n_prov = ref 0 in
  let push doc_node =
    rev_prov := doc_node :: !rev_prov;
    incr n_prov
  in
  let rec build doc_node type_name =
    push doc_node;
    let keep_text = Dtd.allows_text view_dtd type_name in
    let text_kids =
      if keep_text then
        Tree.fold_children doc doc_node ~init:[] ~f:(fun acc c ->
            if Tree.is_text doc c then (c, `Text) :: acc else acc)
      else []
    in
    let elem_kids =
      List.concat_map
        (fun child_type ->
          match Derive.sigma view ~parent:type_name ~child:child_type with
          | None -> []
          | Some path ->
            Semantics.eval doc path
              ~from:(Semantics.Node_set.singleton doc_node)
            |> Semantics.Node_set.elements
            |> List.map (fun m -> (m, `Elem child_type)))
        (Derive.exposed_children view type_name)
    in
    let kids =
      List.sort (fun (a, _) (b, _) -> compare a b) (text_kids @ elem_kids)
    in
    let sources =
      List.map
        (fun (m, what) ->
          match what with
          | `Text ->
            push m;
            Tree.T (Tree.text_content doc m)
          | `Elem child_type -> build m child_type)
        kids
    in
    Tree.E (type_name, [], sources)
  in
  let source = build Tree.root (Dtd.root view_dtd) in
  let provenance = Array.make !n_prov 0 in
  List.iteri
    (fun i doc_node -> provenance.(!n_prov - 1 - i) <- doc_node)
    !rev_prov;
  { tree = Tree.of_source source; provenance }

let doc_answers view doc path =
  let m = materialize view doc in
  Semantics.answer_list m.tree path
  |> List.map (fun view_node -> m.provenance.(view_node))
  |> List.sort_uniq compare
