lib/security/view_spec.ml: Derive Fmt Hashtbl List Printf Result Set Smoqe_rxpath Smoqe_xml String
