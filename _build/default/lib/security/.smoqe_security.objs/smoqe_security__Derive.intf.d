lib/security/derive.mli: Format Policy Smoqe_rxpath Smoqe_xml
