lib/security/derive.ml: Array Fmt Hashtbl List Option Policy Printf Smoqe_rxpath Smoqe_xml
