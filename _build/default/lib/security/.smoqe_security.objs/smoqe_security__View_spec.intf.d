lib/security/view_spec.mli: Derive Smoqe_rxpath Smoqe_xml
