lib/security/materialize.ml: Array Derive List Smoqe_rxpath Smoqe_xml
