lib/security/policy.mli: Format Smoqe_rxpath Smoqe_xml
