lib/security/materialize.mli: Derive Smoqe_rxpath Smoqe_xml
