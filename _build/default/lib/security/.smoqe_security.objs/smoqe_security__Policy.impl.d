lib/security/policy.ml: Fmt Hashtbl List Printf Smoqe_rxpath Smoqe_xml String
