(** Access-control policies over a document DTD (paper §2 and Fig. 3(b)).

    A security administrator annotates DTD edges (parent type, child type):

    - [Allow] ([Y]): the child is visible whenever the parent context is;
    - [Deny] ([N]): the child is hidden, but deeper explicit annotations may
      re-grant access to parts of its content;
    - [Cond q] ([\[q\]]): the child is visible exactly when the qualifier
      [q] — a Regular XPath qualifier over the {e document}, evaluated at
      the child node — holds;
    - unannotated edges inherit: inside a hidden region they stay hidden,
      under a visible parent they are visible (the [date] vs [parent]
      distinction in the paper's figure).

    The root element type is always accessible. *)

type annotation =
  | Allow
  | Deny
  | Cond of Smoqe_rxpath.Ast.qual

type t

val create :
  Smoqe_xml.Dtd.t -> ((string * string) * annotation) list -> t
(** Raises [Invalid_argument] if an annotated edge does not exist in the
    DTD or is annotated twice. *)

val dtd : t -> Smoqe_xml.Dtd.t

val annotation : t -> parent:string -> child:string -> annotation option
(** The explicit annotation, if any ([None] = inherit). *)

val annotations : t -> ((string * string) * annotation) list

(** {1 Parsing}

    Concrete syntax, one annotation per line, mirroring Fig. 3(b):
    {v
    ann(patient, pname) = N
    ann(hospital, patient) = [visit/treatment/medication = 'autism']
    ann(parent, patient) = Y
    v} *)

val of_string : Smoqe_xml.Dtd.t -> string -> (t, string) result

val to_string : t -> string

val pp : Format.formatter -> t -> unit
