(** View materialization — the testing oracle for virtual views.

    SMOQE never materializes views in production (that is the system's
    point); this module exists so that tests and demonstrations can check
    the rewriting contract [Q'(T) = Q(V(T))] and inspect what a view
    exposes.  Each view node carries provenance back to the document node
    it copies.

    Children of a view node are emitted in document order of their source
    nodes (text children included when the view DTD allows text), which
    matches the inlined view content models whenever conditionally exposed
    types sit under starred or optional contexts — the situation of all the
    paper's examples. *)

type materialized = {
  tree : Smoqe_xml.Tree.t;  (** the view, as a document *)
  provenance : int array;
      (** view node id (pre-order) -> document node id it was copied from *)
}

val materialize : Derive.view -> Smoqe_xml.Tree.t -> materialized
(** Raises [Invalid_argument] when the document's root type is not the
    DTD's root type. *)

val doc_answers :
  Derive.view ->
  Smoqe_xml.Tree.t ->
  Smoqe_rxpath.Ast.path ->
  int list
(** Evaluate a view query against the materialized view and map the
    answers back to document nodes (sorted, deduplicated) — the reference
    the rewriter is tested against. *)
