(** Automatic derivation of security views from access-control policies —
    the paper's Fig. 3(b) to Fig. 3(c)/(d) step (following Fan, Chan,
    Garofalakis, SIGMOD'04).

    For every visible element type [A] and every type [B] it exposes, the
    derivation produces a Regular XPath expression [sigma A B] over the
    {e document} that collects the [B] nodes promoted to [A] in the view:
    directly visible children, plus visible nodes reachable through regions
    of hidden ([N]/inherited) types.  Hidden regions may be cyclic in a
    recursive DTD — the paths through them are computed by state
    elimination and come out with Kleene stars, which is exactly why view
    definitions need Regular XPath rather than XPath.

    A view DTD is derived alongside: hidden types' content models are
    inlined into their nearest visible ancestor's production; productions
    whose hidden region is cyclic fall back to [(B1 | ... | Bk)*] and are
    reported in [approximated]. *)

type view

exception Unsupported of string
(** Raised by {!derive} on DTDs the security model does not cover
    (currently: [ANY] content under a secured region). *)

val derive : Policy.t -> view

val policy : view -> Policy.t option
(** The access-control policy the view was derived from; [None] for
    manually specified views ({!View_spec}). *)

val visible_types : view -> string list
(** Types exposed in the view, root first. *)

val sigma : view -> parent:string -> child:string -> Smoqe_rxpath.Ast.path option
(** The extraction query for a view edge, [None] if [child] is not exposed
    under [parent]. *)

val exposed_children : view -> string -> string list
(** Exposed child types of a visible type, in schema order. *)

val view_dtd : view -> Smoqe_xml.Dtd.t
(** The schema shown to users (paper Fig. 3(d)). *)

val approximated : view -> string list
(** Visible types whose view content model was widened to a star form
    because their hidden region is recursive. *)

val pp_spec : Format.formatter -> view -> unit
(** Render the view specification in the paper's sigma-notation
    (Fig. 3(c)). *)

(**/**)

(* Constructor for View_spec; the inputs must already be coherent. *)
val unsafe_make :
  ?policy:Policy.t ->
  visible:string list ->
  sigma:((string * string) * Smoqe_rxpath.Ast.path) list ->
  view_dtd:Smoqe_xml.Dtd.t ->
  approximated:string list ->
  unit ->
  view

(**/**)
