module Dtd = Smoqe_xml.Dtd
module Ast = Smoqe_rxpath.Ast

exception Unsupported of string

type view = {
  policy : Policy.t option;
  visible : string list;
  sigma_tbl : (string * string, Ast.path) Hashtbl.t;
  exposed_tbl : (string, string list) Hashtbl.t;
  view_dtd : Dtd.t;
  approximated : string list;
}

(* Effective status of a DTD edge under the policy. *)
type status =
  | Visible of Ast.qual option (* Y or [q]; unannotated under a visible parent *)
  | Hidden (* N, or unannotated inside a hidden region *)

(* Status when the parent type occurs as a visible node. *)
let status_from_visible policy ~parent ~child =
  match Policy.annotation policy ~parent ~child with
  | Some Policy.Allow | None -> Visible None
  | Some (Policy.Cond q) -> Visible (Some q)
  | Some Policy.Deny -> Hidden

(* Status when the parent type occurs as a hidden node: unannotated edges
   inherit the hiddenness. *)
let status_from_hidden policy ~parent ~child =
  match Policy.annotation policy ~parent ~child with
  | Some Policy.Allow -> Visible None
  | Some (Policy.Cond q) -> Visible (Some q)
  | Some Policy.Deny | None -> Hidden

let exit_step child = function
  | None -> Ast.Tag child
  | Some q -> Ast.filter (Ast.Tag child) q

(* All hidden-to-hidden paths of length >= 1, by Warshall-Kleene state
   elimination over the hidden-continuing edge graph.  Entry [i][j] is
   [None] when no such path exists. *)
let hidden_paths policy types index =
  let dtd = Policy.dtd policy in
  let n = Array.length types in
  let h = Array.make_matrix n n None in
  Array.iteri
    (fun i parent ->
      List.iter
        (fun child ->
          match status_from_hidden policy ~parent ~child with
          | Hidden ->
            let j = index child in
            let step = Ast.Tag child in
            h.(i).(j) <-
              (match h.(i).(j) with
              | None -> Some step
              | Some p -> Some (Ast.union p step))
          | Visible _ -> ())
        (Dtd.child_types dtd parent))
    types;
  for k = 0 to n - 1 do
    let loop = match h.(k).(k) with None -> Ast.Self | Some p -> Ast.star p in
    for i = 0 to n - 1 do
      match h.(i).(k) with
      | None -> ()
      | Some ik ->
        for j = 0 to n - 1 do
          match h.(k).(j) with
          | None -> ()
          | Some kj ->
            let via = Ast.seq ik (Ast.seq loop kj) in
            h.(i).(j) <-
              (match h.(i).(j) with
              | None -> Some via
              | Some p -> Some (Ast.union p via))
        done
    done
  done;
  h

(* sigma(A, B) for a visible A: direct visible edges plus routes through
   hidden regions. *)
let sigma_of policy types index h ~parent ~child =
  let dtd = Policy.dtd policy in
  let alternatives = ref [] in
  let add p = alternatives := p :: !alternatives in
  List.iter
    (fun c ->
      if c = child then
        match status_from_visible policy ~parent ~child:c with
        | Visible q -> add (exit_step c q)
        | Hidden -> ())
    (Dtd.child_types dtd parent);
  (* Routed: parent --N--> X --hidden*--> X' --Y/[q]--> child. *)
  List.iter
    (fun x ->
      match status_from_visible policy ~parent ~child:x with
      | Visible _ -> ()
      | Hidden ->
        let ix = index x in
        Array.iteri
          (fun ix' x' ->
            let hidden_route =
              if ix = ix' then
                (* stay at X (empty route), or cycle back to it *)
                match h.(ix).(ix) with
                | None -> Some Ast.Self
                | Some cycle -> Some (Ast.union Ast.Self cycle)
              else h.(ix).(ix')
            in
            match hidden_route with
            | None -> ()
            | Some route ->
              List.iter
                (fun c ->
                  if c = child then
                    match status_from_hidden policy ~parent:x' ~child:c with
                    | Visible q ->
                      add (Ast.seq (Ast.Tag x) (Ast.seq route (exit_step c q)))
                    | Hidden -> ())
                (Dtd.child_types dtd x'))
          types)
    (Dtd.child_types dtd parent);
  (* Also allow routes that loop back through X itself: covered, since
     h.(ix).(ix) holds cycles and the ix = ix' case adds the direct exit. *)
  match !alternatives with
  | [] -> None
  | first :: rest -> Some (List.fold_left Ast.union first rest)

(* --- View DTD content models ------------------------------------------- *)

exception Cycle

(* Rewrite a visible type's content model, inlining hidden children.
   [seen] guards against hidden cycles (which make the precise content
   model non-regular in general): we bail out to the star approximation. *)
let rec inline_regex policy ~from_hidden parent seen r =
  let status child =
    if from_hidden then status_from_hidden policy ~parent ~child
    else status_from_visible policy ~parent ~child
  in
  match r with
  | Dtd.Eps -> Dtd.Eps
  | Dtd.Pcdata -> if from_hidden then Dtd.Eps else Dtd.Pcdata
  | Dtd.Name child ->
    (match status child with
    | Visible _ -> Dtd.Name child
    | Hidden -> inline_type policy child seen)
  | Dtd.Seq (a, b) ->
    seq_regex
      (inline_regex policy ~from_hidden parent seen a)
      (inline_regex policy ~from_hidden parent seen b)
  | Dtd.Alt (a, b) ->
    alt_regex
      (inline_regex policy ~from_hidden parent seen a)
      (inline_regex policy ~from_hidden parent seen b)
  | Dtd.Star r -> star_regex (inline_regex policy ~from_hidden parent seen r)
  | Dtd.Plus r ->
    let r' = inline_regex policy ~from_hidden parent seen r in
    seq_regex r' (star_regex r')
  | Dtd.Opt r -> Dtd.Opt (inline_regex policy ~from_hidden parent seen r)

and seq_regex a b =
  match a, b with Dtd.Eps, r | r, Dtd.Eps -> r | _ -> Dtd.Seq (a, b)

(* A vanished (all-hidden) alternative turns the other into an option —
   [Eps] is not expressible in DTD alternation syntax. *)
and alt_regex a b =
  match a, b with
  | Dtd.Eps, Dtd.Eps -> Dtd.Eps
  | Dtd.Eps, (Dtd.Opt _ as r) | (Dtd.Opt _ as r), Dtd.Eps -> r
  | Dtd.Eps, (Dtd.Star _ as r) | (Dtd.Star _ as r), Dtd.Eps -> r
  | Dtd.Eps, r | r, Dtd.Eps -> Dtd.Opt r
  | _ -> Dtd.Alt (a, b)

and star_regex = function
  | Dtd.Eps -> Dtd.Eps
  | Dtd.Star _ as s -> s
  | r -> Dtd.Star r

(* The content a hidden type contributes to its nearest visible ancestor. *)
and inline_type policy name seen =
  if List.mem name seen then raise Cycle;
  let seen = name :: seen in
  match Dtd.content (Policy.dtd policy) name with
  | None -> Dtd.Eps
  | Some Dtd.Empty -> Dtd.Eps
  | Some Dtd.Any ->
    raise (Unsupported (Printf.sprintf "ANY content on hidden type %s" name))
  | Some (Dtd.Mixed names) ->
    (* Hidden text is dropped; surviving children may repeat in any order. *)
    let parts =
      List.filter_map
        (fun child ->
          match status_from_hidden policy ~parent:name ~child with
          | Visible _ -> Some (Dtd.Name child)
          | Hidden ->
            (match inline_type policy child seen with
            | Dtd.Eps -> None
            | r -> Some r))
        names
    in
    (match parts with
    | [] -> Dtd.Eps
    | first :: rest ->
      star_regex (List.fold_left (fun a b -> Dtd.Alt (a, b)) first rest))
  | Some (Dtd.Children r) -> inline_regex policy ~from_hidden:true name seen r

let view_content policy name ~exposed =
  let star_fallback () =
    match exposed with
    | [] -> Dtd.Empty
    | names ->
      Dtd.Children
        (Dtd.Star
           (List.fold_left
              (fun acc n -> Dtd.Alt (acc, Dtd.Name n))
              (Dtd.Name (List.hd names))
              (List.tl names)))
  in
  match Dtd.content (Policy.dtd policy) name with
  | None -> (Dtd.Empty, false)
  | Some Dtd.Empty -> (Dtd.Empty, false)
  | Some Dtd.Any ->
    raise (Unsupported (Printf.sprintf "ANY content on visible type %s" name))
  | Some (Dtd.Mixed names) ->
    let hidden_expansion = ref false in
    let keep =
      List.filter
        (fun child ->
          match status_from_visible policy ~parent:name ~child with
          | Visible _ -> true
          | Hidden ->
            (* a hidden child that exposes something forces the fallback *)
            (match inline_type policy child [ name ] with
            | Dtd.Eps -> false
            | _ ->
              hidden_expansion := true;
              false
            | exception Cycle ->
              hidden_expansion := true;
              false))
        names
    in
    if !hidden_expansion then
      (* text plus arbitrary interleaving of the exposed types *)
      (Dtd.Mixed exposed, true)
    else (Dtd.Mixed keep, false)
  | Some (Dtd.Children r) ->
    (match inline_regex policy ~from_hidden:false name [] r with
    | Dtd.Eps -> (Dtd.Empty, false)
    | r' -> (Dtd.Children r', false)
    | exception Cycle -> (star_fallback (), true))

(* --- Putting it together ------------------------------------------------ *)

let derive policy =
  let dtd = Policy.dtd policy in
  let types = Array.of_list (Dtd.reachable dtd) in
  let index_tbl = Hashtbl.create 16 in
  Array.iteri (fun i name -> Hashtbl.replace index_tbl name i) types;
  let index name = Hashtbl.find index_tbl name in
  let h = hidden_paths policy types index in
  let sigma_tbl = Hashtbl.create 32 in
  let exposed_tbl = Hashtbl.create 16 in
  let exposed_of parent =
    match Hashtbl.find_opt exposed_tbl parent with
    | Some children -> children
    | None ->
      let children =
        Array.to_list types
        |> List.filter_map (fun child ->
               match sigma_of policy types index h ~parent ~child with
               | None -> None
               | Some p ->
                 Hashtbl.replace sigma_tbl (parent, child) p;
                 Some child)
      in
      Hashtbl.replace exposed_tbl parent children;
      children
  in
  (* Visible types: reachable from the root through exposure. *)
  let visible = ref [] in
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      visible := name :: !visible;
      List.iter visit (exposed_of name)
    end
  in
  visit (Dtd.root dtd);
  let visible = List.rev !visible in
  let approximated = ref [] in
  let prods =
    List.map
      (fun name ->
        let content, approx =
          view_content policy name ~exposed:(exposed_of name)
        in
        if approx then approximated := name :: !approximated;
        (name, content))
      visible
  in
  let view_dtd = Dtd.create ~root:(Dtd.root dtd) prods in
  (* Align exposure order with the view DTD's content models, so that
     materialization in that order validates.  The name sets coincide (both
     are reachability through the hidden region); the inlined regex also
     fixes their order. *)
  List.iter
    (fun name ->
      let from_dtd = Dtd.child_types view_dtd name in
      let current = Option.value ~default:[] (Hashtbl.find_opt exposed_tbl name) in
      let ordered =
        from_dtd @ List.filter (fun c -> not (List.mem c from_dtd)) current
      in
      Hashtbl.replace exposed_tbl name ordered)
    visible;
  {
    policy = Some policy;
    visible;
    sigma_tbl;
    exposed_tbl;
    view_dtd;
    approximated = List.rev !approximated;
  }

let policy v = v.policy

let unsafe_make ?policy ~visible ~sigma ~view_dtd ~approximated () =
  let sigma_tbl = Hashtbl.create 32 in
  List.iter (fun (edge, p) -> Hashtbl.replace sigma_tbl edge p) sigma;
  let exposed_tbl = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace exposed_tbl name (Dtd.child_types view_dtd name))
    visible;
  { policy; visible; sigma_tbl; exposed_tbl; view_dtd; approximated }
let visible_types v = v.visible

let sigma v ~parent ~child =
  if List.mem parent v.visible then
    Hashtbl.find_opt v.sigma_tbl (parent, child)
  else None

let exposed_children v name =
  if List.mem name v.visible then
    Option.value ~default:[] (Hashtbl.find_opt v.exposed_tbl name)
  else []

let view_dtd v = v.view_dtd
let approximated v = v.approximated

let pp_spec ppf v =
  List.iter
    (fun parent ->
      List.iter
        (fun child ->
          match sigma v ~parent ~child with
          | None -> ()
          | Some p ->
            Fmt.pf ppf "sigma(%s, %s) = %a@." parent child
              Smoqe_rxpath.Pretty.pp_path p)
        (exposed_children v parent))
    v.visible
