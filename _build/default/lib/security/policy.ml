module Dtd = Smoqe_xml.Dtd
module Ast = Smoqe_rxpath.Ast

type annotation =
  | Allow
  | Deny
  | Cond of Ast.qual

type t = {
  dtd : Dtd.t;
  anns : (string * string, annotation) Hashtbl.t;
  order : (string * string) list; (* declaration order, for printing *)
}

let create dtd anns =
  let edges = Dtd.edges dtd in
  let table = Hashtbl.create 32 in
  List.iter
    (fun ((parent, child), ann) ->
      if not (List.mem (parent, child) edges) then
        invalid_arg
          (Printf.sprintf "Policy.create: edge (%s, %s) not in the DTD" parent
             child);
      if Hashtbl.mem table (parent, child) then
        invalid_arg
          (Printf.sprintf "Policy.create: edge (%s, %s) annotated twice" parent
             child);
      Hashtbl.add table (parent, child) ann)
    anns;
  { dtd; anns = table; order = List.map fst anns }

let dtd t = t.dtd

let annotation t ~parent ~child = Hashtbl.find_opt t.anns (parent, child)

let annotations t =
  List.map (fun edge -> (edge, Hashtbl.find t.anns edge)) t.order

let pp_annotation ppf = function
  | Allow -> Fmt.string ppf "Y"
  | Deny -> Fmt.string ppf "N"
  | Cond q -> Fmt.pf ppf "[%a]" Smoqe_rxpath.Pretty.pp_qual q

let pp ppf t =
  List.iter
    (fun ((parent, child), ann) ->
      Fmt.pf ppf "ann(%s, %s) = %a@." parent child pp_annotation ann)
    (annotations t)

let to_string t = Fmt.str "%a" pp t

(* --- Parsing ----------------------------------------------------------- *)

let parse_line line =
  (* ann(parent, child) = RHS *)
  let line = String.trim line in
  if line = "" || String.length line >= 1 && line.[0] = '#' then Ok None
  else
    match String.index_opt line '=' with
    | None -> Error (Printf.sprintf "missing '=' in %S" line)
    | Some eq ->
      let lhs = String.trim (String.sub line 0 eq) in
      let rhs =
        String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
      in
      let fail () = Error (Printf.sprintf "malformed annotation %S" line) in
      if String.length lhs < 5 || String.sub lhs 0 4 <> "ann(" ||
         lhs.[String.length lhs - 1] <> ')'
      then fail ()
      else begin
        let inner = String.sub lhs 4 (String.length lhs - 5) in
        match String.index_opt inner ',' with
        | None -> fail ()
        | Some comma ->
          let parent = String.trim (String.sub inner 0 comma) in
          let child =
            String.trim
              (String.sub inner (comma + 1) (String.length inner - comma - 1))
          in
          if parent = "" || child = "" then fail ()
          else begin
            match rhs with
            | "Y" -> Ok (Some ((parent, child), Allow))
            | "N" -> Ok (Some ((parent, child), Deny))
            | _ ->
              if String.length rhs >= 2 && rhs.[0] = '['
                 && rhs.[String.length rhs - 1] = ']'
              then begin
                let body = String.sub rhs 1 (String.length rhs - 2) in
                match Smoqe_rxpath.Parser.qual_of_string body with
                | Ok q -> Ok (Some ((parent, child), Cond q))
                | Error msg ->
                  Error (Printf.sprintf "bad qualifier in %S: %s" line msg)
              end
              else fail ()
          end
      end

let of_string dtd input =
  let lines = String.split_on_char '\n' input in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match parse_line line with
      | Ok None -> go acc rest
      | Ok (Some ann) -> go (ann :: acc) rest
      | Error msg -> Error msg)
  in
  match go [] lines with
  | Error msg -> Error msg
  | Ok anns ->
    (match create dtd anns with
    | t -> Ok t
    | exception Invalid_argument msg -> Error msg)
