(** Manually specified views — SMOQE's first view-definition mode.

    Besides deriving views from access-control policies, the demo lets a
    user define an XML view directly, "by annotating a view schema" with
    Regular XPath queries (paper §2, Fig. 2): a view DTD plus, for each of
    its edges, an extraction query over the document.  This module builds
    a {!Derive.view} from such a specification, after checking it is
    coherent (every view edge annotated, extraction queries only using
    document element types, extraction targets label-consistent with the
    view type they populate).

    Concrete syntax, one annotation per line (comments start with [#]):
    {v
    sigma(patient, treatment) = visit/treatment[medication]
    sigma(parent, patient) = patient
    v} *)

val of_annotations :
  doc_dtd:Smoqe_xml.Dtd.t ->
  view_dtd:Smoqe_xml.Dtd.t ->
  ((string * string) * Smoqe_rxpath.Ast.path) list ->
  (Derive.view, string) result
(** Build a view from explicit per-edge extraction queries.  Checks:
    the two DTDs share their root type; every edge of the view DTD is
    annotated exactly once and no non-edge is annotated; every tag used in
    an extraction query is declared in the document DTD; every extraction
    path ends in steps labeled with the view edge's child type (so the
    populated nodes really are of that type). *)

val of_string :
  doc_dtd:Smoqe_xml.Dtd.t ->
  view_dtd:Smoqe_xml.Dtd.t ->
  string ->
  (Derive.view, string) result
(** Parse the concrete [sigma(parent, child) = path] syntax. *)

val to_string : Derive.view -> string
(** Render a view's specification in the same syntax ({!of_string} inverse
    for manually specified views). *)
