module Dtd = Smoqe_xml.Dtd
module Ast = Smoqe_rxpath.Ast

let ( let* ) = Result.bind

module String_set = Set.Make (String)

(* Possible labels of a path's target nodes, given the context label. *)
type labels =
  | Any_label
  | Labels of String_set.t

let union_labels a b =
  match a, b with
  | Any_label, _ | _, Any_label -> Any_label
  | Labels x, Labels y -> Labels (String_set.union x y)

let rec target_labels p ctx =
  match p with
  | Ast.Self -> ctx
  | Ast.Tag s -> Labels (String_set.singleton s)
  | Ast.Wildcard -> Any_label
  | Ast.Text -> Labels (String_set.singleton "#text")
  | Ast.Seq (a, b) -> target_labels b (target_labels a ctx)
  | Ast.Union (a, b) -> union_labels (target_labels a ctx) (target_labels b ctx)
  | Ast.Star a ->
    (* zero iterations keep the context; one or more end wherever the body
       can, from an arbitrary intermediate context *)
    union_labels ctx (target_labels a Any_label)
  | Ast.Filter (a, _) -> target_labels a ctx

let check_edge doc_dtd ~parent ~child path =
  let doc_types = Dtd.element_names doc_dtd in
  let bad_tags =
    List.filter (fun tag -> not (List.mem tag doc_types)) (Ast.tags path)
  in
  if bad_tags <> [] then
    Error
      (Printf.sprintf "sigma(%s, %s) uses undeclared document tags: %s" parent
         child
         (String.concat ", " bad_tags))
  else begin
    match target_labels path (Labels (String_set.singleton parent)) with
    | Labels set when String_set.equal set (String_set.singleton child) ->
      Ok ()
    | Labels set ->
      Error
        (Printf.sprintf
           "sigma(%s, %s) can select nodes labeled {%s}, not only %s" parent
           child
           (String.concat ", " (String_set.elements set))
           child)
    | Any_label ->
      Error
        (Printf.sprintf
           "sigma(%s, %s) ends in a wildcard: its targets are not guaranteed \
            to be %s elements"
           parent child child)
  end

let of_annotations ~doc_dtd ~view_dtd annotations =
  let* () =
    if Dtd.root doc_dtd = Dtd.root view_dtd then Ok ()
    else
      Error
        (Printf.sprintf "view root %s differs from document root %s"
           (Dtd.root view_dtd) (Dtd.root doc_dtd))
  in
  let view_edges = List.sort_uniq compare (Dtd.edges view_dtd) in
  let annotated = List.map fst annotations in
  let* () =
    match List.filter (fun e -> not (List.mem e annotated)) view_edges with
    | [] -> Ok ()
    | (p, c) :: _ ->
      Error (Printf.sprintf "view edge (%s, %s) has no sigma annotation" p c)
  in
  let* () =
    match List.filter (fun e -> not (List.mem e view_edges)) annotated with
    | [] -> Ok ()
    | (p, c) :: _ ->
      Error (Printf.sprintf "sigma(%s, %s) annotates a non-edge of the view DTD" p c)
  in
  let* () =
    let seen = Hashtbl.create 16 in
    List.fold_left
      (fun acc (edge, _) ->
        let* () = acc in
        if Hashtbl.mem seen edge then begin
          let p, c = edge in
          Error (Printf.sprintf "sigma(%s, %s) annotated twice" p c)
        end
        else begin
          Hashtbl.add seen edge ();
          Ok ()
        end)
      (Ok ()) annotations
  in
  let* () =
    List.fold_left
      (fun acc ((parent, child), path) ->
        let* () = acc in
        check_edge doc_dtd ~parent ~child path)
      (Ok ()) annotations
  in
  Ok
    (Derive.unsafe_make
       ~visible:(Dtd.reachable view_dtd)
       ~sigma:annotations ~view_dtd ~approximated:[] ())

(* --- concrete syntax ----------------------------------------------------- *)

let parse_line line =
  let line = String.trim line in
  if line = "" || (String.length line >= 1 && line.[0] = '#') then Ok None
  else begin
    match String.index_opt line '=' with
    | None -> Error (Printf.sprintf "missing '=' in %S" line)
    | Some eq ->
      let lhs = String.trim (String.sub line 0 eq) in
      let rhs =
        String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
      in
      let fail () = Error (Printf.sprintf "malformed annotation %S" line) in
      if
        String.length lhs < 7
        || String.sub lhs 0 6 <> "sigma("
        || lhs.[String.length lhs - 1] <> ')'
      then fail ()
      else begin
        let inner = String.sub lhs 6 (String.length lhs - 7) in
        match String.index_opt inner ',' with
        | None -> fail ()
        | Some comma ->
          let parent = String.trim (String.sub inner 0 comma) in
          let child =
            String.trim
              (String.sub inner (comma + 1) (String.length inner - comma - 1))
          in
          if parent = "" || child = "" then fail ()
          else begin
            match Smoqe_rxpath.Parser.path_of_string rhs with
            | Ok path -> Ok (Some ((parent, child), path))
            | Error msg ->
              Error (Printf.sprintf "bad path in %S: %s" line msg)
          end
      end
  end

let of_string ~doc_dtd ~view_dtd input =
  let lines = String.split_on_char '\n' input in
  let* annotations =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let* parsed = parse_line line in
        match parsed with
        | None -> Ok acc
        | Some ann -> Ok (ann :: acc))
      (Ok []) lines
  in
  of_annotations ~doc_dtd ~view_dtd (List.rev annotations)

let to_string view = Fmt.str "%a" Derive.pp_spec view
