lib/automata/dot.ml: Afa Array Buffer Fmt List Mfa Nfa Printf String
