lib/automata/nfa.ml: Array Fmt List Smoqe_xml String
