lib/automata/reachability.mli: Nfa Set
