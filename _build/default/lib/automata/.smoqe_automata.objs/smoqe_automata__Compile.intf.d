lib/automata/compile.mli: Afa Mfa Nfa Smoqe_rxpath
