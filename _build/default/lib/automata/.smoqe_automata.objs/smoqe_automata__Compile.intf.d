lib/automata/compile.mli: Afa Mfa Nfa Smoqe_robust Smoqe_rxpath
