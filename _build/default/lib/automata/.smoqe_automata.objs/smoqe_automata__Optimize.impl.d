lib/automata/optimize.ml: Afa Array Fmt Hashtbl List Mfa Nfa Reachability
