lib/automata/reachability.ml: Array List Nfa Set String
