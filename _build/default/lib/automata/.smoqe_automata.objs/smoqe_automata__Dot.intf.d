lib/automata/dot.mli: Mfa
