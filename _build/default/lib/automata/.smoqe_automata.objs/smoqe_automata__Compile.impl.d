lib/automata/compile.ml: Afa Mfa Nfa Smoqe_robust Smoqe_rxpath
