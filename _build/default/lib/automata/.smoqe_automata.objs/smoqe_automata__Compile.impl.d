lib/automata/compile.ml: Afa Mfa Nfa Smoqe_rxpath
