lib/automata/analysis.mli: Mfa Smoqe_xml
