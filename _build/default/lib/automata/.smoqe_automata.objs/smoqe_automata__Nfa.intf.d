lib/automata/nfa.mli: Format Smoqe_xml
