lib/automata/analysis.ml: Array Hashtbl List Mfa Nfa Smoqe_xml
