lib/automata/afa.ml: Fmt List Nfa
