lib/automata/mfa.mli: Afa Nfa
