lib/automata/optimize.mli: Format Mfa
