lib/automata/afa.mli: Format Nfa
