lib/automata/mfa.ml: Afa Array List Nfa
