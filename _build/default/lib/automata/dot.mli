(** Graphviz export of MFAs — the automaton view of iSMOQE (paper Fig. 4).

    Selection states are circles (double for accepting); qualifier checks
    appear as dashed edges from the guarded state to a box holding the
    formula; atom sub-automata are labeled by their atom id and value
    constraint. *)

val mfa_to_dot : ?name:string -> Mfa.t -> string

val mfa_to_ascii : Mfa.t -> string
(** A terminal-friendly adjacency listing of the same information. *)
