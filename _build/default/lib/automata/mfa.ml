type t = {
  nfa : Nfa.t;
  start : Nfa.state;
  quals : Afa.formula array;
  atoms : Afa.atom array;
}

type builder = {
  nb : Nfa.builder;
  mutable rev_quals : Afa.formula list;
  mutable n_quals : int;
  mutable rev_atoms : Afa.atom list;
  mutable n_atoms : int;
}

let create_builder () =
  {
    nb = Nfa.create_builder ();
    rev_quals = [];
    n_quals = 0;
    rev_atoms = [];
    n_atoms = 0;
  }

let fresh_state b = Nfa.fresh_state b.nb
let add_edge b s test s' = Nfa.add_edge b.nb s test s'
let add_eps b s s' = Nfa.add_eps b.nb s s'
let add_select b s = Nfa.add_accept b.nb s Nfa.Select

let add_qual b f =
  let id = b.n_quals in
  b.rev_quals <- f :: b.rev_quals;
  b.n_quals <- id + 1;
  id

let add_check b s qual = Nfa.add_check b.nb s qual

let add_atom b ~start ~value =
  let id = b.n_atoms in
  b.rev_atoms <- { Afa.start; value } :: b.rev_atoms;
  b.n_atoms <- id + 1;
  id

let add_accept_atom b s id = Nfa.add_accept b.nb s (Nfa.Atom_accept id)

let freeze b ~start =
  {
    nfa = Nfa.freeze b.nb;
    start;
    quals = Array.of_list (List.rev b.rev_quals);
    atoms = Array.of_list (List.rev b.rev_atoms);
  }

let n_states t = t.nfa.Nfa.n_states
let n_transitions t = Nfa.n_transitions t.nfa
let n_quals t = Array.length t.quals
let n_atoms t = Array.length t.atoms

let size t =
  let formulas =
    Array.fold_left (fun acc f -> acc + Afa.size f) 0 t.quals
  in
  n_states t + n_transitions t + formulas
