(** Mixed finite state automata (MFA) — the query representation of SMOQE.

    An MFA is a selection NFA annotated with alternating automata for the
    qualifiers (paper §3, Rewriter; Fig. 4).  All component automata share
    one state space ({!Nfa.t}); [quals] maps qualifier ids (referenced by
    state checks) to formulas, and [atoms] maps atom ids to their run entry
    points.

    The {!builder} is shared by query compilation ({!Compile}) and view
    rewriting ([Smoqe_rewrite.Rewriter]), which both emit MFAs. *)

type t = private {
  nfa : Nfa.t;
  start : Nfa.state;
  quals : Afa.formula array;
  atoms : Afa.atom array;
}

(** {1 Building} *)

type builder

val create_builder : unit -> builder

val fresh_state : builder -> Nfa.state
val add_edge : builder -> Nfa.state -> Nfa.test -> Nfa.state -> unit
val add_eps : builder -> Nfa.state -> Nfa.state -> unit
val add_select : builder -> Nfa.state -> unit

val add_qual : builder -> Afa.formula -> int
(** Register a qualifier formula; returns its id. *)

val add_check : builder -> Nfa.state -> int -> unit
(** Guard a state with a registered qualifier. *)

val add_atom : builder -> start:Nfa.state -> value:string option -> int
(** Register a qualifier atom; returns its id.  Mark its accepting states
    with [Nfa.Atom_accept id] via {!add_accept_atom}. *)

val add_accept_atom : builder -> Nfa.state -> int -> unit

val freeze : builder -> start:Nfa.state -> t

(** {1 Measures} *)

val n_states : t -> int
val n_transitions : t -> int
val n_quals : t -> int
val n_atoms : t -> int

val size : t -> int
(** States + transitions + formula sizes: the size measure reported by the
    rewriting experiment (E5). *)
