(** Alternating-automaton side of an MFA: qualifier formulas over atoms.

    A qualifier compiles to a boolean {!formula} whose leaves are {e atoms}
    — existential path tests, each owning a start state in the shared NFA
    and optionally a value-equality constraint on the accepting node.  The
    alternation (and/or/not over existential runs) is what the paper's AFA
    provides; evaluation order is resolved by HyPE at post-visit time. *)

type formula =
  | F_true
  | F_atom of int  (** atom id *)
  | F_not of formula
  | F_and of formula * formula
  | F_or of formula * formula

type atom = {
  start : Nfa.state;
      (** run entry in the shared NFA, positioned at the context node *)
  value : string option;
      (** [Some c]: the accepting node's value must equal [c] *)
}

val atoms_of : formula -> int list
(** Atom ids mentioned, ascending, without duplicates. *)

val eval : formula -> (int -> bool) -> bool
(** Evaluate under a valuation of the atoms. *)

val pp : Format.formatter -> formula -> unit

val size : formula -> int
