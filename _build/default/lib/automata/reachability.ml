module String_set = Set.Make (String)

type need =
  | All
  | Req of String_set.t * bool

(* Meet in the lattice ordered by "requires more": All is top, smaller
   requirement sets are lower.  Alternation (two ways to accept) can only
   rely on what both ways require. *)
let meet a b =
  match a, b with
  | All, x | x, All -> x
  | Req (la, ta), Req (lb, tb) ->
    Req (String_set.inter la lb, ta && tb)

(* Sequencing a node test before a continuation adds its requirement. *)
let after_test test k =
  match k with
  | All -> All
  | Req (labels, text) ->
    (match test with
    | Nfa.Any_element -> k
    | Nfa.Element s -> Req (String_set.add s labels, text)
    | Nfa.Text_node -> Req (labels, true))

let equal a b =
  match a, b with
  | All, All -> true
  | Req (la, ta), Req (lb, tb) -> ta = tb && String_set.equal la lb
  | All, Req _ | Req _, All -> false

let compute (nfa : Nfa.t) =
  let n = nfa.Nfa.n_states in
  let needs = Array.make n All in
  (* Accepting states require nothing further. *)
  for s = 0 to n - 1 do
    if nfa.Nfa.accepts.(s) <> [] then
      needs.(s) <- Req (String_set.empty, false)
  done;
  let base = Array.copy needs in
  let changed = ref true in
  while !changed do
    changed := false;
    for s = n - 1 downto 0 do
      let acc = ref base.(s) in
      List.iter
        (fun (test, s') -> acc := meet !acc (after_test test needs.(s')))
        nfa.Nfa.delta.(s);
      List.iter (fun s' -> acc := meet !acc needs.(s')) nfa.Nfa.eps.(s);
      if not (equal !acc needs.(s)) then begin
        needs.(s) <- !acc;
        changed := true
      end
    done
  done;
  needs

let useless need ~in_subtree ~has_text =
  match need with
  | All -> true
  | Req (labels, text) ->
    (text && not has_text)
    || String_set.exists (fun l -> not (in_subtree l)) labels
