(** Per-state "must" analysis for TAX pruning.

    Runs move strictly downward, so once a run enters a subtree it can only
    ever produce effects (candidate selections, atom accepts) {e inside}
    that subtree.  For each state the analysis computes the set of element
    labels (and whether a text node) that {b every} accepting path from the
    state still has to match.  If any such label is absent from a subtree's
    TAX descendant-type set, no run from that state can accept inside it —
    the subtree may be pruned.  This is what makes TAX effective even for
    queries with the descendant axis (paper §3, Indexer): wildcard steps
    impose no requirement, but the anchoring labels behind them do. *)

module String_set : Set.S with type elt = string

type need =
  | All
      (** no acceptance is reachable at all — descending is always useless *)
  | Req of String_set.t * bool
      (** labels every accepting path still needs; the flag marks a
          mandatory text-node test *)

val compute : Nfa.t -> need array
(** Greatest fixpoint over the (possibly cyclic) automaton graph. *)

val useless : need -> in_subtree:(string -> bool) -> has_text:bool -> bool
(** [true] when some mandatory requirement cannot be met inside the
    subtree. *)
