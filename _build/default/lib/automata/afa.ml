type formula =
  | F_true
  | F_atom of int
  | F_not of formula
  | F_and of formula * formula
  | F_or of formula * formula

type atom = {
  start : Nfa.state;
  value : string option;
}

let atoms_of f =
  let rec go acc = function
    | F_true -> acc
    | F_atom i -> if List.mem i acc then acc else i :: acc
    | F_not f -> go acc f
    | F_and (a, b) | F_or (a, b) -> go (go acc a) b
  in
  List.sort compare (go [] f)

let rec eval f valuation =
  match f with
  | F_true -> true
  | F_atom i -> valuation i
  | F_not f -> not (eval f valuation)
  | F_and (a, b) -> eval a valuation && eval b valuation
  | F_or (a, b) -> eval a valuation || eval b valuation

let rec pp ppf = function
  | F_true -> Fmt.string ppf "true"
  | F_atom i -> Fmt.pf ppf "a%d" i
  | F_not f -> Fmt.pf ppf "not(%a)" pp f
  | F_and (a, b) -> Fmt.pf ppf "(%a and %a)" pp a pp b
  | F_or (a, b) -> Fmt.pf ppf "(%a or %a)" pp a pp b

let rec size = function
  | F_true | F_atom _ -> 1
  | F_not f -> 1 + size f
  | F_and (a, b) | F_or (a, b) -> 1 + size a + size b
