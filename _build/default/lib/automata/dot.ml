let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let test_label = function
  | Nfa.Any_element -> "*"
  | Nfa.Element s -> s
  | Nfa.Text_node -> "text()"

let state_shape (mfa : Mfa.t) s =
  let accepts = mfa.Mfa.nfa.Nfa.accepts.(s) in
  if List.mem Nfa.Select accepts then "doublecircle"
  else if List.exists (function Nfa.Atom_accept _ -> true | Nfa.Select -> false) accepts
  then "Mcircle"
  else "circle"

let mfa_to_dot ?(name = "mfa") (mfa : Mfa.t) =
  let buf = Buffer.create 1024 in
  let nfa = mfa.Mfa.nfa in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf "  node [fontsize=11];\n";
  (* Entry marker. *)
  Buffer.add_string buf "  __start [shape=point];\n";
  Buffer.add_string buf
    (Printf.sprintf "  __start -> s%d;\n" mfa.Mfa.start);
  for s = 0 to nfa.Nfa.n_states - 1 do
    let atom_marks =
      List.filter_map
        (function Nfa.Atom_accept i -> Some (Printf.sprintf "a%d" i) | Nfa.Select -> None)
        nfa.Nfa.accepts.(s)
    in
    let label =
      if atom_marks = [] then string_of_int s
      else Printf.sprintf "%d\\n%s" s (String.concat "," atom_marks)
    in
    Buffer.add_string buf
      (Printf.sprintf "  s%d [shape=%s,label=\"%s\"];\n" s
         (state_shape mfa s) label)
  done;
  for s = 0 to nfa.Nfa.n_states - 1 do
    List.iter
      (fun (test, s') ->
        Buffer.add_string buf
          (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" s s'
             (escape (test_label test))))
      nfa.Nfa.delta.(s);
    List.iter
      (fun s' ->
        Buffer.add_string buf
          (Printf.sprintf "  s%d -> s%d [label=\"ε\",style=dotted];\n" s s'))
      nfa.Nfa.eps.(s);
    List.iter
      (fun q ->
        Buffer.add_string buf
          (Printf.sprintf "  s%d -> q%d [style=dashed,arrowhead=open];\n" s q))
      nfa.Nfa.checks.(s)
  done;
  Array.iteri
    (fun i f ->
      Buffer.add_string buf
        (Printf.sprintf "  q%d [shape=box,label=\"q%d: %s\"];\n" i i
           (escape (Fmt.str "%a" Afa.pp f))))
    mfa.Mfa.quals;
  Array.iteri
    (fun i (atom : Afa.atom) ->
      let value =
        match atom.Afa.value with
        | None -> ""
        | Some c -> Printf.sprintf " = '%s'" c
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  atom%d [shape=plaintext,label=\"a%d: start s%d%s\"];\n" i i
           atom.Afa.start (escape value));
      Buffer.add_string buf
        (Printf.sprintf "  atom%d -> s%d [style=dashed,color=gray];\n" i
           atom.Afa.start))
    mfa.Mfa.atoms;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let mfa_to_ascii (mfa : Mfa.t) =
  let buf = Buffer.create 512 in
  let nfa = mfa.Mfa.nfa in
  Buffer.add_string buf
    (Printf.sprintf "MFA: %d states, start %d, %d qualifier(s), %d atom(s)\n"
       nfa.Nfa.n_states mfa.Mfa.start
       (Array.length mfa.Mfa.quals)
       (Array.length mfa.Mfa.atoms));
  for s = 0 to nfa.Nfa.n_states - 1 do
    let marks = ref [] in
    List.iter
      (function
        | Nfa.Select -> marks := "SELECT" :: !marks
        | Nfa.Atom_accept i -> marks := Printf.sprintf "ACCEPT(a%d)" i :: !marks)
      nfa.Nfa.accepts.(s);
    List.iter
      (fun q -> marks := Printf.sprintf "CHECK(q%d)" q :: !marks)
      nfa.Nfa.checks.(s);
    let mark_str =
      if !marks = [] then "" else "  [" ^ String.concat ", " !marks ^ "]"
    in
    Buffer.add_string buf (Printf.sprintf "  state %d%s\n" s mark_str);
    List.iter
      (fun (test, s') ->
        Buffer.add_string buf
          (Printf.sprintf "    --%s--> %d\n" (test_label test) s'))
      nfa.Nfa.delta.(s);
    List.iter
      (fun s' -> Buffer.add_string buf (Printf.sprintf "    --eps--> %d\n" s'))
      nfa.Nfa.eps.(s)
  done;
  Array.iteri
    (fun i f ->
      Buffer.add_string buf (Fmt.str "  q%d := %a\n" i Afa.pp f))
    mfa.Mfa.quals;
  Array.iteri
    (fun i (atom : Afa.atom) ->
      Buffer.add_string buf
        (Printf.sprintf "  a%d := runs from state %d%s\n" i atom.Afa.start
           (match atom.Afa.value with
           | None -> ""
           | Some c -> Printf.sprintf " with value '%s'" c)))
    mfa.Mfa.atoms;
  Buffer.contents buf
