type report = {
  states_before : int;
  states_after : int;
  transitions_before : int;
  transitions_after : int;
}

let pp_report ppf r =
  Fmt.pf ppf "states %d -> %d, transitions %d -> %d" r.states_before
    r.states_after r.transitions_before r.transitions_after

(* States reachable from [s] through epsilon edges that never cross a
   check-guarded state: their behaviour can be folded into [s].  [s] itself
   is included whatever its checks (they guard entry into [s], which the
   fold does not change). *)
let checkfree_closure (nfa : Nfa.t) s =
  let seen = Hashtbl.create 8 in
  let rec visit u =
    if not (Hashtbl.mem seen u) then begin
      Hashtbl.add seen u ();
      List.iter
        (fun v -> if nfa.Nfa.checks.(v) = [] then visit v)
        nfa.Nfa.eps.(u)
    end
  in
  visit s;
  Hashtbl.fold (fun u () acc -> u :: acc) seen []

(* Epsilon successors that must survive: check-guarded targets reachable
   from the closure. *)
let guarded_eps_frontier (nfa : Nfa.t) closure =
  List.concat_map
    (fun u ->
      List.filter (fun v -> nfa.Nfa.checks.(v) <> []) nfa.Nfa.eps.(u))
    closure
  |> List.sort_uniq compare

let optimize_with_report (mfa : Mfa.t) =
  let nfa = mfa.Mfa.nfa in
  let n = nfa.Nfa.n_states in
  let before_states = n and before_transitions = Nfa.n_transitions nfa in
  (* Transitions into states that can never accept are useless. *)
  let needs = Reachability.compute nfa in
  let dead s = needs.(s) = Reachability.All in
  (* Folded view of every state. *)
  let closure = Array.init n (fun s -> checkfree_closure nfa s) in
  let folded_delta =
    Array.init n (fun s ->
        List.concat_map
          (fun u ->
            List.filter (fun (_, v) -> not (dead v)) nfa.Nfa.delta.(u))
          closure.(s)
        |> List.sort_uniq compare)
  in
  let folded_eps =
    Array.init n (fun s ->
        guarded_eps_frontier nfa closure.(s)
        |> List.filter (fun v -> not (dead v)))
  in
  let folded_accepts =
    Array.init n (fun s ->
        List.concat_map (fun u -> nfa.Nfa.accepts.(u)) closure.(s)
        |> List.sort_uniq compare)
  in
  (* Reachability over the folded automaton, from the selection start and
     every atom entry (atom entries stay live whatever the policy). *)
  let keep = Array.make n false in
  let rec visit s =
    if not keep.(s) then begin
      keep.(s) <- true;
      List.iter (fun (_, v) -> visit v) folded_delta.(s);
      List.iter visit folded_eps.(s)
    end
  in
  visit mfa.Mfa.start;
  Array.iter (fun (atom : Afa.atom) -> visit atom.Afa.start) mfa.Mfa.atoms;
  (* Rebuild with renumbering. *)
  let b = Mfa.create_builder () in
  let remap = Array.make n (-1) in
  for s = 0 to n - 1 do
    if keep.(s) then remap.(s) <- Mfa.fresh_state b
  done;
  (* Qualifier table first, preserving ids (checks reference them). *)
  Array.iter (fun formula -> ignore (Mfa.add_qual b formula)) mfa.Mfa.quals;
  let atom_map =
    Array.map
      (fun (atom : Afa.atom) ->
        Mfa.add_atom b ~start:remap.(atom.Afa.start) ~value:atom.Afa.value)
      mfa.Mfa.atoms
  in
  for s = 0 to n - 1 do
    if keep.(s) then begin
      let s' = remap.(s) in
      List.iter (fun (test, v) -> Mfa.add_edge b s' test remap.(v)) folded_delta.(s);
      List.iter (fun v -> Mfa.add_eps b s' remap.(v)) folded_eps.(s);
      List.iter (fun q -> Mfa.add_check b s' q) nfa.Nfa.checks.(s);
      List.iter
        (fun accept ->
          match accept with
          | Nfa.Select -> Mfa.add_select b s'
          | Nfa.Atom_accept aid -> Mfa.add_accept_atom b s' atom_map.(aid))
        folded_accepts.(s)
    end
  done;
  let optimized = Mfa.freeze b ~start:remap.(mfa.Mfa.start) in
  ( optimized,
    {
      states_before = before_states;
      states_after = Mfa.n_states optimized;
      transitions_before = before_transitions;
      transitions_after = Mfa.n_transitions optimized;
    } )

let optimize mfa = fst (optimize_with_report mfa)
