(** Linear-size compilation of Regular XPath into MFA.

    Thompson-style construction: each path operator adds a constant number
    of states and transitions, each qualifier adds one formula whose atoms
    are sub-automata in the shared state space — so the MFA is linear in
    the query (the property the paper contrasts with the exponential
    expression-level rewriting, §3 Rewriter). *)

val compile : ?budget:Smoqe_robust.Budget.t -> Smoqe_rxpath.Ast.path -> Mfa.t
(** With [budget], the finished automaton's state count is checked against
    [max_states] (raising [Smoqe_robust.Budget.Exceeded]): compilation is
    linear, so a post-hoc check bounds the work within a constant factor. *)

val build_path :
  Mfa.builder ->
  Smoqe_rxpath.Ast.path ->
  entry:Nfa.state ->
  exit:Nfa.state ->
  unit
(** Splice a path automaton between two existing states — the hook the view
    rewriter uses to substitute document-level fragments for view steps. *)

val build_qual : Mfa.builder -> Smoqe_rxpath.Ast.qual -> Afa.formula
(** Compile a qualifier: registers its atoms and returns the formula
    (register it with {!Mfa.add_qual} to obtain a check id). *)
