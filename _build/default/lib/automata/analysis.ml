module Dtd = Smoqe_xml.Dtd

type verdict =
  | Empty
  | Possibly_nonempty

(* Product state: an NFA state positioned at a node of a given element
   type (Text_t for text nodes).  Transitions follow the schema graph. *)
type ptype =
  | Elem_t of string
  | Text_t

let explore (mfa : Mfa.t) dtd =
  let nfa = mfa.Mfa.nfa in
  let seen : (int * ptype, unit) Hashtbl.t = Hashtbl.create 64 in
  let found = ref false in
  let rec visit s pt =
    if (not !found) && not (Hashtbl.mem seen (s, pt)) then begin
      Hashtbl.add seen (s, pt) ();
      if List.mem Nfa.Select nfa.Nfa.accepts.(s) then found := true
      else begin
        List.iter (fun s' -> visit s' pt) nfa.Nfa.eps.(s);
        match pt with
        | Text_t -> () (* text nodes have no children *)
        | Elem_t a ->
          let children = Dtd.child_types dtd a in
          let text_ok = Dtd.allows_text dtd a in
          List.iter
            (fun (test, s') ->
              match test with
              | Nfa.Element b ->
                if List.mem b children then visit s' (Elem_t b)
              | Nfa.Any_element ->
                List.iter (fun b -> visit s' (Elem_t b)) children
              | Nfa.Text_node -> if text_ok then visit s' Text_t)
            nfa.Nfa.delta.(s)
      end
    end
  in
  visit mfa.Mfa.start (Elem_t (Dtd.root dtd));
  (!found, Hashtbl.length seen)

let satisfiable mfa dtd =
  if fst (explore mfa dtd) then Possibly_nonempty else Empty

let reachable_type_pairs mfa dtd = snd (explore mfa dtd)
