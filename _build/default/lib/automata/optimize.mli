(** MFA optimization — the query-optimization techniques the demo turns on
    and off to show their impact (paper §3: "how SMOQE optimizes and
    evaluates Regular XPath queries").

    Three answer-preserving transformations, applied together by
    {!optimize}:

    - {b epsilon elimination}: consuming transitions, accept marks and
      residual epsilon edges are pulled back across check-free epsilon
      chains, so runs spend no time walking Thompson glue (check-guarded
      states cannot be crossed — their qualifier must be consulted at the
      node — and keep their incoming epsilon edges);
    - {b dead-transition pruning}: transitions into states from which no
      acceptance is reachable are dropped;
    - {b unreachable-state removal}: states no longer reachable from the
      selection start or any qualifier-atom entry are removed and the
      automaton is renumbered.

    Especially effective on rewritten view queries, whose product
    construction leaves long epsilon chains and unreachable type-layer
    copies.  Equivalence with the unoptimized automaton is property-tested;
    experiment E8 measures the size and evaluation-time impact. *)

val optimize : Mfa.t -> Mfa.t

type report = {
  states_before : int;
  states_after : int;
  transitions_before : int;
  transitions_after : int;
}

val optimize_with_report : Mfa.t -> Mfa.t * report

val pp_report : Format.formatter -> report -> unit
