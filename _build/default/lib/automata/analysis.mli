(** Schema-aware static analysis of MFAs.

    [satisfiable mfa dtd] over-approximates whether the selection path of
    [mfa] can select {e any} node on {e some} document valid against
    [dtd]: the selection NFA is run over the schema graph (a product of
    automaton states and element types), treating qualifiers as satisfiable
    and content models as child-type sets.  [Empty] is therefore a
    guarantee — the engine skips evaluation outright — while
    [Possibly_nonempty] promises nothing.

    Typical [Empty] verdicts: queries naming tags the schema does not
    declare, steps that violate the parent/child relation (e.g.
    [hospital/medication]), and — after view rewriting — any query
    touching element types a policy hides. *)

type verdict =
  | Empty  (** provably selects nothing on every valid document *)
  | Possibly_nonempty

val satisfiable : Mfa.t -> Smoqe_xml.Dtd.t -> verdict

val reachable_type_pairs : Mfa.t -> Smoqe_xml.Dtd.t -> int
(** Size of the explored (state, type) product — a cost/diagnostic
    measure. *)
