(** Per-node evaluation trace — the data behind iSMOQE's colored tree view
    (paper §3, "The output visualizer"): whether each node was visited,
    stored in Cans, selected as an answer, or skipped — and which
    optimization pruned it. *)

type mark =
  | Visited  (** entered with at least one active run *)
  | Dead  (** entered but no run matched *)
  | Skipped_dead  (** never entered: ancestor had no runs *)
  | Pruned_tax  (** never entered: TAX pruned the enclosing subtree *)
  | In_cans  (** stored as a candidate *)
  | Answer  (** in the final answer *)

type t

val create : unit -> t
val mark : t -> int -> mark -> unit
val marks : t -> int -> mark list
val marked : t -> int -> mark -> bool

val render : t -> Smoqe_xml.Tree.t -> string
(** Indented tree listing with one status column per node, e.g.
    [visited,cans,answer] — the terminal stand-in for the GUI's colors. *)

val summary : t -> (mark * int) list
(** Count of nodes per mark. *)

val mark_to_string : mark -> string
