(** Deferred qualifier conditions.

    HyPE discovers candidate answers top-down, before the qualifiers
    guarding them have been evaluated (their truth depends on subtrees not
    yet traversed).  A run therefore carries the set of conditions it has
    assumed — pairs of (qualifier id, node id) — and a candidate records a
    disjunction of such sets, one per run that selected it.  Conditions are
    resolved when the traversal leaves the node (post-visit), and
    candidates are settled in a final pass over Cans. *)

type cond = int * int
(** (qualifier id, node id) — "qualifier q holds at node n". *)

type set
(** A conjunction of conditions: sorted, duplicate-free. *)

val empty : set
val is_empty : set -> bool
val add : cond -> set -> set
val union : set -> set -> set
val to_list : set -> cond list
val cardinal : set -> int
val subset : set -> set -> bool
val compare_set : set -> set -> int

type dnf
(** A disjunction of condition sets, with subsumption: a set that is a
    superset of an existing one is never kept.  The empty set makes the
    whole disjunction unconditionally true. *)

val dnf_false : dnf
val dnf_is_false : dnf -> bool
val dnf_is_unconditional : dnf -> bool

val dnf_add : dnf -> set -> dnf

val dnf_sets : dnf -> set list
(** The kept sets ([[]] when unconditional or false — distinguish with the
    predicates above). *)

val dnf_eval : dnf -> (cond -> bool) -> bool
(** Truth under a complete valuation of the conditions. *)

val dnf_size : dnf -> int
(** Number of kept sets (0 for false, 0 for unconditional). *)

val pp_set : Format.formatter -> set -> unit
val pp_dnf : Format.formatter -> dnf -> unit
