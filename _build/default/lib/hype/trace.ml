module Tree = Smoqe_xml.Tree

type mark =
  | Visited
  | Dead
  | Skipped_dead
  | Pruned_tax
  | In_cans
  | Answer

type t = { table : (int, mark list) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let mark t node m =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.table node) in
  if not (List.mem m existing) then
    Hashtbl.replace t.table node (m :: existing)

let marks t node =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.table node))

let marked t node m = List.mem m (marks t node)

let mark_to_string = function
  | Visited -> "visited"
  | Dead -> "dead"
  | Skipped_dead -> "skipped"
  | Pruned_tax -> "pruned(TAX)"
  | In_cans -> "cans"
  | Answer -> "ANSWER"

let render t tree =
  let buf = Buffer.create 1024 in
  Tree.iter_preorder tree (fun n ->
      let pad = String.make (2 * Tree.depth tree n) ' ' in
      let label =
        if Tree.is_text tree n then
          Printf.sprintf "%S" (Tree.text_content tree n)
        else "<" ^ Tree.name tree n ^ ">"
      in
      let status =
        match marks t n with
        | [] -> "-"
        | ms -> String.concat "," (List.map mark_to_string ms)
      in
      Buffer.add_string buf
        (Printf.sprintf "%4d %s%-30s %s\n" n pad label status));
  Buffer.contents buf

let summary t =
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ ms ->
      List.iter
        (fun m ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts m) in
          Hashtbl.replace counts m (c + 1))
        ms)
    t.table;
  Hashtbl.fold (fun m c acc -> (m, c) :: acc) counts []
  |> List.sort compare
