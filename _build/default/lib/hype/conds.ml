type cond = int * int

(* Sorted, duplicate-free list: sets stay tiny (one entry per qualifier on
   the selecting path), so lists beat balanced trees here. *)
type set = cond list

let empty = []
let is_empty s = s = []

let rec add c s =
  match s with
  | [] -> [ c ]
  | head :: tail ->
    let cmp = compare c head in
    if cmp = 0 then s
    else if cmp < 0 then c :: s
    else head :: add c tail

let rec union a b =
  match a, b with
  | [], s | s, [] -> s
  | x :: xs, y :: ys ->
    let cmp = compare x y in
    if cmp = 0 then x :: union xs ys
    else if cmp < 0 then x :: union xs b
    else y :: union a ys

let to_list s = s
let cardinal = List.length

let rec subset a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys ->
    let cmp = compare x y in
    if cmp = 0 then subset xs ys
    else if cmp < 0 then false
    else subset a ys

let compare_set (a : set) (b : set) = compare a b

type dnf =
  | False
  | Unconditional
  | Sets of set list (* none empty, pairwise non-subsuming *)

let dnf_false = False
let dnf_is_false = function False -> true | Unconditional | Sets _ -> false

let dnf_is_unconditional = function
  | Unconditional -> true
  | False | Sets _ -> false

let dnf_add dnf s =
  match dnf with
  | Unconditional -> Unconditional
  | False -> if is_empty s then Unconditional else Sets [ s ]
  | Sets sets ->
    if is_empty s then Unconditional
    else if List.exists (fun existing -> subset existing s) sets then dnf
    else Sets (s :: List.filter (fun existing -> not (subset s existing)) sets)

let dnf_sets = function False | Unconditional -> [] | Sets sets -> sets

let dnf_eval dnf valuation =
  match dnf with
  | False -> false
  | Unconditional -> true
  | Sets sets -> List.exists (fun s -> List.for_all valuation s) sets

let dnf_size = function False | Unconditional -> 0 | Sets sets -> List.length sets

let pp_cond ppf (q, n) = Fmt.pf ppf "q%d@%d" q n

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp_cond) s

let pp_dnf ppf = function
  | False -> Fmt.string ppf "false"
  | Unconditional -> Fmt.string ppf "true"
  | Sets sets -> Fmt.pf ppf "%a" Fmt.(list ~sep:(any " or ") pp_set) sets
