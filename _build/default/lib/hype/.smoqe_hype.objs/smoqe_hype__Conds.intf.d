lib/hype/conds.mli: Format
