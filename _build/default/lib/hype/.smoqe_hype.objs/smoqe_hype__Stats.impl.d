lib/hype/stats.ml: Fmt
