lib/hype/engine.ml: Array Buffer Bytes Cans Conds Hashtbl List Printf Smoqe_automata Stats String Trace
