lib/hype/trace.mli: Smoqe_xml
