lib/hype/engine.mli: Cans Smoqe_automata Stats Trace
