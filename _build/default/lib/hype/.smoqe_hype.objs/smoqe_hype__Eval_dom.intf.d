lib/hype/eval_dom.mli: Smoqe_automata Smoqe_robust Smoqe_rxpath Smoqe_tax Smoqe_xml Stats Trace
