lib/hype/eval_stax.mli: Smoqe_automata Smoqe_robust Smoqe_rxpath Smoqe_xml Stats Trace
