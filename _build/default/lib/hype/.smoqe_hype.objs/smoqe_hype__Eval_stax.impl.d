lib/hype/eval_stax.ml: Buffer Cans Engine Hashtbl List Option Smoqe_automata Smoqe_robust Smoqe_xml Stats Trace
