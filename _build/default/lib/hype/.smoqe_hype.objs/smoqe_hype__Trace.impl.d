lib/hype/trace.ml: Buffer Hashtbl List Option Printf Smoqe_xml String
