lib/hype/cans.mli: Conds
