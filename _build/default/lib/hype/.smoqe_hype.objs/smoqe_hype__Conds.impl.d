lib/hype/conds.ml: Fmt List
