lib/hype/eval_dom.ml: Array Cans Engine Smoqe_automata Smoqe_robust Smoqe_tax Smoqe_xml Stats Trace
