lib/hype/stats.mli: Format
