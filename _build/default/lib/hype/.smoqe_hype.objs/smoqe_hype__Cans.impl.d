lib/hype/cans.ml: Conds Hashtbl List
