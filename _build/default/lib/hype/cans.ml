(* Append-only during the pass (the hot path: one cons per candidate);
   grouping and condition evaluation happen in the final resolution pass. *)
type t = {
  mutable entries : (int * Conds.set) list;
  mutable n_entries : int;
}

let create () = { entries = []; n_entries = 0 }

let add t ~node set =
  t.entries <- (node, set) :: t.entries;
  t.n_entries <- t.n_entries + 1

let size t = t.n_entries

let entries t =
  let table : (int, Conds.dnf ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (node, set) ->
      match Hashtbl.find_opt table node with
      | Some cell -> cell := Conds.dnf_add !cell set
      | None -> Hashtbl.add table node (ref (Conds.dnf_add Conds.dnf_false set)))
    t.entries;
  Hashtbl.fold (fun node cell acc -> (node, !cell) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let resolve t ~lookup =
  let rec keep acc = function
    | [] -> acc
    | (node, set) :: rest ->
      if List.for_all lookup (Conds.to_list set) then keep (node :: acc) rest
      else keep acc rest
  in
  List.sort_uniq compare (keep [] t.entries)
