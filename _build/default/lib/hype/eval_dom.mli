(** HyPE over an in-memory document — SMOQE's DOM mode.

    A single top-down depth-first traversal of the tree drives the
    {!Engine}; with a TAX index the driver additionally skips whole
    subtrees the automaton provably cannot use (experiment E3 toggles
    exactly this). *)

type result = {
  answers : int list;  (** answer nodes, in document order *)
  stats : Stats.t;
  cans_size : int;  (** candidates held in Cans at the end of the pass *)
}

val run :
  ?tax:Smoqe_tax.Tax.t ->
  ?prune_threshold:int ->
  ?trace:Trace.t ->
  Smoqe_automata.Mfa.t ->
  Smoqe_xml.Tree.t ->
  result
(** [prune_threshold] (default 48): subtrees smaller than this many nodes
    are scanned rather than tested against the index — the test costs more
    than the scan below that size. *)

val eval :
  ?tax:Smoqe_tax.Tax.t ->
  Smoqe_xml.Tree.t ->
  Smoqe_rxpath.Ast.path ->
  int list
(** Compile-and-run convenience. *)
