type t = {
  mutable nodes_entered : int;
  mutable nodes_alive : int;
  mutable nodes_skipped_dead : int;
  mutable nodes_pruned_tax : int;
  mutable candidates : int;
  mutable answers : int;
  mutable conds_created : int;
  mutable quals_resolved : int;
  mutable atom_instances : int;
  mutable max_items : int;
  mutable passes_over_data : int;
}

let create () =
  {
    nodes_entered = 0;
    nodes_alive = 0;
    nodes_skipped_dead = 0;
    nodes_pruned_tax = 0;
    candidates = 0;
    answers = 0;
    conds_created = 0;
    quals_resolved = 0;
    atom_instances = 0;
    max_items = 0;
    passes_over_data = 1;
  }

let total_skipped t = t.nodes_skipped_dead + t.nodes_pruned_tax

let pp ppf t =
  Fmt.pf ppf
    "@[<v>entered: %d (alive %d)@ skipped: %d dead, %d via TAX@ candidates: \
     %d, answers: %d@ conditions: %d, qualifiers resolved: %d, atom runs: \
     %d@ peak items/node: %d, passes over data: %d@]"
    t.nodes_entered t.nodes_alive t.nodes_skipped_dead t.nodes_pruned_tax
    t.candidates t.answers t.conds_created t.quals_resolved t.atom_instances
    t.max_items t.passes_over_data
