(** Cans — the candidate-answer store (paper §3, Evaluator).

    During its single document pass HyPE appends every potential answer
    node here together with the disjunction of condition sets under which
    it was selected.  After the pass, {!resolve} settles the candidates in
    one sweep using the by-then-complete qualifier valuation.  Cans is
    "often much smaller than the XML document tree" — experiment E6
    measures exactly {!size} against document size. *)

type t

val create : unit -> t

val add : t -> node:int -> Conds.set -> unit
(** Record that [node] was selected by a run assuming these conditions. *)

val size : t -> int
(** Number of candidate entries stored (a node selected by several runs
    counts once per run). *)

val entries : t -> (int * Conds.dnf) list
(** Candidates grouped per node in document order, with their pending
    conditions as a disjunction. *)

val resolve : t -> lookup:(Conds.cond -> bool) -> int list
(** The final answer: candidates whose disjunction is true under the
    valuation, in document order. *)
