module Nfa = Smoqe_automata.Nfa
module Afa = Smoqe_automata.Afa
module Mfa = Smoqe_automata.Mfa
module Reachability = Smoqe_automata.Reachability

exception Driver_error of string

type kind =
  | El of string
  | Tx of string

type verdict =
  | Alive
  | Dead

(* A selection run: an NFA state positioned at the current node with the
   qualifier conditions assumed so far.

   Qualifiers (the AFA side of the MFA) do not use runs with conditions:
   the engine propagates the set of {e active} AFA states downward (which
   atom automata could still make progress here) and computes their
   satisfaction bottom-up at each leave — HyPE's hybrid: NFA top-down,
   AFA settled on the way back up, one traversal total. *)
type item = {
  state : Nfa.state;
  conds : Conds.set;
}

(* Frames live in a pool indexed by depth and are reused across siblings. *)
type frame = {
  mutable node : int;
  mutable kind : kind;
  mutable items : item list; (* post-closure selection items *)
  mutable active : int list; (* active AFA states at this node *)
  mutable quals_here : int list; (* qualifiers to settle at this node *)
  mutable requested : int list; (* subset assumed by selection runs *)
  mutable may_accept_value : bool; (* some active state has a value accept *)
  mutable sat : Bytes.t; (* per active state: accepts within the subtree *)
  mutable contrib : Bytes.t; (* facts pushed up by the children *)
  mutable mark : Bytes.t; (* membership in [active] *)
  mutable text_acc : Buffer.t option; (* immediate text (element value) *)
}

type t = {
  mfa : Mfa.t;
  (* per-state statics *)
  value_accepts : string array array; (* value constraints on atom accepts *)
  plain_accept : bool array; (* has an unconditional atom accept *)
  select_accept : bool array;
  atom_starts : int array array; (* per qualifier: its atoms' entry states *)
  qual_order : int array; (* dependency-topological same-node order *)
  has_value_atoms : bool;
  n_quals : int;
  (* dynamics *)
  cond_val : (Conds.cond, bool) Hashtbl.t;
  cans : Cans.t;
  stats : Stats.t;
  trace : Trace.t option;
  mutable frames : frame array;
  mutable depth : int;
  mutable out_items : item list; (* selection-closure workspace *)
  mutable n_out : int;
  qvals : bool array; (* per-leave qualifier scratch *)
  qval_epoch : int array; (* node-epoch in which each entry was settled *)
  mutable epoch : int;
  mutable entered_candidate : bool; (* last enter recorded a candidate *)
  mutable finished : bool;
  (* Fired from [enter] every 32nd node with the running node count, so a
     driver can settle resource budgets without per-node work of its own.
     The land-and-branch is paid by every run; the callback only by
     budgeted ones. *)
  mutable on_checkpoint : (int -> unit) option;
}

let fresh_frame n_states () =
  {
    node = -1;
    kind = El "";
    items = [];
    active = [];
    quals_here = [];
    requested = [];
    may_accept_value = false;
    sat = Bytes.make n_states '\000';
    contrib = Bytes.make n_states '\000';
    mark = Bytes.make n_states '\000';
    text_acc = None;
  }

let create ?trace mfa =
  let nfa = mfa.Mfa.nfa in
  let n_states = nfa.Nfa.n_states in
  let n_quals = Array.length mfa.Mfa.quals in
  let value_accepts = Array.make n_states [||] in
  let plain_accept = Array.make n_states false in
  let select_accept = Array.make n_states false in
  for s = 0 to n_states - 1 do
    let values = ref [] in
    List.iter
      (fun accept ->
        match accept with
        | Nfa.Select -> select_accept.(s) <- true
        | Nfa.Atom_accept aid ->
          (match (mfa.Mfa.atoms.(aid)).Afa.value with
          | None -> plain_accept.(s) <- true
          | Some c -> values := c :: !values))
      nfa.Nfa.accepts.(s);
    value_accepts.(s) <- Array.of_list !values
  done;
  let atom_starts =
    Array.map
      (fun formula ->
        Array.of_list
          (List.map
             (fun aid -> (mfa.Mfa.atoms.(aid)).Afa.start)
             (Afa.atoms_of formula)))
      mfa.Mfa.quals
  in
  (* Same-node settlement order: a qualifier depends on the qualifiers
     checked inside its atom subgraphs (nested view qualifiers, or the
     view-definition qualifiers a rewritten MFA splices into product
     atoms).  Acyclic by construction. *)
  let qual_order =
    let deps =
      Array.map
        (fun formula ->
          let states =
            List.concat_map
              (fun aid ->
                Nfa.reachable_states nfa (mfa.Mfa.atoms.(aid)).Afa.start)
              (Afa.atoms_of formula)
          in
          List.sort_uniq compare
            (List.concat_map (fun s -> nfa.Nfa.checks.(s)) states))
        mfa.Mfa.quals
    in
    let color = Array.make n_quals 0 in
    let order = ref [] in
    let rec visit q =
      if color.(q) = 1 then raise (Driver_error "cyclic qualifier dependency")
      else if color.(q) = 0 then begin
        color.(q) <- 1;
        List.iter visit deps.(q);
        color.(q) <- 2;
        order := q :: !order
      end
    in
    for q = 0 to n_quals - 1 do
      visit q
    done;
    Array.of_list (List.rev !order)
  in
  let has_value_atoms =
    Array.exists (fun (a : Afa.atom) -> a.Afa.value <> None) mfa.Mfa.atoms
  in
  {
    mfa;
    value_accepts;
    plain_accept;
    select_accept;
    atom_starts;
    qual_order;
    has_value_atoms;
    n_quals;
    cond_val = Hashtbl.create 256;
    cans = Cans.create ();
    stats = Stats.create ();
    trace;
    frames = Array.init 64 (fun _ -> fresh_frame n_states ());
    depth = 0;
    out_items = [];
    n_out = 0;
    qvals = Array.make (max 1 n_quals) false;
    qval_epoch = Array.make (max 1 n_quals) (-1);
    epoch = 0;
    entered_candidate = false;
    finished = false;
    on_checkpoint = None;
  }

let stats t = t.stats
let cans t = t.cans
let set_checkpoint t f = t.on_checkpoint <- Some f

let trace_mark t node m =
  match t.trace with None -> () | Some tr -> Trace.mark tr node m

(* --- active AFA state propagation ---------------------------------------- *)

(* Activate an AFA state at a frame: mark it, follow its epsilon edges, and
   make sure the qualifiers it checks will be settled here (spawning their
   atoms' entry states in turn). *)
let rec activate t frame s =
  if Bytes.get frame.mark s = '\000' then begin
    Bytes.set frame.mark s '\001';
    Bytes.set frame.sat s '\000';
    Bytes.set frame.contrib s '\000';
    frame.active <- s :: frame.active;
    if Array.length t.value_accepts.(s) > 0 then
      frame.may_accept_value <- true;
    let nfa = t.mfa.Mfa.nfa in
    List.iter (fun q -> note_qual t frame q) nfa.Nfa.checks.(s);
    List.iter (fun s' -> activate t frame s') nfa.Nfa.eps.(s)
  end

and note_qual t frame q =
  if not (List.mem q frame.quals_here) then begin
    frame.quals_here <- q :: frame.quals_here;
    t.stats.Stats.atom_instances <-
      t.stats.Stats.atom_instances + Array.length t.atom_starts.(q);
    Array.iter (fun s -> activate t frame s) t.atom_starts.(q)
  end

(* --- selection-run closure ------------------------------------------------ *)

let rec item_seen items state conds =
  match items with
  | [] -> false
  | it :: rest ->
    (it.state = state && it.conds = conds) || item_seen rest state conds

let rec push_item t frame item =
  let nfa = t.mfa.Mfa.nfa in
  let item =
    match nfa.Nfa.checks.(item.state) with
    | [] -> item
    | checks -> { item with conds = add_checks t frame item.conds checks }
  in
  if not (item_seen t.out_items item.state item.conds) then begin
    t.out_items <- item :: t.out_items;
    t.n_out <- t.n_out + 1;
    if t.select_accept.(item.state) then begin
      t.stats.Stats.candidates <- t.stats.Stats.candidates + 1;
      t.entered_candidate <- true;
      trace_mark t frame.node Trace.In_cans;
      Cans.add t.cans ~node:frame.node item.conds
    end;
    push_eps t frame item nfa.Nfa.eps.(item.state)
  end

and add_checks t frame conds = function
  | [] -> conds
  | q :: rest ->
    note_qual t frame q;
    if not (List.mem q frame.requested) then
      frame.requested <- q :: frame.requested;
    t.stats.Stats.conds_created <- t.stats.Stats.conds_created + 1;
    add_checks t frame (Conds.add (q, frame.node) conds) rest

and push_eps t frame item = function
  | [] -> ()
  | s' :: rest ->
    push_item t frame { item with state = s' };
    push_eps t frame item rest

let kind_matches test kind =
  match test, kind with
  | Nfa.Any_element, El _ -> true
  | Nfa.Element s, El name -> s == name || String.equal s name
  | Nfa.Text_node, Tx _ -> true
  | Nfa.Any_element, Tx _ | Nfa.Element _, Tx _ | Nfa.Text_node, El _ -> false

(* --- frames ---------------------------------------------------------------- *)

let clear_frame frame =
  (* Reset the bitsets touched by the previous tenant of this depth. *)
  List.iter
    (fun s ->
      Bytes.set frame.sat s '\000';
      Bytes.set frame.contrib s '\000';
      Bytes.set frame.mark s '\000')
    frame.active;
  frame.active <- []

let push_frame t id kind =
  if t.depth >= Array.length t.frames then begin
    let n_states = t.mfa.Mfa.nfa.Nfa.n_states in
    let bigger =
      Array.init (2 * Array.length t.frames) (fun i ->
          if i < Array.length t.frames then t.frames.(i)
          else fresh_frame n_states ())
    in
    t.frames <- bigger
  end;
  let frame = t.frames.(t.depth) in
  t.depth <- t.depth + 1;
  clear_frame frame;
  frame.node <- id;
  frame.kind <- kind;
  frame.items <- [];
  frame.quals_here <- [];
  frame.requested <- [];
  frame.may_accept_value <- false;
  frame.text_acc <- None;
  frame

(* Does any transition of any parent item match this node? *)
let rec any_item_matches kind items delta =
  match items with
  | [] -> false
  | item :: rest ->
    let rec scan = function
      | [] -> any_item_matches kind rest delta
      | (test, _) :: more -> kind_matches test kind || scan more
    in
    scan delta.(item.state)

let rec any_active_matches kind active delta =
  match active with
  | [] -> false
  | s :: rest ->
    let rec scan = function
      | [] -> any_active_matches kind rest delta
      | (test, _) :: more -> kind_matches test kind || scan more
    in
    scan delta.(s)

let enter t ~id ~kind =
  if t.finished then raise (Driver_error "enter after finish");
  let nfa = t.mfa.Mfa.nfa in
  t.entered_candidate <- false;
  let n_entered = t.stats.Stats.nodes_entered + 1 in
  t.stats.Stats.nodes_entered <- n_entered;
  if n_entered land 31 = 0 then (
    match t.on_checkpoint with None -> () | Some f -> f n_entered);
  if t.depth = 0 then begin
    let frame = push_frame t id kind in
    t.out_items <- [];
    t.n_out <- 0;
    push_item t frame { state = t.mfa.Mfa.start; conds = Conds.empty };
    frame.items <- t.out_items;
    t.stats.Stats.nodes_alive <- t.stats.Stats.nodes_alive + 1;
    trace_mark t id Trace.Visited;
    Alive
  end
  else begin
    let parent = t.frames.(t.depth - 1) in
    (* Element values are needed when a value-equality atom can accept at
       the parent, so immediate text is collected only then. *)
    (match kind with
    | Tx content when parent.may_accept_value ->
      let buf =
        match parent.text_acc with
        | Some buf -> buf
        | None ->
          let buf = Buffer.create 16 in
          parent.text_acc <- Some buf;
          buf
      in
      Buffer.add_string buf content
    | Tx _ | El _ -> ());
    if
      (not (any_item_matches kind parent.items nfa.Nfa.delta))
      && not (any_active_matches kind parent.active nfa.Nfa.delta)
    then begin
      trace_mark t id Trace.Dead;
      Dead
    end
    else begin
      let parent_items = parent.items in
      let parent_active = parent.active in
      let frame = push_frame t id kind in
      (* active AFA states: consumable continuations of the parent's *)
      let rec feed_active = function
        | [] -> ()
        | s :: rest ->
          let rec trans = function
            | [] -> ()
            | (test, s') :: more ->
              if kind_matches test kind then activate t frame s';
              trans more
          in
          trans nfa.Nfa.delta.(s);
          feed_active rest
      in
      feed_active parent_active;
      (* selection items *)
      t.out_items <- [];
      t.n_out <- 0;
      let rec feed_items = function
        | [] -> ()
        | item :: rest ->
          let rec trans = function
            | [] -> ()
            | (test, s') :: more ->
              if kind_matches test kind then
                push_item t frame { item with state = s' };
              trans more
          in
          trans nfa.Nfa.delta.(item.state);
          feed_items rest
      in
      feed_items parent_items;
      frame.items <- t.out_items;
      if t.n_out > t.stats.Stats.max_items then
        t.stats.Stats.max_items <- t.n_out;
      t.stats.Stats.nodes_alive <- t.stats.Stats.nodes_alive + 1;
      trace_mark t id Trace.Visited;
      Alive
    end
  end

let element_value frame =
  match frame.kind with
  | Tx content -> content
  | El _ ->
    (match frame.text_acc with
    | None -> ""
    | Some buf -> Buffer.contents buf)

(* --- bottom-up AFA settlement ---------------------------------------------- *)

(* sat(s) at a closing node: a run in state [s] here accepts within the
   (now complete) subtree — by accepting at this node, by an epsilon move
   whose checks hold here, or through a child (contributions pushed at the
   children's leaves).  Only active states matter: epsilon targets and
   check-spawned entry states of active states are active by closure. *)
let resolve_afa t frame =
  let nfa = t.mfa.Mfa.nfa in
  let sat = frame.sat in
  let mark = frame.mark in
  t.epoch <- t.epoch + 1;
  let value = if frame.may_accept_value then element_value frame else "" in
  let accept_ok s =
    t.plain_accept.(s)
    ||
    let values = t.value_accepts.(s) in
    let n = Array.length values in
    let rec scan i = i < n && (String.equal values.(i) value || scan (i + 1)) in
    n > 0 && scan 0
  in
  (* A qualifier not yet settled at this node reads as false: sound (sat
     never set prematurely), and the passes after its settlement catch any
     state that was waiting on it. *)
  let checks_hold s =
    let rec go = function
      | [] -> true
      | q :: rest ->
        t.qval_epoch.(q) = t.epoch && t.qvals.(q) && go rest
    in
    go nfa.Nfa.checks.(s)
  in
  let try_state s =
    Bytes.get mark s <> '\000'
    && Bytes.get sat s = '\000'
    && checks_hold s
    && (Bytes.get frame.contrib s <> '\000'
       || accept_ok s
       ||
       let rec eps_sat = function
         | [] -> false
         | s' :: rest -> Bytes.get sat s' <> '\000' || eps_sat rest
       in
       eps_sat nfa.Nfa.eps.(s))
  in
  let fixpoint states =
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun s ->
          if try_state s then begin
            Bytes.set sat s '\001';
            changed := true
          end)
        states
    done
  in
  (* Settle in dependency order; each pass runs over all active states —
     strata are eps-closed inside the active set, and reruns are monotone
     no-ops. *)
  (match frame.quals_here with
  | [] -> ()
  | quals_here ->
    Array.iter
      (fun q ->
        if List.mem q quals_here then begin
          fixpoint frame.active;
          t.qvals.(q) <-
            Afa.eval t.mfa.Mfa.quals.(q) (fun aid ->
                Bytes.get sat (t.mfa.Mfa.atoms.(aid)).Afa.start <> '\000');
          t.qval_epoch.(q) <- t.epoch
        end)
      t.qual_order);
  fixpoint frame.active;
  (* Publish the values selection runs assumed at this node. *)
  List.iter
    (fun q ->
      Hashtbl.replace t.cond_val (q, frame.node) t.qvals.(q);
      t.stats.Stats.quals_resolved <- t.stats.Stats.quals_resolved + 1)
    frame.requested;
  (* Contribute upward: parent-active states that can step into this node
     and accept inside it. *)
  if t.depth >= 2 then begin
    let parent = t.frames.(t.depth - 2) in
    let rec feed = function
      | [] -> ()
      | s :: rest ->
        if Bytes.get parent.contrib s = '\000' then begin
          let rec scan = function
            | [] -> ()
            | (test, s') :: more ->
              if kind_matches test frame.kind && Bytes.get sat s' <> '\000'
              then Bytes.set parent.contrib s '\001'
              else scan more
          in
          scan nfa.Nfa.delta.(s)
        end;
        feed rest
    in
    feed parent.active
  end

let leave t =
  if t.depth = 0 then raise (Driver_error "leave without enter");
  let frame = t.frames.(t.depth - 1) in
  if frame.active <> [] || frame.quals_here <> [] then resolve_afa t frame;
  t.depth <- t.depth - 1

let entered_candidate t = t.entered_candidate

let exists_live_state t p =
  if t.depth = 0 then
    raise (Driver_error "exists_live_state without a current node");
  let frame = t.frames.(t.depth - 1) in
  List.exists (fun item -> p item.state) frame.items
  || List.exists p frame.active

let may_accept_value_here t =
  if t.depth = 0 then
    raise (Driver_error "may_accept_value_here without a current node");
  (t.frames.(t.depth - 1)).may_accept_value

let finish t =
  if t.depth <> 0 then raise (Driver_error "finish with open nodes");
  if t.finished then raise (Driver_error "finish called twice");
  t.finished <- true;
  let answers =
    Cans.resolve t.cans ~lookup:(fun cond ->
        match Hashtbl.find_opt t.cond_val cond with
        | Some v -> v
        | None ->
          raise
            (Driver_error
               (Printf.sprintf "unresolved condition q%d@%d" (fst cond)
                  (snd cond))))
  in
  t.stats.Stats.answers <- List.length answers;
  (match t.trace with
  | None -> ()
  | Some tr -> List.iter (fun n -> Trace.mark tr n Trace.Answer) answers);
  answers
