bin/unix_compat.ml: Sys
