bin/smoqe_cli.mli:
