bin/smoqe_cli.ml: Arg Cmd Cmdliner List Option Printf Smoqe Smoqe_hype Smoqe_rewrite Smoqe_robust Smoqe_rxpath Smoqe_security Smoqe_store Smoqe_workload Smoqe_xml String Term Unix_compat
