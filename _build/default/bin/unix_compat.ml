(* Terminal detection without depending on the unix library. *)
let is_tty () =
  match Sys.getenv_opt "TERM" with
  | None | Some "dumb" -> false
  | Some _ -> true
