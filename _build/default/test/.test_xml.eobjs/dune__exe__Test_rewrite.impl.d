test/test_rewrite.ml: Alcotest Lazy List Printf QCheck2 QCheck_alcotest Smoqe_automata Smoqe_hype Smoqe_rewrite Smoqe_rxpath Smoqe_security Smoqe_workload Smoqe_xml
