test/test_hype.mli:
