test/test_structural_join.ml: Alcotest List Option Printf QCheck2 QCheck_alcotest Smoqe_baseline Smoqe_rxpath Smoqe_tax Smoqe_workload Smoqe_xml
