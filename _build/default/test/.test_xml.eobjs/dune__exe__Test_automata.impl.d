test/test_automata.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Smoqe_automata Smoqe_rewrite Smoqe_rxpath Smoqe_security Smoqe_workload Smoqe_xml String
