test/test_robust.mli:
