test/test_tax.ml: Alcotest Buffer Bytes Filename List Option Printf QCheck2 QCheck_alcotest Smoqe_tax Smoqe_xml Sys
