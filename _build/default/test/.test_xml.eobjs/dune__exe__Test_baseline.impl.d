test/test_baseline.ml: Alcotest Buffer Lazy List Printf QCheck2 QCheck_alcotest Smoqe_automata Smoqe_baseline Smoqe_hype Smoqe_rxpath Smoqe_workload Smoqe_xml
