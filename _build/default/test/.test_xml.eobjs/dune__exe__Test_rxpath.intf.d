test/test_rxpath.mli:
