test/test_core.ml: Alcotest Filename List Option Smoqe Smoqe_hype Smoqe_workload Smoqe_xml String Sys
