test/test_robust.ml: Alcotest Buffer Char Filename List Printexc Random Smoqe Smoqe_automata Smoqe_hype Smoqe_robust Smoqe_rxpath Smoqe_store Smoqe_workload Smoqe_xml String Sys
