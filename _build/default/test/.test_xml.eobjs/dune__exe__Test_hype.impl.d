test/test_hype.ml: Alcotest Buffer Lazy List Printf QCheck2 QCheck_alcotest Smoqe_automata Smoqe_hype Smoqe_rxpath Smoqe_tax Smoqe_xml String
