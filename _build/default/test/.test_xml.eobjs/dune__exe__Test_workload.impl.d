test/test_workload.ml: Alcotest Fmt List Printf Smoqe_rxpath Smoqe_workload Smoqe_xml
