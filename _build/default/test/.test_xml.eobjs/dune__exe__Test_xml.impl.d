test/test_xml.ml: Alcotest Filename List Printf QCheck2 QCheck_alcotest Smoqe_xml Sys
