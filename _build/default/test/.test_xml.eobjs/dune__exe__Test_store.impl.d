test/test_store.ml: Alcotest Array Filename Fun List Smoqe Smoqe_store Smoqe_tax Smoqe_workload Smoqe_xml String Sys
