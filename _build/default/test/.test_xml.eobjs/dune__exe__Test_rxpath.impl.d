test/test_rxpath.ml: Alcotest Lazy List Printf QCheck2 QCheck_alcotest Smoqe_rxpath Smoqe_xml
