test/test_tax.mli:
