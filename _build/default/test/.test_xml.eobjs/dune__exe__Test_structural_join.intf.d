test/test_structural_join.mli:
