test/test_security.ml: Alcotest Array Fmt Lazy List Printf Smoqe_hype Smoqe_rewrite Smoqe_rxpath Smoqe_security Smoqe_workload Smoqe_xml Str_replace String
