(* Tests for the region index and the structural-join baseline. *)

module Tree = Smoqe_xml.Tree
module Xml_parser = Smoqe_xml.Parser
module Serializer = Smoqe_xml.Serializer
module Ast = Smoqe_rxpath.Ast
module Rx_parser = Smoqe_rxpath.Parser
module Semantics = Smoqe_rxpath.Semantics
module Region = Smoqe_tax.Region
module Sj = Smoqe_baseline.Structural_join
module Hospital = Smoqe_workload.Hospital

let parse s =
  match Rx_parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let doc s = Xml_parser.tree_of_string s

(* --- Region labels ------------------------------------------------------- *)

let test_region_labels () =
  let t = doc "<r><a><b>x</b></a><a/></r>" in
  let idx = Region.build t in
  (* pre-order: r=0 a=1 b=2 x=3 a=4 *)
  Alcotest.(check bool) "r anc a" true (Region.is_ancestor idx ~anc:0 ~desc:1);
  Alcotest.(check bool) "r anc x" true (Region.is_ancestor idx ~anc:0 ~desc:3);
  Alcotest.(check bool) "a1 anc b" true (Region.is_ancestor idx ~anc:1 ~desc:2);
  Alcotest.(check bool) "a1 not anc a2" false
    (Region.is_ancestor idx ~anc:1 ~desc:4);
  Alcotest.(check bool) "not reflexive" false
    (Region.is_ancestor idx ~anc:1 ~desc:1);
  Alcotest.(check bool) "b not anc a" false
    (Region.is_ancestor idx ~anc:2 ~desc:1);
  Alcotest.(check int) "level of b" 2 (Region.level idx 2);
  Alcotest.(check (array int)) "a list" [| 1; 4 |]
    (Region.nodes_with_tag idx "a");
  Alcotest.(check (array int)) "text list" [| 3 |] (Region.text_nodes idx);
  Alcotest.(check (array int)) "unknown tag" [||]
    (Region.nodes_with_tag idx "zzz")

let test_region_post_order () =
  let t = doc "<r><a><b>x</b></a><c/></r>" in
  let idx = Region.build t in
  (* post-order ranks: x < b < a < c < r *)
  Alcotest.(check bool) "x before b" true (Region.post idx 3 < Region.post idx 2);
  Alcotest.(check bool) "b before a" true (Region.post idx 2 < Region.post idx 1);
  Alcotest.(check bool) "c before r" true (Region.post idx 4 < Region.post idx 0);
  Alcotest.(check bool) "a before c" true (Region.post idx 1 < Region.post idx 4)

(* --- Planning ------------------------------------------------------------- *)

let test_plan_fragment () =
  (match Sj.plan (parse "a/b") with
  | Ok [ Sj.Child "a"; Sj.Child "b" ] -> ()
  | _ -> Alcotest.fail "a/b");
  (match Sj.plan (parse "//a/b//c") with
  | Ok [ Sj.Desc "a"; Sj.Child "b"; Sj.Desc "c" ] -> ()
  | _ -> Alcotest.fail "//a/b//c");
  (match Sj.plan (parse "a//text()") with
  | Ok [ Sj.Child "a"; Sj.Desc_text ] -> ()
  | _ -> Alcotest.fail "a//text()")

let test_plan_rejections () =
  List.iter
    (fun q ->
      match Sj.plan (parse q) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (q ^ " accepted"))
    [
      "a[b]/c" (* qualifier *);
      "(a/b)*/c" (* closure *);
      "a | b" (* union *);
      "*/a" (* wildcard *);
      "." (* self *);
      "a/text()/b" (* text mid-path *);
    ]

(* --- Execution ------------------------------------------------------------ *)

let check_query t q =
  let idx = Region.build t in
  match Sj.run idx t (parse q) with
  | Error msg -> Alcotest.fail (q ^ ": " ^ msg)
  | Ok r ->
    Alcotest.(check (list int)) q (Semantics.answer_list t (parse q))
      r.Sj.answers

let test_run_matches_oracle () =
  let t = Hospital.generate ~seed:44 ~n_patients:10 ~recursion_depth:3 () in
  List.iter (check_query t)
    [
      "patient/pname";
      "//medication";
      "//patient/pname";
      "patient//medication";
      "//visit/treatment/test";
      "//pname/text()";
      "patient/parent//date";
      "//zebra";
    ]

let test_run_work_is_list_bounded () =
  (* The join touches inverted-list entries, not the whole document. *)
  let t = Hospital.generate ~seed:45 ~n_patients:200 ~recursion_depth:2 () in
  let idx = Region.build t in
  match Sj.run idx t (parse "//test") with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check bool)
      (Printf.sprintf "scanned %d of %d nodes" r.Sj.list_items_scanned
         (Tree.n_nodes t))
      true
      (r.Sj.list_items_scanned * 10 < Tree.n_nodes t)

(* --- Property: fragment queries match the oracle --------------------------- *)

let tag_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]

let steps_gen =
  QCheck2.Gen.(
    list_size (int_range 1 5)
      (pair (oneofl [ `Child; `Desc ]) tag_gen))

let path_of_steps steps =
  List.fold_left
    (fun acc (axis, tag) ->
      let step =
        match axis with
        | `Child -> Ast.Tag tag
        | `Desc -> Ast.seq Ast.descendant_or_self (Ast.Tag tag)
      in
      match acc with None -> Some step | Some p -> Some (Ast.seq p step))
    None steps
  |> Option.get

let source_gen =
  QCheck2.Gen.(
    sized_size (int_bound 5)
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 map (fun s -> Tree.T s) (oneofl [ "x"; "y" ]);
                 map (fun t -> Tree.E (t, [], [])) tag_gen;
               ]
           else
             map2
               (fun t kids -> Tree.E (t, [], kids))
               tag_gen
               (list_size (int_bound 3) (self (n / 2)))))

let doc_gen =
  QCheck2.Gen.(
    map
      (fun kids -> Tree.of_source (Tree.E ("r", [], kids)))
      (list_size (int_bound 4) source_gen))

let prop_fragment_equals_oracle =
  QCheck2.Test.make ~count:500 ~name:"structural join = oracle on fragment"
    ~print:(fun (t, steps) ->
      Printf.sprintf "doc: %s\nquery: %s"
        (Serializer.to_string ~indent:false t)
        (Smoqe_rxpath.Pretty.path_to_string (path_of_steps steps)))
    QCheck2.Gen.(pair doc_gen steps_gen)
    (fun (t, steps) ->
      let q = path_of_steps steps in
      let idx = Region.build t in
      match Sj.run idx t q with
      | Error _ -> false
      | Ok r -> r.Sj.answers = Semantics.answer_list t q)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_fragment_equals_oracle ]

let () =
  Alcotest.run "smoqe_structural_join"
    [
      ( "region",
        [
          Alcotest.test_case "labels" `Quick test_region_labels;
          Alcotest.test_case "post order" `Quick test_region_post_order;
        ] );
      ( "plan",
        [
          Alcotest.test_case "fragment" `Quick test_plan_fragment;
          Alcotest.test_case "rejections" `Quick test_plan_rejections;
        ] );
      ( "run",
        [
          Alcotest.test_case "oracle" `Quick test_run_matches_oracle;
          Alcotest.test_case "work bound" `Quick test_run_work_is_list_bounded;
        ] );
      ("properties", qsuite);
    ]
