(* Tests for the baseline evaluators: agreement with the reference
   semantics, and the cost profiles the benchmarks rely on. *)

module Tree = Smoqe_xml.Tree
module Xml_parser = Smoqe_xml.Parser
module Ast = Smoqe_rxpath.Ast
module Rx_parser = Smoqe_rxpath.Parser
module Pretty = Smoqe_rxpath.Pretty
module Serializer = Smoqe_xml.Serializer
module Semantics = Smoqe_rxpath.Semantics
module Naive = Smoqe_baseline.Naive
module Xalan_like = Smoqe_baseline.Xalan_like
module Two_pass = Smoqe_baseline.Two_pass
module Eval_dom = Smoqe_hype.Eval_dom
module Stats = Smoqe_hype.Stats
module Hospital = Smoqe_workload.Hospital
module Queries = Smoqe_workload.Queries

let parse s =
  match Rx_parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let hospital = lazy (Hospital.generate ~seed:21 ~n_patients:15 ~recursion_depth:3 ())

let test_all_agree_on_suite () =
  let t = Lazy.force hospital in
  List.iter
    (fun (name, q) ->
      let expected = Semantics.answer_list t q in
      Alcotest.(check (list int)) (name ^ " naive") expected (Naive.run t q).Naive.answers;
      Alcotest.(check (list int)) (name ^ " xalan") expected
        (Xalan_like.run t q).Xalan_like.answers;
      Alcotest.(check (list int)) (name ^ " two-pass") expected
        (Two_pass.eval t q).Two_pass.answers)
    Queries.parsed

let test_two_pass_pass_count () =
  let t = Lazy.force hospital in
  let r = Two_pass.eval t (parse "patient/pname") in
  Alcotest.(check int) "three passes" 3 r.Two_pass.passes_over_data

let test_two_pass_predicate_work_everywhere () =
  (* Arb-style evaluation decides predicates at every node; HyPE only where
     runs are alive.  On a skewed document the work gap must show. *)
  let t = Lazy.force hospital in
  let q = parse "patient[visit/treatment/medication = 'autism']/pname" in
  let two = Two_pass.eval t q in
  Alcotest.(check bool) "bottom-up touches many (node, state) pairs" true
    (two.Two_pass.predicate_work > Tree.n_nodes t)

let test_xalan_retraversal_cost () =
  (* A predicate re-evaluated per candidate over a shared subtree:
     Xalan-like visits explode compared to document size. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 100 do
    Buffer.add_string buf "<x><deep><a><b><c>v</c></b></a></deep></x>"
  done;
  Buffer.add_string buf "</r>";
  let t = Xml_parser.tree_of_string (Buffer.contents buf) in
  let q = parse "x[deep/a/b/c = 'v']/deep" in
  let r = Xalan_like.run t q in
  Alcotest.(check (list int)) "correct"
    (Semantics.answer_list t q) r.Xalan_like.answers;
  Alcotest.(check bool)
    (Printf.sprintf "visits %d > nodes %d" r.Xalan_like.node_visits (Tree.n_nodes t))
    true
    (r.Xalan_like.node_visits > Tree.n_nodes t)

let test_hype_single_pass_vs_two_pass () =
  let t = Lazy.force hospital in
  let q = parse Queries.q0 in
  let hype = Eval_dom.run (Smoqe_automata.Compile.compile q) t in
  let two = Two_pass.eval t q in
  Alcotest.(check (list int)) "same answers" two.Two_pass.answers
    hype.Eval_dom.answers;
  Alcotest.(check int) "hype: one pass" 1
    hype.Eval_dom.stats.Stats.passes_over_data;
  Alcotest.(check int) "two-pass: three" 3 two.Two_pass.passes_over_data

(* Property: all four evaluators agree on random inputs. *)
let tag_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]
let value_gen = QCheck2.Gen.oneofl [ "x"; "y" ]

let rec path_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof
        [ return Ast.Self; map (fun t -> Ast.Tag t) tag_gen;
          return Ast.Wildcard; return Ast.Text ]
    else
      frequency
        [
          (3, map (fun t -> Ast.Tag t) tag_gen);
          (3, map2 Ast.seq (path_gen (n / 2)) (path_gen (n / 2)));
          (2, map2 Ast.union (path_gen (n / 2)) (path_gen (n / 2)));
          (2, map Ast.star (path_gen (n - 1)));
          (2, map2 Ast.filter (path_gen (n / 2)) (qual_gen (n / 2)));
        ])

and qual_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof
        [
          map (fun p -> Ast.Exists p) (path_gen 0);
          map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen 0) value_gen;
        ]
    else
      frequency
        [
          (3, map (fun p -> Ast.Exists p) (path_gen (n - 1)));
          (2, map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen (n - 1)) value_gen);
          (2, map Ast.q_not (qual_gen (n - 1)));
          (1, map2 Ast.q_and (qual_gen (n / 2)) (qual_gen (n / 2)));
          (1, map2 Ast.q_or (qual_gen (n / 2)) (qual_gen (n / 2)));
        ])

let source_gen =
  QCheck2.Gen.(
    sized_size (int_bound 5)
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 map (fun s -> Tree.T s) value_gen;
                 map (fun t -> Tree.E (t, [], [])) tag_gen;
               ]
           else
             map2
               (fun t kids -> Tree.E (t, [], kids))
               tag_gen
               (list_size (int_bound 3) (self (n / 2)))))

let doc_gen =
  QCheck2.Gen.(
    map
      (fun kids -> Tree.of_source (Tree.E ("r", [], kids)))
      (list_size (int_bound 4) source_gen))

let print_case (t, p) =
  Printf.sprintf "doc: %s\nquery: %s"
    (Serializer.to_string ~indent:false t)
    (Pretty.path_to_string p)

let case_gen = QCheck2.Gen.(pair doc_gen (sized_size (int_bound 8) path_gen))

let prop_xalan_equals_oracle =
  QCheck2.Test.make ~count:500 ~name:"Xalan-like = oracle" ~print:print_case
    case_gen (fun (t, p) ->
      (Xalan_like.run t p).Xalan_like.answers = Semantics.answer_list t p)

let prop_two_pass_equals_oracle =
  QCheck2.Test.make ~count:500 ~name:"two-pass = oracle" ~print:print_case
    case_gen (fun (t, p) ->
      (Two_pass.eval t p).Two_pass.answers = Semantics.answer_list t p)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_xalan_equals_oracle; prop_two_pass_equals_oracle ]

let () =
  Alcotest.run "smoqe_baseline"
    [
      ( "agreement",
        [
          Alcotest.test_case "query suite" `Quick test_all_agree_on_suite;
          Alcotest.test_case "hype vs two-pass" `Quick
            test_hype_single_pass_vs_two_pass;
        ] );
      ( "cost profiles",
        [
          Alcotest.test_case "two-pass count" `Quick test_two_pass_pass_count;
          Alcotest.test_case "predicate work" `Quick
            test_two_pass_predicate_work_everywhere;
          Alcotest.test_case "xalan re-traversal" `Quick
            test_xalan_retraversal_cost;
        ] );
      ("properties", qsuite);
    ]
