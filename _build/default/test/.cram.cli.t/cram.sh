  $ smoqe gen --kind hospital --size 2 --depth 1 --seed 3 > hospital.xml
  $ smoqe gen --emit-dtd > hospital.dtd
  $ smoqe gen --emit-policy > s0.policy
  $ smoqe schema hospital.dtd
  $ smoqe view -s hospital.dtd -p s0.policy
  $ smoqe query -d hospital.xml -o ids "//pname" | wc -l | tr -d ' '
  $ smoqe query -d hospital.xml -s hospital.dtd -p s0.policy -g staff -o ids "//pname" | wc -l | tr -d ' '
  $ smoqe query -d hospital.xml --mode dom -o ids "//medication" > dom.ids
  $ smoqe query -d hospital.xml --mode stax -o ids "//medication" > stax.ids
  $ diff dom.ids stax.ids
  $ smoqe rewrite -s hospital.dtd -p s0.policy "patient/treatment" | head -1
  $ smoqe rewrite -s hospital.dtd -p s0.policy --dot "patient" | head -1
  $ smoqe index -d hospital.xml --save hospital.tax
  $ test -s hospital.tax
  $ smoqe query -d hospital.xml "patient[" 2>&1
  $ smoqe query -d hospital.xml -g ghosts "patient" 2>&1
  $ smoqe query -d hospital.xml --max-nodes 5 -o ids "//pname" 2>&1
  $ smoqe query -d hospital.xml --timeout-ms 60000 --max-nodes 100000 -o ids "//pname" | wc -l | tr -d ' '
  $ smoqe store init mystore -d hospital.xml -s hospital.dtd
  $ smoqe store add-policy mystore researchers -p s0.policy
  $ smoqe store info mystore
  $ smoqe store query mystore -o ids "//pname" | wc -l | tr -d ' '
  $ smoqe store query mystore -g researchers -o ids "//pname" | wc -l | tr -d ' '
  $ smoqe store query mystore -g ghosts "patient" 2>&1
