(* Tests for the TAX index and its compressed codec. *)

module Tree = Smoqe_xml.Tree
module Xml_parser = Smoqe_xml.Parser
module Tax = Smoqe_tax.Tax
module Codec = Smoqe_tax.Codec

let doc s = Xml_parser.tree_of_string s

let sample () = doc "<r><a><b>x</b><c/></a><a><b>y</b></a><d/></r>"

let test_build_membership () =
  let t = sample () in
  let idx = Tax.build t in
  let tag name = Option.get (Tree.id_of_tag t name) in
  (* root sees everything below *)
  Alcotest.(check bool) "root has a" true (Tax.mem idx 0 (tag "a"));
  Alcotest.(check bool) "root has b" true (Tax.mem idx 0 (tag "b"));
  Alcotest.(check bool) "root has text" true (Tax.has_text idx 0);
  (* strictness: a node does not contain its own tag unless repeated *)
  let first_a = List.hd (Tree.children t 0) in
  Alcotest.(check bool) "a has b" true (Tax.mem idx first_a (tag "b"));
  Alcotest.(check bool) "a has c" true (Tax.mem idx first_a (tag "c"));
  Alcotest.(check bool) "a lacks a" false (Tax.mem idx first_a (tag "a"));
  Alcotest.(check bool) "a lacks d" false (Tax.mem idx first_a (tag "d"));
  (* leaves are empty *)
  let d = List.nth (Tree.children t 0) 2 in
  Alcotest.(check bool) "d empty" false (Tax.mem idx d (tag "a"));
  Alcotest.(check bool) "d no text" false (Tax.has_text idx d)

let test_recursive_tags () =
  let t = doc "<a><a><a><b/></a></a></a>" in
  let idx = Tax.build t in
  let a = Option.get (Tree.id_of_tag t "a") in
  Alcotest.(check bool) "outer a contains a" true (Tax.mem idx 0 a);
  Alcotest.(check bool) "innermost a has no a" false (Tax.mem idx 2 a)

let test_descendant_tags_listing () =
  let t = sample () in
  let idx = Tax.build t in
  Alcotest.(check (list string))
    "root listing"
    [ "#text"; "a"; "b"; "c"; "d" ]
    (Tax.descendant_tags idx t 0)

let test_mem_name_unknown () =
  let t = sample () in
  let idx = Tax.build t in
  Alcotest.(check bool) "unknown tag" false (Tax.mem_name idx t 0 "zzz")

let test_codec_roundtrip () =
  let t = sample () in
  let idx = Tax.build t in
  match Codec.of_bytes (Codec.to_bytes idx) with
  | Ok idx' -> Alcotest.(check bool) "equal" true (Tax.equal idx idx')
  | Error msg -> Alcotest.fail msg

let test_codec_file_roundtrip () =
  let t = sample () in
  let idx = Tax.build t in
  let path = Filename.temp_file "smoqe" ".tax" in
  Codec.save path idx;
  (match Codec.load path with
  | Ok idx' -> Alcotest.(check bool) "equal" true (Tax.equal idx idx')
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_codec_corrupt () =
  (match Codec.of_bytes (Bytes.of_string "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  let t = sample () in
  let good = Codec.to_bytes (Tax.build t) in
  let truncated = Bytes.sub good 0 (Bytes.length good - 2) in
  match Codec.of_bytes truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated buffer accepted"

let test_codec_compresses_repetition () =
  (* Many identical record subtrees: the dictionary + RLE must beat the
     naive one-row-per-node footprint. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<r>";
  for i = 1 to 500 do
    Buffer.add_string buf (Printf.sprintf "<rec><f1>%d</f1><f2>v</f2></rec>" i)
  done;
  Buffer.add_string buf "</r>";
  let t = doc (Buffer.contents buf) in
  let idx = Tax.build t in
  let encoded = Bytes.length (Codec.to_bytes idx) in
  let in_memory = Tax.memory_words idx * (Sys.int_size / 8) in
  Alcotest.(check bool)
    (Printf.sprintf "encoded %d bytes vs %d in memory" encoded in_memory)
    true
    (encoded * 3 < in_memory)

(* Property: TAX membership = brute-force descendant scan. *)
let tag_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c"; "d" ]

let source_gen =
  QCheck2.Gen.(
    sized_size (int_bound 5)
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 map (fun s -> Tree.T s) (oneofl [ "x"; "y" ]);
                 map (fun t -> Tree.E (t, [], [])) tag_gen;
               ]
           else
             map2
               (fun t kids -> Tree.E (t, [], kids))
               tag_gen
               (list_size (int_bound 3) (self (n / 2)))))

let doc_gen =
  QCheck2.Gen.(
    map
      (fun kids -> Tree.of_source (Tree.E ("r", [], kids)))
      (list_size (int_bound 4) source_gen))

let prop_membership_correct =
  QCheck2.Test.make ~count:300 ~name:"TAX = brute-force descendant types"
    doc_gen (fun t ->
      let idx = Tax.build t in
      let ok = ref true in
      Tree.iter_preorder t (fun n ->
          for tag = 0 to Tree.n_tags t - 1 do
            let brute = ref false in
            for d = n + 1 to Tree.subtree_end t n - 1 do
              if Tree.tag_id t d = tag then brute := true
            done;
            if Tax.mem idx n tag <> !brute then ok := false
          done);
      !ok)

let prop_codec_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"codec roundtrip" doc_gen (fun t ->
      let idx = Tax.build t in
      match Codec.of_bytes (Codec.to_bytes idx) with
      | Ok idx' -> Tax.equal idx idx'
      | Error _ -> false)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_membership_correct; prop_codec_roundtrip ]

let () =
  Alcotest.run "smoqe_tax"
    [
      ( "index",
        [
          Alcotest.test_case "membership" `Quick test_build_membership;
          Alcotest.test_case "recursive tags" `Quick test_recursive_tags;
          Alcotest.test_case "listing" `Quick test_descendant_tags_listing;
          Alcotest.test_case "unknown name" `Quick test_mem_name_unknown;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_codec_file_roundtrip;
          Alcotest.test_case "corrupt input" `Quick test_codec_corrupt;
          Alcotest.test_case "compression" `Quick test_codec_compresses_repetition;
        ] );
      ("properties", qsuite);
    ]
