(* Tests for the workload generators: validity, determinism, sizing. *)

module Tree = Smoqe_xml.Tree
module Dtd = Smoqe_xml.Dtd
module Validator = Smoqe_xml.Validator
module Hospital = Smoqe_workload.Hospital
module Bib = Smoqe_workload.Bib
module Random_dtd = Smoqe_workload.Random_dtd
module Docgen = Smoqe_workload.Docgen
module Queries = Smoqe_workload.Queries

let test_hospital_valid () =
  let t = Hospital.generate ~seed:1 ~n_patients:10 ~recursion_depth:3 () in
  match Validator.validate Hospital.dtd t with
  | Ok () -> ()
  | Error errs ->
    Alcotest.fail
      (Fmt.str "%a" Fmt.(list ~sep:sp Validator.pp_error) errs)

let test_hospital_deterministic () =
  let a = Hospital.generate ~seed:9 ~n_patients:5 ~recursion_depth:2 () in
  let b = Hospital.generate ~seed:9 ~n_patients:5 ~recursion_depth:2 () in
  Alcotest.(check bool) "same" true (Tree.equal a b);
  let c = Hospital.generate ~seed:10 ~n_patients:5 ~recursion_depth:2 () in
  Alcotest.(check bool) "different seed differs" false (Tree.equal a c)

let test_hospital_recursion_present () =
  let t = Hospital.generate ~seed:2 ~n_patients:20 ~recursion_depth:4 () in
  Alcotest.(check bool) "has parent chains" true
    (Tree.id_of_tag t "parent" <> None)

let test_bib_valid () =
  let t = Bib.generate ~seed:1 ~n_books:6 ~section_depth:3 () in
  match Validator.validate Bib.dtd t with
  | Ok () -> ()
  | Error errs ->
    Alcotest.fail (Fmt.str "%a" Fmt.(list ~sep:sp Validator.pp_error) errs)

let test_random_dtd_wellformed () =
  for seed = 0 to 20 do
    let dtd = Random_dtd.generate ~seed ~n_types:6 ~recursion:(seed mod 2 = 0) () in
    Alcotest.(check bool) "root declared" true (Dtd.content dtd (Dtd.root dtd) <> None);
    (* all types expandable *)
    List.iter
      (fun name ->
        match Docgen.min_depth_of_type dtd name with
        | Some _ -> ()
        | None -> Alcotest.fail (Printf.sprintf "seed %d: %s unexpandable" seed name))
      (Dtd.reachable dtd)
  done

let test_docgen_valid_against_dtd () =
  for seed = 0 to 20 do
    let dtd = Random_dtd.generate ~seed ~n_types:5 ~recursion:true () in
    let t = Docgen.generate ~seed:(seed + 100) ~max_depth:8 ~fanout:2 dtd in
    match Validator.validate dtd t with
    | Ok () -> ()
    | Error errs ->
      Alcotest.fail
        (Fmt.str "seed %d: %a" seed Fmt.(list ~sep:sp Validator.pp_error) errs)
  done

let test_docgen_depth_bounded () =
  let dtd = Random_dtd.generate ~seed:4 ~n_types:4 ~recursion:true () in
  let t = Docgen.generate ~seed:8 ~max_depth:6 ~fanout:2 dtd in
  let max_depth = Tree.fold_preorder t ~init:0 ~f:(fun m n -> max m (Tree.depth t n)) in
  Alcotest.(check bool)
    (Printf.sprintf "depth %d bounded" max_depth)
    true (max_depth <= 16)

let test_docgen_no_finite_expansion () =
  let dtd =
    Dtd.create ~root:"a" [ ("a", Dtd.Children (Dtd.Name "b"));
                           ("b", Dtd.Children (Dtd.Name "a")) ]
  in
  match Docgen.generate dtd with
  | exception Docgen.No_finite_expansion _ -> ()
  | _ -> Alcotest.fail "expected No_finite_expansion"

let test_generate_sized () =
  let t =
    Docgen.generate_sized ~seed:3 ~target_nodes:2000 Hospital.dtd
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d nodes" (Tree.n_nodes t))
    true
    (Tree.n_nodes t >= 1000)

let test_queries_parse () =
  Alcotest.(check int) "eight queries" 8 (List.length Queries.parsed);
  List.iter
    (fun (name, text) ->
      match Smoqe_rxpath.Parser.path_of_string text with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" name msg))
    (Queries.suite @ Queries.view_suite)

let test_queries_nonempty_on_workload () =
  (* The benchmark suite must exercise real work: each query finds at least
     one answer on a reasonably sized document. *)
  let t = Hospital.generate ~seed:123 ~n_patients:60 ~recursion_depth:3 () in
  List.iter
    (fun (name, q) ->
      let n = List.length (Smoqe_rxpath.Semantics.answer_list t q) in
      if n = 0 then Alcotest.fail (Printf.sprintf "%s finds nothing" name))
    Queries.parsed

let () =
  Alcotest.run "smoqe_workload"
    [
      ( "hospital",
        [
          Alcotest.test_case "valid" `Quick test_hospital_valid;
          Alcotest.test_case "deterministic" `Quick test_hospital_deterministic;
          Alcotest.test_case "recursion" `Quick test_hospital_recursion_present;
        ] );
      ("bib", [ Alcotest.test_case "valid" `Quick test_bib_valid ]);
      ( "random",
        [
          Alcotest.test_case "dtd wellformed" `Quick test_random_dtd_wellformed;
          Alcotest.test_case "docs valid" `Quick test_docgen_valid_against_dtd;
          Alcotest.test_case "depth bounded" `Quick test_docgen_depth_bounded;
          Alcotest.test_case "no finite expansion" `Quick
            test_docgen_no_finite_expansion;
          Alcotest.test_case "sized" `Quick test_generate_sized;
        ] );
      ( "queries",
        [
          Alcotest.test_case "parse" `Quick test_queries_parse;
          Alcotest.test_case "nonempty" `Quick test_queries_nonempty_on_workload;
        ] );
    ]
