(* Tests for the engine façade, sessions, and the terminal iSMOQE. *)

module Tree = Smoqe_xml.Tree
module Dtd = Smoqe_xml.Dtd
module Serializer = Smoqe_xml.Serializer
module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Ismoqe = Smoqe.Ismoqe
module Trace = Smoqe_hype.Trace
module Hospital = Smoqe_workload.Hospital

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = (i + nl <= hl) && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let hospital_engine () =
  let doc = Hospital.generate ~seed:31 ~n_patients:10 ~recursion_depth:2 () in
  let e = Engine.of_string ~dtd:Hospital.dtd (Serializer.to_string doc) in
  let e = ok e in
  ok (Engine.register_policy e ~group:"researchers" Hospital.policy);
  e

let test_engine_of_string_errors () =
  (match Engine.of_string "<oops" with
  | Error msg -> Alcotest.(check bool) "located" true (contains msg "parse error")
  | Ok _ -> Alcotest.fail "accepted bad xml");
  match Engine.of_string ~dtd:Hospital.dtd "<zzz/>" with
  | Error msg -> Alcotest.(check bool) "invalid" true (contains msg "invalid")
  | Ok _ -> Alcotest.fail "accepted invalid doc"

let test_engine_direct_query () =
  let e = hospital_engine () in
  let r = ok (Engine.query e "patient/pname") in
  Alcotest.(check bool) "answers found" true (r.Engine.answers <> []);
  Alcotest.(check int) "xml per answer"
    (List.length r.Engine.answers)
    (List.length r.Engine.answer_xml);
  List.iter
    (fun xml -> Alcotest.(check bool) "pname xml" true (contains xml "<pname>"))
    r.Engine.answer_xml

let test_engine_modes_agree () =
  let e = hospital_engine () in
  List.iter
    (fun q ->
      let dom = ok (Engine.query e ~mode:Engine.Dom q) in
      let stax = ok (Engine.query e ~mode:Engine.Stax q) in
      Alcotest.(check (list int)) q dom.Engine.answers stax.Engine.answers)
    [ "patient/pname"; "//medication"; Smoqe_workload.Queries.q0 ]

let test_engine_view_query () =
  let e = hospital_engine () in
  let direct = ok (Engine.query e "//pname") in
  Alcotest.(check bool) "admin sees names" true (direct.Engine.answers <> []);
  let through_view = ok (Engine.query e ~group:"researchers" "//pname") in
  Alcotest.(check (list int)) "view hides names" [] through_view.Engine.answers;
  let meds = ok (Engine.query e ~group:"researchers" "patient/treatment/medication") in
  (* Medications are exposed only for autism patients. *)
  let doc = Engine.document e in
  List.iter
    (fun n ->
      Alcotest.(check string) "a medication" "medication" (Tree.name doc n))
    meds.Engine.answers

let test_engine_unknown_group () =
  let e = hospital_engine () in
  match Engine.query e ~group:"nope" "patient" with
  | Error msg -> Alcotest.(check bool) "mentions group" true (contains msg "nope")
  | Ok _ -> Alcotest.fail "unknown group accepted"

let test_engine_bad_query () =
  let e = hospital_engine () in
  match Engine.query e "patient[" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad query accepted"

let test_engine_index_lifecycle () =
  let e = hospital_engine () in
  Alcotest.(check bool) "no index yet" true (Engine.index e = None);
  Engine.build_index e;
  Alcotest.(check bool) "index built" true (Engine.index e <> None);
  let with_index = ok (Engine.query e "//medication") in
  let without = ok (Engine.query e ~use_index:false "//medication") in
  Alcotest.(check (list int)) "same answers" without.Engine.answers
    with_index.Engine.answers;
  (* persistence *)
  let path = Filename.temp_file "smoqe" ".tax" in
  ok (Engine.save_index e path);
  let e2 = hospital_engine () in
  ok (Engine.load_index e2 path);
  Sys.remove path;
  Alcotest.(check bool) "loaded" true (Engine.index e2 <> None)

let test_engine_index_mismatch () =
  let e = hospital_engine () in
  Engine.build_index e;
  let path = Filename.temp_file "smoqe" ".tax" in
  ok (Engine.save_index e path);
  let other =
    ok (Engine.of_string "<hospital><patient><pname>X</pname></patient></hospital>")
  in
  (match Engine.load_index other path with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "mismatched index accepted");
  Sys.remove path

let test_engine_policy_needs_dtd () =
  let e = ok (Engine.of_string "<hospital/>") in
  match Engine.register_policy e ~group:"g" Hospital.policy with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "policy without dtd accepted"

let test_session_roles () =
  let e = hospital_engine () in
  let admin = ok (Session.login e Session.Admin) in
  let user = ok (Session.login e (Session.Member "researchers")) in
  Alcotest.(check bool) "admin direct" true (Session.can_access_document admin);
  Alcotest.(check bool) "member restricted" false
    (Session.can_access_document user);
  (match Session.login e (Session.Member "ghosts") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ghost group logged in");
  (* same query, different worlds *)
  let a = ok (Session.run admin "//pname") in
  let u = ok (Session.run user "//pname") in
  Alcotest.(check bool) "admin sees" true (a.Engine.answers <> []);
  Alcotest.(check (list int)) "member blind" [] u.Engine.answers

let test_static_short_circuit () =
  let e = hospital_engine () in
  (* names a tag the schema does not declare: provably empty, no pass *)
  let r = ok (Engine.query e "//zebra") in
  Alcotest.(check (list int)) "no answers" [] r.Engine.answers;
  Alcotest.(check int) "no pass over the data" 0
    r.Engine.stats.Smoqe_hype.Stats.passes_over_data;
  (* through the view: hidden types are statically refused too *)
  let r = ok (Engine.query e ~group:"researchers" "//pname") in
  Alcotest.(check int) "view query skipped" 0
    r.Engine.stats.Smoqe_hype.Stats.passes_over_data;
  (* a satisfiable query still runs *)
  let r = ok (Engine.query e "patient/pname") in
  Alcotest.(check int) "real query runs" 1
    r.Engine.stats.Smoqe_hype.Stats.passes_over_data

let test_session_schema () =
  let e = hospital_engine () in
  let admin = ok (Session.login e Session.Admin) in
  let user = ok (Session.login e (Session.Member "researchers")) in
  (match Session.schema admin with
  | Some d -> Alcotest.(check bool) "admin sees pname" true
                (List.mem "pname" (Dtd.element_names d))
  | None -> Alcotest.fail "admin schema missing");
  match Session.schema user with
  | Some d ->
    Alcotest.(check bool) "member does not see pname" false
      (List.mem "pname" (Dtd.element_names d));
    Alcotest.(check bool) "member sees treatment" true
      (List.mem "treatment" (Dtd.element_names d))
  | None -> Alcotest.fail "member schema missing"

let test_ismoqe_renderings () =
  let e = hospital_engine () in
  Engine.build_index e;
  let schema = Ismoqe.schema_graph Hospital.dtd in
  Alcotest.(check bool) "schema mentions patient" true (contains schema "patient");
  let v = Option.get (Engine.view e ~group:"researchers") in
  let spec = Ismoqe.view_specification v in
  Alcotest.(check bool) "spec has sigma" true (contains spec "sigma(");
  Alcotest.(check bool) "spec has view dtd" true (contains spec "<!ELEMENT");
  let mfa = ok (Engine.rewrite_only e ~group:"researchers" "patient/treatment") in
  Alcotest.(check bool) "ascii automaton" true
    (contains (Ismoqe.mfa_ascii mfa) "SELECT");
  Alcotest.(check bool) "dot automaton" true
    (contains (Ismoqe.mfa_dot mfa) "digraph");
  let trace = Trace.create () in
  let r = ok (Engine.query e ~trace "patient/pname") in
  let rendered = Ismoqe.evaluation_trace ~color:false trace (Engine.document e) in
  Alcotest.(check bool) "trace marks answers" true (contains rendered "ANSWER");
  let colored = Ismoqe.evaluation_trace ~color:true trace (Engine.document e) in
  Alcotest.(check bool) "ansi colors" true (contains colored "\027[");
  let tax = Ismoqe.tax_view (Option.get (Engine.index e)) (Engine.document e) in
  Alcotest.(check bool) "tax view" true (contains tax "{");
  let text = Ismoqe.answers_text (Engine.document e) r.Engine.answers in
  Alcotest.(check bool) "answers text" true (contains text "pname");
  let tree_view = Ismoqe.answers_tree (Engine.document e) r.Engine.answers in
  Alcotest.(check bool) "answers tree" true (contains tree_view "<== answer");
  Alcotest.(check bool) "stats" true
    (String.length (Ismoqe.stats_table r.Engine.stats) > 0)

let () =
  Alcotest.run "smoqe_core"
    [
      ( "engine",
        [
          Alcotest.test_case "input errors" `Quick test_engine_of_string_errors;
          Alcotest.test_case "direct query" `Quick test_engine_direct_query;
          Alcotest.test_case "modes agree" `Quick test_engine_modes_agree;
          Alcotest.test_case "view query" `Quick test_engine_view_query;
          Alcotest.test_case "unknown group" `Quick test_engine_unknown_group;
          Alcotest.test_case "bad query" `Quick test_engine_bad_query;
          Alcotest.test_case "index lifecycle" `Quick test_engine_index_lifecycle;
          Alcotest.test_case "index mismatch" `Quick test_engine_index_mismatch;
          Alcotest.test_case "policy needs dtd" `Quick test_engine_policy_needs_dtd;
          Alcotest.test_case "static short-circuit" `Quick
            test_static_short_circuit;
        ] );
      ( "session",
        [
          Alcotest.test_case "roles" `Quick test_session_roles;
          Alcotest.test_case "schema" `Quick test_session_schema;
        ] );
      ("ismoqe", [ Alcotest.test_case "renderings" `Quick test_ismoqe_renderings ]);
    ]
