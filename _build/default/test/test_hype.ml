(* Tests for the HyPE evaluator: DOM and StAX modes against the reference
   semantics, Cans/conditions, stats, traces, and TAX pruning soundness. *)

module Tree = Smoqe_xml.Tree
module Xml_parser = Smoqe_xml.Parser
module Serializer = Smoqe_xml.Serializer
module Ast = Smoqe_rxpath.Ast
module Rx_parser = Smoqe_rxpath.Parser
module Pretty = Smoqe_rxpath.Pretty
module Semantics = Smoqe_rxpath.Semantics
module Compile = Smoqe_automata.Compile
module Conds = Smoqe_hype.Conds
module Cans = Smoqe_hype.Cans
module Trace = Smoqe_hype.Trace
module Stats = Smoqe_hype.Stats
module Eval_dom = Smoqe_hype.Eval_dom
module Eval_stax = Smoqe_hype.Eval_stax
module Tax = Smoqe_tax.Tax

let parse s =
  match Rx_parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let doc s = Xml_parser.tree_of_string s

let dom_answers ?tax t q = Eval_dom.eval ?tax t (parse q)
let oracle_answers t q = Semantics.answer_list t (parse q)

let check_against_oracle ?tax t q =
  Alcotest.(check (list int))
    (Printf.sprintf "dom vs oracle: %s" q)
    (oracle_answers t q) (dom_answers ?tax t q);
  let events = Xml_parser.events_of_tree t in
  let mfa = Compile.compile (parse q) in
  let stax = Eval_stax.run_events mfa events in
  Alcotest.(check (list int))
    (Printf.sprintf "stax vs oracle: %s" q)
    (oracle_answers t q) stax.Eval_stax.answers

(* --- Conds -------------------------------------------------------------- *)

let test_conds_set_ops () =
  let s = Conds.add (1, 5) (Conds.add (0, 3) (Conds.add (1, 5) Conds.empty)) in
  Alcotest.(check int) "dedup" 2 (Conds.cardinal s);
  Alcotest.(check (list (pair int int))) "sorted" [ (0, 3); (1, 5) ]
    (Conds.to_list s);
  let s2 = Conds.add (2, 2) Conds.empty in
  let u = Conds.union s s2 in
  Alcotest.(check int) "union" 3 (Conds.cardinal u);
  Alcotest.(check bool) "subset" true (Conds.subset s u);
  Alcotest.(check bool) "not subset" false (Conds.subset u s)

let test_conds_dnf () =
  let a = Conds.add (0, 1) Conds.empty in
  let ab = Conds.add (1, 2) a in
  let d = Conds.dnf_add Conds.dnf_false ab in
  Alcotest.(check int) "one set" 1 (Conds.dnf_size d);
  (* adding the smaller set subsumes the larger *)
  let d = Conds.dnf_add d a in
  Alcotest.(check int) "subsumed" 1 (Conds.dnf_size d);
  Alcotest.(check (list (pair int int))) "kept smaller" [ (0, 1) ]
    (Conds.to_list (List.hd (Conds.dnf_sets d)));
  (* adding a superset of an existing set is dropped *)
  let d = Conds.dnf_add d ab in
  Alcotest.(check int) "superset dropped" 1 (Conds.dnf_size d);
  (* empty set makes it unconditional *)
  let d = Conds.dnf_add d Conds.empty in
  Alcotest.(check bool) "unconditional" true (Conds.dnf_is_unconditional d);
  Alcotest.(check bool) "false is false" true
    (Conds.dnf_is_false Conds.dnf_false);
  Alcotest.(check bool) "eval" true (Conds.dnf_eval d (fun _ -> false))

let test_cans () =
  let c = Cans.create () in
  Cans.add c ~node:4 (Conds.add (0, 2) Conds.empty);
  Cans.add c ~node:2 Conds.empty;
  Cans.add c ~node:4 (Conds.add (1, 3) Conds.empty);
  Alcotest.(check int) "three entries" 3 (Cans.size c);
  Alcotest.(check int) "two distinct candidates" 2
    (List.length (Cans.entries c));
  let answers = Cans.resolve c ~lookup:(fun (q, _) -> q = 1) in
  Alcotest.(check (list int)) "resolved in doc order" [ 2; 4 ] answers;
  (* an unconditional entry plus a failing conditional one: still answers *)
  let answers = Cans.resolve c ~lookup:(fun _ -> false) in
  Alcotest.(check (list int)) "unconditional survives" [ 2 ] answers

(* --- DOM evaluation ------------------------------------------------------ *)

let hospital =
  lazy
    (doc
       "<hospital>\
        <patient><pname>Ann</pname>\
        <visit><treatment><test>blood</test></treatment><date>1</date></visit>\
        <visit><treatment><medication>headache</medication></treatment><date>2</date></visit>\
        </patient>\
        <patient><pname>Bob</pname>\
        <visit><treatment><medication>headache</medication></treatment><date>3</date></visit>\
        </patient>\
        <patient><pname>Carol</pname>\
        <parent><patient><pname>Dan</pname>\
        <visit><treatment><test>xray</test></treatment><date>4</date></visit>\
        </patient></parent>\
        <visit><treatment><medication>headache</medication></treatment><date>5</date></visit>\
        </patient>\
        </hospital>")

let q0' =
  "patient[(parent/patient)*/visit/treatment/test and \
   visit/treatment[medication/text()=\"headache\"]]/pname"

let test_dom_simple_paths () =
  let t = Lazy.force hospital in
  List.iter
    (fun q -> check_against_oracle t q)
    [
      "patient";
      "patient/pname";
      "*";
      ".";
      "//pname";
      "//text()";
      "patient/visit/treatment/medication";
      "(patient/parent)*/patient";
      "patient | patient/pname";
    ]

let test_dom_filters () =
  let t = Lazy.force hospital in
  List.iter
    (fun q -> check_against_oracle t q)
    [
      "patient[visit]";
      "patient[parent]/pname";
      "patient[visit/treatment/medication = 'headache']/pname";
      "patient[not(parent)]/pname";
      "patient[visit and parent]";
      "patient[visit or parent]";
      "patient[visit[treatment[test]]]/pname";
      "patient[pname = 'Bob']";
      "patient[pname = 'Nobody']";
      q0';
    ]

let test_dom_q0_names () =
  let t = Lazy.force hospital in
  let names = List.map (Tree.value t) (dom_answers t q0') in
  Alcotest.(check (list string)) "Q0 picks Ann and Carol" [ "Ann"; "Carol" ]
    names

let test_dom_root_answer () =
  let t = Lazy.force hospital in
  Alcotest.(check (list int)) "self selects root" [ 0 ] (dom_answers t ".");
  check_against_oracle t ".[patient]";
  check_against_oracle t ".[zebra]"

let test_dom_value_on_element () =
  (* Element value = concatenation of immediate text children. *)
  let t = doc "<r><a>he<b>IGNORED</b>llo</a><a>other</a></r>" in
  check_against_oracle t "a[. = 'hello']";
  Alcotest.(check int) "concat value matched" 1
    (List.length (dom_answers t "a[. = 'hello']"))

let test_dom_star_depth () =
  (* Deep recursion through (a)*. *)
  let deep = Buffer.create 256 in
  for _ = 1 to 30 do Buffer.add_string deep "<a>" done;
  Buffer.add_string deep "<b>leaf</b>";
  for _ = 1 to 30 do Buffer.add_string deep "</a>" done;
  let t = doc ("<r>" ^ Buffer.contents deep ^ "</r>") in
  check_against_oracle t "(a)*/b";
  check_against_oracle t "(a)+/b";
  Alcotest.(check int) "one leaf" 1 (List.length (dom_answers t "(a)*/b"))

let test_dom_condition_chains () =
  (* Qualifiers on the path BEFORE the answer: conditions must defer. *)
  let t =
    doc
      "<r><x><mark/><y><z>hit</z></y></x><x><y><z>miss</z></y></x></r>"
  in
  check_against_oracle t "x[mark]/y/z";
  Alcotest.(check int) "one hit" 1 (List.length (dom_answers t "x[mark]/y/z"))

let test_dom_condition_in_star () =
  (* Condition checked repeatedly inside a Kleene loop. *)
  let t =
    doc
      "<r><a><ok/><a><ok/><b>deep</b></a></a><a><a><b>blocked</b></a></a></r>"
  in
  check_against_oracle t "(a[ok])*/b"

let test_dom_negation_of_deep () =
  let t = Lazy.force hospital in
  check_against_oracle t "patient[not(visit/treatment/test)]/pname";
  check_against_oracle t
    "patient[not((parent/patient)*/visit/treatment/test)]/pname"

let test_stax_matches_dom () =
  let t = Lazy.force hospital in
  let queries =
    [ q0'; "//pname"; "patient[visit]"; "(patient/parent)*/patient/pname" ]
  in
  List.iter
    (fun q ->
      let mfa = Compile.compile (parse q) in
      let stax = Eval_stax.run_events mfa (Xml_parser.events_of_tree t) in
      Alcotest.(check (list int)) q (dom_answers t q) stax.Eval_stax.answers;
      Alcotest.(check int)
        (q ^ " node count") (Tree.n_nodes t) stax.Eval_stax.n_nodes)
    queries

let test_stax_from_string () =
  let result =
    Eval_stax.eval_string (parse "a/b[text() = 'x']")
      "<r><a><b>x</b><b>y</b></a></r>"
  in
  Alcotest.(check int) "one answer" 1 (List.length result.Eval_stax.answers)

let test_stax_capture () =
  (* Captured fragments equal the DOM serialization of the answers. *)
  let t = Lazy.force hospital in
  List.iter
    (fun q ->
      let mfa = Compile.compile (parse q) in
      let r =
        Eval_stax.run_events ~capture:true mfa (Xml_parser.events_of_tree t)
      in
      Alcotest.(check int) (q ^ " captured all answers")
        (List.length r.Eval_stax.answers)
        (List.length r.Eval_stax.captured);
      List.iter
        (fun (n, fragment) ->
          let expected =
            if Tree.is_text t n then
              Serializer.escape_text (Tree.text_content t n)
            else Serializer.subtree_to_string ~indent:false t n
          in
          Alcotest.(check string) (Printf.sprintf "%s node %d" q n) expected
            fragment)
        r.Eval_stax.captured)
    [ "patient"; "patient/pname"; "//medication/text()"; q0';
      "patient[parent]" (* nested candidate inside another candidate *) ]

let test_stax_capture_off_by_default () =
  let t = Lazy.force hospital in
  let mfa = Compile.compile (parse "patient") in
  let r = Eval_stax.run_events mfa (Xml_parser.events_of_tree t) in
  Alcotest.(check (list (pair int string))) "no captures" []
    r.Eval_stax.captured

let test_stax_single_pass_stats () =
  let t = Lazy.force hospital in
  let mfa = Compile.compile (parse q0') in
  let r = Eval_stax.run_events mfa (Xml_parser.events_of_tree t) in
  Alcotest.(check int) "one pass" 1 r.Eval_stax.stats.Stats.passes_over_data

(* --- Skipping and TAX ----------------------------------------------------- *)

let skewed_doc () =
  (* One relevant branch, many irrelevant ones. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<r><target><leaf>yes</leaf></target>";
  for i = 1 to 50 do
    Buffer.add_string buf
      (Printf.sprintf "<junk><j1><j2>%d</j2></j1></junk>" i)
  done;
  Buffer.add_string buf "</r>";
  doc (Buffer.contents buf)

let test_dead_skipping () =
  let t = skewed_doc () in
  let mfa = Compile.compile (parse "target/leaf") in
  let r = Eval_dom.run mfa t in
  Alcotest.(check (list int)) "answers" (oracle_answers t "target/leaf")
    r.Eval_dom.answers;
  (* junk subtrees are entered once (to learn they are dead) but their
     insides are skipped *)
  Alcotest.(check bool) "skipped most of the document" true
    (r.Eval_dom.stats.Stats.nodes_skipped_dead > 100)

let test_tax_pruning_effect () =
  let t = skewed_doc () in
  let tax = Tax.build t in
  (* //leaf: without TAX the wildcard closure descends everywhere; with TAX
     the junk subtrees (no leaf below) are pruned. *)
  let mfa = Compile.compile (parse "//leaf") in
  let without = Eval_dom.run mfa t in
  let mfa2 = Compile.compile (parse "//leaf") in
  let with_tax = Eval_dom.run ~tax ~prune_threshold:0 mfa2 t in
  Alcotest.(check (list int)) "same answers" without.Eval_dom.answers
    with_tax.Eval_dom.answers;
  Alcotest.(check bool) "tax pruned subtrees" true
    (with_tax.Eval_dom.stats.Stats.nodes_pruned_tax > 0);
  Alcotest.(check bool) "tax reduced work" true
    (with_tax.Eval_dom.stats.Stats.nodes_alive
    < without.Eval_dom.stats.Stats.nodes_alive)

let test_cans_small () =
  let t = skewed_doc () in
  let mfa = Compile.compile (parse "target/leaf") in
  let r = Eval_dom.run mfa t in
  Alcotest.(check bool) "cans much smaller than doc" true
    (r.Eval_dom.cans_size * 10 < Tree.n_nodes t)

let test_trace_marks () =
  let t = doc "<r><a><b>x</b></a><c/></r>" in
  let trace = Trace.create () in
  let mfa = Compile.compile (parse "a/b") in
  let r = Eval_dom.run ~trace mfa t in
  Alcotest.(check int) "one answer" 1 (List.length r.Eval_dom.answers);
  let b = List.hd r.Eval_dom.answers in
  Alcotest.(check bool) "answer marked" true (Trace.marked trace b Trace.Answer);
  Alcotest.(check bool) "answer was in cans" true
    (Trace.marked trace b Trace.In_cans);
  Alcotest.(check bool) "root visited" true (Trace.marked trace 0 Trace.Visited);
  (* c matched nothing *)
  let c = List.nth (Tree.children t 0) 1 in
  Alcotest.(check bool) "c dead" true (Trace.marked trace c Trace.Dead);
  let rendering = Trace.render trace t in
  Alcotest.(check bool) "render nonempty" true (String.length rendering > 0)

(* --- Engine driver contract ------------------------------------------------ *)

module Engine = Smoqe_hype.Engine

let test_engine_contract_errors () =
  let mfa = Compile.compile (parse "a") in
  (* leave without enter *)
  let e = Engine.create mfa in
  (try
     Engine.leave e;
     Alcotest.fail "leave without enter accepted"
   with Engine.Driver_error _ -> ());
  (* finish with open nodes *)
  let e = Engine.create mfa in
  ignore (Engine.enter e ~id:0 ~kind:(Engine.El "r"));
  (try
     ignore (Engine.finish e);
     Alcotest.fail "finish with open nodes accepted"
   with Engine.Driver_error _ -> ());
  (* enter after finish *)
  let e = Engine.create mfa in
  ignore (Engine.enter e ~id:0 ~kind:(Engine.El "r"));
  Engine.leave e;
  ignore (Engine.finish e);
  (try
     ignore (Engine.enter e ~id:1 ~kind:(Engine.El "r"));
     Alcotest.fail "enter after finish accepted"
   with Engine.Driver_error _ -> ());
  (* finish twice *)
  let e = Engine.create mfa in
  ignore (Engine.enter e ~id:0 ~kind:(Engine.El "r"));
  Engine.leave e;
  ignore (Engine.finish e);
  try
    ignore (Engine.finish e);
    Alcotest.fail "finish twice accepted"
  with Engine.Driver_error _ -> ()

let test_engine_manual_drive () =
  (* Drive the engine by hand: <r><a/></r> with query "a". *)
  let mfa = Compile.compile (parse "a") in
  let e = Engine.create mfa in
  (match Engine.enter e ~id:0 ~kind:(Engine.El "r") with
  | Engine.Alive -> ()
  | Engine.Dead -> Alcotest.fail "root dead");
  (match Engine.enter e ~id:1 ~kind:(Engine.El "a") with
  | Engine.Alive ->
    Alcotest.(check bool) "a is a candidate" true (Engine.entered_candidate e);
    Engine.leave e
  | Engine.Dead -> Alcotest.fail "a dead");
  (match Engine.enter e ~id:2 ~kind:(Engine.El "b") with
  | Engine.Dead -> () (* no leave for dead enters *)
  | Engine.Alive -> Alcotest.fail "b alive");
  Engine.leave e;
  Alcotest.(check (list int)) "answer" [ 1 ] (Engine.finish e)

let test_deep_document_recursion () =
  (* 2000 levels of nesting through parser, evaluator and serializer. *)
  let depth = 2000 in
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do Buffer.add_string buf "<a>" done;
  Buffer.add_string buf "<leaf/>";
  for _ = 1 to depth do Buffer.add_string buf "</a>" done;
  let t = doc (Buffer.contents buf) in
  Alcotest.(check int) "nodes" (depth + 1) (Tree.n_nodes t);
  Alcotest.(check int) "one leaf" 1 (List.length (dom_answers t "(a)*/leaf"));
  let mfa = Compile.compile (parse "//leaf") in
  let r = Eval_stax.run_events mfa (Xml_parser.events_of_tree t) in
  Alcotest.(check int) "stax deep" 1 (List.length r.Eval_stax.answers)

(* --- Property tests: HyPE = oracle --------------------------------------- *)

let tag_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]
let value_gen = QCheck2.Gen.oneofl [ "x"; "y" ]

let rec path_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof
        [ return Ast.Self; map (fun t -> Ast.Tag t) tag_gen;
          return Ast.Wildcard; return Ast.Text ]
    else
      frequency
        [
          (3, map (fun t -> Ast.Tag t) tag_gen);
          (3, map2 Ast.seq (path_gen (n / 2)) (path_gen (n / 2)));
          (2, map2 Ast.union (path_gen (n / 2)) (path_gen (n / 2)));
          (2, map Ast.star (path_gen (n - 1)));
          (2, map2 Ast.filter (path_gen (n / 2)) (qual_gen (n / 2)));
        ])

and qual_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof
        [
          map (fun p -> Ast.Exists p) (path_gen 0);
          map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen 0) value_gen;
        ]
    else
      frequency
        [
          (3, map (fun p -> Ast.Exists p) (path_gen (n - 1)));
          (2, map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen (n - 1)) value_gen);
          (2, map Ast.q_not (qual_gen (n - 1)));
          (1, map2 Ast.q_and (qual_gen (n / 2)) (qual_gen (n / 2)));
          (1, map2 Ast.q_or (qual_gen (n / 2)) (qual_gen (n / 2)));
        ])

let source_gen =
  QCheck2.Gen.(
    sized_size (int_bound 5)
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 map (fun s -> Tree.T s) value_gen;
                 map (fun t -> Tree.E (t, [], [])) tag_gen;
               ]
           else
             map2
               (fun t kids -> Tree.E (t, [], kids))
               tag_gen
               (list_size (int_bound 3) (self (n / 2)))))

let doc_gen =
  QCheck2.Gen.(
    map
      (fun kids -> Tree.of_source (Tree.E ("r", [], kids)))
      (list_size (int_bound 4) source_gen))

let print_case (t, p) =
  Printf.sprintf "doc: %s\nquery: %s"
    (Serializer.to_string ~indent:false t)
    (Pretty.path_to_string p)

let case_gen = QCheck2.Gen.(pair doc_gen (sized_size (int_bound 8) path_gen))

let prop_dom_equals_oracle =
  QCheck2.Test.make ~count:1000 ~name:"HyPE DOM = oracle" ~print:print_case
    case_gen (fun (t, p) ->
      let mfa = Compile.compile p in
      (Eval_dom.run mfa t).Eval_dom.answers = Semantics.answer_list t p)

let prop_stax_equals_oracle =
  QCheck2.Test.make ~count:1000 ~name:"HyPE StAX = oracle" ~print:print_case
    case_gen (fun (t, p) ->
      let mfa = Compile.compile p in
      (Eval_stax.run_events mfa (Xml_parser.events_of_tree t)).Eval_stax.answers
      = Semantics.answer_list t p)

let prop_tax_equals_oracle =
  QCheck2.Test.make ~count:1000 ~name:"HyPE DOM with TAX = oracle"
    ~print:print_case case_gen (fun (t, p) ->
      let mfa = Compile.compile p in
      let tax = Tax.build t in
      (Eval_dom.run ~tax mfa t).Eval_dom.answers = Semantics.answer_list t p)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_dom_equals_oracle; prop_stax_equals_oracle; prop_tax_equals_oracle ]

let () =
  Alcotest.run "smoqe_hype"
    [
      ( "conds",
        [
          Alcotest.test_case "set operations" `Quick test_conds_set_ops;
          Alcotest.test_case "dnf subsumption" `Quick test_conds_dnf;
          Alcotest.test_case "cans" `Quick test_cans;
        ] );
      ( "dom",
        [
          Alcotest.test_case "simple paths" `Quick test_dom_simple_paths;
          Alcotest.test_case "filters" `Quick test_dom_filters;
          Alcotest.test_case "Q0 answer names" `Quick test_dom_q0_names;
          Alcotest.test_case "root answers" `Quick test_dom_root_answer;
          Alcotest.test_case "element value" `Quick test_dom_value_on_element;
          Alcotest.test_case "deep star" `Quick test_dom_star_depth;
          Alcotest.test_case "condition chains" `Quick test_dom_condition_chains;
          Alcotest.test_case "condition in star" `Quick
            test_dom_condition_in_star;
          Alcotest.test_case "negation" `Quick test_dom_negation_of_deep;
        ] );
      ( "stax",
        [
          Alcotest.test_case "matches dom" `Quick test_stax_matches_dom;
          Alcotest.test_case "from string" `Quick test_stax_from_string;
          Alcotest.test_case "capture" `Quick test_stax_capture;
          Alcotest.test_case "capture off" `Quick test_stax_capture_off_by_default;
          Alcotest.test_case "single pass" `Quick test_stax_single_pass_stats;
        ] );
      ( "engine contract",
        [
          Alcotest.test_case "driver errors" `Quick test_engine_contract_errors;
          Alcotest.test_case "manual drive" `Quick test_engine_manual_drive;
          Alcotest.test_case "deep documents" `Quick test_deep_document_recursion;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "dead skipping" `Quick test_dead_skipping;
          Alcotest.test_case "tax effect" `Quick test_tax_pruning_effect;
          Alcotest.test_case "cans small" `Quick test_cans_small;
          Alcotest.test_case "trace" `Quick test_trace_marks;
        ] );
      ("properties", qsuite);
    ]
