(* Tests for the on-disk store: create/open round-trips, policy
   persistence, index reuse, corruption handling. *)

module Tree = Smoqe_xml.Tree
module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Store = Smoqe_store.Store
module Hospital = Smoqe_workload.Hospital

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let fresh_dir () =
  let path = Filename.temp_file "smoqe_store" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  let doc = Hospital.generate ~seed:55 ~n_patients:6 ~recursion_depth:2 () in
  let store = ok (Store.create ~dir ~dtd:Hospital.dtd doc) in
  let finally () = if Sys.file_exists dir then rm_rf dir in
  Fun.protect ~finally (fun () -> f dir doc store)

let test_create_layout () =
  with_store (fun dir _ _ ->
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " exists") true
            (Sys.file_exists (Filename.concat dir f)))
        [ "MANIFEST"; "document.xml"; "document.dtd"; "document.tax" ])

let test_create_twice_refused () =
  with_store (fun dir doc _ ->
      match Store.create ~dir doc with
      | Error msg ->
        Alcotest.(check bool) "mentions store" true
          (String.length msg > 0)
      | Ok _ -> Alcotest.fail "re-created over an existing store")

let test_open_roundtrip () =
  with_store (fun dir doc store ->
      ok (Store.add_policy store ~group:"researchers" Hospital.policy);
      let reopened = ok (Store.open_dir dir) in
      Alcotest.(check (list string)) "groups" [ "researchers" ]
        (Store.groups reopened);
      let engine = Store.engine reopened in
      Alcotest.(check bool) "document equal" true
        (Tree.equal doc (Engine.document engine));
      Alcotest.(check bool) "index loaded" true (Engine.index engine <> None);
      (* the view works after reopening *)
      let session =
        ok (Store.login reopened (Session.Member "researchers"))
      in
      let direct = ok (Store.login reopened Session.Admin) in
      let count s q = List.length (ok (Session.run s q)).Engine.answers in
      Alcotest.(check int) "names hidden through the view" 0
        (count session "//pname");
      Alcotest.(check bool) "admin sees names" true (count direct "//pname" > 0))

let test_policy_files_persisted () =
  with_store (fun dir _ store ->
      ok (Store.add_policy store ~group:"researchers" Hospital.policy);
      let path = Filename.concat dir "policies/researchers.policy" in
      Alcotest.(check bool) "policy file" true (Sys.file_exists path);
      ok (Store.remove_policy store ~group:"researchers");
      Alcotest.(check bool) "policy file removed" false (Sys.file_exists path);
      Alcotest.(check (list string)) "no groups" [] (Store.groups store))

let test_bad_group_name () =
  with_store (fun _ _ store ->
      match Store.add_policy store ~group:"../evil" Hospital.policy with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "path traversal accepted")

let test_remove_unknown_policy () =
  with_store (fun _ _ store ->
      match Store.remove_policy store ~group:"nope" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "removed a phantom policy")

let test_index_rebuilt_when_corrupt () =
  with_store (fun dir _ _ ->
      let index_path = Filename.concat dir "document.tax" in
      let oc = open_out index_path in
      output_string oc "garbage";
      close_out oc;
      let reopened = ok (Store.open_dir dir) in
      Alcotest.(check bool) "index rebuilt" true
        (Engine.index (Store.engine reopened) <> None);
      (* and the rebuilt index was persisted in valid form *)
      match Smoqe_tax.Codec.load index_path with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("rewritten index unreadable: " ^ msg))

let test_open_not_a_store () =
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let finally () = rm_rf dir in
  Fun.protect ~finally (fun () ->
      match Store.open_dir dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "opened an empty directory")

let test_manifest_corruption () =
  with_store (fun dir _ _ ->
      let oc = open_out (Filename.concat dir "MANIFEST") in
      output_string oc "not a manifest\n";
      close_out oc;
      match Store.open_dir dir with
      | Error msg ->
        Alcotest.(check bool) "mentions manifest" true
          (String.length msg > 0)
      | Ok _ -> Alcotest.fail "opened a corrupt store")

let () =
  Alcotest.run "smoqe_store"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "layout" `Quick test_create_layout;
          Alcotest.test_case "create twice" `Quick test_create_twice_refused;
          Alcotest.test_case "open roundtrip" `Quick test_open_roundtrip;
          Alcotest.test_case "policy persistence" `Quick
            test_policy_files_persisted;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "bad group name" `Quick test_bad_group_name;
          Alcotest.test_case "remove unknown" `Quick test_remove_unknown_policy;
          Alcotest.test_case "corrupt index" `Quick
            test_index_rebuilt_when_corrupt;
          Alcotest.test_case "not a store" `Quick test_open_not_a_store;
          Alcotest.test_case "corrupt manifest" `Quick test_manifest_corruption;
        ] );
    ]
