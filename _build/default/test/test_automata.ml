(* Tests for the automata layer: NFA building, MFA compilation sizes,
   reachability analysis, DOT export. *)

module Ast = Smoqe_rxpath.Ast
module Parser = Smoqe_rxpath.Parser
module Nfa = Smoqe_automata.Nfa
module Afa = Smoqe_automata.Afa
module Mfa = Smoqe_automata.Mfa
module Compile = Smoqe_automata.Compile
module Reachability = Smoqe_automata.Reachability
module Dot = Smoqe_automata.Dot

let parse s =
  match Parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let q0 =
  "hospital/patient[(parent/patient)*/visit/treatment/test and \
   visit/treatment[medication/text()=\"headache\"]]/pname"

(* --- Nfa --------------------------------------------------------------- *)

let test_nfa_builder () =
  let b = Nfa.create_builder () in
  let s0 = Nfa.fresh_state b in
  let s1 = Nfa.fresh_state b in
  let s2 = Nfa.fresh_state b in
  Nfa.add_edge b s0 (Nfa.Element "a") s1;
  Nfa.add_eps b s1 s2;
  Nfa.add_accept b s2 Nfa.Select;
  let nfa = Nfa.freeze b in
  Alcotest.(check int) "states" 3 nfa.Nfa.n_states;
  Alcotest.(check int) "transitions" 2 (Nfa.n_transitions nfa);
  Alcotest.(check (list int)) "closure of s1" [ 1; 2 ]
    (Nfa.eps_closure nfa [ s1 ]);
  Alcotest.(check (list int)) "reachable from s0" [ 0; 1; 2 ]
    (Nfa.reachable_states nfa s0)

let test_nfa_dedup () =
  let b = Nfa.create_builder () in
  let s0 = Nfa.fresh_state b in
  let s1 = Nfa.fresh_state b in
  Nfa.add_edge b s0 (Nfa.Element "a") s1;
  Nfa.add_edge b s0 (Nfa.Element "a") s1;
  Nfa.add_eps b s0 s1;
  Nfa.add_eps b s0 s1;
  Nfa.add_eps b s0 s0 (* self-eps dropped *);
  let nfa = Nfa.freeze b in
  Alcotest.(check int) "deduped" 2 (Nfa.n_transitions nfa)

let test_nfa_invalid_state () =
  let b = Nfa.create_builder () in
  let s0 = Nfa.fresh_state b in
  Alcotest.check_raises "unknown state" (Invalid_argument "Nfa: unknown state")
    (fun () -> Nfa.add_edge b s0 Nfa.Any_element 42)

(* --- Compile ----------------------------------------------------------- *)

let test_compile_simple () =
  let mfa = Compile.compile (parse "a/b") in
  Alcotest.(check int) "no quals" 0 (Mfa.n_quals mfa);
  Alcotest.(check int) "no atoms" 0 (Mfa.n_atoms mfa);
  Alcotest.(check int) "states" 3 (Mfa.n_states mfa)

let test_compile_q0 () =
  let mfa = Compile.compile (parse q0) in
  (* One top-level qualifier (the conjunction), one nested (medication...) *)
  Alcotest.(check int) "quals" 2 (Mfa.n_quals mfa);
  (* Atoms: the (parent/patient)*... path, the visit/treatment[...] path,
     and the nested medication/text() path. *)
  Alcotest.(check int) "atoms" 3 (Mfa.n_atoms mfa)

let test_compile_linear_size () =
  (* MFA size must grow linearly with query size: the defining property of
     the representation (paper §3, Rewriter). *)
  let base = "a[b = 'x']" in
  let sizes =
    List.map
      (fun k ->
        let q = String.concat "/" (List.init k (fun _ -> base)) in
        (Ast.size (parse q), Mfa.size (Compile.compile (parse q))))
      [ 1; 2; 4; 8; 16; 32 ]
  in
  let ratios =
    List.map (fun (ast, mfa) -> float_of_int mfa /. float_of_int ast) sizes
  in
  let min_r = List.fold_left min infinity ratios in
  let max_r = List.fold_left max 0. ratios in
  Alcotest.(check bool)
    (Printf.sprintf "ratio stable (%.2f..%.2f)" min_r max_r)
    true
    (max_r /. min_r < 1.5)

let test_compile_nested_quals_ordered () =
  (* Inner qualifiers must receive smaller ids than the qualifiers that
     contain them — HyPE's post-visit resolution relies on it. *)
  let mfa = Compile.compile (parse "a[b[c[d]]]") in
  Alcotest.(check int) "three quals" 3 (Mfa.n_quals mfa);
  (* The outermost formula must reference an atom whose sub-NFA carries
     checks for a smaller qual id; verified structurally: every state's
     checks reference qual ids < the number of quals, and the outer qual id
     (2) guards a state reachable from the selection start. *)
  let nfa = mfa.Mfa.nfa in
  Array.iteri
    (fun _ checks ->
      List.iter
        (fun q ->
          Alcotest.(check bool) "check id in range" true
            (q >= 0 && q < Mfa.n_quals mfa))
        checks)
    nfa.Nfa.checks

(* --- Reachability ------------------------------------------------------ *)

let must_labels = function
  | Reachability.All -> Alcotest.fail "expected Req"
  | Reachability.Req (labels, text) ->
    (Reachability.String_set.elements labels, text)

let test_reachability_labels () =
  let mfa = Compile.compile (parse "a/b/c") in
  let needs = Reachability.compute mfa.Mfa.nfa in
  let labels, text = must_labels needs.(mfa.Mfa.start) in
  Alcotest.(check (list string)) "all three mandatory" [ "a"; "b"; "c" ] labels;
  Alcotest.(check bool) "no text requirement" false text

let test_reachability_wildcard_and_text () =
  (* Wildcards impose no requirement, but the final text() does. *)
  let mfa = Compile.compile (parse "//text()") in
  let needs = Reachability.compute mfa.Mfa.nfa in
  let labels, text = must_labels needs.(mfa.Mfa.start) in
  Alcotest.(check (list string)) "no label requirement" [] labels;
  Alcotest.(check bool) "text required" true text

let test_reachability_anchor_behind_descendant () =
  (* The key TAX property: //leaf still requires leaf. *)
  let mfa = Compile.compile (parse "//leaf") in
  let needs = Reachability.compute mfa.Mfa.nfa in
  let labels, _ = must_labels needs.(mfa.Mfa.start) in
  Alcotest.(check (list string)) "leaf anchors" [ "leaf" ] labels

let test_reachability_cycle () =
  (* The loop is optional, so only c is mandatory on every accepting path. *)
  let mfa = Compile.compile (parse "(a/b)*/c") in
  let needs = Reachability.compute mfa.Mfa.nfa in
  let labels, _ = must_labels needs.(mfa.Mfa.start) in
  Alcotest.(check (list string)) "only c mandatory" [ "c" ] labels

let test_reachability_union_meet () =
  (* Two alternatives: only the common requirement survives. *)
  let mfa = Compile.compile (parse "a/x | b/x") in
  let needs = Reachability.compute mfa.Mfa.nfa in
  let labels, _ = must_labels needs.(mfa.Mfa.start) in
  Alcotest.(check (list string)) "x common" [ "x" ] labels

let test_reachability_dead_end () =
  (* A state with no route to acceptance is All (always prunable). *)
  let b = Nfa.create_builder () in
  let s0 = Nfa.fresh_state b in
  let s1 = Nfa.fresh_state b in
  Nfa.add_edge b s0 (Nfa.Element "a") s1;
  (* no accept anywhere *)
  let nfa = Nfa.freeze b in
  let needs = Reachability.compute nfa in
  Alcotest.(check bool) "dead end" true (needs.(s0) = Reachability.All)

let test_useless () =
  let mfa = Compile.compile (parse "a/b") in
  let needs = Reachability.compute mfa.Mfa.nfa in
  let s = needs.(mfa.Mfa.start) in
  Alcotest.(check bool) "a and b below" false
    (Reachability.useless s
       ~in_subtree:(fun l -> l = "a" || l = "b")
       ~has_text:false);
  Alcotest.(check bool) "missing a" true
    (Reachability.useless s ~in_subtree:(fun l -> l = "b") ~has_text:false);
  Alcotest.(check bool) "only z below" true
    (Reachability.useless s ~in_subtree:(fun l -> l = "z") ~has_text:true)

(* --- Analysis ------------------------------------------------------------ *)

module Analysis = Smoqe_automata.Analysis
module Dtd = Smoqe_xml.Dtd

let hospital_dtd = Smoqe_workload.Hospital.dtd

let verdict q =
  Analysis.satisfiable (Compile.compile (parse q)) hospital_dtd

let test_analysis_satisfiable () =
  List.iter
    (fun q ->
      match verdict q with
      | Analysis.Possibly_nonempty -> ()
      | Analysis.Empty -> Alcotest.fail (q ^ " judged empty"))
    [
      "patient/pname";
      "//medication";
      "(patient/parent)*/patient";
      "patient/pname/text()";
      ".";
    ]

let test_analysis_empty () =
  List.iter
    (fun q ->
      match verdict q with
      | Analysis.Empty -> ()
      | Analysis.Possibly_nonempty -> Alcotest.fail (q ^ " judged satisfiable"))
    [
      "zebra" (* undeclared tag *);
      "//zebra";
      "hospital" (* the root is not its own child *);
      "patient/medication" (* violates parent/child relation *);
      "pname/patient" (* upside down *);
      "patient/pname/pname";
      "//hospital";
      "patient/text()" (* patient has element content, no text *);
    ]

let test_analysis_rewritten_hidden_types () =
  (* After view rewriting, queries about hidden types are provably empty —
     the optimizer can refuse them without touching the data. *)
  let view = Smoqe_security.Derive.derive Smoqe_workload.Hospital.policy in
  let check q expected =
    let mfa = Smoqe_rewrite.Rewriter.rewrite view (parse q) in
    let got = Analysis.satisfiable mfa hospital_dtd in
    Alcotest.(check bool) q true (got = expected)
  in
  check "//pname" Analysis.Empty;
  check "patient/visit" Analysis.Empty;
  check "//test" Analysis.Empty;
  check "patient/treatment/medication" Analysis.Possibly_nonempty;
  check "(patient/parent)*/patient" Analysis.Possibly_nonempty

let test_analysis_product_bounded () =
  let mfa = Compile.compile (parse "(*)*") in
  let pairs = Analysis.reachable_type_pairs mfa hospital_dtd in
  (* at most states x (types + text) *)
  Alcotest.(check bool) "bounded" true
    (pairs <= Mfa.n_states mfa * 10)

(* --- Afa ---------------------------------------------------------------- *)

let test_afa_eval () =
  let f =
    Afa.F_and (Afa.F_or (Afa.F_atom 0, Afa.F_atom 1), Afa.F_not (Afa.F_atom 2))
  in
  Alcotest.(check bool) "sat" true (Afa.eval f (fun i -> i = 0));
  Alcotest.(check bool) "unsat" false (Afa.eval f (fun i -> i = 2));
  Alcotest.(check bool) "true" true (Afa.eval Afa.F_true (fun _ -> false));
  Alcotest.(check (list int)) "atoms" [ 0; 1; 2 ] (Afa.atoms_of f)

(* --- Dot ----------------------------------------------------------------- *)

let test_dot_output () =
  let mfa = Compile.compile (parse q0) in
  let dot = Dot.mfa_to_dot mfa in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions hospital" true (contains dot "hospital");
  Alcotest.(check bool) "mentions qualifier box" true (contains dot "q0:");
  let ascii = Dot.mfa_to_ascii mfa in
  Alcotest.(check bool) "ascii mentions SELECT" true (contains ascii "SELECT");
  Alcotest.(check bool) "ascii mentions CHECK" true (contains ascii "CHECK")

(* --- Property: compiled size linear -------------------------------------- *)

let tag_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]

let rec path_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof [ return Ast.Self; map (fun t -> Ast.Tag t) tag_gen;
              return Ast.Wildcard; return Ast.Text ]
    else
      frequency
        [
          (2, map (fun t -> Ast.Tag t) tag_gen);
          (2, map2 Ast.seq (path_gen (n / 2)) (path_gen (n / 2)));
          (1, map2 Ast.union (path_gen (n / 2)) (path_gen (n / 2)));
          (1, map Ast.star (path_gen (n - 1)));
          (1, map2 Ast.filter (path_gen (n / 2)) (qual_gen (n / 2)));
        ])

and qual_gen n =
  QCheck2.Gen.(
    if n = 0 then map (fun p -> Ast.Exists p) (path_gen 0)
    else
      frequency
        [
          (2, map (fun p -> Ast.Exists p) (path_gen (n - 1)));
          (1, map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen (n - 1))
               (oneofl [ "x"; "y" ]));
          (1, map Ast.q_not (qual_gen (n - 1)));
          (1, map2 Ast.q_and (qual_gen (n / 2)) (qual_gen (n / 2)));
        ])

let prop_mfa_linear =
  QCheck2.Test.make ~count:300 ~name:"MFA size bounded linearly in query size"
    QCheck2.Gen.(sized_size (int_bound 9) path_gen)
    (fun p ->
      let mfa = Compile.compile p in
      Mfa.size mfa <= 8 * Ast.size p + 8)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_mfa_linear ]

let () =
  Alcotest.run "smoqe_automata"
    [
      ( "nfa",
        [
          Alcotest.test_case "builder" `Quick test_nfa_builder;
          Alcotest.test_case "dedup" `Quick test_nfa_dedup;
          Alcotest.test_case "invalid state" `Quick test_nfa_invalid_state;
        ] );
      ( "compile",
        [
          Alcotest.test_case "simple" `Quick test_compile_simple;
          Alcotest.test_case "paper Q0" `Quick test_compile_q0;
          Alcotest.test_case "linear size" `Quick test_compile_linear_size;
          Alcotest.test_case "nested qual ids" `Quick
            test_compile_nested_quals_ordered;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "labels" `Quick test_reachability_labels;
          Alcotest.test_case "wildcard and text" `Quick
            test_reachability_wildcard_and_text;
          Alcotest.test_case "descendant anchor" `Quick
            test_reachability_anchor_behind_descendant;
          Alcotest.test_case "union meet" `Quick test_reachability_union_meet;
          Alcotest.test_case "dead end" `Quick test_reachability_dead_end;
          Alcotest.test_case "cycles" `Quick test_reachability_cycle;
          Alcotest.test_case "useless" `Quick test_useless;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "satisfiable" `Quick test_analysis_satisfiable;
          Alcotest.test_case "empty" `Quick test_analysis_empty;
          Alcotest.test_case "hidden types" `Quick
            test_analysis_rewritten_hidden_types;
          Alcotest.test_case "product bounded" `Quick
            test_analysis_product_bounded;
        ] );
      ("afa", [ Alcotest.test_case "eval" `Quick test_afa_eval ]);
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_output ]);
      ("properties", qsuite);
    ]
