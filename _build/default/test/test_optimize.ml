(* Tests for the MFA optimizer: size reduction and answer preservation. *)

module Tree = Smoqe_xml.Tree
module Xml_parser = Smoqe_xml.Parser
module Serializer = Smoqe_xml.Serializer
module Ast = Smoqe_rxpath.Ast
module Rx_parser = Smoqe_rxpath.Parser
module Pretty = Smoqe_rxpath.Pretty
module Semantics = Smoqe_rxpath.Semantics
module Compile = Smoqe_automata.Compile
module Mfa = Smoqe_automata.Mfa
module Optimize = Smoqe_automata.Optimize
module Eval_dom = Smoqe_hype.Eval_dom
module Eval_stax = Smoqe_hype.Eval_stax
module Rewriter = Smoqe_rewrite.Rewriter
module Derive = Smoqe_security.Derive
module Hospital = Smoqe_workload.Hospital
module Queries = Smoqe_workload.Queries

let parse s =
  match Rx_parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let test_shrinks_thompson_glue () =
  (* Stars and unions create epsilon chains; the optimizer must fold them. *)
  let mfa = Compile.compile (parse "(a | b)*/c/(d)*") in
  let opt, report = Optimize.optimize_with_report mfa in
  Alcotest.(check bool)
    (Fmt.str "%a" Optimize.pp_report report)
    true
    (Mfa.n_states opt < Mfa.n_states mfa);
  (* No check-free epsilon edges may remain. *)
  let nfa = opt.Mfa.nfa in
  Array.iteri
    (fun _ eps ->
      List.iter
        (fun v ->
          Alcotest.(check bool) "eps targets are check-guarded" true
            (nfa.Smoqe_automata.Nfa.checks.(v) <> []))
        eps)
    nfa.Smoqe_automata.Nfa.eps

let test_drops_unreachable_branch () =
  (* A branch on a label that cannot accept (dead end after the label is
     not possible here, so craft one via the builder). *)
  let b = Mfa.create_builder () in
  let s0 = Mfa.fresh_state b in
  let s1 = Mfa.fresh_state b in
  let dead = Mfa.fresh_state b in
  let dead2 = Mfa.fresh_state b in
  Mfa.add_edge b s0 (Smoqe_automata.Nfa.Element "a") s1;
  Mfa.add_select b s1;
  (* dead branch: consumes b, goes nowhere *)
  Mfa.add_edge b s0 (Smoqe_automata.Nfa.Element "b") dead;
  Mfa.add_edge b dead (Smoqe_automata.Nfa.Element "c") dead2;
  let mfa = Mfa.freeze b ~start:s0 in
  let opt, report = Optimize.optimize_with_report mfa in
  Alcotest.(check int) "two states left" 2 report.Optimize.states_after;
  Alcotest.(check int) "one transition left" 1
    (Mfa.n_transitions opt)

let test_preserves_answers_on_suite () =
  let doc = Hospital.generate ~seed:77 ~n_patients:12 ~recursion_depth:3 () in
  List.iter
    (fun (name, q) ->
      let mfa = Compile.compile q in
      let opt = Optimize.optimize mfa in
      Alcotest.(check (list int))
        (name ^ " dom")
        (Eval_dom.run mfa doc).Eval_dom.answers
        (Eval_dom.run opt doc).Eval_dom.answers;
      let events = Xml_parser.events_of_tree doc in
      Alcotest.(check (list int))
        (name ^ " stax")
        (Eval_stax.run_events mfa events).Eval_stax.answers
        (Eval_stax.run_events opt events).Eval_stax.answers)
    Queries.parsed

let test_shrinks_rewritten_mfa () =
  (* The product construction leaves unreachable type-layer copies: the
     optimizer should cut a large fraction. *)
  let view = Derive.derive Hospital.policy in
  let q = parse "patient[treatment/medication = 'autism']/treatment" in
  let mfa = Rewriter.rewrite view q in
  let opt, report = Optimize.optimize_with_report mfa in
  Alcotest.(check bool)
    (Fmt.str "%a" Optimize.pp_report report)
    true
    (2 * Mfa.n_states opt < Mfa.n_states mfa);
  let doc = Hospital.generate ~seed:78 ~n_patients:10 ~recursion_depth:2 () in
  Alcotest.(check (list int))
    "rewritten answers preserved"
    (Eval_dom.run mfa doc).Eval_dom.answers
    (Eval_dom.run opt doc).Eval_dom.answers

let test_idempotent () =
  let mfa = Compile.compile (parse "(a | b)*/c[d and not(e)]") in
  let once = Optimize.optimize mfa in
  let twice, report = Optimize.optimize_with_report once in
  Alcotest.(check int) "states stable" (Mfa.n_states once)
    report.Optimize.states_after;
  Alcotest.(check int) "transitions stable"
    (Mfa.n_transitions once)
    (Mfa.n_transitions twice)

(* Property: optimized MFA = oracle on random docs and queries. *)
let tag_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]
let value_gen = QCheck2.Gen.oneofl [ "x"; "y" ]

let rec path_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof
        [ return Ast.Self; map (fun t -> Ast.Tag t) tag_gen;
          return Ast.Wildcard; return Ast.Text ]
    else
      frequency
        [
          (3, map (fun t -> Ast.Tag t) tag_gen);
          (3, map2 Ast.seq (path_gen (n / 2)) (path_gen (n / 2)));
          (2, map2 Ast.union (path_gen (n / 2)) (path_gen (n / 2)));
          (2, map Ast.star (path_gen (n - 1)));
          (2, map2 Ast.filter (path_gen (n / 2)) (qual_gen (n / 2)));
        ])

and qual_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof
        [
          map (fun p -> Ast.Exists p) (path_gen 0);
          map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen 0) value_gen;
        ]
    else
      frequency
        [
          (3, map (fun p -> Ast.Exists p) (path_gen (n - 1)));
          (2, map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen (n - 1)) value_gen);
          (2, map Ast.q_not (qual_gen (n - 1)));
          (1, map2 Ast.q_and (qual_gen (n / 2)) (qual_gen (n / 2)));
          (1, map2 Ast.q_or (qual_gen (n / 2)) (qual_gen (n / 2)));
        ])

let source_gen =
  QCheck2.Gen.(
    sized_size (int_bound 5)
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 map (fun s -> Tree.T s) value_gen;
                 map (fun t -> Tree.E (t, [], [])) tag_gen;
               ]
           else
             map2
               (fun t kids -> Tree.E (t, [], kids))
               tag_gen
               (list_size (int_bound 3) (self (n / 2)))))

let doc_gen =
  QCheck2.Gen.(
    map
      (fun kids -> Tree.of_source (Tree.E ("r", [], kids)))
      (list_size (int_bound 4) source_gen))

let print_case (t, p) =
  Printf.sprintf "doc: %s\nquery: %s"
    (Serializer.to_string ~indent:false t)
    (Pretty.path_to_string p)

let prop_optimized_equals_oracle =
  QCheck2.Test.make ~count:1000 ~name:"optimized MFA = oracle"
    ~print:print_case
    QCheck2.Gen.(pair doc_gen (sized_size (int_bound 8) path_gen))
    (fun (t, p) ->
      let opt = Optimize.optimize (Compile.compile p) in
      (Eval_dom.run opt t).Eval_dom.answers = Semantics.answer_list t p)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_optimized_equals_oracle ]

let () =
  Alcotest.run "smoqe_optimize"
    [
      ( "transformations",
        [
          Alcotest.test_case "folds thompson glue" `Quick
            test_shrinks_thompson_glue;
          Alcotest.test_case "drops dead branches" `Quick
            test_drops_unreachable_branch;
          Alcotest.test_case "idempotent" `Quick test_idempotent;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "query suite" `Quick test_preserves_answers_on_suite;
          Alcotest.test_case "rewritten views" `Quick test_shrinks_rewritten_mfa;
        ] );
      ("properties", qsuite);
    ]
