(* Tests for security views: policy parsing, derivation of the paper's
   Fig. 3 example, view-DTD generation, materialization, and
   non-disclosure. *)

module Tree = Smoqe_xml.Tree
module Dtd = Smoqe_xml.Dtd
module Validator = Smoqe_xml.Validator
module Ast = Smoqe_rxpath.Ast
module Rx_parser = Smoqe_rxpath.Parser
module Pretty = Smoqe_rxpath.Pretty
module Semantics = Smoqe_rxpath.Semantics
module Policy = Smoqe_security.Policy
module Derive = Smoqe_security.Derive
module Materialize = Smoqe_security.Materialize
module Hospital = Smoqe_workload.Hospital
module Bib = Smoqe_workload.Bib

let parse s =
  match Rx_parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let sigma_string view ~parent ~child =
  match Derive.sigma view ~parent ~child with
  | None -> "-"
  | Some p -> Pretty.path_to_string p

(* --- Policy ------------------------------------------------------------- *)

let test_policy_parse_roundtrip () =
  let p = Hospital.policy in
  let printed = Policy.to_string p in
  match Policy.of_string Hospital.dtd printed with
  | Error msg -> Alcotest.fail msg
  | Ok p' ->
    Alcotest.(check int) "same count"
      (List.length (Policy.annotations p))
      (List.length (Policy.annotations p'))

let test_policy_bad_edge () =
  match Policy.of_string Hospital.dtd "ann(patient, nothere) = N" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-edge"

let test_policy_bad_syntax () =
  List.iter
    (fun s ->
      match Policy.of_string Hospital.dtd s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [
      "ann(patient pname) = N";
      "ann(patient, pname) = X";
      "ann(patient, pname) = [not a query[";
      "garbage";
    ]

let test_policy_comments_and_blanks () =
  match
    Policy.of_string Hospital.dtd
      "# a comment\n\nann(patient, pname) = N\n   \n"
  with
  | Ok p -> Alcotest.(check int) "one annotation" 1 (List.length (Policy.annotations p))
  | Error msg -> Alcotest.fail msg

(* --- Derivation: the paper's Fig. 3 ------------------------------------- *)

let view = lazy (Derive.derive Hospital.policy)

let test_fig3_sigma () =
  let v = Lazy.force view in
  Alcotest.(check string) "sigma(hospital, patient)"
    "patient[visit/treatment/medication = 'autism']"
    (sigma_string v ~parent:"hospital" ~child:"patient");
  Alcotest.(check string) "sigma(patient, treatment)"
    "visit/treatment[medication]"
    (sigma_string v ~parent:"patient" ~child:"treatment");
  Alcotest.(check string) "sigma(patient, parent)" "parent"
    (sigma_string v ~parent:"patient" ~child:"parent");
  Alcotest.(check string) "sigma(parent, patient)" "patient"
    (sigma_string v ~parent:"parent" ~child:"patient");
  Alcotest.(check string) "sigma(treatment, medication)" "medication"
    (sigma_string v ~parent:"treatment" ~child:"medication")

let test_fig3_hidden_not_exposed () =
  let v = Lazy.force view in
  List.iter
    (fun (parent, child) ->
      Alcotest.(check string)
        (Printf.sprintf "sigma(%s, %s) empty" parent child)
        "-"
        (sigma_string v ~parent ~child))
    [
      ("patient", "pname");
      ("patient", "visit");
      ("patient", "date");
      ("patient", "test");
      ("treatment", "test");
      ("hospital", "visit");
    ]

let test_fig3_view_dtd () =
  let v = Lazy.force view in
  let vd = Derive.view_dtd v in
  Alcotest.(check string) "root" "hospital" (Dtd.root vd);
  Alcotest.(check (list string)) "visible types"
    [ "hospital"; "patient"; "treatment"; "parent"; "medication" ]
    (Dtd.element_names vd |> List.sort_uniq compare |> fun l ->
     List.filter (fun t -> List.mem t l)
       [ "hospital"; "patient"; "treatment"; "parent"; "medication" ]);
  (match Dtd.content vd "patient" with
  | Some (Dtd.Children r) ->
    Alcotest.(check string) "patient content" "treatment*, parent*"
      (Fmt.str "%a" Dtd.pp_regex r)
  | _ -> Alcotest.fail "patient content missing");
  (match Dtd.content vd "hospital" with
  | Some (Dtd.Children (Dtd.Star (Dtd.Name "patient"))) -> ()
  | _ -> Alcotest.fail "hospital content wrong");
  Alcotest.(check bool) "no approximation needed" true
    (Derive.approximated v = []);
  Alcotest.(check (list string)) "patient exposes in schema order"
    [ "treatment"; "parent" ]
    (Derive.exposed_children v "patient")

let test_view_dtd_recursive () =
  let v = Lazy.force view in
  Alcotest.(check bool) "view DTD recursive" true
    (Dtd.is_recursive (Derive.view_dtd v))

(* --- Derivation through recursive hidden regions ------------------------- *)

let test_hidden_cycle_kleene () =
  (* r -> a; a -> b?, leaf?; b -> a?, leaf2?; hide a and b entirely:
     visible leaves are promoted through the hidden cycle a/b, so sigma
     must contain a Kleene star. *)
  let dtd =
    Dtd.create ~root:"r"
      [
        ("r", Dtd.Children (Dtd.Opt (Dtd.Name "a")));
        ("a", Dtd.Children (Dtd.Seq (Dtd.Opt (Dtd.Name "b"), Dtd.Opt (Dtd.Name "leaf"))));
        ("b", Dtd.Children (Dtd.Seq (Dtd.Opt (Dtd.Name "a"), Dtd.Opt (Dtd.Name "leaf2"))));
        ("leaf", Dtd.Mixed []);
        ("leaf2", Dtd.Mixed []);
      ]
  in
  let policy =
    (* a and b are hidden (the unannotated a/b cycle inherits hiddenness);
       the leaves are explicitly re-granted. *)
    Policy.create dtd
      [
        (("r", "a"), Policy.Deny);
        (("a", "leaf"), Policy.Allow);
        (("b", "leaf2"), Policy.Allow);
      ]
  in
  let v = Derive.derive policy in
  (match Derive.sigma v ~parent:"r" ~child:"leaf" with
  | None -> Alcotest.fail "leaf not exposed"
  | Some p ->
    let rec has_star = function
      | Ast.Star _ -> true
      | Ast.Seq (a, b) | Ast.Union (a, b) -> has_star a || has_star b
      | Ast.Filter (a, _) -> has_star a
      | Ast.Self | Ast.Tag _ | Ast.Wildcard | Ast.Text -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "kleene star in %s" (Pretty.path_to_string p))
      true (has_star p));
  (* the promoted-leaf production collapses r's content *)
  let vd = Derive.view_dtd v in
  Alcotest.(check bool) "leaf2 exposed too" true
    (Derive.sigma v ~parent:"r" ~child:"leaf2" <> None);
  Alcotest.(check bool) "a gone from the view" true (Dtd.content vd "a" = None)

let test_deny_without_regrant_hides_subtree () =
  let v = Lazy.force view in
  (* test elements are denied and nothing below them is re-granted *)
  Alcotest.(check bool) "test not visible" true
    (not (List.mem "test" (Derive.visible_types v)))

(* --- Manual view specifications ------------------------------------------- *)

module View_spec = Smoqe_security.View_spec

let fig3_spec_text =
  "# Fig. 3(c), written by hand\n\
   sigma(hospital, patient) = patient[visit/treatment/medication = 'autism']\n\
   sigma(patient, treatment) = visit/treatment[medication]\n\
   sigma(patient, parent) = parent\n\
   sigma(parent, patient) = patient\n\
   sigma(treatment, medication) = medication\n"

let fig3_view_dtd =
  Dtd.create ~root:"hospital"
    [
      ("hospital", Dtd.Children (Dtd.Star (Dtd.Name "patient")));
      ( "patient",
        Dtd.Children
          (Dtd.Seq (Dtd.Star (Dtd.Name "treatment"), Dtd.Star (Dtd.Name "parent")))
      );
      ("treatment", Dtd.Children (Dtd.Opt (Dtd.Name "medication")));
      ("parent", Dtd.Children (Dtd.Name "patient"));
      ("medication", Dtd.Mixed []);
    ]

let test_manual_view_matches_derived () =
  let manual =
    match
      View_spec.of_string ~doc_dtd:Hospital.dtd ~view_dtd:fig3_view_dtd
        fig3_spec_text
    with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "no policy attached" true
    (Derive.policy manual = None);
  let derived = Lazy.force view in
  let doc = Hospital.generate ~seed:91 ~n_patients:8 ~recursion_depth:2 () in
  (* Same specification -> same materialized view and same query answers. *)
  let m1 = Materialize.materialize manual doc in
  let m2 = Materialize.materialize derived doc in
  Alcotest.(check bool) "materializations equal" true
    (Tree.equal m1.Materialize.tree m2.Materialize.tree);
  List.iter
    (fun q ->
      Alcotest.(check (list int)) q
        (Materialize.doc_answers derived doc (parse q))
        (Materialize.doc_answers manual doc (parse q)))
    [ "patient/treatment/medication"; "(patient/parent)*/patient" ]

let test_manual_view_rejections () =
  let expect_err ~view_dtd text msg_part =
    match View_spec.of_string ~doc_dtd:Hospital.dtd ~view_dtd text with
    | Error msg ->
      let contains =
        let nl = String.length msg_part and hl = String.length msg in
        let rec go i =
          (i + nl <= hl) && (String.sub msg i nl = msg_part || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (msg_part ^ " in " ^ msg) true contains
    | Ok _ -> Alcotest.fail ("accepted: " ^ text)
  in
  (* missing annotation *)
  expect_err ~view_dtd:fig3_view_dtd
    "sigma(hospital, patient) = patient\n" "no sigma annotation";
  (* annotates a non-edge *)
  expect_err ~view_dtd:fig3_view_dtd
    (fig3_spec_text ^ "sigma(medication, parent) = parent\n")
    "non-edge";
  (* wrong target label *)
  expect_err ~view_dtd:fig3_view_dtd
    (Str_replace.replace fig3_spec_text
       "sigma(parent, patient) = patient"
       "sigma(parent, patient) = patient/pname")
    "labeled";
  (* undeclared document tag *)
  expect_err ~view_dtd:fig3_view_dtd
    (Str_replace.replace fig3_spec_text
       "sigma(parent, patient) = patient"
       "sigma(parent, patient) = zebra/patient")
    "undeclared"

let test_manual_view_query_through_engine () =
  let manual =
    match
      View_spec.of_string ~doc_dtd:Hospital.dtd ~view_dtd:fig3_view_dtd
        fig3_spec_text
    with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  let doc = Hospital.generate ~seed:92 ~n_patients:8 ~recursion_depth:2 () in
  let q = parse "patient/treatment/medication" in
  let mfa = Smoqe_rewrite.Rewriter.rewrite manual q in
  let got =
    (Smoqe_hype.Eval_dom.run mfa doc).Smoqe_hype.Eval_dom.answers
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "manual view rewriting"
    (Materialize.doc_answers manual doc q)
    got

(* --- Materialization ------------------------------------------------------ *)

let hospital_doc =
  lazy
    (Smoqe_xml.Parser.tree_of_string
       "<hospital>\
        <patient><pname>Ann</pname>\
        <visit><treatment><medication>autism</medication></treatment><date>1</date></visit>\
        <visit><treatment><medication>headache</medication></treatment><date>2</date></visit>\
        <parent><patient><pname>Granny</pname>\
        <visit><treatment><medication>autism</medication></treatment><date>3</date></visit>\
        </patient></parent>\
        </patient>\
        <patient><pname>Bob</pname>\
        <visit><treatment><test>blood</test></treatment><date>4</date></visit>\
        </patient>\
        </hospital>")

let test_materialize_fig3 () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  let m = Materialize.materialize v doc in
  let vt = m.Materialize.tree in
  (* Bob took no autism medication: only Ann's record is exposed. *)
  Alcotest.(check int) "one top patient" 1
    (List.length (Semantics.answer_list vt (parse "patient")));
  (* Ann's record exposes her two medications, flattened through visits. *)
  Alcotest.(check int) "medications under patient" 2
    (List.length (Semantics.answer_list vt (parse "patient/treatment/medication")));
  (* Granny is exposed under parent (recursion), with her medication. *)
  Alcotest.(check int) "grandparent medication" 1
    (List.length
       (Semantics.answer_list vt
          (parse "patient/parent/patient/treatment/medication")))

let test_materialized_view_validates () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  let m = Materialize.materialize v doc in
  match Validator.validate (Derive.view_dtd v) m.Materialize.tree with
  | Ok () -> ()
  | Error errs ->
    Alcotest.fail
      (Fmt.str "view invalid: %a" Fmt.(list ~sep:sp Validator.pp_error) errs)

let test_materialize_no_disclosure () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  let m = Materialize.materialize v doc in
  let vt = m.Materialize.tree in
  (* No hidden element type may appear in the view... *)
  List.iter
    (fun hidden ->
      Alcotest.(check (option int))
        (hidden ^ " absent") None
        (Tree.id_of_tag vt hidden))
    [ "pname"; "visit"; "date"; "test" ];
  (* ...and no text of a hidden node may leak. *)
  let all_text = Tree.descendant_or_self_texts vt Tree.root in
  List.iter
    (fun secret ->
      let contains =
        let nl = String.length secret and hl = String.length all_text in
        let rec go i =
          i + nl <= hl && (String.sub all_text i nl = secret || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (secret ^ " does not leak") false contains)
    [ "Ann"; "Bob"; "Granny"; "blood" ]

let test_materialize_provenance () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  let m = Materialize.materialize v doc in
  let vt = m.Materialize.tree in
  Alcotest.(check int) "provenance covers the view"
    (Tree.n_nodes vt)
    (Array.length m.Materialize.provenance);
  (* every view node maps to a document node with the same tag/text *)
  Tree.iter_preorder vt (fun n ->
      let d = m.Materialize.provenance.(n) in
      if Tree.is_text vt n then
        Alcotest.(check string) "text preserved"
          (Tree.text_content doc d) (Tree.text_content vt n)
      else
        Alcotest.(check string) "tag preserved" (Tree.name doc d)
          (Tree.name vt n))

let test_materialize_bib () =
  let v = Derive.derive Bib.policy in
  let doc = Bib.generate ~seed:3 ~n_books:4 ~section_depth:3 () in
  let m = Materialize.materialize v doc in
  let vt = m.Materialize.tree in
  (match Validator.validate (Derive.view_dtd v) vt with
  | Ok () -> ()
  | Error errs ->
    Alcotest.fail
      (Fmt.str "bib view invalid: %a" Fmt.(list ~sep:sp Validator.pp_error) errs));
  Alcotest.(check (option int)) "authors hidden" None (Tree.id_of_tag vt "author");
  Alcotest.(check (option int)) "reviewers hidden" None
    (Tree.id_of_tag vt "reviewer");
  (* no exposed section may be titled 'internal' *)
  let internal =
    Semantics.answer_list vt (parse "//section[title = 'internal']")
  in
  Alcotest.(check (list int)) "no internal sections" [] internal

(* --- View queries respect the policy (end to end) ------------------------ *)

let test_view_answers_subset_of_visible () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  (* Whatever we ask of the view, answers map to document nodes that the
     policy exposes: never a test, pname, visit or date node. *)
  List.iter
    (fun q ->
      let answers = Materialize.doc_answers v doc (parse q) in
      List.iter
        (fun d ->
          let tag = Tree.name doc d in
          Alcotest.(check bool)
            (Printf.sprintf "%s answered %s" q tag)
            false
            (List.mem tag [ "pname"; "visit"; "date"; "test" ]))
        answers)
    [ "//*"; "//medication"; "patient/treatment"; "(patient/parent)*/patient" ]

let () =
  Alcotest.run "smoqe_security"
    [
      ( "policy",
        [
          Alcotest.test_case "print/parse" `Quick test_policy_parse_roundtrip;
          Alcotest.test_case "bad edge" `Quick test_policy_bad_edge;
          Alcotest.test_case "bad syntax" `Quick test_policy_bad_syntax;
          Alcotest.test_case "comments" `Quick test_policy_comments_and_blanks;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "sigma" `Quick test_fig3_sigma;
          Alcotest.test_case "hidden edges" `Quick test_fig3_hidden_not_exposed;
          Alcotest.test_case "view DTD" `Quick test_fig3_view_dtd;
          Alcotest.test_case "view DTD recursive" `Quick test_view_dtd_recursive;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "hidden cycle kleene" `Quick test_hidden_cycle_kleene;
          Alcotest.test_case "deny hides subtree" `Quick
            test_deny_without_regrant_hides_subtree;
        ] );
      ( "manual views",
        [
          Alcotest.test_case "matches derived" `Quick
            test_manual_view_matches_derived;
          Alcotest.test_case "rejections" `Quick test_manual_view_rejections;
          Alcotest.test_case "through rewriter" `Quick
            test_manual_view_query_through_engine;
        ] );
      ( "materialize",
        [
          Alcotest.test_case "fig3 content" `Quick test_materialize_fig3;
          Alcotest.test_case "validates" `Quick test_materialized_view_validates;
          Alcotest.test_case "no disclosure" `Quick test_materialize_no_disclosure;
          Alcotest.test_case "provenance" `Quick test_materialize_provenance;
          Alcotest.test_case "bib domain" `Quick test_materialize_bib;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "answers stay visible" `Quick
            test_view_answers_subset_of_visible;
        ] );
    ]
