(* Tests for Regular XPath: Ast, Parser, Pretty, Semantics. *)

module Tree = Smoqe_xml.Tree
module Xml_parser = Smoqe_xml.Parser
module Ast = Smoqe_rxpath.Ast
module Parser = Smoqe_rxpath.Parser
module Pretty = Smoqe_rxpath.Pretty
module Semantics = Smoqe_rxpath.Semantics

let parse s =
  match Parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let path_testable =
  Alcotest.testable (fun ppf p -> Pretty.pp_path ppf p) Ast.equal

(* --- Parser ----------------------------------------------------------- *)

let test_parse_steps () =
  Alcotest.check path_testable "tag" (Ast.Tag "a") (parse "a");
  Alcotest.check path_testable "self" Ast.Self (parse ".");
  Alcotest.check path_testable "wildcard" Ast.Wildcard (parse "*");
  Alcotest.check path_testable "text" Ast.Text (parse "text()");
  Alcotest.check path_testable "text with spaces" Ast.Text (parse "text ( )")

let test_parse_seq_union () =
  Alcotest.check path_testable "seq"
    (Ast.Seq (Ast.Tag "a", Ast.Tag "b"))
    (parse "a/b");
  Alcotest.check path_testable "union"
    (Ast.Union (Ast.Tag "a", Ast.Tag "b"))
    (parse "a | b");
  (* '/' binds tighter than '|' *)
  Alcotest.check path_testable "precedence"
    (Ast.Union (Ast.Seq (Ast.Tag "a", Ast.Tag "b"), Ast.Tag "c"))
    (parse "a/b | c")

let test_parse_star () =
  Alcotest.check path_testable "kleene"
    (Ast.Star (Ast.Seq (Ast.Tag "parent", Ast.Tag "patient")))
    (parse "(parent/patient)*");
  Alcotest.check path_testable "plus"
    (Ast.Seq (Ast.Tag "a", Ast.Star (Ast.Tag "a")))
    (parse "(a)+");
  Alcotest.check path_testable "opt"
    (Ast.Union (Ast.Self, Ast.Tag "a"))
    (parse "(a)?")

let test_parse_descendant () =
  Alcotest.check path_testable "leading //"
    (Ast.Seq (Ast.Star Ast.Wildcard, Ast.Tag "a"))
    (parse "//a");
  Alcotest.check path_testable "infix //"
    (Ast.Seq (Ast.Tag "a", Ast.Seq (Ast.Star Ast.Wildcard, Ast.Tag "b")))
    (parse "a//b");
  Alcotest.check path_testable "leading / ignored" (Ast.Tag "a") (parse "/a")

let test_parse_qualifiers () =
  Alcotest.check path_testable "exists"
    (Ast.Filter (Ast.Tag "a", Ast.Exists (Ast.Tag "b")))
    (parse "a[b]");
  Alcotest.check path_testable "value eq"
    (Ast.Filter (Ast.Tag "a", Ast.Value_eq (Ast.Tag "b", "c")))
    (parse "a[b = 'c']");
  Alcotest.check path_testable "text eq"
    (Ast.Filter (Ast.Tag "a", Ast.Value_eq (Ast.Text, "x")))
    (parse "a[text() = \"x\"]");
  Alcotest.check path_testable "and/or/not"
    (Ast.Filter
       ( Ast.Tag "a",
         Ast.Or
           ( Ast.And (Ast.Exists (Ast.Tag "b"), Ast.Not (Ast.Exists (Ast.Tag "c"))),
             Ast.True ) ))
    (parse "a[b and not(c) or true()]");
  Alcotest.check path_testable "nested filter"
    (Ast.Filter
       ( Ast.Tag "a",
         Ast.Exists (Ast.Filter (Ast.Tag "b", Ast.Exists (Ast.Tag "c"))) ))
    (parse "a[b[c]]")

let test_parse_paren_qual_vs_path () =
  (* parenthesized path in qualifier *)
  Alcotest.check path_testable "path parens"
    (Ast.Filter
       ( Ast.Tag "a",
         Ast.Exists
           (Ast.Seq (Ast.Star (Ast.Seq (Ast.Tag "p", Ast.Tag "q")), Ast.Tag "v"))
       ))
    (parse "a[(p/q)*/v]");
  (* parenthesized qualifier *)
  Alcotest.check path_testable "qual parens"
    (Ast.Filter
       ( Ast.Tag "a",
         Ast.And
           ( Ast.Or (Ast.Exists (Ast.Tag "b"), Ast.Exists (Ast.Tag "c")),
             Ast.Exists (Ast.Tag "d") ) ))
    (parse "a[(b or c) and d]")

let test_parse_paper_q0 () =
  (* The paper's query Q0 (section 3, Rewriter). *)
  let q0 =
    "hospital/patient[(parent/patient)*/visit/treatment/test and \
     visit/treatment[medication/text()=\"headache\"]]/pname"
  in
  let p = parse q0 in
  (match p with
  | Ast.Seq (Ast.Tag "hospital", Ast.Seq (Ast.Filter (Ast.Tag "patient", _), Ast.Tag "pname")) -> ()
  | _ -> Alcotest.fail "unexpected shape for Q0");
  (* Round-trips through the printer. *)
  Alcotest.check path_testable "q0 print/parse" p
    (parse (Pretty.path_to_string p))

let test_parse_errors () =
  let expect_err s =
    match Parser.path_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "no error for %S" s)
  in
  expect_err "";
  expect_err "a/";
  expect_err "a[";
  expect_err "a[b";
  expect_err "a]";
  expect_err "a*" (* Kleene star requires parentheses *);
  expect_err "a[b = c]" (* unquoted literal *);
  expect_err "a[b = 'c]" (* unterminated string *);
  expect_err "a b";
  expect_err "(a";
  expect_err "not(a)" (* qualifiers are not paths *)

let test_ast_size () =
  Alcotest.(check int) "step" 1 (Ast.size (Ast.Tag "a"));
  Alcotest.(check int) "q0 size" 27
    (Ast.size
       (parse
          "hospital/patient[(parent/patient)*/visit/treatment/test and \
           visit/treatment[medication/text()=\"headache\"]]/pname"))

let test_ast_tags () =
  Alcotest.(check (list string))
    "tags in order"
    [ "a"; "b"; "c" ]
    (Ast.tags (parse "a[b = 'x' and a]/c"))

let test_smart_constructors () =
  Alcotest.check path_testable "seq unit" (Ast.Tag "a")
    (Ast.seq Ast.Self (Ast.Tag "a"));
  Alcotest.check path_testable "star idempotent"
    (Ast.Star (Ast.Tag "a"))
    (Ast.star (Ast.star (Ast.Tag "a")));
  Alcotest.check path_testable "star self" Ast.Self (Ast.star Ast.Self);
  Alcotest.check path_testable "filter true" (Ast.Tag "a")
    (Ast.filter (Ast.Tag "a") Ast.True)

(* --- Semantics -------------------------------------------------------- *)

(* <r> <a id1> <b>x</b> <b>y</b> </a> <a id4?> ... construct via string *)
let doc =
  lazy
    (Xml_parser.tree_of_string
       "<r><a><b>x</b><b>y</b></a><a><c><a><b>z</b></a></c></a><d/></r>")

let answers s =
  let t = Lazy.force doc in
  Semantics.answer_list t (parse s)

let names_of ids =
  let t = Lazy.force doc in
  List.map (fun n -> Tree.name t n) ids

let test_sem_child () =
  Alcotest.(check (list string)) "r/a" [ "a"; "a" ] (names_of (answers "a"));
  Alcotest.(check (list string)) "wildcard" [ "a"; "a"; "d" ]
    (names_of (answers "*"));
  Alcotest.(check int) "a/b" 2 (List.length (answers "a/b"))

let test_sem_self_union () =
  Alcotest.(check int) "self is root" 1 (List.length (answers "."));
  Alcotest.(check (list string)) "union" [ "a"; "a"; "d" ]
    (names_of (answers "a | d"))

let test_sem_descendant () =
  (* //b finds all three b elements at any depth *)
  Alcotest.(check int) "//b" 3 (List.length (answers "//b"));
  Alcotest.(check int) "//a" 3 (List.length (answers "//a"));
  Alcotest.(check int) "a//b" 3 (List.length (answers "a//b"))

let test_sem_star () =
  (* (a/c)* from root: root itself, plus nothing (c under a only) —
     then /a: a children of root and of c. *)
  Alcotest.(check int) "(a/c)*/a" 3 (List.length (answers "(a/c)*/a"))

let test_sem_text () =
  Alcotest.(check int) "//text()" 3 (List.length (answers "//text()"));
  let t = Lazy.force doc in
  List.iter
    (fun n -> Alcotest.(check bool) "is text" true (Tree.is_text t n))
    (answers "//text()")

let test_sem_filter () =
  (* a[c] selects only the second a *)
  Alcotest.(check int) "a[c]" 1 (List.length (answers "a[c]"));
  Alcotest.(check int) "a[b]" 1 (List.length (answers "a[b]"));
  Alcotest.(check int) "a[b or c]" 2 (List.length (answers "a[b or c]"));
  Alcotest.(check int) "a[b and c]" 0 (List.length (answers "a[b and c]"));
  Alcotest.(check int) "a[not(b)]" 1 (List.length (answers "a[not(b)]"));
  Alcotest.(check int) "a[true()]" 2 (List.length (answers "a[true()]"))

let test_sem_value_eq () =
  Alcotest.(check int) "b='x'" 1 (List.length (answers "a[b = 'x']"));
  Alcotest.(check int) "b='zz'" 0 (List.length (answers "a[b = 'zz']"));
  Alcotest.(check int) "text eq" 1
    (List.length (answers "a/b[text() = 'y']"));
  (* value of an element = concatenation of immediate text children *)
  Alcotest.(check int) "deep" 1
    (List.length (answers "a/c/a[b = 'z']"))

let test_sem_empty_from_missing_tag () =
  Alcotest.(check int) "unknown tag" 0 (List.length (answers "zzz"))

let test_sem_hospital_q0 () =
  (* End-to-end: Q0 on a small hospital document. *)
  let t =
    Xml_parser.tree_of_string
      "<hospital>\
       <patient><pname>Ann</pname>\
       <visit><treatment><test>blood</test></treatment><date>1</date></visit>\
       <visit><treatment><medication>headache</medication></treatment><date>2</date></visit>\
       </patient>\
       <patient><pname>Bob</pname>\
       <visit><treatment><medication>headache</medication></treatment><date>3</date></visit>\
       </patient>\
       <patient><pname>Carol</pname>\
       <parent><patient><pname>Dan</pname>\
       <visit><treatment><test>xray</test></treatment><date>4</date></visit>\
       </patient></parent>\
       <visit><treatment><medication>headache</medication></treatment><date>5</date></visit>\
       </patient>\
       </hospital>"
  in
  let q0 =
    parse
      "hospital/patient[(parent/patient)*/visit/treatment/test and \
       visit/treatment[medication/text()=\"headache\"]]/pname"
  in
  (* Wait: queries are root-relative and the root IS hospital, so
     hospital/patient looks for hospital under hospital. The paper poses
     queries from a virtual root above the document root; our convention
     evaluates from the root node itself, so the correct phrasing drops the
     leading hospital step.  Check both behaviours. *)
  Alcotest.(check int) "hospital/... finds nothing from root" 0
    (List.length (Semantics.answer_list t q0));
  let q0' =
    parse
      "patient[(parent/patient)*/visit/treatment/test and \
       visit/treatment[medication/text()=\"headache\"]]/pname"
  in
  let names =
    List.map (fun n -> Tree.value t n) (Semantics.answer_list t q0')
  in
  (* Ann: has test directly (star = 0 iterations) and headache medication.
     Bob: headache but no test anywhere via (parent/patient)*. Carol: has
     headache, and via parent/patient reaches Dan who has a test. *)
  Alcotest.(check (list string)) "selected patients" [ "Ann"; "Carol" ] names

(* --- Pretty ------------------------------------------------------------ *)

let test_pretty_examples () =
  let cases =
    [
      "a/b | c";
      "(parent/patient)*/visit";
      "a[b = 'c' and not(d)]";
      "a[(b or c) and d]";
      "text()";
      ".";
      "(a | b)*";
    ]
  in
  List.iter
    (fun s ->
      let p = parse s in
      Alcotest.check path_testable
        (Printf.sprintf "roundtrip %s" s)
        p
        (parse (Pretty.path_to_string p)))
    cases

(* --- Property tests ---------------------------------------------------- *)

let tag_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c"; "d" ]
let value_gen = QCheck2.Gen.oneofl [ "x"; "y"; "z" ]

let rec path_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof
        [
          return Ast.Self;
          map (fun t -> Ast.Tag t) tag_gen;
          return Ast.Wildcard;
          return Ast.Text;
        ]
    else
      frequency
        [
          (2, map (fun t -> Ast.Tag t) tag_gen);
          (2, map2 Ast.seq (path_gen (n / 2)) (path_gen (n / 2)));
          (1, map2 Ast.union (path_gen (n / 2)) (path_gen (n / 2)));
          (1, map Ast.star (path_gen (n - 1)));
          (1, map2 Ast.filter (path_gen (n / 2)) (qual_gen (n / 2)));
        ])

and qual_gen n =
  QCheck2.Gen.(
    if n = 0 then
      oneof
        [
          return Ast.True;
          map (fun p -> Ast.Exists p) (path_gen 0);
          map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen 0) value_gen;
        ]
    else
      frequency
        [
          (2, map (fun p -> Ast.Exists p) (path_gen (n - 1)));
          (1, map2 (fun p v -> Ast.Value_eq (p, v)) (path_gen (n - 1)) value_gen);
          (1, map Ast.q_not (qual_gen (n - 1)));
          (1, map2 Ast.q_and (qual_gen (n / 2)) (qual_gen (n / 2)));
          (1, map2 Ast.q_or (qual_gen (n / 2)) (qual_gen (n / 2)));
        ])

let sized_path_gen = QCheck2.Gen.(sized_size (int_bound 8) path_gen)

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"print/parse roundtrip"
    ~print:Pretty.path_to_string sized_path_gen (fun p ->
      match Parser.path_of_string (Pretty.path_to_string p) with
      | Ok p' -> Ast.equal p p'
      | Error _ -> false)

(* Random small trees for semantic sanity properties. *)
let source_gen =
  QCheck2.Gen.(
    sized_size (int_bound 5)
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 map (fun s -> Tree.T s) value_gen;
                 map (fun t -> Tree.E (t, [], [])) tag_gen;
               ]
           else
             map2
               (fun t kids -> Tree.E (t, [], kids))
               tag_gen
               (list_size (int_bound 3) (self (n / 2)))))

let doc_gen =
  QCheck2.Gen.(
    map
      (fun kids -> Tree.of_source (Tree.E ("r", [], kids)))
      (list_size (int_bound 4) source_gen))

let prop_union_commutes =
  QCheck2.Test.make ~count:200 ~name:"union commutes"
    QCheck2.Gen.(triple doc_gen (path_gen 3) (path_gen 3))
    (fun (t, a, b) ->
      Semantics.answer_list t (Ast.Union (a, b))
      = Semantics.answer_list t (Ast.Union (b, a)))

let prop_seq_associates =
  QCheck2.Test.make ~count:200 ~name:"composition associates"
    QCheck2.Gen.(quad doc_gen (path_gen 2) (path_gen 2) (path_gen 2))
    (fun (t, a, b, c) ->
      Semantics.answer_list t (Ast.Seq (Ast.Seq (a, b), c))
      = Semantics.answer_list t (Ast.Seq (a, Ast.Seq (b, c))))

let prop_star_unfolds =
  QCheck2.Test.make ~count:200 ~name:"(p)* = . | p/(p)*"
    QCheck2.Gen.(pair doc_gen (path_gen 3))
    (fun (t, p) ->
      Semantics.answer_list t (Ast.Star p)
      = Semantics.answer_list t
          (Ast.Union (Ast.Self, Ast.Seq (p, Ast.Star p))))

let prop_filter_subset =
  QCheck2.Test.make ~count:200 ~name:"p[q] answers are a subset of p"
    QCheck2.Gen.(triple doc_gen (path_gen 3) (qual_gen 3))
    (fun (t, p, q) ->
      let filtered = Semantics.answers t (Ast.Filter (p, q)) in
      let all = Semantics.answers t p in
      Semantics.Node_set.subset filtered all)

let prop_double_negation =
  QCheck2.Test.make ~count:200 ~name:"p[not(not(q))] = p[q]"
    QCheck2.Gen.(triple doc_gen (path_gen 3) (qual_gen 3))
    (fun (t, p, q) ->
      Semantics.answer_list t (Ast.Filter (p, Ast.Not (Ast.Not q)))
      = Semantics.answer_list t (Ast.Filter (p, q)))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_print_parse_roundtrip;
      prop_union_commutes;
      prop_seq_associates;
      prop_star_unfolds;
      prop_filter_subset;
      prop_double_negation;
    ]

let () =
  Alcotest.run "smoqe_rxpath"
    [
      ( "parser",
        [
          Alcotest.test_case "steps" `Quick test_parse_steps;
          Alcotest.test_case "seq and union" `Quick test_parse_seq_union;
          Alcotest.test_case "kleene star" `Quick test_parse_star;
          Alcotest.test_case "descendant sugar" `Quick test_parse_descendant;
          Alcotest.test_case "qualifiers" `Quick test_parse_qualifiers;
          Alcotest.test_case "paren disambiguation" `Quick
            test_parse_paren_qual_vs_path;
          Alcotest.test_case "paper Q0" `Quick test_parse_paper_q0;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "ast",
        [
          Alcotest.test_case "size" `Quick test_ast_size;
          Alcotest.test_case "tags" `Quick test_ast_tags;
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "child steps" `Quick test_sem_child;
          Alcotest.test_case "self and union" `Quick test_sem_self_union;
          Alcotest.test_case "descendant" `Quick test_sem_descendant;
          Alcotest.test_case "star" `Quick test_sem_star;
          Alcotest.test_case "text" `Quick test_sem_text;
          Alcotest.test_case "filters" `Quick test_sem_filter;
          Alcotest.test_case "value equality" `Quick test_sem_value_eq;
          Alcotest.test_case "missing tag" `Quick test_sem_empty_from_missing_tag;
          Alcotest.test_case "paper hospital Q0" `Quick test_sem_hospital_q0;
        ] );
      ( "pretty",
        [ Alcotest.test_case "examples roundtrip" `Quick test_pretty_examples ] );
      ("properties", qsuite);
    ]
