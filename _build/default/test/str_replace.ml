(* Tiny test helper: first-occurrence substring replacement. *)
let replace hay needle replacement =
  let nl = String.length needle and hl = String.length hay in
  let rec find i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> hay
  | Some i ->
    String.sub hay 0 i ^ replacement
    ^ String.sub hay (i + nl) (hl - i - nl)
