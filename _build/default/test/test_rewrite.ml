(* Tests for query rewriting over virtual views: the MFA rewriter and the
   expression-level rewriter, against the materialization oracle.  The
   central contract is the paper's: Q'(T) = Q(V(T)). *)

module Tree = Smoqe_xml.Tree
module Dtd = Smoqe_xml.Dtd
module Ast = Smoqe_rxpath.Ast
module Rx_parser = Smoqe_rxpath.Parser
module Pretty = Smoqe_rxpath.Pretty
module Semantics = Smoqe_rxpath.Semantics
module Mfa = Smoqe_automata.Mfa
module Derive = Smoqe_security.Derive
module Materialize = Smoqe_security.Materialize
module Rewriter = Smoqe_rewrite.Rewriter
module Expr_rewriter = Smoqe_rewrite.Expr_rewriter
module Eval_dom = Smoqe_hype.Eval_dom
module Hospital = Smoqe_workload.Hospital
module Bib = Smoqe_workload.Bib
module Random_dtd = Smoqe_workload.Random_dtd
module Docgen = Smoqe_workload.Docgen
module Queries = Smoqe_workload.Queries

let parse s =
  match Rx_parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let view = lazy (Derive.derive Hospital.policy)

let hospital_doc = lazy (Hospital.generate ~seed:5 ~n_patients:12 ~recursion_depth:3 ())

(* Answer sets as sorted doc-node lists. *)
let mfa_answers view doc q =
  let mfa = Rewriter.rewrite view q in
  (Eval_dom.run mfa doc).Eval_dom.answers |> List.sort_uniq compare

let expr_answers view doc q =
  let e = Expr_rewriter.rewrite view q in
  Semantics.answer_list doc e

let oracle_answers view doc q = Materialize.doc_answers view doc q

let check_rewrite ?(name = "") view doc q_text =
  let q = parse q_text in
  let expected = oracle_answers view doc q in
  Alcotest.(check (list int))
    (Printf.sprintf "%s mfa: %s" name q_text)
    expected (mfa_answers view doc q);
  Alcotest.(check (list int))
    (Printf.sprintf "%s expr: %s" name q_text)
    expected (expr_answers view doc q)

(* --- Hospital view ------------------------------------------------------- *)

let test_rewrite_hospital_simple () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  List.iter
    (fun q -> check_rewrite ~name:"hospital" v doc q)
    [
      "patient";
      "patient/treatment";
      "patient/treatment/medication";
      "patient/treatment/medication/text()";
      ".";
      "*";
      "*/*";
    ]

let test_rewrite_hospital_recursive () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  List.iter
    (fun q -> check_rewrite ~name:"hospital" v doc q)
    [
      "(patient/parent)*/patient";
      "patient/parent/patient/treatment";
      "//medication";
      "//patient";
      "//*";
    ]

let test_rewrite_hospital_filters () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  List.iter
    (fun q -> check_rewrite ~name:"hospital" v doc q)
    [
      "patient[treatment]";
      "patient[not(treatment)]";
      "patient[treatment/medication = 'autism']";
      "patient[parent]/treatment";
      "patient[parent/patient/treatment/medication = 'headache']";
      "//treatment[medication = 'flu']";
      "patient[treatment and parent]";
    ]

let test_rewrite_view_suite () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  List.iter
    (fun (name, q) -> check_rewrite ~name v doc q)
    Queries.view_suite

let test_rewrite_hidden_tags_empty () =
  (* Queries naming hidden types must return nothing — the security
     guarantee as seen from the query side. *)
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  List.iter
    (fun q ->
      Alcotest.(check (list int)) (q ^ " empty") []
        (mfa_answers v doc (parse q)))
    [ "patient/pname"; "//pname"; "//visit"; "//test"; "patient/visit/date" ]

let test_rewrite_answers_never_hidden () =
  let v = Lazy.force view in
  let doc = Lazy.force hospital_doc in
  List.iter
    (fun q ->
      List.iter
        (fun d ->
          let tag = Tree.name doc d in
          Alcotest.(check bool)
            (Printf.sprintf "%s exposed %s" q tag)
            false
            (List.mem tag [ "pname"; "visit"; "date"; "test" ]))
        (mfa_answers v doc (parse q)))
    [ "//*"; "//*/*"; "(*)*" ]

(* --- Bib view ------------------------------------------------------------ *)

let test_rewrite_bib () =
  let v = Derive.derive Bib.policy in
  let doc = Bib.generate ~seed:17 ~n_books:5 ~section_depth:3 () in
  List.iter
    (fun q -> check_rewrite ~name:"bib" v doc q)
    [
      "book/comment";
      "book/section";
      "book/section/section/para";
      "//para";
      "book[comment]/title";
      "//section[para and not(section)]";
      "book/title/text()";
    ]

(* --- Sizes: linear vs exponential (the E5 claim, statically) -------------- *)

let test_mfa_linear_expr_grows () =
  let v = Lazy.force view in
  (* queries of growing size: chains of patient/parent steps with branches *)
  let rec build k =
    if k = 0 then parse "treatment/medication"
    else
      Ast.seq (Ast.Tag "patient")
        (Ast.filter (Ast.Tag "parent")
           (Ast.Exists (Ast.Union (Ast.Tag "patient", Ast.Wildcard)))
         |> fun step -> Ast.seq step (build (k - 1)))
  in
  let sizes =
    List.map
      (fun k ->
        let q = build k in
        let mfa = Rewriter.rewrite v q in
        (Ast.size q, Mfa.size mfa))
      [ 1; 2; 4; 8 ]
  in
  (* MFA growth should be essentially proportional to query growth. *)
  let ratios = List.map (fun (a, m) -> float_of_int m /. float_of_int a) sizes in
  let min_r = List.fold_left min infinity ratios
  and max_r = List.fold_left max 0. ratios in
  Alcotest.(check bool)
    (Printf.sprintf "mfa ratio stable (%.1f..%.1f)" min_r max_r)
    true
    (max_r /. min_r < 2.0)

(* A view whose type graph branches and recombines: a -> {b, c} -> a.
   Unmerged per-path expressions double at every (b | c) step, while the
   MFA (which shares by type) stays linear — the paper's E5 contrast. *)
let branching_view =
  lazy
    (let dtd =
       Dtd.create ~root:"r"
         [
           ("r", Dtd.Children (Dtd.Star (Dtd.Name "a")));
           ( "a",
             Dtd.Children
               (Dtd.Seq (Dtd.Star (Dtd.Name "b"), Dtd.Star (Dtd.Name "c"))) );
           ("b", Dtd.Children (Dtd.Star (Dtd.Name "a")));
           ("c", Dtd.Children (Dtd.Star (Dtd.Name "a")));
         ]
     in
     Derive.derive (Smoqe_security.Policy.create dtd []))

let branching_query k =
  let step = Ast.seq (Ast.Tag "a") (Ast.Union (Ast.Tag "b", Ast.Tag "c")) in
  let rec chain k = if k = 1 then step else Ast.seq step (chain (k - 1)) in
  chain k

let test_expr_rewriter_can_blow_up () =
  let v = Lazy.force branching_view in
  (* Exponential: doubling the chain length must far more than double the
     expression, and a modest cap must be hit at depth 16. *)
  let size k =
    snd (Expr_rewriter.rewrite_sized ~max_size:1e7 v (branching_query k))
  in
  let s4 = size 4 and s8 = size 8 in
  Alcotest.(check bool)
    (Printf.sprintf "doubling blows up (%.0f -> %.0f)" s4 s8)
    true
    (s8 > 8. *. s4);
  (match Expr_rewriter.rewrite ~max_size:20_000. v (branching_query 16) with
  | exception Expr_rewriter.Too_large _ -> ()
  | e ->
    Alcotest.fail
      (Printf.sprintf "expected blow-up, got size %d" (Ast.size e)));
  (* The MFA for the same query stays linear. *)
  let m8 = Mfa.size (Rewriter.rewrite v (branching_query 8)) in
  let m16 = Mfa.size (Rewriter.rewrite v (branching_query 16)) in
  Alcotest.(check bool)
    (Printf.sprintf "mfa linear (%d -> %d)" m8 m16)
    true
    (m16 < 3 * m8)

(* --- Random property: rewriting = materialize-then-query ------------------ *)

let qcheck_cases = 150

let rewrite_case_ok seed =
  let dtd = Random_dtd.generate ~seed ~n_types:5 ~recursion:(seed mod 2 = 0) () in
  let policy = Random_dtd.random_policy ~seed:(seed * 3 + 1) dtd in
  match Derive.derive policy with
  | exception Derive.Unsupported _ -> true
  | view ->
    let doc =
      Docgen.generate ~seed:(seed * 5 + 2) ~max_depth:8 ~fanout:2 dtd
    in
    let tags = Dtd.element_names (Derive.view_dtd view) in
    let query =
      Random_dtd.random_query ~seed:(seed * 7 + 3) ~size:6 ~tags ()
    in
    let expected = Materialize.doc_answers view doc query in
    let got = mfa_answers view doc query in
    let expr_ok =
      match Expr_rewriter.rewrite ~max_size:50_000. view query with
      | e -> Semantics.answer_list doc e = expected
      | exception Expr_rewriter.Too_large _ -> true
    in
    got = expected && expr_ok

let prop_rewrite_equals_materialize =
  QCheck2.Test.make ~count:qcheck_cases
    ~name:"rewrite = materialize-then-query (random views)"
    ~print:string_of_int
    QCheck2.Gen.(int_bound 100_000)
    rewrite_case_ok

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_rewrite_equals_materialize ]

let () =
  Alcotest.run "smoqe_rewrite"
    [
      ( "hospital",
        [
          Alcotest.test_case "simple" `Quick test_rewrite_hospital_simple;
          Alcotest.test_case "recursive" `Quick test_rewrite_hospital_recursive;
          Alcotest.test_case "filters" `Quick test_rewrite_hospital_filters;
          Alcotest.test_case "view suite" `Quick test_rewrite_view_suite;
          Alcotest.test_case "hidden tags empty" `Quick
            test_rewrite_hidden_tags_empty;
          Alcotest.test_case "answers never hidden" `Quick
            test_rewrite_answers_never_hidden;
        ] );
      ("bib", [ Alcotest.test_case "queries" `Quick test_rewrite_bib ]);
      ( "sizes",
        [
          Alcotest.test_case "mfa linear" `Quick test_mfa_linear_expr_grows;
          Alcotest.test_case "expr blow-up" `Quick test_expr_rewriter_can_blow_up;
        ] );
      ("properties", qsuite);
    ]
