(* The SMOQE command-line interface: the terminal stand-in for the demo's
   iSMOQE front-end.  Subcommands: schema, view, rewrite, query, index,
   gen. *)

open Cmdliner

module Engine = Smoqe.Engine
module Ismoqe = Smoqe.Ismoqe
module Dtd_parser = Smoqe_xml.Dtd_parser
module Dtd = Smoqe_xml.Dtd
module Serializer = Smoqe_xml.Serializer
module Policy = Smoqe_security.Policy
module Derive = Smoqe_security.Derive
module Trace = Smoqe_hype.Trace
module Budget = Smoqe_robust.Budget
module Robust_error = Smoqe_robust.Error
module Pool = Smoqe_exec.Pool
module Stats = Smoqe_hype.Stats
module Update = Smoqe_update.Update
module Federation = Smoqe_federation.Federation

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("smoqe: " ^ msg);
    exit 1

(* Typed errors keep their exit codes: malformed input (2) and budget
   exhaustion (3) are distinguishable from plain failure (1) by callers
   and schedulers — see README "Exit codes". *)
let or_die_robust = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("smoqe: " ^ Robust_error.to_string e);
    exit (Robust_error.exit_code e)

let die_malformed msg =
  let e = Robust_error.Parse_error { loc = None; msg } in
  prerr_endline ("smoqe: " ^ Robust_error.to_string e);
  exit (Robust_error.exit_code e)

let load_dtd path =
  match Dtd_parser.of_string (read_file path) with
  | dtd -> dtd
  | exception Dtd_parser.Error (off, msg) ->
    die_malformed (Printf.sprintf "%s: offset %d: %s" path off msg)
  | exception Invalid_argument msg -> die_malformed (path ^ ": " ^ msg)

let load_policy dtd path =
  or_die (Policy.of_string dtd (read_file path))

(* --- common arguments --------------------------------------------------- *)

let doc_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "doc" ] ~docv:"FILE" ~doc:"XML document.")

let dtd_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "dtd" ] ~docv:"FILE" ~doc:"Document DTD.")

let dtd_opt_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "s"; "dtd" ] ~docv:"FILE" ~doc:"Document DTD (optional).")

let policy_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "p"; "policy" ] ~docv:"FILE"
        ~doc:"Access-control policy (ann(parent, child) = Y|N|[q] lines).")

let policy_opt_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "p"; "policy" ] ~docv:"FILE" ~doc:"Access-control policy.")

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY" ~doc:"Regular XPath query.")

(* --- multi-tenancy -------------------------------------------------------

   A tenants file maps tenant names to policy files, one per line:

     alice = policies/alice.pol
     bob   = policies/bob.pol

   Blank lines and [#]-comments are skipped.  Policy paths are resolved
   relative to the current directory.  Tenants whose policies normalize
   to the same canonical key share one derived view and one compiled
   plan per query (see Engine "Multi-tenant serving"). *)
let tenants_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "tenants" ] ~docv:"FILE"
        ~doc:
          "Tenant map: one NAME = POLICY-FILE line per tenant (blank lines \
           and #-comments skipped).  Requires --dtd.")

let tenant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:
          "Run as this tenant, through its policy's shared view (must \
           appear in --tenants).")

let load_tenants dtd path =
  read_file path
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let t = String.trim line in
         if t = "" || t.[0] = '#' then None
         else
           match String.index_opt t '=' with
           | None ->
             die_malformed
               (Printf.sprintf "%s: expected NAME = POLICY-FILE, got %S" path
                  t)
           | Some i ->
             let name = String.trim (String.sub t 0 i) in
             let pfile =
               String.trim (String.sub t (i + 1) (String.length t - i - 1))
             in
             if name = "" || pfile = "" then
               die_malformed
                 (Printf.sprintf "%s: expected NAME = POLICY-FILE, got %S"
                    path t);
             Some (name, load_policy dtd pfile))

(* Register the tenant map; the common guard rails for --tenant flags. *)
let setup_tenants engine ~tenants_file ~tenant ~group ~dtd =
  let tenant_defs =
    match tenants_file, dtd with
    | Some path, Some d -> load_tenants d path
    | Some _, None ->
      prerr_endline "smoqe: --tenants requires --dtd";
      exit 1
    | None, _ -> []
  in
  (match tenant with
  | Some name ->
    if tenant_defs = [] then begin
      prerr_endline "smoqe: --tenant requires --tenants";
      exit 1
    end;
    if group <> None then begin
      prerr_endline "smoqe: --tenant and --group are mutually exclusive";
      exit 1
    end;
    if not (List.mem_assoc name tenant_defs) then begin
      prerr_endline ("smoqe: --tenant " ^ name ^ " not in the tenants file");
      exit 1
    end
  | None -> ());
  List.iter
    (fun (name, policy) ->
      match Engine.register_tenant engine ~tenant:name policy with
      | Ok _ -> ()
      | Error msg -> or_die (Error msg))
    tenant_defs;
  tenant_defs

let print_tenant_counters counters admission =
  print_endline "-- tenants --";
  List.iter (fun (k, v) -> Printf.printf "%s: %d\n" k v) counters;
  List.iter
    (fun (name, (admitted, throttled)) ->
      Printf.printf "tenant %s: admitted %d, throttled %d\n" name admitted
        throttled)
    admission

(* Resource budgets (wired into Smoqe_robust.Budget).  [budget_term]
   evaluates to [None] when no limit is given, or a thunk building a fresh
   budget — the wall-clock deadline must be armed when the query starts,
   not at argument parsing. *)
let budget_term =
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Abort the query after this many milliseconds of wall clock.")
  in
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"Abort after scanning this many nodes/events.")
  in
  let max_cans =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-cans" ] ~docv:"N"
          ~doc:"Abort once the candidate-answer set exceeds this size.")
  in
  let max_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:
            "Abort once element nesting exceeds this depth (the only depth \
             limit the parser has — see DESIGN.md §12).")
  in
  let mk timeout_ms max_nodes max_cans max_depth =
    if
      timeout_ms = None && max_nodes = None && max_cans = None
      && max_depth = None
    then None
    else
      Some
        (fun () ->
          Budget.create ?timeout_ms ?max_nodes ?max_cans ?max_depth ())
  in
  Term.(const mk $ timeout_ms $ max_nodes $ max_cans $ max_depth)

(* --- schema ------------------------------------------------------------- *)

let schema_cmd =
  let run dtd_path =
    print_string (Ismoqe.schema_graph (load_dtd dtd_path))
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Display a DTD as a schema graph")
    Term.(const run $ Arg.(required & pos 0 (some file) None
                           & info [] ~docv:"DTD" ~doc:"DTD file."))

(* --- view --------------------------------------------------------------- *)

let view_cmd =
  let run dtd_path policy_path =
    let dtd = load_dtd dtd_path in
    let policy = load_policy dtd policy_path in
    match Derive.derive policy with
    | exception Derive.Unsupported msg ->
      prerr_endline ("smoqe: " ^ msg);
      exit 1
    | view -> print_string (Ismoqe.view_specification view)
  in
  Cmd.v
    (Cmd.info "view"
       ~doc:
         "Derive a security view from a policy: sigma expressions and the \
          view DTD (paper Fig. 3)")
    Term.(const run $ dtd_arg $ policy_arg)

(* --- rewrite ------------------------------------------------------------ *)

let rewrite_cmd =
  let run dtd_path policy_path query dot expr =
    let dtd = load_dtd dtd_path in
    let policy = load_policy dtd policy_path in
    let view =
      match Derive.derive policy with
      | v -> v
      | exception Derive.Unsupported msg ->
        prerr_endline ("smoqe: " ^ msg);
        exit 1
    in
    let path =
      or_die (Smoqe_rxpath.Parser.path_of_string query)
    in
    let mfa = Smoqe_rewrite.Rewriter.rewrite view path in
    if dot then print_string (Ismoqe.mfa_dot mfa)
    else print_string (Ismoqe.mfa_ascii mfa);
    if expr then begin
      match Smoqe_rewrite.Expr_rewriter.rewrite_sized view path with
      | e, size ->
        Printf.printf "\nexpression rewriting (expanded size %.0f):\n%s\n"
          size
          (Smoqe_rxpath.Pretty.path_to_string e)
      | exception Smoqe_rewrite.Expr_rewriter.Too_large n ->
        Printf.printf
          "\nexpression rewriting exceeded the size budget (reached %.2g) — \
           this blow-up is why SMOQE uses MFAs\n"
          n
    end
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Rewrite a view query to a document-level MFA (paper Fig. 4)")
    Term.(
      const run $ dtd_arg $ policy_arg $ query_arg
      $ Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT.")
      $ Arg.(value & flag & info [ "expr" ]
             ~doc:"Also attempt the (possibly exponential) expression-level \
                   rewriting."))

(* --- query -------------------------------------------------------------- *)

(* A queries file: one Regular XPath query per line; blank lines and
   [#]-comment lines are skipped.  Line order is answer order. *)
let load_queries path =
  read_file path
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let t = String.trim line in
         if t = "" || t.[0] = '#' then None else Some t)

let query_cmd =
  let run doc_path dtd_path policy_path group mode use_index trace output
      stats budget plan_cache no_plan_cache repeat jobs no_tables queries_file
      tenants_file tenant tenant_budget shards query =
    let dtd = Option.map load_dtd dtd_path in
    (* the parse is budgeted too: a depth/node/deadline limit must bound
       document ingest, not just evaluation (DESIGN.md §12) *)
    let parse_budget = Option.map (fun mk -> mk ()) budget in
    let engine =
      or_die_robust (Engine.of_file_robust ?budget:parse_budget ?dtd doc_path)
    in
    (match policy_path, dtd with
    | Some p, Some d ->
      or_die
        (Engine.register_policy engine ~group:(Option.value group ~default:"user")
           (load_policy d p))
    | Some _, None ->
      prerr_endline "smoqe: --policy requires --dtd";
      exit 1
    | None, _ -> ());
    let tenant_defs =
      setup_tenants engine ~tenants_file ~tenant ~group ~dtd
    in
    (match tenant_budget, tenant with
    | Some cap, Some name ->
      Engine.set_tenant_budget engine ~tenant:name ~capacity:cap ()
    | Some _, None ->
      prerr_endline "smoqe: --tenant-budget requires --tenant";
      exit 1
    | None, _ -> ());
    if use_index then Engine.build_index engine;
    let group =
      match policy_path with
      | Some _ -> Some (Option.value group ~default:"user")
      | None -> group
    in
    let mode = if mode = "stax" then Engine.Stax else Engine.Dom in
    let tracer = if trace then Some (Trace.create ()) else None in
    Engine.set_plan_cache_capacity engine
      (if no_plan_cache then 0 else plan_cache);
    (* [--repeat] re-runs the query in-process — the serving pattern the
       plan cache exists for; each run gets a fresh budget so the deadline
       restarts.  With [--jobs N] (N >= 2) the repeats are dispatched onto
       a pool of N domains and run in true parallel; answers are printed
       once and [--stats] shows the aggregate plus per-domain loads. *)
    let repeat = max 1 repeat in
    let jobs = match jobs with Some n -> max 1 n | None -> Pool.default_jobs () in
    (* A trace sink is single-query scratch state with no seat in pooled
       dispatch (Engine.submit deliberately has no ?trace); refuse rather
       than silently print an empty trace. *)
    if trace && jobs > 1 then begin
      prerr_endline
        "smoqe: --trace is sequential-only and cannot be combined with \
         --jobs > 1 (or SMOQE_JOBS > 1)";
      exit 1
    end;
    (* --no-tables forces the generic engine; otherwise the library default
       applies (tables on unless SMOQE_NO_TABLES is set). *)
    let use_tables = if no_tables then Some false else None in
    (* --shards N: serve the document as a federation of N engine shards.
       The root's children are split round-robin, every policy and tenant
       is registered on every shard, and each query scatters to all
       shards through the pool and gathers a merged answer (shard-local
       node ids, so --output ids prints shard:node pairs).  Admission is
       federation-level: the tenant's bucket is charged once per query,
       not once per shard. *)
    let shards = max 1 shards in
    if shards > 1 then begin
      if trace then begin
        prerr_endline "smoqe: --trace cannot be combined with --shards";
        exit 1
      end;
      if output = "tree" then begin
        prerr_endline
          "smoqe: --output tree is not available with --shards (answers \
           carry shard-local ids)";
        exit 1
      end;
      if repeat > 1 then begin
        prerr_endline
          "smoqe: --repeat is single-engine-only and cannot be combined \
           with --shards";
        exit 1
      end;
      let fed = Federation.of_tree ?dtd ~shards (Engine.document engine) in
      (match policy_path, dtd, group with
      | Some p, Some d, Some g ->
        or_die (Federation.register_policy fed ~group:g (load_policy d p))
      | _ -> ());
      List.iter
        (fun (name, policy) ->
          or_die (Federation.register_tenant fed ~tenant:name policy))
        tenant_defs;
      (match tenant_budget, tenant with
      | Some cap, Some name ->
        Federation.set_tenant_budget fed ~tenant:name ~capacity:cap ()
      | _ -> ());
      if use_index then
        for i = 0 to Federation.n_shards fed - 1 do
          Engine.build_index (Federation.shard fed i)
        done;
      let print_fed (o : Federation.fed_outcome) =
        match output with
        | "ids" ->
          List.iter
            (fun (s, n) -> Printf.printf "%d:%d\n" s n)
            o.Federation.fed_answers
        | _ -> List.iter print_endline o.Federation.fed_xml
      in
      let print_fed_counters () =
        if tenant_defs <> [] then
          print_tenant_counters
            (Federation.tenant_counters fed)
            (Federation.admission_counters fed)
      in
      (match queries_file with
      | Some qpath ->
        if query <> None then begin
          prerr_endline
            "smoqe: a positional QUERY and --queries-file are mutually \
             exclusive";
          exit 1
        end;
        let texts = load_queries qpath in
        if texts = [] then begin
          prerr_endline
            ("smoqe: " ^ qpath ^ ": no queries (all blank/comments)");
          exit 1
        end;
        let results, agg =
          Pool.with_pool ~domains:jobs (fun pool ->
              Federation.run_many_robust fed ~pool ?group ?tenant ~mode
                ~use_index ?make_budget:budget ?use_tables texts)
        in
        let first_failure = ref None in
        Array.iteri
          (fun i r ->
            Printf.printf "== query %d: %s ==\n" (i + 1) (List.nth texts i);
            match r with
            | Error e ->
              if !first_failure = None then first_failure := Some e;
              Printf.printf "error: %s\n" (Robust_error.to_string e)
            | Ok o ->
              print_fed o;
              if stats then begin
                print_endline "-- statistics --";
                print_endline (Ismoqe.stats_table o.Federation.fed_stats)
              end)
          results;
        if stats then begin
          Printf.printf
            "== federation aggregate (%d queries, %d shards, %d domains) ==\n"
            (List.length texts) (Federation.n_shards fed) jobs;
          List.iter
            (fun (k, v) -> Printf.printf "%s: %d\n" k v)
            (Stats.to_assoc agg);
          print_fed_counters ()
        end;
        (match !first_failure with
        | Some e -> exit (Robust_error.exit_code e)
        | None -> exit 0)
      | None ->
        let query =
          match query with
          | Some q -> q
          | None ->
            prerr_endline
              "smoqe: a QUERY argument or --queries-file is required";
            exit 1
        in
        let result =
          Pool.with_pool ~domains:jobs (fun pool ->
              Federation.query_robust fed ~pool ?group ?tenant ~mode
                ~use_index ?make_budget:budget ?use_tables query)
        in
        let outcome = or_die_robust result in
        print_fed outcome;
        if stats then begin
          print_endline "-- statistics --";
          print_endline (Ismoqe.stats_table outcome.Federation.fed_stats);
          print_fed_counters ()
        end;
        exit 0)
    end;
    let print_answers outcome =
      match output with
      | "ids" ->
        List.iter (fun n -> Printf.printf "%d\n" n) outcome.Engine.answers
      | "tree" ->
        print_string
          (Ismoqe.answers_tree (Engine.document engine) outcome.Engine.answers)
      | _ ->
        print_string
          (Ismoqe.answers_text (Engine.document engine) outcome.Engine.answers)
    in
    let print_plan_cache () =
      print_endline "-- plan cache --";
      List.iter
        (fun (k, v) -> Printf.printf "%s: %d\n" k v)
        (Engine.plan_cache_counters engine)
    in
    (* --queries-file: the whole batch is answered in ONE shared-automaton
       document pass (Engine.run_many) — or one pass per pool worker with
       --jobs N.  A failed member (parse error, budget…) is reported in its
       slot without sinking the rest; the exit code is the first failure's. *)
    (match queries_file with
    | Some qpath ->
      if query <> None then begin
        prerr_endline
          "smoqe: a positional QUERY and --queries-file are mutually \
           exclusive";
        exit 1
      end;
      if trace then begin
        prerr_endline
          "smoqe: --trace is single-query-only and cannot be combined with \
           --queries-file";
        exit 1
      end;
      if repeat > 1 then begin
        prerr_endline "smoqe: --repeat applies to a single query, not a batch";
        exit 1
      end;
      let texts = load_queries qpath in
      if texts = [] then begin
        prerr_endline ("smoqe: " ^ qpath ^ ": no queries (all blank/comments)");
        exit 1
      end;
      let results, agg =
        if jobs <= 1 then
          Engine.run_many_robust engine ?group ?tenant ~mode ~use_index
            ?budget:(Option.map (fun mk -> mk ()) budget)
            ?use_tables texts
        else
          Pool.with_pool ~domains:jobs (fun pool ->
              Engine.run_many_pooled engine ~pool ?group ?tenant ~mode
                ~use_index ?make_budget:budget ?use_tables texts)
      in
      let first_failure = ref None in
      Array.iteri
        (fun i r ->
          Printf.printf "== query %d: %s ==\n" (i + 1) (List.nth texts i);
          match r with
          | Error e ->
            if !first_failure = None then first_failure := Some e;
            Printf.printf "error: %s\n" (Robust_error.to_string e)
          | Ok o ->
            print_answers o;
            if stats then begin
              print_endline "-- statistics --";
              print_endline (Ismoqe.stats_table o.Engine.stats)
            end)
        results;
      if stats then begin
        Printf.printf "== batch aggregate (%d queries, %d domains) ==\n"
          (List.length texts) jobs;
        List.iter
          (fun (k, v) -> Printf.printf "%s: %d\n" k v)
          (Stats.to_assoc agg);
        print_plan_cache ();
        if tenant_defs <> [] then
          print_tenant_counters
            (Engine.tenant_counters engine)
            (Engine.admission_counters engine)
      end;
      (match !first_failure with
      | Some e -> exit (Robust_error.exit_code e)
      | None -> ());
      exit 0
    | None -> ());
    let query =
      match query with
      | Some q -> q
      | None ->
        prerr_endline "smoqe: a QUERY argument or --queries-file is required";
        exit 1
    in
    let run_once () =
      let budget = Option.map (fun mk -> mk ()) budget in
      or_die_robust
        (Engine.query_robust engine ?group ?tenant ~mode ~use_index ?budget
           ?trace:tracer ?use_tables query)
    in
    let outcome, agg_stats, loads =
      if jobs <= 1 then begin
        (* the sequential path: exactly the pre-pool engine, no executor *)
        let outcome = ref (run_once ()) in
        for _ = 2 to repeat do
          outcome := run_once ()
        done;
        (!outcome, None, None)
      end
      else
        Pool.with_pool ~domains:jobs (fun pool ->
            let results, agg =
              Engine.run_batch engine ~pool ?group ?tenant ~mode ~use_index
                ?make_budget:budget ?use_tables
                (List.init repeat (fun _ -> query))
            in
            let last =
              List.fold_left
                (fun _acc r -> Some (or_die_robust r))
                None results
            in
            (Option.get last, Some agg, Some (Pool.worker_loads pool)))
    in
    print_answers outcome;
    (match tracer with
    | Some tr ->
      print_string
        (Ismoqe.evaluation_trace ~color:(Unix_compat.is_tty ()) tr
           (Engine.document engine))
    | None -> ());
    if stats then begin
      print_endline "-- statistics --";
      print_endline (Ismoqe.stats_table outcome.Engine.stats);
      (match agg_stats with
      | None -> ()
      | Some agg ->
        Printf.printf "-- batch aggregate (%d runs, %d domains) --\n" repeat
          jobs;
        List.iter
          (fun (k, v) -> Printf.printf "%s: %d\n" k v)
          (Stats.to_assoc agg));
      (match loads with
      | None -> ()
      | Some loads ->
        Printf.printf "-- domain loads --\n";
        Array.iteri (fun i n -> Printf.printf "domain %d: %d runs\n" i n) loads);
      print_plan_cache ();
      if tenant_defs <> [] then
        print_tenant_counters
          (Engine.tenant_counters engine)
          (Engine.admission_counters engine)
    end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Answer a Regular XPath query, directly or through a security view")
    Term.(
      const run $ doc_arg $ dtd_opt_arg $ policy_opt_arg
      $ Arg.(value & opt (some string) None
             & info [ "g"; "group" ] ~docv:"NAME" ~doc:"User group.")
      $ Arg.(value & opt (enum [ ("dom", "dom"); ("stax", "stax") ]) "dom"
             & info [ "mode" ] ~doc:"Evaluation mode: dom or stax.")
      $ Arg.(value & flag & info [ "index" ] ~doc:"Build and use a TAX index.")
      $ Arg.(value & flag & info [ "trace" ]
             ~doc:"Show the per-node evaluation trace (iSMOQE's colors).")
      $ Arg.(value
             & opt (enum [ ("text", "text"); ("tree", "tree"); ("ids", "ids") ])
                 "text"
             & info [ "o"; "output" ] ~doc:"Output mode.")
      $ Arg.(value & flag & info [ "stats" ]
             ~doc:"Print evaluation counters and plan-cache counters.")
      $ budget_term
      $ Arg.(value & opt int 128
             & info [ "plan-cache" ] ~docv:"N"
                 ~doc:"Compiled-plan cache capacity (0 disables).")
      $ Arg.(value & flag
             & info [ "no-plan-cache" ]
                 ~doc:"Disable the compiled-plan cache (same as \
                       --plan-cache 0).")
      $ Arg.(value & opt int 1
             & info [ "repeat" ] ~docv:"N"
                 ~doc:"Run the query N times in-process (answers printed \
                       once); repeats after the first are served from the \
                       plan cache.")
      $ Arg.(value & opt (some int) None
             & info [ "j"; "jobs" ] ~docv:"N"
                 ~doc:"Evaluate --repeat runs on a pool of N domains in \
                       parallel (default: \\$(b,SMOQE_JOBS), else 1 = \
                       sequential, no pool).")
      $ Arg.(value & flag
             & info [ "no-tables" ]
                 ~doc:"Evaluate on the generic engine instead of the \
                       tag-interned transition tables and lazy-DFA memo \
                       (same as setting \\$(b,SMOQE_NO_TABLES)).")
      $ Arg.(value & opt (some file) None
             & info [ "queries-file" ] ~docv:"FILE"
                 ~doc:"Serve a whole batch: one Regular XPath query per line \
                       (blank lines and #-comments skipped), all answered in \
                       a single shared-automaton document pass — one pass \
                       per worker with --jobs.")
      $ tenants_arg $ tenant_arg
      $ Arg.(value & opt (some int) None
             & info [ "tenant-budget" ] ~docv:"N"
                 ~doc:"Admission token budget for --tenant: after N queries \
                       the tenant is throttled (exit 3) until tokens refill. \
                       Each batch member costs one token.")
      $ Arg.(value & opt int 1
             & info [ "shards" ] ~docv:"N"
                 ~doc:"Serve the document as a federation of N engine \
                       shards: the root's children split round-robin, \
                       queries scatter to every shard through the --jobs \
                       pool and answers merge (per-shard statistics \
                       aggregate under --stats).")
      $ Arg.(value & pos 0 (some string) None
             & info [] ~docv:"QUERY"
                 ~doc:"Regular XPath query (omit with --queries-file)."))

(* --- update ------------------------------------------------------------- *)

let update_cmd =
  let run doc_path dtd_path policy_path group tenants_file tenant op_name
      target_query target_id xml before out =
    let dtd = Option.map load_dtd dtd_path in
    let engine = or_die_robust (Engine.of_file_robust ?dtd doc_path) in
    (match policy_path, dtd with
    | Some p, Some d ->
      or_die
        (Engine.register_policy engine
           ~group:(Option.value group ~default:"user")
           (load_policy d p))
    | Some _, None ->
      prerr_endline "smoqe: --policy requires --dtd";
      exit 1
    | None, _ -> ());
    let _tenant_defs =
      setup_tenants engine ~tenants_file ~tenant ~group ~dtd
    in
    let group =
      match policy_path with
      | Some _ -> Some (Option.value group ~default:"user")
      | None -> group
    in
    let target =
      match target_id, target_query with
      | Some n, None -> Update.By_id n
      | None, Some q -> Update.By_path q
      | Some _, Some _ ->
        die_malformed "update: give either --target or --target-id, not both"
      | None, None ->
        die_malformed "update: a target is required (--target or --target-id)"
    in
    (* The new subtree, for insert/replace: an XML fragment parsed with
       the document parser — a malformed fragment is malformed input
       (exit 2), exactly like a malformed document. *)
    let fragment () =
      match xml with
      | None ->
        die_malformed
          (Printf.sprintf "update: --xml FRAGMENT is required for %s" op_name)
      | Some text ->
        (match Smoqe_xml.Parser.tree_of_string_res text with
        | Error msg -> die_malformed ("update fragment: " ^ msg)
        | Ok tree -> Smoqe_xml.Tree.(to_source tree root))
    in
    let op =
      match op_name with
      | "delete" -> Update.Delete target
      | "replace" -> Update.Replace (target, fragment ())
      | _ -> Update.Insert { parent = target; before; source = fragment () }
    in
    let report = or_die_robust (Engine.update_robust engine ?group ?tenant op) in
    let doc = Serializer.to_string (Engine.document engine) in
    (match out with
    | None -> print_string doc
    | Some path ->
      let oc = open_out_bin path in
      output_string oc doc;
      close_out oc);
    Printf.eprintf "smoqe: update applied at node %d (%d -> %d nodes)\n"
      report.Engine.up_target report.Engine.up_nodes_before
      report.Engine.up_nodes_after
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Apply a subtree update (insert, delete or replace), checked \
          against a group's security view; prints the updated document. A \
          view-denied update exits 4, malformed input exits 2.")
    Term.(
      const run $ doc_arg $ dtd_opt_arg $ policy_opt_arg
      $ Arg.(value & opt (some string) None
             & info [ "g"; "group" ] ~docv:"NAME"
                 ~doc:"Update as a member of this group (checked against \
                       its view); omit for an administrative update.")
      $ tenants_arg $ tenant_arg
      $ Arg.(value
             & opt (enum [ ("insert", "insert"); ("delete", "delete");
                           ("replace", "replace") ]) "replace"
             & info [ "op" ] ~doc:"The edit: insert, delete or replace.")
      $ Arg.(value & opt (some string) None
             & info [ "target" ] ~docv:"QUERY"
                 ~doc:"Regular XPath selecting exactly one node: the \
                       subtree to delete/replace, or the parent receiving \
                       an insert.  Members' targets are evaluated through \
                       their view.")
      $ Arg.(value & opt (some int) None
             & info [ "target-id" ] ~docv:"N"
                 ~doc:"Target by pre-order node id instead of a query.")
      $ Arg.(value & opt (some string) None
             & info [ "xml" ] ~docv:"FRAGMENT"
                 ~doc:"The new subtree, as an XML fragment (insert/replace).")
      $ Arg.(value & opt (some int) None
             & info [ "before" ] ~docv:"ID"
                 ~doc:"Insert before this child of the target (default: \
                       append as last child).")
      $ Arg.(value & opt (some string) None
             & info [ "out" ] ~docv:"FILE"
                 ~doc:"Write the updated document here instead of stdout."))

(* --- index -------------------------------------------------------------- *)

let index_cmd =
  let run doc_path save show =
    let engine = or_die_robust (Engine.of_file_robust doc_path) in
    Engine.build_index engine;
    (match save with
    | Some path ->
      or_die (Engine.save_index engine path);
      Printf.printf "index written to %s\n" path
    | None -> ());
    if show then
      print_string
        (Ismoqe.tax_view
           (Option.get (Engine.index engine))
           (Engine.document engine))
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Build, store and display the TAX index")
    Term.(
      const run $ doc_arg
      $ Arg.(value & opt (some string) None
             & info [ "save" ] ~docv:"FILE" ~doc:"Write the compressed index.")
      $ Arg.(value & flag & info [ "show" ] ~doc:"Display the index (Fig. 6)."))

(* --- gen ---------------------------------------------------------------- *)

let gen_cmd =
  let run kind seed size depth emit_dtd emit_policy =
    let tree, dtd, policy_text =
      match kind with
      | "hospital" ->
        ( Smoqe_workload.Hospital.generate ~seed ~n_patients:size
            ~recursion_depth:depth (),
          Smoqe_workload.Hospital.dtd,
          Smoqe_workload.Hospital.policy_text )
      | "bib" ->
        ( Smoqe_workload.Bib.generate ~seed ~n_books:size ~section_depth:depth (),
          Smoqe_workload.Bib.dtd,
          Smoqe_workload.Bib.policy_text )
      | _ ->
        let dtd =
          Smoqe_workload.Random_dtd.generate ~seed ~n_types:(max 2 depth)
            ~recursion:true ()
        in
        ( Smoqe_workload.Docgen.generate_sized ~seed ~target_nodes:size dtd,
          dtd,
          "" )
    in
    if emit_dtd then print_string (Dtd.to_string dtd)
    else if emit_policy then print_string policy_text
    else print_string (Serializer.to_string tree)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate benchmark documents, DTDs and policies")
    Term.(
      const run
      $ Arg.(value
             & opt (enum [ ("hospital", "hospital"); ("bib", "bib");
                           ("random", "random") ]) "hospital"
             & info [ "kind" ] ~doc:"Workload: hospital, bib or random.")
      $ Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.")
      $ Arg.(value & opt int 20 & info [ "size" ]
             ~doc:"Patients / books / target nodes.")
      $ Arg.(value & opt int 3 & info [ "depth" ]
             ~doc:"Recursion depth (or type count for random).")
      $ Arg.(value & flag & info [ "emit-dtd" ] ~doc:"Print the DTD instead.")
      $ Arg.(value & flag & info [ "emit-policy" ]
             ~doc:"Print the example policy instead."))

(* --- store -------------------------------------------------------------- *)

module Store = Smoqe_store.Store

let store_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Store directory.")

let store_init_cmd =
  let run dir doc_path dtd_path =
    let dtd = Option.map load_dtd dtd_path in
    let tree =
      match Smoqe_xml.Parser.tree_of_file doc_path with
      | t -> t
      | exception Smoqe_xml.Pull.Error (line, col, msg) ->
        or_die_robust
          (Error
             (Robust_error.Parse_error
                {
                  loc =
                    Some (Robust_error.location ~file:doc_path ~line ~col ());
                  msg;
                }))
    in
    let store = or_die (Store.create ~dir ?dtd tree) in
    Printf.printf "store initialized in %s
" (Store.dir store)
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Initialize a store from a document")
    Term.(const run $ store_dir_arg $ doc_arg $ dtd_opt_arg)

let store_policy_cmd =
  let run dir group policy_path =
    let store = or_die (Store.open_dir dir) in
    let dtd =
      match Engine.dtd (Store.engine store) with
      | Some d -> d
      | None ->
        prerr_endline "smoqe: store has no DTD; policies need a schema";
        exit 1
    in
    or_die (Store.add_policy store ~group (load_policy dtd policy_path));
    Printf.printf "policy for group %s stored
" group
  in
  Cmd.v
    (Cmd.info "add-policy" ~doc:"Persist an access-control policy for a group")
    Term.(
      const run $ store_dir_arg
      $ Arg.(required & pos 1 (some string) None
             & info [] ~docv:"GROUP" ~doc:"User group.")
      $ policy_arg)

let store_info_cmd =
  let run dir =
    let store = or_die (Store.open_dir dir) in
    let engine = Store.engine store in
    Printf.printf "document: %d nodes
"
      (Smoqe_xml.Tree.n_nodes (Engine.document engine));
    Printf.printf "dtd: %s
"
      (match Engine.dtd engine with
      | Some d -> Dtd.root d ^ " (" ^ string_of_int
                    (List.length (Dtd.element_names d)) ^ " element types)"
      | None -> "none");
    Printf.printf "index: %s
"
      (if Engine.index engine <> None then "loaded" else "none");
    Printf.printf "groups: %s
"
      (match Store.groups store with
      | [] -> "(none)"
      | gs -> String.concat ", " gs)
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe a store") Term.(const run $ store_dir_arg)

let store_query_cmd =
  let run dir group mode output query =
    let store = or_die (Store.open_dir dir) in
    let role =
      match group with
      | None -> Smoqe.Session.Admin
      | Some g -> Smoqe.Session.Member g
    in
    let session = or_die (Store.login store role) in
    let mode = if mode = "stax" then Engine.Stax else Engine.Dom in
    let outcome = or_die (Smoqe.Session.run session ~mode query) in
    match output with
    | "ids" -> List.iter (fun n -> Printf.printf "%d
" n) outcome.Engine.answers
    | _ -> List.iter print_endline outcome.Engine.answer_xml
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Query a store, as admin or through a group's view")
    Term.(
      const run $ store_dir_arg
      $ Arg.(value & opt (some string) None
             & info [ "g"; "group" ] ~docv:"NAME"
                 ~doc:"Query through this group's view (omit for admin).")
      $ Arg.(value & opt (enum [ ("dom", "dom"); ("stax", "stax") ]) "dom"
             & info [ "mode" ] ~doc:"Evaluation mode.")
      $ Arg.(value & opt (enum [ ("text", "text"); ("ids", "ids") ]) "text"
             & info [ "o"; "output" ] ~doc:"Output mode.")
      $ Arg.(required & pos 1 (some string) None
             & info [] ~docv:"QUERY" ~doc:"Regular XPath query."))

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Persistent stores: document, index and policies on disk")
    [ store_init_cmd; store_policy_cmd; store_info_cmd; store_query_cmd ]

let main_cmd =
  let doc = "SMOQE: secure access to XML through virtual Regular XPath views" in
  Cmd.group
    (Cmd.info "smoqe" ~version:"1.0.0" ~doc)
    [ schema_cmd; view_cmd; rewrite_cmd; query_cmd; update_cmd; index_cmd;
      gen_cmd; store_cmd ]

let () = exit (Cmd.eval main_cmd)
