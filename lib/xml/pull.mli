(** Streaming XML pull parser — the StAX mode of SMOQE.

    A single sequential scan of the input produces a stream of events; no
    tree is built.  The parser handles the XML 1.0 constructs needed by
    data-centric documents: a UTF-8 byte-order mark, prolog, DOCTYPE
    (skipped, quote- and subset-aware, prolog-only), comments, processing
    instructions (skipped), CDATA, attributes, self-closing tags, the five
    predefined entities and numeric character references (validated
    against the XML [Char] production — [&#0;] and surrogate references
    are rejected).

    Well-formedness is enforced: mismatched or unbalanced tags, text outside
    the root element, duplicate attribute names, multiple roots, or a
    misplaced DOCTYPE raise {!Error} with a location.  The totality
    contract (DESIGN.md §12): on {e any} byte sequence, the stream either
    delivers events or raises a positioned {!Error} (or a typed budget /
    failpoint exception) — never [Invalid_argument], [Stack_overflow] or
    unbounded memory growth. *)

type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Text of string

type t

exception Error of int * int * string
(** [Error (line, column, message)] — 1-based location of a syntax or
    well-formedness error. *)

val of_string : ?keep_ws:bool -> ?budget:Smoqe_robust.Budget.t -> string -> t
(** Parse from a string.  When [keep_ws] is [false] (the default),
    whitespace-only text between elements is dropped, matching the
    data-centric documents of the paper.  With [budget], every delivered
    event is counted against [max_nodes] (and periodically the deadline),
    and open-element nesting against [max_depth]. *)

val of_channel : ?keep_ws:bool -> ?budget:Smoqe_robust.Budget.t -> in_channel -> t
(** Parse incrementally from a channel: the document is never held in
    memory in full. *)

val next : t -> event option
(** The next event, or [None] once the root element has been closed and
    only trailing whitespace/comments remain.  May raise {!Error},
    [Smoqe_robust.Budget.Exceeded] when a budget trips, or
    [Smoqe_robust.Failpoint.Injected] under the ["pull.read"] failpoint
    (per event), the ["pull.depth"] failpoint (at the lexer's depth
    budget-check site, per open element) or the ["pull.ref"] failpoint
    (at the entity/character-reference expansion site). *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Drain the stream. *)

val line : t -> int
val column : t -> int
