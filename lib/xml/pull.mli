(** Streaming XML pull parser — the StAX mode of SMOQE.

    A single sequential scan of the input produces a stream of events; no
    tree is built.  The parser handles the XML 1.0 constructs needed by
    data-centric documents: a UTF-8 byte-order mark, prolog, DOCTYPE
    (skipped, quote- and subset-aware, prolog-only), comments, processing
    instructions (skipped), CDATA, attributes, self-closing tags, the five
    predefined entities and numeric character references (validated
    against the XML [Char] production — [&#0;] and surrogate references
    are rejected).

    Well-formedness is enforced: mismatched or unbalanced tags, text outside
    the root element, duplicate attribute names, multiple roots, or a
    misplaced DOCTYPE raise {!Error} with a location.  The totality
    contract (DESIGN.md §12): on {e any} byte sequence, the stream either
    delivers events or raises a positioned {!Error} (or a typed budget /
    failpoint exception) — never [Invalid_argument], [Stack_overflow] or
    unbounded memory growth.

    {b Zero-copy ingest} (DESIGN.md §15): document bytes live in one
    growable byte region and the lexer records [(offset, length)] spans
    into it instead of copying.  The {{!cursor}cursor API} exposes those
    spans directly; the {!event} API materializes strings on top of it
    and behaves exactly as before.  Segments containing entity or
    character references are decoded once into a per-parser scratch
    region — a reference-free token never copies document bytes at
    all. *)

type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Text of string

type t

exception Error of int * int * string
(** [Error (line, column, message)] — 1-based location of a syntax or
    well-formedness error. *)

val of_string :
  ?keep_ws:bool -> ?budget:Smoqe_robust.Budget.t -> ?retain:bool -> string -> t
(** Parse from a string — zero-copy: the input becomes the byte region,
    nothing is duplicated.  When [keep_ws] is [false] (the default),
    whitespace-only text between elements is dropped, matching the
    data-centric documents of the paper.  With [budget], every delivered
    event is counted against [max_nodes] (settled in small batches, like
    the evaluators, plus periodic deadline checks), and open-element
    nesting against [max_depth].  With [retain] (see
    {!of_channel}), the scratch region persists across events so a tree
    builder can keep spans into it. *)

val of_channel :
  ?keep_ws:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?chunk_size:int ->
  ?retain:bool ->
  in_channel ->
  t
(** Parse incrementally from a channel, refilling one reused buffer in
    [chunk_size]-byte reads (no per-refill allocation).  By default
    ([retain = false]) consumed bytes are discarded as parsing advances,
    so memory stays proportional to the largest single event, not the
    document.  With [retain = true] every byte is kept: spans returned
    by the cursor are then stable offsets into {!retained} — this is the
    mode the DOM builder uses to share one arena with the parse. *)

val next : t -> event option
(** The next event, or [None] once the root element has been closed and
    only trailing whitespace/comments remain.  May raise {!Error},
    [Smoqe_robust.Budget.Exceeded] when a budget trips, or
    [Smoqe_robust.Failpoint.Injected] under the ["pull.read"] failpoint
    (per event), the ["pull.depth"] failpoint (at the lexer's depth
    budget-check site, per open element) or the ["pull.ref"] failpoint
    (at the entity/character-reference expansion site). *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Drain the stream. *)

val line : t -> int
val column : t -> int

(** {1:cursor Cursor API}

    The allocation-free view of the stream.  {!cursor_next} advances to
    the next event and returns its kind; the [cur_*] accessors then
    describe it.  Element and attribute names are interned — the same
    name always returns the {e same} string, so repeated tags cost no
    allocation and compare by pointer first.  Everything else is a span;
    accessors that return strings materialize a copy on demand.

    Lifetime rule: spans (and the strings backing {!cur_text_span}) are
    valid only until the next {!cursor_next} call — except in [retain]
    mode, where raw spans are stable for the whole parse.  {!cursor_next}
    carries the same failpoint/budget semantics as {!next}. *)

type signal = Cursor_start | Cursor_end | Cursor_text | Cursor_eof

val cursor_next : t -> signal

val cur_name : t -> string
(** Tag of the current start or end element (interned). *)

val cur_attr_count : t -> int
val cur_attr_name : t -> int -> string
val cur_attr_value : t -> int -> string

val cur_attrs : t -> (string * string) list
(** Materialized attribute list of the current start element. *)

val cur_text : t -> string
(** Materialized content of the current text event. *)

val cur_text_span : t -> string * int * int
(** [(backing, off, len)] — the current text content as a borrowed slice,
    no copy unless the segment needed reference decoding into a fresh
    region.  The backing string aliases the parser's mutable buffer:
    consume it before the next {!cursor_next} and never retain it. *)

(** {1 Arena access}

    For builders running the parser in [retain] mode.  Raw spans encode
    their region in the sign: [off >= 0] is an offset into {!retained},
    [off < 0] is [lnot off] into {!scratch_contents} — the same coding
    {!Tree} uses for its packed content arrays, so a builder can store
    them verbatim. *)

val cur_text_raw : t -> int * int
val cur_attr_raw : t -> int -> int * int

val retained : t -> string
(** The document bytes seen so far (the whole document, once the parse
    ends).  Zero-copy for [of_string] parsers.  Meaningful only in
    [retain] mode. *)

val scratch_contents : t -> string
(** The decoded-segment region accumulated so far ([retain] mode). *)
