(** XML output: trees and event streams back to markup. *)

val escape_text : string -> string
(** Escape ampersands and angle brackets for character data. *)

val escape_attr : string -> string
(** Escape ampersands, angle brackets and both quote characters for
    attribute values. *)

val add_escaped_text : Buffer.t -> string -> int -> int -> unit
(** [add_escaped_text buf s off len] appends {!escape_text} of the slice
    [s[off, off+len)] to [buf], with no intermediate string — the clean
    (entity-free) case is a single substring append. *)

val add_escaped_attr : Buffer.t -> string -> int -> int -> unit
(** Slice counterpart of {!escape_attr}, as {!add_escaped_text}. *)

val to_string : ?indent:bool -> ?decl:bool -> Tree.t -> string
(** Serialize a document.  [indent] (default [true]) pretty-prints with two
    spaces per level, keeping elements whose only child is text on one
    line.  [decl] (default [false]) emits an XML declaration. *)

val to_channel : ?indent:bool -> ?decl:bool -> out_channel -> Tree.t -> unit

val to_file : ?indent:bool -> ?decl:bool -> string -> Tree.t -> unit

val subtree_to_string : ?indent:bool -> Tree.t -> Tree.node -> string
(** Serialize a single subtree. *)

val events_to_string : Pull.event list -> string
(** Serialize a balanced event stream (compact, no indentation). *)
