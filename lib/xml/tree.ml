type node = int

let root = 0

type source =
  | E of string * (string * string) list * source list
  | T of string

let text_tag = 0
let text_tag_name = "#text"

(* INVARIANT: a [t] is deeply immutable once [of_source] returns — no
   field, array slot or hashtable binding is ever written afterwards.
   This is what lets one tree be shared by every session and evaluated on
   every domain of the pool executor with no locking at all.  In
   particular [value] is *precomputed* at construction: an earlier
   version memoized it lazily into a [string option array], which is a
   data race under parallel evaluation (two domains writing the slot, a
   third reading it torn between the check and the write).  Any future
   per-node cache must either be filled here, before the tree is
   published, or be published through [Atomic]. *)
type t = {
  tag : int array;
  parent : int array;
  first_child : int array;
  next_sibling : int array;
  subtree_end : int array;
  depth : int array;
  text : string array; (* text content; "" for elements *)
  attrs : (string * string) list array;
  tag_names : string array; (* tag id -> name; slot 0 is #text *)
  tag_ids : (string, int) Hashtbl.t;
  value : string array; (* per-node comparison value, precomputed *)
}

let n_nodes t = Array.length t.tag
let n_tags t = Array.length t.tag_names

let check t n =
  if n < 0 || n >= n_nodes t then
    invalid_arg (Printf.sprintf "Tree: node id %d out of range" n)

let tag_id t n = check t n; t.tag.(n)
let is_text t n = tag_id t n = text_tag
let is_element t n = not (is_text t n)

let tag_name t id =
  if id < 0 || id >= Array.length t.tag_names then
    invalid_arg (Printf.sprintf "Tree: tag id %d out of range" id)
  else t.tag_names.(id)

let name t n = tag_name t (tag_id t n)
let id_of_tag t s = Hashtbl.find_opt t.tag_ids s

let parent t n =
  check t n;
  if n = root then None else Some t.parent.(n)

let first_child t n =
  check t n;
  let c = t.first_child.(n) in
  if c < 0 then None else Some c

let next_sibling t n =
  check t n;
  let s = t.next_sibling.(n) in
  if s < 0 then None else Some s

let iter_children t n f =
  let rec loop c = if c >= 0 then (f c; loop t.next_sibling.(c)) in
  check t n;
  loop t.first_child.(n)

let fold_children t n ~init ~f =
  let rec loop acc c =
    if c < 0 then acc else loop (f acc c) t.next_sibling.(c)
  in
  check t n;
  loop init t.first_child.(n)

let children t n =
  List.rev (fold_children t n ~init:[] ~f:(fun acc c -> c :: acc))

let subtree_end t n = check t n; t.subtree_end.(n)
let subtree_size t n = subtree_end t n - n
let depth t n = check t n; t.depth.(n)
let attributes t n = check t n; t.attrs.(n)
let attribute t n key = List.assoc_opt key (attributes t n)
let text_content t n = check t n; t.text.(n)

let value t n =
  check t n;
  t.value.(n)

let descendant_or_self_texts t n =
  let stop = subtree_end t n in
  let buf = Buffer.create 16 in
  for i = n to stop - 1 do
    if t.tag.(i) = text_tag then Buffer.add_string buf t.text.(i)
  done;
  Buffer.contents buf

let iter_preorder t f =
  for i = 0 to n_nodes t - 1 do
    f i
  done

let fold_preorder t ~init ~f =
  let acc = ref init in
  for i = 0 to n_nodes t - 1 do
    acc := f !acc i
  done;
  !acc

(* Construction: a first pass counts nodes, a second fills the arrays.
   Both passes drive explicit worklists, never native recursion over
   document depth: a parsed document may nest arbitrarily deep, and the
   only depth limit in the pipeline is the [max_depth] budget — not
   [Stack_overflow] (DESIGN.md §12). *)

let count_nodes src =
  let n = ref 0 in
  let work = ref [ src ] in
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | T _ :: rest ->
      incr n;
      work := rest
    | E (_, _, kids) :: rest ->
      incr n;
      work := List.rev_append kids rest
  done;
  !n

let of_source src =
  let n = count_nodes src in
  let tag = Array.make n 0
  and parent = Array.make n (-1)
  and first_child = Array.make n (-1)
  and next_sibling = Array.make n (-1)
  and subtree_end = Array.make n 0
  and depth = Array.make n 0
  and text = Array.make n ""
  and attrs = Array.make n [] in
  let tag_ids = Hashtbl.create 64 in
  Hashtbl.add tag_ids text_tag_name text_tag;
  let names = ref [ text_tag_name ] in
  let n_names = ref 1 in
  let intern s =
    match Hashtbl.find_opt tag_ids s with
    | Some id -> id
    | None ->
      let id = !n_names in
      incr n_names;
      names := s :: !names;
      Hashtbl.add tag_ids s id;
      id
  in
  let next = ref 0 in
  (* Pre-order fill over an explicit frame stack.  A frame is an open
     element: children still to attach, and the last child attached (for
     sibling linking).  [subtree_end] of a leaf is known at allocation;
     an element's is set when its frame pops. *)
  let alloc par dep s =
    let id = !next in
    incr next;
    parent.(id) <- par;
    depth.(id) <- dep;
    (match s with
    | T s ->
      tag.(id) <- text_tag;
      text.(id) <- s;
      subtree_end.(id) <- id + 1
    | E (tg, ats, _) ->
      if tg = "" then invalid_arg "Tree.of_source: empty tag name";
      tag.(id) <- intern tg;
      attrs.(id) <- ats);
    id
  in
  let module F = struct
    type frame = { id : int; dep : int; mutable prev : int;
                   mutable todo : source list }
  end in
  let open F in
  let root_id = alloc (-1) 0 src in
  let stack =
    ref
      (match src with
      | T _ -> []
      | E (_, _, kids) -> [ { id = root_id; dep = 0; prev = -1; todo = kids } ])
  in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | frame :: rest ->
      (match frame.todo with
      | [] ->
        subtree_end.(frame.id) <- !next;
        stack := rest
      | kid :: more ->
        frame.todo <- more;
        let kid_id = alloc frame.id (frame.dep + 1) kid in
        if frame.prev < 0 then first_child.(frame.id) <- kid_id
        else next_sibling.(frame.prev) <- kid_id;
        frame.prev <- kid_id;
        (match kid with
        | T _ -> ()
        | E (_, _, kids) ->
          stack :=
            { id = kid_id; dep = frame.dep + 1; prev = -1; todo = kids }
            :: !stack))
  done;
  let tag_names = Array.of_list (List.rev !names) in
  (* Comparison values, filled before the tree is published (see the
     invariant on [t]).  Strings are shared, not copied: a text node's
     value *is* its text, an element with one text child borrows that
     child's string, and the all-elements case borrows the empty
     string — only mixed-content elements allocate. *)
  let value = Array.make n "" in
  for i = n - 1 downto 0 do
    if tag.(i) = text_tag then value.(i) <- text.(i)
    else begin
      (* Tail-recursive over the sibling chain — an element may have
         millions of children, and one frame each would blow the stack. *)
      let rec texts acc c =
        if c < 0 then List.rev acc
        else
          texts
            (if tag.(c) = text_tag then text.(c) :: acc else acc)
            next_sibling.(c)
      in
      match texts [] first_child.(i) with
      | [] -> ()
      | [ s ] -> value.(i) <- s
      | pieces -> value.(i) <- String.concat "" pieces
    end
  done;
  {
    tag;
    parent;
    first_child;
    next_sibling;
    subtree_end;
    depth;
    text;
    attrs;
    tag_names;
    tag_ids;
    value;
  }

let rec to_source t n =
  if is_text t n then T (text_content t n)
  else
    let kids = List.map (to_source t) (children t n) in
    E (name t n, attributes t n, kids)

let rec source_equal a b =
  match a, b with
  | T x, T y -> String.equal x y
  | E (ta, aa, ka), E (tb, ab, kb) ->
    String.equal ta tb
    && List.length aa = List.length ab
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
         aa ab
    && List.length ka = List.length kb
    && List.for_all2 source_equal ka kb
  | T _, E _ | E _, T _ -> false

let equal a b =
  n_nodes a = n_nodes b && source_equal (to_source a root) (to_source b root)

let rec pp_source ppf = function
  | T s -> Fmt.pf ppf "%S" s
  | E (tg, _, kids) ->
    Fmt.pf ppf "@[<hov 1><%s%a>@]" tg
      (fun ppf kids ->
        List.iter (fun k -> Fmt.pf ppf "@ %a" pp_source k) kids)
      kids

let pp ppf t = pp_source ppf (to_source t root)
