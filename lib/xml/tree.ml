type node = int

let root = 0

type source =
  | E of string * (string * string) list * source list
  | T of string

let text_tag = 0
let text_tag_name = "#text"

(* INVARIANT: a [t] is deeply immutable once construction returns — no
   field, array slot or hashtable binding is ever written afterwards.
   This is what lets one tree be shared by every session and evaluated on
   every domain of the pool executor with no locking at all.  In
   particular comparison values are *precomputed* at construction: an
   earlier version memoized them lazily into a [string option array],
   which is a data race under parallel evaluation (two domains writing
   the slot, a third reading it torn between the check and the write).
   Any future per-node cache must either be filled here, before the tree
   is published, or be published through [Atomic].

   REPRESENTATION (DESIGN.md §15): the tree is packed.  Structure is six
   flat pre-order int arrays; content is never stored as per-node
   strings.  All text bytes live in two shared immutable regions:

   - [arena]: the raw document bytes when the tree was built by the
     streaming parser (zero-copy — the parse buffer itself), or [""] for
     [of_source]-built trees;
   - [appendix]: everything else — reference-decoded segments, content
     of [of_source] material, content spliced in by functional updates,
     and the concatenated values of mixed-content elements.

   A content span is coded in one int: [off >= 0] indexes [arena],
   [off < 0] indexes [appendix] at [lnot off].  [cont_off]/[cont_len]
   hold a text node's content, and an element's comparison value — for
   an element with a single text child the value *aliases* the child's
   span, so only mixed-content elements cost appendix bytes.  Attributes
   are packed the same way: [attr_start] (n+1 entries, cumulative) maps
   a node to its range in [attr_names]/[attr_voff]/[attr_vlen].

   The update operations below ([delete_subtree] &c.) are functional:
   they build a fresh [t] and never write the input.  A spliced tree
   shares the input's [arena] outright and extends its [appendix] by
   appending only — prefix and suffix spans are therefore blitted
   verbatim, never re-encoded.  It may also share
   [tag_names]/[tag_ids] (and therefore [tags_token]) with its parent
   tree when the edit interned no new tag — sharing is safe because of
   the same immutability invariant. *)
type t = {
  tag : int array;
  parent : int array;
  first_child : int array;
  next_sibling : int array;
  subtree_end : int array;
  depth : int array;
  arena : string;
  appendix : string;
  cont_off : int array; (* coded span: text content / element value *)
  cont_len : int array;
  attr_start : int array; (* n+1 entries, cumulative *)
  attr_names : string array;
  attr_voff : int array; (* coded spans *)
  attr_vlen : int array;
  tag_names : string array; (* tag id -> name; slot 0 is #text *)
  tag_ids : (string, int) Hashtbl.t;
  tags_token : int; (* identity of the tag-interning lineage *)
}

let n_nodes t = Array.length t.tag
let n_tags t = Array.length t.tag_names
let tags_token t = t.tags_token

let check t n =
  if n < 0 || n >= n_nodes t then
    invalid_arg (Printf.sprintf "Tree: node id %d out of range" n)

let tag_id t n = check t n; t.tag.(n)
let is_text t n = tag_id t n = text_tag
let is_element t n = not (is_text t n)

let tag_name t id =
  if id < 0 || id >= Array.length t.tag_names then
    invalid_arg (Printf.sprintf "Tree: tag id %d out of range" id)
  else t.tag_names.(id)

let name t n = tag_name t (tag_id t n)
let id_of_tag t s = Hashtbl.find_opt t.tag_ids s

let parent t n =
  check t n;
  if n = root then None else Some t.parent.(n)

let first_child t n =
  check t n;
  let c = t.first_child.(n) in
  if c < 0 then None else Some c

let next_sibling t n =
  check t n;
  let s = t.next_sibling.(n) in
  if s < 0 then None else Some s

let iter_children t n f =
  let rec loop c = if c >= 0 then (f c; loop t.next_sibling.(c)) in
  check t n;
  loop t.first_child.(n)

let fold_children t n ~init ~f =
  let rec loop acc c =
    if c < 0 then acc else loop (f acc c) t.next_sibling.(c)
  in
  check t n;
  loop init t.first_child.(n)

let children t n =
  List.rev (fold_children t n ~init:[] ~f:(fun acc c -> c :: acc))

let subtree_end t n = check t n; t.subtree_end.(n)
let subtree_size t n = subtree_end t n - n
let depth t n = check t n; t.depth.(n)

(* Materialize a coded span. *)
let slice t off len =
  if len = 0 then ""
  else if off >= 0 then String.sub t.arena off len
  else String.sub t.appendix (lnot off) len

let attributes t n =
  check t n;
  let lo = t.attr_start.(n) and hi = t.attr_start.(n + 1) in
  let rec go i acc =
    if i < lo then acc
    else
      go (i - 1)
        ((t.attr_names.(i), slice t t.attr_voff.(i) t.attr_vlen.(i)) :: acc)
  in
  go (hi - 1) []

let attribute t n key =
  check t n;
  let hi = t.attr_start.(n + 1) in
  let rec find i =
    if i >= hi then None
    else if String.equal t.attr_names.(i) key then
      Some (slice t t.attr_voff.(i) t.attr_vlen.(i))
    else find (i + 1)
  in
  find t.attr_start.(n)

let iter_attrs t n f =
  check t n;
  for i = t.attr_start.(n) to t.attr_start.(n + 1) - 1 do
    let off = t.attr_voff.(i) and len = t.attr_vlen.(i) in
    if off >= 0 then f t.attr_names.(i) t.arena off len
    else f t.attr_names.(i) t.appendix (lnot off) len
  done

let text_content t n =
  check t n;
  if t.tag.(n) = text_tag then slice t t.cont_off.(n) t.cont_len.(n) else ""

let value t n =
  check t n;
  slice t t.cont_off.(n) t.cont_len.(n)

let content_slice t n =
  check t n;
  let off = t.cont_off.(n) and len = t.cont_len.(n) in
  if off >= 0 then (t.arena, off, len) else (t.appendix, lnot off, len)

let value_equal t n s =
  check t n;
  let len = t.cont_len.(n) in
  String.length s = len
  &&
  let off = t.cont_off.(n) in
  let backing, off =
    if off >= 0 then (t.arena, off) else (t.appendix, lnot off)
  in
  let i = ref 0 in
  while
    !i < len && String.unsafe_get backing (off + !i) = String.unsafe_get s !i
  do
    incr i
  done;
  !i = len

let descendant_or_self_texts t n =
  let stop = subtree_end t n in
  let buf = Buffer.create 16 in
  for i = n to stop - 1 do
    if t.tag.(i) = text_tag then begin
      let off = t.cont_off.(i) and len = t.cont_len.(i) in
      if off >= 0 then Buffer.add_substring buf t.arena off len
      else Buffer.add_substring buf t.appendix (lnot off) len
    end
  done;
  Buffer.contents buf

let iter_preorder t f =
  for i = 0 to n_nodes t - 1 do
    f i
  done

let fold_preorder t ~init ~f =
  let acc = ref init in
  for i = 0 to n_nodes t - 1 do
    acc := f !acc i
  done;
  !acc

(* Construction: a first pass counts nodes and attributes, a second fills
   the arrays.  Both passes drive explicit worklists, never native
   recursion over document depth: a parsed document may nest arbitrarily
   deep, and the only depth limit in the pipeline is the [max_depth]
   budget — not [Stack_overflow] (DESIGN.md §12). *)

let count_src src =
  let n = ref 0 and na = ref 0 in
  let work = ref [ src ] in
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | T _ :: rest ->
      incr n;
      work := rest
    | E (_, ats, kids) :: rest ->
      incr n;
      na := !na + List.length ats;
      work := List.rev_append kids rest
  done;
  (!n, !na)

(* Tag-lineage tokens.  Every fresh interning run mints a new one; a
   splice that interned no new tag keeps its input's token.  Equal tokens
   therefore guarantee byte-identical tag tables, which is what lets
   artifacts keyed by tag id (the frozen transition tables of
   [Smoqe_automata.Tables]) survive functional updates. *)
let token_counter = Atomic.make 1
let fresh_token () = Atomic.fetch_and_add token_counter 1

(* A tag interner: a read-only base table (empty or seeded from an
   existing tree, whose ids all stay stable) plus appended new names. *)
type interner = {
  int_base : (string, int) Hashtbl.t; (* never written when seeded *)
  int_extra : (string, int) Hashtbl.t;
  mutable int_extra_rev : string list;
  mutable int_n : int;
}

let fresh_interner () =
  let base = Hashtbl.create 1 in
  Hashtbl.add base text_tag_name text_tag;
  { int_base = base; int_extra = Hashtbl.create 64; int_extra_rev = [];
    int_n = 1 }

let interner_of_seed t0 =
  { int_base = t0.tag_ids; int_extra = Hashtbl.create 4;
    int_extra_rev = []; int_n = Array.length t0.tag_names }

let intern it s =
  match Hashtbl.find_opt it.int_base s with
  | Some id -> id
  | None ->
    (match Hashtbl.find_opt it.int_extra s with
    | Some id -> id
    | None ->
      let id = it.int_n in
      it.int_n <- it.int_n + 1;
      Hashtbl.add it.int_extra s id;
      it.int_extra_rev <- s :: it.int_extra_rev;
      id)

let finalize_interner it ~seed =
  match seed with
  | Some t0 when it.int_extra_rev = [] ->
    (* No new tag: share the seed's table and keep its token. *)
    (t0.tag_names, t0.tag_ids, t0.tags_token)
  | _ ->
    let base =
      match seed with
      | Some t0 -> Array.to_list t0.tag_names
      | None -> [ text_tag_name ]
    in
    let tag_names = Array.of_list (base @ List.rev it.int_extra_rev) in
    let tag_ids = Hashtbl.create (2 * Array.length tag_names) in
    Array.iteri (fun i s -> Hashtbl.add tag_ids s i) tag_names;
    (tag_names, tag_ids, fresh_token ())

(* Arrays of a tree under construction, before they are frozen into a
   [t].  Slots outside the range being filled must already hold their
   final values (or the [Array.make] defaults).  New content bytes
   accumulate in [b_content]; they will land in the final appendix at
   offset [b_cbase] (the length of the appendix inherited from a splice
   input — 0 for a fresh build), so spans into them are coded as
   [lnot (b_cbase + pos)] up front and never re-encoded. *)
type builder = {
  b_tag : int array;
  b_parent : int array;
  b_first_child : int array;
  b_next_sibling : int array;
  b_subtree_end : int array;
  b_depth : int array;
  b_cont_off : int array;
  b_cont_len : int array;
  b_attr_start : int array; (* n + 1 entries *)
  b_attr_names : string array;
  b_attr_voff : int array;
  b_attr_vlen : int array;
  mutable b_attr_n : int;
  b_content : Buffer.t;
  b_cbase : int;
}

let make_builder n na ~cbase =
  {
    b_tag = Array.make n 0;
    b_parent = Array.make n (-1);
    b_first_child = Array.make n (-1);
    b_next_sibling = Array.make n (-1);
    b_subtree_end = Array.make n 0;
    b_depth = Array.make n 0;
    b_cont_off = Array.make n 0;
    b_cont_len = Array.make n 0;
    b_attr_start = Array.make (n + 1) 0;
    b_attr_names = Array.make na "";
    b_attr_voff = Array.make na 0;
    b_attr_vlen = Array.make na 0;
    b_attr_n = 0;
    b_content = Buffer.create 256;
    b_cbase = cbase;
  }

(* Pre-order fill of nodes [start, start + size srcs) from consecutive
   sibling sources under parent [par] (whose own slots are not touched)
   at depth [dep].  Drives an explicit frame stack — a frame is an open
   element: children still to attach, and the last child attached (for
   sibling linking); [subtree_end] of a leaf is known at allocation, an
   element's is set when its frame pops.  Content bytes are appended to
   [b_content] and spans recorded at allocation; attributes are packed
   in the same pre-order, so [b_attr_start] stays cumulative.  Returns
   the id of the last root, -1 when [srcs] is empty. *)
let fill_range b it ~start ~par ~dep srcs =
  let next = ref start in
  let alloc p d s =
    let id = !next in
    incr next;
    b.b_parent.(id) <- p;
    b.b_depth.(id) <- d;
    b.b_attr_start.(id) <- b.b_attr_n;
    (match s with
    | T s ->
      b.b_tag.(id) <- text_tag;
      b.b_cont_off.(id) <- lnot (b.b_cbase + Buffer.length b.b_content);
      b.b_cont_len.(id) <- String.length s;
      Buffer.add_string b.b_content s;
      b.b_subtree_end.(id) <- id + 1
    | E (tg, ats, _) ->
      if tg = "" then invalid_arg "Tree.of_source: empty tag name";
      b.b_tag.(id) <- intern it tg;
      List.iter
        (fun (k, v) ->
          b.b_attr_names.(b.b_attr_n) <- k;
          b.b_attr_voff.(b.b_attr_n) <-
            lnot (b.b_cbase + Buffer.length b.b_content);
          b.b_attr_vlen.(b.b_attr_n) <- String.length v;
          Buffer.add_string b.b_content v;
          b.b_attr_n <- b.b_attr_n + 1)
        ats);
    id
  in
  let module F = struct
    type frame = { id : int; dp : int; mutable prev : int;
                   mutable todo : source list }
  end in
  let open F in
  let last_root = ref (-1) in
  List.iter
    (fun src ->
      let rid = alloc par dep src in
      if !last_root >= 0 then b.b_next_sibling.(!last_root) <- rid;
      last_root := rid;
      let stack =
        ref
          (match src with
          | T _ -> []
          | E (_, _, kids) -> [ { id = rid; dp = dep; prev = -1; todo = kids } ])
      in
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | frame :: rest ->
          (match frame.todo with
          | [] ->
            b.b_subtree_end.(frame.id) <- !next;
            stack := rest
          | kid :: more ->
            frame.todo <- more;
            let kid_id = alloc frame.id (frame.dp + 1) kid in
            if frame.prev < 0 then b.b_first_child.(frame.id) <- kid_id
            else b.b_next_sibling.(frame.prev) <- kid_id;
            frame.prev <- kid_id;
            (match kid with
            | T _ -> ()
            | E (_, _, kids) ->
              stack :=
                { id = kid_id; dp = frame.dp + 1; prev = -1; todo = kids }
                :: !stack))
      done)
    srcs;
  !last_root

(* Read a coded span while the final appendix is still in pieces: the
   inherited part [app0], then the new content [newc] (at [length app0]),
   then the extras being built. *)
let add_coded buf ~arena ~app0 ~newc off len =
  if len = 0 then ()
  else if off >= 0 then Buffer.add_substring buf arena off len
  else begin
    let r = lnot off in
    let l0 = String.length app0 in
    if r < l0 then Buffer.add_substring buf app0 r len
    else Buffer.add_substring buf newc (r - l0) len
  end

(* Comparison value of an element from its immediate children.  A span,
   not a copy: a single text child's value *is* that child's span, the
   all-elements case is the empty span — only mixed-content elements
   append concatenated bytes to [extras] (which lands in the appendix at
   offset [ebase]). *)
let set_value b ~arena ~app0 ~newc ~extras ~ebase i =
  let first = ref (-1) and count = ref 0 in
  let c = ref b.b_first_child.(i) in
  while !c >= 0 do
    if b.b_tag.(!c) = text_tag then begin
      if !count = 0 then first := !c;
      incr count
    end;
    c := b.b_next_sibling.(!c)
  done;
  if !count = 0 then begin
    b.b_cont_off.(i) <- 0;
    b.b_cont_len.(i) <- 0
  end
  else if !count = 1 then begin
    b.b_cont_off.(i) <- b.b_cont_off.(!first);
    b.b_cont_len.(i) <- b.b_cont_len.(!first)
  end
  else begin
    let start = ebase + Buffer.length extras in
    let c = ref b.b_first_child.(i) in
    while !c >= 0 do
      if b.b_tag.(!c) = text_tag then
        add_coded extras ~arena ~app0 ~newc b.b_cont_off.(!c) b.b_cont_len.(!c);
      c := b.b_next_sibling.(!c)
    done;
    b.b_cont_off.(i) <- lnot start;
    b.b_cont_len.(i) <- ebase + Buffer.length extras - start
  end

(* Comparison values, filled before the tree is published (see the
   invariant on [t]). *)
let fill_values b ~arena ~app0 ~newc ~extras ~ebase ~lo ~hi =
  for i = hi - 1 downto lo do
    if b.b_tag.(i) <> text_tag then
      set_value b ~arena ~app0 ~newc ~extras ~ebase i
  done

let freeze b ~arena ~appendix (tag_names, tag_ids, tags_token) =
  {
    tag = b.b_tag;
    parent = b.b_parent;
    first_child = b.b_first_child;
    next_sibling = b.b_next_sibling;
    subtree_end = b.b_subtree_end;
    depth = b.b_depth;
    arena;
    appendix;
    cont_off = b.b_cont_off;
    cont_len = b.b_cont_len;
    attr_start = b.b_attr_start;
    attr_names = b.b_attr_names;
    attr_voff = b.b_attr_voff;
    attr_vlen = b.b_attr_vlen;
    tag_names;
    tag_ids;
    tags_token;
  }

let build ?seed src =
  let n, na = count_src src in
  let b = make_builder n na ~cbase:0 in
  let it =
    match seed with
    | Some t0 -> interner_of_seed t0
    | None -> fresh_interner ()
  in
  ignore (fill_range b it ~start:0 ~par:(-1) ~dep:0 [ src ]);
  b.b_attr_start.(n) <- b.b_attr_n;
  let newc = Buffer.contents b.b_content in
  let extras = Buffer.create 64 in
  fill_values b ~arena:"" ~app0:"" ~newc ~extras ~ebase:(String.length newc)
    ~lo:0 ~hi:n;
  let appendix =
    if Buffer.length extras = 0 then newc else newc ^ Buffer.contents extras
  in
  freeze b ~arena:"" ~appendix (finalize_interner it ~seed)

let of_source src = build src

(* [splice t ~lo ~old_hi ~par ~prev ~nxt srcs] replaces the node range
   [lo, old_hi) — zero or more whole consecutive sibling subtrees under
   [par] — with the subtrees described by [srcs].  [prev] is the child of
   [par] immediately preceding the range (-1 when the range starts at
   [par]'s first child), [nxt] the sibling immediately following it (-1
   when it ends the chain); both in old ids.  Ids below [lo] are stable,
   ids at or above [old_hi] shift by the size delta; everything outside
   the edited range is blitted, not re-walked, and tag ids stay aligned
   with the input tree (new tags are appended).  The arena is shared
   with the input and the appendix only ever appended to, so prefix and
   suffix content spans are blitted verbatim; only the attribute index
   arithmetic shifts. *)
let splice t ~lo ~old_hi ~par ~prev ~nxt srcs =
  let n_old = n_nodes t in
  let m, ma =
    List.fold_left
      (fun (n, a) s ->
        let n', a' = count_src s in
        (n + n', a + a'))
      (0, 0) srcs
  in
  let removed = old_hi - lo in
  let shift = m - removed in
  let n_new = n_old + shift in
  let a_lo = t.attr_start.(lo) in
  let a_hi = t.attr_start.(old_hi) in
  let a_old = t.attr_start.(n_old) in
  let a_shift = ma - (a_hi - a_lo) in
  let app0 = t.appendix in
  let b = make_builder n_new (a_old + a_shift) ~cbase:(String.length app0) in
  b.b_attr_n <- a_lo;
  (* Ancestors of [par] (inclusive), to disambiguate the subtree_end
     boundary case below when the replaced range is empty (an insert): a
     prefix subtree ending exactly at [lo] contains the new nodes iff it
     is an ancestor's. *)
  let anc = Hashtbl.create 16 in
  let a = ref par in
  while !a >= 0 do
    Hashtbl.replace anc !a ();
    a := t.parent.(!a)
  done;
  (* Prefix [0, lo): only pointers into the suffix shift.  [parent] slots
     all point backwards; [first_child] is node + 1 or -1, never past
     [lo].  Content spans are region offsets, not node ids — verbatim. *)
  Array.blit t.tag 0 b.b_tag 0 lo;
  Array.blit t.parent 0 b.b_parent 0 lo;
  Array.blit t.first_child 0 b.b_first_child 0 lo;
  Array.blit t.depth 0 b.b_depth 0 lo;
  Array.blit t.cont_off 0 b.b_cont_off 0 lo;
  Array.blit t.cont_len 0 b.b_cont_len 0 lo;
  Array.blit t.attr_start 0 b.b_attr_start 0 lo;
  Array.blit t.attr_names 0 b.b_attr_names 0 a_lo;
  Array.blit t.attr_voff 0 b.b_attr_voff 0 a_lo;
  Array.blit t.attr_vlen 0 b.b_attr_vlen 0 a_lo;
  for q = 0 to lo - 1 do
    let ns = t.next_sibling.(q) in
    b.b_next_sibling.(q) <- (if ns >= old_hi then ns + shift else ns);
    let se = t.subtree_end.(q) in
    b.b_subtree_end.(q) <-
      (if se > old_hi || (se = old_hi && (removed > 0 || Hashtbl.mem anc q))
       then se + shift
       else se)
  done;
  (* The new middle [lo, lo + m). *)
  let it = interner_of_seed t in
  let last_root = fill_range b it ~start:lo ~par ~dep:(t.depth.(par) + 1) srcs in
  (* Suffix [old_hi, n_old), shifted.  A suffix node's parent is either
     an ancestor of the range (below [lo]) or in the suffix — never
     inside the replaced range. *)
  let slen = n_old - old_hi in
  Array.blit t.tag old_hi b.b_tag (old_hi + shift) slen;
  Array.blit t.depth old_hi b.b_depth (old_hi + shift) slen;
  Array.blit t.cont_off old_hi b.b_cont_off (old_hi + shift) slen;
  Array.blit t.cont_len old_hi b.b_cont_len (old_hi + shift) slen;
  Array.blit t.attr_names a_hi b.b_attr_names (a_hi + a_shift) (a_old - a_hi);
  Array.blit t.attr_voff a_hi b.b_attr_voff (a_hi + a_shift) (a_old - a_hi);
  Array.blit t.attr_vlen a_hi b.b_attr_vlen (a_hi + a_shift) (a_old - a_hi);
  for s = old_hi to n_old - 1 do
    let d = s + shift in
    let p = t.parent.(s) in
    b.b_parent.(d) <- (if p >= old_hi then p + shift else p);
    let fc = t.first_child.(s) in
    b.b_first_child.(d) <- (if fc >= 0 then fc + shift else -1);
    let ns = t.next_sibling.(s) in
    b.b_next_sibling.(d) <- (if ns >= 0 then ns + shift else -1);
    b.b_subtree_end.(d) <- t.subtree_end.(s) + shift;
    b.b_attr_start.(d) <- t.attr_start.(s) + a_shift
  done;
  b.b_attr_start.(n_new) <- a_old + a_shift;
  (* Splice the sibling chain back together. *)
  let new_next = if nxt < 0 then -1 else nxt + shift in
  let head = if m > 0 then lo else new_next in
  if last_root >= 0 then b.b_next_sibling.(last_root) <- new_next;
  if prev >= 0 then b.b_next_sibling.(prev) <- head
  else begin
    let ofc = t.first_child.(par) in
    if ofc = lo || ofc < 0 then b.b_first_child.(par) <- head
  end;
  let newc = Buffer.contents b.b_content in
  let extras = Buffer.create 64 in
  let ebase = String.length app0 + String.length newc in
  fill_values b ~arena:t.arena ~app0 ~newc ~extras ~ebase ~lo ~hi:(lo + m);
  (* [par]'s immediate text children may have changed. *)
  set_value b ~arena:t.arena ~app0 ~newc ~extras ~ebase par;
  let appendix =
    if String.length newc = 0 && Buffer.length extras = 0 then app0
    else app0 ^ newc ^ Buffer.contents extras
  in
  freeze b ~arena:t.arena ~appendix (finalize_interner it ~seed:(Some t))

let prev_sibling_in t par n =
  let prev = ref (-1) and c = ref t.first_child.(par) in
  while !c >= 0 && !c <> n do
    prev := !c;
    c := t.next_sibling.(!c)
  done;
  if !c <> n then invalid_arg "Tree: node is not a child of its parent";
  !prev

let last_child_of t par =
  let last = ref (-1) and c = ref t.first_child.(par) in
  while !c >= 0 do
    last := !c;
    c := t.next_sibling.(!c)
  done;
  !last

let delete_subtree t n =
  check t n;
  if n = root then invalid_arg "Tree.delete_subtree: cannot delete the root";
  let par = t.parent.(n) in
  splice t ~lo:n ~old_hi:t.subtree_end.(n) ~par
    ~prev:(prev_sibling_in t par n) ~nxt:t.next_sibling.(n) []

let replace_subtree t n src =
  check t n;
  if n = root then build ~seed:t src
  else
    let par = t.parent.(n) in
    splice t ~lo:n ~old_hi:t.subtree_end.(n) ~par
      ~prev:(prev_sibling_in t par n) ~nxt:t.next_sibling.(n) [ src ]

let insert_subtree t ~parent:par ?before src =
  check t par;
  if is_text t par then
    invalid_arg "Tree.insert_subtree: parent is a text node";
  match before with
  | Some b ->
    check t b;
    if b = root || t.parent.(b) <> par then
      invalid_arg "Tree.insert_subtree: ~before is not a child of ~parent";
    splice t ~lo:b ~old_hi:b ~par ~prev:(prev_sibling_in t par b) ~nxt:b
      [ src ]
  | None ->
    let pos = t.subtree_end.(par) in
    splice t ~lo:pos ~old_hi:pos ~par ~prev:(last_child_of t par) ~nxt:(-1)
      [ src ]

(* ------------------------------------------------------------------ *)
(* Streaming construction: the parser pushes events and raw spans; no
   intermediate [source] is ever built.  The caller supplies the arena
   (its retained parse buffer) and appendix (its scratch region) at
   [finish]; spans pushed here use the same sign coding as the final
   tree, so they are stored verbatim.  Events are assumed well-formed —
   the pull parser has already enforced that. *)
module Builder = struct
  type b = {
    mutable v_tag : int array;
    mutable v_parent : int array;
    mutable v_first_child : int array;
    mutable v_next_sibling : int array;
    mutable v_subtree_end : int array;
    mutable v_depth : int array;
    mutable v_cont_off : int array;
    mutable v_cont_len : int array;
    mutable v_attr_start : int array;
    mutable v_attr_names : string array;
    mutable v_attr_voff : int array;
    mutable v_attr_vlen : int array;
    mutable n : int;
    mutable an : int;
    mutable stack : int array; (* open element ids *)
    mutable last : int array; (* last child of each open element *)
    mutable sp : int;
    bit : interner;
  }

  let create () =
    {
      v_tag = Array.make 64 0;
      v_parent = Array.make 64 (-1);
      v_first_child = Array.make 64 (-1);
      v_next_sibling = Array.make 64 (-1);
      v_subtree_end = Array.make 64 0;
      v_depth = Array.make 64 0;
      v_cont_off = Array.make 64 0;
      v_cont_len = Array.make 64 0;
      v_attr_start = Array.make 65 0;
      v_attr_names = Array.make 16 "";
      v_attr_voff = Array.make 16 0;
      v_attr_vlen = Array.make 16 0;
      n = 0;
      an = 0;
      stack = Array.make 32 0;
      last = Array.make 32 (-1);
      sp = 0;
      bit = fresh_interner ();
    }

  let grow_int a n fill =
    let b = Array.make (2 * Array.length a) fill in
    Array.blit a 0 b 0 n;
    b

  let grow_str a n =
    let b = Array.make (2 * Array.length a) "" in
    Array.blit a 0 b 0 n;
    b

  (* Allocate the next pre-order node id, linked under the innermost
     open element (or as the root). *)
  let alloc bb =
    let id = bb.n in
    if id = Array.length bb.v_tag then begin
      bb.v_tag <- grow_int bb.v_tag id 0;
      bb.v_parent <- grow_int bb.v_parent id (-1);
      bb.v_first_child <- grow_int bb.v_first_child id (-1);
      bb.v_next_sibling <- grow_int bb.v_next_sibling id (-1);
      bb.v_subtree_end <- grow_int bb.v_subtree_end id 0;
      bb.v_depth <- grow_int bb.v_depth id 0;
      bb.v_cont_off <- grow_int bb.v_cont_off id 0;
      bb.v_cont_len <- grow_int bb.v_cont_len id 0;
      bb.v_attr_start <- grow_int bb.v_attr_start (id + 1) 0
    end;
    bb.n <- id + 1;
    bb.v_attr_start.(id) <- bb.an;
    bb.v_depth.(id) <- bb.sp;
    if bb.sp > 0 then begin
      let par = bb.stack.(bb.sp - 1) in
      bb.v_parent.(id) <- par;
      let prev = bb.last.(bb.sp - 1) in
      if prev < 0 then bb.v_first_child.(par) <- id
      else bb.v_next_sibling.(prev) <- id;
      bb.last.(bb.sp - 1) <- id
    end;
    id

  let start_element bb name =
    let id = alloc bb in
    bb.v_tag.(id) <- intern bb.bit name;
    if bb.sp = Array.length bb.stack then begin
      bb.stack <- grow_int bb.stack bb.sp 0;
      bb.last <- grow_int bb.last bb.sp (-1)
    end;
    bb.stack.(bb.sp) <- id;
    bb.last.(bb.sp) <- -1;
    bb.sp <- bb.sp + 1

  let attr bb key off len =
    if bb.an = Array.length bb.v_attr_names then begin
      bb.v_attr_names <- grow_str bb.v_attr_names bb.an;
      bb.v_attr_voff <- grow_int bb.v_attr_voff bb.an 0;
      bb.v_attr_vlen <- grow_int bb.v_attr_vlen bb.an 0
    end;
    bb.v_attr_names.(bb.an) <- key;
    bb.v_attr_voff.(bb.an) <- off;
    bb.v_attr_vlen.(bb.an) <- len;
    bb.an <- bb.an + 1

  let text bb off len =
    let id = alloc bb in
    bb.v_tag.(id) <- text_tag;
    bb.v_cont_off.(id) <- off;
    bb.v_cont_len.(id) <- len;
    bb.v_subtree_end.(id) <- id + 1

  let end_element bb =
    bb.sp <- bb.sp - 1;
    bb.v_subtree_end.(bb.stack.(bb.sp)) <- bb.n

  let finish bb ~arena ~appendix =
    let n = bb.n in
    let attr_start = Array.sub bb.v_attr_start 0 (n + 1) in
    attr_start.(n) <- bb.an;
    let b =
      {
        b_tag = Array.sub bb.v_tag 0 n;
        b_parent = Array.sub bb.v_parent 0 n;
        b_first_child = Array.sub bb.v_first_child 0 n;
        b_next_sibling = Array.sub bb.v_next_sibling 0 n;
        b_subtree_end = Array.sub bb.v_subtree_end 0 n;
        b_depth = Array.sub bb.v_depth 0 n;
        b_cont_off = Array.sub bb.v_cont_off 0 n;
        b_cont_len = Array.sub bb.v_cont_len 0 n;
        b_attr_start = attr_start;
        b_attr_names = Array.sub bb.v_attr_names 0 bb.an;
        b_attr_voff = Array.sub bb.v_attr_voff 0 bb.an;
        b_attr_vlen = Array.sub bb.v_attr_vlen 0 bb.an;
        b_attr_n = bb.an;
        b_content = Buffer.create 1;
        b_cbase = 0;
      }
    in
    let extras = Buffer.create 64 in
    fill_values b ~arena ~app0:appendix ~newc:"" ~extras
      ~ebase:(String.length appendix) ~lo:0 ~hi:n;
    let appendix =
      if Buffer.length extras = 0 then appendix
      else appendix ^ Buffer.contents extras
    in
    freeze b ~arena ~appendix (finalize_interner bb.bit ~seed:None)
end

let subtree_element_names t n =
  let stop = subtree_end t n in
  let seen = Hashtbl.create 8 and acc = ref [] in
  for i = n to stop - 1 do
    let tg = t.tag.(i) in
    if tg <> text_tag && not (Hashtbl.mem seen tg) then begin
      Hashtbl.add seen tg ();
      acc := t.tag_names.(tg) :: !acc
    end
  done;
  List.rev !acc

let source_element_names src =
  let seen = Hashtbl.create 8 and acc = ref [] in
  let work = ref [ src ] and continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | T _ :: rest -> work := rest
    | E (tg, _, kids) :: rest ->
      if not (Hashtbl.mem seen tg) then begin
        Hashtbl.add seen tg ();
        acc := tg :: !acc
      end;
      work := List.rev_append kids rest
  done;
  List.rev !acc

let rec to_source t n =
  if is_text t n then T (text_content t n)
  else
    let kids = List.map (to_source t) (children t n) in
    E (name t n, attributes t n, kids)

let rec source_equal a b =
  match a, b with
  | T x, T y -> String.equal x y
  | E (ta, aa, ka), E (tb, ab, kb) ->
    String.equal ta tb
    && List.length aa = List.length ab
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
         aa ab
    && List.length ka = List.length kb
    && List.for_all2 source_equal ka kb
  | T _, E _ | E _, T _ -> false

let equal a b =
  n_nodes a = n_nodes b && source_equal (to_source a root) (to_source b root)

let rec pp_source ppf = function
  | T s -> Fmt.pf ppf "%S" s
  | E (tg, _, kids) ->
    Fmt.pf ppf "@[<hov 1><%s%a>@]" tg
      (fun ppf kids ->
        List.iter (fun k -> Fmt.pf ppf "@ %a" pp_source k) kids)
      kids

let pp ppf t = pp_source ppf (to_source t root)
