type node = int

let root = 0

type source =
  | E of string * (string * string) list * source list
  | T of string

let text_tag = 0
let text_tag_name = "#text"

(* INVARIANT: a [t] is deeply immutable once construction returns — no
   field, array slot or hashtable binding is ever written afterwards.
   This is what lets one tree be shared by every session and evaluated on
   every domain of the pool executor with no locking at all.  In
   particular [value] is *precomputed* at construction: an earlier
   version memoized it lazily into a [string option array], which is a
   data race under parallel evaluation (two domains writing the slot, a
   third reading it torn between the check and the write).  Any future
   per-node cache must either be filled here, before the tree is
   published, or be published through [Atomic].

   The update operations below ([delete_subtree] &c.) are functional:
   they build a fresh [t] and never write the input.  A spliced tree may
   share [tag_names]/[tag_ids] (and therefore [tags_token]) with its
   parent tree when the edit interned no new tag — sharing is safe
   because of the same immutability invariant. *)
type t = {
  tag : int array;
  parent : int array;
  first_child : int array;
  next_sibling : int array;
  subtree_end : int array;
  depth : int array;
  text : string array; (* text content; "" for elements *)
  attrs : (string * string) list array;
  tag_names : string array; (* tag id -> name; slot 0 is #text *)
  tag_ids : (string, int) Hashtbl.t;
  value : string array; (* per-node comparison value, precomputed *)
  tags_token : int; (* identity of the tag-interning lineage *)
}

let n_nodes t = Array.length t.tag
let n_tags t = Array.length t.tag_names
let tags_token t = t.tags_token

let check t n =
  if n < 0 || n >= n_nodes t then
    invalid_arg (Printf.sprintf "Tree: node id %d out of range" n)

let tag_id t n = check t n; t.tag.(n)
let is_text t n = tag_id t n = text_tag
let is_element t n = not (is_text t n)

let tag_name t id =
  if id < 0 || id >= Array.length t.tag_names then
    invalid_arg (Printf.sprintf "Tree: tag id %d out of range" id)
  else t.tag_names.(id)

let name t n = tag_name t (tag_id t n)
let id_of_tag t s = Hashtbl.find_opt t.tag_ids s

let parent t n =
  check t n;
  if n = root then None else Some t.parent.(n)

let first_child t n =
  check t n;
  let c = t.first_child.(n) in
  if c < 0 then None else Some c

let next_sibling t n =
  check t n;
  let s = t.next_sibling.(n) in
  if s < 0 then None else Some s

let iter_children t n f =
  let rec loop c = if c >= 0 then (f c; loop t.next_sibling.(c)) in
  check t n;
  loop t.first_child.(n)

let fold_children t n ~init ~f =
  let rec loop acc c =
    if c < 0 then acc else loop (f acc c) t.next_sibling.(c)
  in
  check t n;
  loop init t.first_child.(n)

let children t n =
  List.rev (fold_children t n ~init:[] ~f:(fun acc c -> c :: acc))

let subtree_end t n = check t n; t.subtree_end.(n)
let subtree_size t n = subtree_end t n - n
let depth t n = check t n; t.depth.(n)
let attributes t n = check t n; t.attrs.(n)
let attribute t n key = List.assoc_opt key (attributes t n)
let text_content t n = check t n; t.text.(n)

let value t n =
  check t n;
  t.value.(n)

let descendant_or_self_texts t n =
  let stop = subtree_end t n in
  let buf = Buffer.create 16 in
  for i = n to stop - 1 do
    if t.tag.(i) = text_tag then Buffer.add_string buf t.text.(i)
  done;
  Buffer.contents buf

let iter_preorder t f =
  for i = 0 to n_nodes t - 1 do
    f i
  done

let fold_preorder t ~init ~f =
  let acc = ref init in
  for i = 0 to n_nodes t - 1 do
    acc := f !acc i
  done;
  !acc

(* Construction: a first pass counts nodes, a second fills the arrays.
   Both passes drive explicit worklists, never native recursion over
   document depth: a parsed document may nest arbitrarily deep, and the
   only depth limit in the pipeline is the [max_depth] budget — not
   [Stack_overflow] (DESIGN.md §12). *)

let count_nodes src =
  let n = ref 0 in
  let work = ref [ src ] in
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | T _ :: rest ->
      incr n;
      work := rest
    | E (_, _, kids) :: rest ->
      incr n;
      work := List.rev_append kids rest
  done;
  !n

(* Tag-lineage tokens.  Every fresh interning run mints a new one; a
   splice that interned no new tag keeps its input's token.  Equal tokens
   therefore guarantee byte-identical tag tables, which is what lets
   artifacts keyed by tag id (the frozen transition tables of
   [Smoqe_automata.Tables]) survive functional updates. *)
let token_counter = Atomic.make 1
let fresh_token () = Atomic.fetch_and_add token_counter 1

(* A tag interner: a read-only base table (empty or seeded from an
   existing tree, whose ids all stay stable) plus appended new names. *)
type interner = {
  int_base : (string, int) Hashtbl.t; (* never written when seeded *)
  int_extra : (string, int) Hashtbl.t;
  mutable int_extra_rev : string list;
  mutable int_n : int;
}

let fresh_interner () =
  let base = Hashtbl.create 1 in
  Hashtbl.add base text_tag_name text_tag;
  { int_base = base; int_extra = Hashtbl.create 64; int_extra_rev = [];
    int_n = 1 }

let interner_of_seed t0 =
  { int_base = t0.tag_ids; int_extra = Hashtbl.create 4;
    int_extra_rev = []; int_n = Array.length t0.tag_names }

let intern it s =
  match Hashtbl.find_opt it.int_base s with
  | Some id -> id
  | None ->
    (match Hashtbl.find_opt it.int_extra s with
    | Some id -> id
    | None ->
      let id = it.int_n in
      it.int_n <- it.int_n + 1;
      Hashtbl.add it.int_extra s id;
      it.int_extra_rev <- s :: it.int_extra_rev;
      id)

let finalize_interner it ~seed =
  match seed with
  | Some t0 when it.int_extra_rev = [] ->
    (* No new tag: share the seed's table and keep its token. *)
    (t0.tag_names, t0.tag_ids, t0.tags_token)
  | _ ->
    let base =
      match seed with
      | Some t0 -> Array.to_list t0.tag_names
      | None -> [ text_tag_name ]
    in
    let tag_names = Array.of_list (base @ List.rev it.int_extra_rev) in
    let tag_ids = Hashtbl.create (2 * Array.length tag_names) in
    Array.iteri (fun i s -> Hashtbl.add tag_ids s i) tag_names;
    (tag_names, tag_ids, fresh_token ())

(* Arrays of a tree under construction, before they are frozen into a
   [t].  Slots outside the range being filled must already hold their
   final values (or the [Array.make] defaults). *)
type builder = {
  b_tag : int array;
  b_parent : int array;
  b_first_child : int array;
  b_next_sibling : int array;
  b_subtree_end : int array;
  b_depth : int array;
  b_text : string array;
  b_attrs : (string * string) list array;
}

let make_builder n =
  {
    b_tag = Array.make n 0;
    b_parent = Array.make n (-1);
    b_first_child = Array.make n (-1);
    b_next_sibling = Array.make n (-1);
    b_subtree_end = Array.make n 0;
    b_depth = Array.make n 0;
    b_text = Array.make n "";
    b_attrs = Array.make n [];
  }

(* Pre-order fill of nodes [start, start + size srcs) from consecutive
   sibling sources under parent [par] (whose own slots are not touched)
   at depth [dep].  Drives an explicit frame stack — a frame is an open
   element: children still to attach, and the last child attached (for
   sibling linking); [subtree_end] of a leaf is known at allocation, an
   element's is set when its frame pops.  Returns the id of the last
   root, -1 when [srcs] is empty. *)
let fill_range b it ~start ~par ~dep srcs =
  let next = ref start in
  let alloc p d s =
    let id = !next in
    incr next;
    b.b_parent.(id) <- p;
    b.b_depth.(id) <- d;
    (match s with
    | T s ->
      b.b_tag.(id) <- text_tag;
      b.b_text.(id) <- s;
      b.b_subtree_end.(id) <- id + 1
    | E (tg, ats, _) ->
      if tg = "" then invalid_arg "Tree.of_source: empty tag name";
      b.b_tag.(id) <- intern it tg;
      b.b_attrs.(id) <- ats);
    id
  in
  let module F = struct
    type frame = { id : int; dp : int; mutable prev : int;
                   mutable todo : source list }
  end in
  let open F in
  let last_root = ref (-1) in
  List.iter
    (fun src ->
      let rid = alloc par dep src in
      if !last_root >= 0 then b.b_next_sibling.(!last_root) <- rid;
      last_root := rid;
      let stack =
        ref
          (match src with
          | T _ -> []
          | E (_, _, kids) -> [ { id = rid; dp = dep; prev = -1; todo = kids } ])
      in
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | frame :: rest ->
          (match frame.todo with
          | [] ->
            b.b_subtree_end.(frame.id) <- !next;
            stack := rest
          | kid :: more ->
            frame.todo <- more;
            let kid_id = alloc frame.id (frame.dp + 1) kid in
            if frame.prev < 0 then b.b_first_child.(frame.id) <- kid_id
            else b.b_next_sibling.(frame.prev) <- kid_id;
            frame.prev <- kid_id;
            (match kid with
            | T _ -> ()
            | E (_, _, kids) ->
              stack :=
                { id = kid_id; dp = frame.dp + 1; prev = -1; todo = kids }
                :: !stack))
      done)
    srcs;
  !last_root

(* Comparison value of an element from its immediate children.
   Tail-recursive over the sibling chain — an element may have millions
   of children, and one frame each would blow the stack.  Strings are
   shared, not copied: a single text child's value *is* that child's
   string, and the all-elements case borrows the empty string — only
   mixed-content elements allocate. *)
let concat_child_texts b c0 =
  let rec texts acc c =
    if c < 0 then List.rev acc
    else
      texts
        (if b.b_tag.(c) = text_tag then b.b_text.(c) :: acc else acc)
        b.b_next_sibling.(c)
  in
  match texts [] c0 with
  | [] -> ""
  | [ s ] -> s
  | pieces -> String.concat "" pieces

(* Comparison values, filled before the tree is published (see the
   invariant on [t]). *)
let fill_values b value ~lo ~hi =
  for i = hi - 1 downto lo do
    value.(i) <-
      (if b.b_tag.(i) = text_tag then b.b_text.(i)
       else concat_child_texts b b.b_first_child.(i))
  done

let freeze b value (tag_names, tag_ids, tags_token) =
  {
    tag = b.b_tag;
    parent = b.b_parent;
    first_child = b.b_first_child;
    next_sibling = b.b_next_sibling;
    subtree_end = b.b_subtree_end;
    depth = b.b_depth;
    text = b.b_text;
    attrs = b.b_attrs;
    tag_names;
    tag_ids;
    value;
    tags_token;
  }

let build ?seed src =
  let n = count_nodes src in
  let b = make_builder n in
  let it =
    match seed with
    | Some t0 -> interner_of_seed t0
    | None -> fresh_interner ()
  in
  ignore (fill_range b it ~start:0 ~par:(-1) ~dep:0 [ src ]);
  let value = Array.make n "" in
  fill_values b value ~lo:0 ~hi:n;
  freeze b value (finalize_interner it ~seed)

let of_source src = build src

(* [splice t ~lo ~old_hi ~par ~prev ~nxt srcs] replaces the node range
   [lo, old_hi) — zero or more whole consecutive sibling subtrees under
   [par] — with the subtrees described by [srcs].  [prev] is the child of
   [par] immediately preceding the range (-1 when the range starts at
   [par]'s first child), [nxt] the sibling immediately following it (-1
   when it ends the chain); both in old ids.  Ids below [lo] are stable,
   ids at or above [old_hi] shift by the size delta; everything outside
   the edited range is blitted, not re-walked, and tag ids stay aligned
   with the input tree (new tags are appended). *)
let splice t ~lo ~old_hi ~par ~prev ~nxt srcs =
  let n_old = n_nodes t in
  let m = List.fold_left (fun acc s -> acc + count_nodes s) 0 srcs in
  let removed = old_hi - lo in
  let shift = m - removed in
  let n_new = n_old + shift in
  let b = make_builder n_new in
  let value = Array.make n_new "" in
  (* Ancestors of [par] (inclusive), to disambiguate the subtree_end
     boundary case below when the replaced range is empty (an insert): a
     prefix subtree ending exactly at [lo] contains the new nodes iff it
     is an ancestor's. *)
  let anc = Hashtbl.create 16 in
  let a = ref par in
  while !a >= 0 do
    Hashtbl.replace anc !a ();
    a := t.parent.(!a)
  done;
  (* Prefix [0, lo): only pointers into the suffix shift.  [parent] slots
     all point backwards; [first_child] is node + 1 or -1, never past
     [lo]. *)
  Array.blit t.tag 0 b.b_tag 0 lo;
  Array.blit t.parent 0 b.b_parent 0 lo;
  Array.blit t.first_child 0 b.b_first_child 0 lo;
  Array.blit t.depth 0 b.b_depth 0 lo;
  Array.blit t.text 0 b.b_text 0 lo;
  Array.blit t.attrs 0 b.b_attrs 0 lo;
  Array.blit t.value 0 value 0 lo;
  for q = 0 to lo - 1 do
    let ns = t.next_sibling.(q) in
    b.b_next_sibling.(q) <- (if ns >= old_hi then ns + shift else ns);
    let se = t.subtree_end.(q) in
    b.b_subtree_end.(q) <-
      (if se > old_hi || (se = old_hi && (removed > 0 || Hashtbl.mem anc q))
       then se + shift
       else se)
  done;
  (* The new middle [lo, lo + m). *)
  let it = interner_of_seed t in
  let last_root = fill_range b it ~start:lo ~par ~dep:(t.depth.(par) + 1) srcs in
  (* Suffix [old_hi, n_old), shifted.  A suffix node's parent is either
     an ancestor of the range (below [lo]) or in the suffix — never
     inside the replaced range. *)
  let slen = n_old - old_hi in
  Array.blit t.tag old_hi b.b_tag (old_hi + shift) slen;
  Array.blit t.depth old_hi b.b_depth (old_hi + shift) slen;
  Array.blit t.text old_hi b.b_text (old_hi + shift) slen;
  Array.blit t.attrs old_hi b.b_attrs (old_hi + shift) slen;
  Array.blit t.value old_hi value (old_hi + shift) slen;
  for s = old_hi to n_old - 1 do
    let d = s + shift in
    let p = t.parent.(s) in
    b.b_parent.(d) <- (if p >= old_hi then p + shift else p);
    let fc = t.first_child.(s) in
    b.b_first_child.(d) <- (if fc >= 0 then fc + shift else -1);
    let ns = t.next_sibling.(s) in
    b.b_next_sibling.(d) <- (if ns >= 0 then ns + shift else -1);
    b.b_subtree_end.(d) <- t.subtree_end.(s) + shift
  done;
  (* Splice the sibling chain back together. *)
  let new_next = if nxt < 0 then -1 else nxt + shift in
  let head = if m > 0 then lo else new_next in
  if last_root >= 0 then b.b_next_sibling.(last_root) <- new_next;
  if prev >= 0 then b.b_next_sibling.(prev) <- head
  else begin
    let ofc = t.first_child.(par) in
    if ofc = lo || ofc < 0 then b.b_first_child.(par) <- head
  end;
  fill_values b value ~lo ~hi:(lo + m);
  (* [par]'s immediate text children may have changed. *)
  value.(par) <- concat_child_texts b b.b_first_child.(par);
  freeze b value (finalize_interner it ~seed:(Some t))

let prev_sibling_in t par n =
  let prev = ref (-1) and c = ref t.first_child.(par) in
  while !c >= 0 && !c <> n do
    prev := !c;
    c := t.next_sibling.(!c)
  done;
  if !c <> n then invalid_arg "Tree: node is not a child of its parent";
  !prev

let last_child_of t par =
  let last = ref (-1) and c = ref t.first_child.(par) in
  while !c >= 0 do
    last := !c;
    c := t.next_sibling.(!c)
  done;
  !last

let delete_subtree t n =
  check t n;
  if n = root then invalid_arg "Tree.delete_subtree: cannot delete the root";
  let par = t.parent.(n) in
  splice t ~lo:n ~old_hi:t.subtree_end.(n) ~par
    ~prev:(prev_sibling_in t par n) ~nxt:t.next_sibling.(n) []

let replace_subtree t n src =
  check t n;
  if n = root then build ~seed:t src
  else
    let par = t.parent.(n) in
    splice t ~lo:n ~old_hi:t.subtree_end.(n) ~par
      ~prev:(prev_sibling_in t par n) ~nxt:t.next_sibling.(n) [ src ]

let insert_subtree t ~parent:par ?before src =
  check t par;
  if is_text t par then
    invalid_arg "Tree.insert_subtree: parent is a text node";
  match before with
  | Some b ->
    check t b;
    if b = root || t.parent.(b) <> par then
      invalid_arg "Tree.insert_subtree: ~before is not a child of ~parent";
    splice t ~lo:b ~old_hi:b ~par ~prev:(prev_sibling_in t par b) ~nxt:b
      [ src ]
  | None ->
    let pos = t.subtree_end.(par) in
    splice t ~lo:pos ~old_hi:pos ~par ~prev:(last_child_of t par) ~nxt:(-1)
      [ src ]

let subtree_element_names t n =
  let stop = subtree_end t n in
  let seen = Hashtbl.create 8 and acc = ref [] in
  for i = n to stop - 1 do
    let tg = t.tag.(i) in
    if tg <> text_tag && not (Hashtbl.mem seen tg) then begin
      Hashtbl.add seen tg ();
      acc := t.tag_names.(tg) :: !acc
    end
  done;
  List.rev !acc

let source_element_names src =
  let seen = Hashtbl.create 8 and acc = ref [] in
  let work = ref [ src ] and continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | T _ :: rest -> work := rest
    | E (tg, _, kids) :: rest ->
      if not (Hashtbl.mem seen tg) then begin
        Hashtbl.add seen tg ();
        acc := tg :: !acc
      end;
      work := List.rev_append kids rest
  done;
  List.rev !acc

let rec to_source t n =
  if is_text t n then T (text_content t n)
  else
    let kids = List.map (to_source t) (children t n) in
    E (name t n, attributes t n, kids)

let rec source_equal a b =
  match a, b with
  | T x, T y -> String.equal x y
  | E (ta, aa, ka), E (tb, ab, kb) ->
    String.equal ta tb
    && List.length aa = List.length ab
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
         aa ab
    && List.length ka = List.length kb
    && List.for_all2 source_equal ka kb
  | T _, E _ | E _, T _ -> false

let equal a b =
  n_nodes a = n_nodes b && source_equal (to_source a root) (to_source b root)

let rec pp_source ppf = function
  | T s -> Fmt.pf ppf "%S" s
  | E (tg, _, kids) ->
    Fmt.pf ppf "@[<hov 1><%s%a>@]" tg
      (fun ppf kids ->
        List.iter (fun k -> Fmt.pf ppf "@ %a" pp_source k) kids)
      kids

let pp ppf t = pp_source ppf (to_source t root)
