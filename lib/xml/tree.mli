(** In-memory XML documents (the DOM mode of SMOQE).

    A document is an ordered, unranked tree of element and text nodes.
    Nodes are identified by their pre-order rank, so the subtree rooted at a
    node occupies a contiguous id range — the property both the TAX index
    and the Cans candidate store exploit.  Element tags are interned to
    small integers ([tag id]s) shared with the automata and the index. *)

type t
(** An immutable XML document.  Deeply immutable: nothing in a [t] is
    written after {!of_source} returns (comparison {!value} spans are
    precomputed there, not memoized lazily), so a tree may be read from
    any number of domains in parallel without synchronization.

    The representation is packed (DESIGN.md §15): structure is flat
    pre-order int arrays, and all content — text, attribute values,
    comparison values — lives as [(offset, length)] spans into two
    shared byte regions (the document arena and a decoded-segment
    appendix).  Accessors returning strings materialize a copy on
    demand; the [_slice]/[_equal]/[iter_] variants read in place. *)

type node = int
(** A node id: the pre-order rank of the node, starting at [root = 0]. *)

val root : node

type source =
  | E of string * (string * string) list * source list
      (** [E (tag, attributes, children)] *)
  | T of string  (** A text node. *)

(** {1 Construction} *)

val of_source : source -> t
(** Build a document from a nested description.  Raises [Invalid_argument]
    on an empty tag name. *)

(** Streaming construction, for builders that already hold the document
    bytes: the parser pushes structure events and [(offset, length)]
    spans ([off >= 0] into [~arena], [off < 0] at [lnot off] into
    [~appendix] — {!Pull}'s raw-span coding), and no intermediate
    {!source} or per-node string is ever allocated.  Events must be
    well-formed (balanced, single root, attributes directly after their
    [start_element]) — {!Pull} guarantees that. *)
module Builder : sig
  type b

  val create : unit -> b
  val start_element : b -> string -> unit
  val attr : b -> string -> int -> int -> unit
  val text : b -> int -> int -> unit
  val end_element : b -> unit

  val finish : b -> arena:string -> appendix:string -> t
  (** Freeze into a tree whose content spans index [arena]/[appendix]
      directly — the caller's byte regions become the tree's, no copy. *)
end

val to_source : t -> node -> source
(** Re-export the subtree rooted at a node as a nested description. *)

val text_tag : int
(** The reserved tag id of text nodes (its name is ["#text"]). *)

(** {1 Functional updates}

    Each operation returns a {e new} tree; the input is never written
    (see the immutability invariant on [t]).  Node ids keep their
    pre-order meaning: ids below the edited range are unchanged, ids at
    or after it shift by the size delta.  Tag interning is {e stable}:
    ids of the input tree's tags are preserved, tags first seen in the
    inserted material are appended, and when the edit interns no new tag
    the result shares the input's tag table and {!tags_token} — which is
    what lets frozen per-tag transition tables survive the update.
    All three raise [Invalid_argument] on out-of-range or structurally
    invalid targets (deleting the root, inserting under a text node,
    [?before] not a child of [~parent]). *)

val delete_subtree : t -> node -> t
(** Remove the whole subtree rooted at a node (not the root). *)

val replace_subtree : t -> node -> source -> t
(** Replace the whole subtree rooted at a node.  Replacing the root
    rebuilds the document but still keeps tag interning stable. *)

val insert_subtree : t -> parent:node -> ?before:node -> source -> t
(** Insert a new subtree as a child of [~parent], immediately before the
    existing child [?before], or as the last child when omitted. *)

val tags_token : t -> int
(** Identity of the tag-interning lineage.  Two trees with equal tokens
    have byte-identical tag tables (the same names at the same ids), so
    artifacts keyed by tag id — the frozen transition tables, the TAX
    bit rows — built against one are tag-aligned with the other.
    {!of_source} mints a fresh token; the functional updates above
    preserve it exactly when they intern no new tag. *)

val subtree_element_names : t -> node -> string list
(** Distinct element names occurring in the subtree of a node, in first-
    occurrence order ([#text] excluded). *)

val source_element_names : source -> string list
(** Distinct element names occurring in a source description. *)

(** {1 Structure} *)

val n_nodes : t -> int

val is_element : t -> node -> bool
val is_text : t -> node -> bool

val tag_id : t -> node -> int
(** Interned tag of a node; [text_tag] for text nodes. *)

val tag_name : t -> int -> string
(** Name of an interned tag.  Raises [Invalid_argument] on an unknown id. *)

val name : t -> node -> string
(** [name t n] is [tag_name t (tag_id t n)]. *)

val id_of_tag : t -> string -> int option
(** Look up the id of a tag name, if any node of the document uses it. *)

val n_tags : t -> int
(** Number of distinct tags, text included. *)

val parent : t -> node -> node option
(** [None] exactly for the root. *)

val first_child : t -> node -> node option
val next_sibling : t -> node -> node option

val children : t -> node -> node list

val iter_children : t -> node -> (node -> unit) -> unit
val fold_children : t -> node -> init:'a -> f:('a -> node -> 'a) -> 'a

val subtree_end : t -> node -> node
(** [subtree_end t n] is the first id after the subtree of [n]; the subtree
    of [n] is exactly the range [n .. subtree_end t n - 1]. *)

val subtree_size : t -> node -> int

val depth : t -> node -> int
(** Distance from the root (the root has depth 0). *)

val attributes : t -> node -> (string * string) list
(** Attributes of an element, in document order; [[]] for text nodes.
    Materializes a fresh list — prefer {!iter_attrs} on hot paths. *)

val attribute : t -> node -> string -> string option

val iter_attrs : t -> node -> (string -> string -> int -> int -> unit) -> unit
(** [iter_attrs t n f] calls [f name backing off len] for each attribute
    in document order — the value is the slice [backing[off, off+len)],
    read in place with no copy. *)

(** {1 Content} *)

val text_content : t -> node -> string
(** Content of a text node; [""] for elements.  Materializes a copy —
    prefer {!content_slice} on hot paths. *)

val value : t -> node -> string
(** The comparison value of a node, as used by Regular XPath equality
    tests: a text node's content, or the concatenation of an element's
    immediate text children.  The span is precomputed at construction
    (safe under parallel evaluation); this accessor copies it out —
    prefer {!value_equal} or {!content_slice} on hot paths. *)

val value_equal : t -> node -> string -> bool
(** [value_equal t n s] is [String.equal (value t n) s] without
    materializing the value. *)

val content_slice : t -> node -> string * int * int
(** [(backing, off, len)] — the {!value} span of a node (= its content
    for a text node), read in place with no copy.  The backing string is
    one of the tree's immutable byte regions: it stays valid as long as
    the tree does. *)

val descendant_or_self_texts : t -> node -> string
(** Full XPath-style string value: concatenation of all text descendants. *)

(** {1 Traversal} *)

val iter_preorder : t -> (node -> unit) -> unit

val fold_preorder : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val equal : t -> t -> bool
(** Structural equality of documents (tags, texts and attributes; interned
    ids may differ). *)

val pp : Format.formatter -> t -> unit
(** One-line rendering for debugging; use {!Serializer} for real output. *)
