(** Convenience DOM parsing: {!Pull} events folded into a {!Tree}. *)

val tree_of_string :
  ?keep_ws:bool -> ?budget:Smoqe_robust.Budget.t -> string -> Tree.t
(** Parse a complete document.  Raises {!Pull.Error} on malformed input
    and [Smoqe_robust.Budget.Exceeded] when [budget] trips. *)

val tree_of_channel :
  ?keep_ws:bool -> ?budget:Smoqe_robust.Budget.t -> in_channel -> Tree.t

val tree_of_file :
  ?keep_ws:bool -> ?budget:Smoqe_robust.Budget.t -> string -> Tree.t

val tree_of_string_res :
  ?keep_ws:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  string ->
  (Tree.t, string) result
(** Like {!tree_of_string}, but parse errors (with line/column) and
    malformed structure come back as [Error] instead of raising.  Budget
    trips come back as [Error] too (rendered); pathological nesting is
    not an error at all — tree construction is worklist-based, so only
    the [max_depth] budget limits depth.  Exceptions other than the parse
    path's own ([Pull.Error], [Sys_error], budget and failpoint trips)
    are {e not} swallowed. *)

val tree_of_file_res :
  ?keep_ws:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  string ->
  (Tree.t, string) result
(** Like {!tree_of_file}; error messages are prefixed ["file:line:col:"]. *)

val tree_of_events : Pull.event list -> Tree.t
(** Build from an already-produced event list.  Raises {!Pull.Error}
    (at the conventional location 0:0, since there is no input text) if
    the events are not balanced around a single root. *)

val events_of_tree : Tree.t -> Pull.event list
(** The event stream a streaming parse of the serialized tree would
    produce (text nodes emitted as-is).  Worklist-based: safe on
    arbitrarily deep documents. *)
