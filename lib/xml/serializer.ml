let needs_entity ~quotes c =
  match c with
  | '&' | '<' | '>' -> true
  | '"' | '\'' -> quotes
  | _ -> false

(* Slice-wise escape straight into a buffer: scan for the first byte that
   needs an entity, and in the common clean case the whole slice is one
   [Buffer.add_substring] — no intermediate string either way. *)
let add_escaped ~quotes buf s off len =
  let stop = off + len in
  let i = ref off in
  while !i < stop && not (needs_entity ~quotes (String.unsafe_get s !i)) do
    incr i
  done;
  if !i = stop then Buffer.add_substring buf s off len
  else begin
    Buffer.add_substring buf s off (!i - off);
    for j = !i to stop - 1 do
      match String.unsafe_get s j with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quotes -> Buffer.add_string buf "&quot;"
      | '\'' when quotes -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c
    done
  end

let add_escaped_text buf s off len = add_escaped ~quotes:false buf s off len
let add_escaped_attr buf s off len = add_escaped ~quotes:true buf s off len

let escape ~quotes s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && not (needs_entity ~quotes (String.unsafe_get s !i)) do
    incr i
  done;
  if !i = n then s
  else begin
    let buf = Buffer.create (n + 8) in
    add_escaped ~quotes buf s 0 n;
    Buffer.contents buf
  end

let escape_text s = escape ~quotes:false s
let escape_attr s = escape ~quotes:true s

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      add_escaped_attr buf v 0 (String.length v);
      Buffer.add_char buf '"')
    attrs

(* Tree attributes, read in place through the packed spans. *)
let add_tree_attrs buf t n =
  Tree.iter_attrs t n (fun k backing off len ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      add_escaped_attr buf backing off len;
      Buffer.add_char buf '"')

let add_text_content buf t n =
  let backing, off, len = Tree.content_slice t n in
  add_escaped_text buf backing off len

(* Worklist, not native recursion: serialization must follow the parser
   in treating document depth as data, never as OCaml stack (DESIGN.md
   §12). *)
type ser_item = Node of int * Tree.node | Close of int * string

let subtree_to_buf ~indent buf t start =
  let pad level =
    if indent then
      for _ = 1 to 2 * level do
        Buffer.add_char buf ' '
      done
  in
  let work = ref [ Node (0, start) ] in
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | Close (level, tag) :: rest ->
      work := rest;
      pad level;
      Buffer.add_string buf "</";
      Buffer.add_string buf tag;
      Buffer.add_char buf '>';
      if indent then Buffer.add_char buf '\n'
    | Node (level, n) :: rest ->
      work := rest;
      if Tree.is_text t n then begin
        pad level;
        add_text_content buf t n;
        if indent then Buffer.add_char buf '\n'
      end
      else begin
        let tag = Tree.name t n in
        pad level;
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        add_tree_attrs buf t n;
        match Tree.children t n with
        | [] ->
          Buffer.add_string buf "/>";
          if indent then Buffer.add_char buf '\n'
        | [ only ] when Tree.is_text t only ->
          Buffer.add_char buf '>';
          add_text_content buf t only;
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_char buf '>';
          if indent then Buffer.add_char buf '\n'
        | kids ->
          Buffer.add_char buf '>';
          if indent then Buffer.add_char buf '\n';
          work :=
            List.fold_left
              (fun tail k -> Node (level + 1, k) :: tail)
              (Close (level, tag) :: !work)
              (List.rev kids)
      end
  done

let to_string ?(indent = true) ?(decl = false) t =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  subtree_to_buf ~indent buf t Tree.root;
  Buffer.contents buf

let subtree_to_string ?(indent = true) t n =
  let buf = Buffer.create 256 in
  subtree_to_buf ~indent buf t n;
  Buffer.contents buf

let to_channel ?indent ?decl oc t =
  output_string oc (to_string ?indent ?decl t)

let to_file ?indent ?decl path t =
  let oc = open_out_bin path in
  match to_channel ?indent ?decl oc t with
  | () -> close_out oc
  | exception e -> close_out_noerr oc; raise e

let events_to_string events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      match ev with
      | Pull.Start_element (tag, attrs) ->
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        add_attrs buf attrs;
        Buffer.add_char buf '>'
      | Pull.End_element tag ->
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      | Pull.Text s -> Buffer.add_string buf (escape_text s))
    events;
  Buffer.contents buf
