exception Error of int * string

type state = { src : string; mutable pos : int }

let err st msg = raise (Error (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* Index-wise prefix test: no [String.sub] allocation per probe. *)
let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src
  &&
  let i = ref 0 in
  while !i < n && String.unsafe_get st.src (st.pos + !i) = String.unsafe_get s !i do
    incr i
  done;
  !i = n

let rec skip_ws_and_comments st =
  (match peek st with
  | Some c when is_ws c ->
    advance st;
    skip_ws_and_comments st
  | Some '<' when looking_at st "<!--" ->
    st.pos <- st.pos + 4;
    let rec close () =
      if st.pos + 2 >= String.length st.src then err st "unterminated comment"
      else if looking_at st "-->" then st.pos <- st.pos + 3
      else begin
        advance st;
        close ()
      end
    in
    close ();
    skip_ws_and_comments st
  | Some _ | None -> ())

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> err st (Printf.sprintf "expected %C, found %C" c got)
  | None -> err st (Printf.sprintf "expected %C, found end of input" c)

let expect_str st s = String.iter (expect st) s

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | Some c -> err st (Printf.sprintf "invalid name start %C" c)
  | None -> err st "expected a name, found end of input");
  let rec loop () =
    match peek st with
    | Some c when is_name_char c -> advance st; loop ()
    | Some _ | None -> ()
  in
  loop ();
  String.sub st.src start (st.pos - start)

let read_quantifier st base =
  match peek st with
  | Some '*' -> advance st; Dtd.Star base
  | Some '+' -> advance st; Dtd.Plus base
  | Some '?' -> advance st; Dtd.Opt base
  | Some _ | None -> base

(* cp ::= (name | '(' choice-or-seq ')') quant?  *)
let rec read_cp st =
  skip_ws_and_comments st;
  let base =
    match peek st with
    | Some '(' ->
      advance st;
      let inner = read_group st in
      skip_ws_and_comments st;
      expect st ')';
      inner
    | Some c when is_name_start c -> Dtd.Name (read_name st)
    | Some c -> err st (Printf.sprintf "unexpected %C in content model" c)
    | None -> err st "unexpected end of input in content model"
  in
  read_quantifier st base

and read_group st =
  let first = read_cp st in
  skip_ws_and_comments st;
  match peek st with
  | Some ',' ->
    let rec seq acc =
      skip_ws_and_comments st;
      match peek st with
      | Some ',' ->
        advance st;
        seq (Dtd.Seq (acc, read_cp st))
      | Some _ | None -> acc
    in
    seq first
  | Some '|' ->
    let rec alt acc =
      skip_ws_and_comments st;
      match peek st with
      | Some '|' ->
        advance st;
        alt (Dtd.Alt (acc, read_cp st))
      | Some _ | None -> acc
    in
    alt first
  | Some _ | None -> first

let read_mixed st =
  (* "#PCDATA" already consumed; parse ('|' name)* ')' '*'? *)
  let rec names acc =
    skip_ws_and_comments st;
    match peek st with
    | Some '|' ->
      advance st;
      skip_ws_and_comments st;
      names (read_name st :: acc)
    | Some ')' ->
      advance st;
      (match peek st with
      | Some '*' -> advance st
      | Some _ | None ->
        if acc <> [] then err st "mixed content with names requires a trailing *");
      List.rev acc
    | Some c -> err st (Printf.sprintf "unexpected %C in mixed content" c)
    | None -> err st "unexpected end of input in mixed content"
  in
  names []

let read_content st =
  skip_ws_and_comments st;
  if looking_at st "EMPTY" then begin
    st.pos <- st.pos + 5;
    Dtd.Empty
  end
  else if looking_at st "ANY" then begin
    st.pos <- st.pos + 3;
    Dtd.Any
  end
  else begin
    expect st '(';
    skip_ws_and_comments st;
    if looking_at st "#PCDATA" then begin
      st.pos <- st.pos + 7;
      Dtd.Mixed (read_mixed st)
    end
    else begin
      let r = read_group st in
      skip_ws_and_comments st;
      expect st ')';
      match read_quantifier st (Dtd.Name "!") with
      | Dtd.Star _ -> Dtd.Children (Dtd.Star r)
      | Dtd.Plus _ -> Dtd.Children (Dtd.Plus r)
      | Dtd.Opt _ -> Dtd.Children (Dtd.Opt r)
      | _ -> Dtd.Children r
    end
  end

(* Skip a declaration we do not model (<!ATTLIST ...>, <!ENTITY ...>). *)
let skip_declaration st =
  let rec loop () =
    match peek st with
    | Some '>' -> advance st
    | Some _ -> advance st; loop ()
    | None -> err st "unterminated declaration"
  in
  loop ()

let read_element_decl st =
  expect_str st "<!ELEMENT";
  skip_ws_and_comments st;
  let name = read_name st in
  let content = read_content st in
  skip_ws_and_comments st;
  expect st '>';
  (name, content)

let read_declarations st stop_at_bracket =
  let rec loop acc =
    skip_ws_and_comments st;
    match peek st with
    | None -> List.rev acc
    | Some ']' when stop_at_bracket -> List.rev acc
    | Some '<' ->
      if looking_at st "<!ELEMENT" then loop (read_element_decl st :: acc)
      else if looking_at st "<!ATTLIST" || looking_at st "<!ENTITY"
              || looking_at st "<!NOTATION" || looking_at st "<?" then begin
        skip_declaration st;
        loop acc
      end
      else err st "expected a declaration"
    | Some c -> err st (Printf.sprintf "unexpected %C" c)
  in
  loop []

let of_string ?root input =
  let st = { src = input; pos = 0 } in
  skip_ws_and_comments st;
  if looking_at st "<!DOCTYPE" then begin
    st.pos <- st.pos + String.length "<!DOCTYPE";
    skip_ws_and_comments st;
    let doc_root = read_name st in
    skip_ws_and_comments st;
    expect st '[';
    let prods = read_declarations st true in
    expect st ']';
    skip_ws_and_comments st;
    expect st '>';
    let root = Option.value root ~default:doc_root in
    Dtd.create ~root prods
  end
  else begin
    let prods = read_declarations st false in
    match prods, root with
    | [], _ -> err st "no element declarations"
    | (first, _) :: _, None -> Dtd.create ~root:first prods
    | _, Some root -> Dtd.create ~root prods
  end

let of_file ?root path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string ?root s
