(* Folding pull events into a Tree.source, then into a Tree.  The stack
   holds, for each open element, its tag, attributes and the reversed list
   of children built so far. *)

type frame = { tag : string; attrs : (string * string) list;
               mutable rev_kids : Tree.source list }

(* Structural violations in the event stream fail with a positioned
   {!Pull.Error}, never [Invalid_argument]: when the events come from a
   live parse, [pos] reports the lexer's line/column; for a caller-built
   event list ({!tree_of_events}) there is no input text and the location
   is the conventional 0:0. *)
let build_from ?pos next =
  let fail msg =
    let line, col = match pos with Some f -> f () | None -> (0, 0) in
    raise (Pull.Error (line, col, msg))
  in
  let stack : frame list ref = ref [] in
  let result = ref None in
  let push_kid kid =
    match !stack with
    | [] ->
      (match kid with
      | Tree.E _ ->
        if !result <> None then fail "event stream has more than one root";
        result := Some kid
      | Tree.T _ -> fail "text event outside the root element")
    | frame :: _ -> frame.rev_kids <- kid :: frame.rev_kids
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some ev ->
      (match ev with
      | Pull.Start_element (tag, attrs) ->
        stack := { tag; attrs; rev_kids = [] } :: !stack
      | Pull.End_element tag ->
        (match !stack with
        | [] -> fail (Printf.sprintf "end event </%s> with no open element" tag)
        | frame :: rest ->
          if frame.tag <> tag then
            fail
              (Printf.sprintf "end event </%s> does not match <%s>" tag
                 frame.tag);
          stack := rest;
          push_kid (Tree.E (frame.tag, frame.attrs, List.rev frame.rev_kids)))
      | Pull.Text s -> push_kid (Tree.T s));
      loop ()
  in
  loop ();
  (match !stack with
  | [] -> ()
  | frame :: _ -> fail (Printf.sprintf "unclosed element <%s>" frame.tag));
  match !result with
  | None -> fail "empty event stream"
  | Some src -> Tree.of_source src

(* The DOM fast path: the parser runs in retain mode, so its byte region
   is the finished tree's arena and its scratch the appendix — the
   cursor's raw spans are stored verbatim by [Tree.Builder] and not one
   content string is allocated on the way.  Well-formedness (balance,
   single root) is enforced by the pull parser itself, which raises
   positioned [Pull.Error]s exactly as before. *)
let build_retained p =
  let b = Tree.Builder.create () in
  let rec loop () =
    match Pull.cursor_next p with
    | Pull.Cursor_eof -> ()
    | Pull.Cursor_start ->
      Tree.Builder.start_element b (Pull.cur_name p);
      for i = 0 to Pull.cur_attr_count p - 1 do
        let off, len = Pull.cur_attr_raw p i in
        Tree.Builder.attr b (Pull.cur_attr_name p i) off len
      done;
      loop ()
    | Pull.Cursor_end ->
      Tree.Builder.end_element b;
      loop ()
    | Pull.Cursor_text ->
      let off, len = Pull.cur_text_raw p in
      Tree.Builder.text b off len;
      loop ()
  in
  loop ();
  Tree.Builder.finish b ~arena:(Pull.retained p)
    ~appendix:(Pull.scratch_contents p)

let tree_of_string ?keep_ws ?budget s =
  build_retained (Pull.of_string ?keep_ws ?budget ~retain:true s)

let tree_of_channel ?keep_ws ?budget ic =
  build_retained (Pull.of_channel ?keep_ws ?budget ~retain:true ic)

let tree_of_file ?keep_ws ?budget path =
  let ic = open_in_bin path in
  match tree_of_channel ?keep_ws ?budget ic with
  | t -> close_in ic; t
  | exception e -> close_in_noerr ic; raise e

(* Result-returning variants: the raise/result split of this module used to
   force every caller to re-enumerate the parser's exceptions.  The match
   is deliberately narrow — only the exceptions the parse path is
   specified to produce.  [Invalid_argument] in particular is NOT caught:
   since build_from raises positioned Pull.Errors and Tree construction is
   worklist-based, an [Invalid_argument] here is a bug in a deeper layer
   that must surface, not be laundered into a parse failure. *)
let res_of ?file f =
  match f () with
  | t -> Ok t
  | exception Pull.Error (line, col, msg) ->
    Error
      (match file with
      | Some path -> Printf.sprintf "%s:%d:%d: %s" path line col msg
      | None -> Printf.sprintf "%d:%d: %s" line col msg)
  | exception Sys_error msg -> Error msg
  | exception Smoqe_robust.Budget.Exceeded { what; limit } ->
    Error (Printf.sprintf "budget exceeded: %s (limit %s)" what limit)
  | exception Smoqe_robust.Failpoint.Injected site ->
    Error ("injected fault at " ^ site)

let tree_of_string_res ?keep_ws ?budget s =
  res_of (fun () -> tree_of_string ?keep_ws ?budget s)

let tree_of_file_res ?keep_ws ?budget path =
  res_of ~file:path (fun () -> tree_of_file ?keep_ws ?budget path)

let tree_of_events events =
  let remaining = ref events in
  let next () =
    match !remaining with
    | [] -> None
    | ev :: rest -> remaining := rest; Some ev
  in
  build_from next

(* Explicit worklist, not native recursion: document depth must never be
   limited by the OCaml stack (DESIGN.md §12) — the [max_depth] budget is
   the only depth limit anywhere in the parse pipeline. *)
type walk_item = Visit of Tree.node | Close of string

let events_of_tree t =
  let acc = ref [] in
  let work = ref [ Visit Tree.root ] in
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | Close tag :: rest ->
      work := rest;
      acc := Pull.End_element tag :: !acc
    | Visit n :: rest ->
      if Tree.is_text t n then begin
        work := rest;
        acc := Pull.Text (Tree.text_content t n) :: !acc
      end
      else begin
        let tag = Tree.name t n in
        acc := Pull.Start_element (tag, Tree.attributes t n) :: !acc;
        work :=
          List.fold_left
            (fun tail c -> Visit c :: tail)
            (Close tag :: rest)
            (List.rev (Tree.children t n))
      end
  done;
  List.rev !acc
