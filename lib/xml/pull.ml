module Budget = Smoqe_robust.Budget
module Failpoint = Smoqe_robust.Failpoint

type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Text of string

exception Error of int * int * string

(* A chunked reader with one character of lookahead.  [of_string] wraps the
   whole string as a single chunk; [of_channel] refills a fixed buffer, so
   arbitrarily large documents are scanned in constant memory. *)
type reader = {
  mutable buf : string;
  mutable pos : int;
  mutable len : int;
  refill : unit -> string; (* "" at end of input *)
  mutable line : int;
  mutable col : int;
}

type t = {
  rd : reader;
  keep_ws : bool;
  budget : Budget.t option;
  mutable stack : string list; (* open elements, innermost first *)
  mutable depth : int; (* length of [stack], kept incrementally *)
  mutable seen_root : bool;
  mutable seen_doctype : bool;
  mutable at_start : bool; (* before the first byte: BOM goes here *)
  mutable finished : bool;
  mutable pending : event option; (* one event of push-back *)
}

let chunk_size = 65536

let reader_of_string s =
  { buf = s; pos = 0; len = String.length s; refill = (fun () -> "");
    line = 1; col = 1 }

let reader_of_channel ic =
  let refill () =
    let b = Bytes.create chunk_size in
    let n = input ic b 0 chunk_size in
    if n = 0 then "" else Bytes.sub_string b 0 n
  in
  { buf = ""; pos = 0; len = 0; refill; line = 1; col = 1 }

let err rd msg = raise (Error (rd.line, rd.col, msg))

let peek rd =
  if rd.pos < rd.len then Some rd.buf.[rd.pos]
  else begin
    let chunk = rd.refill () in
    if chunk = "" then None
    else begin
      rd.buf <- chunk;
      rd.pos <- 0;
      rd.len <- String.length chunk;
      Some chunk.[0]
    end
  end

let advance rd =
  (match peek rd with
  | Some '\n' ->
    rd.line <- rd.line + 1;
    rd.col <- 1
  | Some _ -> rd.col <- rd.col + 1
  | None -> ());
  rd.pos <- rd.pos + 1

let read rd =
  match peek rd with
  | None -> err rd "unexpected end of input"
  | Some c -> advance rd; c

let expect rd c =
  let got = read rd in
  if got <> c then
    err rd (Printf.sprintf "expected %C, found %C" c got)

let expect_str rd s = String.iter (fun c -> expect rd c) s

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws rd =
  let rec loop () =
    match peek rd with
    | Some c when is_ws c -> advance rd; loop ()
    | Some _ | None -> ()
  in
  loop ()

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name rd =
  let buf = Buffer.create 12 in
  (match peek rd with
  | Some c when is_name_start c -> Buffer.add_char buf (read rd)
  | Some c -> err rd (Printf.sprintf "invalid name start %C" c)
  | None -> err rd "unexpected end of input in name");
  let rec loop () =
    match peek rd with
    | Some c when is_name_char c ->
      Buffer.add_char buf (read rd);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  Buffer.contents buf

(* The XML 1.0 Char production: anything else is not expressible in a
   well-formed document, even via a character reference. *)
let is_xml_char code =
  code = 0x9 || code = 0xA || code = 0xD
  || (code >= 0x20 && code <= 0xD7FF)
  || (code >= 0xE000 && code <= 0xFFFD)
  || (code >= 0x10000 && code <= 0x10FFFF)

(* Entity and character references.  This is an expansion site, so it
   carries its own failpoint and a hard cap on the digit run: a reference
   can never expand to more than four bytes, and its textual form is
   bounded too, so reference floods cost no more than the input itself. *)
let max_charref_digits = 10

let read_reference rd =
  (* '&' already consumed *)
  Failpoint.trigger "pull.ref";
  match peek rd with
  | Some '#' ->
    advance rd;
    let hex =
      match peek rd with
      | Some 'x' -> advance rd; true
      | Some _ | None -> false
    in
    let buf = Buffer.create 6 in
    let rec digits () =
      match peek rd with
      | Some c
        when (c >= '0' && c <= '9')
             || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))) ->
        if Buffer.length buf >= max_charref_digits then
          err rd "character reference out of range";
        Buffer.add_char buf (read rd);
        digits ()
      | Some _ | None -> ()
    in
    digits ();
    expect rd ';';
    let s = Buffer.contents buf in
    if s = "" then err rd "empty character reference";
    let code =
      try int_of_string (if hex then "0x" ^ s else s)
      with Failure _ -> err rd "invalid character reference"
    in
    if not (is_xml_char code) then
      err rd
        (Printf.sprintf "character reference &#%s%s; is not a legal XML \
                         character"
           (if hex then "x" else "") s);
    (* Encode as UTF-8. *)
    let b = Buffer.create 4 in
    (if code < 0x80 then Buffer.add_char b (Char.chr code)
     else if code < 0x800 then begin
       Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
     end
     else if code < 0x10000 then begin
       Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
       Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
     end
     else begin
       Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
       Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
       Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
     end);
    Buffer.contents b
  | Some _ ->
    let name = read_name rd in
    expect rd ';';
    (match name with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "apos" -> "'"
    | "quot" -> "\""
    | other -> err rd (Printf.sprintf "unknown entity &%s;" other))
  | None -> err rd "unexpected end of input in reference"

let read_attr_value rd =
  let quote = read rd in
  if quote <> '"' && quote <> '\'' then err rd "expected quoted attribute value";
  let buf = Buffer.create 16 in
  let rec loop () =
    match read rd with
    | c when c = quote -> Buffer.contents buf
    | '&' ->
      Buffer.add_string buf (read_reference rd);
      loop ()
    | '<' -> err rd "'<' in attribute value"
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let read_attributes rd =
  let rec loop acc =
    skip_ws rd;
    match peek rd with
    | Some ('/' | '>') | None -> List.rev acc
    | Some c when is_name_start c ->
      let key = read_name rd in
      skip_ws rd;
      expect rd '=';
      skip_ws rd;
      let v = read_attr_value rd in
      if List.mem_assoc key acc then
        err rd (Printf.sprintf "duplicate attribute %s" key);
      loop ((key, v) :: acc)
    | Some c -> err rd (Printf.sprintf "unexpected %C in tag" c)
  in
  loop []

(* Skip until the given terminator string has been consumed. *)
let skip_until rd terminator =
  let k = String.length terminator in
  let matched = ref 0 in
  while !matched < k do
    let c = read rd in
    if c = terminator.[!matched] then incr matched
    else if c = terminator.[0] then matched := 1
    else matched := 0
  done

let skip_comment rd = skip_until rd "-->"
let skip_pi rd = skip_until rd "?>"

(* Skip a DOCTYPE declaration, including a bracketed internal subset.
   Quoted literals are opaque — a '>' inside a SYSTEM id must not close
   the declaration — and a ']' without a matching '[' is malformed, not a
   license to scan to end of input. *)
let skip_doctype rd =
  let skip_literal q =
    let rec lit () = if read rd <> q then lit () in
    lit ()
  in
  let rec loop depth =
    match read rd with
    | ('"' | '\'') as q -> skip_literal q; loop depth
    | '[' -> loop (depth + 1)
    | ']' ->
      if depth = 0 then err rd "']' outside the internal subset in DOCTYPE"
      else loop (depth - 1)
    | '>' when depth = 0 -> ()
    | _ -> loop depth
  in
  loop 0

(* A UTF-8 byte-order mark before the prolog is legal and invisible;
   UTF-16/UTF-32 marks name an encoding this byte-level parser does not
   speak, which deserves a clear rejection rather than "text outside the
   root element". *)
let skip_bom rd =
  match peek rd with
  | Some '\xEF' ->
    advance rd;
    let b = read rd in
    let c = read rd in
    if b <> '\xBB' || c <> '\xBF' then err rd "malformed UTF-8 byte-order mark";
    rd.col <- 1
  | Some ('\xFE' | '\xFF' | '\x00') ->
    err rd "unsupported encoding (UTF-16/UTF-32 byte-order mark?)"
  | Some _ | None -> ()

let read_cdata rd =
  expect_str rd "CDATA[";
  let buf = Buffer.create 32 in
  let rec loop () =
    let c = read rd in
    if c = ']' then begin
      match peek rd with
      | Some ']' ->
        advance rd;
        let rec brackets () =
          (* "]]]>" should emit "]" then close: keep shifting. *)
          match peek rd with
          | Some '>' -> advance rd
          | Some ']' -> Buffer.add_char buf ']'; advance rd; brackets ()
          | Some _ | None ->
            Buffer.add_string buf "]]";
            loop ()
        in
        brackets ()
      | Some _ | None -> Buffer.add_char buf ']'; loop ()
    end
    else begin
      Buffer.add_char buf c;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let mk rd keep_ws budget =
  { rd; keep_ws; budget; stack = []; depth = 0; seen_root = false;
    seen_doctype = false; at_start = true; finished = false; pending = None }

let of_string ?(keep_ws = false) ?budget s =
  mk (reader_of_string s) keep_ws budget

let of_channel ?(keep_ws = false) ?budget ic =
  mk (reader_of_channel ic) keep_ws budget

let ws_only s =
  let ok = ref true in
  String.iter (fun c -> if not (is_ws c) then ok := false) s;
  !ok

let rec next_event t =
  match t.pending with
  | Some ev ->
    t.pending <- None;
    Some ev
  | None ->
    if t.finished then None
    else begin
      let rd = t.rd in
      if t.at_start then begin
        t.at_start <- false;
        skip_bom rd
      end;
      match peek rd with
      | None ->
        if t.stack <> [] then err rd "unexpected end of input: unclosed elements"
        else if not t.seen_root then err rd "empty document"
        else begin
          t.finished <- true;
          None
        end
      | Some '<' ->
        advance rd;
        (match peek rd with
        | Some '?' ->
          advance rd;
          skip_pi rd;
          next_event t
        | Some '!' ->
          advance rd;
          (match peek rd with
          | Some '-' ->
            expect_str rd "--";
            skip_comment rd;
            next_event t
          | Some '[' ->
            advance rd;
            if t.stack = [] then err rd "CDATA outside the root element";
            let s = read_cdata rd in
            if s = "" then next_event t else Some (Text s)
          | Some 'D' ->
            expect_str rd "DOCTYPE";
            if t.seen_root || t.stack <> [] then
              err rd "DOCTYPE is only allowed before the root element";
            if t.seen_doctype then err rd "multiple DOCTYPE declarations";
            t.seen_doctype <- true;
            skip_doctype rd;
            next_event t
          | Some c -> err rd (Printf.sprintf "unexpected <!%C" c)
          | None -> err rd "unexpected end of input after <!")
        | Some '/' ->
          advance rd;
          let tag = read_name rd in
          skip_ws rd;
          expect rd '>';
          (match t.stack with
          | [] -> err rd (Printf.sprintf "closing tag </%s> with no open element" tag)
          | top :: rest ->
            if top <> tag then
              err rd (Printf.sprintf "closing tag </%s> does not match <%s>" tag top);
            t.stack <- rest;
            t.depth <- t.depth - 1;
            Some (End_element tag))
        | Some _ ->
          let tag = read_name rd in
          let attrs = read_attributes rd in
          if t.stack = [] && t.seen_root then
            err rd "document has more than one root element";
          t.seen_root <- true;
          (match read rd with
          | '>' ->
            t.stack <- tag :: t.stack;
            t.depth <- t.depth + 1;
            Failpoint.trigger "pull.depth";
            (match t.budget with
            | None -> ()
            | Some b -> Budget.check_depth b t.depth);
            Some (Start_element (tag, attrs))
          | '/' ->
            expect rd '>';
            t.pending <- Some (End_element tag);
            Some (Start_element (tag, attrs))
          | c -> err rd (Printf.sprintf "unexpected %C in start tag" c))
        | None -> err rd "unexpected end of input after '<'")
      | Some _ ->
        let buf = Buffer.create 32 in
        let rec text () =
          match peek rd with
          | Some '<' | None -> ()
          | Some '&' ->
            advance rd;
            Buffer.add_string buf (read_reference rd);
            text ()
          | Some c -> advance rd; Buffer.add_char buf c; text ()
        in
        text ();
        let s = Buffer.contents buf in
        if t.stack = [] then
          if ws_only s then next_event t else err rd "text outside the root element"
        else if (not t.keep_ws) && ws_only s then next_event t
        else Some (Text s)
    end

(* The public entry: one failpoint branch (no-op unless armed) and one
   budget tick per event delivered. *)
let next t =
  Failpoint.trigger "pull.read";
  (match t.budget with None -> () | Some b -> Budget.tick_node b);
  next_event t

let fold t ~init ~f =
  let rec loop acc =
    match next t with None -> acc | Some ev -> loop (f acc ev)
  in
  loop init

let line t = t.rd.line
let column t = t.rd.col
