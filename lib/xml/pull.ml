module Budget = Smoqe_robust.Budget
module Failpoint = Smoqe_robust.Failpoint

type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Text of string

type signal = Cursor_start | Cursor_end | Cursor_text | Cursor_eof

exception Error of int * int * string

(* ------------------------------------------------------------------ *)
(* Reader: one growable byte region shared by the whole parse.

   All document bytes live in [buf]; [base] is the absolute stream offset
   of [buf.[0]], so an absolute offset [o] maps to [buf.[o - base]].
   Spans recorded by the lexer are absolute offsets — they survive the
   compaction below unchanged.

   Two retention policies:
   - window mode ([retain = false], the streaming default): on refill,
     bytes before [min pin pos] are discarded by sliding the live window
     to the front of [buf], so arbitrarily large documents parse in
     memory proportional to the largest single event.  [pin] is reset at
     the start of every event scan, which is what bounds the window.
   - retain mode ([retain = true], used by the DOM builder): nothing is
     ever discarded and [base] stays 0, so recorded spans double as
     offsets into the final document arena with no copy at all.  *)
type reader = {
  mutable buf : bytes;
  mutable pos : int; (* next unread byte, buffer-relative *)
  mutable len : int; (* valid bytes in [buf] *)
  mutable base : int; (* absolute stream offset of [buf.[0]] *)
  mutable eof : bool;
  read_more : bytes -> int -> int -> int; (* 0 = end of input *)
  retain : bool;
  mutable pin : int; (* absolute offset that must survive compaction *)
  mutable line : int;
  mutable col : int;
}

let chunk_size = 65536

let reader_of_string ~retain s =
  (* [Bytes.unsafe_of_string] is sound here: a string reader is created
     at eof, so [refill] never runs and the bytes are never written. *)
  {
    buf = Bytes.unsafe_of_string s;
    pos = 0;
    len = String.length s;
    base = 0;
    eof = true;
    read_more = (fun _ _ _ -> 0);
    retain;
    pin = 0;
    line = 1;
    col = 1;
  }

let reader_of_channel ~retain ~chunk ic =
  {
    buf = Bytes.create (max 1 chunk);
    pos = 0;
    len = 0;
    base = 0;
    eof = false;
    read_more = (fun b off n -> input ic b off n);
    retain;
    pin = 0;
    line = 1;
    col = 1;
  }

let err rd msg = raise (Error (rd.line, rd.col, msg))

let refill rd =
  if rd.eof then false
  else begin
    if not rd.retain then begin
      let keep = min rd.pin (rd.base + rd.pos) - rd.base in
      if keep > 0 then begin
        Bytes.blit rd.buf keep rd.buf 0 (rd.len - keep);
        rd.len <- rd.len - keep;
        rd.pos <- rd.pos - keep;
        rd.base <- rd.base + keep
      end
    end;
    if rd.len = Bytes.length rd.buf then begin
      let nb = Bytes.create (max 64 (2 * Bytes.length rd.buf)) in
      Bytes.blit rd.buf 0 nb 0 rd.len;
      rd.buf <- nb
    end;
    let n = rd.read_more rd.buf rd.len (Bytes.length rd.buf - rd.len) in
    if n = 0 then begin
      rd.eof <- true;
      false
    end
    else begin
      rd.len <- rd.len + n;
      true
    end
  end

(* [has]/[cur]/[advance] are the non-allocating lookahead primitives (the
   previous parser allocated a [Some c] block per peeked byte).  [cur]
   and [advance] require a preceding successful [has]. *)
let has rd = rd.pos < rd.len || refill rd
let cur rd = Bytes.unsafe_get rd.buf rd.pos

let advance rd =
  (if Bytes.unsafe_get rd.buf rd.pos = '\n' then begin
     rd.line <- rd.line + 1;
     rd.col <- 1
   end
   else rd.col <- rd.col + 1);
  rd.pos <- rd.pos + 1

let read rd =
  if not (has rd) then err rd "unexpected end of input";
  let c = cur rd in
  advance rd;
  c

let expect rd c =
  let got = read rd in
  if got <> c then err rd (Printf.sprintf "expected %C, found %C" c got)

let expect_str rd s = String.iter (fun c -> expect rd c) s

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws rd =
  let continue = ref true in
  while !continue do
    if has rd && is_ws (cur rd) then advance rd else continue := false
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

(* ------------------------------------------------------------------ *)
(* Name interning: an open-addressing table of the distinct names seen,
   keyed by an FNV-1a hash computed directly over the byte range — a
   repeated name costs a hash and a byte compare, zero allocations.
   Names are few (tags and attribute keys), so the table stays tiny. *)
module Pool = struct
  type t = { mutable keys : string array; mutable count : int }

  let create () = { keys = Array.make 64 ""; count = 0 }

  let hash_range b off len =
    let h = ref 0x811c9dc5 in
    for i = off to off + len - 1 do
      h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land max_int
    done;
    !h

  let hash_str s =
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int)
      s;
    !h

  let matches k b off len =
    String.length k = len
    &&
    let i = ref 0 in
    while
      !i < len && String.unsafe_get k !i = Bytes.unsafe_get b (off + !i)
    do
      incr i
    done;
    !i = len

  let grow p =
    let old = p.keys in
    let nkeys = Array.make (2 * Array.length old) "" in
    let mask = Array.length nkeys - 1 in
    Array.iter
      (fun k ->
        if k <> "" then begin
          let i = ref (hash_str k land mask) in
          while nkeys.(!i) <> "" do
            i := (!i + 1) land mask
          done;
          nkeys.(!i) <- k
        end)
      old;
    p.keys <- nkeys

  let intern p b off len =
    let keys = p.keys in
    let mask = Array.length keys - 1 in
    let i = ref (hash_range b off len land mask) in
    let found = ref "" in
    let probing = ref true in
    while !probing do
      let k = Array.unsafe_get keys !i in
      if k = "" then probing := false
      else if matches k b off len then begin
        found := k;
        probing := false
      end
      else i := (!i + 1) land mask
    done;
    if !found <> "" then !found
    else begin
      let s = Bytes.sub_string b off len in
      keys.(!i) <- s;
      p.count <- p.count + 1;
      if 2 * p.count >= Array.length keys then grow p;
      s
    end
end

(* ------------------------------------------------------------------ *)
(* Scratch: decoded bytes (entity and character-reference expansions,
   and the raw segments between them when a token contains one).  A
   plain growable [bytes] rather than [Buffer] so consumers can view a
   span without copying.  In window mode it is reset per event; in
   retain mode it persists and becomes the appendix of a built tree. *)
module Scratch = struct
  type t = { mutable b : bytes; mutable len : int }

  let create n = { b = Bytes.create n; len = 0 }
  let clear s = s.len <- 0
  let length s = s.len

  let ensure s n =
    if s.len + n > Bytes.length s.b then begin
      let cap = ref (max 64 (2 * Bytes.length s.b)) in
      while s.len + n > !cap do
        cap := 2 * !cap
      done;
      let nb = Bytes.create !cap in
      Bytes.blit s.b 0 nb 0 s.len;
      s.b <- nb
    end

  let add_char s c =
    ensure s 1;
    Bytes.unsafe_set s.b s.len c;
    s.len <- s.len + 1

  let add_subbytes s src off len =
    ensure s len;
    Bytes.blit src off s.b s.len len;
    s.len <- s.len + len

  let sub s off len = Bytes.sub_string s.b off len
  let contents s = Bytes.sub_string s.b 0 s.len
end

(* Spans are coded in one int: [off >= 0] is an absolute offset into the
   reader's byte region, [off < 0] is [lnot off] into the scratch. *)

type t = {
  rd : reader;
  keep_ws : bool;
  budget : Budget.t option;
  pool : Pool.t;
  scratch : Scratch.t;
  orig : string option; (* [of_string] input, for zero-copy [retained] *)
  mutable stack : string list; (* open elements, innermost first *)
  mutable depth : int; (* length of [stack], kept incrementally *)
  mutable seen_root : bool;
  mutable seen_doctype : bool;
  mutable at_start : bool; (* before the first byte: BOM goes here *)
  mutable finished : bool;
  (* cursor state, valid between [cursor_next] calls *)
  mutable name : string;
  mutable a_cnt : int;
  mutable a_names : string array;
  mutable a_off : int array;
  mutable a_len : int array;
  mutable text_off : int;
  mutable text_len : int;
  mutable non_ws : bool; (* current text run has a non-whitespace char *)
  mutable pending_end : bool; (* self-closing: deliver the end next *)
  mutable pending_ticks : int; (* events not yet settled on the budget *)
}

let mk rd keep_ws budget orig =
  {
    rd;
    keep_ws;
    budget;
    pool = Pool.create ();
    scratch = Scratch.create 256;
    orig;
    stack = [];
    depth = 0;
    seen_root = false;
    seen_doctype = false;
    at_start = true;
    finished = false;
    name = "";
    a_cnt = 0;
    a_names = Array.make 8 "";
    a_off = Array.make 8 0;
    a_len = Array.make 8 0;
    text_off = 0;
    text_len = 0;
    non_ws = false;
    pending_end = false;
    pending_ticks = 0;
  }

let of_string ?(keep_ws = false) ?budget ?(retain = false) s =
  mk (reader_of_string ~retain s) keep_ws budget (Some s)

let of_channel ?(keep_ws = false) ?budget ?(chunk_size = chunk_size)
    ?(retain = false) ic =
  mk (reader_of_channel ~retain ~chunk:chunk_size ic) keep_ws budget None

(* ------------------------------------------------------------------ *)
(* Lexing.  Everything below records spans; nothing copies document
   bytes except the scratch fallback on reference-bearing segments. *)

let read_name t =
  let rd = t.rd in
  if not (has rd) then err rd "unexpected end of input in name";
  let c0 = cur rd in
  if not (is_name_start c0) then
    err rd (Printf.sprintf "invalid name start %C" c0);
  let start = rd.base + rd.pos in
  advance rd;
  let continue = ref true in
  while !continue do
    if has rd && is_name_char (cur rd) then advance rd else continue := false
  done;
  let len = rd.base + rd.pos - start in
  Pool.intern t.pool rd.buf (start - rd.base) len

(* The XML 1.0 Char production: anything else is not expressible in a
   well-formed document, even via a character reference. *)
let is_xml_char code =
  code = 0x9 || code = 0xA || code = 0xD
  || (code >= 0x20 && code <= 0xD7FF)
  || (code >= 0xE000 && code <= 0xFFFD)
  || (code >= 0x10000 && code <= 0x10FFFF)

(* Entity and character references.  This is an expansion site, so it
   carries its own failpoint and a hard cap on the digit run: a reference
   can never expand to more than four bytes, and its textual form is
   bounded too, so reference floods cost no more than the input itself.
   Decoded bytes go to the scratch; the result says whether any of them
   is non-whitespace (for the whitespace-only-text check). *)
let max_charref_digits = 10

let read_reference t =
  (* '&' already consumed *)
  Failpoint.trigger "pull.ref";
  let rd = t.rd in
  if not (has rd) then err rd "unexpected end of input in reference";
  if cur rd = '#' then begin
    advance rd;
    let hex =
      if has rd && cur rd = 'x' then begin
        advance rd;
        true
      end
      else false
    in
    let dstart = rd.base + rd.pos in
    let ndigits = ref 0 in
    let continue = ref true in
    while !continue do
      if not (has rd) then continue := false
      else begin
        let c = cur rd in
        if
          (c >= '0' && c <= '9')
          || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
        then begin
          if !ndigits >= max_charref_digits then
            err rd "character reference out of range";
          advance rd;
          incr ndigits
        end
        else continue := false
      end
    done;
    let dlen = rd.base + rd.pos - dstart in
    expect rd ';';
    if dlen = 0 then err rd "empty character reference";
    let code = ref 0 in
    let radix = if hex then 16 else 10 in
    for i = dstart - rd.base to dstart - rd.base + dlen - 1 do
      let c = Bytes.unsafe_get rd.buf i in
      let v =
        if c >= '0' && c <= '9' then Char.code c - Char.code '0'
        else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
        else Char.code c - Char.code 'A' + 10
      in
      code := (!code * radix) + v
    done;
    let code = !code in
    if not (is_xml_char code) then
      err rd
        (Printf.sprintf
           "character reference &#%s%s; is not a legal XML character"
           (if hex then "x" else "")
           (Bytes.sub_string rd.buf (dstart - rd.base) dlen));
    (* Encode as UTF-8 into the scratch. *)
    let b = t.scratch in
    (if code < 0x80 then Scratch.add_char b (Char.chr code)
     else if code < 0x800 then begin
       Scratch.add_char b (Char.chr (0xC0 lor (code lsr 6)));
       Scratch.add_char b (Char.chr (0x80 lor (code land 0x3F)))
     end
     else if code < 0x10000 then begin
       Scratch.add_char b (Char.chr (0xE0 lor (code lsr 12)));
       Scratch.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
       Scratch.add_char b (Char.chr (0x80 lor (code land 0x3F)))
     end
     else begin
       Scratch.add_char b (Char.chr (0xF0 lor (code lsr 18)));
       Scratch.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
       Scratch.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
       Scratch.add_char b (Char.chr (0x80 lor (code land 0x3F)))
     end);
    not (code = 0x20 || code = 0x9 || code = 0xA || code = 0xD)
  end
  else begin
    let name = read_name t in
    expect t.rd ';';
    let expansion =
      match name with
      | "lt" -> '<'
      | "gt" -> '>'
      | "amp" -> '&'
      | "apos" -> '\''
      | "quot" -> '"'
      | other -> err rd (Printf.sprintf "unknown entity &%s;" other)
    in
    Scratch.add_char t.scratch expansion;
    true
  end

(* Flush the raw segment [start, upto) (absolute offsets) to scratch. *)
let flush_segment t start upto =
  let rd = t.rd in
  Scratch.add_subbytes t.scratch rd.buf (start - rd.base) (upto - start)

let read_attr_value t =
  let rd = t.rd in
  let quote = read rd in
  if quote <> '"' && quote <> '\'' then err rd "expected quoted attribute value";
  let seg_start = ref (rd.base + rd.pos) in
  let smark = ref (-1) in
  let continue = ref true in
  while !continue do
    let c = read rd in
    if c = quote then continue := false
    else if c = '&' then begin
      if !smark < 0 then smark := Scratch.length t.scratch;
      flush_segment t !seg_start (rd.base + rd.pos - 1);
      ignore (read_reference t : bool);
      seg_start := rd.base + rd.pos
    end
    else if c = '<' then err rd "'<' in attribute value"
  done;
  let stop = rd.base + rd.pos - 1 in
  if !smark < 0 then (!seg_start, stop - !seg_start)
  else begin
    flush_segment t !seg_start stop;
    (lnot !smark, Scratch.length t.scratch - !smark)
  end

let push_attr t key off len =
  if t.a_cnt = Array.length t.a_names then begin
    let n = 2 * t.a_cnt in
    let names = Array.make n "" in
    let offs = Array.make n 0 in
    let lens = Array.make n 0 in
    Array.blit t.a_names 0 names 0 t.a_cnt;
    Array.blit t.a_off 0 offs 0 t.a_cnt;
    Array.blit t.a_len 0 lens 0 t.a_cnt;
    t.a_names <- names;
    t.a_off <- offs;
    t.a_len <- lens
  end;
  t.a_names.(t.a_cnt) <- key;
  t.a_off.(t.a_cnt) <- off;
  t.a_len.(t.a_cnt) <- len;
  t.a_cnt <- t.a_cnt + 1

let read_attributes t =
  t.a_cnt <- 0;
  let rd = t.rd in
  let continue = ref true in
  while !continue do
    skip_ws rd;
    if not (has rd) then continue := false
    else begin
      let c = cur rd in
      if c = '/' || c = '>' then continue := false
      else if is_name_start c then begin
        let key = read_name t in
        skip_ws rd;
        expect rd '=';
        skip_ws rd;
        let off, len = read_attr_value t in
        for i = 0 to t.a_cnt - 1 do
          if String.equal t.a_names.(i) key then
            err rd (Printf.sprintf "duplicate attribute %s" key)
        done;
        push_attr t key off len
      end
      else err rd (Printf.sprintf "unexpected %C in tag" c)
    end
  done

(* Skip until the given terminator string has been consumed. *)
let skip_until rd terminator =
  let k = String.length terminator in
  let matched = ref 0 in
  while !matched < k do
    let c = read rd in
    if c = terminator.[!matched] then incr matched
    else if c = terminator.[0] then matched := 1
    else matched := 0
  done

let skip_comment rd = skip_until rd "-->"
let skip_pi rd = skip_until rd "?>"

(* Skip a DOCTYPE declaration, including a bracketed internal subset.
   Quoted literals are opaque — a '>' inside a SYSTEM id must not close
   the declaration — and a ']' without a matching '[' is malformed, not a
   license to scan to end of input. *)
let skip_doctype rd =
  let skip_literal q =
    let rec lit () = if read rd <> q then lit () in
    lit ()
  in
  let rec loop depth =
    match read rd with
    | ('"' | '\'') as q ->
      skip_literal q;
      loop depth
    | '[' -> loop (depth + 1)
    | ']' ->
      if depth = 0 then err rd "']' outside the internal subset in DOCTYPE"
      else loop (depth - 1)
    | '>' when depth = 0 -> ()
    | _ -> loop depth
  in
  loop 0

(* A UTF-8 byte-order mark before the prolog is legal and invisible;
   UTF-16/UTF-32 marks name an encoding this byte-level parser does not
   speak, which deserves a clear rejection rather than "text outside the
   root element". *)
let skip_bom rd =
  if has rd then
    match cur rd with
    | '\xEF' ->
      advance rd;
      let b = read rd in
      let c = read rd in
      if b <> '\xBB' || c <> '\xBF' then
        err rd "malformed UTF-8 byte-order mark";
      rd.col <- 1
    | '\xFE' | '\xFF' | '\x00' ->
      err rd "unsupported encoding (UTF-16/UTF-32 byte-order mark?)"
    | _ -> ()

(* CDATA content is exactly the bytes before the first "]]>" — a pure
   span, never copied (the old shifting-bracket loop computed the same
   set of bytes one [Buffer.add_char] at a time). *)
let read_cdata t =
  let rd = t.rd in
  expect_str rd "CDATA[";
  let start = rd.base + rd.pos in
  let run = ref 0 in
  let stop = ref (-1) in
  while !stop < 0 do
    let c = read rd in
    if c = ']' then incr run
    else if c = '>' && !run >= 2 then stop := rd.base + rd.pos - 3
    else run := 0
  done;
  t.text_off <- start;
  t.text_len <- !stop - start

let read_text t =
  let rd = t.rd in
  t.non_ws <- false;
  let seg_start = ref (rd.base + rd.pos) in
  let smark = ref (-1) in
  let continue = ref true in
  while !continue do
    if not (has rd) then continue := false
    else begin
      let c = cur rd in
      if c = '<' then continue := false
      else if c = '&' then begin
        advance rd;
        if !smark < 0 then smark := Scratch.length t.scratch;
        flush_segment t !seg_start (rd.base + rd.pos - 1);
        if read_reference t then t.non_ws <- true;
        seg_start := rd.base + rd.pos
      end
      else begin
        if not (is_ws c) then t.non_ws <- true;
        advance rd
      end
    end
  done;
  let stop = rd.base + rd.pos in
  if !smark < 0 then begin
    t.text_off <- !seg_start;
    t.text_len <- stop - !seg_start
  end
  else begin
    flush_segment t !seg_start stop;
    t.text_off <- lnot !smark;
    t.text_len <- Scratch.length t.scratch - !smark
  end

(* ------------------------------------------------------------------ *)
(* The event scanner.  All recursive calls are tail calls, so nesting of
   skipped constructs (comments, PIs) costs no stack.  [pin] is reset at
   each iteration: spans handed out for one event stay valid exactly
   until the next [cursor_next]. *)
let rec scan t =
  let rd = t.rd in
  rd.pin <- rd.base + rd.pos;
  if t.at_start then begin
    t.at_start <- false;
    skip_bom rd
  end;
  if not (has rd) then
    if t.stack <> [] then err rd "unexpected end of input: unclosed elements"
    else if not t.seen_root then err rd "empty document"
    else begin
      t.finished <- true;
      Cursor_eof
    end
  else if cur rd = '<' then begin
    advance rd;
    if not (has rd) then err rd "unexpected end of input after '<'";
    match cur rd with
    | '?' ->
      advance rd;
      skip_pi rd;
      scan t
    | '!' ->
      advance rd;
      if not (has rd) then err rd "unexpected end of input after <!";
      (match cur rd with
      | '-' ->
        expect_str rd "--";
        skip_comment rd;
        scan t
      | '[' ->
        advance rd;
        if t.stack = [] then err rd "CDATA outside the root element";
        read_cdata t;
        if t.text_len = 0 then scan t else Cursor_text
      | 'D' ->
        expect_str rd "DOCTYPE";
        if t.seen_root || t.stack <> [] then
          err rd "DOCTYPE is only allowed before the root element";
        if t.seen_doctype then err rd "multiple DOCTYPE declarations";
        t.seen_doctype <- true;
        skip_doctype rd;
        scan t
      | c -> err rd (Printf.sprintf "unexpected <!%C" c))
    | '/' ->
      advance rd;
      let tag = read_name t in
      skip_ws rd;
      expect rd '>';
      (match t.stack with
      | [] ->
        err rd (Printf.sprintf "closing tag </%s> with no open element" tag)
      | top :: rest ->
        if top <> tag then
          err rd
            (Printf.sprintf "closing tag </%s> does not match <%s>" tag top);
        t.stack <- rest;
        t.depth <- t.depth - 1;
        t.name <- tag;
        Cursor_end)
    | _ ->
      let tag = read_name t in
      read_attributes t;
      if t.stack = [] && t.seen_root then
        err rd "document has more than one root element";
      t.seen_root <- true;
      (match read rd with
      | '>' ->
        t.stack <- tag :: t.stack;
        t.depth <- t.depth + 1;
        Failpoint.trigger "pull.depth";
        (match t.budget with
        | None -> ()
        | Some b -> Budget.check_depth b t.depth);
        t.name <- tag;
        Cursor_start
      | '/' ->
        expect rd '>';
        t.pending_end <- true;
        t.name <- tag;
        Cursor_start
      | c -> err rd (Printf.sprintf "unexpected %C in start tag" c))
  end
  else begin
    read_text t;
    if t.stack = [] then begin
      if t.non_ws then err rd "text outside the root element" else scan t
    end
    else if (not t.keep_ws) && not t.non_ws then scan t
    else Cursor_text
  end

(* Every delivered event counts against [max_nodes], but the counting is
   settled in batches of 32 — the same amortization the evaluators use —
   so the per-event cost of a budget is one local increment, not a
   cross-module call.  The remainder (plus a final deadline check)
   settles whenever end-of-stream is delivered. *)
let settle_budget t =
  match t.budget with
  | None -> ()
  | Some b ->
    let k = t.pending_ticks in
    t.pending_ticks <- 0;
    if k > 0 then Budget.tick_nodes b k;
    Budget.check_deadline b

(* The public entry: one failpoint branch (no-op unless armed) and one
   budget tick per event delivered. *)
let cursor_next t =
  Failpoint.trigger "pull.read";
  (match t.budget with
  | None -> ()
  | Some b ->
    let k = t.pending_ticks + 1 in
    if k < 32 then t.pending_ticks <- k
    else begin
      t.pending_ticks <- 0;
      Budget.tick_nodes b 32
    end);
  if t.pending_end then begin
    t.pending_end <- false;
    Cursor_end
  end
  else if t.finished then begin
    settle_budget t;
    Cursor_eof
  end
  else begin
    if not t.rd.retain then Scratch.clear t.scratch;
    match scan t with
    | Cursor_eof ->
      settle_budget t;
      Cursor_eof
    | s -> s
  end

(* ------------------------------------------------------------------ *)
(* Cursor accessors. *)

let cur_name t = t.name
let cur_attr_count t = t.a_cnt
let cur_attr_name t i = t.a_names.(i)

let span_string t off len =
  if len = 0 then ""
  else if off >= 0 then Bytes.sub_string t.rd.buf (off - t.rd.base) len
  else Scratch.sub t.scratch (lnot off) len

let cur_attr_value t i = span_string t t.a_off.(i) t.a_len.(i)
let cur_text t = span_string t t.text_off t.text_len

let cur_text_span t =
  let off = t.text_off and len = t.text_len in
  if off >= 0 then (Bytes.unsafe_to_string t.rd.buf, off - t.rd.base, len)
  else (Bytes.unsafe_to_string t.scratch.Scratch.b, lnot off, len)

let cur_attrs t =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) ((t.a_names.(i), cur_attr_value t i) :: acc)
  in
  go (t.a_cnt - 1) []

let cur_text_raw t = (t.text_off, t.text_len)
let cur_attr_raw t i = (t.a_off.(i), t.a_len.(i))
let scratch_contents t = Scratch.contents t.scratch

let retained t =
  match t.orig with
  | Some s -> s
  | None ->
    let rd = t.rd in
    if Bytes.length rd.buf = rd.len then Bytes.unsafe_to_string rd.buf
    else Bytes.sub_string rd.buf 0 rd.len

(* ------------------------------------------------------------------ *)
(* Compatibility event API on top of the cursor. *)

let next t =
  match cursor_next t with
  | Cursor_eof -> None
  | Cursor_start -> Some (Start_element (t.name, cur_attrs t))
  | Cursor_end -> Some (End_element t.name)
  | Cursor_text -> Some (Text (cur_text t))

let fold t ~init ~f =
  let rec loop acc =
    match next t with None -> acc | Some ev -> loop (f acc ev)
  in
  loop init

let line t = t.rd.line
let column t = t.rd.col
