module Tree = Smoqe_xml.Tree
module Node_set = Set.Make (Int)

type env = {
  tree : Tree.t;
  (* Qualifier values are memoized per (qualifier, node); qualifiers are
     compared structurally, which is cheap at the sizes the oracle sees. *)
  memo : (Ast.qual * int, bool) Hashtbl.t;
}

let step env from keep =
  Node_set.fold
    (fun n acc ->
      Tree.fold_children env.tree n ~init:acc ~f:(fun acc c ->
          if keep c then Node_set.add c acc else acc))
    from Node_set.empty

let rec eval_path env p from =
  match p with
  | Ast.Self -> from
  | Ast.Tag s ->
    let t = env.tree in
    (match Tree.id_of_tag t s with
    | None -> Node_set.empty
    | Some id -> step env from (fun c -> Tree.tag_id t c = id))
  | Ast.Wildcard -> step env from (fun c -> Tree.is_element env.tree c)
  | Ast.Text -> step env from (fun c -> Tree.is_text env.tree c)
  | Ast.Seq (a, b) -> eval_path env b (eval_path env a from)
  | Ast.Union (a, b) ->
    Node_set.union (eval_path env a from) (eval_path env b from)
  | Ast.Star p ->
    let rec fix acc frontier =
      if Node_set.is_empty frontier then acc
      else begin
        let next = Node_set.diff (eval_path env p frontier) acc in
        fix (Node_set.union acc next) next
      end
    in
    fix from from
  | Ast.Filter (p, q) ->
    Node_set.filter (holds_qual env q) (eval_path env p from)

and holds_qual env q n =
  match Hashtbl.find_opt env.memo (q, n) with
  | Some v -> v
  | None ->
    let v =
      match q with
      | Ast.True -> true
      | Ast.Exists p ->
        not (Node_set.is_empty (eval_path env p (Node_set.singleton n)))
      | Ast.Value_eq (p, c) ->
        Node_set.exists
          (fun m -> Tree.value_equal env.tree m c)
          (eval_path env p (Node_set.singleton n))
      | Ast.Not q -> not (holds_qual env q n)
      | Ast.And (a, b) -> holds_qual env a n && holds_qual env b n
      | Ast.Or (a, b) -> holds_qual env a n || holds_qual env b n
    in
    Hashtbl.replace env.memo (q, n) v;
    v

let make_env tree = { tree; memo = Hashtbl.create 256 }

let eval tree p ~from = eval_path (make_env tree) p from
let holds tree q n = holds_qual (make_env tree) q n

let answers tree p =
  eval_path (make_env tree) p (Node_set.singleton Tree.root)

let answer_list tree p = Node_set.elements (answers tree p)
