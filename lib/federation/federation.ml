(* Sharded scatter-gather federation: one logical corpus served by N
   engine instances.

   The corpus generator below (graduated from lib/workload) builds the
   heterogeneous "federated corporation" documents; the serving half
   shards a corpus across engines, fans queries out through the domain
   pool, and merges per-shard answers and statistics.  Policies and
   tenants are registered on every shard, so each shard rewrites and
   evaluates through the same shared policy-key artifacts; admission is
   federation-level — one token bucket per tenant for the whole
   federation, never per shard, so fanning out wider does not multiply a
   tenant's bill. *)

module Dtd = Smoqe_xml.Dtd
module Tree = Smoqe_xml.Tree
module Engine = Smoqe.Engine
module Pool = Smoqe_exec.Pool
module Stats = Smoqe_hype.Stats
module Error = Smoqe_robust.Error
module Admission = Smoqe_robust.Admission

(* --- the corpus workload --------------------------------------------------- *)

let dtd =
  Dtd.create ~root:"corp"
    [
      ("corp", Dtd.Children (Dtd.Star (Dtd.Name "dept")));
      ( "dept",
        Dtd.Children
          (Dtd.Seq
             ( Dtd.Name "dname",
               Dtd.Star
                 (Dtd.Alt
                    ( Dtd.Alt (Dtd.Name "sales", Dtd.Name "audit"),
                      Dtd.Alt (Dtd.Name "hr", Dtd.Name "inventory") )) )) );
      ("sales", Dtd.Children (Dtd.Star (Dtd.Name "order")));
      ( "order",
        Dtd.Children (Dtd.Seq (Dtd.Star (Dtd.Name "item"), Dtd.Name "total")) );
      ("audit", Dtd.Children (Dtd.Star (Dtd.Name "finding")));
      ( "finding",
        Dtd.Children (Dtd.Seq (Dtd.Name "severity", Dtd.Name "note")) );
      ("hr", Dtd.Children (Dtd.Star (Dtd.Name "employee")));
      ( "employee",
        Dtd.Children (Dtd.Seq (Dtd.Name "ename", Dtd.Name "salary")) );
      ("inventory", Dtd.Children (Dtd.Star (Dtd.Name "widget")));
      ("widget", Dtd.Children (Dtd.Seq (Dtd.Name "sku", Dtd.Name "qty")));
      ("dname", Dtd.Mixed []);
      ("item", Dtd.Mixed []);
      ("total", Dtd.Mixed []);
      ("severity", Dtd.Mixed []);
      ("note", Dtd.Mixed []);
      ("ename", Dtd.Mixed []);
      ("salary", Dtd.Mixed []);
      ("sku", Dtd.Mixed []);
      ("qty", Dtd.Mixed []);
    ]

(* One threaded RNG state: callers that generate several documents (a
   multi-shard corpus) pass the same [~rng] and the whole corpus is a
   deterministic function of one seed, instead of every call re-seeding
   and producing identical shards. *)
let generate ?(seed = 13) ?rng ~n_departments ~section_size () =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let leaf tag v = Tree.E (tag, [], [ Tree.T v ]) in
  let order i =
    Tree.E
      ( "order",
        [],
        List.init (1 + Random.State.int rng 3) (fun j ->
            leaf "item" (Printf.sprintf "i%d-%d" i j))
        @ [ leaf "total" (string_of_int (Random.State.int rng 1000)) ] )
  in
  let finding i =
    Tree.E
      ( "finding",
        [],
        [
          leaf "severity"
            (match Random.State.int rng 3 with
            | 0 -> "high"
            | 1 -> "medium"
            | _ -> "low");
          leaf "note" (Printf.sprintf "note-%d" i);
        ] )
  in
  let employee i =
    Tree.E
      ( "employee",
        [],
        [
          leaf "ename" (Printf.sprintf "emp-%d" i);
          leaf "salary" (string_of_int (30_000 + Random.State.int rng 50_000));
        ] )
  in
  let widget i =
    Tree.E
      ( "widget",
        [],
        [
          leaf "sku" (Printf.sprintf "sku-%d" i);
          leaf "qty" (string_of_int (Random.State.int rng 100));
        ] )
  in
  let section kind =
    match kind with
    | 0 -> Tree.E ("sales", [], List.init section_size order)
    | 1 -> Tree.E ("audit", [], List.init section_size finding)
    | 2 -> Tree.E ("hr", [], List.init section_size employee)
    | _ -> Tree.E ("inventory", [], List.init section_size widget)
  in
  let dept d =
    let first = Random.State.int rng 4 in
    let sections =
      if Random.State.int rng 100 < 30 then
        [ section first; section ((first + 1 + Random.State.int rng 3) mod 4) ]
      else [ section first ]
    in
    Tree.E ("dept", [], leaf "dname" (Printf.sprintf "dept-%d" d) :: sections)
  in
  Tree.of_source (Tree.E ("corp", [], List.init n_departments dept))

let generate_corpus ?(seed = 13) ~shards ~n_departments ~section_size () =
  let rng = Random.State.make [| seed |] in
  List.init (max 1 shards) (fun _ ->
      generate ~rng ~n_departments ~section_size ())

let queries =
  [
    ("audit notes", "//finding[severity = 'high']/note");
    ("salaries", "//employee/salary");
    ("order items", "dept/sales/order[total]/item");
    ("skus", "//widget/sku");
    ("names (anti-case)", "//dname");
  ]

(* --- scatter-gather serving ------------------------------------------------ *)

type t = {
  shards : Engine.t array;
  fed_dtd : Dtd.t option;
  admission : Admission.t;
}

let create ?dtd docs =
  if docs = [] then invalid_arg "Federation.create: empty corpus";
  {
    shards = Array.of_list (List.map (Engine.of_tree ?dtd) docs);
    fed_dtd = dtd;
    admission = Admission.create ();
  }

(* Round-robin split of the root's children: shard k serves a document
   whose root holds children k, k+s, k+2s, ...  Shards are built with
   [Engine.of_tree] (no validation): a shard of a valid corpus need not
   satisfy the corpus root's full content model on its own. *)
let shard_tree ~shards tree =
  let shards = max 1 shards in
  let children =
    List.filter
      (fun n -> not (Tree.is_text tree n))
      (Tree.children tree Tree.root)
  in
  let buckets = Array.make shards [] in
  List.iteri
    (fun i c -> buckets.(i mod shards) <- c :: buckets.(i mod shards))
    children;
  let root_tag = Tree.tag_name tree (Tree.tag_id tree Tree.root) in
  Array.to_list
    (Array.map
       (fun rev ->
         Tree.of_source
           (Tree.E
              ( root_tag,
                [],
                List.map (fun c -> Tree.to_source tree c) (List.rev rev) )))
       buckets)

let of_tree ?dtd ~shards tree = create ?dtd (shard_tree ~shards tree)

let n_shards t = Array.length t.shards
let shard t i = t.shards.(i)

(* Administrative fan-out: first failure wins, but every shard is still
   attempted so the federation never serves half-registered state
   silently. *)
let fan_admin t f =
  Array.fold_left
    (fun acc e ->
      match (acc, f e) with
      | (Error _ as err), _ -> err
      | Ok (), Error msg -> Error msg
      | Ok (), Ok _ -> Ok ())
    (Ok ()) t.shards

let register_policy t ~group policy =
  fan_admin t (fun e -> Engine.register_policy e ~group policy)

let register_tenant t ~tenant policy =
  (* Every shard holds the shared artifacts for the tenant's key; the
     per-shard registries agree because the key is a content hash. *)
  fan_admin t (fun e -> Engine.register_tenant e ~tenant policy)

let set_tenant_budget t ~tenant ~capacity ?refill_per_s () =
  Admission.set_budget t.admission ~tenant ~capacity ?refill_per_s ()

let admission_counters t = Admission.counters t.admission

let tenant_counters t =
  (* The registries are replicas: shard 0 speaks for the federation. *)
  if Array.length t.shards = 0 then [] else Engine.tenant_counters t.shards.(0)

let throttle_error t tenant =
  let stats = Stats.zero () in
  stats.Stats.tenant_throttled <- 1;
  Error.Budget_exceeded
    {
      what = Printf.sprintf "tenant %s admission tokens" tenant;
      limit =
        (match Admission.limit_of t.admission ~tenant with
        | Some n -> string_of_int n
        | None -> "0");
      partial_stats = Stats.to_assoc stats;
    }

(* Federation-level admission: one token per member query for the whole
   scatter, charged before any shard sees work. *)
let admit t ?tenant ~cost () =
  match tenant with
  | None -> Ok ()
  | Some name ->
    if Admission.admit ~cost t.admission ~tenant:name then Ok ()
    else Error (throttle_error t name)

(* A federated answer: per-shard node ids (ids are shard-local
   coordinates) plus the concatenated serialized fragments, in shard
   order. *)
type fed_outcome = {
  fed_answers : (int * int) list;  (** (shard, node id) in shard order *)
  fed_xml : string list;
  fed_stats : Stats.t;  (** merged over shards; [shard_fanout] set *)
}

let merge_outcomes t per_shard =
  let stats = Stats.zero () in
  let answers = ref [] and xml = ref [] in
  Array.iteri
    (fun s (o : Engine.outcome) ->
      Stats.merge_into ~into:stats o.Engine.stats;
      answers := !answers @ List.map (fun n -> (s, n)) o.Engine.answers;
      xml := !xml @ o.Engine.answer_xml)
    per_shard;
  (* one scatter = one logical pass fanned [n_shards] wide *)
  stats.Stats.shard_fanout <- n_shards t;
  { fed_answers = !answers; fed_xml = !xml; fed_stats = stats }

let first_error results =
  Array.fold_left
    (fun acc r -> match (acc, r) with
      | Some _, _ -> acc
      | None, Error e -> Some e
      | None, Ok _ -> None)
    None results

let query_robust t ~pool ?group ?tenant ?mode ?use_index ?make_budget
    ?use_tables text =
  match admit t ?tenant ~cost:1. () with
  | Error e -> Error e
  | Ok () ->
    let futures =
      Array.map
        (fun e ->
          (* shard engines keep unlimited admission: the federation
             already charged this query once *)
          Engine.submit e ~pool ?group ?tenant ?mode ?use_index ?make_budget
            ?use_tables text)
        t.shards
    in
    let results = Array.map Pool.await futures in
    (match first_error results with
    | Some e -> Error e
    | None ->
      Ok
        (merge_outcomes t
           (Array.map
              (function Ok o -> o | Error _ -> assert false)
              results)))

(* Batch scatter-gather: each shard answers the whole batch in one
   shared-automaton pass ([run_many] batching within the shard), then
   member answers merge across shards.  A member that fails on any shard
   fails with that shard's error; the rest of the batch is unaffected. *)
let run_many_robust t ~pool ?group ?tenant ?mode ?use_index ?make_budget
    ?use_tables texts =
  let n = List.length texts in
  if n = 0 then ([||], Stats.zero ())
  else
  match admit t ?tenant ~cost:(float_of_int n) () with
  | Error e ->
    let aggregate = Stats.zero () in
    (match e with
    | Error.Budget_exceeded _ -> aggregate.Stats.tenant_throttled <- n
    | _ -> ());
    (Array.make n (Error e), aggregate)
  | Ok () ->
    let futures =
      Array.map
        (fun e ->
          Pool.submit ?lane:tenant pool (fun () ->
              let budget = Option.map (fun mk -> mk ()) make_budget in
              Engine.run_many_robust e ?group ?tenant ?mode ?use_index ?budget
                ?use_tables texts))
        t.shards
    in
    let parts = Array.map Pool.await futures in
    let aggregate = Stats.zero () in
    Array.iter
      (fun (_, stats) -> Stats.merge_into ~into:aggregate stats)
      parts;
    aggregate.Stats.shard_fanout <- n_shards t;
    let merged =
      Array.init n (fun i ->
          let shard_results =
            Array.map (fun (results, _) -> results.(i)) parts
          in
          match first_error shard_results with
          | Some e -> Error e
          | None ->
            Ok
              (merge_outcomes t
                 (Array.map
                    (function Ok o -> o | Error _ -> assert false)
                    shard_results)))
    in
    (merged, aggregate)
