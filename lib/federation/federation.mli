(** Sharded scatter-gather federation: one logical corpus, N engine
    instances, one merged answer.

    The corpus is split into shards, each served by its own
    {!Smoqe.Engine} instance; a query fans out to every shard through a
    {!Smoqe_exec.Pool} of domains, each shard answers against its slice
    (reusing the shared-automaton [run_many] batching within the shard),
    and the per-shard answers and {!Smoqe_hype.Stats} merge back into
    one federated result with [shard_fanout] recording the scatter
    width.

    Policies and tenants are registered on {e every} shard — the
    canonical policy key ({!Smoqe_security.Policy_key}) is a content
    hash, so the per-shard registries agree and cross-tenant artifact
    sharing works identically on each slice.  Tenant admission is
    {e federation-level}: one token bucket per tenant for the whole
    federation, charged once per member query before any shard sees
    work, so a wider fan-out never multiplies a tenant's bill.

    The module also carries the federated-corporation workload generator
    (graduated from [lib/workload]) used by bench [e3]/[e18] and the
    federation tests. *)

(** {1 The corpus workload} *)

val dtd : Smoqe_xml.Dtd.t
(** A heterogeneous "federated corporation": departments with sales,
    audit, HR and inventory sections — shaped so different security
    policies bite on different regions. *)

val generate :
  ?seed:int ->
  ?rng:Random.State.t ->
  n_departments:int ->
  section_size:int ->
  unit ->
  Smoqe_xml.Tree.t
(** Generate a random corpus document.  [rng] takes precedence over
    [seed]: pass one threaded [Random.State.t] to draw several {e
    distinct} documents from a single seed (see {!generate_corpus});
    without it each call re-seeds from [seed] (default 13) and is
    independently reproducible. *)

val generate_corpus :
  ?seed:int ->
  shards:int ->
  n_departments:int ->
  section_size:int ->
  unit ->
  Smoqe_xml.Tree.t list
(** [shards] documents drawn from one RNG state seeded with [seed] —
    the whole corpus is a deterministic function of the single seed and
    no two shards are accidental clones. *)

val queries : (string * string) list
(** Labeled benchmark queries over the corpus, mixing descendant
    wildcards, qualifiers and child-only paths. *)

(** {1 Scatter-gather serving} *)

type t
(** A federation handle: the shard engines plus the federation-level
    admission state. *)

val create : ?dtd:Smoqe_xml.Dtd.t -> Smoqe_xml.Tree.t list -> t
(** One engine per corpus document.  Raises [Invalid_argument] on an
    empty corpus. *)

val shard_tree :
  shards:int -> Smoqe_xml.Tree.t -> Smoqe_xml.Tree.t list
(** Round-robin split of the root's element children: shard [k] serves
    children [k, k+shards, k+2·shards, …] under a copy of the root tag.
    Shards of a valid document need not satisfy the root's full content
    model individually — they are loaded without validation. *)

val of_tree : ?dtd:Smoqe_xml.Dtd.t -> shards:int -> Smoqe_xml.Tree.t -> t
(** [create] over [shard_tree]. *)

val n_shards : t -> int
val shard : t -> int -> Smoqe.Engine.t

val register_policy :
  t -> group:string -> Smoqe_security.Policy.t -> (unit, string) result
(** Fan the group's policy to every shard.  Every shard is attempted
    even after a failure (no silently half-registered federation); the
    first error is returned. *)

val register_tenant :
  t -> tenant:string -> Smoqe_security.Policy.t -> (unit, string) result
(** Fan the tenant registration to every shard (same first-error
    contract as {!register_policy}).  Shards sharing a policy key share
    artifacts independently on each slice. *)

val set_tenant_budget :
  t -> tenant:string -> capacity:int -> ?refill_per_s:float -> unit -> unit
(** Install the tenant's {e federation-level} admission bucket.  Shard
    engines keep unlimited admission — the federation charges once per
    member query, before scattering. *)

val admission_counters : t -> (string * (int * int)) list
(** Per-tenant [(admitted, throttled)] at the federation gate. *)

val tenant_counters : t -> (string * int) list
(** Registry counters from shard 0 (the registries are replicas). *)

type fed_outcome = {
  fed_answers : (int * int) list;
      (** [(shard, node id)] pairs, shard-major; ids are shard-local
          pre-order ranks *)
  fed_xml : string list;
      (** serialized answer fragments, concatenated in shard order *)
  fed_stats : Smoqe_hype.Stats.t;
      (** merged over shards, [shard_fanout] set to {!n_shards} *)
}

val query_robust :
  t ->
  pool:Smoqe_exec.Pool.t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:Smoqe.Engine.mode ->
  ?use_index:bool ->
  ?make_budget:(unit -> Smoqe_robust.Budget.t) ->
  ?use_tables:bool ->
  string ->
  (fed_outcome, Smoqe_robust.Error.t) result
(** Scatter one query to every shard via the pool (per-tenant lanes
    apply, see {!Smoqe_exec.Pool.submit}), gather and merge.  A tenant
    whose bucket is dry is throttled before any shard work
    ([Budget_exceeded] with [tenant_throttled] in the partial stats);
    any shard failure fails the query with that shard's error. *)

val run_many_robust :
  t ->
  pool:Smoqe_exec.Pool.t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:Smoqe.Engine.mode ->
  ?use_index:bool ->
  ?make_budget:(unit -> Smoqe_robust.Budget.t) ->
  ?use_tables:bool ->
  string list ->
  (fed_outcome, Smoqe_robust.Error.t) result array * Smoqe_hype.Stats.t
(** Scatter a whole batch: each shard answers the batch in one
    shared-automaton pass on its own pool task, then member answers
    merge across shards (results align with the input list).  A member
    that fails on any shard gets that shard's error without poisoning
    the rest.  Admission charges [length texts] tokens up front; a
    throttled batch returns every member [Error] and an aggregate with
    [tenant_throttled = length texts].  The aggregate merges the
    per-shard pass statistics with [shard_fanout] set. *)
