(** TAX — the Type-Aware XML index (paper §3, Indexer).

    For every node the index records which element types (and whether text)
    occur among its {e strict descendants}.  The HyPE evaluator consults it
    to prune whole subtrees that cannot contain any node test the active
    automaton states still need — effective with or without the descendant
    axis, unlike ancestor/descendant labeling schemes.

    Internally one bitset over the document's interned tag ids per node,
    built in a single bottom-up pass.  Use {!Codec} for the compressed
    on-disk form. *)

type t

val build : Smoqe_xml.Tree.t -> t
(** One pass over the document. *)

val splice :
  t -> Smoqe_xml.Tree.t -> lo:int -> old_hi:int -> par:int -> t
(** [splice idx new_tree ~lo ~old_hi ~par]: incrementally maintain the
    index across a functional subtree edit
    ({!Smoqe_xml.Tree.delete_subtree} and friends) that replaced the
    pre-update node range [[lo, old_hi)] under parent [par].  Rows
    outside the edited range are blitted (their descendant sets are
    untouched); only the new middle and the ancestor chain of the edit
    are recomputed.  [par < 0] (the root was replaced) degenerates to a
    full {!build}.  The result satisfies [equal (splice ...) (build
    new_tree)]. *)

val mem : t -> Smoqe_xml.Tree.node -> int -> bool
(** [mem idx n tag_id]: does an element with this tag id occur strictly
    below [n]?  (Tag ids are the document's, {!Smoqe_xml.Tree.id_of_tag}.) *)

val mem_name : t -> Smoqe_xml.Tree.t -> Smoqe_xml.Tree.node -> string -> bool
(** Name-based convenience lookup. *)

val has_text : t -> Smoqe_xml.Tree.node -> bool
(** Is there a text node strictly below [n]? *)

val n_nodes : t -> int
val n_tags : t -> int

val descendant_tags : t -> Smoqe_xml.Tree.t -> Smoqe_xml.Tree.node -> string list
(** Tag names below a node, sorted — what the iSMOQE index view displays
    (paper Fig. 6). *)

val memory_words : t -> int
(** Size of the in-memory bitset matrix, in words (a reporting measure). *)

val equal : t -> t -> bool

(**/**)

(* Raw row access for the codec. *)
val row_bits : t -> int -> int list
val of_rows : n_tags:int -> int list array -> t

(**/**)
