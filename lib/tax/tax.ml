module Tree = Smoqe_xml.Tree

(* One bitset of tag ids per node, flattened into a single int array:
   row [n] occupies words [n*w .. n*w+w-1]. Bit [i] of the row is set when
   tag id [i] occurs among the strict descendants of [n]. *)
type t = {
  words_per_row : int;
  bits : int array;
  n_nodes : int;
  n_tags : int;
}

let bits_per_word = Sys.int_size

let build tree =
  let n = Tree.n_nodes tree in
  let n_tags = Tree.n_tags tree in
  let w = (n_tags + bits_per_word - 1) / bits_per_word in
  let w = max w 1 in
  let bits = Array.make (n * w) 0 in
  (* Bottom-up: process nodes in reverse pre-order, so every node is seen
     after all of its descendants. *)
  for node = n - 1 downto 0 do
    Tree.iter_children tree node (fun c ->
        (* fold child's row into ours *)
        for k = 0 to w - 1 do
          bits.((node * w) + k) <- bits.((node * w) + k) lor bits.((c * w) + k)
        done;
        let tag = Tree.tag_id tree c in
        let word = tag / bits_per_word and bit = tag mod bits_per_word in
        bits.((node * w) + word) <-
          bits.((node * w) + word) lor (1 lsl bit))
  done;
  { words_per_row = w; bits; n_nodes = n; n_tags }

(* Incremental maintenance after a functional subtree splice
   (Tree.delete_subtree / replace_subtree / insert_subtree): node rows
   outside the edited range still describe exactly the same descendant
   sets, so they are blitted; only the new middle and the ancestor chain
   of the edit are recomputed.  [lo, old_hi) is the replaced range in
   pre-update ids, [par] the parent of the edit (new id = old id, it is
   below [lo]); [par < 0] means the root itself was replaced, which
   degenerates to a full rebuild.  Tag ids are stable across splices (new
   tags are appended), so old rows stay valid even when the row width
   grows. *)
let splice t new_tree ~lo ~old_hi ~par =
  if par < 0 then build new_tree
  else begin
    let n_old = t.n_nodes in
    let n_new = Tree.n_nodes new_tree in
    let shift = n_new - n_old in
    let new_hi = old_hi + shift in
    let n_tags = Tree.n_tags new_tree in
    let w' = max 1 ((n_tags + bits_per_word - 1) / bits_per_word) in
    let w = t.words_per_row in
    let bits = Array.make (n_new * w') 0 in
    let copy_rows src_row dst_row count =
      if w = w' then
        Array.blit t.bits (src_row * w) bits (dst_row * w) (count * w)
      else
        for r = 0 to count - 1 do
          Array.blit t.bits ((src_row + r) * w) bits ((dst_row + r) * w') w
        done
    in
    copy_rows 0 0 lo;
    copy_rows old_hi new_hi (n_old - old_hi);
    let fill_row node =
      Tree.iter_children new_tree node (fun c ->
          for k = 0 to w' - 1 do
            bits.((node * w') + k) <-
              bits.((node * w') + k) lor bits.((c * w') + k)
          done;
          let tag = Tree.tag_id new_tree c in
          let word = tag / bits_per_word and bit = tag mod bits_per_word in
          bits.((node * w') + word) <-
            bits.((node * w') + word) lor (1 lsl bit))
    in
    (* The new middle, bottom-up (children of a middle node are middle). *)
    for node = new_hi - 1 downto lo do
      fill_row node
    done;
    (* The ancestor chain of the edit, deepest first: each ancestor's
       other children kept their rows, the chain child below was just
       recomputed. *)
    let a = ref par in
    while !a >= 0 do
      Array.fill bits (!a * w') w' 0;
      fill_row !a;
      a := (match Tree.parent new_tree !a with Some p -> p | None -> -1)
    done;
    { words_per_row = w'; bits; n_nodes = n_new; n_tags }
  end

let mem t node tag =
  if tag < 0 || tag >= t.n_tags then false
  else begin
    let word = tag / bits_per_word and bit = tag mod bits_per_word in
    t.bits.((node * t.words_per_row) + word) land (1 lsl bit) <> 0
  end

let mem_name t tree node name =
  match Tree.id_of_tag tree name with
  | None -> false
  | Some id -> mem t node id

let has_text t node = mem t node Tree.text_tag

let n_nodes t = t.n_nodes
let n_tags t = t.n_tags

let descendant_tags t tree node =
  let out = ref [] in
  for tag = t.n_tags - 1 downto 0 do
    if mem t node tag then out := Tree.tag_name tree tag :: !out
  done;
  List.sort String.compare !out

let memory_words t = Array.length t.bits

let equal a b =
  a.n_nodes = b.n_nodes && a.n_tags = b.n_tags
  && a.words_per_row = b.words_per_row
  && a.bits = b.bits

let row_bits t node =
  let out = ref [] in
  for tag = t.n_tags - 1 downto 0 do
    if mem t node tag then out := tag :: !out
  done;
  !out

let of_rows ~n_tags rows =
  let n = Array.length rows in
  let w = max 1 ((n_tags + bits_per_word - 1) / bits_per_word) in
  let bits = Array.make (n * w) 0 in
  Array.iteri
    (fun node tags ->
      List.iter
        (fun tag ->
          if tag < 0 || tag >= n_tags then invalid_arg "Tax.of_rows";
          let word = tag / bits_per_word and bit = tag mod bits_per_word in
          bits.((node * w) + word) <- bits.((node * w) + word) lor (1 lsl bit))
        tags)
    rows;
  { words_per_row = w; bits; n_nodes = n; n_tags }
