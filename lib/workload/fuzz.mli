(** Structure-aware fuzzing of the XML front door.

    Generators produce adversarial byte sequences — well-formed documents,
    truncations at every interesting byte class, tag/attribute floods,
    deep nesting, character-reference bombs, unbalanced tags, garbage
    interleaves — and {!check} asserts the {e totality contract}
    (DESIGN.md §12) on each: the input either parses with DOM and StAX in
    event-for-event agreement, or fails with a positioned [Pull.Error] or
    a typed budget trip.  [Invalid_argument], [Stack_overflow], any other
    escaped exception, or DOM/StAX divergence is a {!Bug}.

    Everything is driven by a caller-seeded PRNG (like {!Random_dtd}), so
    a run is reproducible from its seed. *)

type verdict =
  | Accepted of int
      (** both modes accepted; the payload is the (identical) event count *)
  | Rejected of int * int * string
      (** both modes rejected with this positioned parse error *)
  | Budgeted of string
      (** a resource budget tripped (which dimension) in both modes *)
  | Bug of string  (** totality-contract violation — a parser bug *)

val check :
  ?keep_ws:bool ->
  ?mk_budget:(unit -> Smoqe_robust.Budget.t) ->
  string ->
  verdict
(** Run one input through both parse modes and compare.  [mk_budget] is
    called once per mode so each run gets a fresh budget (budgets are
    single-use); only deterministic dimensions ([max_depth], [max_nodes])
    make sense here — a wall-clock deadline would make the verdict
    timing-dependent. *)

val generate : Random.State.t -> string
(** One adversarial input: a well-formed document, or a mutation /
    pathological shape drawn from the generator mix. *)

type report = {
  total : int;
  accepted : int;
  rejected : int;
  budgeted : int;
  bugs : (string * string) list;
      (** (input, diagnosis) for every {!Bug}, capped by [max_bugs] *)
}

val run : ?seed:int -> ?max_bugs:int -> count:int -> unit -> report
(** [run ~count ()] fuzzes [count] generated inputs (a third of them
    under a small deterministic budget) and tallies the verdicts. *)

val pp_report : Format.formatter -> report -> unit
