(** Random document generation from a DTD.

    Documents are valid with respect to the DTD by construction: content
    models are expanded regex-directed, with a depth budget steering
    choices and repetition counts toward the shallowest expansion once the
    budget runs out.  Deterministic for a given seed. *)

exception No_finite_expansion of string
(** Raised when some reachable element type cannot be expanded into a
    finite tree (e.g. [a -> (a)]). *)

val generate :
  ?seed:int ->
  ?rng:Random.State.t ->
  ?max_depth:int ->
  ?fanout:int ->
  ?text_pool:string list ->
  Smoqe_xml.Dtd.t ->
  Smoqe_xml.Tree.t
(** [fanout] bounds the repetitions drawn for each [*]/[+] (default 3);
    [max_depth] (default 12) is the recursion budget; [text_pool] supplies
    text contents (drawn uniformly).  [rng] takes precedence over [seed]:
    thread one [Random.State.t] through several calls to draw distinct
    documents (a multi-document corpus) from a single seed. *)

val generate_sized :
  ?seed:int ->
  ?max_depth:int ->
  ?text_pool:string list ->
  target_nodes:int ->
  Smoqe_xml.Dtd.t ->
  Smoqe_xml.Tree.t
(** Repeatedly widens the fanout until the document reaches roughly
    [target_nodes] nodes (within a factor of two, when the DTD allows
    growth at all). *)

val min_depth_of_type : Smoqe_xml.Dtd.t -> string -> int option
(** Height of the shallowest valid tree rooted at a type; [None] when no
    finite expansion exists. *)
