let q0 =
  "patient[(parent/patient)*/visit/treatment/test and \
   visit/treatment[medication/text()=\"headache\"]]/pname"

let suite =
  [
    ("Q1", "patient/pname");
    ("Q2", "//medication");
    ("Q3", "(patient/parent)*/patient/pname");
    ("Q4", "patient[visit/treatment/medication = 'autism']/pname");
    ("Q5", "//treatment[medication]/medication");
    ("Q6", "patient[not(visit/treatment/test)]/visit/date");
    ("Q7", "patient[(parent/patient)*/visit/treatment/medication = 'flu']/pname");
    ("Q8", q0);
  ]

let parsed =
  List.map
    (fun (name, text) ->
      match Smoqe_rxpath.Parser.path_of_string text with
      | Ok p -> (name, p)
      | Error msg ->
        invalid_arg (Printf.sprintf "Queries.parsed: %s: %s" name msg))
    suite

let view_suite =
  [
    ("V1", "patient/treatment/medication");
    ("V2", "(patient/parent)*/patient/treatment/medication");
    ("V3", "patient[parent/patient/treatment]/treatment/medication");
    ("V4", "//medication");
    ("V5", "patient[treatment/medication = 'autism']");
  ]

(* Queries over the bib view schema (Bib.policy hides authors and
   reviewers, conditionally hides 'internal' sections): same axes as
   Q1–Q8 — plain paths, descendant, recursion through section, value
   tests, negation. *)
let bib_suite =
  [
    ("B1", "book/title");
    ("B2", "//title");
    ("B3", "book/(section)*/para");
    ("B4", "book[section/title = 'intro']/title");
    ("B5", "//section[not(section)]/title");
    ("B6", "book/comment | //para");
  ]
