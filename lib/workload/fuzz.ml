module Pull = Smoqe_xml.Pull
module Parser = Smoqe_xml.Parser
module Budget = Smoqe_robust.Budget

type verdict =
  | Accepted of int
  | Rejected of int * int * string
  | Budgeted of string
  | Bug of string

(* --- the totality check ------------------------------------------------ *)

type 'a run_result =
  | R_ok of 'a
  | R_parse of int * int * string
  | R_budget of string
  | R_bug of string

let capture f =
  match f () with
  | v -> R_ok v
  | exception Pull.Error (line, col, msg) ->
    if line < 1 || col < 1 then
      R_bug
        (Printf.sprintf "unpositioned parse error (%d:%d): %s" line col msg)
    else R_parse (line, col, msg)
  | exception Budget.Exceeded { what; _ } -> R_budget what
  | exception Stack_overflow -> R_bug "Stack_overflow escaped the parser"
  | exception Invalid_argument m ->
    R_bug ("Invalid_argument escaped the parser: " ^ m)
  | exception e -> R_bug ("exception escaped the parser: " ^ Printexc.to_string e)

let describe = function
  | R_ok _ -> "accepted"
  | R_parse (l, c, m) -> Printf.sprintf "parse error %d:%d %s" l c m
  | R_budget w -> "budget " ^ w
  | R_bug m -> "BUG " ^ m

let stax_events ?budget ~keep_ws s =
  let p = Pull.of_string ~keep_ws ?budget s in
  List.rev (Pull.fold p ~init:[] ~f:(fun acc e -> e :: acc))

let dom_events ?budget ~keep_ws s =
  Parser.events_of_tree (Parser.tree_of_string ~keep_ws ?budget s)

let check ?(keep_ws = false) ?mk_budget input =
  let fresh () = Option.map (fun f -> f ()) mk_budget in
  let stax = capture (fun () -> stax_events ?budget:(fresh ()) ~keep_ws input) in
  let dom = capture (fun () -> dom_events ?budget:(fresh ()) ~keep_ws input) in
  match stax, dom with
  | R_bug m, _ | _, R_bug m -> Bug m
  | R_ok a, R_ok b ->
    if a = b then Accepted (List.length a)
    else Bug "DOM and StAX accepted the input with different event streams"
  | R_parse (l, c, m), R_parse (l', c', m') ->
    if (l, c, m) = (l', c', m') then Rejected (l, c, m)
    else
      Bug
        (Printf.sprintf "DOM/StAX rejections disagree: %d:%d %s vs %d:%d %s"
           l c m l' c' m')
  | R_budget w, R_budget w' ->
    if w = w' then Budgeted w
    else Bug (Printf.sprintf "DOM/StAX budget trips disagree: %s vs %s" w w')
  | (R_ok _ | R_parse _ | R_budget _), _ ->
    Bug
      (Printf.sprintf "DOM/StAX outcome classes diverge: StAX %s, DOM %s"
         (describe stax) (describe dom))

(* --- generators -------------------------------------------------------- *)

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let tag_pool =
  [| "a"; "b"; "item"; "bk:ISBN"; "_under"; "long-name.1"; "xmlns:ns"; "r" |]

let word_pool =
  [| "alpha"; "beta"; "x"; "line1\nline2"; "24.95"; "  padded  "; "\t" |]

let entity_pool =
  [| "&lt;"; "&gt;"; "&amp;"; "&apos;"; "&quot;"; "&#65;"; "&#x41;";
     "&#x4E2D;"; "&#xA;" |]

let gen_text rng buf =
  for _ = 1 to 1 + Random.State.int rng 3 do
    if Random.State.int rng 3 = 0 then
      Buffer.add_string buf (pick rng entity_pool)
    else Buffer.add_string buf (pick rng word_pool)
  done

let gen_attrs rng buf =
  for i = 1 to Random.State.int rng 3 do
    let q = if Random.State.bool rng then '"' else '\'' in
    Buffer.add_string buf (Printf.sprintf " k%d=%c" i q);
    if Random.State.bool rng then
      Buffer.add_string buf (pick rng [| "v"; ""; "&amp;"; "a b"; "&#65;" |]);
    Buffer.add_char buf q
  done

(* Bounded generator recursion (max depth 6): deep documents are a
   dedicated shape below, built by string repetition, not recursion. *)
let rec gen_elem rng buf depth =
  let tag = pick rng tag_pool in
  Buffer.add_char buf '<';
  Buffer.add_string buf tag;
  gen_attrs rng buf;
  if depth = 0 || Random.State.int rng 4 = 0 then
    Buffer.add_string buf (if Random.State.bool rng then "/>" else
      Printf.sprintf "></%s>" tag)
  else begin
    Buffer.add_char buf '>';
    for _ = 1 to 1 + Random.State.int rng 3 do
      match Random.State.int rng 6 with
      | 0 -> gen_elem rng buf (depth - 1)
      | 1 -> Buffer.add_string buf "<![CDATA[ data ]] ]]>"
      | 2 -> Buffer.add_string buf "<!-- a comment -->"
      | 3 -> Buffer.add_string buf "<?pi target?>"
      | _ -> gen_text rng buf
    done;
    Buffer.add_string buf "</";
    Buffer.add_string buf tag;
    Buffer.add_char buf '>'
  end

let gen_doc rng =
  let buf = Buffer.create 256 in
  if Random.State.int rng 10 = 0 then Buffer.add_string buf "\xEF\xBB\xBF";
  if Random.State.bool rng then
    Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  if Random.State.int rng 4 = 0 then
    Buffer.add_string buf "<!-- prolog comment -->\n";
  if Random.State.int rng 4 = 0 then
    Buffer.add_string buf
      "<!DOCTYPE r SYSTEM \"a>b\" [ <!ELEMENT r (#PCDATA)> ]>\n";
  gen_elem rng buf (1 + Random.State.int rng 5);
  if Random.State.int rng 4 = 0 then Buffer.add_string buf "\n<!-- trailer -->";
  if Random.State.bool rng then Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- mutators ---------------------------------------------------------- *)

let byte_classes = [| '<'; '>'; '&'; '"'; '\''; '/'; ';'; ' '; 'a' |]

(* Truncate just before or after a randomly chosen occurrence of a random
   byte class — the "cut at every byte class" strategy, one draw at a
   time. *)
let truncate rng s =
  if s = "" then s
  else begin
    let cls = pick rng byte_classes in
    let hits = ref [] in
    String.iteri (fun i c -> if c = cls then hits := i :: !hits) s;
    match !hits with
    | [] -> String.sub s 0 (Random.State.int rng (String.length s))
    | hits ->
      let at = List.nth hits (Random.State.int rng (List.length hits)) in
      let keep = if Random.State.bool rng then at else at + 1 in
      String.sub s 0 keep
  end

let garbage_pool =
  [| "<"; "</"; "<!"; "<!["; "<?"; "&"; "&;"; "]]>"; "--"; "\x00"; "\xFF";
     "\"\""; "=''"; "<1bad/>"; "</nope>" |]

let splice rng s =
  let at = Random.State.int rng (String.length s + 1) in
  String.sub s 0 at ^ pick rng garbage_pool
  ^ String.sub s at (String.length s - at)

(* Break tag balance: retarget or delete one closing tag. *)
let unbalance rng s =
  let re_close i =
    if i + 1 < String.length s && s.[i] = '<' && s.[i + 1] = '/' then Some i
    else None
  in
  let closes = ref [] in
  String.iteri (fun i _ -> match re_close i with
    | Some i -> closes := i :: !closes
    | None -> ()) s;
  match !closes with
  | [] -> splice rng s
  | closes ->
    let at = List.nth closes (Random.State.int rng (List.length closes)) in
    let fin = try String.index_from s at '>' with Not_found -> String.length s - 1 in
    if Random.State.bool rng then
      (* delete the close tag *)
      String.sub s 0 at ^ String.sub s (fin + 1) (String.length s - fin - 1)
    else
      (* retarget it *)
      String.sub s 0 at ^ "</zzz>"
      ^ String.sub s (fin + 1) (String.length s - fin - 1)

let dup_attr rng s =
  ignore rng;
  match String.index_opt s '<' with
  | Some i when i + 1 < String.length s && s.[i + 1] <> '?' && s.[i + 1] <> '!'
    ->
    let fin = try String.index_from s i '>' with Not_found -> String.length s in
    let fin = if fin > i && s.[fin - 1] = '/' then fin - 1 else fin in
    String.sub s 0 fin ^ " dup=\"1\" dup=\"2\""
    ^ String.sub s fin (String.length s - fin)
  | _ -> "<a dup='1' dup='2'/>"

let repeat n s =
  let buf = Buffer.create (n * String.length s) in
  for _ = 1 to n do Buffer.add_string buf s done;
  Buffer.contents buf

let deep rng =
  let d = 1_000 + Random.State.int rng 29_000 in
  let closed = Random.State.int rng 4 <> 0 in
  repeat d "<d>" ^ "x" ^ (if closed then repeat d "</d>" else "")

let flood rng =
  match Random.State.int rng 3 with
  | 0 -> "<r>" ^ repeat (1_000 + Random.State.int rng 19_000) "<x/>" ^ "</r>"
  | 1 ->
    let n = 50 + Random.State.int rng 250 in
    let buf = Buffer.create (n * 8) in
    Buffer.add_string buf "<r";
    for i = 1 to n do
      Buffer.add_string buf (Printf.sprintf " a%d=\"\"" i)
    done;
    (* sometimes smuggle a duplicate into the flood *)
    if Random.State.bool rng then Buffer.add_string buf " a1=\"again\"";
    Buffer.add_string buf "/>";
    Buffer.contents buf
  | _ ->
    (* one enormous text node built from references *)
    "<r>" ^ repeat (1_000 + Random.State.int rng 4_000) "&#x41;" ^ "</r>"

let ref_torture rng =
  pick rng
    [| "<r>&#" ^ String.make 50 '9' ^ ";</r>";
       "<r>&#x110000;</r>"; "<r>&#0;</r>"; "<r>&#xD800;</r>";
       "<r>&#xDFFF;</r>"; "<r>&bogus;</r>"; "<r>&</r>"; "<r>&;</r>";
       "<r>&#;</r>"; "<r>&#x;</r>"; "<r a=\"&#2;\"/>"; "<r>&#31;</r>";
       "<r>&#9;&#10;&#13;&#x10FFFF;</r>"; "<r>&amp</r>"; "<r>&#38;#38;</r>" |]

let cdata_comment_torture rng =
  pick rng
    [| "<r>]]></r>"; "<r><![CDATA[unterminated"; "<r><![CDATA[]]]]>]]></r>";
       "<r><!-- -- --></r>"; "<r><!-- unterminated"; "<r><!--></r>";
       "<r><![CDAT[x]]></r>"; "<![CDATA[top]]>"; "<r><![CDATA[]]></r>";
       "<r>a]]b</r>"; "<r><!---></r>" |]

let doctype_torture rng =
  pick rng
    [| "<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]><r/>";
       "<!DOCTYPE r SYSTEM \"http://x/y>z\"><r/>";
       "<!DOCTYPE r ]><r/>"; "<!DOCTYPE r [ ]<r/>"; "<r/><!DOCTYPE r []>";
       "<!DOCTYPE a><!DOCTYPE b><r/>"; "<!DOCTYPE"; "<!DOCTYPE r [";
       "<!DOCTYPE r \"unclosed literal><r/>";
       "<r><!DOCTYPE inner []></r>" |]

let garbage rng =
  let n = 1 + Random.State.int rng 200 in
  String.init n (fun _ -> Char.chr (Random.State.int rng 256))

let bom_torture rng =
  pick rng
    [| "\xFE\xFF<a/>"; "\xFF\xFE<a/>"; "\x00<a/>"; "\xEF\xBB<a/>";
       "\xEF\xBB\xBF<a/>"; "\xEF\xBB\xBF"; "\xEF<a/>" |]

let generate rng =
  match Random.State.int rng 13 with
  | 0 -> gen_doc rng
  | 1 | 2 -> truncate rng (gen_doc rng)
  | 3 -> splice rng (gen_doc rng)
  | 4 -> unbalance rng (gen_doc rng)
  | 5 -> dup_attr rng (gen_doc rng)
  | 6 -> deep rng
  | 7 -> flood rng
  | 8 -> ref_torture rng
  | 9 -> cdata_comment_torture rng
  | 10 -> doctype_torture rng
  | 11 -> bom_torture rng
  | _ -> garbage rng

(* --- the harness ------------------------------------------------------- *)

type report = {
  total : int;
  accepted : int;
  rejected : int;
  budgeted : int;
  bugs : (string * string) list;
}

let run ?(seed = 20060806) ?(max_bugs = 10) ~count () =
  let rng = Random.State.make [| seed |] in
  let accepted = ref 0 and rejected = ref 0 and budgeted = ref 0 in
  let bugs = ref [] and n_bugs = ref 0 in
  for _ = 1 to count do
    let input = generate rng in
    let keep_ws = Random.State.bool rng in
    let mk_budget =
      if Random.State.int rng 3 = 0 then
        Some (fun () -> Budget.create ~max_depth:512 ~max_nodes:200_000 ())
      else None
    in
    match check ~keep_ws ?mk_budget input with
    | Accepted _ -> incr accepted
    | Rejected _ -> incr rejected
    | Budgeted _ -> incr budgeted
    | Bug diagnosis ->
      incr n_bugs;
      if !n_bugs <= max_bugs then bugs := (input, diagnosis) :: !bugs
  done;
  { total = count; accepted = !accepted; rejected = !rejected;
    budgeted = !budgeted; bugs = List.rev !bugs }

let pp_report ppf r =
  Fmt.pf ppf "fuzz: %d inputs — %d accepted (DOM ≡ StAX), %d rejected \
              (positioned), %d budgeted, %d bug(s)"
    r.total r.accepted r.rejected r.budgeted (List.length r.bugs)
