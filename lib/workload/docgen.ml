module Dtd = Smoqe_xml.Dtd
module Tree = Smoqe_xml.Tree

exception No_finite_expansion of string

(* Minimal expansion height per type, by fixpoint: [None] = not yet known
   finite.  Regex cost: Seq adds both sides, Alt takes the cheaper branch,
   Star/Opt cost nothing (expand to zero repetitions). *)
let min_depths dtd =
  let table : (string, int option) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace table name None)
    (Dtd.element_names dtd);
  let opt_min a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)
  in
  let opt_add a b =
    match a, b with Some a, Some b -> Some (max a b) | _ -> None
  in
  let rec regex_depth = function
    | Dtd.Eps | Dtd.Pcdata -> Some 1 (* a text child has height 1 *)
    | Dtd.Name child -> Hashtbl.find table child
    | Dtd.Seq (a, b) -> opt_add (regex_depth a) (regex_depth b)
    | Dtd.Alt (a, b) -> opt_min (regex_depth a) (regex_depth b)
    | Dtd.Star _ | Dtd.Opt _ -> Some 0
    | Dtd.Plus r -> regex_depth r
  in
  let content_depth = function
    | Dtd.Empty -> Some 0
    | Dtd.Any -> Some 0 (* expandable to empty in our generator *)
    | Dtd.Mixed _ -> Some 0
    | Dtd.Children r -> regex_depth r
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (name, content) ->
        let d =
          match content_depth content with
          | None -> None
          | Some k -> Some (k + 1)
        in
        if d <> Hashtbl.find table name && d <> None then begin
          (match Hashtbl.find table name, d with
          | None, Some _ -> Hashtbl.replace table name d; changed := true
          | Some old, Some fresh when fresh < old ->
            Hashtbl.replace table name d;
            changed := true
          | _ -> ())
        end)
      (Dtd.productions dtd)
  done;
  table

let min_depth_of_type dtd name = Hashtbl.find (min_depths dtd) name

let generate ?(seed = 42) ?rng ?(max_depth = 12) ?(fanout = 3)
    ?(text_pool = [ "alpha"; "beta"; "gamma"; "delta"; "x"; "y" ]) dtd =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let depths = min_depths dtd in
  let min_depth name =
    match Hashtbl.find_opt depths name with
    | Some (Some d) -> d
    | Some None | None -> raise (No_finite_expansion name)
  in
  List.iter
    (fun name -> ignore (min_depth name))
    (Dtd.reachable dtd);
  let pick_text () =
    match text_pool with
    | [] -> "t"
    | pool -> List.nth pool (Random.State.int rng (List.length pool))
  in
  let rec regex_min_depth = function
    | Dtd.Eps -> 0
    | Dtd.Pcdata -> 1
    | Dtd.Name child -> min_depth child
    | Dtd.Seq (a, b) -> max (regex_min_depth a) (regex_min_depth b)
    | Dtd.Alt (a, b) -> min (regex_min_depth a) (regex_min_depth b)
    | Dtd.Star _ | Dtd.Opt _ -> 0
    | Dtd.Plus r -> regex_min_depth r
  in
  let rec expand_regex budget r =
    match r with
    | Dtd.Eps -> []
    | Dtd.Pcdata -> [ Tree.T (pick_text ()) ]
    | Dtd.Name child -> [ expand_type budget child ]
    | Dtd.Seq (a, b) -> expand_regex budget a @ expand_regex budget b
    | Dtd.Alt (a, b) ->
      let da = regex_min_depth a and db = regex_min_depth b in
      let pick_a =
        if max da db > budget then da <= db else Random.State.bool rng
      in
      expand_regex budget (if pick_a then a else b)
    | Dtd.Star r ->
      if regex_min_depth r > budget then []
      else begin
        let k = Random.State.int rng (fanout + 1) in
        List.concat (List.init k (fun _ -> expand_regex budget r))
      end
    | Dtd.Plus r ->
      let k = 1 + Random.State.int rng fanout in
      let k = if regex_min_depth r > budget then 1 else k in
      List.concat (List.init k (fun _ -> expand_regex budget r))
    | Dtd.Opt r ->
      if regex_min_depth r > budget then []
      else if Random.State.bool rng then expand_regex budget r
      else []
  and expand_type budget name =
    let budget = budget - 1 in
    let kids =
      match Dtd.content dtd name with
      | None | Some Dtd.Empty | Some Dtd.Any -> []
      | Some (Dtd.Mixed names) ->
        (* a few interleaved text and allowed elements *)
        let k = Random.State.int rng (fanout + 1) in
        let budgeted =
          List.filter (fun child -> min_depth child <= budget) names
        in
        Tree.T (pick_text ())
        :: List.concat
             (List.init k (fun _ ->
                  if budgeted = [] || Random.State.bool rng then
                    [ Tree.T (pick_text ()) ]
                  else begin
                    let child =
                      List.nth budgeted
                        (Random.State.int rng (List.length budgeted))
                    in
                    [ expand_type budget child ]
                  end))
      | Some (Dtd.Children r) -> expand_regex budget r
    in
    Tree.E (name, [], kids)
  in
  let root = Dtd.root dtd in
  Tree.of_source (expand_type (max max_depth (min_depth root)) root)

let generate_sized ?(seed = 42) ?max_depth ?text_pool ~target_nodes dtd =
  (* sizing probes must replay identically, so each attempt re-seeds —
     the threaded-[?rng] form would make attempt N depend on how many
     probes ran before it *)
  let rec try_fanout fanout best =
    let t = generate ~seed ?max_depth ~fanout ?text_pool dtd in
    let n = Tree.n_nodes t in
    if n >= target_nodes || fanout > 64 then
      if n >= target_nodes then t else best
    else try_fanout (fanout * 2) t
  in
  try_fanout 2 (generate ~seed ?max_depth ~fanout:2 ?text_pool dtd)
