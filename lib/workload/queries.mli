(** The benchmark query suite over the hospital schema (experiments E1–E4).

    Q1–Q8 cover the axes the demo exercises: plain paths, descendant axis,
    Kleene recursion through [parent], predicate-heavy selections, value
    tests, negation, and the paper's own Q0. *)

val suite : (string * string) list
(** (name, concrete syntax) pairs, in order Q1..Q8. *)

val parsed : (string * Smoqe_rxpath.Ast.path) list
(** The suite, parsed.  Raises only if the built-in texts are broken
    (covered by tests). *)

val q0 : string
(** The paper's Fig. 4 query (root-relative form, as evaluated from the
    document root node). *)

val view_suite : (string * string) list
(** Queries over the Fig. 3(d) view schema, for rewriting benchmarks. *)

val bib_suite : (string * string) list
(** Queries over the bib view schema ({!Bib.policy}), for the differential
    oracle battery. *)
