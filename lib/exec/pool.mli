(** A fixed pool of OCaml 5 domains serving a bounded work queue — the
    executor that turns the SMOQE engine into a multicore server.

    The pool is spawned {e once} (domain spawn costs milliseconds and a
    thread stack; per-query spawning would dwarf query latency) and sized
    explicitly: one worker domain per requested job.  Work arrives through
    {!submit}, which enqueues a thunk and returns a {!future}; the queue is
    bounded, so a producer that outruns the workers blocks in [submit]
    rather than growing the heap without limit (backpressure, not
    buffering).

    {b The sequential escape hatch.}  [create ~domains:1] (or [0]) builds
    the {e inline} executor: no domain is spawned, no queue exists, and
    {!submit} runs the thunk immediately on the caller — the future is
    already resolved when it is returned.  This is what keeps
    [--jobs 1] within noise of the pre-pool engine: the sequential path
    pays one closure allocation, no locks, no context switch.

    {b What tasks may touch.}  The pool itself makes no safety promises
    about the closures it runs — they execute concurrently on distinct
    domains.  Thunks submitted by the SMOQE engine close over
    domain-safe state only: the immutable document tree and TAX index
    snapshot, the mutex-guarded plan cache, and a per-task
    [Budget]/[Stats] instance created inside the thunk (see DESIGN.md §9,
    "Concurrency model").

    {b Exceptions} raised by a task are caught on the worker, stored in
    the future, and re-raised at {!await} on the awaiting domain — a
    crashing task never takes a worker down.  Engine tasks are total
    ([query_robust] returns [result]s), so for them this path is armor,
    not control flow. *)

type t
(** A pool handle.  Values of type [t] may be shared across domains:
    {!submit} is safe to call concurrently. *)

type 'a future
(** The pending (or completed) result of a submitted task. *)

val create : ?queue_capacity:int -> domains:int -> unit -> t
(** [create ~domains:n ()] spawns [n] worker domains ([n >= 2]), or the
    inline executor for [n <= 1].  [queue_capacity] bounds the number of
    tasks waiting to run (default [max 32 (4 * n)]); a full queue blocks
    {!submit} until a worker drains it. *)

val size : t -> int
(** Worker count: [1] for the inline executor. *)

val is_inline : t -> bool
(** True when no domains were spawned and tasks run on the caller. *)

val submit : ?lane:string -> t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  Blocks while the queue is full (the bound is the
    {e total} backlog across lanes); raises [Invalid_argument] if the
    pool has been {!shutdown}.  On the inline executor the task runs
    before [submit] returns.

    [~lane] names the fair-share lane (default: one shared lane — the
    pre-lane FIFO behavior).  Each lane is a FIFO of its own; workers
    serve non-empty lanes round-robin, one task per turn, so a lane that
    floods the pool — a hot tenant — delays only its own backlog while
    every other lane keeps its service rate.  Backpressure is global:
    a full pool blocks every submitter regardless of lane. *)

val await : 'a future -> 'a
(** Block until the task has run; return its value or re-raise the
    exception it died with.  Any domain may await any future, any number
    of times. *)

val await_result : 'a future -> ('a, exn) result
(** Like {!await}, with the task's exception reified instead of
    re-raised. *)

val peek : 'a future -> 'a option
(** [Some v] if the task has completed with [v]; [None] while pending or
    when it raised. *)

val shutdown : t -> unit
(** Drain the queue, run everything already submitted, then join the
    worker domains.  Subsequent {!submit}s raise.  Idempotent; a no-op on
    the inline executor. *)

val with_pool : ?queue_capacity:int -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] — {!create}, run [f], {!shutdown} (also on
    exception). *)

(** {1 Per-domain accounting} *)

val worker_loads : t -> int array
(** Tasks {e executed} per worker, index [0 .. size - 1] — the
    load-balance view, so tasks that raised count too (a crashing task
    occupied its worker just the same).  Summed over workers this equals
    the number of tasks run, successes and failures both.  Read without
    stopping the pool: counts are monotonic snapshots. *)

val worker_failures : t -> int array
(** Tasks that ended in an exception, per worker.  A subset of
    {!worker_loads}, not disjoint from it. *)

(** {1 Sizing} *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()]: what this machine can truly run
    in parallel. *)

val default_jobs : unit -> int
(** The [SMOQE_JOBS] environment variable if set to a positive integer,
    else [1].  Sequential by default: parallelism is opt-in, so single
    -query callers never pay for a pool they did not ask for. *)
