(* The domain-pool executor.  Plain mutex/condition plumbing from the
   OCaml 5 stdlib — no dependencies — with two deliberate shapes:

   - the queue is bounded and submit blocks when it is full, so a fast
     producer exerts backpressure instead of queueing unbounded closures;
   - [domains <= 1] builds an *inline* executor that runs tasks on the
     caller with no locks at all, keeping the sequential path free of any
     pool tax.

   Scheduling is fair-share across *lanes*: every task is submitted to a
   lane (the default lane when the caller names none; one lane per
   tenant in the multi-tenant engine), each lane keeps its own FIFO, and
   workers pick lanes round-robin, one task per turn.  A lane that
   floods the pool therefore delays only its own queue — other lanes
   keep their one-task-per-turn service rate no matter how deep the hot
   lane's backlog grows.  With a single active lane this degenerates to
   the old global FIFO exactly. *)

type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

(* Per-worker counters are Atomics: workers bump their own slot, any
   domain may read a snapshot without stopping the pool. *)
type worker = {
  completed : int Atomic.t;
  failed : int Atomic.t;
}

(* Lane invariants (all under [m]): [queued] is the total backlog over
   every lane; a lane name sits in [rr] exactly once iff its queue is
   non-empty; an emptied lane is removed from [lanes] so the table stays
   bounded by the number of lanes with work in flight. *)
type t = {
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  lanes : (string, (int -> unit) Queue.t) Hashtbl.t;
      (* per-lane FIFO of jobs, each given its worker's index *)
  rr : string Queue.t; (* round-robin order over non-empty lanes *)
  mutable queued : int; (* total jobs across lanes *)
  queue_capacity : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t array; (* [||] for the inline executor *)
  workers : worker array;
  inline : bool;
}

let size t = Array.length t.workers
let is_inline t = t.inline

let fresh_future () =
  { fm = Mutex.create (); fc = Condition.create (); state = Pending }

let fulfill fut st =
  Mutex.lock fut.fm;
  fut.state <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fc fut.fm;
      wait ()
    | Done v ->
      Mutex.unlock fut.fm;
      v
    | Raised e ->
      Mutex.unlock fut.fm;
      raise e
  in
  wait ()

let await_result fut =
  match await fut with v -> Ok v | exception e -> Error e

let peek fut =
  Mutex.lock fut.fm;
  let r = match fut.state with Done v -> Some v | Pending | Raised _ -> None in
  Mutex.unlock fut.fm;
  r

(* Run one task on worker [ix], routing the outcome into its future.  The
   catch-all is the worker's armor: a raising task is recorded and
   re-raised at [await], never on the worker's own stack.  [completed]
   counts executions (failures included — it is the load-balance view);
   [failed] marks the subset that raised. *)
let run_task workers fut f ix =
  (match f () with
  | v ->
    Atomic.incr workers.(ix).completed;
    fulfill fut (Done v)
  | exception e ->
    Atomic.incr workers.(ix).completed;
    Atomic.incr workers.(ix).failed;
    fulfill fut (Raised e))

(* Pop the next job fair-share: take the lane at the head of the
   round-robin order, serve one task from it, and send the lane to the
   back of the order if it still has work.  Caller holds [m]. *)
let pop_fair t =
  let lane = Queue.pop t.rr in
  let laneq = Hashtbl.find t.lanes lane in
  let job = Queue.pop laneq in
  t.queued <- t.queued - 1;
  if Queue.is_empty laneq then Hashtbl.remove t.lanes lane
  else Queue.push lane t.rr;
  job

let rec worker_loop t ix =
  Mutex.lock t.m;
  while t.queued = 0 && not t.stopping do
    Condition.wait t.not_empty t.m
  done;
  if t.queued = 0 then
    (* stopping, and nothing left to drain *)
    Mutex.unlock t.m
  else begin
    let job = pop_fair t in
    Condition.signal t.not_full;
    Mutex.unlock t.m;
    job ix;
    worker_loop t ix
  end

let create ?queue_capacity ~domains () =
  let n = max 1 domains in
  let inline = n <= 1 in
  let qcap =
    max 1 (Option.value queue_capacity ~default:(max 32 (4 * n)))
  in
  let t =
    {
      m = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      lanes = Hashtbl.create 8;
      rr = Queue.create ();
      queued = 0;
      queue_capacity = qcap;
      stopping = false;
      domains = [||];
      workers =
        Array.init n (fun _ ->
            { completed = Atomic.make 0; failed = Atomic.make 0 });
      inline;
    }
  in
  if not inline then
    t.domains <- Array.init n (fun ix -> Domain.spawn (fun () -> worker_loop t ix));
  t

let submit ?(lane = "") t f =
  let fut = fresh_future () in
  if t.inline then begin
    (* The future is not yet visible to any other domain: resolve it
       without touching its lock. *)
    (match f () with
    | v ->
      Atomic.incr t.workers.(0).completed;
      fut.state <- Done v
    | exception e ->
      Atomic.incr t.workers.(0).completed;
      Atomic.incr t.workers.(0).failed;
      fut.state <- Raised e)
  end
  else begin
    Mutex.lock t.m;
    while t.queued >= t.queue_capacity && not t.stopping do
      Condition.wait t.not_full t.m
    done;
    if t.stopping then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    let laneq =
      match Hashtbl.find_opt t.lanes lane with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.lanes lane q;
        Queue.push lane t.rr;
        q
    in
    Queue.push (run_task t.workers fut f) laneq;
    t.queued <- t.queued + 1;
    Condition.signal t.not_empty;
    Mutex.unlock t.m
  end;
  fut

let shutdown t =
  if not t.inline then begin
    Mutex.lock t.m;
    let was_stopping = t.stopping in
    t.stopping <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.m;
    if not was_stopping then Array.iter Domain.join t.domains
  end

let with_pool ?queue_capacity ~domains f =
  let t = create ?queue_capacity ~domains () in
  match f t with
  | v ->
    shutdown t;
    v
  | exception e ->
    shutdown t;
    raise e

let worker_loads t = Array.map (fun w -> Atomic.get w.completed) t.workers
let worker_failures t = Array.map (fun w -> Atomic.get w.failed) t.workers

let recommended_domains () = Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "SMOQE_JOBS" with
  | None | Some "" -> 1
  | Some v ->
    (match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)
