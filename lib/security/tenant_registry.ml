(* Tenant -> canonical policy key -> shared derivation artifacts.

   Production serving has thousands of tenants but far fewer distinct
   policies: the registry keys every tenant by {!Policy_key.of_policy}
   and derives the security view once per key, refcounted across the
   tenants that share it.  Policy churn (a tenant re-registering under a
   different policy) moves the tenant to the new key; when a key's last
   tenant leaves, its artifacts are dropped, the registry generation
   bumps, and the retired key is reported so callers can invalidate any
   compiled plans cached under it.

   Derivation runs under the registry lock: it happens once per distinct
   policy, so serializing it is cheaper than the double-derivation races
   a lock-free scheme would admit.  [Derive.Unsupported] propagates to
   the caller with the registry unchanged. *)

type shared = {
  sh_policy : Policy.t;
  sh_view : Derive.view;
  mutable sh_refs : int;
}

type t = {
  lock : Mutex.t;
  tenants : (string, string) Hashtbl.t; (* tenant -> policy key *)
  artifacts : (string, shared) Hashtbl.t; (* policy key -> shared *)
  mutable generation : int;
  mutable key_hits : int;
  mutable derivations : int;
}

type registration = {
  reg_key : string;
  reg_view : Derive.view;
  reg_shared : bool;
  reg_retired : string option;
}

let create () =
  {
    lock = Mutex.create ();
    tenants = Hashtbl.create 64;
    artifacts = Hashtbl.create 16;
    generation = 0;
    key_hits = 0;
    derivations = 0;
  }

(* Drop one reference to [key]; returns [Some key] if that was the last
   tenant and the artifacts were retired. *)
let release t key =
  match Hashtbl.find_opt t.artifacts key with
  | None -> None
  | Some sh ->
    sh.sh_refs <- sh.sh_refs - 1;
    if sh.sh_refs <= 0 then begin
      Hashtbl.remove t.artifacts key;
      t.generation <- t.generation + 1;
      Some key
    end
    else None

let register t ~tenant policy =
  let key = Policy_key.of_policy policy in
  Mutex.protect t.lock (fun () ->
      let previous = Hashtbl.find_opt t.tenants tenant in
      match previous with
      | Some old_key when String.equal old_key key ->
        (* idempotent re-registration under the same policy content *)
        let sh = Hashtbl.find t.artifacts key in
        t.key_hits <- t.key_hits + 1;
        { reg_key = key; reg_view = sh.sh_view; reg_shared = true;
          reg_retired = None }
      | _ ->
        let shared, view =
          match Hashtbl.find_opt t.artifacts key with
          | Some sh ->
            sh.sh_refs <- sh.sh_refs + 1;
            t.key_hits <- t.key_hits + 1;
            (true, sh.sh_view)
          | None ->
            let view = Derive.derive policy in
            Hashtbl.replace t.artifacts key
              { sh_policy = policy; sh_view = view; sh_refs = 1 };
            t.derivations <- t.derivations + 1;
            t.generation <- t.generation + 1;
            (false, view)
        in
        Hashtbl.replace t.tenants tenant key;
        let retired =
          match previous with Some old -> release t old | None -> None
        in
        { reg_key = key; reg_view = view; reg_shared = shared;
          reg_retired = retired })

let remove t ~tenant =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tenants tenant with
      | None -> None
      | Some key ->
        Hashtbl.remove t.tenants tenant;
        release t key)

let lookup t ~tenant =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tenants tenant with
      | None -> None
      | Some key ->
        (match Hashtbl.find_opt t.artifacts key with
        | None -> None
        | Some sh -> Some (key, sh.sh_view)))

let key_of t ~tenant =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.tenants tenant)

let policy_of t ~tenant =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tenants tenant with
      | None -> None
      | Some key ->
        Option.map (fun sh -> sh.sh_policy) (Hashtbl.find_opt t.artifacts key))

let tenants t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.tenants []
      |> List.sort compare)

let shared_keys t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun key _ acc -> key :: acc) t.artifacts []
      |> List.sort compare)

let generation t = Mutex.protect t.lock (fun () -> t.generation)
let key_hits t = Mutex.protect t.lock (fun () -> t.key_hits)
let derivations t = Mutex.protect t.lock (fun () -> t.derivations)

let counters t =
  Mutex.protect t.lock (fun () ->
      [
        ("tenants", Hashtbl.length t.tenants);
        ("policy_keys", Hashtbl.length t.artifacts);
        ("policy_key_hits", t.key_hits);
        ("derivations", t.derivations);
        ("generation", t.generation);
      ])
