(** Canonical policy keys — a stable hash of a policy's normalized
    annotation structure.

    Policies that agree after normalization (annotation order is
    irrelevant; qualifiers compare by their deterministic pretty-printed
    form) map to the same key, so multi-tenant layers can share derived
    views, rewrites and compiled plans across tenants whose policies
    coincide.  Keys include the DTD root: equal annotation lists over
    different document types never collide. *)

val canonical_text : Policy.t -> string
(** The normalized byte rendering that is hashed — exposed for tests and
    debugging.  Equal policies have equal canonical text. *)

val of_policy : Policy.t -> string
(** Stable hex key (content hash of {!canonical_text}).  Pure function of
    the policy's semantic content. *)
