(** Tenant registry: tenant -> canonical policy key -> shared derivation
    artifacts.

    Tenants whose policies agree after {!Policy_key} normalization share
    one {!Derive.view} (and, downstream, one rewrite and one compiled
    plan).  Artifacts are refcounted per key; policy churn moves a tenant
    between keys, and a key whose last tenant leaves is retired — the
    caller learns which key died so plans cached under it can be
    invalidated.  All operations are thread-safe. *)

type t

type registration = {
  reg_key : string;  (** canonical policy key the tenant now serves under *)
  reg_view : Derive.view;  (** shared derived view for that key *)
  reg_shared : bool;
      (** [true] when the view was reused from an earlier derivation
          (a policy-key hit); [false] when this registration derived it *)
  reg_retired : string option;
      (** a previously-held key whose artifacts were dropped because this
          tenant was its last holder — invalidate cached plans under it *)
}

val create : unit -> t

val register : t -> tenant:string -> Policy.t -> registration
(** Register (or re-register) a tenant under a policy.  Derives the view
    only if the canonical key is new; idempotent when the policy content
    is unchanged.  [Derive.Unsupported] propagates with the registry
    unchanged. *)

val remove : t -> tenant:string -> string option
(** Forget a tenant.  Returns the retired policy key if the tenant was
    the last holder of its artifacts. *)

val lookup : t -> tenant:string -> (string * Derive.view) option
(** The tenant's (policy key, shared view), if registered. *)

val key_of : t -> tenant:string -> string option
val policy_of : t -> tenant:string -> Policy.t option
val tenants : t -> string list  (** sorted *)

val shared_keys : t -> string list
(** Distinct live policy keys, sorted. *)

val generation : t -> int
(** Bumps on any derivation or retirement — a cheap churn witness. *)

val key_hits : t -> int
(** Registrations/lookups served from an already-derived key. *)

val derivations : t -> int
val counters : t -> (string * int) list
