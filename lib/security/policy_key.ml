(* Canonical policy keys: the Plan_cache.Canon trick lifted from queries
   to whole policies.  Two tenants whose annotation structures agree
   after normalization hash to the same key and can share one derived
   view spec, one rewrite and one compiled plan.

   Normalization: annotations are sorted by (parent, child) edge — the
   declaration order a policy file happens to use is semantically inert —
   and each annotation is rendered into an unambiguous byte string
   ([\x00]-separated fields, [\x01]-separated records, neither of which
   can appear in element names or qualifier text).  [Allow]/[Deny]
   render as fixed tags; [Cond q] renders the qualifier through the
   deterministic {!Smoqe_rxpath.Pretty} printer, so alpha-equivalent
   spellings that pretty-print identically collapse.  The DTD root is
   included: the same annotation list over different document types must
   not collide. *)

let render_annotation buf ((parent, child), ann) =
  Buffer.add_string buf parent;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf child;
  Buffer.add_char buf '\x00';
  (match ann with
  | Policy.Allow -> Buffer.add_string buf "Y"
  | Policy.Deny -> Buffer.add_string buf "N"
  | Policy.Cond q ->
    Buffer.add_string buf "C:";
    Buffer.add_string buf (Fmt.str "%a" Smoqe_rxpath.Pretty.pp_qual q));
  Buffer.add_char buf '\x01'

let canonical_text policy =
  let anns =
    List.sort
      (fun (e1, _) (e2, _) -> compare (e1 : string * string) e2)
      (Policy.annotations policy)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Smoqe_xml.Dtd.root (Policy.dtd policy));
  Buffer.add_char buf '\x01';
  List.iter (render_annotation buf) anns;
  Buffer.contents buf

let of_policy policy = Digest.to_hex (Digest.string (canonical_text policy))
