module Tree = Smoqe_xml.Tree
module Nfa = Smoqe_automata.Nfa
module Afa = Smoqe_automata.Afa
module Mfa = Smoqe_automata.Mfa

type result = {
  answers : int list;
  passes_over_data : int;
  predicate_work : int;
}

let test_matches test tree node = Nfa.test_matches test tree node

let run (mfa : Mfa.t) tree =
  let nfa = mfa.Mfa.nfa in
  let n_nodes = Tree.n_nodes tree in
  let n_states = nfa.Nfa.n_states in
  let n_quals = Array.length mfa.Mfa.quals in
  let work = ref 0 in

  (* Pass 0: preprocessing — materialize the binary encoding Arb needs.
     The copies themselves are used by the later passes. *)
  let first_child = Array.make n_nodes (-1) in
  let next_sibling = Array.make n_nodes (-1) in
  for n = 0 to n_nodes - 1 do
    (match Tree.first_child tree n with
    | Some c -> first_child.(n) <- c
    | None -> ());
    match Tree.next_sibling tree n with
    | Some s -> next_sibling.(n) <- s
    | None -> ()
  done;

  (* Which states belong to which qualifier's atoms (resolution strata). *)
  let atoms_of_qual =
    Array.map (fun formula -> Afa.atoms_of formula) mfa.Mfa.quals
  in
  let atom_states =
    Array.map
      (fun (atom : Afa.atom) -> Nfa.reachable_states nfa atom.Afa.start)
      mfa.Mfa.atoms
  in

  (* Pass 1: bottom-up.  sat.(n * n_states + s) = a run in state [s]
     positioned at node [n] accepts (an atom) within the subtree of [n].
     qual_val.(n * n_quals + q) = qualifier [q] holds at [n]. *)
  let sat = Bytes.make (n_nodes * n_states) '\000' in
  let sat_get n s = Bytes.get sat ((n * n_states) + s) <> '\000' in
  let sat_set n s = Bytes.set sat ((n * n_states) + s) '\001' in
  let qual_val = Bytes.make (max 1 (n_nodes * n_quals)) '\000' in
  let qual_get n q = Bytes.get qual_val ((n * n_quals) + q) <> '\000' in
  let qual_set n q = Bytes.set qual_val ((n * n_quals) + q) '\001' in
  let checks_hold n s =
    List.for_all (fun q -> qual_get n q) nfa.Nfa.checks.(s)
  in
  let accept_ok n s =
    List.exists
      (fun accept ->
        match accept with
        | Nfa.Select -> false
        | Nfa.Atom_accept aid ->
          (match (mfa.Mfa.atoms.(aid)).Afa.value with
          | None -> true
          | Some c -> Tree.value_equal tree n c))
      nfa.Nfa.accepts.(s)
  in
  for n = n_nodes - 1 downto 0 do
    (* Resolve qualifiers in nesting (ascending id) order; each stratum's
       atom subgraphs only check already-resolved qualifiers. *)
    for q = 0 to n_quals - 1 do
      List.iter
        (fun aid ->
          let states = atom_states.(aid) in
          let changed = ref true in
          while !changed do
            changed := false;
            List.iter
              (fun s ->
                incr work;
                if (not (sat_get n s)) && checks_hold n s then begin
                  let here =
                    accept_ok n s
                    || List.exists (fun s' -> sat_get n s') nfa.Nfa.eps.(s)
                    ||
                    let rec any_child c =
                      c >= 0
                      && (List.exists
                            (fun (test, s') ->
                              test_matches test tree c && sat_get c s')
                            nfa.Nfa.delta.(s)
                         || any_child next_sibling.(c))
                    in
                    any_child first_child.(n)
                  in
                  if here then begin
                    sat_set n s;
                    changed := true
                  end
                end)
              states
          done)
        atoms_of_qual.(q);
      let v =
        Afa.eval mfa.Mfa.quals.(q) (fun aid ->
            sat_get n (mfa.Mfa.atoms.(aid)).Afa.start)
      in
      if v then qual_set n q
    done
  done;

  (* Pass 2: top-down selection with all predicates resolved. *)
  let answers = ref [] in
  let closure node states =
    let seen = Array.make n_states false in
    let rec visit s =
      if (not seen.(s)) && checks_hold node s then begin
        seen.(s) <- true;
        if List.mem Nfa.Select nfa.Nfa.accepts.(s) then
          answers := node :: !answers;
        List.iter visit nfa.Nfa.eps.(s)
      end
    in
    List.iter visit states;
    seen
  in
  let rec walk node states =
    let closed = closure node states in
    let rec each_child c =
      if c >= 0 then begin
        let matched = ref [] in
        Array.iteri
          (fun s in_closure ->
            if in_closure then
              List.iter
                (fun (test, s') ->
                  if test_matches test tree c then matched := s' :: !matched)
                nfa.Nfa.delta.(s))
          closed;
        if !matched <> [] then walk c !matched;
        each_child next_sibling.(c)
      end
    in
    each_child first_child.(node)
  in
  walk Tree.root [ mfa.Mfa.start ];
  {
    answers = List.sort_uniq compare !answers;
    passes_over_data = 3;
    predicate_work = !work;
  }

let eval tree path = run (Smoqe_automata.Compile.compile path) tree
