module Tree = Smoqe_xml.Tree
module Ast = Smoqe_rxpath.Ast

type result = {
  answers : int list;
  node_visits : int;
  passes_over_data : int;
}

(* Node-at-a-time evaluation, the way generic XPath engines work: a
   relative path is evaluated independently from each context node,
   intermediate results are node lists deduplicated (sorted) after every
   composition step, and qualifiers are re-evaluated from scratch at every
   candidate.  Nothing is shared across context nodes, which is exactly
   the re-traversal behaviour the paper contrasts HyPE with. *)
let run tree path =
  let visits = ref 0 in
  let child_step keep n =
    Tree.fold_children tree n ~init:[] ~f:(fun acc c ->
        incr visits;
        if keep c then c :: acc else acc)
    |> List.rev
  in
  let rec select p n : int list =
    match p with
    | Ast.Self -> [ n ]
    | Ast.Tag s ->
      child_step (fun c -> Tree.is_element tree c && Tree.name tree c = s) n
    | Ast.Wildcard -> child_step (fun c -> Tree.is_element tree c) n
    | Ast.Text -> child_step (fun c -> Tree.is_text tree c) n
    | Ast.Seq (a, b) ->
      (* per-context evaluation of the tail, then a dedup/sort pass *)
      select a n
      |> List.concat_map (fun m -> select b m)
      |> List.sort_uniq compare
    | Ast.Union (a, b) -> List.sort_uniq compare (select a n @ select b n)
    | Ast.Star p ->
      let rec fix acc frontier =
        match frontier with
        | [] -> acc
        | _ ->
          let next =
            frontier
            |> List.concat_map (fun m -> select p m)
            |> List.sort_uniq compare
            |> List.filter (fun m -> not (List.mem m acc))
          in
          fix (List.sort_uniq compare (acc @ next)) next
      in
      fix [ n ] [ n ]
    | Ast.Filter (p, q) ->
      (* qualifier re-evaluated independently at every candidate *)
      List.filter (fun m -> holds q m) (select p n)
  and holds q n =
    incr visits;
    match q with
    | Ast.True -> true
    | Ast.Exists p -> select p n <> []
    | Ast.Value_eq (p, c) ->
      List.exists (fun m -> Tree.value_equal tree m c) (select p n)
    | Ast.Not q -> not (holds q n)
    | Ast.And (a, b) -> holds a n && holds b n
    | Ast.Or (a, b) -> holds a n || holds b n
  in
  let answers = List.sort_uniq compare (select path Tree.root) in
  { answers; node_visits = !visits; passes_over_data = 1 }
