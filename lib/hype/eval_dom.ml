module Tree = Smoqe_xml.Tree
module Tax = Smoqe_tax.Tax
module Reachability = Smoqe_automata.Reachability
module Mfa = Smoqe_automata.Mfa
module Budget = Smoqe_robust.Budget
module Failpoint = Smoqe_robust.Failpoint

module Shared = Smoqe_automata.Shared

type result = {
  answers : int list;
  stats : Stats.t;
  cans_size : int;
  budget_hit : (string * string) option;
}

type many_result = {
  by_query : int list array;
  m_stats : Stats.t;
  m_cans_size : int;
  m_budget_hit : (string * string) option;
}

(* Per-state pruning data, specialized against one document's tag table:
   the mandatory labels of every accepting path from the state, as tag ids
   (see {!Reachability}).  A mandatory label the document never uses means
   the state can never accept. *)
type prune_info =
  | Prune_always
  | Check of int array * bool (* required tag ids, text required *)

let prune_table mfa tree =
  let needs = Reachability.compute mfa.Mfa.nfa in
  Array.map
    (fun need ->
      match need with
      | Reachability.All -> Prune_always
      | Reachability.Req (labels, text) ->
        let ids = ref [] in
        let impossible = ref false in
        Reachability.String_set.iter
          (fun label ->
            match Tree.id_of_tag tree label with
            | Some id -> ids := id :: !ids
            | None -> impossible := true)
          labels;
        if !impossible then Prune_always
        else Check (Array.of_list !ids, text))
    needs

let run_core ?tax ?(prune_threshold = 48) ?budget ?trace ?tables ?use_tables
    ?memo_cap ?owners ?n_queries mfa tree =
  let use_tables =
    match use_tables with
    | Some b -> b
    | None -> Smoqe_automata.Tables.enabled_default ()
  in
  (* A frozen table built for exactly this tree can be reused (the plan
     cache hands one down); anything else is respecialized here so tag ids
     always align with [Tree.tag_id]. *)
  let tables, spec_us =
    if not use_tables then (None, 0)
    else
      match tables with
      | Some tb when Smoqe_automata.Tables.built_for tb tree -> (Some tb, 0)
      | Some _ | None ->
        let tb = Smoqe_automata.Tables.of_tree mfa.Mfa.nfa tree in
        (Some tb, Smoqe_automata.Tables.spec_us tb)
  in
  let engine = Engine.create ?trace ?tables ?memo_cap ?owners ?n_queries mfa in
  let stats = Engine.stats engine in
  stats.Stats.table_spec_us <- spec_us;
  let settled = ref 0 in
  (* The budget rides the engine's own node counter (see
     {!Engine.set_checkpoint}): it settles every 32 nodes, audits the
     Cans size every 256, and a final settlement after the traversal
     covers small documents.  The budgeted hot path therefore adds no
     per-node work at all, which is what holds the overhead guard
     (bench E10). *)
  (match budget with
  | None -> ()
  | Some b ->
    Engine.set_checkpoint engine (fun n ->
        Budget.tick_nodes b (n - !settled);
        settled := n;
        if n land 255 = 0 then Budget.check_cans b (Engine.cans_size engine)));
  let checkpoint () = Failpoint.trigger "hype.step" in
  let final_check () =
    match budget with
    | None -> ()
    | Some b ->
      Budget.tick_nodes b (stats.Stats.nodes_entered - !settled);
      settled := stats.Stats.nodes_entered;
      Budget.check_cans b (Engine.cans_size engine);
      Budget.check_deadline b
  in
  let skip_subtree n m count_field =
    (* n itself was entered; only its proper descendants are skipped *)
    let skipped = Tree.subtree_size tree n - 1 in
    (match count_field with
    | `Dead ->
      stats.Stats.nodes_skipped_dead <-
        stats.Stats.nodes_skipped_dead + skipped
    | `Tax ->
      stats.Stats.nodes_pruned_tax <- stats.Stats.nodes_pruned_tax + skipped);
    match trace with
    | None -> ()
    | Some tr ->
      for d = n + 1 to Tree.subtree_end tree n - 1 do
        Trace.mark tr d m
      done
  in
  let kind_of n =
    if Tree.is_text tree n then
      let backing, off, len = Tree.content_slice tree n in
      Engine.Tx_sub (backing, off, len)
    else Engine.El (Tree.name tree n)
  in
  let descend_check =
    match tax with
    | None -> fun _ -> true
    | Some idx ->
      let info = prune_table mfa tree in
      fun n ->
        if Tree.is_text tree n then false (* no children anyway *)
        else if Tree.subtree_size tree n < prune_threshold then true
          (* a small subtree costs less to scan than to test for pruning *)
        else begin
          let has_text = Tax.has_text idx n in
          (Engine.may_accept_value_here engine && has_text)
          ||
          let state_useful s =
            match info.(s) with
            | Prune_always -> false
            | Check (ids, text) ->
              ((not text) || has_text)
              && Array.for_all (fun id -> Tax.mem idx n id) ids
          in
          Engine.exists_live_state engine state_useful
        end
  in
  let rec visit n =
    checkpoint ();
    match
      Engine.enter_tagged engine ~id:n ~tag:(Tree.tag_id tree n)
        ~kind:(kind_of n)
    with
    | Engine.Dead -> skip_subtree n Trace.Skipped_dead `Dead
    | Engine.Alive ->
      (if tax = None || Tree.first_child tree n = None || descend_check n then
         Tree.iter_children tree n visit
       else skip_subtree n Trace.Pruned_tax `Tax);
      Engine.leave engine
  in
  let budget_hit = ref None in
  (try
     visit Tree.root;
     final_check ()
   with Budget.Exceeded { what; limit } -> budget_hit := Some (what, limit));
  (engine, stats, !budget_hit)

let run ?tax ?prune_threshold ?budget ?trace ?tables ?use_tables ?memo_cap mfa
    tree =
  let engine, stats, budget_hit =
    run_core ?tax ?prune_threshold ?budget ?trace ?tables ?use_tables ?memo_cap
      mfa tree
  in
  (* On a budget stop the traversal is incomplete: answers cannot be
     resolved, but the statistics accumulated so far are still reported. *)
  let answers =
    match budget_hit with None -> Engine.finish engine | Some _ -> []
  in
  Stats.note_tables stats;
  { answers; stats; cans_size = Engine.cans_size engine; budget_hit }

let run_many ?tax ?prune_threshold ?budget ?trace ?tables ?use_tables ?memo_cap
    (sh : Shared.t) tree =
  let engine, stats, budget_hit =
    run_core ?tax ?prune_threshold ?budget ?trace ?tables ?use_tables ?memo_cap
      ~owners:sh.Shared.owners ~n_queries:sh.Shared.n_queries sh.Shared.mfa
      tree
  in
  stats.Stats.batch_queries <- sh.Shared.n_queries;
  stats.Stats.shared_states <- sh.Shared.merged_states;
  stats.Stats.shared_saved <- Shared.saved_states sh;
  stats.Stats.shared_prefix_hits <- sh.Shared.prefix_hits;
  stats.Stats.accept_width <- sh.Shared.accept_width;
  let by_query =
    match budget_hit with
    | None -> Engine.finish_many engine
    | Some _ -> Array.make sh.Shared.n_queries []
  in
  Stats.note_tables stats;
  {
    by_query;
    m_stats = stats;
    m_cans_size = Engine.cans_size engine;
    m_budget_hit = budget_hit;
  }

let eval ?tax tree path =
  let mfa = Smoqe_automata.Compile.compile path in
  (run ?tax mfa tree).answers
