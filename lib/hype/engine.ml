module Nfa = Smoqe_automata.Nfa
module Afa = Smoqe_automata.Afa
module Mfa = Smoqe_automata.Mfa
module Tables = Smoqe_automata.Tables
module Reachability = Smoqe_automata.Reachability

exception Driver_error of string

type kind =
  | El of string
  | Tx of string
  | Tx_sub of string * int * int

type verdict =
  | Alive
  | Dead

(* A selection run: an NFA state positioned at the current node with the
   qualifier conditions assumed so far.

   Qualifiers (the AFA side of the MFA) do not use runs with conditions:
   the engine propagates the set of {e active} AFA states downward (which
   atom automata could still make progress here) and computes their
   satisfaction bottom-up at each leave — HyPE's hybrid: NFA top-down,
   AFA settled on the way back up, one traversal total. *)
type item = {
  state : Nfa.state;
  conds : Conds.set;
}

(* Frames live in a pool indexed by depth and are reused across siblings.

   With tables, the selection items are split: the condition-free portion
   is a canonical sorted state array ([set_states], interned into the
   lazy-DFA registry as [set_id]), and only items carrying conds stay as a
   list ([cond_items]).  [set_states] is the source of truth — [set_id] is
   a cache valid only while [set_epoch] matches the engine's registry
   epoch, and is re-interned lazily after a registry flush. *)
type frame = {
  mutable node : int;
  mutable kind : kind;
  mutable tag : int; (* interned tag (table path); Tables.text_tag for text *)
  mutable items : item list; (* post-closure selection items (generic path) *)
  mutable set_states : int array; (* check-free item states (table path) *)
  mutable set_id : int;
  mutable set_epoch : int;
  mutable cond_items : item list; (* items carrying conds (table path) *)
  mutable active : int list; (* active AFA states at this node *)
  mutable quals_here : int list; (* qualifiers to settle at this node *)
  mutable requested : int list; (* subset assumed by selection runs *)
  mutable may_accept_value : bool; (* some active state has a value accept *)
  mutable sat : Bytes.t; (* per active state: accepts within the subtree *)
  mutable contrib : Bytes.t; (* facts pushed up by the children *)
  mutable mark : Bytes.t; (* membership in [active] *)
  here_mark : Bytes.t; (* membership in [quals_here], per qualifier *)
  req_mark : Bytes.t; (* membership in [requested], per qualifier *)
  mutable text_acc : Buffer.t option; (* immediate text (element value) *)
}

(* A memoized lazy-DFA transition: the interned next check-free set (id
   plus the registry's arrays, denormalized so a hit costs no further
   indirection), and the check-guarded states reached during its closure.
   Seeds are re-processed per node through the generic item machinery so
   their node-local Conds are attached — qualifiers are memo-exempt. *)
type trans = {
  next_id : int;
  next_states : int array;
  next_accepts : int array;
  seeds : int array;
}

(* Sentinel for empty memo slots: [next_id] is never negative for a real
   transition, so one int compare distinguishes hit from miss. *)
let no_trans = { next_id = -1; next_states = [||]; next_accepts = [||]; seeds = [||] }

type t = {
  mfa : Mfa.t;
  tables : Tables.t option;
  (* per-state statics *)
  value_accepts : string array array; (* value constraints on atom accepts *)
  plain_accept : bool array; (* has an unconditional atom accept *)
  select_accept : bool array;
  atom_starts : int array array; (* per qualifier: its atoms' entry states *)
  qual_order : int array; (* dependency-topological same-node order *)
  has_value_atoms : bool;
  n_quals : int;
  (* batch demultiplexing: which queries select at each accept state.  A
     single-query engine has every select state owned by query 0; a batch
     engine gets the owner table of the shared-automaton merge.  Candidate
     recording fans one (node, conds) entry out to each owner's Cans. *)
  owners : int array array;
  n_queries : int;
  (* dynamics *)
  cond_val : (Conds.cond, bool) Hashtbl.t;
  cans : Cans.t array; (* one per query *)
  stats : Stats.t;
  trace : Trace.t option;
  mutable frames : frame array;
  mutable depth : int;
  mutable out_items : item list; (* selection-closure workspace *)
  mutable n_out : int;
  item_mark : Bytes.t; (* per-state closure dedup: bit0 = seen with empty
                          conds, bit1 = seen with conds (scan needed) *)
  closure_mark : Bytes.t; (* lazy-DFA set-closure scratch *)
  (* lazy-DFA registry: interned check-free state sets, per-run *)
  mutable dfa_sets : int array array; (* id -> canonical sorted states *)
  mutable dfa_accepts : int array array; (* id -> select-accepting subset *)
  mutable dfa_n : int;
  dfa_ids : (string, int) Hashtbl.t; (* packed states -> id *)
  mutable memo_rows : trans array array; (* tag+1 -> set id -> transition *)
  mutable dfa_epoch : int; (* bumped on registry flush *)
  memo_cap : int; (* distinct sets before the registry is flushed *)
  qvals : bool array; (* per-leave qualifier scratch *)
  qval_epoch : int array; (* node-epoch in which each entry was settled *)
  mutable epoch : int;
  mutable entered_candidate : bool; (* last enter recorded a candidate *)
  mutable finished : bool;
  (* Fired from [enter] every 32nd node with the running node count, so a
     driver can settle resource budgets without per-node work of its own.
     The land-and-branch is paid by every run; the callback only by
     budgeted ones. *)
  mutable on_checkpoint : (int -> unit) option;
}

let fresh_frame n_states n_quals () =
  {
    node = -1;
    kind = El "";
    tag = Tables.unknown_tag;
    items = [];
    set_states = [||];
    set_id = -1;
    set_epoch = -1;
    cond_items = [];
    active = [];
    quals_here = [];
    requested = [];
    may_accept_value = false;
    sat = Bytes.make n_states '\000';
    contrib = Bytes.make n_states '\000';
    mark = Bytes.make n_states '\000';
    here_mark = Bytes.make (max 1 n_quals) '\000';
    req_mark = Bytes.make (max 1 n_quals) '\000';
    text_acc = None;
  }

let create ?trace ?tables ?(memo_cap = 4096) ?owners ?n_queries mfa =
  (match tables with
  | Some tb when Tables.nfa tb != mfa.Mfa.nfa ->
    raise (Driver_error "tables built for a different automaton")
  | Some _ | None -> ());
  let nfa = mfa.Mfa.nfa in
  let n_states = nfa.Nfa.n_states in
  let n_quals = Array.length mfa.Mfa.quals in
  let value_accepts = Array.make n_states [||] in
  let plain_accept = Array.make n_states false in
  let select_accept = Array.make n_states false in
  for s = 0 to n_states - 1 do
    let values = ref [] in
    List.iter
      (fun accept ->
        match accept with
        | Nfa.Select -> select_accept.(s) <- true
        | Nfa.Atom_accept aid ->
          (match (mfa.Mfa.atoms.(aid)).Afa.value with
          | None -> plain_accept.(s) <- true
          | Some c -> values := c :: !values))
      nfa.Nfa.accepts.(s);
    value_accepts.(s) <- Array.of_list !values
  done;
  let atom_starts =
    Array.map
      (fun formula ->
        Array.of_list
          (List.map
             (fun aid -> (mfa.Mfa.atoms.(aid)).Afa.start)
             (Afa.atoms_of formula)))
      mfa.Mfa.quals
  in
  (* Same-node settlement order: a qualifier depends on the qualifiers
     checked inside its atom subgraphs (nested view qualifiers, or the
     view-definition qualifiers a rewritten MFA splices into product
     atoms).  Acyclic by construction. *)
  let qual_order =
    let deps =
      Array.map
        (fun formula ->
          let states =
            List.concat_map
              (fun aid ->
                Nfa.reachable_states nfa (mfa.Mfa.atoms.(aid)).Afa.start)
              (Afa.atoms_of formula)
          in
          List.sort_uniq compare
            (List.concat_map (fun s -> nfa.Nfa.checks.(s)) states))
        mfa.Mfa.quals
    in
    let color = Array.make n_quals 0 in
    let order = ref [] in
    let rec visit q =
      if color.(q) = 1 then raise (Driver_error "cyclic qualifier dependency")
      else if color.(q) = 0 then begin
        color.(q) <- 1;
        List.iter visit deps.(q);
        color.(q) <- 2;
        order := q :: !order
      end
    in
    for q = 0 to n_quals - 1 do
      visit q
    done;
    Array.of_list (List.rev !order)
  in
  let has_value_atoms =
    Array.exists (fun (a : Afa.atom) -> a.Afa.value <> None) mfa.Mfa.atoms
  in
  let n_queries =
    match (n_queries, owners) with
    | Some n, _ -> max 1 n
    | None, None -> 1
    | None, Some ow ->
      let m = ref 0 in
      Array.iter (Array.iter (fun q -> if q >= !m then m := q + 1)) ow;
      max 1 !m
  in
  let owners =
    match owners with
    | Some ow ->
      if Array.length ow <> n_states then
        raise (Driver_error "owners table sized for a different automaton");
      ow
    | None -> Array.make n_states [| 0 |]
  in
  {
    mfa;
    tables;
    value_accepts;
    plain_accept;
    select_accept;
    atom_starts;
    qual_order;
    has_value_atoms;
    n_quals;
    owners;
    n_queries;
    cond_val = Hashtbl.create 256;
    cans = Array.init n_queries (fun _ -> Cans.create ());
    stats = Stats.create ();
    trace;
    frames = Array.init 64 (fun _ -> fresh_frame n_states n_quals ());
    depth = 0;
    out_items = [];
    n_out = 0;
    item_mark = Bytes.make n_states '\000';
    closure_mark = Bytes.make n_states '\000';
    dfa_sets = Array.make 64 [||];
    dfa_accepts = Array.make 64 [||];
    dfa_n = 0;
    dfa_ids = Hashtbl.create 256;
    memo_rows = [||];
    dfa_epoch = 0;
    memo_cap = max 2 memo_cap;
    qvals = Array.make (max 1 n_quals) false;
    qval_epoch = Array.make (max 1 n_quals) (-1);
    epoch = 0;
    entered_candidate = false;
    finished = false;
    on_checkpoint = None;
  }

let stats t = t.stats
let n_queries t = t.n_queries
let cans_size t = Array.fold_left (fun acc c -> acc + Cans.size c) 0 t.cans
let set_checkpoint t f = t.on_checkpoint <- Some f

let trace_mark t node m =
  match t.trace with None -> () | Some tr -> Trace.mark tr node m

(* --- active AFA state propagation ---------------------------------------- *)

(* Activate an AFA state at a frame: mark it, follow its epsilon edges, and
   make sure the qualifiers it checks will be settled here (spawning their
   atoms' entry states in turn). *)
let rec activate t frame s =
  if Bytes.get frame.mark s = '\000' then begin
    Bytes.set frame.mark s '\001';
    Bytes.set frame.sat s '\000';
    Bytes.set frame.contrib s '\000';
    frame.active <- s :: frame.active;
    if Array.length t.value_accepts.(s) > 0 then
      frame.may_accept_value <- true;
    let nfa = t.mfa.Mfa.nfa in
    List.iter (fun q -> note_qual t frame q) nfa.Nfa.checks.(s);
    List.iter (fun s' -> activate t frame s') nfa.Nfa.eps.(s)
  end

and note_qual t frame q =
  if Bytes.get frame.here_mark q = '\000' then begin
    Bytes.set frame.here_mark q '\001';
    frame.quals_here <- q :: frame.quals_here;
    t.stats.Stats.atom_instances <-
      t.stats.Stats.atom_instances + Array.length t.atom_starts.(q);
    Array.iter (fun s -> activate t frame s) t.atom_starts.(q)
  end

(* --- selection-run closure ------------------------------------------------ *)

(* Per-node item dedup via [t.item_mark]: items with empty conds are
   uniquely keyed by state (bit 0); items carrying conds set bit 1 and
   fall back to scanning only the (typically short) workspace list for a
   same-state-same-conds twin.  Marks are cleared by [take_items]. *)
let rec push_item t frame item =
  let nfa = t.mfa.Mfa.nfa in
  let item =
    match nfa.Nfa.checks.(item.state) with
    | [] -> item
    | checks -> { item with conds = add_checks t frame item.conds checks }
  in
  let s = item.state in
  let m = Char.code (Bytes.get t.item_mark s) in
  let empty = Conds.is_empty item.conds in
  let dup =
    if empty then m land 1 <> 0
    else
      m land 2 <> 0
      && List.exists
           (fun it -> it.state = s && Conds.compare_set it.conds item.conds = 0)
           t.out_items
  in
  if not dup then begin
    Bytes.set t.item_mark s (Char.chr (m lor if empty then 1 else 2));
    t.out_items <- item :: t.out_items;
    t.n_out <- t.n_out + 1;
    if t.select_accept.(item.state) then begin
      let ow = t.owners.(item.state) in
      t.stats.Stats.candidates <- t.stats.Stats.candidates + Array.length ow;
      t.entered_candidate <- true;
      trace_mark t frame.node Trace.In_cans;
      Array.iter
        (fun q -> Cans.add t.cans.(q) ~node:frame.node item.conds)
        ow
    end;
    push_eps t frame item nfa.Nfa.eps.(item.state)
  end

and add_checks t frame conds = function
  | [] -> conds
  | q :: rest ->
    note_qual t frame q;
    if Bytes.get frame.req_mark q = '\000' then begin
      Bytes.set frame.req_mark q '\001';
      frame.requested <- q :: frame.requested
    end;
    t.stats.Stats.conds_created <- t.stats.Stats.conds_created + 1;
    add_checks t frame (Conds.add (q, frame.node) conds) rest

and push_eps t frame item = function
  | [] -> ()
  | s' :: rest ->
    push_item t frame { item with state = s' };
    push_eps t frame item rest

(* Drain the closure workspace and clear its dedup marks. *)
let take_items t =
  let items = t.out_items in
  List.iter (fun (it : item) -> Bytes.set t.item_mark it.state '\000') items;
  t.out_items <- [];
  items

let kind_matches test kind =
  match kind with
  | El name -> Nfa.matches_name test ~is_element:true ~name
  | Tx _ | Tx_sub _ -> Nfa.matches_name test ~is_element:false ~name:""

(* --- lazy-DFA registry and memo ------------------------------------------- *)

let key_of_states states =
  let b = Buffer.create (4 * Array.length states) in
  Array.iter (fun s -> Buffer.add_int32_le b (Int32.of_int s)) states;
  Buffer.contents b

(* Intern a canonical (sorted) check-free state set.  When the registry
   exceeds [memo_cap] distinct sets the lazy DFA is flushed wholesale —
   registry, memo and epoch — rather than evicted piecemeal; frames hold
   their states array as source of truth and re-intern lazily. *)
let intern_set t states =
  let key = key_of_states states in
  match Hashtbl.find_opt t.dfa_ids key with
  | Some id -> id
  | None ->
    if t.dfa_n >= t.memo_cap then begin
      Hashtbl.reset t.dfa_ids;
      t.memo_rows <- [||];
      t.dfa_n <- 0;
      t.dfa_epoch <- t.dfa_epoch + 1;
      t.stats.Stats.memo_evictions <- t.stats.Stats.memo_evictions + 1
    end;
    let id = t.dfa_n in
    if id >= Array.length t.dfa_sets then begin
      let n = 2 * Array.length t.dfa_sets in
      let sets = Array.make n [||] in
      let accs = Array.make n [||] in
      Array.blit t.dfa_sets 0 sets 0 id;
      Array.blit t.dfa_accepts 0 accs 0 id;
      t.dfa_sets <- sets;
      t.dfa_accepts <- accs
    end;
    t.dfa_sets.(id) <- states;
    t.dfa_accepts.(id) <-
      (match Array.to_list states |> List.filter (fun s -> t.select_accept.(s))
       with
      | [] -> [||]
      | l -> Array.of_list l);
    t.dfa_n <- id + 1;
    Hashtbl.add t.dfa_ids key id;
    id

let frame_set_id t frame =
  if frame.set_id >= 0 && frame.set_epoch = t.dfa_epoch then frame.set_id
  else begin
    let id = intern_set t frame.set_states in
    frame.set_id <- id;
    frame.set_epoch <- t.dfa_epoch;
    id
  end

(* Closure of transition targets, split by check status: check-free states
   follow their epsilon edges into the bitset half ([next]); states with
   checks stop as [seeds] — their closure continues per node under the
   conds [push_item] attaches. *)
let close_collect t feed =
  let nfa = t.mfa.Mfa.nfa in
  let cmark = t.closure_mark in
  let next = ref [] in
  let seeds = ref [] in
  let rec close s =
    if Bytes.get cmark s = '\000' then begin
      Bytes.set cmark s '\001';
      if nfa.Nfa.checks.(s) = [] then begin
        next := s :: !next;
        List.iter close nfa.Nfa.eps.(s)
      end
      else seeds := s :: !seeds
    end
  in
  feed close;
  List.iter (fun s -> Bytes.set cmark s '\000') !next;
  List.iter (fun s -> Bytes.set cmark s '\000') !seeds;
  let next = Array.of_list !next in
  Array.sort Int.compare next;
  let seeds = Array.of_list !seeds in
  Array.sort Int.compare seeds;
  (next, seeds)

(* Record a transition under [memo_rows.(tag + 1).(sid)], growing the
   outer (tag) and inner (set-id) arrays on demand; both index spaces are
   small and dense, so the memo is a flat table rather than a hash. *)
let memo_store t tag1 sid tr =
  if tag1 >= Array.length t.memo_rows then begin
    let n = max 8 (max (tag1 + 1) (2 * Array.length t.memo_rows)) in
    let rows = Array.make n [||] in
    Array.blit t.memo_rows 0 rows 0 (Array.length t.memo_rows);
    t.memo_rows <- rows
  end;
  let row = t.memo_rows.(tag1) in
  let row =
    if sid < Array.length row then row
    else begin
      let n = max (Array.length t.dfa_sets) (sid + 1) in
      let bigger = Array.make n no_trans in
      Array.blit row 0 bigger 0 (Array.length row);
      t.memo_rows.(tag1) <- bigger;
      bigger
    end
  in
  row.(sid) <- tr

(* One lazy-DFA step: [(parent's check-free set, tag) -> trans], memoized.
   [tag + 1] keeps the frozen-table [unknown_tag] sentinel non-negative.
   The hit path is two array loads and an int compare — no hashing, no
   allocation. *)
let table_step t tb parent tag =
  let sid = frame_set_id t parent in
  let tag1 = tag + 1 in
  let tr =
    if tag1 < Array.length t.memo_rows then begin
      let row = Array.unsafe_get t.memo_rows tag1 in
      if sid < Array.length row then Array.unsafe_get row sid else no_trans
    end
    else no_trans
  in
  if tr.next_id >= 0 then begin
    t.stats.Stats.memo_hits <- t.stats.Stats.memo_hits + 1;
    tr
  end
  else begin
    t.stats.Stats.memo_misses <- t.stats.Stats.memo_misses + 1;
    let next, seeds =
      close_collect t (fun close ->
          Array.iter
            (fun s -> Array.iter close (Tables.targets tb s tag))
            parent.set_states)
    in
    let epoch0 = t.dfa_epoch in
    let next_id = intern_set t next in
    let tr =
      { next_id; next_states = t.dfa_sets.(next_id);
        next_accepts = t.dfa_accepts.(next_id); seeds }
    in
    (* If interning [next] flushed the registry, [sid] belongs to the dead
       epoch: the entry would pair a stale key with a live id. *)
    if t.dfa_epoch = epoch0 then memo_store t tag1 sid tr;
    tr
  end

(* Candidates selected by the check-free set: unconditional Cans entries,
   one per accepting state (mirrors the generic per-item recording). *)
let record_set_candidates t node accepts =
  Array.iter
    (fun s ->
      let ow = t.owners.(s) in
      t.stats.Stats.candidates <- t.stats.Stats.candidates + Array.length ow;
      t.entered_candidate <- true;
      trace_mark t node Trace.In_cans;
      Array.iter (fun q -> Cans.add t.cans.(q) ~node Conds.empty) ow)
    accepts

(* --- frames ---------------------------------------------------------------- *)

let clear_frame frame =
  (* Reset the bitsets touched by the previous tenant of this depth. *)
  List.iter
    (fun s ->
      Bytes.set frame.sat s '\000';
      Bytes.set frame.contrib s '\000';
      Bytes.set frame.mark s '\000')
    frame.active;
  frame.active <- [];
  List.iter (fun q -> Bytes.set frame.here_mark q '\000') frame.quals_here;
  List.iter (fun q -> Bytes.set frame.req_mark q '\000') frame.requested;
  frame.quals_here <- [];
  frame.requested <- []

let push_frame t id kind =
  if t.depth >= Array.length t.frames then begin
    let n_states = t.mfa.Mfa.nfa.Nfa.n_states in
    let bigger =
      Array.init (2 * Array.length t.frames) (fun i ->
          if i < Array.length t.frames then t.frames.(i)
          else fresh_frame n_states t.n_quals ())
    in
    t.frames <- bigger
  end;
  let frame = t.frames.(t.depth) in
  t.depth <- t.depth + 1;
  clear_frame frame;
  frame.node <- id;
  frame.kind <- kind;
  frame.tag <- Tables.unknown_tag;
  frame.items <- [];
  frame.set_states <- [||];
  frame.set_id <- -1;
  frame.set_epoch <- -1;
  frame.cond_items <- [];
  frame.may_accept_value <- false;
  frame.text_acc <- None;
  frame

(* Does any transition of any parent item match this node? *)
let rec any_item_matches kind items delta =
  match items with
  | [] -> false
  | item :: rest ->
    let rec scan = function
      | [] -> any_item_matches kind rest delta
      | (test, _) :: more -> kind_matches test kind || scan more
    in
    scan delta.(item.state)

let rec any_active_matches kind active delta =
  match active with
  | [] -> false
  | s :: rest ->
    let rec scan = function
      | [] -> any_active_matches kind rest delta
      | (test, _) :: more -> kind_matches test kind || scan more
    in
    scan delta.(s)

(* Text accumulation: element values are needed when a value-equality atom
   can accept at the parent, so immediate text is collected only then. *)
let value_buf parent =
  match parent.text_acc with
  | Some buf -> buf
  | None ->
    let buf = Buffer.create 16 in
    parent.text_acc <- Some buf;
    buf

let accumulate_text parent kind =
  match kind with
  | Tx content when parent.may_accept_value ->
    Buffer.add_string (value_buf parent) content
  | Tx_sub (s, off, len) when parent.may_accept_value ->
    Buffer.add_substring (value_buf parent) s off len
  | Tx _ | Tx_sub _ | El _ -> ()

(* --- enter: generic path --------------------------------------------------- *)

let enter_generic t ~id ~kind =
  let nfa = t.mfa.Mfa.nfa in
  if t.depth = 0 then begin
    let frame = push_frame t id kind in
    t.out_items <- [];
    t.n_out <- 0;
    push_item t frame { state = t.mfa.Mfa.start; conds = Conds.empty };
    frame.items <- take_items t;
    t.stats.Stats.nodes_alive <- t.stats.Stats.nodes_alive + 1;
    trace_mark t id Trace.Visited;
    Alive
  end
  else begin
    let parent = t.frames.(t.depth - 1) in
    accumulate_text parent kind;
    if
      (not (any_item_matches kind parent.items nfa.Nfa.delta))
      && not (any_active_matches kind parent.active nfa.Nfa.delta)
    then begin
      trace_mark t id Trace.Dead;
      Dead
    end
    else begin
      let parent_items = parent.items in
      let parent_active = parent.active in
      let frame = push_frame t id kind in
      (* active AFA states: consumable continuations of the parent's *)
      let rec feed_active = function
        | [] -> ()
        | s :: rest ->
          let rec trans = function
            | [] -> ()
            | (test, s') :: more ->
              if kind_matches test kind then activate t frame s';
              trans more
          in
          trans nfa.Nfa.delta.(s);
          feed_active rest
      in
      feed_active parent_active;
      (* selection items *)
      t.out_items <- [];
      t.n_out <- 0;
      let rec feed_items = function
        | [] -> ()
        | item :: rest ->
          let rec trans = function
            | [] -> ()
            | (test, s') :: more ->
              if kind_matches test kind then
                push_item t frame { item with state = s' };
              trans more
          in
          trans nfa.Nfa.delta.(item.state);
          feed_items rest
      in
      feed_items parent_items;
      frame.items <- take_items t;
      if t.n_out > t.stats.Stats.max_items then
        t.stats.Stats.max_items <- t.n_out;
      t.stats.Stats.nodes_alive <- t.stats.Stats.nodes_alive + 1;
      trace_mark t id Trace.Visited;
      Alive
    end
  end

(* --- enter: table path ----------------------------------------------------- *)

let enter_tables t tb ~id ~tag ~kind =
  if t.depth = 0 then begin
    let frame = push_frame t id kind in
    frame.tag <- tag;
    t.out_items <- [];
    t.n_out <- 0;
    let next, seeds = close_collect t (fun close -> close t.mfa.Mfa.start) in
    let nid = intern_set t next in
    frame.set_states <- t.dfa_sets.(nid);
    frame.set_id <- nid;
    frame.set_epoch <- t.dfa_epoch;
    record_set_candidates t id t.dfa_accepts.(nid);
    Array.iter
      (fun s -> push_item t frame { state = s; conds = Conds.empty })
      seeds;
    frame.cond_items <- take_items t;
    let n_items = Array.length frame.set_states + t.n_out in
    if n_items > t.stats.Stats.max_items then
      t.stats.Stats.max_items <- n_items;
    t.stats.Stats.nodes_alive <- t.stats.Stats.nodes_alive + 1;
    trace_mark t id Trace.Visited;
    Alive
  end
  else begin
    let parent = t.frames.(t.depth - 1) in
    accumulate_text parent kind;
    let tr = table_step t tb parent tag in
    let next_states = tr.next_states in
    let next_accepts = tr.next_accepts in
    let row_matches s = Array.length (Tables.targets tb s tag) > 0 in
    if
      Array.length next_states = 0
      && Array.length tr.seeds = 0
      && (not (List.exists (fun (it : item) -> row_matches it.state)
                 parent.cond_items))
      && not (List.exists row_matches parent.active)
    then begin
      trace_mark t id Trace.Dead;
      Dead
    end
    else begin
      let parent_cond = parent.cond_items in
      let parent_active = parent.active in
      let frame = push_frame t id kind in
      frame.tag <- tag;
      (* active AFA states: consumable continuations of the parent's *)
      List.iter
        (fun s ->
          Array.iter (fun s' -> activate t frame s') (Tables.targets tb s tag))
        parent_active;
      (* check-free selection set: one memoized step *)
      frame.set_states <- next_states;
      frame.set_id <- tr.next_id;
      frame.set_epoch <- t.dfa_epoch;
      record_set_candidates t id next_accepts;
      (* seeds and conditional items go through the generic closure
         machinery so node-local Conds are attached *)
      t.out_items <- [];
      t.n_out <- 0;
      Array.iter
        (fun s -> push_item t frame { state = s; conds = Conds.empty })
        tr.seeds;
      List.iter
        (fun (it : item) ->
          Array.iter
            (fun s' -> push_item t frame { it with state = s' })
            (Tables.targets tb it.state tag))
        parent_cond;
      frame.cond_items <- take_items t;
      let n_items = Array.length next_states + t.n_out in
      if n_items > t.stats.Stats.max_items then
        t.stats.Stats.max_items <- n_items;
      t.stats.Stats.nodes_alive <- t.stats.Stats.nodes_alive + 1;
      trace_mark t id Trace.Visited;
      Alive
    end
  end

let enter_core t ~id ~tag ~kind =
  if t.finished then raise (Driver_error "enter after finish");
  t.entered_candidate <- false;
  let n_entered = t.stats.Stats.nodes_entered + 1 in
  t.stats.Stats.nodes_entered <- n_entered;
  if n_entered land 31 = 0 then (
    match t.on_checkpoint with None -> () | Some f -> f n_entered);
  match t.tables with
  | Some tb -> enter_tables t tb ~id ~tag ~kind
  | None -> enter_generic t ~id ~kind

let enter t ~id ~kind =
  let tag =
    match t.tables with
    | None -> Tables.unknown_tag
    | Some tb -> (
      match kind with
      | El name -> Tables.intern tb name
      | Tx _ | Tx_sub _ -> Tables.text_tag)
  in
  enter_core t ~id ~tag ~kind

let enter_tagged t ~id ~tag ~kind =
  let tag = match kind with Tx _ | Tx_sub _ -> Tables.text_tag | El _ -> tag in
  enter_core t ~id ~tag ~kind

let element_value frame =
  match frame.kind with
  | Tx content -> content
  | Tx_sub (s, off, len) -> String.sub s off len
  | El _ ->
    (match frame.text_acc with
    | None -> ""
    | Some buf -> Buffer.contents buf)

(* --- bottom-up AFA settlement ---------------------------------------------- *)

(* sat(s) at a closing node: a run in state [s] here accepts within the
   (now complete) subtree — by accepting at this node, by an epsilon move
   whose checks hold here, or through a child (contributions pushed at the
   children's leaves).  Only active states matter: epsilon targets and
   check-spawned entry states of active states are active by closure. *)
let resolve_afa t frame =
  let nfa = t.mfa.Mfa.nfa in
  let sat = frame.sat in
  let mark = frame.mark in
  t.epoch <- t.epoch + 1;
  let value = if frame.may_accept_value then element_value frame else "" in
  let accept_ok s =
    t.plain_accept.(s)
    ||
    let values = t.value_accepts.(s) in
    let n = Array.length values in
    let rec scan i = i < n && (String.equal values.(i) value || scan (i + 1)) in
    n > 0 && scan 0
  in
  (* A qualifier not yet settled at this node reads as false: sound (sat
     never set prematurely), and the passes after its settlement catch any
     state that was waiting on it. *)
  let checks_hold s =
    let rec go = function
      | [] -> true
      | q :: rest ->
        t.qval_epoch.(q) = t.epoch && t.qvals.(q) && go rest
    in
    go nfa.Nfa.checks.(s)
  in
  let try_state s =
    Bytes.get mark s <> '\000'
    && Bytes.get sat s = '\000'
    && checks_hold s
    && (Bytes.get frame.contrib s <> '\000'
       || accept_ok s
       ||
       let rec eps_sat = function
         | [] -> false
         | s' :: rest -> Bytes.get sat s' <> '\000' || eps_sat rest
       in
       eps_sat nfa.Nfa.eps.(s))
  in
  let fixpoint states =
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun s ->
          if try_state s then begin
            Bytes.set sat s '\001';
            changed := true
          end)
        states
    done
  in
  (* Settle in dependency order; each pass runs over all active states —
     strata are eps-closed inside the active set, and reruns are monotone
     no-ops. *)
  (match frame.quals_here with
  | [] -> ()
  | _ :: _ ->
    Array.iter
      (fun q ->
        if Bytes.get frame.here_mark q <> '\000' then begin
          fixpoint frame.active;
          t.qvals.(q) <-
            Afa.eval t.mfa.Mfa.quals.(q) (fun aid ->
                Bytes.get sat (t.mfa.Mfa.atoms.(aid)).Afa.start <> '\000');
          t.qval_epoch.(q) <- t.epoch
        end)
      t.qual_order);
  fixpoint frame.active;
  (* Publish the values selection runs assumed at this node. *)
  List.iter
    (fun q ->
      Hashtbl.replace t.cond_val (q, frame.node) t.qvals.(q);
      t.stats.Stats.quals_resolved <- t.stats.Stats.quals_resolved + 1)
    frame.requested;
  (* Contribute upward: parent-active states that can step into this node
     and accept inside it. *)
  if t.depth >= 2 then begin
    let parent = t.frames.(t.depth - 2) in
    match t.tables with
    | Some tb ->
      List.iter
        (fun s ->
          if Bytes.get parent.contrib s = '\000' then begin
            let tg = Tables.targets tb s frame.tag in
            let n = Array.length tg in
            let rec scan i =
              if i < n then
                if Bytes.get sat tg.(i) <> '\000' then
                  Bytes.set parent.contrib s '\001'
                else scan (i + 1)
            in
            scan 0
          end)
        parent.active
    | None ->
      let rec feed = function
        | [] -> ()
        | s :: rest ->
          if Bytes.get parent.contrib s = '\000' then begin
            let rec scan = function
              | [] -> ()
              | (test, s') :: more ->
                if kind_matches test frame.kind && Bytes.get sat s' <> '\000'
                then Bytes.set parent.contrib s '\001'
                else scan more
            in
            scan nfa.Nfa.delta.(s)
          end;
          feed rest
      in
      feed parent.active
  end

let leave t =
  if t.depth = 0 then raise (Driver_error "leave without enter");
  let frame = t.frames.(t.depth - 1) in
  if frame.active <> [] || frame.quals_here <> [] then resolve_afa t frame;
  t.depth <- t.depth - 1

let entered_candidate t = t.entered_candidate

let exists_live_state t p =
  if t.depth = 0 then
    raise (Driver_error "exists_live_state without a current node");
  let frame = t.frames.(t.depth - 1) in
  match t.tables with
  | Some _ ->
    Array.exists p frame.set_states
    || List.exists (fun (it : item) -> p it.state) frame.cond_items
    || List.exists p frame.active
  | None ->
    List.exists (fun item -> p item.state) frame.items
    || List.exists p frame.active

let may_accept_value_here t =
  if t.depth = 0 then
    raise (Driver_error "may_accept_value_here without a current node");
  (t.frames.(t.depth - 1)).may_accept_value

let finish_many t =
  if t.depth <> 0 then raise (Driver_error "finish with open nodes");
  if t.finished then raise (Driver_error "finish called twice");
  t.finished <- true;
  let lookup cond =
    match Hashtbl.find_opt t.cond_val cond with
    | Some v -> v
    | None ->
      raise
        (Driver_error
           (Printf.sprintf "unresolved condition q%d@%d" (fst cond) (snd cond)))
  in
  let per = Array.map (fun c -> Cans.resolve c ~lookup) t.cans in
  t.stats.Stats.answers <-
    Array.fold_left (fun acc l -> acc + List.length l) 0 per;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Array.iter (List.iter (fun n -> Trace.mark tr n Trace.Answer)) per);
  per

let finish t =
  let per = finish_many t in
  if Array.length per = 1 then per.(0)
  else List.sort_uniq compare (List.concat (Array.to_list per))
