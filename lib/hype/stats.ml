type t = {
  mutable nodes_entered : int;
  mutable nodes_alive : int;
  mutable nodes_skipped_dead : int;
  mutable nodes_pruned_tax : int;
  mutable candidates : int;
  mutable answers : int;
  mutable conds_created : int;
  mutable quals_resolved : int;
  mutable atom_instances : int;
  mutable max_items : int;
  mutable passes_over_data : int;
  mutable degraded_no_index : int;
  mutable degraded_stax_retry : int;
  mutable plan_cache_hit : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable memo_evictions : int;
  mutable table_spec_us : int;
  mutable batch_queries : int;
  mutable shared_states : int;
  mutable shared_saved : int;
  mutable shared_prefix_hits : int;
  mutable accept_width : int;
  mutable policy_key_hits : int;
  mutable tenant_throttled : int;
  mutable shard_fanout : int;
}

let create () =
  {
    nodes_entered = 0;
    nodes_alive = 0;
    nodes_skipped_dead = 0;
    nodes_pruned_tax = 0;
    candidates = 0;
    answers = 0;
    conds_created = 0;
    quals_resolved = 0;
    atom_instances = 0;
    max_items = 0;
    passes_over_data = 1;
    degraded_no_index = 0;
    degraded_stax_retry = 0;
    plan_cache_hit = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_evictions = 0;
    table_spec_us = 0;
    batch_queries = 0;
    shared_states = 0;
    shared_saved = 0;
    shared_prefix_hits = 0;
    accept_width = 0;
    policy_key_hits = 0;
    tenant_throttled = 0;
    shard_fanout = 0;
  }

let zero () =
  let s = create () in
  s.passes_over_data <- 0;
  s

let merge_into ~into s =
  into.nodes_entered <- into.nodes_entered + s.nodes_entered;
  into.nodes_alive <- into.nodes_alive + s.nodes_alive;
  into.nodes_skipped_dead <- into.nodes_skipped_dead + s.nodes_skipped_dead;
  into.nodes_pruned_tax <- into.nodes_pruned_tax + s.nodes_pruned_tax;
  into.candidates <- into.candidates + s.candidates;
  into.answers <- into.answers + s.answers;
  into.conds_created <- into.conds_created + s.conds_created;
  into.quals_resolved <- into.quals_resolved + s.quals_resolved;
  into.atom_instances <- into.atom_instances + s.atom_instances;
  into.max_items <- max into.max_items s.max_items;
  into.passes_over_data <- into.passes_over_data + s.passes_over_data;
  into.degraded_no_index <- into.degraded_no_index + s.degraded_no_index;
  into.degraded_stax_retry <- into.degraded_stax_retry + s.degraded_stax_retry;
  into.plan_cache_hit <- into.plan_cache_hit + s.plan_cache_hit;
  into.memo_hits <- into.memo_hits + s.memo_hits;
  into.memo_misses <- into.memo_misses + s.memo_misses;
  into.memo_evictions <- into.memo_evictions + s.memo_evictions;
  into.table_spec_us <- into.table_spec_us + s.table_spec_us;
  into.batch_queries <- into.batch_queries + s.batch_queries;
  into.shared_states <- into.shared_states + s.shared_states;
  into.shared_saved <- into.shared_saved + s.shared_saved;
  into.shared_prefix_hits <- into.shared_prefix_hits + s.shared_prefix_hits;
  into.accept_width <- max into.accept_width s.accept_width;
  into.policy_key_hits <- into.policy_key_hits + s.policy_key_hits;
  into.tenant_throttled <- into.tenant_throttled + s.tenant_throttled;
  into.shard_fanout <- into.shard_fanout + s.shard_fanout

(* Process-wide aggregate of the table-layer counters, independent of who
   keeps the per-query [t]: bench artifacts read it so every
   BENCH_<id>.json carries the table/memo activity of the runs it timed.
   Mutex-guarded — drivers note from pool domains. *)
let tables_lock = Mutex.create ()
let g_tables = { (create ()) with passes_over_data = 0 }

let note_tables s =
  if s.memo_hits + s.memo_misses + s.memo_evictions + s.table_spec_us > 0 then
    Mutex.protect tables_lock (fun () ->
        g_tables.memo_hits <- g_tables.memo_hits + s.memo_hits;
        g_tables.memo_misses <- g_tables.memo_misses + s.memo_misses;
        g_tables.memo_evictions <- g_tables.memo_evictions + s.memo_evictions;
        g_tables.table_spec_us <- g_tables.table_spec_us + s.table_spec_us)

let tables_counters () =
  Mutex.protect tables_lock (fun () ->
      [
        ("memo_hits", g_tables.memo_hits);
        ("memo_misses", g_tables.memo_misses);
        ("memo_evictions", g_tables.memo_evictions);
        ("table_spec_us", g_tables.table_spec_us);
      ])

let total_skipped t = t.nodes_skipped_dead + t.nodes_pruned_tax

let degraded t = t.degraded_no_index > 0 || t.degraded_stax_retry > 0

let to_assoc t =
  [
    ("nodes_entered", t.nodes_entered);
    ("nodes_alive", t.nodes_alive);
    ("nodes_skipped_dead", t.nodes_skipped_dead);
    ("nodes_pruned_tax", t.nodes_pruned_tax);
    ("candidates", t.candidates);
    ("answers", t.answers);
    ("conds_created", t.conds_created);
    ("quals_resolved", t.quals_resolved);
    ("atom_instances", t.atom_instances);
    ("max_items", t.max_items);
    ("passes_over_data", t.passes_over_data);
    ("degraded_no_index", t.degraded_no_index);
    ("degraded_stax_retry", t.degraded_stax_retry);
    ("plan_cache_hit", t.plan_cache_hit);
    ("memo_hits", t.memo_hits);
    ("memo_misses", t.memo_misses);
    ("memo_evictions", t.memo_evictions);
    ("table_spec_us", t.table_spec_us);
    ("batch_queries", t.batch_queries);
    ("shared_states", t.shared_states);
    ("shared_saved", t.shared_saved);
    ("shared_prefix_hits", t.shared_prefix_hits);
    ("accept_width", t.accept_width);
    ("policy_key_hits", t.policy_key_hits);
    ("tenant_throttled", t.tenant_throttled);
    ("shard_fanout", t.shard_fanout);
  ]

let pp ppf t =
  Fmt.pf ppf
    "@[<v>entered: %d (alive %d)@ skipped: %d dead, %d via TAX@ candidates: \
     %d, answers: %d@ conditions: %d, qualifiers resolved: %d, atom runs: \
     %d@ peak items/node: %d, passes over data: %d"
    t.nodes_entered t.nodes_alive t.nodes_skipped_dead t.nodes_pruned_tax
    t.candidates t.answers t.conds_created t.quals_resolved t.atom_instances
    t.max_items t.passes_over_data;
  if t.plan_cache_hit > 0 then Fmt.pf ppf "@ plan: served from cache";
  if t.memo_hits + t.memo_misses + t.table_spec_us > 0 then
    Fmt.pf ppf "@ tables: %d memo hits, %d misses, %d evictions, specialize %dus"
      t.memo_hits t.memo_misses t.memo_evictions t.table_spec_us;
  if t.batch_queries > 0 then
    Fmt.pf ppf
      "@ batch: %d queries, %d merged states (%d saved), %d prefix hits, \
       accept width %d"
      t.batch_queries t.shared_states t.shared_saved t.shared_prefix_hits
      t.accept_width;
  if t.policy_key_hits + t.tenant_throttled + t.shard_fanout > 0 then
    Fmt.pf ppf
      "@ tenancy: %d policy-key hits, %d throttled, shard fanout %d"
      t.policy_key_hits t.tenant_throttled t.shard_fanout;
  if degraded t then
    Fmt.pf ppf "@ degraded:%s%s"
      (if t.degraded_no_index > 0 then " index unavailable -> unindexed DOM"
       else "")
      (if t.degraded_stax_retry > 0 then " StAX failed -> DOM retry" else "");
  Fmt.pf ppf "@]"
