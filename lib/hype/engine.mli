(** The HyPE core: an event-driven MFA run over one depth-first document
    traversal (paper §3, Evaluator).

    The engine is document-representation agnostic: {!Eval_dom} drives it
    from a tree, {!Eval_stax} from a pull-event stream.  Drivers feed it a
    pre-order visit: [enter] at each node, [leave] when its subtree closes.

    Single-pass discipline: at [enter] the engine advances all active runs
    (selection and qualifier atoms) into the node, instantiates newly
    requested qualifiers, and records candidates into Cans under the
    conditions the runs have assumed; at [leave] it settles the node's
    qualifier instances (their runs can only have explored the now-complete
    subtree).  [finish] resolves Cans in one final sweep.

    Driver contract:
    - the first [enter] is the document root;
    - every [Alive] enter is matched by exactly one [leave]; [Dead] enters
      by none;
    - children of a node whose [enter] returned [Dead] must not be entered;
    - text children of alive nodes must always be entered (the engine
      accumulates them to form element values for equality tests). *)

type t

type kind =
  | El of string  (** element with this tag *)
  | Tx of string  (** text node with this content *)
  | Tx_sub of string * int * int
      (** text node whose content is the slice [(backing, off, len)] — a
          borrowed span that zero-copy drivers pass instead of [Tx].  The
          engine reads it during {!enter} and the node's own {!leave}
          only, so a span valid across that enter/leave pair (a text node
          leaves immediately — it has no children) never needs copying. *)

type verdict =
  | Alive  (** at least one run is active: descend into the children *)
  | Dead
      (** no run matched: the subtree cannot contribute.  A [Dead] enter
          pushes nothing — it has {e no} matching [leave]. *)

val create :
  ?trace:Trace.t ->
  ?tables:Smoqe_automata.Tables.t ->
  ?memo_cap:int ->
  ?owners:int array array ->
  ?n_queries:int ->
  Smoqe_automata.Mfa.t ->
  t
(** Without [tables] the engine steps the NFA generically (string tests,
    per-item list scans).  With [tables] — which must specialize exactly
    this MFA's automaton (physical equality; [Driver_error] otherwise) —
    the check-free portion of each node's item set is stepped as one
    interned state set through a lazy-DFA memo, and check-guarded states
    re-attach their node-local Conds per node, so qualifier semantics are
    identical on both paths.  [memo_cap] (default 4096, mainly for tests)
    bounds the distinct state sets interned before the lazy DFA is
    flushed and rebuilt.

    [owners] turns the engine into a {e batch} evaluator for a
    shared-automaton merge ({!Smoqe_automata.Shared}): it maps each accept
    state to the queries that select there (the merge's [owners] table,
    sized exactly to the automaton; [Driver_error] otherwise), and every
    candidate recorded at that state is fanned out to each owner's private
    Cans.  [n_queries] fixes the batch width (deduced from [owners] when
    omitted).  Without [owners] the engine is the plain single-query
    evaluator: one implicit owner, query 0. *)

val enter : t -> id:int -> kind:kind -> verdict
(** Pre-visit a node.  [id] must be the node's pre-order rank (ids are only
    used as opaque, ordered instance keys and answer labels).  With tables,
    element tags are interned by name on each call — streaming drivers use
    this; DOM drivers should prefer {!enter_tagged}. *)

val enter_tagged : t -> id:int -> tag:int -> kind:kind -> verdict
(** [enter] with the element tag already interned in the engine's table's
    id space (for frozen tables built by [Tables.of_tree], the tree's own
    [Tree.tag_id]).  [tag] is ignored for text nodes and on the generic
    path. *)

val leave : t -> unit
(** Post-visit the most recently entered node. *)

val exists_live_state : t -> (Smoqe_automata.Nfa.state -> bool) -> bool
(** Does any state with an active run at the current node (selection items
    and active AFA states) satisfy the predicate?  The DOM driver combines
    this with per-state requirement analyses and the TAX index to decide
    whether descending below the current node can still matter. *)

val entered_candidate : t -> bool
(** Did the most recent [enter] record the node as a candidate answer?
    The streaming driver uses this to start capturing the node's subtree
    for serialized output. *)

val may_accept_value_here : t -> bool
(** A value-equality accept is possible at the current node, so its
    immediate text children must be visited whatever the index says. *)

val finish : t -> int list
(** End of document: resolve Cans and return the answers (pre-order ids,
    ascending).  The driver must have closed every node.  On a batch
    engine this is the sorted union over all queries — batch drivers want
    {!finish_many}. *)

val finish_many : t -> int list array
(** Like {!finish}, demultiplexed: answers per query (index = owner id),
    each list ascending.  Length is the batch width — [[| answers |]] on a
    single-query engine.  Like [finish], may only be called once. *)

val stats : t -> Stats.t

val n_queries : t -> int
(** Batch width (1 for a plain engine). *)

val cans_size : t -> int
(** Total candidate entries currently held across all queries' Cans —
    what resource budgets audit. *)

val set_checkpoint : t -> (int -> unit) -> unit
(** Install a callback fired from {!enter} every 32nd node with the
    running node count.  Drivers use it to settle resource budgets
    without adding per-node work of their own: the engine is counting
    nodes anyway, so the unbudgeted path pays only a mask-and-branch.
    The callback may raise (e.g. {!Smoqe_robust.Budget.Exceeded}); the
    driver is expected to catch it. *)

exception Driver_error of string
(** Raised on contract violations ([leave] without [enter], [finish] with
    open nodes, non-root first enter). *)
