module Pull = Smoqe_xml.Pull
module Serializer = Smoqe_xml.Serializer
module Budget = Smoqe_robust.Budget
module Failpoint = Smoqe_robust.Failpoint

module Shared = Smoqe_automata.Shared

type result = {
  answers : int list;
  captured : (int * string) list;
  stats : Stats.t;
  cans_size : int;
  n_nodes : int;
  budget_hit : (string * string) option;
}

type many_result = {
  by_query : int list array;
  by_query_captured : (int * string) list array;
  m_stats : Stats.t;
  m_cans_size : int;
  m_n_nodes : int;
  m_budget_hit : (string * string) option;
}

(* Per open element: was the engine entered for it, and are its children
   processed?  Children of a Dead node are skipped without engine calls,
   but still consume pre-order ids so that answers align with DOM ids. *)
type level =
  | Entered_alive
  | Skipped

(* An in-flight capture of a candidate subtree: everything scanned while
   it is open is appended (including regions the engine skipped — they
   are part of the fragment even if no run is alive there). *)
type capture = {
  cap_node : int;
  buf : Buffer.t;
  mutable open_elements : int;
}

(* [run_core] is written against three per-event handlers rather than an
   event stream: the cursor driver below feeds the engine interned names
   and borrowed [Tx_sub] text spans, so on the fast path (no capture in
   progress) an event costs no allocation at all.  Attribute lists and
   text copies are behind thunks, forced only while a capture is actually
   recording. *)
let run_core ~capture ?budget ?trace ?use_tables ?memo_cap ?owners ?n_queries
    mfa drive =
  let use_tables =
    match use_tables with
    | Some b -> b
    | None -> Smoqe_automata.Tables.enabled_default ()
  in
  (* Streaming has no tag universe up front: a dynamic table pre-interns
     the automaton's element names and grows as unseen stream tags arrive.
     Dynamic tables are mutable, so each run builds its own. *)
  let tables =
    if use_tables then
      Some (Smoqe_automata.Tables.dynamic mfa.Smoqe_automata.Mfa.nfa)
    else None
  in
  let engine = Engine.create ?trace ?tables ?memo_cap ?owners ?n_queries mfa in
  let stats = Engine.stats engine in
  (match tables with
  | Some tb ->
    stats.Stats.table_spec_us <- Smoqe_automata.Tables.spec_us tb
  | None -> ());
  let ticks = ref 0 in
  let checkpoint =
    (* Same amortization as Eval_dom: one local increment per event, the
       budget settles every 32 events, the Cans size is audited every 256,
       and a final settlement covers short streams. *)
    match budget with
    | None -> fun () -> Failpoint.trigger "hype.step"
    | Some b ->
      fun () ->
        Failpoint.trigger "hype.step";
        let k = !ticks + 1 in
        ticks := k;
        if k land 31 = 0 then begin
          Budget.tick_nodes b 32;
          if k land 255 = 0 then Budget.check_cans b (Engine.cans_size engine)
        end
  in
  let final_check () =
    match budget with
    | None -> ()
    | Some b ->
      (match !ticks land 31 with
      | 0 -> ()
      | rest -> Budget.tick_nodes b rest);
      Budget.check_cans b (Engine.cans_size engine);
      Budget.check_deadline b
  in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let stack = ref [] in
  let mark id m = match trace with None -> () | Some tr -> Trace.mark tr id m in
  let parent_alive () =
    match !stack with [] -> true | level :: _ -> level = Entered_alive
  in
  (* capturing *)
  let open_captures = ref [] in
  let finished_captures : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let cap_start ~candidate id tag attrs =
    List.iter
      (fun c ->
        Buffer.add_char c.buf '<';
        Buffer.add_string c.buf tag;
        List.iter
          (fun (k, v) ->
            Buffer.add_char c.buf ' ';
            Buffer.add_string c.buf k;
            Buffer.add_string c.buf "=\"";
            Buffer.add_string c.buf (Serializer.escape_attr v);
            Buffer.add_char c.buf '"')
          attrs;
        Buffer.add_char c.buf '>';
        c.open_elements <- c.open_elements + 1)
      !open_captures;
    if capture && candidate then
      open_captures :=
        (let c = { cap_node = id; buf = Buffer.create 64; open_elements = 1 } in
         Buffer.add_char c.buf '<';
         Buffer.add_string c.buf tag;
         List.iter
           (fun (k, v) ->
             Buffer.add_char c.buf ' ';
             Buffer.add_string c.buf k;
             Buffer.add_string c.buf "=\"";
             Buffer.add_string c.buf (Serializer.escape_attr v);
             Buffer.add_char c.buf '"')
           attrs;
         Buffer.add_char c.buf '>';
         c)
        :: !open_captures
  in
  let cap_end tag =
    List.iter
      (fun c ->
        Buffer.add_string c.buf "</";
        Buffer.add_string c.buf tag;
        Buffer.add_char c.buf '>';
        c.open_elements <- c.open_elements - 1)
      !open_captures;
    open_captures :=
      List.filter
        (fun c ->
          if c.open_elements = 0 then begin
            Hashtbl.replace finished_captures c.cap_node (Buffer.contents c.buf);
            false
          end
          else true)
        !open_captures
  in
  let cap_text id content is_candidate =
    List.iter
      (fun c -> Buffer.add_string c.buf (Serializer.escape_text content))
      !open_captures;
    if capture && is_candidate then
      Hashtbl.replace finished_captures id (Serializer.escape_text content)
  in
  (* Attribute/text thunks are forced only when some capture buffer will
     consume the result — the guards mirror the no-op conditions of
     [cap_start]/[cap_text], so behaviour is unchanged. *)
  let on_start name attrs_fn =
    checkpoint ();
    let id = fresh_id () in
    if parent_alive () then begin
      (match Engine.enter engine ~id ~kind:(Engine.El name) with
      | Engine.Alive -> stack := Entered_alive :: !stack
      | Engine.Dead ->
        mark id Trace.Skipped_dead;
        stack := Skipped :: !stack);
      let candidate = Engine.entered_candidate engine in
      if !open_captures <> [] || (capture && candidate) then
        cap_start ~candidate id name (attrs_fn ())
    end
    else begin
      stats.Stats.nodes_skipped_dead <- stats.Stats.nodes_skipped_dead + 1;
      mark id Trace.Skipped_dead;
      stack := Skipped :: !stack;
      if !open_captures <> [] then
        cap_start ~candidate:false (-1) name (attrs_fn ())
    end
  in
  let on_end name =
    checkpoint ();
    (match !stack with
    | [] -> raise (Engine.Driver_error "unbalanced end event")
    | level :: rest ->
      (match level with
      | Entered_alive -> Engine.leave engine
      | Skipped -> ());
      stack := rest);
    cap_end name
  in
  let on_text kind content_fn =
    checkpoint ();
    let id = fresh_id () in
    if parent_alive () then begin
      match Engine.enter engine ~id ~kind with
      | Engine.Alive ->
        let candidate = Engine.entered_candidate engine in
        if !open_captures <> [] || (capture && candidate) then
          cap_text id (content_fn ()) candidate;
        Engine.leave engine
      | Engine.Dead ->
        if !open_captures <> [] then cap_text id (content_fn ()) false
    end
    else begin
      stats.Stats.nodes_skipped_dead <- stats.Stats.nodes_skipped_dead + 1;
      mark id Trace.Skipped_dead;
      if !open_captures <> [] then cap_text id (content_fn ()) false
    end
  in
  let budget_hit = ref None in
  (try
     drive ~on_start ~on_end ~on_text;
     final_check ()
   with Budget.Exceeded { what; limit } -> budget_hit := Some (what, limit));
  (engine, stats, finished_captures, !next_id, !budget_hit)

(* Zero-copy driver: names arrive interned from the cursor, text as a
   borrowed span consumed inside [on_text] (enter → capture → leave)
   before the next [cursor_next] invalidates it. *)
let drive_cursor pull ~on_start ~on_end ~on_text =
  let rec loop () =
    match Pull.cursor_next pull with
    | Pull.Cursor_eof -> ()
    | Pull.Cursor_start ->
      on_start (Pull.cur_name pull) (fun () -> Pull.cur_attrs pull);
      loop ()
    | Pull.Cursor_end ->
      on_end (Pull.cur_name pull);
      loop ()
    | Pull.Cursor_text ->
      let backing, off, len = Pull.cur_text_span pull in
      on_text
        (Engine.Tx_sub (backing, off, len))
        (fun () -> Pull.cur_text pull);
      loop ()
  in
  loop ()

let drive_events next ~on_start ~on_end ~on_text =
  let rec loop () =
    match next () with
    | None -> ()
    | Some ev ->
      (match ev with
      | Pull.Start_element (name, attrs) -> on_start name (fun () -> attrs)
      | Pull.End_element name -> on_end name
      | Pull.Text content -> on_text (Engine.Tx content) (fun () -> content));
      loop ()
  in
  loop ()

(* Serialized fragments for one answer list, from the per-node capture
   store (node ids are query-agnostic, so a batch shares the store). *)
let captures_for finished_captures answers =
  List.filter_map
    (fun n ->
      Option.map (fun s -> (n, s)) (Hashtbl.find_opt finished_captures n))
    answers

let run_generic ?(capture = false) ?budget ?trace ?use_tables ?memo_cap mfa
    drive =
  let engine, stats, finished_captures, n_nodes, budget_hit =
    run_core ~capture ?budget ?trace ?use_tables ?memo_cap mfa drive
  in
  let answers =
    match budget_hit with None -> Engine.finish engine | Some _ -> []
  in
  Stats.note_tables stats;
  let captured =
    if not capture then [] else captures_for finished_captures answers
  in
  {
    answers;
    captured;
    stats;
    cans_size = Engine.cans_size engine;
    n_nodes;
    budget_hit;
  }

let run_many_generic ?(capture = false) ?budget ?trace ?use_tables ?memo_cap
    (sh : Shared.t) drive =
  let engine, stats, finished_captures, n_nodes, budget_hit =
    run_core ~capture ?budget ?trace ?use_tables ?memo_cap
      ~owners:sh.Shared.owners ~n_queries:sh.Shared.n_queries sh.Shared.mfa
      drive
  in
  stats.Stats.batch_queries <- sh.Shared.n_queries;
  stats.Stats.shared_states <- sh.Shared.merged_states;
  stats.Stats.shared_saved <- Shared.saved_states sh;
  stats.Stats.shared_prefix_hits <- sh.Shared.prefix_hits;
  stats.Stats.accept_width <- sh.Shared.accept_width;
  let by_query =
    match budget_hit with
    | None -> Engine.finish_many engine
    | Some _ -> Array.make sh.Shared.n_queries []
  in
  Stats.note_tables stats;
  let by_query_captured =
    if not capture then Array.make sh.Shared.n_queries []
    else Array.map (captures_for finished_captures) by_query
  in
  {
    by_query;
    by_query_captured;
    m_stats = stats;
    m_cans_size = Engine.cans_size engine;
    m_n_nodes = n_nodes;
    m_budget_hit = budget_hit;
  }

let run ?capture ?budget ?trace ?use_tables ?memo_cap mfa pull =
  run_generic ?capture ?budget ?trace ?use_tables ?memo_cap mfa
    (drive_cursor pull)

let run_many ?capture ?budget ?trace ?use_tables ?memo_cap sh pull =
  run_many_generic ?capture ?budget ?trace ?use_tables ?memo_cap sh
    (drive_cursor pull)

let next_of_list events =
  let remaining = ref events in
  fun () ->
    match !remaining with
    | [] -> None
    | ev :: rest ->
      remaining := rest;
      Some ev

let run_many_events ?capture ?budget ?trace ?use_tables ?memo_cap sh events =
  run_many_generic ?capture ?budget ?trace ?use_tables ?memo_cap sh
    (drive_events (next_of_list events))

let run_events ?capture ?budget ?trace ?use_tables ?memo_cap mfa events =
  run_generic ?capture ?budget ?trace ?use_tables ?memo_cap mfa
    (drive_events (next_of_list events))

let eval_string ?capture ?trace path input =
  let mfa = Smoqe_automata.Compile.compile path in
  run ?capture ?trace mfa (Pull.of_string input)
