(** HyPE over an in-memory document — SMOQE's DOM mode.

    A single top-down depth-first traversal of the tree drives the
    {!Engine}; with a TAX index the driver additionally skips whole
    subtrees the automaton provably cannot use (experiment E3 toggles
    exactly this). *)

type result = {
  answers : int list;  (** answer nodes, in document order *)
  stats : Stats.t;
  cans_size : int;  (** candidates held in Cans at the end of the pass *)
  budget_hit : (string * string) option;
      (** [Some (what, limit)] when the traversal stopped on a budget:
          [answers] is empty, [stats] holds the partial counters *)
}

val run :
  ?tax:Smoqe_tax.Tax.t ->
  ?prune_threshold:int ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Trace.t ->
  ?tables:Smoqe_automata.Tables.t ->
  ?use_tables:bool ->
  ?memo_cap:int ->
  Smoqe_automata.Mfa.t ->
  Smoqe_xml.Tree.t ->
  result
(** [prune_threshold] (default 48): subtrees smaller than this many nodes
    are scanned rather than tested against the index — the test costs more
    than the scan below that size.  With [budget], every node entered is
    one tick; a tripped budget ends the pass with [budget_hit] set rather
    than raising.  The ["hype.step"] failpoint fires here.

    [use_tables] (default {!Smoqe_automata.Tables.enabled_default}, i.e.
    on unless [SMOQE_NO_TABLES] is set) selects the table-driven engine.
    [tables] supplies a pre-built frozen specialization; it is used only
    when built for exactly this tree ([Tables.built_for]), otherwise the
    driver respecializes — so callers may pass whatever the plan cache
    holds without checking.  [memo_cap] is forwarded to {!Engine.create}
    (tests exercise lazy-DFA flushes with tiny caps). *)

type many_result = {
  by_query : int list array;  (** answers per batch query, document order *)
  m_stats : Stats.t;  (** one shared pass: traversal counters are joint *)
  m_cans_size : int;
  m_budget_hit : (string * string) option;
}

val run_many :
  ?tax:Smoqe_tax.Tax.t ->
  ?prune_threshold:int ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Trace.t ->
  ?tables:Smoqe_automata.Tables.t ->
  ?use_tables:bool ->
  ?memo_cap:int ->
  Smoqe_automata.Shared.t ->
  Smoqe_xml.Tree.t ->
  many_result
(** One traversal answering every query of a shared-automaton batch
    ({!Smoqe_automata.Shared.merge}): the combined NFA rides the same
    table/lazy-DFA machinery as {!run} — the interned state sets just get
    wider — and candidates demultiplex to per-query answer lists through
    the merge's owner table.  [tables], if supplied, must specialize the
    {e merged} automaton.  A tripped budget empties every query's answers
    (the shared pass is all-or-nothing). *)

val eval :
  ?tax:Smoqe_tax.Tax.t ->
  Smoqe_xml.Tree.t ->
  Smoqe_rxpath.Ast.path ->
  int list
(** Compile-and-run convenience. *)
