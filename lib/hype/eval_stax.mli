(** HyPE over a pull-event stream — SMOQE's StAX mode.

    One sequential scan of the document, never materializing a tree: the
    driver assigns pre-order ids on the fly and fast-forwards through
    subtrees whose root matched no run (the engine is not consulted again
    until the corresponding end event).  Answers are reported as pre-order
    ids — identical to the ids a DOM parse of the same document would
    assign.

    With [~capture:true] the driver additionally buffers the markup of
    every candidate subtree while scanning (still one pass) and returns the
    serialized fragments of the final answers — the streaming counterpart
    of the output visualizer's text mode.  Memory grows with the size of
    the captured candidates only. *)

type result = {
  answers : int list;
  captured : (int * string) list;
      (** answer node id -> serialized fragment; [[]] unless capturing *)
  stats : Stats.t;
  cans_size : int;
  n_nodes : int;  (** total nodes scanned (elements + text) *)
  budget_hit : (string * string) option;
      (** [Some (what, limit)] when the scan stopped on a budget:
          [answers] is empty, [stats] holds the partial counters *)
}

type many_result = {
  by_query : int list array;  (** answers per batch query, document order *)
  by_query_captured : (int * string) list array;
      (** per-query serialized fragments; all [[]] unless capturing *)
  m_stats : Stats.t;
  m_cans_size : int;
  m_n_nodes : int;
  m_budget_hit : (string * string) option;
}

val run_many :
  ?capture:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Trace.t ->
  ?use_tables:bool ->
  ?memo_cap:int ->
  Smoqe_automata.Shared.t ->
  Smoqe_xml.Pull.t ->
  many_result
(** One scan answering every query of a shared-automaton batch
    ({!Smoqe_automata.Shared.merge}); the per-node capture store is shared
    and fragments demultiplex with the answers.  A tripped budget empties
    every query's answers. *)

val run_many_events :
  ?capture:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Trace.t ->
  ?use_tables:bool ->
  ?memo_cap:int ->
  Smoqe_automata.Shared.t ->
  Smoqe_xml.Pull.event list ->
  many_result
(** {!run_many} over an already-materialized event list. *)

val run :
  ?capture:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Trace.t ->
  ?use_tables:bool ->
  ?memo_cap:int ->
  Smoqe_automata.Mfa.t ->
  Smoqe_xml.Pull.t ->
  result
(** Every event scanned is one budget tick; the ["hype.step"] failpoint
    fires per event (and ["pull.read"] inside the parser itself).

    [use_tables] (default {!Smoqe_automata.Tables.enabled_default}) runs
    the table-driven engine over a per-run {e dynamic} table: the
    automaton's element names are pre-interned, unseen stream tags are
    interned on the fly.  [memo_cap] is forwarded to {!Engine.create}. *)

val run_events :
  ?capture:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Trace.t ->
  ?use_tables:bool ->
  ?memo_cap:int ->
  Smoqe_automata.Mfa.t ->
  Smoqe_xml.Pull.event list ->
  result
(** Same, over an already-materialized event list (used by tests to compare
    against the DOM mode). *)

val eval_string :
  ?capture:bool -> ?trace:Trace.t -> Smoqe_rxpath.Ast.path -> string -> result
(** Parse-compile-and-run convenience over an XML string. *)
