(** Evaluation counters, backing experiments E1–E6 and the iSMOQE
    "window into the engine". *)

type t = {
  mutable nodes_entered : int;
      (** nodes the engine processed (alive or found dead on entry) *)
  mutable nodes_alive : int;  (** nodes with at least one active run *)
  mutable nodes_skipped_dead : int;
      (** nodes never entered: inside subtrees with no active run *)
  mutable nodes_pruned_tax : int;
      (** nodes never entered thanks to TAX pruning *)
  mutable candidates : int;  (** entries added to Cans *)
  mutable answers : int;
  mutable conds_created : int;  (** deferred qualifier assumptions *)
  mutable quals_resolved : int;  (** qualifier instances settled *)
  mutable atom_instances : int;  (** qualifier-atom runs instantiated *)
  mutable max_items : int;  (** peak simultaneous run items on one node *)
  mutable passes_over_data : int;  (** 1 for HyPE; baselines report more *)
  mutable degraded_no_index : int;
      (** 1 when an index was requested/expected but evaluation fell back
          to an unindexed DOM pass *)
  mutable degraded_stax_retry : int;
      (** 1 when the StAX driver failed and the query was retried (and
          answered) in DOM mode *)
  mutable plan_cache_hit : int;
      (** 1 when the compiled plan was served from the engine's plan cache
          (parse, rewrite and compile all skipped) *)
  mutable memo_hits : int;
      (** lazy-DFA memo: [(state set, tag)] transitions served memoized *)
  mutable memo_misses : int;  (** transitions computed and memoized *)
  mutable memo_evictions : int;
      (** lazy-DFA registry flushes (set diversity exceeded the cap) *)
  mutable table_spec_us : int;
      (** microseconds spent specializing transition tables for this query
          (0 when a frozen table was reused from the plan) *)
  mutable batch_queries : int;
      (** queries served by this shared-automaton batch pass (0 for a
          plain single-query run) *)
  mutable shared_states : int;
      (** states in the merged batch automaton *)
  mutable shared_saved : int;
      (** member states the prefix-sharing merge collapsed away *)
  mutable shared_prefix_hits : int;
      (** member states fused into an already-merged state *)
  mutable accept_width : int;
      (** widest per-state owner set among the batch accept states *)
  mutable policy_key_hits : int;
      (** tenant registrations/lookups served from shared artifacts under
          an already-derived canonical policy key (derivation skipped) *)
  mutable tenant_throttled : int;
      (** queries rejected by per-tenant admission control (token bucket
          empty); in an aggregate, the count of throttled queries *)
  mutable shard_fanout : int;
      (** engine shards this answer was scatter-gathered across (0 for a
          plain single-engine run) *)
}

val create : unit -> t

val zero : unit -> t
(** An all-zero accumulator (unlike {!create}, [passes_over_data] starts
    at 0): the identity for {!merge_into}. *)

val merge_into : into:t -> t -> unit
(** Fold one query's counters into an aggregate — how the pool executor
    reports a batch: each parallel query evaluates with its own
    domain-local [t], and the per-domain results are merged after the
    futures resolve (no counter is ever shared while hot).  Sums every
    counter except [max_items] and [accept_width], which take the max; the
    one-valued flags ([degraded_*], [plan_cache_hit]) therefore become
    {e counts} of affected queries in the aggregate.  Totality over the
    record is enforced by a unit test — add new fields here, to
    {!to_assoc} and to the test together. *)

val total_skipped : t -> int
(** Dead-skipped plus TAX-pruned. *)

val degraded : t -> bool
(** Did any graceful degradation (index → no-index, StAX → DOM) occur? *)

val to_assoc : t -> (string * int) list
(** All counters as labelled integers — the shape
    [Smoqe_robust.Error.Budget_exceeded] carries as partial statistics. *)

val pp : Format.formatter -> t -> unit

val note_tables : t -> unit
(** Fold this query's table-layer counters ([memo_*], [table_spec_us])
    into a process-wide aggregate.  Drivers call it once per run;
    thread-safe. *)

val tables_counters : unit -> (string * int) list
(** The process-wide table-layer aggregate — bench artifacts embed it in
    every [BENCH_<id>.json]. *)
