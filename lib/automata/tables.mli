(** Tag-specialized transition tables for an {!Nfa.t}.

    Compiles the NFA's [(test * state) list] rows against a tag-id space
    into dense per-tag columns [targets t state tag -> int array], so the
    evaluator hot path does no string comparison and no list scan.
    Columns hold {e raw} matched transition targets — not epsilon-closed,
    checks not interpreted; the evaluator owns closure and qualifier
    semantics.  Matching delegates to {!Nfa.matches_name}, so the table
    layer and the generic scan share one semantics.

    Frozen tables ({!of_tree}) are immutable after construction and safe
    to share across domains (they ride the plan cache).  Dynamic tables
    ({!dynamic}) grow as stream tags are {!intern}ed and must stay private
    to a single run. *)

type t

val text_tag : int
(** Tag id of text nodes — equals {!Smoqe_xml.Tree.text_tag}. *)

val unknown_tag : int
(** Negative sentinel: an element tag a frozen table has never seen.
    {!targets} maps it (and any out-of-range id) to the wildcard column. *)

val of_tree : Nfa.t -> Smoqe_xml.Tree.t -> t
(** Frozen specialization against the document's interned tag table.  Tag
    ids align with [Tree.tag_id] on that tree, so DOM drivers can pass
    tree tag ids straight through. *)

val dynamic : Nfa.t -> t
(** Growable specialization for streaming.  Element names mentioned by
    the automaton are pre-interned; unseen stream tags are added by
    {!intern} and alias the wildcard column. *)

val intern : t -> string -> int
(** Tag id for an element name.  Grows dynamic tables; on a frozen table
    an unseen name is {!unknown_tag}. *)

val targets : t -> Nfa.state -> int -> int array
(** [targets t s tag] — raw transition targets of state [s] on a child
    with tag [tag].  Out-of-range and {!unknown_tag} ids resolve to the
    wildcard (Any_element) row.  The returned array is shared: do not
    mutate. *)

val nfa : t -> Nfa.t
(** The automaton this table specializes (physical identity matters:
    evaluators refuse tables built for a different NFA). *)

val built_for : t -> Smoqe_xml.Tree.t -> bool
(** Whether this frozen table's columns are valid for this tree's tag
    ids: the tree it was built for, or any tree of the same tag-interning
    lineage ({!Smoqe_xml.Tree.tags_token} equality) — functional subtree
    updates preserve the lineage when they intern no new tag, so warm
    tables survive them. *)

val is_frozen : t -> bool
val n_tags : t -> int

val spec_us : t -> int
(** Wall-clock microseconds spent building the table (observability). *)

val enabled_default : unit -> bool
(** Default for the table layer: [true] unless the [SMOQE_NO_TABLES]
    environment variable is set non-empty. *)
