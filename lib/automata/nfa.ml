module Tree = Smoqe_xml.Tree

type test =
  | Any_element
  | Element of string
  | Text_node

type state = int

type accept =
  | Select
  | Atom_accept of int

type t = {
  n_states : int;
  delta : (test * state) list array;
  eps : state list array;
  checks : int list array;
  accepts : accept list array;
}

(* The one label-matching semantics of the whole engine: every evaluator
   (generic HyPE, the table layer, the baselines) goes through here, so
   there is exactly one definition to test.  [name] is ignored unless the
   test is [Element _] on an element. *)
let matches_name test ~is_element ~name =
  match test with
  | Any_element -> is_element
  | Element s -> is_element && String.equal s name
  | Text_node -> not is_element

let test_matches test tree node =
  matches_name test ~is_element:(Tree.is_element tree node)
    ~name:(Tree.name tree node)

let pp_test ppf = function
  | Any_element -> Fmt.string ppf "*"
  | Element s -> Fmt.string ppf s
  | Text_node -> Fmt.string ppf "text()"

type builder = {
  mutable next : int;
  mutable b_delta : (state * test * state) list;
  mutable b_eps : (state * state) list;
  mutable b_checks : (state * int) list;
  mutable b_accepts : (state * accept) list;
}

let create_builder () =
  { next = 0; b_delta = []; b_eps = []; b_checks = []; b_accepts = [] }

let fresh_state b =
  let s = b.next in
  b.next <- s + 1;
  s

let check_state b s =
  if s < 0 || s >= b.next then invalid_arg "Nfa: unknown state"

let add_edge b s test s' =
  check_state b s;
  check_state b s';
  b.b_delta <- (s, test, s') :: b.b_delta

let add_eps b s s' =
  check_state b s;
  check_state b s';
  if s <> s' then b.b_eps <- (s, s') :: b.b_eps

let add_check b s qual =
  check_state b s;
  b.b_checks <- (s, qual) :: b.b_checks

let add_accept b s acc =
  check_state b s;
  b.b_accepts <- (s, acc) :: b.b_accepts

let freeze b =
  let n = b.next in
  let delta = Array.make n []
  and eps = Array.make n []
  and checks = Array.make n []
  and accepts = Array.make n [] in
  let add_once arr s v = if not (List.mem v arr.(s)) then arr.(s) <- v :: arr.(s) in
  List.iter (fun (s, test, s') -> add_once delta s (test, s')) b.b_delta;
  List.iter (fun (s, s') -> add_once eps s s') b.b_eps;
  List.iter (fun (s, q) -> add_once checks s q) b.b_checks;
  List.iter (fun (s, a) -> add_once accepts s a) b.b_accepts;
  { n_states = n; delta; eps; checks; accepts }

let eps_closure t states =
  let seen = Array.make t.n_states false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter visit t.eps.(s)
    end
  in
  List.iter visit states;
  let out = ref [] in
  for s = t.n_states - 1 downto 0 do
    if seen.(s) then out := s :: !out
  done;
  !out

let reachable_states t start =
  let seen = Array.make t.n_states false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter visit t.eps.(s);
      List.iter (fun (_, s') -> visit s') t.delta.(s)
    end
  in
  visit start;
  let out = ref [] in
  for s = t.n_states - 1 downto 0 do
    if seen.(s) then out := s :: !out
  done;
  !out

let n_transitions t =
  let total = ref 0 in
  Array.iter (fun l -> total := !total + List.length l) t.delta;
  Array.iter (fun l -> total := !total + List.length l) t.eps;
  !total
