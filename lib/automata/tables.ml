(* Tag-specialized transition tables for an NFA.

   The generic evaluator steps the automaton by scanning [(test * state)
   list] rows and string-comparing element names per transition.  This
   module compiles those rows against a tag-id space into dense arrays so
   the hot path is [step.(tag_id).(state) -> int array] — no string
   comparison, no list walk.

   Two construction modes share the representation:

   - {e frozen} ([of_tree]): the tag-id space is the document's interned
     tag table ([Tree.tag_id] alignment is guaranteed), every column is
     built eagerly, and the value is immutable afterwards — safe to share
     across domains via the plan cache.
   - {e dynamic} ([dynamic]): for streaming, where tags arrive as strings
     and the universe is unknown.  Element names mentioned by the
     automaton are pre-interned at build time; unseen stream tags are
     interned on the fly ([intern]) and get the shared wildcard column.
     Dynamic tables are mutable and must stay private to one run.

   Columns store the {e raw} matched transition targets per state — not
   epsilon-closed and with no check interpretation.  Closure, checks and
   qualifier conds are the evaluator's business; keeping the table dumb
   keeps one matching semantics ({!Nfa.matches_name}) and lets the same
   column serve item stepping, the lazy-DFA closure and the AFA
   contribute-upward scan. *)

module Tree = Smoqe_xml.Tree

let text_tag = Tree.text_tag
let unknown_tag = -1

type t = {
  nfa : Nfa.t;
  frozen : bool;
  source : Tree.t option;  (* the tree a frozen table was built for *)
  tag_ids : (string, int) Hashtbl.t;
  mutable n_tags : int;
  mutable step : int array array array;  (* step.(tag).(state) -> targets *)
  wild : int array array;  (* per-state Any_element targets: unknown tags *)
  spec_us : int;  (* wall time spent specializing, microseconds *)
}

let nfa t = t.nfa
let spec_us t = t.spec_us
let n_tags t = t.n_tags
let is_frozen t = t.frozen
(* A frozen table depends on the tree only through its tag interning, so
   it remains valid for any tree of the same tag lineage — in particular
   across the functional subtree updates, which preserve [tags_token]
   exactly when they intern no new tag.  A token mismatch (a new tag
   appeared) forces respecialization: the frozen columns would route the
   new tag id to the wildcard column and miss its [Element] edges. *)
let built_for t tree =
  match t.source with
  | Some tr -> tr == tree || Tree.tags_token tr = Tree.tags_token tree
  | None -> false

let no_targets : int array = [||]

(* Per-state [Any_element] targets; the column every unknown tag gets. *)
let wild_column (nfa : Nfa.t) =
  Array.map
    (fun row ->
      match
        List.filter_map
          (function Nfa.Any_element, s' -> Some s' | _ -> None)
          row
      with
      | [] -> no_targets
      | l -> Array.of_list l)
    nfa.Nfa.delta

let text_column (nfa : Nfa.t) =
  Array.map
    (fun row ->
      match
        List.filter_map
          (function Nfa.Text_node, s' -> Some s' | _ -> None)
          row
      with
      | [] -> no_targets
      | l -> Array.of_list l)
    nfa.Nfa.delta

(* Column for element tag [nm].  Rows with no [Element nm] edge alias the
   wildcard row; if no state mentions [nm] at all the whole wildcard
   column is shared (common for data-only tags the query never names). *)
let element_column (nfa : Nfa.t) wild nm =
  let n = Array.length nfa.Nfa.delta in
  let any_specific = ref false in
  let col = Array.make n no_targets in
  for s = 0 to n - 1 do
    let specific =
      List.filter_map
        (fun (test, s') ->
          if Nfa.matches_name test ~is_element:true ~name:nm then Some s'
          else None)
        nfa.Nfa.delta.(s)
    in
    (* [matches_name] admits Any_element too, so [specific] already merges
       the wildcard row; flag columns that differ from pure-wildcard. *)
    if List.length specific <> Array.length wild.(s) then any_specific := true;
    col.(s) <- (match specific with [] -> no_targets | l -> Array.of_list l)
  done;
  if !any_specific then col else wild

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let of_tree (nfa : Nfa.t) tree =
  let t0 = now_us () in
  let wild = wild_column nfa in
  let n_tags = Tree.n_tags tree in
  let step =
    Array.init n_tags (fun a ->
        if a = text_tag then text_column nfa
        else element_column nfa wild (Tree.tag_name tree a))
  in
  let tag_ids = Hashtbl.create (2 * n_tags) in
  for a = 0 to n_tags - 1 do
    Hashtbl.replace tag_ids (Tree.tag_name tree a) a
  done;
  {
    nfa;
    frozen = true;
    source = Some tree;
    tag_ids;
    n_tags;
    step;
    wild;
    spec_us = max 1 (now_us () - t0);
  }

let dynamic (nfa : Nfa.t) =
  let t0 = now_us () in
  let wild = wild_column nfa in
  let tag_ids = Hashtbl.create 32 in
  Hashtbl.replace tag_ids "#text" text_tag;
  (* Pre-intern every element name the automaton mentions, so a stream tag
     equal to a query name can never be mistaken for an unknown tag and
     sent down the wildcard-only column. *)
  let names = ref [] in
  Array.iter
    (List.iter (function
      | Nfa.Element nm, _ ->
        if not (Hashtbl.mem tag_ids nm) then begin
          Hashtbl.replace tag_ids nm (-1);
          (* placeholder; real ids assigned below in insertion order *)
          names := nm :: !names
        end
      | _ -> ()))
    nfa.Nfa.delta;
  let names = List.rev !names in
  let n = 1 + List.length names in
  let step = Array.make (max 4 (2 * n)) wild in
  step.(text_tag) <- text_column nfa;
  List.iteri
    (fun i nm ->
      let a = 1 + i in
      Hashtbl.replace tag_ids nm a;
      step.(a) <- element_column nfa wild nm)
    names;
  {
    nfa;
    frozen = false;
    source = None;
    tag_ids;
    n_tags = n;
    step;
    wild;
    spec_us = max 1 (now_us () - t0);
  }

(* Tag id for [nm].  Frozen tables never learn new tags: [unknown_tag]
   routes lookups to the wildcard column (a frozen table only sees names
   outside its tree via engine-internal probes, never from the driver).
   Dynamic tables grow: a stream tag the automaton does not name gets a
   fresh id whose column {e aliases} the wildcard column, so interning is
   O(1) amortized and the memo can still distinguish tags if the caller
   cares to. *)
let intern t nm =
  match Hashtbl.find_opt t.tag_ids nm with
  | Some a -> a
  | None ->
    if t.frozen then unknown_tag
    else begin
      let a = t.n_tags in
      if a >= Array.length t.step then begin
        let step = Array.make (2 * Array.length t.step) t.wild in
        Array.blit t.step 0 step 0 t.n_tags;
        t.step <- step
      end;
      t.step.(a) <- t.wild;
      t.n_tags <- a + 1;
      Hashtbl.replace t.tag_ids nm a;
      a
    end

let targets t state tag =
  if tag < 0 || tag >= t.n_tags then t.wild.(state) else t.step.(tag).(state)

(* Default gate for the whole table layer: on unless SMOQE_NO_TABLES is
   set (to anything non-empty). *)
let enabled_default () =
  match Sys.getenv_opt "SMOQE_NO_TABLES" with
  | None | Some "" -> true
  | Some _ -> false
