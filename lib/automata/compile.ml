module Ast = Smoqe_rxpath.Ast

let rec build_path b p ~entry ~exit =
  match p with
  | Ast.Self -> Mfa.add_eps b entry exit
  | Ast.Tag s -> Mfa.add_edge b entry (Nfa.Element s) exit
  | Ast.Wildcard -> Mfa.add_edge b entry Nfa.Any_element exit
  | Ast.Text -> Mfa.add_edge b entry Nfa.Text_node exit
  | Ast.Seq (p1, p2) ->
    let mid = Mfa.fresh_state b in
    build_path b p1 ~entry ~exit:mid;
    build_path b p2 ~entry:mid ~exit
  | Ast.Union (p1, p2) ->
    build_path b p1 ~entry ~exit;
    build_path b p2 ~entry ~exit
  | Ast.Star p ->
    (* A single loop state: entry -eps-> hub -eps-> exit, with the body
       looping on the hub. *)
    let hub = Mfa.fresh_state b in
    Mfa.add_eps b entry hub;
    Mfa.add_eps b hub exit;
    build_path b p ~entry:hub ~exit:hub
  | Ast.Filter (p, q) ->
    let mid = Mfa.fresh_state b in
    build_path b p ~entry ~exit:mid;
    let formula = build_qual b q in
    let qid = Mfa.add_qual b formula in
    Mfa.add_check b mid qid;
    Mfa.add_eps b mid exit

and build_qual b q =
  match q with
  | Ast.True -> Afa.F_true
  | Ast.Exists p -> Afa.F_atom (build_atom b p None)
  | Ast.Value_eq (p, c) -> Afa.F_atom (build_atom b p (Some c))
  | Ast.Not q -> Afa.F_not (build_qual b q)
  | Ast.And (q1, q2) -> Afa.F_and (build_qual b q1, build_qual b q2)
  | Ast.Or (q1, q2) -> Afa.F_or (build_qual b q1, build_qual b q2)

and build_atom b p value =
  let entry = Mfa.fresh_state b in
  let exit = Mfa.fresh_state b in
  build_path b p ~entry ~exit;
  let id = Mfa.add_atom b ~start:entry ~value in
  Mfa.add_accept_atom b exit id;
  id

let compile ?budget p =
  let b = Mfa.create_builder () in
  let entry = Mfa.fresh_state b in
  let exit = Mfa.fresh_state b in
  build_path b p ~entry ~exit;
  Mfa.add_select b exit;
  let mfa = Mfa.freeze b ~start:entry in
  (match budget with
  | None -> ()
  | Some bg -> Smoqe_robust.Budget.check_states bg (Mfa.n_states mfa));
  mfa
