(** Prefix-sharing merge of many compiled MFAs into one batch automaton.

    SMOQE's serving story is one MFA pass per query; a pub/sub deployment
    with N subscribers would pay N document traversals.  [merge] collapses
    a batch of compiled queries YFilter-style into a {e single} MFA whose
    runs carry all N queries at once: states whose incoming languages are
    provably identical are fused (policy-rewritten view queries share long
    path prefixes by construction, so the collapse is substantial), and a
    per-state {e owner set} records which queries select at each fused
    accept state so the engine can demultiplex candidate answers back to
    their queries.

    Soundness of the fusion: a member state is eligible for unification
    only if it is check-free, carries no atom accept, and is not reachable
    from any qualifier-atom entry (atom subgraphs keep per-query identity
    because their accepts and value constraints are query-specific).  Two
    eligible states are fused only when their {e full} incoming-edge sets
    — external sources already mapped into the merged graph, plus
    self-loop labels — are identical, which makes their incoming languages
    identical; fusing then merely unions outgoing behavior the combined
    NFA would explore nondeterministically anyway.  Qualifier and atom ids
    are offset per query, so settlement never crosses query boundaries. *)

type t = private {
  mfa : Mfa.t;
      (** the combined automaton; [start] is a fresh root with an epsilon
          edge to every member query's start state *)
  n_queries : int;
  owners : int array array;
      (** merged state -> sorted owner query indices; non-empty exactly at
          the states carrying a [Select] accept *)
  merged_states : int;  (** states in the combined automaton *)
  member_states : int;  (** total states across the input automata *)
  prefix_hits : int;  (** member states fused into an existing state *)
  accept_width : int;  (** widest owner set over all accept states *)
}

val merge : Mfa.t array -> t
(** Merge a non-empty batch.  Order is significant only for owner
    numbering: query [i] of the input array is owner [i] in [owners].
    @raise Invalid_argument on an empty batch. *)

val saved_states : t -> int
(** [member_states - merged_states]: the collapse the merge achieved
    (the root state makes this [-1] for a batch of one trivial query). *)
