(* Prefix-sharing merge (see shared.mli for the soundness argument).

   The construction walks each member automaton in dependency order: a
   state is mapped into the merged graph once every external source of its
   incoming edges is mapped.  At that point its merged incoming-edge set is
   fully determined, and it is summarized as a signature

     (sorted external incoming as (merged source, label), sorted self labels)

   Two states with equal signatures have equal merged incoming-edge sets,
   hence equal incoming languages (self-loops contribute the same least
   fixpoint), so fusing them is sound.  Signatures are computed before the
   state is allocated, so a signature can never mention its own state — a
   lookup hit is always a genuine structural coincidence.  States that are
   ineligible (checks, atom accepts, atom-reachable), unreachable (empty
   incoming), or part of a non-self cycle (broken conservatively) map to
   fresh states and register no signature. *)

type t = {
  mfa : Mfa.t;
  n_queries : int;
  owners : int array array;
  merged_states : int;
  member_states : int;
  prefix_hits : int;
  accept_width : int;
}

type in_label = L_edge of Nfa.test | L_eps

let rec remap_formula off = function
  | Afa.F_true -> Afa.F_true
  | Afa.F_atom i -> Afa.F_atom (i + off)
  | Afa.F_not f -> Afa.F_not (remap_formula off f)
  | Afa.F_and (f, g) -> Afa.F_and (remap_formula off f, remap_formula off g)
  | Afa.F_or (f, g) -> Afa.F_or (remap_formula off f, remap_formula off g)

let merge (mfas : Mfa.t array) : t =
  let n_queries = Array.length mfas in
  if n_queries = 0 then invalid_arg "Shared.merge: empty batch";
  let b = Mfa.create_builder () in
  let root = Mfa.fresh_state b in
  (* signature -> merged state, shared across the whole batch *)
  let sig_table : (((int * in_label) list * in_label list), int) Hashtbl.t =
    Hashtbl.create 256
  in
  let owners_tbl : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let prefix_hits = ref 0 in
  let member_states = ref 0 in
  let atom_off = ref 0 in
  let qual_off = ref 0 in
  Array.iteri
    (fun q mfa ->
      let nfa = mfa.Mfa.nfa in
      let n = nfa.Nfa.n_states in
      member_states := !member_states + n;
      (* Ineligible for unification: guarded states, atom accepts, and
         anything inside a qualifier-atom subgraph. *)
      let fresh_req = Array.make n false in
      for s = 0 to n - 1 do
        if nfa.Nfa.checks.(s) <> [] then fresh_req.(s) <- true;
        if
          List.exists
            (function Nfa.Atom_accept _ -> true | Nfa.Select -> false)
            nfa.Nfa.accepts.(s)
        then fresh_req.(s) <- true
      done;
      Array.iter
        (fun (a : Afa.atom) ->
          List.iter
            (fun s -> fresh_req.(s) <- true)
            (Nfa.reachable_states nfa a.Afa.start))
        mfa.Mfa.atoms;
      (* Incoming adjacency; the query start gets a virtual epsilon from
         the merged root (src = -1), matching the edge added below. *)
      let incoming = Array.make n [] in
      for s = 0 to n - 1 do
        List.iter
          (fun (test, s') -> incoming.(s') <- (s, L_edge test) :: incoming.(s'))
          nfa.Nfa.delta.(s);
        List.iter
          (fun s' -> incoming.(s') <- (s, L_eps) :: incoming.(s'))
          nfa.Nfa.eps.(s)
      done;
      incoming.(mfa.Mfa.start) <- (-1, L_eps) :: incoming.(mfa.Mfa.start);
      let map = Array.make n (-1) in
      let msrc s = if s = -1 then root else map.(s) in
      let remaining = ref n in
      while !remaining > 0 do
        let progress = ref false in
        for s = 0 to n - 1 do
          if map.(s) < 0 then begin
            let self, ext =
              List.partition (fun (src, _) -> src = s) incoming.(s)
            in
            if List.for_all (fun (src, _) -> src = -1 || map.(src) >= 0) ext
            then begin
              let ms =
                if fresh_req.(s) || ext = [] then Mfa.fresh_state b
                else begin
                  let key =
                    ( List.sort_uniq compare
                        (List.map (fun (src, l) -> (msrc src, l)) ext),
                      List.sort_uniq compare (List.map snd self) )
                  in
                  match Hashtbl.find_opt sig_table key with
                  | Some m ->
                      incr prefix_hits;
                      m
                  | None ->
                      let m = Mfa.fresh_state b in
                      Hashtbl.add sig_table key m;
                      m
                end
              in
              map.(s) <- ms;
              decr remaining;
              progress := true
            end
          end
        done;
        if (not !progress) && !remaining > 0 then begin
          (* a cycle that is not a pure self-loop: break it conservatively
             by mapping its lowest state fresh (no signature registered) *)
          let s = ref 0 in
          while map.(!s) >= 0 do
            incr s
          done;
          map.(!s) <- Mfa.fresh_state b;
          decr remaining
        end
      done;
      (* Atoms and qualifiers, ids offset per query. *)
      Array.iteri
        (fun i (a : Afa.atom) ->
          let id = Mfa.add_atom b ~start:map.(a.Afa.start) ~value:a.Afa.value in
          assert (id = !atom_off + i))
        mfa.Mfa.atoms;
      Array.iteri
        (fun i f ->
          let id = Mfa.add_qual b (remap_formula !atom_off f) in
          assert (id = !qual_off + i))
        mfa.Mfa.quals;
      (* Structure: edges, checks, accepts.  [freeze] dedups, so edges a
         fused state inherited from an earlier query are added once. *)
      for s = 0 to n - 1 do
        List.iter
          (fun (test, s') -> Mfa.add_edge b map.(s) test map.(s'))
          nfa.Nfa.delta.(s);
        List.iter (fun s' -> Mfa.add_eps b map.(s) map.(s')) nfa.Nfa.eps.(s);
        List.iter (fun qid -> Mfa.add_check b map.(s) (!qual_off + qid))
          nfa.Nfa.checks.(s);
        List.iter
          (function
            | Nfa.Select ->
                Mfa.add_select b map.(s);
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt owners_tbl map.(s))
                in
                Hashtbl.replace owners_tbl map.(s) (q :: prev)
            | Nfa.Atom_accept id ->
                Mfa.add_accept_atom b map.(s) (!atom_off + id))
          nfa.Nfa.accepts.(s)
      done;
      Mfa.add_eps b root map.(mfa.Mfa.start);
      atom_off := !atom_off + Array.length mfa.Mfa.atoms;
      qual_off := !qual_off + Array.length mfa.Mfa.quals)
    mfas;
  let mfa = Mfa.freeze b ~start:root in
  let merged_states = Mfa.n_states mfa in
  let owners = Array.make merged_states [||] in
  let accept_width = ref 0 in
  Hashtbl.iter
    (fun s qs ->
      let qs = List.sort_uniq compare qs in
      owners.(s) <- Array.of_list qs;
      if Array.length owners.(s) > !accept_width then
        accept_width := Array.length owners.(s))
    owners_tbl;
  {
    mfa;
    n_queries;
    owners;
    merged_states;
    member_states = !member_states;
    prefix_hits = !prefix_hits;
    accept_width = !accept_width;
  }

let saved_states t = t.member_states - t.merged_states
