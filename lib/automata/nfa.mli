(** Nondeterministic finite automata over XML node tests.

    One NFA holds the {e entire} state space of an MFA: the selection path
    automaton and every qualifier atom automaton live side by side (paper
    §3, Rewriter: the MFA is "an NFA annotated with alternating automata").
    States carry three kinds of decoration:

    - {b consuming transitions} ([delta]) move from a node to one of its
      children, guarded by a node test;
    - {b epsilon transitions} stay on the current node;
    - {b checks}: qualifier ids (indices into the owning MFA's table) that
      must hold at the current node for a run to pass through the state;
    - {b accepts}: reaching the state selects the current node as a
      candidate answer ([Select]) or witnesses a qualifier atom
      ([Atom_accept]).

    Build with the mutable {!builder}, then {!freeze}. *)

type test =
  | Any_element  (** matches any element child *)
  | Element of string
  | Text_node  (** matches a text child *)

type state = int

type accept =
  | Select  (** selection-path acceptance: the node is a candidate answer *)
  | Atom_accept of int  (** accept for qualifier atom [i] *)

type t = private {
  n_states : int;
  delta : (test * state) list array;
  eps : state list array;
  checks : int list array;  (** qualifier ids guarding the state *)
  accepts : accept list array;
}

val matches_name : test -> is_element:bool -> name:string -> bool
(** The single label-matching semantics shared by every evaluator (the
    generic HyPE scan, the {!Tables} layer, the baselines).  [name] is
    only consulted for [Element _] tests on elements. *)

val test_matches : test -> Smoqe_xml.Tree.t -> Smoqe_xml.Tree.node -> bool
(** [matches_name] applied to a tree node. *)

val pp_test : Format.formatter -> test -> unit

(** {1 Building} *)

type builder

val create_builder : unit -> builder
val fresh_state : builder -> state
val add_edge : builder -> state -> test -> state -> unit
val add_eps : builder -> state -> state -> unit
val add_check : builder -> state -> int -> unit
val add_accept : builder -> state -> accept -> unit
val freeze : builder -> t

(** {1 Inspection} *)

val eps_closure : t -> state list -> state list
(** Forward closure under epsilon transitions only (checks are {e not}
    interpreted here — evaluators handle them).  Sorted, duplicate-free. *)

val reachable_states : t -> state -> state list
(** States reachable through any transition kind. *)

val n_transitions : t -> int
(** Total number of consuming + epsilon transitions (a size measure). *)
