module Tree = Smoqe_xml.Tree
module Error = Smoqe_robust.Error
module Derive = Smoqe_security.Derive
module Materialize = Smoqe_security.Materialize

type target =
  | By_id of Tree.node
  | By_path of string

type op =
  | Insert of { parent : target; before : Tree.node option;
                source : Tree.source }
  | Delete of target
  | Replace of target * Tree.source

let target_of = function
  | Insert { parent; _ } -> parent
  | Delete tgt -> tgt
  | Replace (tgt, _) -> tgt

type resolved =
  | R_insert of { parent : Tree.node; before : Tree.node option;
                  source : Tree.source }
  | R_delete of Tree.node
  | R_replace of Tree.node * Tree.source

let resolve op node =
  match op with
  | Insert { before; source; _ } -> R_insert { parent = node; before; source }
  | Delete _ -> R_delete node
  | Replace (_, src) -> R_replace (node, src)

type footprint = {
  fp_lo : int;
  fp_old_hi : int;
  fp_new_hi : int;
  fp_parent : int;
  fp_tags : string list;
}

let err fmt = Format.kasprintf (fun msg -> Error (Error.Query_error msg)) fmt

let denied node fmt =
  Format.kasprintf (fun msg -> Error (Error.Update_denied { node; msg })) fmt

let check_id tree n what =
  if n < 0 || n >= Tree.n_nodes tree then
    err "update %s: no node %d (document has %d nodes)" what n
      (Tree.n_nodes tree)
  else Ok ()

let ( let* ) = Result.bind

let validate tree = function
  | R_delete n ->
    let* () = check_id tree n "target" in
    if n = Tree.root then err "update: cannot delete the document root"
    else Ok ()
  | R_replace (n, _) -> check_id tree n "target"
  | R_insert { parent; before; _ } ->
    let* () = check_id tree parent "parent" in
    if Tree.is_text tree parent then
      err "update: insert parent %d is a text node" parent
    else (
      match before with
      | None -> Ok ()
      | Some b ->
        let* () = check_id tree b "~before" in
        if b = Tree.root || Tree.parent tree b <> Some parent then
          err "update: ~before node %d is not a child of parent %d" b parent
        else Ok ())

(* The set of document nodes the view exposes, by materialization
   provenance — the same oracle the rewriting conformance suite trusts. *)
let exposed_set view tree =
  match Error.guard (fun () -> Materialize.materialize view tree) with
  | Error _ as e -> e
  | Ok { Materialize.provenance; _ } ->
    let set = Hashtbl.create (Array.length provenance * 2) in
    Array.iter (fun doc_node -> Hashtbl.replace set doc_node ()) provenance;
    Ok set

(* Member legality, part one (against the pre-update document): the
   update may only touch nodes the view exposes.  For a delete or
   replace, that is the entire removed subtree — removing data the
   member cannot see is exactly what the security view forbids; for an
   insert, the parent receiving the new child.  The offending node
   reported is the first hidden one in document order. *)
let precheck ~view tree r =
  let* exposed = exposed_set view tree in
  let is_exposed n = Hashtbl.mem exposed n in
  match r with
  | R_delete n | R_replace (n, _) ->
    let stop = Tree.subtree_end tree n in
    let rec scan i =
      if i >= stop then Ok ()
      else if not (is_exposed i) then
        if i = n then denied i "the update target is hidden by the view"
        else denied i "the target subtree contains a node hidden by the view"
      else scan (i + 1)
    in
    scan n
  | R_insert { parent; _ } ->
    if is_exposed parent then Ok ()
    else denied parent "the insert parent is hidden by the view"

(* Apply the (validated) edit functionally and report its footprint:
   the replaced pre-update id range [fp_lo, fp_old_hi), the new range
   [fp_lo, fp_new_hi), the parent of the edit ([-1] when the root itself
   was replaced) and the element names involved on either side — the
   invalidation scope. *)
let apply tree r =
  let union_tags a b =
    a @ List.filter (fun t -> not (List.mem t a)) b
  in
  Error.guard (fun () ->
      match r with
      | R_delete n ->
        let old_hi = Tree.subtree_end tree n in
        let par = Option.value (Tree.parent tree n) ~default:(-1) in
        let tags = Tree.subtree_element_names tree n in
        let nt = Tree.delete_subtree tree n in
        ( nt,
          { fp_lo = n; fp_old_hi = old_hi; fp_new_hi = n; fp_parent = par;
            fp_tags = tags } )
      | R_replace (n, src) ->
        let old_hi = Tree.subtree_end tree n in
        let par = Option.value (Tree.parent tree n) ~default:(-1) in
        let tags =
          union_tags
            (Tree.subtree_element_names tree n)
            (Tree.source_element_names src)
        in
        let nt = Tree.replace_subtree tree n src in
        ( nt,
          { fp_lo = n; fp_old_hi = old_hi;
            fp_new_hi = n + Tree.subtree_size nt n; fp_parent = par;
            fp_tags = tags } )
      | R_insert { parent; before; source } ->
        let lo =
          match before with
          | Some b -> b
          | None -> Tree.subtree_end tree parent
        in
        let nt = Tree.insert_subtree tree ~parent ?before source in
        ( nt,
          { fp_lo = lo; fp_old_hi = lo;
            fp_new_hi = lo + Tree.subtree_size nt lo; fp_parent = parent;
            fp_tags = Tree.source_element_names source } ))

(* Member legality, part two (against the candidate new document):
   (a) every inserted node must itself be exposed — a member must not
   write into a region it cannot read back — and (b) the visibility of
   every node {e outside} the edited range must be unchanged (modulo the
   id shift).  (b) is the side-effect guard for conditional annotations:
   an edit inside an exposed region can still flip a [q]-qualifier
   elsewhere and reveal or hide unrelated data, which the view update
   discipline forbids. *)
let postcheck ~view ~old_tree ~new_tree fp =
  let* exposed_old = exposed_set view old_tree in
  let* exposed_new = exposed_set view new_tree in
  let shift = fp.fp_new_hi - fp.fp_old_hi in
  let vis_old n = Hashtbl.mem exposed_old n in
  let vis_new n = Hashtbl.mem exposed_new n in
  let rec inserted i =
    if i >= fp.fp_new_hi then Ok ()
    else if not (vis_new i) then
      denied i "the inserted subtree is not fully visible in the view"
    else inserted (i + 1)
  in
  let rec stable_prefix i =
    if i >= fp.fp_lo then Ok ()
    else if vis_old i <> vis_new i then
      denied i "the update would change the visibility of an unrelated node"
    else stable_prefix (i + 1)
  in
  let rec stable_suffix i =
    if i >= Tree.n_nodes old_tree then Ok ()
    else if vis_old i <> vis_new (i + shift) then
      denied i "the update would change the visibility of an unrelated node"
    else stable_suffix (i + 1)
  in
  let* () = inserted fp.fp_lo in
  let* () = stable_prefix 0 in
  stable_suffix fp.fp_old_hi
