(** The secure update path: typed subtree edits, policy-checked against
    the active security view (Mahfoud & Imine's legality discipline: an
    update is legal iff it only touches nodes the view exposes, and has
    no visibility side effects on the rest of the document).

    This module is pure — it validates, checks and applies edits on
    {!Smoqe_xml.Tree.t} values and never holds engine state.  The engine
    resolves [By_path] targets (a Regular XPath that must select exactly
    one node, evaluated through the member's view), drives
    [validate] → [precheck] → [apply] → [postcheck], DTD-validates the
    candidate and atomically publishes it together with the
    incrementally maintained TAX index and the subtree-scoped plan-cache
    invalidation ({!Smoqe_plan.Plan_cache.invalidate_tags}).  A rejected
    update returns [Error.Update_denied] with the offending node and
    leaves no partial state anywhere. *)

module Tree = Smoqe_xml.Tree
module Error = Smoqe_robust.Error
module Derive = Smoqe_security.Derive

type target =
  | By_id of Tree.node  (** a pre-order node id of the document *)
  | By_path of string
      (** a Regular XPath; must select exactly one node.  Members' paths
          are evaluated through their view, so a path can only ever name
          an exposed node. *)

type op =
  | Insert of { parent : target; before : Tree.node option;
                source : Tree.source }
      (** insert [source] as a child of [parent], before the child with
          id [before], or as the last child when [None] *)
  | Delete of target  (** remove the whole subtree *)
  | Replace of target * Tree.source  (** replace the whole subtree *)

val target_of : op -> target
(** The target the engine must resolve to a node id. *)

(** {1 The staged write pipeline} *)

type resolved =
  | R_insert of { parent : Tree.node; before : Tree.node option;
                  source : Tree.source }
  | R_delete of Tree.node
  | R_replace of Tree.node * Tree.source

val resolve : op -> Tree.node -> resolved
(** Plug the resolved target id into an op. *)

type footprint = {
  fp_lo : int;  (** first edited id (old = new coordinates) *)
  fp_old_hi : int;  (** end of the replaced range, pre-update ids *)
  fp_new_hi : int;  (** end of the new range, post-update ids *)
  fp_parent : int;  (** parent of the edit; [-1]: the root was replaced *)
  fp_tags : string list;
      (** element names removed or inserted — the invalidation scope *)
}
(** What an applied edit touched — everything incremental maintenance
    (TAX splice, scoped plan invalidation) needs to know. *)

val validate : Tree.t -> resolved -> (unit, Error.t) result
(** Structural validation: ids in range, the root not deleted, inserts
    under elements only, [before] a child of [parent].  Failures are
    [Query_error] — the request is malformed regardless of policy. *)

val precheck :
  view:Derive.view -> Tree.t -> resolved -> (unit, Error.t) result
(** Member legality against the pre-update document: the entire removed
    subtree (delete/replace) or the receiving parent (insert) must be
    exposed by the view.  Exposure is materialization provenance — the
    same oracle the rewriting conformance suite trusts.  Failures are
    [Update_denied] carrying the first hidden node in document order. *)

val apply : Tree.t -> resolved -> (Tree.t * footprint, Error.t) result
(** Apply a validated edit functionally (the input tree is untouched)
    and report its footprint. *)

val postcheck :
  view:Derive.view ->
  old_tree:Tree.t ->
  new_tree:Tree.t ->
  footprint ->
  (unit, Error.t) result
(** Member legality against the candidate document: every inserted node
    must be exposed (no writing into regions the member cannot read
    back), and no node outside the edited range may change visibility —
    the side-effect guard for conditional ([q]) annotations.  Failures
    are [Update_denied]; the engine then discards the candidate. *)
