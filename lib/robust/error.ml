type location = {
  file : string option;
  line : int;
  col : int;
}

type t =
  | Parse_error of { loc : location option; msg : string }
  | Query_error of string
  | Policy_error of string
  | Budget_exceeded of {
      what : string;
      limit : string;
      partial_stats : (string * int) list;
    }
  | Update_denied of { node : int; msg : string }
  | Io_error of string
  | Internal of string

let location ?file ~line ~col () = { file; line; col }

let pp_location ppf loc =
  match loc.file with
  | Some f -> Fmt.pf ppf "%s:%d:%d" f loc.line loc.col
  | None -> Fmt.pf ppf "%d:%d" loc.line loc.col

let pp ppf = function
  | Parse_error { loc = Some loc; msg } ->
    Fmt.pf ppf "parse error at %a: %s" pp_location loc msg
  | Parse_error { loc = None; msg } -> Fmt.pf ppf "parse error: %s" msg
  | Query_error msg -> Fmt.pf ppf "query error: %s" msg
  | Policy_error msg -> Fmt.pf ppf "policy error: %s" msg
  | Budget_exceeded { what; limit; _ } ->
    Fmt.pf ppf "budget exceeded: %s (limit %s)" what limit
  | Update_denied { node; msg } ->
    Fmt.pf ppf "update denied: %s (node %d)" msg node
  | Io_error msg -> Fmt.pf ppf "io error: %s" msg
  | Internal msg -> Fmt.pf ppf "internal error: %s" msg

let to_string e = Fmt.str "%a" pp e

let exit_code = function
  | Parse_error _ -> 2
  | Budget_exceeded _ -> 3
  | Update_denied _ -> 4
  | _ -> 1

let classifiers : (exn -> t option) list ref = ref []

let register_classifier f = classifiers := f :: !classifiers

let classify exn =
  let rec try_registered = function
    | [] -> None
    | f :: rest ->
      (match (try f exn with _ -> None) with
      | Some e -> Some e
      | None -> try_registered rest)
  in
  match try_registered !classifiers with
  | Some e -> e
  | None ->
    (match exn with
    | Budget.Exceeded { what; limit } ->
      Budget_exceeded { what; limit; partial_stats = [] }
    | Failpoint.Injected site -> Io_error ("injected fault at " ^ site)
    | Sys_error msg -> Io_error msg
    | End_of_file -> Io_error "unexpected end of file"
    | Stack_overflow -> Internal "stack overflow"
    | Out_of_memory -> Internal "out of memory"
    | Invalid_argument msg -> Internal ("invalid argument: " ^ msg)
    | Failure msg -> Internal msg
    | Not_found -> Internal "not found"
    | Assert_failure (f, l, c) ->
      Internal (Printf.sprintf "assertion failed at %s:%d:%d" f l c)
    | e -> Internal (Printexc.to_string e))

let guard f = match f () with v -> Ok v | exception e -> Error (classify e)
