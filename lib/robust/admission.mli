(** Per-tenant admission control: token-bucket budgets layered on the
    per-query {!Budget}s.

    A {!Budget} bounds what one admitted query may cost; admission
    bounds how many queries a tenant may {e start}.  Each tenant owns a
    bucket of [capacity] tokens, continuously refilled at
    [refill_per_s]; {!admit} consumes one token (or [cost]) and answers
    [false] — throttle, before any engine work — when the bucket is dry.
    Tenants without a configured budget are unlimited but still counted.
    All operations are thread-safe. *)

type t

val create : unit -> t

val set_budget :
  t -> tenant:string -> capacity:int -> ?refill_per_s:float -> unit -> unit
(** Install (or replace) the tenant's bucket, starting full.
    [refill_per_s] defaults to [0.] — a fixed allowance. *)

val clear_budget : t -> tenant:string -> unit
(** Back to unlimited; admission counters survive. *)

val admit : ?cost:float -> t -> tenant:string -> bool
(** Consume [cost] (default [1.]) from the tenant's bucket.  [true] =
    admitted.  Unknown tenants are admitted unconditionally (and start
    being counted). *)

val limit_of : t -> tenant:string -> int option
(** The tenant's configured capacity, if budgeted — what a throttle
    error reports as its limit. *)

val throttled_total : t -> int

val counters : t -> (string * (int * int)) list
(** Per-tenant [(admitted, throttled)], sorted by tenant. *)
