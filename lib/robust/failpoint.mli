(** Fault-injection points (CockroachDB / fail-rs style).

    A failpoint is a named site in the code — [trigger "pull.read"] — that
    normally costs one branch on a global flag and does nothing.  When the
    site is {e armed} (programmatically, or through the [SMOQE_FAILPOINTS]
    environment variable at program start), triggering it raises
    {!Injected}, which the guarded façade maps into the error taxonomy.
    The chaos test-suite runs the full query pipeline with failpoints
    firing at parser reads, store I/O and HyPE step boundaries and asserts
    that every outcome is still a [result].

    Site naming convention: ["subsystem.operation"], e.g. ["pull.read"],
    ["store.read"], ["store.write"], ["index.load"], ["hype.step"].
    The write path registers ["update.apply"] (after an update passes its
    policy and DTD checks, before anything is published) and
    ["update.invalidate"] (immediately before the locked publish +
    cache invalidation step); both sit strictly before the first state
    mutation, so an injected fault is a clean full reject — the chaos
    suite asserts no torn tree/TAX/table state is ever observable.

    {b Thread safety.}  Sites are process-global and may be triggered
    from every domain of the pool executor while another domain
    (re)configures them: the armed flag is an [Atomic] (the disarmed fast
    path stays a single lock-free load) and the site table and counters
    sit behind an internal mutex.  [Every n] counts total triggers across
    all domains — which domain's trigger fires is scheduling-dependent,
    by design: that nondeterminism is what the stress harness uses to
    probe interleavings.  {!with_failpoints} is atomic per operation but
    not as a whole; don't run two overlapping [with_failpoints] scopes
    from different domains. *)

exception Injected of string
(** [Injected site] — the armed failpoint [site] fired. *)

type action =
  | Off  (** disarmed *)
  | Once  (** fire on the first trigger only *)
  | Always  (** fire on every trigger *)
  | Every of int  (** fire on every [n]-th trigger (n >= 1) *)

val trigger : string -> unit
(** The instrumentation hook.  A single [bool ref] load when no failpoint
    anywhere is armed; raises {!Injected} when this site decides to fire. *)

val configure : string -> action -> unit
(** Arm (or with [Off], disarm) one site.  Counters restart. *)

val clear : unit -> unit
(** Disarm every site and drop all counters. *)

val active : unit -> bool
(** Is any site armed? *)

val parse_config : string -> (unit, string) result
(** Parse and apply a spec like ["pull.read=7,store.write=once,hype.step=off"].
    Values: a positive integer [n] (= [Every n]), [once], [always], [off]. *)

val init_from_env : unit -> unit
(** Apply [SMOQE_FAILPOINTS] if set (called automatically at module
    initialization; harmless to call again).  A malformed spec is ignored —
    fault injection must never break a production start-up. *)

val triggers : string -> int
(** How many times the site was evaluated while armed. *)

val hits : string -> int
(** How many times the site actually fired. *)

val with_failpoints : string -> (unit -> 'a) -> 'a
(** [with_failpoints spec f]: apply [spec] (see {!parse_config}), run [f],
    then restore the previous configuration — exception-safe.  For tests. *)
