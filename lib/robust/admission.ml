(* Per-tenant admission control: token buckets layered on top of the
   per-query budgets in {!Budget}.

   A query budget bounds how much one admitted query may cost; admission
   bounds how many queries a tenant may start.  Each tenant owns a
   bucket of [capacity] tokens refilled continuously at [refill_per_s];
   a query consumes one token (or an explicit [cost]) on entry, and a
   tenant whose bucket is dry is refused — throttled — before any
   engine work happens, so a hot tenant burns its own budget, never the
   pool's.  Tenants without a configured budget are unlimited but still
   counted, so fairness experiments can read per-tenant admission
   traffic uniformly.

   Thread-safe: one mutex guards the table — admission is a handful of
   float ops, contention is irrelevant next to query evaluation. *)

type bucket = {
  mutable capacity : float;  (* infinity = unlimited *)
  mutable refill_per_s : float;
  mutable tokens : float;
  mutable last : float;  (* Unix time of the last refill *)
  mutable admitted : int;
  mutable throttled : int;
}

type t = {
  lock : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
  mutable total_throttled : int;
}

let create () =
  { lock = Mutex.create (); buckets = Hashtbl.create 16; total_throttled = 0 }

let bucket t tenant =
  match Hashtbl.find_opt t.buckets tenant with
  | Some b -> b
  | None ->
    let b =
      {
        capacity = infinity;
        refill_per_s = 0.;
        tokens = infinity;
        last = Unix.gettimeofday ();
        admitted = 0;
        throttled = 0;
      }
    in
    Hashtbl.add t.buckets tenant b;
    b

let set_budget t ~tenant ~capacity ?(refill_per_s = 0.) () =
  let capacity = float_of_int (max 0 capacity) in
  Mutex.protect t.lock (fun () ->
      let b = bucket t tenant in
      b.capacity <- capacity;
      b.refill_per_s <- max 0. refill_per_s;
      b.tokens <- capacity;
      b.last <- Unix.gettimeofday ())

let clear_budget t ~tenant =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.buckets tenant with
      | None -> ()
      | Some b ->
        b.capacity <- infinity;
        b.refill_per_s <- 0.;
        b.tokens <- infinity)

let refill b =
  if b.capacity < infinity then begin
    let now = Unix.gettimeofday () in
    let dt = now -. b.last in
    if dt > 0. then begin
      b.tokens <- Float.min b.capacity (b.tokens +. (dt *. b.refill_per_s));
      b.last <- now
    end
  end

let admit ?(cost = 1.) t ~tenant =
  Mutex.protect t.lock (fun () ->
      let b = bucket t tenant in
      refill b;
      if b.tokens >= cost then begin
        if b.capacity < infinity then b.tokens <- b.tokens -. cost;
        b.admitted <- b.admitted + 1;
        true
      end
      else begin
        b.throttled <- b.throttled + 1;
        t.total_throttled <- t.total_throttled + 1;
        false
      end)

let limit_of t ~tenant =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.buckets tenant with
      | Some b when b.capacity < infinity -> Some (int_of_float b.capacity)
      | _ -> None)

let throttled_total t = Mutex.protect t.lock (fun () -> t.total_throttled)

let counters t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun tenant b acc -> (tenant, (b.admitted, b.throttled)) :: acc)
        t.buckets []
      |> List.sort compare)
