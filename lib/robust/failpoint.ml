exception Injected of string

type action =
  | Off
  | Once
  | Always
  | Every of int

type site = {
  mutable action : action;
  mutable triggers : int; (* evaluations while armed *)
  mutable hits : int; (* times the site fired *)
}

(* The fast path is a single [Atomic] load of [armed]: sites pay one
   uncontended read while no failpoint is configured anywhere in the
   process.  Everything behind the gate — the sites table and the
   per-site counters — is guarded by [lock], because the pool executor
   triggers sites from worker domains while tests and the stress harness
   (re)configure them from another; an unguarded Hashtbl resize under
   that load is a crash, not a flake. *)
let armed = Atomic.make false
let lock = Mutex.create ()
let sites : (string, site) Hashtbl.t = Hashtbl.create 8

let locked f = Mutex.protect lock f

(* callers hold [lock] *)
let recompute_armed () =
  Atomic.set armed
    (Hashtbl.fold (fun _ s acc -> acc || s.action <> Off) sites false)

let configure name action =
  locked (fun () ->
      (match Hashtbl.find_opt sites name with
      | Some s ->
        s.action <- action;
        s.triggers <- 0;
        s.hits <- 0
      | None -> Hashtbl.replace sites name { action; triggers = 0; hits = 0 });
      recompute_armed ())

let clear () =
  locked (fun () ->
      Hashtbl.reset sites;
      Atomic.set armed false)

let active () = Atomic.get armed

let fire s =
  s.triggers <- s.triggers + 1;
  match s.action with
  | Off -> false
  | Always ->
    s.hits <- s.hits + 1;
    true
  | Once ->
    if s.hits = 0 then begin
      s.hits <- s.hits + 1;
      true
    end
    else false
  | Every n ->
    if n >= 1 && s.triggers mod n = 0 then begin
      s.hits <- s.hits + 1;
      true
    end
    else false

let trigger name =
  if Atomic.get armed then begin
    (* decide under the lock, raise outside it *)
    let fired =
      locked (fun () ->
          match Hashtbl.find_opt sites name with
          | None -> false
          | Some s -> fire s)
    in
    if fired then raise (Injected name)
  end

let triggers name =
  locked (fun () ->
      match Hashtbl.find_opt sites name with None -> 0 | Some s -> s.triggers)

let hits name =
  locked (fun () ->
      match Hashtbl.find_opt sites name with None -> 0 | Some s -> s.hits)

let action_of_string v =
  match String.lowercase_ascii v with
  | "off" -> Ok Off
  | "once" -> Ok Once
  | "always" -> Ok Always
  | n ->
    (match int_of_string_opt n with
    | Some n when n >= 1 -> Ok (Every n)
    | Some _ | None ->
      Error (Printf.sprintf "bad failpoint action %S (want off|once|always|N)" v))

let parse_config spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  List.fold_left
    (fun acc entry ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        (match String.index_opt entry '=' with
        | None -> Error (Printf.sprintf "bad failpoint entry %S (want name=action)" entry)
        | Some i ->
          let name = String.trim (String.sub entry 0 i) in
          let value =
            String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
          in
          if name = "" then Error (Printf.sprintf "empty failpoint name in %S" entry)
          else
            (match action_of_string value with
            | Ok action ->
              configure name action;
              Ok ()
            | Error _ as e -> e)))
    (Ok ()) entries

let init_from_env () =
  match Sys.getenv_opt "SMOQE_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> ignore (parse_config spec)

let with_failpoints spec f =
  let saved =
    locked (fun () ->
        Hashtbl.fold (fun name s acc -> (name, s.action) :: acc) sites [])
  in
  clear ();
  (match parse_config spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("with_failpoints: " ^ msg));
  let restore () =
    clear ();
    List.iter (fun (name, action) -> configure name action) saved
  in
  match f () with
  | v ->
    restore ();
    v
  | exception e ->
    restore ();
    raise e

(* Arm from the environment as soon as the library is linked in. *)
let () = init_from_env ()
