(** The unified error taxonomy of the SMOQE façade.

    Seven unrelated exception types used to leak through the
    [result]-returning [Engine]/[Session] API ([Pull.Error],
    [Rxpath.Parser] failures, [Derive.Unsupported],
    [Expr_rewriter.Too_large], [Hype.Engine.Driver_error], [Sys_error],
    …).  This module gives them one home: every error a query can produce
    is a value of {!t}, and {!guard} is the boundary combinator that turns
    any escaped exception into one.

    Layering: this module knows nothing about the rest of SMOQE.  Upper
    layers teach it their exceptions with {!register_classifier}; the
    built-in fallback covers the standard library, {!Budget.Exceeded} and
    {!Failpoint.Injected}. *)

type location = {
  file : string option;
  line : int;  (** 1-based; 0 when unknown *)
  col : int;
}

type t =
  | Parse_error of { loc : location option; msg : string }
      (** malformed XML / DTD / policy text *)
  | Query_error of string  (** the query itself is unusable *)
  | Policy_error of string  (** policy, view or group problems *)
  | Budget_exceeded of {
      what : string;  (** which budget dimension, e.g. ["max_nodes"] *)
      limit : string;  (** the configured bound, rendered *)
      partial_stats : (string * int) list;
          (** evaluation counters at the moment the budget tripped *)
    }
  | Update_denied of { node : int; msg : string }
      (** the active security view forbids the update; [node] is the
          offending document node (the first view-hidden node the edit
          would touch, or the first node whose visibility it would flip).
          The document is untouched — updates never leave partial state. *)
  | Io_error of string  (** file system, store or injected I/O faults *)
  | Internal of string  (** driver contract violations, overflows, bugs *)

val location : ?file:string -> line:int -> col:int -> unit -> location

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** Process exit code for CLI front-ends: 2 for [Parse_error] (malformed
    input — the document, DTD or policy text, not the system, is at
    fault), 3 for [Budget_exceeded], 4 for [Update_denied] (the security
    view rejected a write), 1 for everything else (0 is success and never
    returned here). *)

val register_classifier : (exn -> t option) -> unit
(** Add a classifier consulted (most recent first) by {!classify} before
    the built-in fallback.  Idempotent registration is the caller's
    business; SMOQE's core registers its library exceptions once at
    initialization. *)

val classify : exn -> t
(** Map any exception to the taxonomy.  Never raises. *)

val guard : (unit -> 'a) -> ('a, t) result
(** [guard f] runs [f] and converts {e any} exception into [Error] via
    {!classify} — the combinator that makes the façade total. *)
