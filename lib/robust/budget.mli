(** Resource budgets for the parse → compile → evaluate pipeline.

    SMOQE serves Regular XPath from arbitrary group members over possibly
    adversarial documents; a budget bounds what one query may consume.  A
    [Budget.t] is threaded (as an option — [None] costs nothing) into the
    pull parser, the MFA compiler and both HyPE drivers, which check it at
    their unit of work:

    - {b wall clock} ([timeout_ms]) — checked every 256 work units, so an
      overrunning query stops within a small multiple of the deadline;
    - {b nodes scanned} ([max_nodes]) — every node/event entering the
      pipeline, parser and evaluator alike;
    - {b Cans entries} ([max_cans]) — candidate answers held by HyPE;
    - {b automaton states} ([max_states]) — the compiled/rewritten MFA;
    - {b parse depth} ([max_depth]) — open elements in the pull parser.

    Checks raise {!Exceeded}; the guarded façade converts that into
    [Error.Budget_exceeded] carrying the partial evaluation statistics.

    {b Domain locality.}  A [Budget.t] is mutable per-query state (a node
    counter settled in batches) with {e no} internal synchronization.
    The contract under the pool executor: one budget, one query, one
    domain — create the budget inside the submitted task (or pass a
    maker, as [Engine.submit] does) and never share one [t] between
    concurrently running queries.  Audited call sites all comply: the
    CLI's [--repeat] builds a fresh budget per run, and each pool task
    creates its own at start so the wall-clock deadline also starts when
    the query is picked up, not when it was enqueued. *)

type t

exception Exceeded of { what : string; limit : string }
(** [what] names the exhausted budget (["timeout_ms"], ["max_nodes"],
    ["max_cans"], ["max_states"], ["max_depth"]); [limit] renders the
    configured bound. *)

val create :
  ?timeout_ms:int ->
  ?max_nodes:int ->
  ?max_cans:int ->
  ?max_states:int ->
  ?max_depth:int ->
  unit ->
  t
(** Omitted dimensions are unlimited.  The wall-clock deadline is armed at
    creation time: create the budget when the query arrives. *)

val tick_node : t -> unit
(** Count one node/event of work; checks [max_nodes] always and the
    deadline every 256 ticks. *)

val tick_nodes : t -> int -> unit
(** [tick_nodes t k] counts [k] units at once.  The evaluators batch their
    ticks (counting locally, settling every 32 nodes and once at the end)
    so the per-node cost stays under the 2% overhead guard; [max_nodes]
    may consequently overshoot by at most one batch before firing. *)

val check_deadline : t -> unit
val check_depth : t -> int -> unit
val check_cans : t -> int -> unit
val check_states : t -> int -> unit

val nodes_scanned : t -> int
(** Work consumed so far (parser events plus evaluator node entries). *)

val describe : t -> string
(** Human-readable summary of the configured limits. *)
