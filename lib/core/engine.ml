module Tree = Smoqe_xml.Tree
module Parser = Smoqe_xml.Parser
module Pull = Smoqe_xml.Pull
module Serializer = Smoqe_xml.Serializer
module Dtd = Smoqe_xml.Dtd
module Dtd_parser = Smoqe_xml.Dtd_parser
module Validator = Smoqe_xml.Validator
module Rx_parser = Smoqe_rxpath.Parser
module Compile = Smoqe_automata.Compile
module Mfa = Smoqe_automata.Mfa
module Tables = Smoqe_automata.Tables
module Policy = Smoqe_security.Policy
module Derive = Smoqe_security.Derive
module Tenant_registry = Smoqe_security.Tenant_registry
module Admission = Smoqe_robust.Admission
module Rewriter = Smoqe_rewrite.Rewriter
module Eval_dom = Smoqe_hype.Eval_dom
module Eval_stax = Smoqe_hype.Eval_stax
module Stats = Smoqe_hype.Stats
module Tax = Smoqe_tax.Tax
module Codec = Smoqe_tax.Codec
module Error = Smoqe_robust.Error
module Budget = Smoqe_robust.Budget
module Failpoint = Smoqe_robust.Failpoint
module Plan_cache = Smoqe_plan.Plan_cache
module Canon = Smoqe_plan.Canon
module Pool = Smoqe_exec.Pool
module Shared = Smoqe_automata.Shared
module Ast = Smoqe_rxpath.Ast
module Update = Smoqe_update.Update

(* Teach the taxonomy this stack's exception types: the guard at the
   façade maps anything the libraries throw into one Error.t.  Runs once,
   when this module is initialized. *)
let () =
  Error.register_classifier (function
    | Pull.Error (line, col, msg) ->
      Some (Error.Parse_error { loc = Some (Error.location ~line ~col ()); msg })
    | Dtd_parser.Error (off, msg) ->
      Some
        (Error.Parse_error
           { loc = None; msg = Printf.sprintf "DTD offset %d: %s" off msg })
    | Derive.Unsupported msg -> Some (Error.Policy_error msg)
    | Smoqe_rewrite.Expr_rewriter.Too_large n ->
      Some
        (Error.Query_error
           (Printf.sprintf "expression rewriting exceeded the size budget \
                            (reached %.2g)" n))
    | Smoqe_hype.Engine.Driver_error msg ->
      Some (Error.Internal ("evaluation driver: " ^ msg))
    | _ -> None)

type mode =
  | Dom
  | Stax

type source =
  | From_string of string
  | From_file of string
  | From_tree

(* A cached plan: the compiled (possibly rewritten) automaton plus the
   compile-time facts a later hit needs — the state count for budget
   re-checks without an Mfa traversal, the schema-emptiness verdict so
   hits skip the satisfiability analysis, and the compile cost the hit
   avoided paying again. *)
type plan = {
  plan_mfa : Mfa.t;
  plan_states : int;
  plan_empty : bool;  (* the DTD proves the query selects nothing *)
  plan_shared : Shared.t option;
      (* present on a batch plan: the prefix-sharing merge whose combined
         automaton [plan_mfa] is (so the frozen-table machinery below
         applies to batches unchanged) *)
  plan_compile_ms : float;
  plan_tables : (Tree.t * Tables.t) option Atomic.t;
      (* The frozen table specialization riding the plan, tagged with the
         tree it was built for.  Tag lineage is the validity key
         ([Tables.built_for]): an incremental update that splices the
         tree without interning any new tag preserves the interning token,
         and the table — pure tag-id arithmetic — stays valid; a swap to
         an unrelated tree (or a splice that grew the tag table) changes
         the token and forces respecialization.  Atomic: plans are shared
         across pool domains; last-writer-wins is benign (both writers
         hold tables valid for their own snapshot). *)
}

(* Concurrency model (DESIGN.md §9).  One engine serves queries from many
   sessions, and with the pool executor those run on distinct domains in
   true parallel.  The split:

   - [dtd] is immutable; [Tree.t] and [Tax.t] values are deeply immutable
     once built — readers never lock *while evaluating* on them.
   - Everything [mutable] below, plus the [views]/[group_order] pair, is
     guarded by [lock].  A query takes the lock only long enough to read
     a consistent {tree, source, tax, view} snapshot; compile and
     evaluation run outside it, on the snapshot.
   - [plan_cache] has its own internal mutex.  Lock order is
     engine [lock] → cache lock (invalidation under [lock] probes the
     cache); the cache never calls back into the engine, so the order
     cannot invert. *)
type t = {
  lock : Mutex.t;
  mutable tree : Tree.t;
  mutable source : source;
  dtd : Dtd.t option;
  views : (string, Derive.view) Hashtbl.t;
  mutable group_order : string list;
  mutable tax : Tax.t option;
  plan_cache : plan Plan_cache.t;
  mutable saved_compile_ms : float;
  tenants : Tenant_registry.t;
  admission : Admission.t;
}

(* What one query evaluates against: an immutable view of the engine's
   serving state, taken atomically at query start.  [replace_document] or
   [build_index] landing mid-query cannot tear it — the query answers
   entirely against the tree/index pair it started with. *)
type snapshot = {
  snap_tree : Tree.t;
  snap_source : source;
  snap_tax : Tax.t option;
}

type outcome = {
  answers : int list;
  answer_xml : string list;
  stats : Stats.t;
  mfa : Mfa.t;
  cans_size : int;
}

let log_src = Logs.Src.create "smoqe.engine" ~doc:"SMOQE engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let make ?dtd tree source =
  {
    lock = Mutex.create ();
    tree;
    source;
    dtd;
    views = Hashtbl.create 4;
    group_order = [];
    tax = None;
    plan_cache = Plan_cache.create ();
    saved_compile_ms = 0.;
    tenants = Tenant_registry.create ();
    admission = Admission.create ();
  }

let locked t f = Mutex.protect t.lock f

let snapshot t =
  locked t (fun () ->
      { snap_tree = t.tree; snap_source = t.source; snap_tax = t.tax })

let validate_against dtd tree =
  match Validator.validate dtd tree with
  | Ok () -> Ok ()
  | Error (err :: _) ->
    Error (Fmt.str "document invalid: %a" Validator.pp_error err)
  | Error [] -> Ok ()

let of_tree ?dtd tree = make ?dtd tree From_tree

let with_dtd ?dtd tree source =
  match dtd with
  | None -> Ok (make tree source)
  | Some d ->
    (match validate_against d tree with
    | Ok () -> Ok (make ~dtd:d tree source)
    | Error msg -> Error msg)

let of_string ?dtd input =
  match Parser.tree_of_string_res input with
  | Error msg -> Error ("parse error at " ^ msg)
  | Ok tree -> with_dtd ?dtd tree (From_string input)

let of_file ?dtd path =
  match Parser.tree_of_file_res path with
  | Error msg -> Error msg
  | Ok tree -> with_dtd ?dtd tree (From_file path)

(* Typed-error constructors: malformed input — a syntax error or a
   document that does not conform to the given DTD — comes back as
   [Error.Parse_error] (CLI exit code 2), budget trips as
   [Budget_exceeded] (exit 3), the same taxonomy the query path already
   speaks. *)
let of_string_robust ?budget ?dtd input =
  match Error.guard (fun () -> Parser.tree_of_string ?budget input) with
  | Error e -> Error e
  | Ok tree ->
    (match with_dtd ?dtd tree (From_string input) with
    | Ok t -> Ok t
    | Error msg -> Error (Error.Parse_error { loc = None; msg }))

let of_file_robust ?budget ?dtd path =
  match Error.guard (fun () -> Parser.tree_of_file ?budget path) with
  | Error (Error.Parse_error { loc = Some l; msg }) when l.Error.file = None ->
    Error
      (Error.Parse_error { loc = Some { l with Error.file = Some path }; msg })
  | Error e -> Error e
  | Ok tree ->
    (match with_dtd ?dtd tree (From_file path) with
    | Ok t -> Ok t
    | Error msg -> Error (Error.Parse_error { loc = None; msg }))

let document t = locked t (fun () -> t.tree)
let dtd t = t.dtd

let register_policy t ~group policy =
  match t.dtd with
  | None -> Error "engine has no DTD: policies need a schema"
  | Some d ->
    if not (Dtd.equal d (Policy.dtd policy)) then
      Error "policy is defined over a different DTD"
    else begin
      (* Derivation is pure and can be slow: run it outside the lock. *)
      match Derive.derive policy with
      | exception Derive.Unsupported msg -> Error msg
      | view ->
        locked t (fun () ->
            if not (Hashtbl.mem t.views group) then
              t.group_order <- t.group_order @ [ group ];
            Hashtbl.replace t.views group view;
            (* Plans rewritten through the group's previous view are now
               answering with the wrong sigma: age them out.  Done while
               still holding the lock so no query can pair the new view
               with a plan minted under the old one; a compile already in
               flight against the old view is fenced separately, by the
               generation token it captured (see [plan_for_query]). *)
            Plan_cache.invalidate_group t.plan_cache group);
        Log.info (fun m -> m "registered view for group %s" group);
        Ok ()
    end

(* --- multi-tenant serving -------------------------------------------------- *)

(* A tenant's shared view lives in [views] under a policy-key pseudo
   group.  The "pk:" namespace cannot collide with user groups coming
   through the CLI or the registries above: policy keys are hex digests,
   and the existing group paths never synthesize the prefix. *)
let pk_group key = "pk:" ^ key

(* Register (or churn) a tenant.  The registry derives the view at most
   once per canonical policy key — tenants whose annotations agree after
   normalization share the derivation, the rewrite and (via the cache's
   policy-key dimension) every compiled plan.  On churn, a key whose
   last tenant moved away is retired: its shared view is dropped and the
   plans cached under it are generationally invalidated. *)
let register_tenant t ~tenant policy =
  match t.dtd with
  | None -> Error "engine has no DTD: policies need a schema"
  | Some d ->
    if not (Dtd.equal d (Policy.dtd policy)) then
      Error "policy is defined over a different DTD"
    else begin
      (* Derivation happens inside the registry (once per distinct key),
         outside the engine lock. *)
      match Tenant_registry.register t.tenants ~tenant policy with
      | exception Derive.Unsupported msg -> Error msg
      | reg ->
        locked t (fun () ->
            Hashtbl.replace t.views (pk_group reg.Tenant_registry.reg_key)
              reg.Tenant_registry.reg_view;
            match reg.Tenant_registry.reg_retired with
            | None -> ()
            | Some old ->
              Hashtbl.remove t.views (pk_group old);
              Plan_cache.invalidate_policy_key t.plan_cache old);
        Log.info (fun m ->
            m "tenant %s -> policy key %s%s" tenant
              reg.Tenant_registry.reg_key
              (if reg.Tenant_registry.reg_shared then " (shared)" else ""));
        Ok reg
    end

let remove_tenant t ~tenant =
  match Tenant_registry.remove t.tenants ~tenant with
  | None -> ()
  | Some retired ->
    locked t (fun () ->
        Hashtbl.remove t.views (pk_group retired);
        Plan_cache.invalidate_policy_key t.plan_cache retired)

let tenant_key t ~tenant = Tenant_registry.key_of t.tenants ~tenant
let tenant_names t = Tenant_registry.tenants t.tenants
let tenant_counters t = Tenant_registry.counters t.tenants

let set_tenant_budget t ~tenant ~capacity ?refill_per_s () =
  Admission.set_budget t.admission ~tenant ~capacity ?refill_per_s ()

let admission_counters t = Admission.counters t.admission

(* The throttle error: typed as a budget trip (CLI exit code 3 — the
   resource-exhaustion taxonomy the budget path already speaks), with
   [tenant_throttled] marked in the partial stats. *)
let throttle_error t tenant =
  let stats = Stats.zero () in
  stats.Stats.tenant_throttled <- 1;
  Error.Budget_exceeded
    {
      what = Printf.sprintf "tenant %s admission tokens" tenant;
      limit =
        (match Admission.limit_of t.admission ~tenant with
        | Some n -> string_of_int n
        | None -> "0");
      partial_stats = Stats.to_assoc stats;
    }

(* Resolve [?tenant] into the effective (group, policy key) pair a query
   runs under, charging admission on the way: [cost] tokens (one per
   member query) are consumed before any engine work happens, so a
   throttled tenant never reaches compile or evaluation. *)
let tenant_route t ?group ?tenant ~cost () =
  match tenant with
  | None -> Ok (group, None)
  | Some name ->
    (match Tenant_registry.lookup t.tenants ~tenant:name with
    | None ->
      Error (Error.Policy_error (Printf.sprintf "unknown tenant %s" name))
    | Some (key, _view) ->
      if Admission.admit ~cost t.admission ~tenant:name then
        Ok (Some (pk_group key), Some key)
      else Error (throttle_error t name))

(* Swap the served document under the standing DTD, views and sessions —
   the serving story: policies persist, data rolls over.  The new tree
   must satisfy the same DTD (views are derived from it). *)
let replace_document t tree =
  let checked =
    match t.dtd with None -> Ok () | Some d -> validate_against d tree
  in
  match checked with
  | Error msg -> Error msg
  | Ok () ->
    locked t (fun () ->
        t.tree <- tree;
        t.source <- From_tree;
        (* the index describes the old tree *)
        t.tax <- None;
        Plan_cache.invalidate_all t.plan_cache);
    Log.info (fun m -> m "document replaced (%d nodes)" (Tree.n_nodes tree));
    Ok ()

let groups t = locked t (fun () -> t.group_order)
let view t ~group = locked t (fun () -> Hashtbl.find_opt t.views group)
let view_dtd t ~group = Option.map Derive.view_dtd (view t ~group)

let build_index t =
  (* Build outside the lock (it is O(document)); publish only if the
     document has not been swapped underneath the build. *)
  let tree = locked t (fun () -> t.tree) in
  let idx = Tax.build tree in
  locked t (fun () -> if t.tree == tree then t.tax <- Some idx)

let index t = locked t (fun () -> t.tax)

let save_index t path =
  match index t with
  | None -> Error "no index built"
  | Some idx ->
    (match Codec.save path idx with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
    | exception Failpoint.Injected site -> Error ("injected fault at " ^ site))

let load_index t path =
  let loaded =
    match
      Error.guard (fun () ->
          Failpoint.trigger "index.load";
          Codec.load path)
    with
    | Ok r -> r
    | Error e -> Error (Error.to_string e)
  in
  match loaded with
  | Error msg -> Error msg
  | Ok idx ->
    locked t (fun () ->
        if Tax.n_nodes idx <> Tree.n_nodes t.tree then
          Error "index does not match the document"
        else begin
          t.tax <- Some idx;
          Ok ()
        end)

(* --- query compilation ---------------------------------------------------- *)

let compile_ast_robust t ?group ?(optimize = true) ?budget path =
  Result.join
    (Error.guard (fun () ->
         Failpoint.trigger "plan.compile";
         let raw =
           match group with
           | None -> Ok (Compile.compile ?budget path)
           | Some g ->
             (match view t ~group:g with
             | None ->
               Error (Error.Policy_error (Printf.sprintf "unknown group %s" g))
             | Some v -> Ok (Rewriter.rewrite v path))
         in
         Result.map
           (fun mfa ->
             let mfa =
               if optimize then Smoqe_automata.Optimize.optimize mfa else mfa
             in
             (* A rewritten view query can be much larger than the text
                the user typed: re-check the state budget on the final
                automaton. *)
             (match budget with
             | None -> ()
             | Some b -> Budget.check_states b (Mfa.n_states mfa));
             mfa)
           raw))

let compile_query_robust t ?group ?optimize ?budget text =
  match Rx_parser.path_of_string text with
  | Error msg -> Error (Error.Query_error msg)
  | Ok path -> compile_ast_robust t ?group ?optimize ?budget path

let compile_query t ?group ?optimize text =
  Result.map_error Error.to_string
    (compile_query_robust t ?group ?optimize text)

(* --- the plan cache ------------------------------------------------------- *)

let statically_empty t mfa =
  match t.dtd with
  | None -> false
  | Some d ->
    Smoqe_automata.Analysis.satisfiable mfa d = Smoqe_automata.Analysis.Empty

let mode_string = function Dom -> "dom" | Stax -> "stax"

(* The tag scope of a compiled plan: the element names the {e query
   text} mentions.  It is the plan's {e invalidation} scope — a
   compiled plan depends only on the view and the DTD, never on the
   document, so dropping (or keeping) it on an update is purely a
   freshness policy; subtree-scoped invalidation keeps every warm plan
   whose named tags an update never touched, which is what preserves
   the hit rate under mixed read/update serving (bench e16).  The scope
   deliberately comes from the query AST rather than the compiled
   automaton: security-view rewriting expands wildcard and descendant
   steps into explicit per-type transitions over the view DTD, which
   would smear every member plan's scope across the whole alphabet and
   turn scoped invalidation into a generation bump.  Wildcards and
   [text()] are navigation, not a dependence on any particular tag; a
   query naming no tag at all gets [All_tags] conservatively. *)
let plan_scope paths =
  let names = Hashtbl.create 8 in
  let rec path_tags = function
    | Ast.Self | Ast.Wildcard | Ast.Text -> ()
    | Ast.Tag s -> Hashtbl.replace names s ()
    | Ast.Seq (p, q) | Ast.Union (p, q) -> path_tags p; path_tags q
    | Ast.Star p -> path_tags p
    | Ast.Filter (p, q) -> path_tags p; qual_tags q
  and qual_tags = function
    | Ast.True -> ()
    | Ast.Exists p | Ast.Value_eq (p, _) -> path_tags p
    | Ast.Not q -> qual_tags q
    | Ast.And (a, b) | Ast.Or (a, b) -> qual_tags a; qual_tags b
  in
  List.iter path_tags paths;
  match Hashtbl.fold (fun n () acc -> n :: acc) names [] with
  | [] -> Plan_cache.All_tags
  | names -> Plan_cache.Tags names

let set_plan_cache_capacity t n = Plan_cache.set_capacity t.plan_cache n
let plan_cache_capacity t = Plan_cache.capacity t.plan_cache

let plan_cache_counters t =
  Plan_cache.to_assoc t.plan_cache
  @ [ ("saved_compile_ms",
       int_of_float (locked t (fun () -> t.saved_compile_ms))) ]

(* Serve the compiled plan for a query, consulting the cache.  Returns the
   MFA and whether it was a hit.  The raw text probes the cache first —
   canonical traffic (the common case for machine-issued repeats) hits
   without even being tokenized; otherwise we parse, canonicalize and
   probe once more before conceding the miss and compiling.  A plan is
   inserted only after a fully successful compile: a budget trip or an
   injected ["plan.compile"] fault leaves the cache untouched.  Explicit
   [~optimize:false] bypasses the cache (cached plans are optimized). *)
let plan_for_query t ?group ?policy_key ~mode ~use_index ?optimize ?budget
    text =
  let cache = t.plan_cache in
  let key query =
    (* Under a policy key the key's group component is dropped: every
       tenant sharing the key shares one entry per query, which is the
       point — the policy key, not the tenant, is the cache dimension. *)
    { Plan_cache.group = (if policy_key = None then group else None);
      policy_key; query; mode = mode_string mode;
      use_index = use_index = Some true }
  in
  let hit plan =
    (* The budget still applies to a plan someone else paid to compile. *)
    match
      Error.guard (fun () ->
          match budget with
          | None -> ()
          | Some b -> Budget.check_states b plan.plan_states)
    with
    | Error e -> Error e
    | Ok () ->
      locked t (fun () ->
          t.saved_compile_ms <- t.saved_compile_ms +. plan.plan_compile_ms);
      Ok (plan, true)
  in
  let plan_of mfa compile_ms =
    {
      plan_mfa = mfa;
      plan_states = Mfa.n_states mfa;
      plan_empty = statically_empty t mfa;
      plan_shared = None;
      plan_compile_ms = compile_ms;
      plan_tables = Atomic.make None;
    }
  in
  if optimize = Some false || Plan_cache.capacity cache = 0 then
    Result.map
      (fun mfa -> (plan_of mfa 0., false))
      (compile_query_robust t ?group ?optimize ?budget text)
  else
    match Plan_cache.find cache (key text) with
    | Some plan -> hit plan
    | None ->
      (match Rx_parser.path_of_string text with
      | Error msg -> Error (Error.Query_error msg)
      | Ok path ->
        let canonical = Canon.to_key path in
        (match
           if canonical = text then None
           else Plan_cache.find cache (key canonical)
         with
        | Some plan -> hit plan
        | None ->
          Plan_cache.record_miss cache;
          (* The compile below runs outside the engine lock, so a
             concurrent [register_policy]/[replace_document] can
             invalidate this key mid-flight.  Capture the generation
             {e before} the compile reads the view: if it moves, the
             conditional [add ~gen] refuses the insert and the plan
             minted under the old view is served once, never cached. *)
          let gen = Plan_cache.generation cache (key canonical) in
          let t0 = Sys.time () in
          (match compile_ast_robust t ?group ?optimize ?budget path with
          | Error e -> Error e
          | Ok mfa ->
            let plan = plan_of mfa ((Sys.time () -. t0) *. 1000.) in
            Plan_cache.add cache ~gen ~scope:(plan_scope [ path ])
              (key canonical) plan;
            Ok (plan, false))))

let rewrite_only t ~group ?optimize text =
  compile_query t ~group ?optimize text

let answer_xml_one snap n =
  let tree = snap.snap_tree in
  if Tree.is_text tree n then begin
    let backing, off, len = Tree.content_slice tree n in
    let buf = Buffer.create (len + 8) in
    Serializer.add_escaped_text buf backing off len;
    Buffer.contents buf
  end
  else Serializer.subtree_to_string ~indent:false tree n

let answer_xml snap answers = List.map (answer_xml_one snap) answers

(* --- evaluation ------------------------------------------------------------ *)

let budget_error (what, limit) stats =
  Error.Budget_exceeded
    { what; limit; partial_stats = Stats.to_assoc stats }

(* DOM evaluation on a snapshot; [degraded_from_stax] marks a retry after
   a StAX driver failure.  Requesting the index without one loaded is
   served unindexed and recorded as a degradation rather than failed. *)
let run_dom snap ~plan ?use_index ?budget ?trace ~use_tables
    ~degraded_from_stax () =
  let mfa = plan.plan_mfa in
  let index_requested = use_index = Some true in
  let tax =
    match use_index, snap.snap_tax with
    | Some false, _ | _, None -> None
    | (Some true | None), Some idx -> Some idx
  in
  (* Warm queries reuse the frozen table riding the plan; a cold query (or
     one whose snapshot tree left the cached pair's tag lineage — a
     replace_document raced the plan fetch, or an update interned new
     tags) specializes and publishes.  The publish is a plain Atomic.set:
     both sides of any race hold tables valid for their own snapshot, and
     Eval_dom re-validates with [Tables.built_for] anyway. *)
  let tables, spec_us =
    if not use_tables then (None, 0)
    else
      match Atomic.get plan.plan_tables with
      | Some (_, tb) when Tables.built_for tb snap.snap_tree -> (Some tb, 0)
      | Some _ | None ->
        let tb = Tables.of_tree mfa.Mfa.nfa snap.snap_tree in
        Atomic.set plan.plan_tables (Some (snap.snap_tree, tb));
        (Some tb, Tables.spec_us tb)
  in
  let r =
    Eval_dom.run ?tax ?budget ?trace ?tables ~use_tables mfa snap.snap_tree
  in
  (* Eval_dom charges specialization time only for tables it built itself;
     a table built here (to be published on the plan) is charged here. *)
  if spec_us > 0 then begin
    r.Eval_dom.stats.Stats.table_spec_us <-
      r.Eval_dom.stats.Stats.table_spec_us + spec_us;
    let delta = Stats.zero () in
    delta.Stats.table_spec_us <- spec_us;
    Stats.note_tables delta
  end;
  match r.Eval_dom.budget_hit with
  | Some hit -> Error (budget_error hit r.Eval_dom.stats)
  | None ->
    let stats = r.Eval_dom.stats in
    if degraded_from_stax then begin
      stats.Stats.degraded_stax_retry <- 1;
      (* the failed StAX scan consumed a pass over the data too *)
      stats.Stats.passes_over_data <- stats.Stats.passes_over_data + 1
    end;
    if index_requested && tax = None then begin
      stats.Stats.degraded_no_index <- 1;
      Log.warn (fun m -> m "index requested but unavailable: unindexed pass")
    end;
    Ok
      {
        answers = r.Eval_dom.answers;
        answer_xml = answer_xml snap r.Eval_dom.answers;
        stats;
        mfa;
        cans_size = r.Eval_dom.cans_size;
      }

let run_stax snap ~mfa ?budget ?trace ~use_tables () =
  let outcome_of r =
    match r.Eval_stax.budget_hit with
    | Some hit -> Error (budget_error hit r.Eval_stax.stats)
    | None ->
      Ok
        {
          answers = r.Eval_stax.answers;
          answer_xml = List.map snd r.Eval_stax.captured;
          stats = r.Eval_stax.stats;
          mfa;
          cans_size = r.Eval_stax.cans_size;
        }
  in
  match snap.snap_source with
  | From_string s ->
    outcome_of
      (Eval_stax.run ~capture:true ?budget ?trace ~use_tables mfa
         (Pull.of_string s))
  | From_file path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        outcome_of
          (Eval_stax.run ~capture:true ?budget ?trace ~use_tables mfa
             (Pull.of_channel ic)))
  | From_tree ->
    outcome_of
      (Eval_stax.run_events ~capture:true ?budget ?trace ~use_tables mfa
         (Parser.events_of_tree snap.snap_tree))

let run_compiled snap ~plan ~mode ?use_index ?budget ?trace ~use_tables () =
  let mfa = plan.plan_mfa in
  if plan.plan_empty then begin
    (* The schema proves the query selects nothing: skip the document. *)
    Log.info (fun m -> m "query statically empty against the schema");
    let stats = Stats.create () in
    stats.Stats.passes_over_data <- 0;
    Ok { answers = []; answer_xml = []; stats; mfa; cans_size = 0 }
  end
  else
    (match mode with
    | Dom ->
      Result.join
        (Error.guard (fun () ->
             run_dom snap ~plan ?use_index ?budget ?trace ~use_tables
               ~degraded_from_stax:false ()))
    | Stax ->
      (match
         Result.join
           (Error.guard (fun () ->
                run_stax snap ~mfa ?budget ?trace ~use_tables ()))
       with
      | Ok outcome -> Ok outcome
      | Error ((Error.Budget_exceeded _ | Error.Query_error _
               | Error.Policy_error _) as e) ->
        Error e
      | Error stax_failure ->
        (* Degradation ladder: a StAX driver failure (I/O fault, parse
           error on the stored source, contract violation) is retried once
           in DOM mode on the already-loaded tree. *)
        Log.warn (fun m ->
            m "StAX evaluation failed (%s): retrying in DOM mode"
              (Error.to_string stax_failure));
        Result.join
          (Error.guard (fun () ->
               run_dom snap ~plan ?use_index ?budget ?trace ~use_tables
                 ~degraded_from_stax:true ()))))

let query_robust t ?group ?tenant ?(mode = Dom) ?use_index ?optimize ?budget
    ?trace ?use_tables text =
  let use_tables =
    match use_tables with Some b -> b | None -> Tables.enabled_default ()
  in
  match tenant_route t ?group ?tenant ~cost:1. () with
  | Error e -> Error e
  | Ok (group, policy_key) ->
    (match
       plan_for_query t ?group ?policy_key ~mode ~use_index ?optimize ?budget
         text
     with
    | Error e -> Error e
    | Ok (plan, cached) ->
      (* One atomic read of the serving state; the evaluation below never
         looks at the live engine again, so a concurrent replace_document
         or index (re)build cannot tear this query. *)
      let snap = snapshot t in
      let outcome =
        run_compiled snap ~plan ~mode ?use_index ?budget ?trace ~use_tables ()
      in
      if cached then
        Result.iter
          (fun o ->
            o.stats.Stats.plan_cache_hit <- 1;
            (* A warm tenant hit is a cross-tenant artifact reuse: the
               plan lives under the canonical policy key, so whichever
               tenant compiled it paid for everyone sharing the key. *)
            if policy_key <> None then o.stats.Stats.policy_key_hits <- 1)
          outcome;
      outcome)

let query t ?group ?tenant ?mode ?use_index ?optimize ?budget ?trace
    ?use_tables text =
  Result.map_error Error.to_string
    (query_robust t ?group ?tenant ?mode ?use_index ?optimize ?budget ?trace
       ?use_tables text)

(* --- the secure update path ------------------------------------------------ *)

type update_report = {
  up_target : int;
  up_nodes_before : int;
  up_nodes_after : int;
  up_plans_dropped : int;
  up_index_maintained : bool;
}

(* Resolve an update target to one node id of the snapshot's document.
   [By_id] is taken as given (member legality is still checked against
   it); [By_path] is a Regular XPath evaluated through the caller's view
   that must select exactly one node — a member's path runs rewritten,
   so it can only ever name nodes the view exposes.  Evaluation runs on
   the caller's snapshot: the ids it yields are coordinates of exactly
   the tree the staged pipeline edits. *)
let resolve_target t ?group ?policy_key snap = function
  | Update.By_id n -> Ok n
  | Update.By_path text ->
    (match plan_for_query t ?group ?policy_key ~mode:Dom ~use_index:None text
     with
    | Error e -> Error e
    | Ok (plan, _) ->
      (match
         run_compiled snap ~plan ~mode:Dom
           ~use_tables:(Tables.enabled_default ()) ()
       with
      | Error e -> Error e
      | Ok { answers = [ n ]; _ } -> Ok n
      | Ok { answers; _ } ->
        Error
          (Error.Query_error
             (Printf.sprintf
                "update target must select exactly one node, got %d"
                (List.length answers)))))

(* One secure update, atomically: resolve, validate, policy-precheck,
   apply functionally, DTD-validate the candidate, policy-postcheck, and
   only then publish — the new tree, the incrementally spliced TAX index
   and the tag-scoped plan-cache invalidation land under one lock hold.
   Everything before the publish works on immutable values derived from
   one snapshot, so {e any} failure on the way (including the
   ["update.apply"]/["update.invalidate"] failpoints) is a clean full
   reject: the engine still serves exactly the state it served before.
   If the document moved underneath (a concurrent update or
   [replace_document] won the race), the whole staged pipeline is redone
   from a fresh snapshot rather than patched up. *)
let update_robust t ?group ?tenant op =
  match tenant_route t ?group ?tenant ~cost:1. () with
  | Error e -> Error e
  | Ok (group, policy_key) ->
  let member_view =
    match group with
    | None -> Ok None
    | Some g ->
      (match view t ~group:g with
      | None ->
        Error
          (Error.Policy_error
             (match tenant with
             | Some name -> Printf.sprintf "unknown tenant %s" name
             | None -> Printf.sprintf "unknown group %s" g))
      | Some v -> Ok (Some v))
  in
  match member_view with
  | Error e -> Error e
  | Ok member_view ->
    let ( let* ) = Result.bind in
    let rec attempt retries =
      let snap = snapshot t in
      let old_tree = snap.snap_tree in
      let staged =
        let* target =
          resolve_target t ?group ?policy_key snap (Update.target_of op)
        in
        let r = Update.resolve op target in
        let* () = Update.validate old_tree r in
        let* () =
          match member_view with
          | None -> Ok ()
          | Some v -> Update.precheck ~view:v old_tree r
        in
        let* new_tree, fp = Update.apply old_tree r in
        let* () =
          match t.dtd with
          | None -> Ok ()
          | Some d ->
            (match validate_against d new_tree with
            | Ok () -> Ok ()
            | Error msg -> Error (Error.Parse_error { loc = None; msg }))
        in
        let* () =
          match member_view with
          | None -> Ok ()
          | Some v -> Update.postcheck ~view:v ~old_tree ~new_tree fp
        in
        (* Incremental index maintenance: splice the served TAX around
           the edited range instead of rebuilding O(document).  Computed
           outside the lock — it only reads immutable values. *)
        let* new_tax =
          Error.guard (fun () ->
              Failpoint.trigger "update.apply";
              match snap.snap_tax with
              | None -> None
              | Some idx ->
                Some
                  (Tax.splice idx new_tree ~lo:fp.Update.fp_lo
                     ~old_hi:fp.Update.fp_old_hi ~par:fp.Update.fp_parent))
        in
        Ok (target, new_tree, fp, new_tax)
      in
      match staged with
      | Error e -> Error e
      | Ok (target, new_tree, fp, new_tax) ->
        let publish =
          Error.guard (fun () ->
              Failpoint.trigger "update.invalidate";
              locked t (fun () ->
                  if t.tree != old_tree then None
                  else begin
                    t.tree <- new_tree;
                    t.source <- From_tree;
                    t.tax <- new_tax;
                    Some
                      (Plan_cache.invalidate_tags t.plan_cache
                         fp.Update.fp_tags)
                  end))
        in
        (match publish with
        | Error e -> Error e
        | Ok None ->
          if retries <= 0 then
            Error
              (Error.Internal
                 "update: the document kept changing underneath the retries")
          else attempt (retries - 1)
        | Ok (Some dropped) ->
          Log.info (fun m ->
              m "update applied at node %d (%d -> %d nodes, %d plans dropped)"
                target (Tree.n_nodes old_tree) (Tree.n_nodes new_tree)
                dropped);
          Ok
            {
              up_target = target;
              up_nodes_before = Tree.n_nodes old_tree;
              up_nodes_after = Tree.n_nodes new_tree;
              up_plans_dropped = dropped;
              up_index_maintained = Option.is_some new_tax;
            })
    in
    attempt 16

let update t ?group ?tenant op =
  Result.map_error Error.to_string (update_robust t ?group ?tenant op)

(* --- the multicore serving layer ------------------------------------------- *)

(* Dispatch one query onto the pool.  The task closes over nothing
   mutable but the engine itself, whose query path is domain-safe by the
   snapshot/lock discipline above; the budget is *made* on the worker so
   its wall-clock deadline starts when evaluation does, and so no Budget
   value is ever shared between two in-flight queries. *)
let submit t ~pool ?group ?tenant ?mode ?use_index ?optimize ?make_budget
    ?use_tables text =
  (* A tenant's tasks ride its own fair-share lane: a hot tenant's
     backlog delays only itself, untenanted traffic shares the default
     lane.  Admission is charged on the worker, inside [query_robust]. *)
  Pool.submit ?lane:tenant pool (fun () ->
      let budget = Option.map (fun mk -> mk ()) make_budget in
      query_robust t ?group ?tenant ?mode ?use_index ?optimize ?budget
        ?use_tables text)

let run_batch t ~pool ?group ?tenant ?mode ?use_index ?optimize ?make_budget
    ?use_tables texts =
  let futures =
    List.map
      (fun text ->
        submit t ~pool ?group ?tenant ?mode ?use_index ?optimize ?make_budget
          ?use_tables text)
      texts
  in
  (* Await in submission order; queries complete on the workers in any
     order, which is fine — each result lands in its own future. *)
  let results = List.map Pool.await futures in
  let aggregate = Stats.zero () in
  List.iter
    (function
      | Ok o -> Stats.merge_into ~into:aggregate o.stats
      | Error (Error.Budget_exceeded _) | Error _ -> ())
    results;
  (results, aggregate)

(* --- shared-automaton batch serving ---------------------------------------- *)

(* An exact copy of a stats record (merge into a zero accumulator is the
   identity): batch members report the shared pass's counters without
   aliasing one mutable record. *)
let clone_stats s =
  let c = Stats.zero () in
  Stats.merge_into ~into:c s;
  c

(* What one shared pass produced, before demultiplexing into outcomes:
   per-member answers (index = owner position in the merge), a fragment
   resolver, and the joint counters. *)
type batch_eval = {
  be_by_query : int list array;
  be_xml : int -> string list;
  be_stats : Stats.t;
  be_cans : int;
}

let run_many_dom snap ~plan ~sh ?use_index ?budget ~use_tables
    ~degraded_from_stax () =
  let mfa = plan.plan_mfa in
  let index_requested = use_index = Some true in
  let tax =
    match use_index, snap.snap_tax with
    | Some false, _ | _, None -> None
    | (Some true | None), Some idx -> Some idx
  in
  (* Same frozen-table discipline as [run_dom]: the specialization riding
     the batch plan covers the whole merged automaton, so a warm batch
     skips both the merge (plan cache) and the specialization. *)
  let tables, spec_us =
    if not use_tables then (None, 0)
    else
      match Atomic.get plan.plan_tables with
      | Some (_, tb) when Tables.built_for tb snap.snap_tree -> (Some tb, 0)
      | Some _ | None ->
        let tb = Tables.of_tree mfa.Mfa.nfa snap.snap_tree in
        Atomic.set plan.plan_tables (Some (snap.snap_tree, tb));
        (Some tb, Tables.spec_us tb)
  in
  let r = Eval_dom.run_many ?tax ?budget ?tables ~use_tables sh snap.snap_tree in
  if spec_us > 0 then begin
    r.Eval_dom.m_stats.Stats.table_spec_us <-
      r.Eval_dom.m_stats.Stats.table_spec_us + spec_us;
    let delta = Stats.zero () in
    delta.Stats.table_spec_us <- spec_us;
    Stats.note_tables delta
  end;
  match r.Eval_dom.m_budget_hit with
  | Some hit -> Error (budget_error hit r.Eval_dom.m_stats)
  | None ->
    let stats = r.Eval_dom.m_stats in
    if degraded_from_stax then begin
      stats.Stats.degraded_stax_retry <- 1;
      stats.Stats.passes_over_data <- stats.Stats.passes_over_data + 1
    end;
    if index_requested && tax = None then begin
      stats.Stats.degraded_no_index <- 1;
      Log.warn (fun m -> m "index requested but unavailable: unindexed pass")
    end;
    (* Batch answer sets overlap heavily — shared prefixes select shared
       nodes — so fragments are serialized once per distinct node and
       shared across the whole batch, where sequential serving would
       re-serialize per query. *)
    let frag_memo = Hashtbl.create 64 in
    let xml_of n =
      match Hashtbl.find_opt frag_memo n with
      | Some s -> s
      | None ->
        let s = answer_xml_one snap n in
        Hashtbl.add frag_memo n s;
        s
    in
    Ok
      {
        be_by_query = r.Eval_dom.by_query;
        be_xml = (fun p -> List.map xml_of r.Eval_dom.by_query.(p));
        be_stats = stats;
        be_cans = r.Eval_dom.m_cans_size;
      }

let run_many_stax snap ~sh ?budget ~use_tables () =
  let outcome_of r =
    match r.Eval_stax.m_budget_hit with
    | Some hit -> Error (budget_error hit r.Eval_stax.m_stats)
    | None ->
      Ok
        {
          be_by_query = r.Eval_stax.by_query;
          be_xml =
            (fun p -> List.map snd r.Eval_stax.by_query_captured.(p));
          be_stats = r.Eval_stax.m_stats;
          be_cans = r.Eval_stax.m_cans_size;
        }
  in
  match snap.snap_source with
  | From_string s ->
    outcome_of
      (Eval_stax.run_many ~capture:true ?budget ~use_tables sh
         (Pull.of_string s))
  | From_file path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        outcome_of
          (Eval_stax.run_many ~capture:true ?budget ~use_tables sh
             (Pull.of_channel ic)))
  | From_tree ->
    outcome_of
      (Eval_stax.run_many_events ~capture:true ?budget ~use_tables sh
         (Parser.events_of_tree snap.snap_tree))

let run_many_compiled snap ~plan ~sh ~mode ?use_index ?budget ~use_tables () =
  match mode with
  | Dom ->
    Result.join
      (Error.guard (fun () ->
           run_many_dom snap ~plan ~sh ?use_index ?budget ~use_tables
             ~degraded_from_stax:false ()))
  | Stax ->
    (match
       Result.join
         (Error.guard (fun () -> run_many_stax snap ~sh ?budget ~use_tables ()))
     with
    | Ok be -> Ok be
    | Error ((Error.Budget_exceeded _ | Error.Query_error _
             | Error.Policy_error _) as e) ->
      Error e
    | Error stax_failure ->
      (* Same degradation ladder as the single-query path: one DOM retry
         on the already-loaded tree. *)
      Log.warn (fun m ->
          m "StAX batch evaluation failed (%s): retrying in DOM mode"
            (Error.to_string stax_failure));
      Result.join
        (Error.guard (fun () ->
             run_many_dom snap ~plan ~sh ?use_index ?budget ~use_tables
               ~degraded_from_stax:true ())))

(* The outcome of the batch-plan stage. *)
type batch_plan =
  | Bp_fail_all of Error.t  (* nothing can run (e.g. merged size budget) *)
  | Bp_plan of plan * bool * Error.t option array
      (* plan, served-from-cache, per-member compile failures (by slot) *)

let batch_plan_for t ?group ?policy_key ~mode ~use_index ?budget uniq_keys
    by_key =
  let cache = t.plan_cache in
  let cacheable = Plan_cache.capacity cache > 0 in
  let n_uniq = Array.length uniq_keys in
  (* Canonical batch key: the sorted unique member keys.  Canonical query
     text never contains NUL, so the "batch" prefix cannot collide with a
     single-query entry. *)
  let bkey =
    { Plan_cache.group = (if policy_key = None then group else None);
      policy_key;
      query = "batch\x00" ^ String.concat "\x00" (Array.to_list uniq_keys);
      mode = mode_string mode;
      use_index = use_index = Some true }
  in
  match (if cacheable then Plan_cache.find cache bkey else None) with
  | Some ({ plan_shared = Some _; _ } as plan) ->
    (match
       Error.guard (fun () ->
           match budget with
           | None -> ()
           | Some b -> Budget.check_states b plan.plan_states)
     with
    | Error e -> Bp_fail_all e
    | Ok () ->
      locked t (fun () ->
          t.saved_compile_ms <- t.saved_compile_ms +. plan.plan_compile_ms);
      Bp_plan (plan, true, Array.make n_uniq None))
  | Some _ | None ->
    if cacheable then Plan_cache.record_miss cache;
    (* Generation token captured before the compiles read the views: a
       concurrent invalidation refuses the insert (same fence as
       [plan_for_query]). *)
    let gen = Plan_cache.generation cache bkey in
    let t0 = Sys.time () in
    let comp_errs = Array.make n_uniq None in
    let survivors = ref [] in
    for i = n_uniq - 1 downto 0 do
      match
        compile_ast_robust t ?group ?budget (Hashtbl.find by_key uniq_keys.(i))
      with
      | Ok mfa -> survivors := mfa :: !survivors
      | Error e -> comp_errs.(i) <- Some e
    done;
    let survivors = Array.of_list !survivors in
    if Array.length survivors = 0 then
      (* every member failed: any member error stands in for the batch *)
      Bp_fail_all
        (match comp_errs.(0) with Some e -> e | None -> assert false)
    else
      (match
         Error.guard (fun () ->
             let sh = Shared.merge survivors in
             (match budget with
             | None -> ()
             | Some b -> Budget.check_states b (Mfa.n_states sh.Shared.mfa));
             sh)
       with
      | Error e -> Bp_fail_all e
      | Ok sh ->
        let plan =
          {
            plan_mfa = sh.Shared.mfa;
            plan_states = Mfa.n_states sh.Shared.mfa;
            plan_empty = false;
            plan_shared = Some sh;
            plan_compile_ms = (Sys.time () -. t0) *. 1000.;
            plan_tables = Atomic.make None;
          }
        in
        (* Only an all-members-compiled batch is cached: the owner table
           of a partial merge numbers the surviving subset, which a later
           identical batch (whose members might all compile) must not
           inherit. *)
        if cacheable && Array.for_all (( = ) None) comp_errs then begin
          let member_paths =
            Array.to_list (Array.map (Hashtbl.find by_key) uniq_keys)
          in
          Plan_cache.add cache ~gen ~scope:(plan_scope member_paths) bkey plan
        end;
        Bp_plan (plan, false, comp_errs))

let run_many_robust t ?group ?tenant ?(mode = Dom) ?use_index ?budget
    ?use_tables texts =
  let use_tables =
    match use_tables with Some b -> b | None -> Tables.enabled_default ()
  in
  let n_texts = List.length texts in
  match
    (* One admission token per member query: a batch is N queries'
       worth of work, not one. *)
    if n_texts = 0 then Ok (group, None)
    else tenant_route t ?group ?tenant ~cost:(float_of_int n_texts) ()
  with
  | Error e ->
    let aggregate = Stats.zero () in
    (match e with
    | Error.Budget_exceeded _ ->
      aggregate.Stats.tenant_throttled <- n_texts
    | _ -> ());
    (Array.make n_texts (Error e), aggregate)
  | Ok (group, policy_key) ->
  let texts = Array.of_list texts in
  let fail_all parsed comp_errs slot_of e =
    Array.map
      (function
        | Error pe -> Error pe
        | Ok (key, _) ->
          (match comp_errs with
          | None -> Error e
          | Some errs ->
            (match errs.(Hashtbl.find slot_of key) with
            | Some ce -> Error ce
            | None -> Error e)))
      parsed
  in
  if Array.length texts = 0 then ([||], Stats.zero ())
  else begin
    (* Parse and canonicalize; duplicates collapse onto one slot (they
       share one accept set in the merge and fan back out below). *)
    let parsed =
      Array.map
        (fun text ->
          match Rx_parser.path_of_string text with
          | Error msg -> Error (Error.Query_error msg)
          | Ok path -> Ok (Canon.to_key path, path))
        texts
    in
    let by_key = Hashtbl.create 16 in
    Array.iter
      (function
        | Error _ -> ()
        | Ok (key, path) ->
          if not (Hashtbl.mem by_key key) then Hashtbl.add by_key key path)
      parsed;
    let uniq_keys =
      Array.of_list
        (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_key []))
    in
    let n_uniq = Array.length uniq_keys in
    let slot_of = Hashtbl.create (max 1 n_uniq) in
    Array.iteri (fun i k -> Hashtbl.add slot_of k i) uniq_keys;
    if n_uniq = 0 then
      ( Array.map
          (function Error e -> Error e | Ok _ -> assert false)
          parsed,
        Stats.zero () )
    else
      match
        batch_plan_for t ?group ?policy_key ~mode ~use_index ?budget uniq_keys
          by_key
      with
      | Bp_fail_all e -> (fail_all parsed None slot_of e, Stats.zero ())
      | Bp_plan (plan, cached, comp_errs) ->
        let sh =
          match plan.plan_shared with Some sh -> sh | None -> assert false
        in
        (* Owner positions number the surviving slots in ascending order. *)
        let pos_of_slot = Array.make n_uniq (-1) in
        let next = ref 0 in
        for i = 0 to n_uniq - 1 do
          if comp_errs.(i) = None then begin
            pos_of_slot.(i) <- !next;
            incr next
          end
        done;
        let snap = snapshot t in
        (match
           run_many_compiled snap ~plan ~sh ~mode ?use_index ?budget
             ~use_tables ()
         with
        | Error e ->
          (fail_all parsed (Some comp_errs) slot_of e, Stats.zero ())
        | Ok be ->
          if cached then begin
            be.be_stats.Stats.plan_cache_hit <- 1;
            if policy_key <> None then
              be.be_stats.Stats.policy_key_hits <- 1
          end;
          let results =
            Array.map
              (function
                | Error e -> Error e
                | Ok (key, _) ->
                  let slot = Hashtbl.find slot_of key in
                  (match comp_errs.(slot) with
                  | Some ce -> Error ce
                  | None ->
                    let p = pos_of_slot.(slot) in
                    let answers = be.be_by_query.(p) in
                    let stats = clone_stats be.be_stats in
                    stats.Stats.answers <- List.length answers;
                    Ok
                      {
                        answers;
                        answer_xml = be.be_xml p;
                        stats;
                        mfa = plan.plan_mfa;
                        cans_size = be.be_cans;
                      }))
              parsed
          in
          (results, be.be_stats))
  end

let run_many t ?group ?tenant ?mode ?use_index ?budget ?use_tables texts =
  let results, aggregate =
    run_many_robust t ?group ?tenant ?mode ?use_index ?budget ?use_tables
      texts
  in
  (Array.map (Result.map_error Error.to_string) results, aggregate)

(* Shard a batch across the pool: contiguous chunks, one shared pass per
   domain, results re-concatenated in order.  Each shard is its own merge
   (and its own batch-plan cache entry), so warm sharded batches still hit
   as long as the shard boundaries are stable — which they are for a fixed
   pool size. *)
let run_many_pooled t ~pool ?group ?tenant ?mode ?use_index ?make_budget
    ?use_tables texts =
  let texts = Array.of_list texts in
  let n = Array.length texts in
  if n = 0 then ([||], Stats.zero ())
  else begin
    let shards = max 1 (min (Pool.size pool) n) in
    let chunk k =
      (* balanced split: the first (n mod shards) chunks get one extra *)
      let base = n / shards and extra = n mod shards in
      let start = (k * base) + min k extra in
      let len = base + if k < extra then 1 else 0 in
      Array.to_list (Array.sub texts start len)
    in
    let futures =
      List.init shards (fun k ->
          Pool.submit ?lane:tenant pool (fun () ->
              let budget = Option.map (fun mk -> mk ()) make_budget in
              run_many_robust t ?group ?tenant ?mode ?use_index ?budget
                ?use_tables (chunk k)))
    in
    let parts = List.map Pool.await futures in
    let aggregate = Stats.zero () in
    List.iter
      (fun (_, stats) -> Stats.merge_into ~into:aggregate stats)
      parts;
    (Array.concat (List.map fst parts), aggregate)
  end
