module Error = Smoqe_robust.Error

type role =
  | Admin
  | Member of string

type t = {
  engine : Engine.t;
  role : role;
}

let login engine role =
  match role with
  | Admin -> Ok { engine; role }
  | Member group ->
    (match Engine.view engine ~group with
    | Some _ -> Ok { engine; role }
    | None -> Error (Printf.sprintf "no view registered for group %s" group))

let role t = t.role

let schema t =
  match t.role with
  | Admin -> Engine.dtd t.engine
  | Member group -> Engine.view_dtd t.engine ~group

let run_robust t ?mode ?use_index ?budget ?trace ?use_tables text =
  (* The engine boundary is already guarded; the extra guard here keeps the
     session total even against failures in its own plumbing. *)
  Result.join
    (Error.guard (fun () ->
         match t.role with
         | Admin ->
           Engine.query_robust t.engine ?mode ?use_index ?budget ?trace
             ?use_tables text
         | Member group ->
           Engine.query_robust t.engine ~group ?mode ?use_index ?budget ?trace
             ?use_tables text))

let run t ?mode ?use_index ?budget ?trace ?use_tables text =
  Result.map_error Error.to_string
    (run_robust t ?mode ?use_index ?budget ?trace ?use_tables text)

(* The write path under the session's rights: admins update the document
   directly (structural and DTD checks only), members go through their
   group's view-legality checks — the group is resolved from the role, a
   member can never sidestep their view. *)
let update_robust t op =
  Result.join
    (Error.guard (fun () ->
         match t.role with
         | Admin -> Engine.update_robust t.engine op
         | Member group -> Engine.update_robust t.engine ~group op))

let update t op = Result.map_error Error.to_string (update_robust t op)

(* The pool-dispatched forms.  Rights travel with the closure: the group
   is resolved from the session *before* submission, so a worker can only
   ever evaluate through the view this session was granted. *)
let submit t ~pool ?mode ?use_index ?make_budget ?use_tables text =
  match t.role with
  | Admin ->
    Engine.submit t.engine ~pool ?mode ?use_index ?make_budget ?use_tables text
  | Member group ->
    Engine.submit t.engine ~pool ~group ?mode ?use_index ?make_budget
      ?use_tables text

let run_batch t ~pool ?mode ?use_index ?make_budget ?use_tables texts =
  match t.role with
  | Admin ->
    Engine.run_batch t.engine ~pool ?mode ?use_index ?make_budget ?use_tables
      texts
  | Member group ->
    Engine.run_batch t.engine ~pool ~group ?mode ?use_index ?make_budget
      ?use_tables texts

(* Batch serving under the session's rights: one shared-automaton pass,
   with the group resolved from the role before anything is compiled. *)
let run_many_robust t ?mode ?use_index ?budget ?use_tables texts =
  match
    Error.guard (fun () ->
        match t.role with
        | Admin ->
          Engine.run_many_robust t.engine ?mode ?use_index ?budget ?use_tables
            texts
        | Member group ->
          Engine.run_many_robust t.engine ~group ?mode ?use_index ?budget
            ?use_tables texts)
  with
  | Ok r -> r
  | Error e ->
    (Array.make (List.length texts) (Error e), Smoqe_hype.Stats.zero ())

let run_many t ?mode ?use_index ?budget ?use_tables texts =
  let results, aggregate =
    run_many_robust t ?mode ?use_index ?budget ?use_tables texts
  in
  (Array.map (Result.map_error Error.to_string) results, aggregate)

let run_many_pooled t ~pool ?mode ?use_index ?make_budget ?use_tables texts =
  match t.role with
  | Admin ->
    Engine.run_many_pooled t.engine ~pool ?mode ?use_index ?make_budget
      ?use_tables texts
  | Member group ->
    Engine.run_many_pooled t.engine ~pool ~group ?mode ?use_index ?make_budget
      ?use_tables texts

let can_access_document t =
  match t.role with Admin -> true | Member _ -> false
