(** Access-control sessions: who may query what (paper §2, Query support).

    SMOQE's two query-evaluation modes: a user poses a query either (a)
    directly on the document, {e provided the user is granted access to
    it}, or (b) on the virtual view of their group.  Sessions enforce the
    distinction: administrators see the document, group members see only
    their view — a group member asking for direct access is refused, and
    their queries are silently rewritten through the view. *)

type role =
  | Admin  (** full access to the underlying document *)
  | Member of string  (** restricted to a group's security view *)

type t

val login : Engine.t -> role -> (t, string) result
(** Fails for a member of an unregistered group. *)

val role : t -> role

val schema : t -> Smoqe_xml.Dtd.t option
(** What the user is allowed to know about the data's shape: the document
    DTD for admins, the view DTD for members. *)

val run :
  t ->
  ?mode:Engine.mode ->
  ?use_index:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Smoqe_hype.Trace.t ->
  ?use_tables:bool ->
  string ->
  (Engine.outcome, string) result
(** Answer a query under the session's rights.  Total: any failure —
    malformed input, budget exhaustion, injected fault — is an [Error],
    never an exception (see {!Engine.query}).

    Sessions share their engine's compiled-plan cache: when many group
    members pose the same (canonically equal) query, only the first pays
    for rewriting and compilation; later runs are served the cached MFA
    with [stats.plan_cache_hit = 1].  Rights are unaffected — the cache
    key includes the group, so a member can only ever hit plans rewritten
    through their own view. *)

val run_robust :
  t ->
  ?mode:Engine.mode ->
  ?use_index:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Smoqe_hype.Trace.t ->
  ?use_tables:bool ->
  string ->
  (Engine.outcome, Smoqe_robust.Error.t) result
(** The typed-error form of {!run}. *)

val update_robust :
  t ->
  Smoqe_update.Update.op ->
  (Engine.update_report, Smoqe_robust.Error.t) result
(** Apply one update under the session's rights (see
    {!Engine.update_robust}): admins edit the document subject to
    structural and DTD checks only; members additionally pass their
    group's view-legality discipline — an edit touching any view-hidden
    node, or changing the visibility of an unrelated one, is
    [Error.Update_denied] and the document is untouched. *)

val update :
  t ->
  Smoqe_update.Update.op ->
  (Engine.update_report, string) result
(** {!update_robust} with rendered errors. *)

val submit :
  t ->
  pool:Smoqe_exec.Pool.t ->
  ?mode:Engine.mode ->
  ?use_index:bool ->
  ?make_budget:(unit -> Smoqe_robust.Budget.t) ->
  ?use_tables:bool ->
  string ->
  (Engine.outcome, Smoqe_robust.Error.t) result Smoqe_exec.Pool.future
(** {!run_robust}, dispatched onto a domain pool (see {!Engine.submit}).
    Many sessions may submit onto the same pool concurrently — this is
    the serving configuration: one engine, one pool, a session per user.
    The session's group is captured at submission, so concurrent
    re-registration of the view affects which {e plans} are served, never
    {e whose} view a query runs through. *)

val run_batch :
  t ->
  pool:Smoqe_exec.Pool.t ->
  ?mode:Engine.mode ->
  ?use_index:bool ->
  ?make_budget:(unit -> Smoqe_robust.Budget.t) ->
  ?use_tables:bool ->
  string list ->
  (Engine.outcome, Smoqe_robust.Error.t) result list * Smoqe_hype.Stats.t
(** Submit all, await all, in submission order, with the aggregated
    statistics of the successful runs (see {!Engine.run_batch}). *)

val run_many :
  t ->
  ?mode:Engine.mode ->
  ?use_index:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?use_tables:bool ->
  string list ->
  (Engine.outcome, string) result array * Smoqe_hype.Stats.t
(** Answer a whole batch in one shared-automaton document pass under the
    session's rights (see {!Engine.run_many_robust}): member automata are
    merged prefix-sharing-style, duplicates collapse onto one accept set,
    and the merged plan is cached per group — a member can only ever hit
    batch plans rewritten through their own view. *)

val run_many_robust :
  t ->
  ?mode:Engine.mode ->
  ?use_index:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?use_tables:bool ->
  string list ->
  (Engine.outcome, Smoqe_robust.Error.t) result array * Smoqe_hype.Stats.t
(** The typed-error form of {!run_many}. *)

val run_many_pooled :
  t ->
  pool:Smoqe_exec.Pool.t ->
  ?mode:Engine.mode ->
  ?use_index:bool ->
  ?make_budget:(unit -> Smoqe_robust.Budget.t) ->
  ?use_tables:bool ->
  string list ->
  (Engine.outcome, Smoqe_robust.Error.t) result array * Smoqe_hype.Stats.t
(** The batch sharded across a pool, one shared pass per worker (see
    {!Engine.run_many_pooled}). *)

val can_access_document : t -> bool
