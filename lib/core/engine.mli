(** The SMOQE engine façade: documents, policies, views, indexes and query
    answering — the module a downstream application uses.

    A SMOQE instance holds one XML document (with its DTD if given), any
    number of per-group security views (derived automatically from access
    control policies, paper §2), and an optional TAX index.  Queries are
    Regular XPath, posed either directly on the document or on a group's
    virtual view; view queries are rewritten to MFAs on the document and
    evaluated by HyPE — the view is never materialized.

    {b Totality.}  This façade is guarded: no input — malformed XML, a
    hostile query, an exhausted resource budget or an injected fault —
    makes any function here raise.  Typed failures are
    [Smoqe_robust.Error.t] (see {!query_robust}); the [string]-error
    functions render the same taxonomy.  Two degradations are applied
    rather than failing, and recorded in [outcome.stats]: an unavailable
    index downgrades to an unindexed DOM pass ([degraded_no_index]), and a
    StAX driver failure is retried once in DOM mode
    ([degraded_stax_retry]).

    {b Concurrency.}  The query path is domain-safe: any number of
    domains may call {!query}/{!query_robust} (or {!submit} queries onto
    a {!Smoqe_exec.Pool}) against one engine concurrently, interleaved
    with the administrative operations ({!register_policy},
    {!replace_document}, {!build_index}, {!load_index}).  Each query
    atomically snapshots the served {tree, source, index} triple at
    start and evaluates wholly against that snapshot; the plan cache is
    internally locked; trees and indexes are deeply immutable.  See
    DESIGN.md §9 for the full model (what is shared, what is per-domain,
    lock order). *)

type t

type mode =
  | Dom  (** in-memory evaluation, TAX-prunable *)
  | Stax  (** single sequential scan of the stored source *)

type outcome = {
  answers : int list;  (** answer node ids (document pre-order) *)
  answer_xml : string list;
      (** serialized answer subtrees (captured on the fly in StAX mode) *)
  stats : Smoqe_hype.Stats.t;
  mfa : Smoqe_automata.Mfa.t;  (** the (rewritten) automaton that ran *)
  cans_size : int;
}

(** {1 Construction} *)

val of_string : ?dtd:Smoqe_xml.Dtd.t -> string -> (t, string) result
(** Parse a document from XML text.  With [dtd], the document is validated
    and policies may be registered.  Errors are returned, never raised. *)

val of_file : ?dtd:Smoqe_xml.Dtd.t -> string -> (t, string) result
(** Like {!of_string}; error messages carry ["file:line:column:"]. *)

val of_string_robust :
  ?budget:Smoqe_robust.Budget.t ->
  ?dtd:Smoqe_xml.Dtd.t ->
  string ->
  (t, Smoqe_robust.Error.t) result
(** Like {!of_string}, but failures are the typed taxonomy: malformed
    input (syntax errors and DTD-validation failures) is
    [Error.Parse_error] — CLI front-ends exit with
    [Error.exit_code = 2] on it — and budget/failpoint trips keep their
    own classes.  With [budget], document *parsing* is bounded too
    (node count, depth, deadline), returning [Budget_exceeded]. *)

val of_file_robust :
  ?budget:Smoqe_robust.Budget.t ->
  ?dtd:Smoqe_xml.Dtd.t ->
  string ->
  (t, Smoqe_robust.Error.t) result
(** Like {!of_string_robust}; parse-error locations carry the file name. *)

val of_tree : ?dtd:Smoqe_xml.Dtd.t -> Smoqe_xml.Tree.t -> t

val document : t -> Smoqe_xml.Tree.t
val dtd : t -> Smoqe_xml.Dtd.t option

val replace_document : t -> Smoqe_xml.Tree.t -> (unit, string) result
(** Swap the served document while keeping the DTD, the registered views
    and any logged-in sessions.  The new tree is validated against the
    engine's DTD; the TAX index is dropped (it described the old tree) and
    the plan cache is invalidated wholesale (generation bump, see
    {!section-plan_cache}). *)

(** {1 Security views} *)

val register_policy :
  t -> group:string -> Smoqe_security.Policy.t -> (unit, string) result
(** Derive and store the security view for a user group.  Fails if the
    engine has no DTD, the policy is over a different DTD, or derivation is
    unsupported. *)

val groups : t -> string list
val view : t -> group:string -> Smoqe_security.Derive.view option

val view_dtd : t -> group:string -> Smoqe_xml.Dtd.t option
(** The schema exposed to the group's users. *)

(** {1 Multi-tenant serving}

    Tenants are groups at production scale: each tenant registers its
    own annotated-DTD policy, but tenants whose annotations agree after
    normalization ({!Smoqe_security.Policy_key}) share {e one} derived
    view, one rewrite and — through the plan cache's policy-key
    dimension — one compiled plan per query.  Queries and updates take
    [?tenant] and run through the tenant's shared view exactly as
    [?group] traffic runs through a group view; per-tenant token-bucket
    budgets ({!Smoqe_robust.Admission}) throttle a hot tenant before any
    engine work happens ([Budget_exceeded], exit code 3, with
    [tenant_throttled] marked in the partial stats), and pooled tenant
    traffic rides per-tenant fair-share lanes ({!Smoqe_exec.Pool}). *)

val register_tenant :
  t ->
  tenant:string ->
  Smoqe_security.Policy.t ->
  (Smoqe_security.Tenant_registry.registration, string) result
(** Register (or churn) a tenant under a policy.  Derives the view only
    when the canonical policy key is new — [reg_shared] reports a
    policy-key hit.  On churn, a key whose last tenant moved away is
    retired: its view is dropped and plans cached under it are
    generationally invalidated.  Same failure modes as
    {!register_policy}. *)

val remove_tenant : t -> tenant:string -> unit
(** Forget a tenant, retiring its policy key's artifacts if it was the
    last holder. *)

val tenant_key : t -> tenant:string -> string option
(** The tenant's canonical policy key, if registered. *)

val tenant_names : t -> string list
val tenant_counters : t -> (string * int) list
(** Registry counters: [tenants]/[policy_keys]/[policy_key_hits]/
    [derivations]/[generation]. *)

val set_tenant_budget :
  t -> tenant:string -> capacity:int -> ?refill_per_s:float -> unit -> unit
(** Install the tenant's admission token bucket (see
    {!Smoqe_robust.Admission.set_budget}). *)

val admission_counters : t -> (string * (int * int)) list
(** Per-tenant [(admitted, throttled)] admission traffic. *)

(** {1 Indexing} *)

val build_index : t -> unit
(** Build (or rebuild) the TAX index for the document. *)

val index : t -> Smoqe_tax.Tax.t option

val save_index : t -> string -> (unit, string) result
val load_index : t -> string -> (unit, string) result
(** Load a previously saved index; fails if it does not match the
    document's shape.  Subject to the ["index.load"] failpoint.  A failed
    load leaves the engine serving queries without an index (recorded per
    query as [degraded_no_index] when one was requested). *)

(** {1:plan_cache The compiled-plan cache}

    Parsing, rewriting and compiling a Regular XPath query costs far more
    than evaluating its linear-size MFA on a modest document — and under
    serving traffic the same queries arrive over and over, from every
    session logged into the engine.  The engine therefore keeps an LRU
    cache of compiled plans keyed by [(group, canonical query text, mode,
    use_index)] (see {!Smoqe_plan.Canon} and {!Smoqe_plan.Plan_cache}).  A
    hit skips parse, rewrite and compile entirely and records
    [plan_cache_hit = 1] in the outcome's stats; resource budgets are
    still enforced ([max_states] is re-checked against the cached plan).
    Re-registering a group's view invalidates that group's plans;
    {!replace_document} invalidates everything.  A failed compile — error,
    tripped budget or injected ["plan.compile"] fault — never populates
    the cache. *)

val set_plan_cache_capacity : t -> int -> unit
(** Bound the number of cached plans (default 128).  Shrinking evicts in
    LRU order; [0] disables caching entirely. *)

val plan_cache_capacity : t -> int

val plan_cache_counters : t -> (string * int) list
(** [hits], [misses], [evictions], [stale_drops], [entries], [capacity]
    and [saved_compile_ms] (total compile time hits avoided). *)

(** {1 Querying} *)

val query :
  t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:mode ->
  ?use_index:bool ->
  ?optimize:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Smoqe_hype.Trace.t ->
  ?use_tables:bool ->
  string ->
  (outcome, string) result
(** Answer a Regular XPath query.  Without [group], the query runs
    directly on the document; with [group], it is first rewritten through
    the group's view.  [use_index] (default [true] when an index exists)
    enables TAX pruning in [Dom] mode; [optimize] (default [true]) runs
    the MFA optimizer before evaluation.  [budget] bounds compilation and
    evaluation (see {!Smoqe_robust.Budget}).  [use_tables] (default
    {!Smoqe_automata.Tables.enabled_default}, i.e. on unless
    [SMOQE_NO_TABLES] is set) evaluates on the table-driven engine — in
    [Dom] mode the frozen specialization rides the compiled plan and warm
    repeats skip it; [false] is the generic debuggable fallback.  All
    failures are returned as [Error] — this is {!query_robust} rendered
    with [Smoqe_robust.Error.to_string]. *)

val query_robust :
  t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:mode ->
  ?use_index:bool ->
  ?optimize:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?trace:Smoqe_hype.Trace.t ->
  ?use_tables:bool ->
  string ->
  (outcome, Smoqe_robust.Error.t) result
(** The typed-error form of {!query}.  Guaranteed total: every library
    exception is caught at this boundary and classified.  A tripped budget
    returns [Budget_exceeded] carrying the partial evaluation counters. *)

val rewrite_only :
  t ->
  group:string ->
  ?optimize:bool ->
  string ->
  (Smoqe_automata.Mfa.t, string) result
(** Just the rewriting step — what iSMOQE visualizes (paper Fig. 4). *)

(** {1 Secure updates}

    Typed subtree edits ({!Smoqe_update.Update.op}: insert, delete,
    replace), policy-checked against the caller's security view and
    published atomically together with incremental maintenance of the
    derived read structures:

    - the {b TAX index} is spliced around the edited range
      ({!Smoqe_tax.Tax.splice}) instead of rebuilt;
    - {b frozen tag tables} riding cached plans stay valid whenever the
      edit interned no new tag (tag-lineage tokens,
      {!Smoqe_automata.Tables.built_for});
    - the {b plan cache} is invalidated by tag scope
      ({!Smoqe_plan.Plan_cache.invalidate_tags}): only plans whose named
      tags intersect the edit's footprint are dropped, warm unrelated
      entries survive.

    A member update (with [group]) must pass the view-legality
    discipline — the edit may only touch exposed nodes and must not flip
    the visibility of anything else; violations return
    [Error.Update_denied] (CLI exit code 4) carrying the offending node.
    Updates never leave partial state: every check, the DTD validation
    of the candidate and both ["update.apply"]/["update.invalidate"]
    failpoints sit strictly before the locked publish, so any failure is
    a clean full reject.  Wholesale {!replace_document} remains the
    bulk-load path. *)

type update_report = {
  up_target : int;  (** the resolved target node (pre-update ids) *)
  up_nodes_before : int;
  up_nodes_after : int;
  up_plans_dropped : int;  (** plan-cache entries the edit invalidated *)
  up_index_maintained : bool;
      (** a TAX index was live and was spliced incrementally *)
}

val update_robust :
  t ->
  ?group:string ->
  ?tenant:string ->
  Smoqe_update.Update.op ->
  (update_report, Smoqe_robust.Error.t) result
(** Apply one update.  Without [group] the caller is administrative and
    only structural/DTD checks apply; with [group] the edit is checked
    against that group's view.  A [By_path] target is evaluated through
    the view and must select exactly one node ([Query_error] otherwise).
    A candidate that violates the engine's DTD is [Parse_error] (the
    input, not the system, is at fault).  Concurrent updates are safe:
    the staged pipeline redoes itself from a fresh snapshot when it
    loses the publish race. *)

val update :
  t ->
  ?group:string ->
  ?tenant:string ->
  Smoqe_update.Update.op ->
  (update_report, string) result
(** {!update_robust} with rendered errors. *)

(** {1 Shared-automaton batch serving}

    A batch of queries is answered in {e one} document pass: the compiled
    member automata are merged prefix-sharing-style into a single combined
    NFA with per-query accept sets ({!Smoqe_automata.Shared}), the merged
    automaton rides the same table/lazy-DFA machinery as a single query —
    the interned state sets just get wider, with the [(set, tag)] memo
    shared across the whole batch — and candidate answers demultiplex back
    to their owners.  Identical queries (canonically equal, see
    {!Smoqe_plan.Canon}) are compiled and merged once and share one accept
    set; their answers fan back out per input position.  The merged plan
    is cached under a canonical batch key (the sorted unique member keys),
    so a warm batch skips parse, compile {e and} merge — permutations and
    duplicate mixes of a warm batch still hit. *)

val run_many_robust :
  t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:mode ->
  ?use_index:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?use_tables:bool ->
  string list ->
  (outcome, Smoqe_robust.Error.t) result array * Smoqe_hype.Stats.t
(** Answer every query of the batch in one shared pass.  Results align
    with the input list.  Each successful outcome carries the member's own
    answers (and serialized fragments) with a private copy of the shared
    pass's counters, [stats.answers] set per member; the second component
    is the joint pass statistics (one [passes_over_data], the batch
    counters [batch_queries]/[shared_states]/[shared_prefix_hits]/
    [accept_width] filled in).  A member that fails to parse or compile
    gets its own [Error] without poisoning the rest; [budget] bounds each
    member's compile and the {e single} traversal (a trip fails the whole
    batch — the shared pass is all-or-nothing).  Per-query [trace] is not
    available on the batch path. *)

val run_many :
  t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:mode ->
  ?use_index:bool ->
  ?budget:Smoqe_robust.Budget.t ->
  ?use_tables:bool ->
  string list ->
  (outcome, string) result array * Smoqe_hype.Stats.t
(** {!run_many_robust} with rendered errors. *)

(** {1 Multicore serving}

    Dispatch queries onto a {!Smoqe_exec.Pool} of domains instead of
    evaluating inline.  Independent queries over virtual views parallelize
    embarrassingly well: the document tree and TAX index are immutable,
    HyPE builds all of its evaluation state per query, and the only
    contended structure is the plan cache — one short mutex hold per
    query on the warm path.  A batch of the repeated rewritten workload
    therefore scales with the worker count (bench [e12] gates this).

    Budgets are passed as {e makers} ([unit -> Budget.t]) rather than
    values: a [Budget.t] is mutable single-query state and its wall-clock
    deadline should start when a worker picks the query up, so each task
    builds its own. *)

val submit :
  t ->
  pool:Smoqe_exec.Pool.t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:mode ->
  ?use_index:bool ->
  ?optimize:bool ->
  ?make_budget:(unit -> Smoqe_robust.Budget.t) ->
  ?use_tables:bool ->
  string ->
  (outcome, Smoqe_robust.Error.t) result Smoqe_exec.Pool.future
(** Enqueue one query; the future resolves to exactly what
    {!query_robust} would have returned.  Tasks are total — awaiting
    never raises.  ([trace] is deliberately absent: a trace sink is
    single-query scratch state, meaningless to share across workers.) *)

val run_batch :
  t ->
  pool:Smoqe_exec.Pool.t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:mode ->
  ?use_index:bool ->
  ?optimize:bool ->
  ?make_budget:(unit -> Smoqe_robust.Budget.t) ->
  ?use_tables:bool ->
  string list ->
  (outcome, Smoqe_robust.Error.t) result list * Smoqe_hype.Stats.t
(** Submit every query, await them all; results are in submission order
    regardless of completion order.  The second component aggregates the
    successful outcomes' counters ({!Smoqe_hype.Stats.merge_into}): each
    query evaluated with its own domain-local [Stats.t], merged only
    after the futures resolved. *)

val run_many_pooled :
  t ->
  pool:Smoqe_exec.Pool.t ->
  ?group:string ->
  ?tenant:string ->
  ?mode:mode ->
  ?use_index:bool ->
  ?make_budget:(unit -> Smoqe_robust.Budget.t) ->
  ?use_tables:bool ->
  string list ->
  (outcome, Smoqe_robust.Error.t) result array * Smoqe_hype.Stats.t
(** {!run_many_robust} sharded across the pool: the batch is split into
    one contiguous chunk per worker, each chunk evaluated as its own
    shared pass on its own domain, and the per-chunk results concatenated
    back into input order.  The second component merges the chunk passes'
    statistics.  Budgets are makers, per chunk (see {!submit}). *)
