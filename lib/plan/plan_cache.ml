type key = {
  group : string option;
  policy_key : string option;
  query : string;
  mode : string;
  use_index : bool;
}

(* The tag scope of a plan: the element names its automaton tests.  A
   subtree update invalidates exactly the entries whose scope intersects
   the mutated subtree's tags ([invalidate_tags]); [All_tags] entries are
   swept by every such update.  Scopes are a freshness policy, not a
   correctness device — compiled plans depend on the view and the DTD,
   never on the document, so a surviving warm plan still answers
   correctly on the updated tree. *)
type scope = All_tags | Tags of string list

type 'plan entry = {
  plan : 'plan;
  scope : scope;
  g_global : int;  (* global generation at insertion *)
  g_group : int;  (* the group's generation at insertion; 0 for [None] *)
  g_pkey : int;  (* the policy key's generation at insertion; 0 for [None] *)
  mutable stamp : int;  (* recency; larger = more recently used *)
}

(* Every mutable field below is protected by [lock] — the cache is shared
   by all sessions of an engine, and with the domain-pool executor those
   sessions run on different domains concurrently.  [enabled] mirrors
   [capacity > 0] in an Atomic so the common gates (a disabled cache, the
   pre-probe in the engine) stay lock-free; the capacity is re-read under
   the lock before any table access (double-checked). *)
type 'plan t = {
  lock : Mutex.t;
  enabled : bool Atomic.t;  (* capacity > 0, maintained by set_capacity *)
  mutable capacity : int;
  table : (key, 'plan entry) Hashtbl.t;
  mutable tick : int;
  mutable gen_global : int;
  gen_groups : (string, int) Hashtbl.t;
  gen_pkeys : (string, int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stale_drops : int;
  mutable tag_drops : int;
}

let create ?(capacity = 128) () =
  let capacity = max 0 capacity in
  {
    lock = Mutex.create ();
    enabled = Atomic.make (capacity > 0);
    capacity;
    table = Hashtbl.create 64;
    tick = 0;
    gen_global = 0;
    gen_groups = Hashtbl.create 4;
    gen_pkeys = Hashtbl.create 4;
    hits = 0;
    misses = 0;
    evictions = 0;
    stale_drops = 0;
    tag_drops = 0;
  }

let locked t f = Mutex.protect t.lock f

(* A generation token: the (global, group) generation pair a caller
   captured before starting a compile.  [add ~gen] refuses to insert when
   either component has moved — the plan was minted against state
   (a view, a document) that is no longer the one being served. *)
type gen = {
  snap_global : int;
  snap_group : int;
  snap_pkey : int;
}

let capacity t = locked t (fun () -> t.capacity)
let length t = locked t (fun () -> Hashtbl.length t.table)

(* --- internals; caller holds [lock] -------------------------------------- *)

let group_gen t = function
  | None -> 0
  | Some g -> Option.value (Hashtbl.find_opt t.gen_groups g) ~default:0

let pkey_gen t = function
  | None -> 0
  | Some k -> Option.value (Hashtbl.find_opt t.gen_pkeys k) ~default:0

let current t key entry =
  entry.g_global = t.gen_global
  && entry.g_group = group_gen t key.group
  && entry.g_pkey = pkey_gen t key.policy_key

let touch t entry =
  t.tick <- t.tick + 1;
  entry.stamp <- t.tick

(* Eviction scans for the minimum stamp: exact LRU at O(n) per eviction,
   which only runs on an insert into a full cache — vanishingly cheap next
   to the compile that produced the plan being inserted. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.stamp <= entry.stamp -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

(* --- the public face ------------------------------------------------------ *)

let find t key =
  (* Lock-free fast path: a disabled cache answers without contending. *)
  if not (Atomic.get t.enabled) then None
  else
    locked t (fun () ->
        if t.capacity = 0 then None (* double-check: raced with disabling *)
        else
          match Hashtbl.find_opt t.table key with
          | None -> None
          | Some entry when current t key entry ->
            t.hits <- t.hits + 1;
            touch t entry;
            Some entry.plan
          | Some _ ->
            Hashtbl.remove t.table key;
            t.stale_drops <- t.stale_drops + 1;
            None)

let record_miss t =
  if Atomic.get t.enabled then
    locked t (fun () -> if t.capacity > 0 then t.misses <- t.misses + 1)

let generation t key =
  locked t (fun () ->
      { snap_global = t.gen_global; snap_group = group_gen t key.group;
        snap_pkey = pkey_gen t key.policy_key })

let add t ?gen ?(scope = All_tags) key plan =
  if Atomic.get t.enabled then
    locked t (fun () ->
        if t.capacity > 0 then begin
          let fresh =
            match gen with
            | None -> true
            | Some g ->
              g.snap_global = t.gen_global
              && g.snap_group = group_gen t key.group
              && g.snap_pkey = pkey_gen t key.policy_key
          in
          if not fresh then
            (* An invalidation landed while the plan was being compiled:
               inserting it would serve the old view as current. *)
            t.stale_drops <- t.stale_drops + 1
          else begin
            if not (Hashtbl.mem t.table key) then
              while Hashtbl.length t.table >= t.capacity do
                evict_one t
              done;
            let entry =
              { plan; scope; g_global = t.gen_global;
                g_group = group_gen t key.group;
                g_pkey = pkey_gen t key.policy_key; stamp = 0 }
            in
            touch t entry;
            Hashtbl.replace t.table key entry
          end
        end)

let set_capacity t n =
  let n = max 0 n in
  locked t (fun () ->
      t.capacity <- n;
      Atomic.set t.enabled (n > 0);
      if n = 0 then Hashtbl.reset t.table
      else
        while Hashtbl.length t.table > n do
          evict_one t
        done)

let invalidate_group t group =
  locked t (fun () ->
      Hashtbl.replace t.gen_groups group (1 + group_gen t (Some group)))

let invalidate_policy_key t pkey =
  locked t (fun () ->
      Hashtbl.replace t.gen_pkeys pkey (1 + pkey_gen t (Some pkey)))

let invalidate_all t = locked t (fun () -> t.gen_global <- t.gen_global + 1)

(* Subtree-scoped invalidation, for functional updates: eagerly remove
   the entries whose scope intersects the mutated subtree's element
   names (plus every [All_tags] entry).  Eager rather than generational
   because only a subset dies — bumping a generation would kill the warm
   entries this mechanism exists to preserve. *)
let invalidate_tags t names =
  if names = [] then 0
  else if not (Atomic.get t.enabled) then 0
  else
    locked t (fun () ->
        let doomed =
          Hashtbl.fold
            (fun key entry acc ->
              let dies =
                match entry.scope with
                | All_tags -> true
                | Tags ts -> List.exists (fun n -> List.mem n ts) names
              in
              if dies then key :: acc else acc)
            t.table []
        in
        List.iter (Hashtbl.remove t.table) doomed;
        let n = List.length doomed in
        t.tag_drops <- t.tag_drops + n;
        n)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.stale_drops <- 0;
      t.tag_drops <- 0)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
let stale_drops t = locked t (fun () -> t.stale_drops)
let tag_drops t = locked t (fun () -> t.tag_drops)

let to_assoc t =
  locked t (fun () ->
      [
        ("hits", t.hits);
        ("misses", t.misses);
        ("evictions", t.evictions);
        ("stale_drops", t.stale_drops);
        ("tag_drops", t.tag_drops);
        ("entries", Hashtbl.length t.table);
        ("capacity", t.capacity);
      ])
