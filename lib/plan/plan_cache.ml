type key = {
  group : string option;
  query : string;
  mode : string;
  use_index : bool;
}

type 'plan entry = {
  plan : 'plan;
  g_global : int;  (* global generation at insertion *)
  g_group : int;  (* the group's generation at insertion; 0 for [None] *)
  mutable stamp : int;  (* recency; larger = more recently used *)
}

type 'plan t = {
  mutable capacity : int;
  table : (key, 'plan entry) Hashtbl.t;
  mutable tick : int;
  mutable gen_global : int;
  gen_groups : (string, int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stale_drops : int;
}

let create ?(capacity = 128) () =
  {
    capacity = max 0 capacity;
    table = Hashtbl.create 64;
    tick = 0;
    gen_global = 0;
    gen_groups = Hashtbl.create 4;
    hits = 0;
    misses = 0;
    evictions = 0;
    stale_drops = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let group_gen t = function
  | None -> 0
  | Some g -> Option.value (Hashtbl.find_opt t.gen_groups g) ~default:0

let current t key entry =
  entry.g_global = t.gen_global && entry.g_group = group_gen t key.group

let touch t entry =
  t.tick <- t.tick + 1;
  entry.stamp <- t.tick

(* Eviction scans for the minimum stamp: exact LRU at O(n) per eviction,
   which only runs on an insert into a full cache — vanishingly cheap next
   to the compile that produced the plan being inserted. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.stamp <= entry.stamp -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let find t key =
  if t.capacity = 0 then None
  else
    match Hashtbl.find_opt t.table key with
    | None -> None
    | Some entry when current t key entry ->
      t.hits <- t.hits + 1;
      touch t entry;
      Some entry.plan
    | Some _ ->
      Hashtbl.remove t.table key;
      t.stale_drops <- t.stale_drops + 1;
      None

let record_miss t = if t.capacity > 0 then t.misses <- t.misses + 1

let add t key plan =
  if t.capacity > 0 then begin
    if not (Hashtbl.mem t.table key) then
      while Hashtbl.length t.table >= t.capacity do
        evict_one t
      done;
    let entry =
      { plan; g_global = t.gen_global; g_group = group_gen t key.group;
        stamp = 0 }
    in
    touch t entry;
    Hashtbl.replace t.table key entry
  end

let set_capacity t n =
  let n = max 0 n in
  t.capacity <- n;
  if n = 0 then Hashtbl.reset t.table
  else
    while Hashtbl.length t.table > n do
      evict_one t
    done

let invalidate_group t group =
  Hashtbl.replace t.gen_groups group (1 + group_gen t (Some group))

let invalidate_all t = t.gen_global <- t.gen_global + 1

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.stale_drops <- 0

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let stale_drops t = t.stale_drops

let to_assoc t =
  [
    ("hits", t.hits);
    ("misses", t.misses);
    ("evictions", t.evictions);
    ("stale_drops", t.stale_drops);
    ("entries", Hashtbl.length t.table);
    ("capacity", t.capacity);
  ]
