(** The compiled-plan cache: rewritten MFAs served to repeated queries.

    SMOQE's rewriter emits a linear-size MFA precisely so a query can be
    compiled once and evaluated many times; this cache is where "once"
    becomes true for a serving engine.  Plans are keyed by the user group
    (views rewrite per group), the {e canonical} query text
    ({!Canon.to_key}), the evaluation mode and the index flag, and evicted
    in least-recently-used order under a capacity knob.

    {b Invalidation is generational}, not eager: re-registering a group's
    view bumps that group's generation, replacing the document bumps the
    global one, and entries minted under an older generation are dropped
    lazily on lookup.  Invalidation therefore costs O(1) no matter how
    many plans a hot group has accumulated — the stale entries age out of
    the LRU like any other cold plan.

    A capacity of [0] disables the cache entirely: probes miss without
    recording traffic and insertion is a no-op.

    {b Thread safety.}  The cache is engine-local mutable state shared by
    every session logged into that engine, and with the domain-pool
    executor ({!Smoqe_exec.Pool}) those sessions run queries on different
    domains {e in true parallel} — the OCaml 5 runtime does {e not}
    serialize access across domains.  Every operation here is therefore
    atomic under an internal mutex, with a double-checked fast path: a
    disabled cache ([capacity = 0]) answers {!find} from a lock-free
    [Atomic] gate, and an enabled probe re-checks the capacity after
    taking the lock.  The critical sections are a hash probe or insert —
    warm hits stay lock-cheap and the compile work a miss triggers always
    happens {e outside} the lock.

    What is {e not} atomic is the caller's probe-then-insert sequence:
    two domains may miss on the same key concurrently, both compile, and
    both insert.  Among plans compiled under the {e same} generation that
    is benign — they are interchangeable, [add] is last-writer-wins, and
    the only cost is one duplicated compile on a cold race.  Across an
    invalidation it is {e not} benign: a compile that started before a
    view change could otherwise be inserted after it and be stamped with
    the {e new} generation, serving the old view as current.  The caller
    therefore captures a {!generation} token before compiling and passes
    it to {!add}, which refuses (counting a [stale_drop]) when either
    generation has moved.  Counters ([hits], [misses], …) are exact, each
    being bumped under the lock. *)

type key = {
  group : string option;  (** [None]: the query runs directly on the document *)
  policy_key : string option;
      (** canonical policy key ({!Smoqe_security.Policy_key}) for
          multi-tenant serving: tenants whose policies normalize to the
          same key share one cache entry per query instead of per-tenant
          duplicates.  [None] for the classic per-group path. *)
  query : string;  (** canonical text, {!Canon.to_key} *)
  mode : string;  (** ["dom"] | ["stax"] *)
  use_index : bool;
}

type 'plan t

type scope =
  | All_tags  (** conservative: swept by every subtree invalidation *)
  | Tags of string list
      (** the element names the plan's automaton tests; it survives any
          subtree update whose tag set is disjoint *)
(** The tag scope of a cached plan, for {!invalidate_tags}.  A scope is a
    freshness policy, not a correctness device: compiled plans depend on
    the view and the DTD, never on the document, so a warm plan that
    survives an update still answers correctly on the new tree. *)

val create : ?capacity:int -> unit -> 'plan t
(** [capacity] defaults to 128 plans. *)

val capacity : _ t -> int

val set_capacity : _ t -> int -> unit
(** Shrinking evicts least-recently-used entries down to the new bound;
    [0] clears the cache and disables it.  Negative capacities are
    clamped to [0]. *)

val length : _ t -> int
(** Live entries, stale ones included until a probe or eviction drops
    them. *)

val find : 'plan t -> key -> 'plan option
(** Probe the cache.  A current entry is refreshed to most-recently-used
    and counted as a hit.  A stale entry (older generation) is removed
    and counted under [stale_drops] — {e not} as a miss, because the
    caller may re-probe under another key before conceding the miss;
    concede with {!record_miss}. *)

val record_miss : _ t -> unit
(** Count one compile forced by a cache miss.  No-op when disabled. *)

type gen
(** A generation token: the key's (global, group, policy-key) generation
    triple at the moment {!generation} was called. *)

val generation : _ t -> key -> gen
(** Capture the key's current generations.  Call {e before} reading the
    view (or any other invalidatable state) the plan will be compiled
    from, and hand the token to {!add}. *)

val add : 'plan t -> ?gen:gen -> ?scope:scope -> key -> 'plan -> unit
(** Insert (or replace) under the current generations, evicting the
    least-recently-used entry when full.  With [~gen], the insert is a
    no-op (counted under [stale_drops]) if either generation has moved
    since the token was captured — the plan was compiled against state
    that has been invalidated mid-flight and must not be served as
    current.  [~scope] (default [All_tags]) declares the entry's tag
    scope for {!invalidate_tags}.  No-op when disabled. *)

val invalidate_group : _ t -> string -> unit
(** The group's view changed: every plan rewritten through it is stale. *)

val invalidate_policy_key : _ t -> string -> unit
(** The shared artifacts under this canonical policy key were retired
    (its last tenant churned away): every plan cached under the key is
    stale.  Generational, like {!invalidate_group}. *)

val invalidate_all : _ t -> unit
(** The document (or everything) changed: all plans are stale.  Direct
    (group-less) plans are only invalidated here — they do not depend on
    any view. *)

val invalidate_tags : _ t -> string list -> int
(** Subtree-scoped invalidation after a functional update: eagerly
    remove every entry whose scope intersects the given element names
    (plus every [All_tags] entry), counting them under [tag_drops], and
    return how many died.  Warm entries with disjoint scopes survive —
    this is the point: a localized edit must not cool the whole cache.
    Eager rather than generational because only a subset dies. *)

val clear : _ t -> unit
(** Drop all entries and reset counters; generations survive. *)

(** {1 Counters} *)

val hits : _ t -> int
val misses : _ t -> int
val evictions : _ t -> int
val stale_drops : _ t -> int

val tag_drops : _ t -> int
(** Entries removed by {!invalidate_tags}. *)

val to_assoc : _ t -> (string * int) list
(** [hits]/[misses]/[evictions]/[stale_drops]/[tag_drops]/[entries]/
    [capacity], in the [Smoqe_hype.Stats.to_assoc] style for stats
    surfaces. *)
