(** Canonical text for Regular XPath queries — the cache-key half of the
    plan cache.

    Two query strings that denote the same expression must map to the same
    key, or the cache serves them as distinct plans and the hit rate
    collapses under trivially reformatted traffic.  [to_key] renders a
    normal form that is insensitive to whitespace and redundant
    parenthesization and flattens the right-nested spellings of [/], [|],
    [and] and [or] — while {e preserving} qualifier order: [[a and b]] and
    [[b and a]] stay distinct keys, because predicate evaluation order is
    observable in cost (and the rewriter keeps it).

    The normal form round-trips: parsing a key and canonicalizing again
    yields the same key, so raw query text that already {e is} canonical
    can probe the cache without being parsed at all. *)

val normalize : Smoqe_rxpath.Ast.path -> Smoqe_rxpath.Ast.path
(** Rebuild a path through the AST smart constructors, re-establishing
    their normal forms ([Seq]/[And] right-nesting, [Union]/[Or] branch
    dedup, [Star]/[Not] involution) on trees built by hand. *)

val to_key : Smoqe_rxpath.Ast.path -> string
(** The canonical rendering of [normalize p]. *)

val of_string : string -> (string, string) result
(** Parse query text and render its key.  [Error] is the parser's message
    for unusable text. *)
