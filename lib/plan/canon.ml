module Ast = Smoqe_rxpath.Ast
module Pretty = Smoqe_rxpath.Pretty
module Parser = Smoqe_rxpath.Parser

(* The parser already builds through the smart constructors, so parsed
   trees are in normal form; this pass makes [to_key] total over ASTs
   assembled directly (benches, tests, generators). *)
let rec normalize = function
  | (Ast.Self | Ast.Tag _ | Ast.Wildcard | Ast.Text) as p -> p
  | Ast.Seq (a, b) -> Ast.seq (normalize a) (normalize b)
  | Ast.Union (a, b) -> Ast.union (normalize a) (normalize b)
  | Ast.Star p -> Ast.star (normalize p)
  | Ast.Filter (p, q) -> Ast.filter (normalize p) (normalize_qual q)

and normalize_qual = function
  | Ast.True -> Ast.True
  | Ast.Exists p -> Ast.Exists (normalize p)
  | Ast.Value_eq (p, v) -> Ast.Value_eq (normalize p, v)
  | Ast.Not q -> Ast.q_not (normalize_qual q)
  | Ast.And (a, b) -> Ast.q_and (normalize_qual a) (normalize_qual b)
  | Ast.Or (a, b) -> Ast.q_or (normalize_qual a) (normalize_qual b)

let to_key p = Pretty.path_to_string (normalize p)

let of_string text =
  Result.map to_key (Parser.path_of_string text)
