(* The compiled-plan cache: canonical keys, LRU semantics, generation
   invalidation, and the rule that makes caching safe to trust — nothing
   that failed to compile is ever served from the cache. *)

module Canon = Smoqe_plan.Canon
module Plan_cache = Smoqe_plan.Plan_cache
module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Stats = Smoqe_hype.Stats
module Error = Smoqe_robust.Error
module Failpoint = Smoqe_robust.Failpoint
module Serializer = Smoqe_xml.Serializer
module Hospital = Smoqe_workload.Hospital
module Rx_parser = Smoqe_rxpath.Parser
module Ast = Smoqe_rxpath.Ast

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let parse s = ok (Rx_parser.path_of_string s)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = (i + nl <= hl) && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- canonicalization ------------------------------------------------------ *)

let test_canon_whitespace_parens () =
  List.iter
    (fun (a, b) ->
      Alcotest.(check string)
        (a ^ " ~ " ^ b)
        (Canon.to_key (parse a))
        (Canon.to_key (parse b)))
    [
      ("a/b", "  a /  (b) ");
      ("a/b/c", "(a/b)/c");
      ("a | b | c", "(a | b) | c");
      ("a[b and c and d]", "a[(b and c) and d]");
      ("//medication", "// medication");
      ("a[b = 'x']", "a[ b = 'x' ]");
      ("(a/b)*/c", "((a/b))*/c");
    ]

let test_canon_order_preserved () =
  (* Qualifier and union order are observable (evaluation cost, answer
     order): canonicalization must keep them distinct. *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (a ^ " /~ " ^ b)
        false
        (Canon.to_key (parse a) = Canon.to_key (parse b)))
    [
      ("a[b and c]", "a[c and b]");
      ("a[b or c]", "a[c or b]");
      ("a | b", "b | a");
      ("a/b", "b/a");
    ]

let test_canon_round_trip () =
  (* Parsing a key and canonicalizing again is the identity — the property
     that lets raw canonical text probe the cache without being parsed. *)
  List.iter
    (fun (_, text) ->
      let key = Canon.to_key (parse text) in
      Alcotest.(check string) text key (Canon.to_key (parse key)))
    (Smoqe_workload.Queries.suite @ Smoqe_workload.Queries.view_suite
   @ Smoqe_workload.Queries.bib_suite)

let test_canon_normalize_hand_built () =
  (* Hand-assembled ASTs (benches, generators) reach the same key as their
     parsed spelling. *)
  let hand = Ast.Seq (Ast.Seq (Ast.Tag "a", Ast.Tag "b"), Ast.Tag "c") in
  Alcotest.(check string) "right-nested"
    (Canon.to_key (parse "a/b/c"))
    (Canon.to_key hand)

(* --- cache mechanics ------------------------------------------------------- *)

let key ?group ?(mode = "dom") ?(use_index = false) query =
  { Plan_cache.group; policy_key = None; query; mode; use_index }

let test_lru_eviction_order () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c (key "a") 1;
  Plan_cache.add c (key "b") 2;
  (* touch "a": "b" becomes the LRU victim *)
  Alcotest.(check (option int)) "a hit" (Some 1) (Plan_cache.find c (key "a"));
  Plan_cache.add c (key "c") 3;
  Alcotest.(check (option int)) "b evicted" None (Plan_cache.find c (key "b"));
  Alcotest.(check (option int)) "a survives" (Some 1) (Plan_cache.find c (key "a"));
  Alcotest.(check (option int)) "c present" (Some 3) (Plan_cache.find c (key "c"));
  Alcotest.(check int) "one eviction" 1 (Plan_cache.evictions c);
  Alcotest.(check int) "two entries" 2 (Plan_cache.length c)

let test_capacity_zero_disables () =
  let c = Plan_cache.create ~capacity:0 () in
  Plan_cache.add c (key "a") 1;
  Alcotest.(check (option int)) "no entry" None (Plan_cache.find c (key "a"));
  Alcotest.(check int) "nothing stored" 0 (Plan_cache.length c);
  Plan_cache.record_miss c;
  Alcotest.(check int) "no traffic recorded" 0 (Plan_cache.misses c)

let test_shrink_evicts () =
  let c = Plan_cache.create ~capacity:4 () in
  List.iter (fun q -> Plan_cache.add c (key q) 0) [ "a"; "b"; "c"; "d" ];
  ignore (Plan_cache.find c (key "a"));
  Plan_cache.set_capacity c 1;
  Alcotest.(check int) "down to one" 1 (Plan_cache.length c);
  Alcotest.(check (option int)) "the MRU one" (Some 0)
    (Plan_cache.find c (key "a"))

let test_group_generations () =
  let c = Plan_cache.create () in
  Plan_cache.add c (key ~group:"g1" "q") 1;
  Plan_cache.add c (key ~group:"g2" "q") 2;
  Plan_cache.add c (key "q") 3;
  Plan_cache.invalidate_group c "g1";
  Alcotest.(check (option int)) "g1 stale" None
    (Plan_cache.find c (key ~group:"g1" "q"));
  Alcotest.(check (option int)) "g2 current" (Some 2)
    (Plan_cache.find c (key ~group:"g2" "q"));
  Alcotest.(check (option int)) "direct current" (Some 3)
    (Plan_cache.find c (key "q"));
  Alcotest.(check int) "stale drop counted" 1 (Plan_cache.stale_drops c);
  Plan_cache.invalidate_all c;
  Alcotest.(check (option int)) "all stale" None
    (Plan_cache.find c (key ~group:"g2" "q"));
  Alcotest.(check (option int)) "direct stale too" None
    (Plan_cache.find c (key "q"))

let test_gen_fenced_add () =
  (* The mid-compile invalidation fence: an insert carrying a generation
     token captured before the invalidation must be refused — otherwise a
     plan compiled through the old view would be stamped current. *)
  let c = Plan_cache.create () in
  let k = key ~group:"g" "q" in
  let gen = Plan_cache.generation c k in
  Plan_cache.invalidate_group c "g";
  Plan_cache.add c ~gen k 1;
  Alcotest.(check (option int)) "stale insert refused" None
    (Plan_cache.find c k);
  Alcotest.(check int) "refusal counted" 1 (Plan_cache.stale_drops c);
  (* same dance with the global generation *)
  let gen = Plan_cache.generation c k in
  Plan_cache.invalidate_all c;
  Plan_cache.add c ~gen k 2;
  Alcotest.(check (option int)) "globally stale insert refused" None
    (Plan_cache.find c k);
  (* a token captured after the invalidation admits the insert *)
  let gen = Plan_cache.generation c k in
  Plan_cache.add c ~gen k 3;
  Alcotest.(check (option int)) "fresh insert lands" (Some 3)
    (Plan_cache.find c k)

(* --- through the engine ---------------------------------------------------- *)

let hospital_engine () =
  let doc = Hospital.generate ~seed:31 ~n_patients:4 ~recursion_depth:2 () in
  let e = Engine.of_tree ~dtd:Hospital.dtd doc in
  ok (Engine.register_policy e ~group:"researchers" Hospital.policy);
  e

let hit_of outcome = outcome.Engine.stats.Stats.plan_cache_hit

let test_engine_warm_hit () =
  let e = hospital_engine () in
  let first = ok (Engine.query e ~group:"researchers" "//medication") in
  Alcotest.(check int) "cold" 0 (hit_of first);
  let second = ok (Engine.query e ~group:"researchers" "//medication") in
  Alcotest.(check int) "warm" 1 (hit_of second);
  Alcotest.(check (list int)) "same answers" first.Engine.answers
    second.Engine.answers;
  Alcotest.(check (list string)) "byte-identical xml" first.Engine.answer_xml
    second.Engine.answer_xml;
  (* reformatted spelling of the same query also hits *)
  let third = ok (Engine.query e ~group:"researchers" "  // ( medication ) ") in
  Alcotest.(check int) "canonical hit" 1 (hit_of third)

let test_engine_capacity_zero () =
  let e = hospital_engine () in
  Engine.set_plan_cache_capacity e 0;
  let q () = ok (Engine.query e "//pname") in
  ignore (q ());
  Alcotest.(check int) "never warm" 0 (hit_of (q ()));
  Alcotest.(check int) "nothing cached" 0
    (List.assoc "entries" (Engine.plan_cache_counters e))

let test_engine_group_isolation () =
  let e = hospital_engine () in
  ok (Engine.register_policy e ~group:"staff" Hospital.policy);
  let warm group = ignore (ok (Engine.query e ~group "//medication")) in
  warm "researchers";
  warm "researchers";
  warm "staff";
  warm "staff";
  (* re-registering researchers invalidates researchers' plans only *)
  ok (Engine.register_policy e ~group:"researchers" Hospital.policy);
  Alcotest.(check int) "researchers cold again" 0
    (hit_of (ok (Engine.query e ~group:"researchers" "//medication")));
  Alcotest.(check int) "staff still warm" 1
    (hit_of (ok (Engine.query e ~group:"staff" "//medication")))

let test_engine_replace_document () =
  let e = hospital_engine () in
  ignore (ok (Engine.query e "//pname"));
  Alcotest.(check int) "warm before swap" 1 (hit_of (ok (Engine.query e "//pname")));
  let bigger = Hospital.generate ~seed:32 ~n_patients:6 ~recursion_depth:2 () in
  ok (Engine.replace_document e bigger);
  let after = ok (Engine.query e "//pname") in
  Alcotest.(check int) "cold after swap" 0 (hit_of after);
  let reference =
    (Smoqe_baseline.Naive.run bigger (parse "//pname")).Smoqe_baseline.Naive
    .answers
  in
  Alcotest.(check (list int)) "answers from the new tree" reference
    (List.sort_uniq compare after.Engine.answers);
  (* a tree that violates the standing DTD is refused, engine unharmed *)
  (match
     Engine.replace_document e
       (Smoqe_xml.Tree.of_source (Smoqe_xml.Tree.E ("zoo", [], [])))
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "invalid replacement accepted");
  Alcotest.(check (list int)) "still serving" reference
    (List.sort_uniq compare (ok (Engine.query e "//pname")).Engine.answers)

let test_failpoint_never_populates () =
  let e = hospital_engine () in
  Failpoint.with_failpoints "plan.compile=once" (fun () ->
      match Engine.query_robust e ~group:"researchers" "//medication" with
      | Error (Error.Io_error msg) ->
        Alcotest.(check bool) "names the site" true (contains msg "plan.compile")
      | Error err -> Alcotest.failf "wrong class: %s" (Error.to_string err)
      | Ok _ -> Alcotest.fail "fault did not surface");
  Alcotest.(check int) "cache unpopulated" 0
    (List.assoc "entries" (Engine.plan_cache_counters e));
  (* the failpoint is gone: the next run compiles cold, then serves warm *)
  let again = ok (Engine.query e ~group:"researchers" "//medication") in
  Alcotest.(check int) "recompiled, not served stale" 0 (hit_of again);
  Alcotest.(check int) "then warm" 1
    (hit_of (ok (Engine.query e ~group:"researchers" "//medication")))

let test_budget_checked_on_hit () =
  let e = hospital_engine () in
  ignore (ok (Engine.query e "//pname"));
  (* the cached plan is over this budget: the hit must still refuse *)
  match
    Engine.query_robust e
      ~budget:(Smoqe_robust.Budget.create ~max_states:2 ())
      "//pname"
  with
  | Error (Error.Budget_exceeded { what; _ }) ->
    Alcotest.(check string) "dimension" "max_states" what
  | Error err -> Alcotest.failf "wrong error: %s" (Error.to_string err)
  | Ok _ -> Alcotest.fail "state budget ignored on cache hit"

let test_sessions_share_cache () =
  let e = hospital_engine () in
  let s1 = ok (Session.login e (Session.Member "researchers")) in
  let s2 = ok (Session.login e (Session.Member "researchers")) in
  ignore (ok (Session.run s1 "//medication"));
  Alcotest.(check int) "second session served warm" 1
    (hit_of (ok (Session.run s2 "//medication")))

let () =
  Alcotest.run "smoqe_plan"
    [
      ( "canon",
        [
          Alcotest.test_case "whitespace and parens" `Quick
            test_canon_whitespace_parens;
          Alcotest.test_case "order preserved" `Quick test_canon_order_preserved;
          Alcotest.test_case "round trip" `Quick test_canon_round_trip;
          Alcotest.test_case "hand-built ASTs" `Quick
            test_canon_normalize_hand_built;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "capacity 0 disables" `Quick
            test_capacity_zero_disables;
          Alcotest.test_case "shrink evicts" `Quick test_shrink_evicts;
          Alcotest.test_case "group generations" `Quick test_group_generations;
          Alcotest.test_case "generation-fenced add" `Quick test_gen_fenced_add;
        ] );
      ( "engine",
        [
          Alcotest.test_case "warm hit" `Quick test_engine_warm_hit;
          Alcotest.test_case "capacity 0" `Quick test_engine_capacity_zero;
          Alcotest.test_case "group isolation" `Quick
            test_engine_group_isolation;
          Alcotest.test_case "document replacement" `Quick
            test_engine_replace_document;
          Alcotest.test_case "failed compile never cached" `Quick
            test_failpoint_never_populates;
          Alcotest.test_case "budget checked on hit" `Quick
            test_budget_checked_on_hit;
          Alcotest.test_case "sessions share" `Quick test_sessions_share_cache;
        ] );
    ]
