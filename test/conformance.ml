(* W3C-xmlconf-style conformance harness over the committed corpus in
   test/corpus/.  The catalog is the directory layout — each case is one
   .xml file, tagged by the directory it lives in:

     corpus/valid/           well-formed XML: must be accepted, and the
                             Pull (StAX) stream must be event-for-event
                             identical to Parser.events_of_tree of the
                             DOM parse, under both keep_ws settings
     corpus/accepted/        accepted-with-events: documents beyond
                             strict XML 1.0 that this parser is
                             deliberately lenient about ("--" in
                             comments, "]]>" in text, raw control
                             bytes).  Same DOM ≡ StAX obligation.
     corpus/not-wellformed/  must be rejected, by both modes, with a
                             positioned error (line, col >= 1)
     corpus/regressions/     fuzz-found inputs, replayed against the
                             totality contract: any verdict but Bug

   Run via `dune runtest` or `dune build @conformance`. *)

module Fuzz = Smoqe_workload.Fuzz

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let cases_of dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
    |> List.sort compare
    |> List.map (fun f -> Filename.concat dir f)
  else []

let n_cases = ref 0
let n_failures = ref 0

let failf path fmt =
  Printf.ksprintf
    (fun msg ->
      incr n_failures;
      Printf.eprintf "FAIL %s: %s\n%!" path msg)
    fmt

let check_class ~dir ~expect =
  let paths = cases_of dir in
  List.iter
    (fun path ->
      incr n_cases;
      let input = read_file path in
      expect path input)
    paths;
  List.length paths

let expect_accepted path input =
  List.iter
    (fun keep_ws ->
      match Fuzz.check ~keep_ws input with
      | Fuzz.Accepted n ->
        if n = 0 then failf path "accepted with an empty event stream"
      | Fuzz.Rejected (l, c, m) ->
        failf path "rejected (keep_ws:%b) at %d:%d: %s" keep_ws l c m
      | Fuzz.Budgeted w -> failf path "budget trip without a budget: %s" w
      | Fuzz.Bug m -> failf path "totality violation: %s" m)
    [ false; true ]

(* Chunk-boundary battery: a valid document must yield the identical
   event stream whether parsed in one piece or through [of_channel]
   refills of 1, 2 or 7 bytes — token spans and the scratch decoder must
   never depend on where a refill lands relative to a token. *)
module Pull = Smoqe_xml.Pull

let events_of pull =
  List.rev (Pull.fold pull ~init:[] ~f:(fun acc ev -> ev :: acc))

let expect_chunked path input =
  List.iter
    (fun keep_ws ->
      let reference = events_of (Pull.of_string ~keep_ws input) in
      List.iter
        (fun chunk_size ->
          let ic = open_in_bin path in
          match events_of (Pull.of_channel ~keep_ws ~chunk_size ic) with
          | got ->
            close_in ic;
            if got <> reference then
              failf path "chunk_size %d (keep_ws:%b) changes the event stream"
                chunk_size keep_ws
          | exception Pull.Error (l, c, m) ->
            close_in_noerr ic;
            failf path "chunk_size %d (keep_ws:%b) rejected at %d:%d: %s"
              chunk_size keep_ws l c m
          | exception e ->
            close_in_noerr ic;
            failf path "chunk_size %d (keep_ws:%b) raised %s" chunk_size
              keep_ws (Printexc.to_string e))
        [ 1; 2; 7 ])
    [ false; true ]

let expect_accepted_chunked path input =
  expect_accepted path input;
  expect_chunked path input

let expect_rejected path input =
  match Fuzz.check input with
  | Fuzz.Rejected (l, c, _) ->
    if l < 1 || c < 1 then failf path "rejection lacks a position (%d:%d)" l c
  | Fuzz.Accepted _ -> failf path "accepted a not-wellformed document"
  | Fuzz.Budgeted w -> failf path "budget trip without a budget: %s" w
  | Fuzz.Bug m -> failf path "totality violation: %s" m

let expect_total path input =
  (* Fuzz-found regressions: any typed outcome is fine, a Bug is not —
     and the verdict must hold under a small budget too. *)
  (match Fuzz.check input with
  | Fuzz.Bug m -> failf path "totality violation: %s" m
  | Fuzz.Accepted _ | Fuzz.Rejected _ | Fuzz.Budgeted _ -> ());
  match
    Fuzz.check
      ~mk_budget:(fun () ->
        Smoqe_robust.Budget.create ~max_depth:512 ~max_nodes:200_000 ())
      input
  with
  | Fuzz.Bug m -> failf path "totality violation (budgeted): %s" m
  | Fuzz.Accepted _ | Fuzz.Rejected _ | Fuzz.Budgeted _ -> ()

let () =
  let valid = check_class ~dir:"corpus/valid" ~expect:expect_accepted_chunked in
  let lenient =
    check_class ~dir:"corpus/accepted" ~expect:expect_accepted_chunked
  in
  let nwf =
    check_class ~dir:"corpus/not-wellformed" ~expect:expect_rejected
  in
  let regr = check_class ~dir:"corpus/regressions" ~expect:expect_total in
  Printf.printf
    "conformance: %d cases (%d valid, %d accepted-with-events, %d \
     not-wellformed, %d regressions), %d failure(s)\n"
    !n_cases valid lenient nwf regr !n_failures;
  (* An empty catalog means the corpus was not copied next to the runner
     — that is a harness bug, not a pass. *)
  if valid = 0 || nwf = 0 then begin
    prerr_endline "conformance: corpus missing or empty";
    exit 1
  end;
  if !n_failures > 0 then exit 1
