(* The table layer in isolation: frozen and dynamic specialization,
   wildcard/text columns, unseen-tag behavior, memo eviction under a tiny
   cap, and plan-riding invalidation through replace_document. *)

module Tree = Smoqe_xml.Tree
module Parser = Smoqe_xml.Parser
module Pull = Smoqe_xml.Pull
module Nfa = Smoqe_automata.Nfa
module Mfa = Smoqe_automata.Mfa
module Compile = Smoqe_automata.Compile
module Tables = Smoqe_automata.Tables
module Eval_dom = Smoqe_hype.Eval_dom
module Eval_stax = Smoqe_hype.Eval_stax
module Stats = Smoqe_hype.Stats
module Engine = Smoqe.Engine
module Rx_parser = Smoqe_rxpath.Parser

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let parse s = ok (Rx_parser.path_of_string s)
let compile s = Compile.compile (parse s)
let tree_of s = Parser.tree_of_string s

(* Raw matched targets of [tag] across all states, compared against a
   direct scan of the NFA's rows — the table must be a faithful cache. *)
let check_against_nfa ~msg tb tree =
  let nfa = Tables.nfa tb in
  for node = 0 to Tree.n_nodes tree - 1 do
    let tag = Tree.tag_id tree node in
    let is_element = Tree.is_element tree node in
    let name = Tree.name tree node in
    for s = 0 to nfa.Nfa.n_states - 1 do
      let expected =
        List.filter_map
          (fun (test, s') ->
            if Nfa.matches_name test ~is_element ~name then Some s' else None)
          nfa.Nfa.delta.(s)
        |> List.sort_uniq compare
      in
      let got =
        Array.to_list (Tables.targets tb s tag) |> List.sort_uniq compare
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s: node %d state %d" msg node s)
        expected got
    done
  done

let test_frozen_faithful () =
  let doc =
    tree_of
      "<r><a><b>x</b></a><c><a/><b>y</b></c><unrelated><b/></unrelated></r>"
  in
  List.iter
    (fun q ->
      let mfa = compile q in
      let tb = Tables.of_tree mfa.Mfa.nfa doc in
      Alcotest.(check bool) (q ^ ": frozen") true (Tables.is_frozen tb);
      Alcotest.(check bool) (q ^ ": built for doc") true
        (Tables.built_for tb doc);
      check_against_nfa ~msg:q tb doc)
    [ "//b"; "a/b/text()"; "//a[b = 'x']/b"; "(a/b)* | c//b"; "//b/text()" ]

(* The wildcard column answers for tags no state names; the text column
   answers for text nodes. *)
let test_wildcard_and_text_rows () =
  let doc = tree_of "<r><a>hello</a><zzz/></r>" in
  let mfa = compile "//a/text()" in
  let tb = Tables.of_tree mfa.Mfa.nfa doc in
  let nfa = Tables.nfa tb in
  let zzz = Option.get (Tree.id_of_tag doc "zzz") in
  let a = Option.get (Tree.id_of_tag doc "a") in
  for s = 0 to nfa.Nfa.n_states - 1 do
    (* 'zzz' appears in no query test: its column is exactly the states
       reachable via Any_element — the wildcard row. *)
    Alcotest.(check (list int))
      (Printf.sprintf "state %d: zzz = wildcard semantics" s)
      (List.filter_map
         (fun (test, s') ->
           if Nfa.matches_name test ~is_element:true ~name:"zzz" then Some s'
           else None)
         nfa.Nfa.delta.(s)
      |> List.sort_uniq compare)
      (Array.to_list (Tables.targets tb s zzz) |> List.sort_uniq compare);
    (* the text column matches Text_node tests only *)
    Alcotest.(check (list int))
      (Printf.sprintf "state %d: text row" s)
      (List.filter_map
         (fun (test, s') ->
           if Nfa.matches_name test ~is_element:false ~name:"" then Some s'
           else None)
         nfa.Nfa.delta.(s)
      |> List.sort_uniq compare)
      (Array.to_list (Tables.targets tb s Tables.text_tag)
      |> List.sort_uniq compare);
    (* 'a' is named by the query: its column must include the Element
       matches, which the wildcard row alone would miss. *)
    ignore a
  done

let test_frozen_unknown_tag () =
  let doc = tree_of "<r><a/></r>" in
  let mfa = compile "//a" in
  let tb = Tables.of_tree mfa.Mfa.nfa doc in
  Alcotest.(check int) "unseen name is unknown_tag" Tables.unknown_tag
    (Tables.intern tb "never-in-doc");
  let nfa = Tables.nfa tb in
  for s = 0 to nfa.Nfa.n_states - 1 do
    (* unknown_tag resolves to the wildcard column *)
    Alcotest.(check (list int))
      (Printf.sprintf "state %d: unknown = wildcard" s)
      (List.filter_map
         (fun (test, s') ->
           if Nfa.matches_name test ~is_element:true ~name:"no-such" then
             Some s'
           else None)
         nfa.Nfa.delta.(s)
      |> List.sort_uniq compare)
      (Array.to_list (Tables.targets tb s Tables.unknown_tag)
      |> List.sort_uniq compare)
  done

(* Dynamic tables: automaton names are pre-interned, stream tags grow the
   table, and a grown tag's column still answers correctly. *)
let test_dynamic_growth () =
  let mfa = compile "//a/b" in
  let tb = Tables.dynamic mfa.Mfa.nfa in
  Alcotest.(check bool) "not frozen" false (Tables.is_frozen tb);
  let n0 = Tables.n_tags tb in
  let a = Tables.intern tb "a" in
  let b = Tables.intern tb "b" in
  Alcotest.(check bool) "automaton names pre-interned" true
    (a < n0 && b < n0 && a >= 0 && b >= 0);
  (* interning many unseen tags grows the table without disturbing the
     pre-interned columns *)
  let fresh =
    List.init 100 (fun i -> Tables.intern tb (Printf.sprintf "street%d" i))
  in
  Alcotest.(check int) "grown by 100" (n0 + 100) (Tables.n_tags tb);
  Alcotest.(check int) "interning is idempotent" (List.hd fresh)
    (Tables.intern tb "street0");
  let nfa = Tables.nfa tb in
  for s = 0 to nfa.Nfa.n_states - 1 do
    List.iter
      (fun (tag, name) ->
        Alcotest.(check (list int))
          (Printf.sprintf "state %d tag %s" s name)
          (List.filter_map
             (fun (test, s') ->
               if Nfa.matches_name test ~is_element:true ~name then Some s'
               else None)
             nfa.Nfa.delta.(s)
          |> List.sort_uniq compare)
          (Array.to_list (Tables.targets tb s tag) |> List.sort_uniq compare))
      [ (a, "a"); (b, "b"); (List.hd fresh, "street0") ]
  done

(* A stream whose tags the automaton never mentions must not disturb the
   run: unseen tags take the wildcard column, and the answers match both
   the generic StAX engine and the DOM engine. *)
let test_stax_unseen_tags () =
  let xml =
    "<root><noise><a><b>1</b></a></noise><a><hum/><b>2</b></a><fizz><buzz><a>\
     <b>3</b></a></buzz></fizz></root>"
  in
  let mfa = compile "//a/b" in
  let with_tables =
    Eval_stax.run ~use_tables:true mfa (Pull.of_string xml)
  in
  let generic = Eval_stax.run ~use_tables:false mfa (Pull.of_string xml) in
  Alcotest.(check (list int))
    "stax tables = stax generic" generic.Eval_stax.answers
    with_tables.Eval_stax.answers;
  let doc = tree_of xml in
  let dom = Eval_dom.run mfa doc in
  Alcotest.(check (list int))
    "stax tables = dom" dom.Eval_dom.answers with_tables.Eval_stax.answers;
  Alcotest.(check bool) "memo was exercised" true
    (with_tables.Eval_stax.stats.Stats.memo_hits
     + with_tables.Eval_stax.stats.Stats.memo_misses
    > 0);
  Alcotest.(check int) "generic memo quiet" 0
    (generic.Eval_stax.stats.Stats.memo_hits
    + generic.Eval_stax.stats.Stats.memo_misses)

(* A tiny memo_cap forces registry flushes mid-run; answers must not
   change and the evictions must be counted. *)
let test_memo_eviction () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<r>";
  for i = 0 to 40 do
    Buffer.add_string buf (Printf.sprintf "<t%d><a><b>x</b></a></t%d>" i i)
  done;
  Buffer.add_string buf "</r>";
  let doc = tree_of (Buffer.contents buf) in
  let mfa = compile "//a/b | //b//a | (t1/a)*//b" in
  let reference = Eval_dom.run ~use_tables:false mfa doc in
  let tables = Tables.of_tree mfa.Mfa.nfa doc in
  let tiny = Eval_dom.run ~tables ~memo_cap:2 mfa doc in
  Alcotest.(check (list int))
    "answers survive flushes" reference.Eval_dom.answers tiny.Eval_dom.answers;
  Alcotest.(check bool) "evictions counted" true
    (tiny.Eval_dom.stats.Stats.memo_evictions > 0);
  let roomy = Eval_dom.run ~tables mfa doc in
  Alcotest.(check (list int))
    "roomy cap agrees" reference.Eval_dom.answers roomy.Eval_dom.answers;
  Alcotest.(check int) "roomy cap never flushes" 0
    (roomy.Eval_dom.stats.Stats.memo_evictions)

(* Plan-riding specialization: the second Dom query is a plan hit and must
   reuse the frozen table (no new specialization); replace_document drops
   the plan and its table, and answers track the new tree. *)
let test_replace_document_invalidation () =
  let doc_a = tree_of "<r><a><b>one</b></a><a><b>two</b></a></r>" in
  let engine = Engine.of_tree doc_a in
  let q = "//a/b" in
  let cold = ok (Engine.query engine q) in
  Alcotest.(check int) "cold: 2 answers on A" 2 (List.length cold.Engine.answers);
  Alcotest.(check bool) "cold: memo active" true
    (cold.Engine.stats.Stats.memo_hits + cold.Engine.stats.Stats.memo_misses
    > 0);
  let warm = ok (Engine.query engine q) in
  Alcotest.(check int) "warm: plan hit" 1
    warm.Engine.stats.Stats.plan_cache_hit;
  Alcotest.(check int) "warm: no new specialization" 0
    warm.Engine.stats.Stats.table_spec_us;
  (* a different tag universe: stale tag ids would misread this tree *)
  let doc_b =
    tree_of
      "<r><z0/><z1/><z2/><z3/><z4/><a><b>three</b></a><z5><a><b>four</b></a>\
       </z5></r>"
  in
  ok (Engine.replace_document engine doc_b);
  let after = ok (Engine.query engine q) in
  Alcotest.(check int) "after replace: plans dropped" 0
    after.Engine.stats.Stats.plan_cache_hit;
  Alcotest.(check int) "after replace: 2 answers on B" 2
    (List.length after.Engine.answers);
  let generic = ok (Engine.query engine ~use_tables:false q) in
  Alcotest.(check (list string))
    "after replace: tables = generic" generic.Engine.answer_xml
    after.Engine.answer_xml

(* use_tables:false end to end: identical output, no table counters. *)
let test_disabled_counters_quiet () =
  let doc = tree_of "<r><a><b>x</b></a><c><b>y</b></c></r>" in
  let engine = Engine.of_tree doc in
  List.iter
    (fun mode ->
      let on = ok (Engine.query engine ~mode "//b") in
      let off = ok (Engine.query engine ~mode ~use_tables:false "//b") in
      Alcotest.(check (list string)) "same xml" on.Engine.answer_xml
        off.Engine.answer_xml;
      Alcotest.(check int) "no memo traffic" 0
        (off.Engine.stats.Stats.memo_hits + off.Engine.stats.Stats.memo_misses);
      Alcotest.(check int) "no specialization" 0
        off.Engine.stats.Stats.table_spec_us)
    [ Engine.Dom; Engine.Stax ]

let () =
  Alcotest.run "smoqe_tables"
    [
      ( "specialization",
        [
          Alcotest.test_case "frozen tables faithful to NFA" `Quick
            test_frozen_faithful;
          Alcotest.test_case "wildcard and text rows" `Quick
            test_wildcard_and_text_rows;
          Alcotest.test_case "frozen: unseen name is unknown_tag" `Quick
            test_frozen_unknown_tag;
          Alcotest.test_case "dynamic: growth and pre-interning" `Quick
            test_dynamic_growth;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "stax: unseen stream tags" `Quick
            test_stax_unseen_tags;
          Alcotest.test_case "memo eviction under tiny cap" `Quick
            test_memo_eviction;
          Alcotest.test_case "replace_document invalidates tables" `Quick
            test_replace_document_invalidation;
          Alcotest.test_case "disabled: quiet counters" `Quick
            test_disabled_counters_quiet;
        ] );
    ]
