(* Tests for the shared-automaton batch layer: prefix-sharing merge
   counts, per-query accept demultiplexing, lazy-DFA epoch flushes
   mid-batch, and totality of Stats.merge_into over the record. *)

module Xml_parser = Smoqe_xml.Parser
module Rx_parser = Smoqe_rxpath.Parser
module Compile = Smoqe_automata.Compile
module Mfa = Smoqe_automata.Mfa
module Shared = Smoqe_automata.Shared
module Stats = Smoqe_hype.Stats
module Eval_dom = Smoqe_hype.Eval_dom
module Eval_stax = Smoqe_hype.Eval_stax

let parse s =
  match Rx_parser.path_of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.fail (Printf.sprintf "parse %S: %s" s msg)

let compile s = Compile.compile (parse s)
let merge qs = Shared.merge (Array.of_list (List.map compile qs))

(* --- merge construction ------------------------------------------------- *)

let test_merge_empty () =
  Alcotest.check_raises "empty batch"
    (Invalid_argument "Shared.merge: empty batch") (fun () ->
      ignore (Shared.merge [||]))

let test_merge_single () =
  let single = compile "//a/b" in
  let sh = Shared.merge [| single |] in
  Alcotest.(check int) "one query" 1 sh.Shared.n_queries;
  Alcotest.(check int) "accept width" 1 sh.Shared.accept_width;
  (* only the fresh root is added on top of the member *)
  Alcotest.(check int) "merged = member + root"
    (Mfa.n_states single + 1)
    sh.Shared.merged_states

let test_prefix_collapse () =
  (* the //a prefix spine is shared; only the b/c tails diverge *)
  let sh = merge [ "//a/b"; "//a/c" ] in
  Alcotest.(check int) "two queries" 2 sh.Shared.n_queries;
  Alcotest.(check bool) "states saved" true (Shared.saved_states sh > 0);
  Alcotest.(check bool) "prefix hits counted" true (sh.Shared.prefix_hits > 0);
  Alcotest.(check int) "disjoint accepts" 1 sh.Shared.accept_width

let test_identical_collapse () =
  (* two separate compilations of the same query collapse completely:
     every state of the second fuses into the first *)
  let single = compile "//a/b" in
  let sh = merge [ "//a/b"; "//a/b" ] in
  Alcotest.(check int) "full collapse"
    (Mfa.n_states single + 1)
    sh.Shared.merged_states;
  Alcotest.(check int) "every state fused" (Mfa.n_states single)
    sh.Shared.prefix_hits;
  Alcotest.(check int) "shared accept" 2 sh.Shared.accept_width;
  (* the shared accept state is owned by both queries, in order *)
  let widest =
    Array.fold_left
      (fun acc ow -> if Array.length ow > Array.length acc then ow else acc)
      [||] sh.Shared.owners
  in
  Alcotest.(check (list int)) "owner order" [ 0; 1 ] (Array.to_list widest)

let test_qualifier_states_not_fused () =
  (* checked states and atom subgraphs keep per-query identity: merging a
     qualifier query with itself may still share the check-free prefix but
     must not collapse fully *)
  let single = compile "//a[b]/c" in
  let sh = merge [ "//a[b]/c"; "//a[b]/c" ] in
  Alcotest.(check bool) "not a full collapse" true
    (sh.Shared.merged_states > Mfa.n_states single + 1)

(* --- engine demultiplexing ---------------------------------------------- *)

let doc_text =
  "<r><a><b>1</b><c>2</c><a><b>3</b></a></a><d><a><c>4</c></a></d></r>"

let batch = [ "//a/b"; "//a/c"; "//a[b]/c"; "//a/b" (* duplicate *) ]

let check_demux ~use_tables () =
  let tree = Xml_parser.tree_of_string doc_text in
  let sh = merge batch in
  let m = Eval_dom.run_many ~use_tables sh tree in
  Alcotest.(check int) "one slot per query" (List.length batch)
    (Array.length m.Eval_dom.by_query);
  List.iteri
    (fun i q ->
      let solo = Eval_dom.run ~use_tables (compile q) tree in
      Alcotest.(check (list int))
        (Printf.sprintf "dom demux %d: %s" i q)
        solo.Eval_dom.answers
        m.Eval_dom.by_query.(i))
    batch;
  Alcotest.(check int) "batch counter" (List.length batch)
    m.Eval_dom.m_stats.Stats.batch_queries;
  Alcotest.(check bool) "width recorded" true
    (m.Eval_dom.m_stats.Stats.accept_width >= 2);
  (* same demultiplexing over the event stream *)
  let events = Xml_parser.events_of_tree tree in
  let ms = Eval_stax.run_many_events ~use_tables sh events in
  List.iteri
    (fun i q ->
      let solo = Eval_stax.run_events ~use_tables (compile q) events in
      Alcotest.(check (list int))
        (Printf.sprintf "stax demux %d: %s" i q)
        solo.Eval_stax.answers
        ms.Eval_stax.by_query.(i))
    batch

let test_demux_tables () = check_demux ~use_tables:true ()
let test_demux_generic () = check_demux ~use_tables:false ()

let test_memo_flush_mid_batch () =
  (* a tiny memo cap forces lazy-DFA epoch flushes during the shared pass;
     answers must match the generic engine exactly *)
  let tree = Xml_parser.tree_of_string doc_text in
  let sh = merge batch in
  let flushed = Eval_dom.run_many ~use_tables:true ~memo_cap:2 sh tree in
  let generic = Eval_dom.run_many ~use_tables:false sh tree in
  Alcotest.(check bool) "flushes happened" true
    (flushed.Eval_dom.m_stats.Stats.memo_evictions > 0);
  Array.iteri
    (fun i answers ->
      Alcotest.(check (list int))
        (Printf.sprintf "flush-safe query %d" i)
        generic.Eval_dom.by_query.(i) answers)
    flushed.Eval_dom.by_query

(* --- stats totality ------------------------------------------------------ *)

let test_stats_merge_total () =
  (* Stats.t is an all-int record: poke every physical field to a non-zero
     value by reflection, merge into a zero record, and require every field
     to come through.  A counter added to the record but forgotten in
     merge_into (or in to_assoc) fails here. *)
  let s = Stats.zero () in
  let r = Obj.repr s in
  let n = Obj.size r in
  for i = 0 to n - 1 do
    assert (Obj.is_int (Obj.field r i));
    Obj.set_field r i (Obj.repr (i + 1))
  done;
  let into = Stats.zero () in
  Stats.merge_into ~into s;
  let ir = Obj.repr into in
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "field %d survives merge_into" i)
      true
      ((Obj.obj (Obj.field ir i) : int) > 0)
  done;
  Alcotest.(check int) "to_assoc covers the record" n
    (List.length (Stats.to_assoc s))

(* The tenancy counters ride the same record; pin their merge semantics
   by name (sums, like every other additive counter) so a rename or a
   max-style merge regression is caught even if the reflection pass
   above is ever loosened. *)
let test_stats_merge_tenancy () =
  let a = Stats.zero () and b = Stats.zero () in
  a.Stats.policy_key_hits <- 2;
  a.Stats.tenant_throttled <- 1;
  a.Stats.shard_fanout <- 4;
  b.Stats.policy_key_hits <- 3;
  b.Stats.tenant_throttled <- 5;
  b.Stats.shard_fanout <- 4;
  let into = Stats.zero () in
  Stats.merge_into ~into a;
  Stats.merge_into ~into b;
  Alcotest.(check int) "policy_key_hits sums" 5 into.Stats.policy_key_hits;
  Alcotest.(check int) "tenant_throttled sums" 6 into.Stats.tenant_throttled;
  Alcotest.(check int) "shard_fanout sums" 8 into.Stats.shard_fanout;
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (key ^ " exported by to_assoc")
        true
        (List.mem_assoc key (Stats.to_assoc into)))
    [ "policy_key_hits"; "tenant_throttled"; "shard_fanout" ]

let () =
  Alcotest.run "smoqe_shared"
    [
      ( "merge",
        [
          Alcotest.test_case "empty batch rejected" `Quick test_merge_empty;
          Alcotest.test_case "single query" `Quick test_merge_single;
          Alcotest.test_case "prefix collapse" `Quick test_prefix_collapse;
          Alcotest.test_case "identical collapse" `Quick
            test_identical_collapse;
          Alcotest.test_case "qualifier states stay private" `Quick
            test_qualifier_states_not_fused;
        ] );
      ( "demux",
        [
          Alcotest.test_case "dom+stax, tables" `Quick test_demux_tables;
          Alcotest.test_case "dom+stax, generic" `Quick test_demux_generic;
          Alcotest.test_case "memo flush mid-batch" `Quick
            test_memo_flush_mid_batch;
        ] );
      ( "stats",
        [
          Alcotest.test_case "merge_into is total" `Quick
            test_stats_merge_total;
          Alcotest.test_case "tenancy counters merge as sums" `Quick
            test_stats_merge_tenancy;
        ] );
    ]
