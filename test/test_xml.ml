(* Tests for the XML substrate: Tree, Pull, Parser, Serializer, Dtd,
   Dtd_parser, Validator. *)

module Tree = Smoqe_xml.Tree
module Pull = Smoqe_xml.Pull
module Parser = Smoqe_xml.Parser
module Serializer = Smoqe_xml.Serializer
module Dtd = Smoqe_xml.Dtd
module Dtd_parser = Smoqe_xml.Dtd_parser
module Validator = Smoqe_xml.Validator

let sample_source =
  Tree.E
    ( "hospital",
      [],
      [
        Tree.E
          ( "patient",
            [ ("id", "p1") ],
            [
              Tree.E ("pname", [], [ Tree.T "Ann" ]);
              Tree.E
                ( "visit",
                  [],
                  [
                    Tree.E
                      ( "treatment",
                        [],
                        [ Tree.E ("medication", [], [ Tree.T "autism" ]) ] );
                    Tree.E ("date", [], [ Tree.T "2006-01-02" ]);
                  ] );
            ] );
        Tree.E
          ( "patient",
            [ ("id", "p2") ],
            [ Tree.E ("pname", [], [ Tree.T "Bob" ]) ] );
      ] )

let sample () = Tree.of_source sample_source

(* --- Tree ------------------------------------------------------------ *)

let test_tree_counts () =
  let t = sample () in
  (* hospital(0) patient(1) pname(2) Ann(3) visit(4) treatment(5)
     medication(6) autism(7) date(8) text(9) patient(10) pname(11)
     Bob(12) — 13 nodes. *)
  Alcotest.(check int) "node count" 13 (Tree.n_nodes t);
  Alcotest.(check string) "root name" "hospital" (Tree.name t Tree.root);
  Alcotest.(check (option int)) "root parent" None (Tree.parent t Tree.root)

let test_tree_structure () =
  let t = sample () in
  let kids = Tree.children t Tree.root in
  Alcotest.(check int) "root children" 2 (List.length kids);
  let p1 = List.nth kids 0 in
  Alcotest.(check string) "p1 tag" "patient" (Tree.name t p1);
  Alcotest.(check (option string)) "p1 id attr" (Some "p1")
    (Tree.attribute t p1 "id");
  Alcotest.(check (option string)) "missing attr" None
    (Tree.attribute t p1 "nope");
  let p2 = List.nth kids 1 in
  Alcotest.(check (option int)) "sibling" (Some p2) (Tree.next_sibling t p1);
  Alcotest.(check (option int)) "parent of p1" (Some Tree.root)
    (Tree.parent t p1);
  Alcotest.(check int) "depth p1" 1 (Tree.depth t p1)

let test_tree_subtree_range () =
  let t = sample () in
  let p1 = List.hd (Tree.children t Tree.root) in
  (* patient p1 subtree: ids 1..9 *)
  Alcotest.(check int) "subtree end" 10 (Tree.subtree_end t p1);
  Alcotest.(check int) "subtree size" 9 (Tree.subtree_size t p1);
  Alcotest.(check int) "root subtree = all" (Tree.n_nodes t)
    (Tree.subtree_end t Tree.root)

let test_tree_value () =
  let t = sample () in
  let p1 = List.hd (Tree.children t Tree.root) in
  let pname = List.hd (Tree.children t p1) in
  Alcotest.(check string) "element value" "Ann" (Tree.value t pname);
  let ann = List.hd (Tree.children t pname) in
  Alcotest.(check string) "text value" "Ann" (Tree.value t ann);
  Alcotest.(check bool) "is_text" true (Tree.is_text t ann);
  Alcotest.(check string) "deep texts" "Annautism2006-01-02"
    (Tree.descendant_or_self_texts t p1)

let test_tree_roundtrip () =
  let t = sample () in
  let again = Tree.of_source (Tree.to_source t Tree.root) in
  Alcotest.(check bool) "equal" true (Tree.equal t again)

let test_tree_tags_interned () =
  let t = sample () in
  Alcotest.(check string) "text tag name" "#text"
    (Tree.tag_name t Tree.text_tag);
  (match Tree.id_of_tag t "patient" with
  | None -> Alcotest.fail "patient tag not interned"
  | Some id ->
    Alcotest.(check string) "roundtrip" "patient" (Tree.tag_name t id));
  Alcotest.(check (option int)) "unknown tag" None (Tree.id_of_tag t "zzz");
  (* distinct tags: #text hospital patient pname visit treatment medication
     date = 8 *)
  Alcotest.(check int) "tag count" 8 (Tree.n_tags t)

let test_tree_invalid () =
  Alcotest.check_raises "empty tag"
    (Invalid_argument "Tree.of_source: empty tag name") (fun () ->
      ignore (Tree.of_source (Tree.E ("", [], []))))

(* --- Pull ------------------------------------------------------------ *)

let drain s =
  Pull.fold (Pull.of_string s) ~init:[] ~f:(fun acc e -> e :: acc)
  |> List.rev

let test_pull_basic () =
  match drain "<a><b>hi</b><c/></a>" with
  | [ Pull.Start_element ("a", []); Start_element ("b", []); Text "hi";
      End_element "b"; Start_element ("c", []); End_element "c";
      End_element "a" ] ->
    ()
  | evs ->
    Alcotest.fail (Printf.sprintf "unexpected events (%d)" (List.length evs))

let test_pull_attributes () =
  match drain {|<a x="1" y='two &amp; three'/>|} with
  | [ Pull.Start_element ("a", attrs); Pull.End_element "a" ] ->
    Alcotest.(check (list (pair string string)))
      "attrs" [ ("x", "1"); ("y", "two & three") ] attrs
  | _ -> Alcotest.fail "bad events"

let test_pull_entities () =
  match drain "<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>" with
  | [ Pull.Start_element _; Pull.Text s; Pull.End_element _ ] ->
    Alcotest.(check string) "decoded" "<>&'\"AB" s
  | _ -> Alcotest.fail "bad events"

let test_pull_cdata () =
  match drain "<a><![CDATA[<not> &parsed;]]></a>" with
  | [ Pull.Start_element _; Pull.Text s; Pull.End_element _ ] ->
    Alcotest.(check string) "cdata" "<not> &parsed;" s
  | _ -> Alcotest.fail "bad events"

let test_pull_comments_and_pi () =
  match
    drain "<?xml version=\"1.0\"?><!-- c --><a><!-- in -->t<?pi data?></a>"
  with
  | [ Pull.Start_element ("a", []); Pull.Text "t"; Pull.End_element "a" ] -> ()
  | _ -> Alcotest.fail "comments/PIs should be invisible"

let test_pull_doctype_skipped () =
  let evs = drain "<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>t</a>" in
  Alcotest.(check int) "events" 3 (List.length evs)

let test_pull_ws_dropped_and_kept () =
  let evs = drain "<a>\n  <b/>\n</a>" in
  Alcotest.(check int) "dropped" 4 (List.length evs);
  let p = Pull.of_string ~keep_ws:true "<a>\n  <b/>\n</a>" in
  let evs = Pull.fold p ~init:[] ~f:(fun acc e -> e :: acc) in
  Alcotest.(check int) "kept" 6 (List.length evs)

let expect_pull_error s =
  match drain s with
  | exception Pull.Error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "no error for %s" s)

let test_pull_errors () =
  expect_pull_error "<a><b></a></b>";
  expect_pull_error "<a>";
  expect_pull_error "text only";
  expect_pull_error "<a/><b/>";
  expect_pull_error "<a x=1/>";
  expect_pull_error "<a>&unknown;</a>";
  expect_pull_error "";
  expect_pull_error "<a x='1' x='2'/>"

let test_pull_error_location () =
  match drain "<a>\n<b></c>\n</a>" with
  | exception Pull.Error (line, _, _) -> Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "expected error"

let test_pull_channel () =
  let path = Filename.temp_file "smoqe" ".xml" in
  let oc = open_out path in
  output_string oc "<r><x>1</x><x>2</x></r>";
  close_out oc;
  let ic = open_in path in
  let p = Pull.of_channel ic in
  let n = Pull.fold p ~init:0 ~f:(fun acc _ -> acc + 1) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "events via channel" 8 n

(* --- Parser / Serializer --------------------------------------------- *)

let test_parser_roundtrip () =
  let t = sample () in
  let s = Serializer.to_string ~indent:false t in
  let t' = Parser.tree_of_string s in
  Alcotest.(check bool) "roundtrip equal" true (Tree.equal t t')

let test_parser_roundtrip_indented () =
  let t = sample () in
  let s = Serializer.to_string ~indent:true ~decl:true t in
  let t' = Parser.tree_of_string s in
  Alcotest.(check bool) "indented roundtrip equal" true (Tree.equal t t')

let test_serializer_escaping () =
  let t =
    Tree.of_source (Tree.E ("a", [ ("k", "<\"'>") ], [ Tree.T "a<b>&c" ]))
  in
  let s = Serializer.to_string ~indent:false t in
  let t' = Parser.tree_of_string s in
  Alcotest.(check bool) "escaped roundtrip" true (Tree.equal t t')

let test_events_of_tree () =
  let t = sample () in
  let evs = Parser.events_of_tree t in
  let t' = Parser.tree_of_events evs in
  Alcotest.(check bool) "events roundtrip" true (Tree.equal t t');
  let s = Serializer.events_to_string evs in
  let t'' = Parser.tree_of_string s in
  Alcotest.(check bool) "events->string->tree" true (Tree.equal t t'')

(* --- Input hardening (DESIGN.md §12) --------------------------------- *)

let test_bom () =
  let t = Parser.tree_of_string "\xEF\xBB\xBF<?xml version=\"1.0\"?><a>x</a>" in
  Alcotest.(check string) "root after BOM" "a" (Tree.name t Tree.root);
  expect_pull_error "\xFE\xFF\x00<\x00a\x00/\x00>";
  expect_pull_error "\xFF\xFE<\x00a\x00";
  expect_pull_error "\xEF\xBB<a/>"

let test_doctype_rules () =
  (* quoted '>' and ']' in internal-subset literals must not end the
     DOCTYPE early *)
  let evs =
    drain "<!DOCTYPE a [ <!ATTLIST a x CDATA \"b > c ] d\"> ]><a>t</a>"
  in
  Alcotest.(check int) "quoted markers skipped" 3 (List.length evs);
  expect_pull_error "<a/><!DOCTYPE a []>";
  expect_pull_error "<a><!DOCTYPE a []></a>";
  expect_pull_error "<!DOCTYPE a []><!DOCTYPE a []><a/>";
  expect_pull_error "<!DOCTYPE r ]><r/>"

let test_charref_validation () =
  let text s =
    (* keep_ws: a lone tab is whitespace-only text and would be dropped *)
    let p = Pull.of_string ~keep_ws:true (Printf.sprintf "<a>%s</a>" s) in
    let evs = Pull.fold p ~init:[] ~f:(fun acc e -> e :: acc) |> List.rev in
    match evs with
    | [ _; Pull.Text t; _ ] -> t
    | _ -> Alcotest.fail "expected a single text event"
  in
  Alcotest.(check string) "tab" "\t" (text "&#9;");
  Alcotest.(check string) "max scalar" "\xF4\x8F\xBF\xBF" (text "&#x10FFFF;");
  expect_pull_error "<a>&#0;</a>";
  expect_pull_error "<a>&#8;</a>";
  expect_pull_error "<a>&#xD800;</a>";
  expect_pull_error "<a>&#xDFFF;</a>";
  expect_pull_error "<a>&#x110000;</a>";
  expect_pull_error "<a>&#xFFFE;</a>";
  (* digit flood must be cut off, not accumulated *)
  expect_pull_error
    (Printf.sprintf "<a>&#%s;</a>" (String.make 4096 '9'))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_dup_attr_position () =
  match drain "<a x='1'\n   x='2'/>" with
  | exception Pull.Error (line, col, msg) ->
    Alcotest.(check int) "line" 2 line;
    Alcotest.(check bool) "column" true (col >= 1);
    Alcotest.(check bool) "message names the duplicate" true
      (contains ~sub:"duplicate" msg)
  | _ -> Alcotest.fail "duplicate attribute accepted"

let deep_doc n =
  let buf = Buffer.create (n * 8) in
  for _ = 1 to n do
    Buffer.add_string buf "<d>"
  done;
  Buffer.add_string buf "leaf";
  for _ = 1 to n do
    Buffer.add_string buf "</d>"
  done;
  Buffer.contents buf

let test_deep_document () =
  (* 100k nesting: recursion anywhere on the tree path would overflow the
     stack — parse, re-emit events and serialize all have to survive *)
  let n = 100_000 in
  let t = Parser.tree_of_string (deep_doc n) in
  Alcotest.(check int) "nodes" (n + 1) (Tree.n_nodes t);
  let evs = Parser.events_of_tree t in
  Alcotest.(check int) "events" ((2 * n) + 1) (List.length evs);
  let s = Serializer.to_string ~indent:false t in
  Alcotest.(check bool) "serializes" true (String.length s > (6 * n));
  let t' = Parser.tree_of_events evs in
  Alcotest.(check bool) "events roundtrip" true (Tree.equal t t')

let test_deep_budget () =
  let budget = Smoqe_robust.Budget.create ~max_depth:64 () in
  match Parser.tree_of_string ~budget (deep_doc 1000) with
  | exception Smoqe_robust.Budget.Exceeded _ -> ()
  | _ -> Alcotest.fail "depth budget did not trip"

let test_tree_of_events_unbalanced () =
  let expect_positioned evs =
    match Parser.tree_of_events evs with
    | exception Pull.Error _ -> ()
    | exception Invalid_argument _ ->
      Alcotest.fail "raised Invalid_argument, not Pull.Error"
    | _ -> Alcotest.fail "bad event stream accepted"
  in
  expect_positioned [];
  expect_positioned [ Pull.Start_element ("a", []) ];
  expect_positioned [ Pull.End_element "a" ];
  expect_positioned
    [ Pull.Start_element ("a", []); Pull.End_element "b" ];
  expect_positioned
    [
      Pull.Start_element ("a", []);
      Pull.End_element "a";
      Pull.Start_element ("b", []);
      Pull.End_element "b";
    ];
  expect_positioned [ Pull.Text "outside" ]

(* --- Dtd ------------------------------------------------------------- *)

let hospital_dtd () =
  Dtd.create ~root:"hospital"
    [
      ("hospital", Dtd.Children (Dtd.Star (Dtd.Name "patient")));
      ( "patient",
        Dtd.Children
          (Dtd.Seq
             ( Dtd.Name "pname",
               Dtd.Seq
                 (Dtd.Star (Dtd.Name "visit"), Dtd.Star (Dtd.Name "parent"))
             )) );
      ("parent", Dtd.Children (Dtd.Name "patient"));
      ("visit", Dtd.Children (Dtd.Seq (Dtd.Name "treatment", Dtd.Name "date")));
      ( "treatment",
        Dtd.Children (Dtd.Alt (Dtd.Name "test", Dtd.Name "medication")) );
      ("pname", Dtd.Mixed []);
      ("date", Dtd.Mixed []);
      ("test", Dtd.Mixed []);
      ("medication", Dtd.Mixed []);
    ]

let test_dtd_basics () =
  let d = hospital_dtd () in
  Alcotest.(check string) "root" "hospital" (Dtd.root d);
  Alcotest.(check (list string))
    "children of patient"
    [ "pname"; "visit"; "parent" ]
    (Dtd.child_types d "patient");
  Alcotest.(check bool) "recursive" true (Dtd.is_recursive d);
  Alcotest.(check bool) "pcdata" true (Dtd.allows_text d "pname");
  Alcotest.(check bool) "no pcdata" false (Dtd.allows_text d "hospital");
  Alcotest.(check int) "reachable" 9 (List.length (Dtd.reachable d))

let test_dtd_errors () =
  (let raised =
     try
       ignore (Dtd.create ~root:"a" [ ("b", Dtd.Empty) ]);
       false
     with Invalid_argument _ -> true
   in
   Alcotest.(check bool) "missing root" true raised);
  let raised =
    try
      ignore (Dtd.create ~root:"a" [ ("a", Dtd.Children (Dtd.Name "zz")) ]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "undeclared child" true raised

let test_dtd_rename () =
  let d = hospital_dtd () in
  let d' = Dtd.rename_type d ~old_name:"patient" ~new_name:"person" in
  Alcotest.(check (list string))
    "renamed edge" [ "person" ]
    (Dtd.child_types d' "parent");
  Alcotest.(check bool) "old gone" true (Dtd.content d' "patient" = None)

let test_dtd_parser () =
  let src =
    {|<!DOCTYPE hospital [
        <!-- the schema of Fig. 3(a) -->
        <!ELEMENT hospital (patient*)>
        <!ELEMENT patient (pname, visit*, parent*)>
        <!ELEMENT parent (patient)>
        <!ELEMENT visit (treatment, date)>
        <!ELEMENT treatment (test | medication)>
        <!ELEMENT pname (#PCDATA)>
        <!ELEMENT date (#PCDATA)>
        <!ELEMENT test (#PCDATA)>
        <!ELEMENT medication (#PCDATA)>
      ]>|}
  in
  let d = Dtd_parser.of_string src in
  Alcotest.(check bool) "equal to handbuilt" true (Dtd.equal d (hospital_dtd ()))

let test_dtd_parser_bare () =
  let d =
    Dtd_parser.of_string
      "<!ELEMENT r (a?, b+)> <!ELEMENT a EMPTY> <!ELEMENT b ANY>"
  in
  Alcotest.(check string) "root defaults to first" "r" (Dtd.root d);
  (match Dtd.content d "r" with
  | Some
      (Dtd.Children
        (Dtd.Seq (Dtd.Opt (Dtd.Name "a"), Dtd.Plus (Dtd.Name "b")))) ->
    ()
  | _ -> Alcotest.fail "wrong content model for r");
  Alcotest.(check bool) "a EMPTY" true (Dtd.content d "a" = Some Dtd.Empty);
  Alcotest.(check bool) "b ANY" true (Dtd.content d "b" = Some Dtd.Any)

let test_dtd_parser_mixed_names () =
  let d =
    Dtd_parser.of_string
      "<!ELEMENT p (#PCDATA | em | strong)*> <!ELEMENT em (#PCDATA)> <!ELEMENT strong (#PCDATA)>"
  in
  match Dtd.content d "p" with
  | Some (Dtd.Mixed [ "em"; "strong" ]) -> ()
  | _ -> Alcotest.fail "wrong mixed model"

let test_dtd_parser_attlist_skipped () =
  let d =
    Dtd_parser.of_string "<!ELEMENT a EMPTY> <!ATTLIST a id CDATA #REQUIRED>"
  in
  Alcotest.(check (list string)) "only a" [ "a" ] (Dtd.element_names d)

let test_dtd_parser_error () =
  match Dtd_parser.of_string "<!ELEMENT r (a" with
  | exception Dtd_parser.Error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_dtd_print_parse_roundtrip () =
  let d = hospital_dtd () in
  let d' = Dtd_parser.of_string ~root:"hospital" (Dtd.to_string d) in
  Alcotest.(check bool) "print/parse" true (Dtd.equal d d')

(* --- Validator -------------------------------------------------------- *)

let test_validator_valid () =
  let d = hospital_dtd () in
  let t =
    Parser.tree_of_string
      "<hospital><patient><pname>Ann</pname><visit><treatment><medication>autism</medication></treatment><date>d</date></visit></patient></hospital>"
  in
  Alcotest.(check bool) "valid" true (Validator.is_valid d t)

let test_validator_recursive_valid () =
  let d = hospital_dtd () in
  let t =
    Parser.tree_of_string
      "<hospital><patient><pname>A</pname><parent><patient><pname>B</pname></patient></parent></patient></hospital>"
  in
  Alcotest.(check bool) "recursive valid" true (Validator.is_valid d t)

let test_validator_invalid_sequence () =
  let d = hospital_dtd () in
  (* visit before pname violates the sequence *)
  let t =
    Parser.tree_of_string
      "<hospital><patient><visit><treatment><test>t</test></treatment><date>d</date></visit><pname>A</pname></patient></hospital>"
  in
  match Validator.validate d t with
  | Ok () -> Alcotest.fail "should be invalid"
  | Error errs ->
    Alcotest.(check bool) "mentions patient" true
      (List.exists (fun e -> e.Validator.element = "patient") errs)

let test_validator_undeclared () =
  let d = hospital_dtd () in
  let t = Parser.tree_of_string "<hospital><intruder/></hospital>" in
  match Validator.validate d t with
  | Ok () -> Alcotest.fail "should be invalid"
  | Error errs -> Alcotest.(check bool) "has errors" true (errs <> [])

let test_validator_wrong_root () =
  let d = hospital_dtd () in
  let t = Parser.tree_of_string "<patient><pname>A</pname></patient>" in
  Alcotest.(check bool) "wrong root" false (Validator.is_valid d t)

let test_validator_text_in_element_content () =
  let d = hospital_dtd () in
  let t = Parser.tree_of_string "<hospital>stray</hospital>" in
  Alcotest.(check bool) "text rejected" false (Validator.is_valid d t)

let test_matches_regex () =
  let r = Dtd.(Seq (Name "a", Star (Alt (Name "b", Name "c")))) in
  Alcotest.(check bool) "abc" true (Validator.matches r [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "a" true (Validator.matches r [ "a" ]);
  Alcotest.(check bool) "ba" false (Validator.matches r [ "b"; "a" ]);
  Alcotest.(check bool) "empty" false (Validator.matches r []);
  Alcotest.(check bool) "opt" true
    (Validator.matches (Dtd.Opt (Dtd.Name "x")) []);
  Alcotest.(check bool) "plus needs one" false
    (Validator.matches (Dtd.Plus (Dtd.Name "x")) [])

(* --- Property tests --------------------------------------------------- *)

let tag_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c"; "d"; "item"; "node" ]

let text_gen =
  QCheck2.Gen.oneofl [ "x"; "hello"; "a&b"; "<raw>"; "  spaced  "; "'\"q\"'" ]

let source_gen =
  QCheck2.Gen.(
    sized_size (int_bound 6)
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 map (fun s -> Tree.T s) text_gen;
                 map (fun tag -> Tree.E (tag, [], [])) tag_gen;
               ]
           else
             map2
               (fun tag kids -> Tree.E (tag, [], kids))
               tag_gen
               (list_size (int_bound 4) (self (n / 2)))))

let root_source_gen =
  QCheck2.Gen.(
    map2
      (fun tag kids -> Tree.E (tag, [], kids))
      tag_gen
      (list_size (int_bound 4) source_gen))

(* Parsing merges adjacent text nodes, so compare canonical forms. *)
let rec canonical = function
  | Tree.T s -> Tree.T s
  | Tree.E (tag, attrs, kids) ->
    let kids = List.map canonical kids in
    let merged =
      List.fold_left
        (fun acc kid ->
          match kid, acc with
          | Tree.T s, Tree.T p :: rest -> Tree.T (p ^ s) :: rest
          | kid, acc -> kid :: acc)
        [] kids
      |> List.rev
      |> List.filter (function Tree.T "" -> false | Tree.T _ | Tree.E _ -> true)
    in
    Tree.E (tag, attrs, merged)

let prop_serialize_parse_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"serialize/parse roundtrip (compact)"
    root_source_gen (fun src ->
      let t = Tree.of_source (canonical src) in
      let s = Serializer.to_string ~indent:false t in
      Tree.equal t (Parser.tree_of_string ~keep_ws:true s))

let prop_subtree_ranges_nested =
  QCheck2.Test.make ~count:200 ~name:"subtree ranges are nested intervals"
    root_source_gen (fun src ->
      let t = Tree.of_source src in
      let ok = ref true in
      Tree.iter_preorder t (fun n ->
          Tree.iter_children t n (fun c ->
              if not (n < c && Tree.subtree_end t c <= Tree.subtree_end t n)
              then ok := false;
              if Tree.parent t c <> Some n then ok := false));
      !ok)

let prop_depth_consistent =
  QCheck2.Test.make ~count:200 ~name:"depth = parent depth + 1" root_source_gen
    (fun src ->
      let t = Tree.of_source src in
      let ok = ref true in
      Tree.iter_preorder t (fun n ->
          match Tree.parent t n with
          | None -> if Tree.depth t n <> 0 then ok := false
          | Some p -> if Tree.depth t n <> Tree.depth t p + 1 then ok := false);
      !ok)

let prop_events_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"events_of_tree/tree_of_events identity"
    root_source_gen (fun src ->
      let t = Tree.of_source src in
      Tree.equal t (Parser.tree_of_events (Parser.events_of_tree t)))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_serialize_parse_roundtrip;
      prop_subtree_ranges_nested;
      prop_depth_consistent;
      prop_events_roundtrip;
    ]

let () =
  Alcotest.run "smoqe_xml"
    [
      ( "tree",
        [
          Alcotest.test_case "counts" `Quick test_tree_counts;
          Alcotest.test_case "structure" `Quick test_tree_structure;
          Alcotest.test_case "subtree range" `Quick test_tree_subtree_range;
          Alcotest.test_case "value" `Quick test_tree_value;
          Alcotest.test_case "roundtrip" `Quick test_tree_roundtrip;
          Alcotest.test_case "tags interned" `Quick test_tree_tags_interned;
          Alcotest.test_case "invalid input" `Quick test_tree_invalid;
        ] );
      ( "pull",
        [
          Alcotest.test_case "basic" `Quick test_pull_basic;
          Alcotest.test_case "attributes" `Quick test_pull_attributes;
          Alcotest.test_case "entities" `Quick test_pull_entities;
          Alcotest.test_case "cdata" `Quick test_pull_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_pull_comments_and_pi;
          Alcotest.test_case "doctype skipped" `Quick test_pull_doctype_skipped;
          Alcotest.test_case "whitespace modes" `Quick
            test_pull_ws_dropped_and_kept;
          Alcotest.test_case "errors" `Quick test_pull_errors;
          Alcotest.test_case "error location" `Quick test_pull_error_location;
          Alcotest.test_case "channel input" `Quick test_pull_channel;
        ] );
      ( "parser-serializer",
        [
          Alcotest.test_case "roundtrip compact" `Quick test_parser_roundtrip;
          Alcotest.test_case "roundtrip indented" `Quick
            test_parser_roundtrip_indented;
          Alcotest.test_case "escaping" `Quick test_serializer_escaping;
          Alcotest.test_case "event stream" `Quick test_events_of_tree;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "byte-order marks" `Quick test_bom;
          Alcotest.test_case "doctype rules" `Quick test_doctype_rules;
          Alcotest.test_case "char-ref validation" `Quick
            test_charref_validation;
          Alcotest.test_case "duplicate attribute" `Quick
            test_dup_attr_position;
          Alcotest.test_case "deep document" `Quick test_deep_document;
          Alcotest.test_case "deep budget" `Quick test_deep_budget;
          Alcotest.test_case "unbalanced events" `Quick
            test_tree_of_events_unbalanced;
        ] );
      ( "dtd",
        [
          Alcotest.test_case "basics" `Quick test_dtd_basics;
          Alcotest.test_case "errors" `Quick test_dtd_errors;
          Alcotest.test_case "rename" `Quick test_dtd_rename;
          Alcotest.test_case "parser doctype" `Quick test_dtd_parser;
          Alcotest.test_case "parser bare" `Quick test_dtd_parser_bare;
          Alcotest.test_case "parser mixed" `Quick test_dtd_parser_mixed_names;
          Alcotest.test_case "attlist skipped" `Quick
            test_dtd_parser_attlist_skipped;
          Alcotest.test_case "parse error" `Quick test_dtd_parser_error;
          Alcotest.test_case "print/parse" `Quick test_dtd_print_parse_roundtrip;
        ] );
      ( "validator",
        [
          Alcotest.test_case "valid doc" `Quick test_validator_valid;
          Alcotest.test_case "recursive valid" `Quick
            test_validator_recursive_valid;
          Alcotest.test_case "invalid sequence" `Quick
            test_validator_invalid_sequence;
          Alcotest.test_case "undeclared" `Quick test_validator_undeclared;
          Alcotest.test_case "wrong root" `Quick test_validator_wrong_root;
          Alcotest.test_case "text in element content" `Quick
            test_validator_text_in_element_content;
          Alcotest.test_case "regex matching" `Quick test_matches_regex;
        ] );
      ("properties", qsuite);
    ]
