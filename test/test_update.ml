(* The write path: functional tree splices, incremental TAX maintenance,
   view-legality enforcement and subtree-scoped plan invalidation.

   The layering mirrors the implementation: Tree.splice against a
   from-scratch rebuild (every pointer array, not just the
   serialization), Tax.splice against Tax.build, Update legality against
   materialization provenance, and the engine's scoped invalidation
   against the cache counters. *)

module Tree = Smoqe_xml.Tree
module Serializer = Smoqe_xml.Serializer
module Tax = Smoqe_tax.Tax
module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Update = Smoqe_update.Update
module Err = Smoqe_robust.Error
module Materialize = Smoqe_security.Materialize
module Hospital = Smoqe_workload.Hospital
module Random_dtd = Smoqe_workload.Random_dtd
module Docgen = Smoqe_workload.Docgen

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let okr = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Err.to_string e)

(* --- Tree splice = rebuild, array by array --------------------------------- *)

(* The rebuilt tree re-derives every pointer array from the nested
   description; the spliced tree patched them in place.  Comparing all
   observable structure per node (not just the serialization) is what
   catches a wrong subtree_end or sibling fixup. *)
let check_physical label spliced =
  let rebuilt = Tree.of_source (Tree.to_source spliced Tree.root) in
  Alcotest.(check int) (label ^ ": n_nodes") (Tree.n_nodes rebuilt)
    (Tree.n_nodes spliced);
  for n = 0 to Tree.n_nodes spliced - 1 do
    let lbl what = Printf.sprintf "%s: node %d %s" label n what in
    Alcotest.(check (option int)) (lbl "parent") (Tree.parent rebuilt n)
      (Tree.parent spliced n);
    Alcotest.(check (option int)) (lbl "first_child")
      (Tree.first_child rebuilt n) (Tree.first_child spliced n);
    Alcotest.(check (option int)) (lbl "next_sibling")
      (Tree.next_sibling rebuilt n) (Tree.next_sibling spliced n);
    Alcotest.(check int) (lbl "subtree_end") (Tree.subtree_end rebuilt n)
      (Tree.subtree_end spliced n);
    Alcotest.(check int) (lbl "depth") (Tree.depth rebuilt n)
      (Tree.depth spliced n);
    Alcotest.(check bool) (lbl "is_text") (Tree.is_text rebuilt n)
      (Tree.is_text spliced n);
    Alcotest.(check string) (lbl "name") (Tree.name rebuilt n)
      (Tree.name spliced n);
    Alcotest.(check string) (lbl "value") (Tree.value rebuilt n)
      (Tree.value spliced n);
    Alcotest.(check (list (pair string string)))
      (lbl "attributes")
      (Tree.attributes rebuilt n) (Tree.attributes spliced n)
  done

(* One random edit on [doc], drawn from the document's own material (so
   no new tags are interned and the token must be preserved).  Returns
   the resolved op. *)
let random_edit rng doc =
  let n_nodes = Tree.n_nodes doc in
  let pick_node () = Random.State.int rng n_nodes in
  let pick_nonroot () = 1 + Random.State.int rng (n_nodes - 1) in
  if n_nodes < 2 then
    (* shrunk to a bare root: the only edits left target the root *)
    Update.R_replace (0, Tree.to_source doc 0)
  else
  match Random.State.int rng 4 with
  | 0 ->
    (* replace (occasionally the root) with another subtree's material *)
    let n = if Random.State.int rng 8 = 0 then 0 else pick_nonroot () in
    let m = pick_node () in
    Update.R_replace (n, Tree.to_source doc m)
  | 1 -> Update.R_delete (pick_nonroot ())
  | 2 ->
    (* insert a copy before an existing node *)
    let n = pick_nonroot () in
    let p = Option.get (Tree.parent doc n) in
    let m = pick_node () in
    Update.R_insert { parent = p; before = Some n; source = Tree.to_source doc m }
  | _ ->
    (* append a copy as a last child of a random element *)
    let rec elem tries =
      let n = pick_node () in
      if Tree.is_element doc n || tries > 50 then n else elem (tries + 1)
    in
    let p = elem 0 in
    if Tree.is_text doc p then Update.R_replace (p, Tree.to_source doc p)
    else
      Update.R_insert
        { parent = p; before = None; source = Tree.to_source doc (pick_node ()) }

let test_splice_physical () =
  for seed = 1 to 20 do
    let dtd =
      Random_dtd.generate ~seed ~n_types:(3 + (seed mod 5))
        ~recursion:(seed mod 2 = 0) ()
    in
    match Docgen.generate ~seed:(seed * 5 + 2) ~max_depth:8 ~fanout:3 dtd with
    | exception Docgen.No_finite_expansion _ -> ()
    | doc ->
      let rng = Random.State.make [| seed * 17 + 1 |] in
      let tree = ref doc in
      for step = 1 to 6 do
        let r = random_edit rng !tree in
        match Update.validate !tree r with
        | Error _ -> ()
        | Ok () ->
          let label = Printf.sprintf "seed %d step %d" seed step in
          let nt, fp = okr (Update.apply !tree r) in
          check_physical label nt;
          (* edits drawn from the document's own material intern no new
             tag: the interning lineage token must survive, and with it
             tag-id stability *)
          Alcotest.(check int) (label ^ ": token preserved")
            (Tree.tags_token !tree) (Tree.tags_token nt);
          for tag = 0 to Tree.n_tags !tree - 1 do
            Alcotest.(check string)
              (Printf.sprintf "%s: tag %d stable" label tag)
              (Tree.tag_name !tree tag) (Tree.tag_name nt tag)
          done;
          (* incremental TAX maintenance equals a from-scratch build *)
          let spliced =
            Tax.splice (Tax.build !tree) nt ~lo:fp.Update.fp_lo
              ~old_hi:fp.Update.fp_old_hi ~par:fp.Update.fp_parent
          in
          Alcotest.(check bool) (label ^ ": tax splice = build") true
            (Tax.equal spliced (Tax.build nt));
          tree := nt
      done
  done

(* A new tag in the inserted material must change the lineage token —
   the signal that forces frozen tables to respecialize. *)
let test_token_changes_on_new_tag () =
  let doc =
    Tree.of_source
      (Tree.E ("r", [], [ Tree.E ("a", [], [ Tree.T "1" ]) ]))
  in
  let same = Tree.replace_subtree doc 1 (Tree.to_source doc 1) in
  Alcotest.(check int) "identity replace keeps the token"
    (Tree.tags_token doc) (Tree.tags_token same);
  let grown =
    Tree.insert_subtree doc ~parent:Tree.root
      (Tree.E ("brand_new", [], []))
  in
  Alcotest.(check bool) "new tag mints a new token" false
    (Tree.tags_token doc = Tree.tags_token grown);
  (* old ids still stable even when the table grew *)
  for tag = 0 to Tree.n_tags doc - 1 do
    Alcotest.(check string)
      (Printf.sprintf "grown tag %d stable" tag)
      (Tree.tag_name doc tag) (Tree.tag_name grown tag)
  done

(* --- illegal updates: denied, and observably a no-op ----------------------- *)

let hidden_node view doc =
  let m = Materialize.materialize view doc in
  let exposed = Hashtbl.create 64 in
  Array.iter (fun n -> Hashtbl.replace exposed n ()) m.Materialize.provenance;
  let rec find n =
    if n >= Tree.n_nodes doc then None
    else if not (Hashtbl.mem exposed n) then Some n
    else find (n + 1)
  in
  find 0

let test_denied_is_noop () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  let engine = Engine.of_tree ~dtd:Hospital.dtd doc in
  ok (Engine.register_policy engine ~group:"members" Hospital.policy);
  Engine.build_index engine;
  let view = Option.get (Engine.view engine ~group:"members") in
  let hidden =
    match hidden_node view doc with
    | Some n -> n
    | None -> Alcotest.fail "hospital policy hides nothing?"
  in
  let probe = "//pname" in
  let before = okr (Engine.query_robust engine ~group:"members" probe) in
  let tree_before = Engine.document engine in
  let index_before = Option.get (Engine.index engine) in
  let counters_before = Engine.plan_cache_counters engine in
  let session = ok (Session.login engine (Session.Member "members")) in
  let expect_denied label op =
    match Session.update_robust session op with
    | Error (Err.Update_denied { node; _ }) ->
      Alcotest.(check bool)
        (label ^ ": offending node reported in range")
        true
        (node >= 0 && node < Tree.n_nodes doc)
    | Error e -> Alcotest.failf "%s: wrong error %s" label (Err.to_string e)
    | Ok _ -> Alcotest.failf "%s: a view-illegal update was applied" label
  in
  expect_denied "delete hidden" (Update.Delete (Update.By_id hidden));
  expect_denied "replace hidden"
    (Update.Replace (Update.By_id hidden, Tree.T "overwritten"));
  expect_denied "insert under hidden"
    (Update.Insert
       { parent = Update.By_id hidden; before = None; source = Tree.T "x" });
  (* deleting an exposed ancestor of a hidden node is denied too: the
     removed subtree must be exposed in full *)
  let ancestor_of_hidden =
    match Tree.parent (Engine.document engine) hidden with
    | Some p when p <> Tree.root -> p
    | _ -> hidden
  in
  if ancestor_of_hidden <> hidden then
    expect_denied "delete subtree containing hidden"
      (Update.Delete (Update.By_id ancestor_of_hidden));
  (* the rejections were clean full rejects: the tree and index are the
     very same values, and the probe answers byte-identically *)
  Alcotest.(check bool) "tree physically unchanged" true
    (Engine.document engine == tree_before);
  Alcotest.(check bool) "index physically unchanged" true
    (Option.get (Engine.index engine) == index_before);
  Alcotest.(check int) "no plans dropped"
    (List.assoc "tag_drops" counters_before)
    (List.assoc "tag_drops" (Engine.plan_cache_counters engine));
  let after = okr (Engine.query_robust engine ~group:"members" probe) in
  Alcotest.(check (list int)) "probe answers unchanged" before.Engine.answers
    after.Engine.answers;
  Alcotest.(check (list string)) "probe xml unchanged" before.Engine.answer_xml
    after.Engine.answer_xml

(* --- legal delete-then-reinsert round-trips -------------------------------- *)

let test_delete_reinsert_roundtrip () =
  let doc = Hospital.generate ~seed:11 ~n_patients:4 ~recursion_depth:2 () in
  let engine = Engine.of_tree ~dtd:Hospital.dtd doc in
  Engine.build_index engine;
  let original = Serializer.to_string doc in
  (* find a node whose removal still satisfies the DTD (a patient in a
     patient* list); ids: after deleting [n, end), the old next sibling
     sits exactly at n, so ~before:n restores document order *)
  let rec attempt n =
    if n >= Tree.n_nodes doc then
      Alcotest.fail "no DTD-legal delete target found"
    else
      let p = Tree.parent doc n and ns = Tree.next_sibling doc n in
      let src = Tree.to_source doc n in
      match p with
      | None -> attempt (n + 1)
      | Some p ->
        (match Engine.update_robust engine (Update.Delete (Update.By_id n)) with
        | Error (Err.Parse_error _) -> attempt (n + 1)  (* DTD says no *)
        | Error e -> Alcotest.failf "delete %d: %s" n (Err.to_string e)
        | Ok report ->
          Alcotest.(check int) "delete shrank the document"
            (Tree.n_nodes doc - Tree.subtree_size doc n)
            report.Engine.up_nodes_after;
          let before = Option.map (fun _ -> n) ns in
          let r =
            okr
              (Engine.update_robust engine
                 (Update.Insert { parent = Update.By_id p; before; source = src }))
          in
          Alcotest.(check int) "reinsert restored the size"
            (Tree.n_nodes doc) r.Engine.up_nodes_after;
          Alcotest.(check bool) "index maintained incrementally" true
            r.Engine.up_index_maintained;
          Alcotest.(check string) "round-trip serialization" original
            (Serializer.to_string (Engine.document engine));
          (* the incrementally maintained index equals a fresh build *)
          Alcotest.(check bool) "round-trip index" true
            (Tax.equal
               (Option.get (Engine.index engine))
               (Tax.build (Engine.document engine))))
  in
  attempt 1

(* --- subtree-scoped invalidation ------------------------------------------- *)

let test_scoped_invalidation () =
  let doc =
    Tree.of_source
      (Tree.E
         ( "r", [],
           [
             Tree.E ("a", [], [ Tree.E ("x", [], [ Tree.T "1" ]) ]);
             Tree.E ("b", [], [ Tree.E ("y", [], [ Tree.T "2" ]) ]);
           ] ))
  in
  let engine = Engine.of_tree doc in
  let q_x = "//x" and q_y = "//y" in
  ignore (okr (Engine.query_robust engine q_x));
  ignore (okr (Engine.query_robust engine q_y));
  let b =
    let rec find n =
      if Tree.name doc n = "b" then n else find (n + 1)
    in
    find 0
  in
  (* identity replace of the b-subtree: footprint tags {b, y} *)
  let report =
    okr
      (Engine.update_robust engine
         (Update.Replace (Update.By_id b, Tree.to_source doc b)))
  in
  Alcotest.(check int) "only the intersecting plan dropped" 1
    report.Engine.up_plans_dropped;
  (* //x has a disjoint tag set: its warm entry must have survived *)
  let x2 = okr (Engine.query_robust engine q_x) in
  Alcotest.(check int) "//x still a cache hit" 1
    x2.Engine.stats.Smoqe_hype.Stats.plan_cache_hit;
  (* //y intersected the footprint: recompiled *)
  let y2 = okr (Engine.query_robust engine q_y) in
  Alcotest.(check int) "//y was evicted" 0
    y2.Engine.stats.Smoqe_hype.Stats.plan_cache_hit;
  Alcotest.(check int) "tag_drops counted" 1
    (List.assoc "tag_drops" (Engine.plan_cache_counters engine));
  (* answers still correct after the identity edit, of course *)
  Alcotest.(check int) "//y one answer" 1
    (List.length y2.Engine.answers)

(* By-path targeting through a member's view: the path must resolve to
   exactly one node, and resolution happens through the view. *)
let test_by_path_target () =
  let doc = Hospital.generate ~seed:13 ~n_patients:3 ~recursion_depth:1 () in
  let engine = Engine.of_tree ~dtd:Hospital.dtd doc in
  ok (Engine.register_policy engine ~group:"members" Hospital.policy);
  (* ambiguous: several pnames *)
  (match
     Engine.update_robust engine ~group:"members"
       (Update.Delete (Update.By_path "//pname"))
   with
  | Error (Err.Query_error _) -> ()
  | Error e -> Alcotest.failf "ambiguous target: wrong error %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "ambiguous target accepted");
  (* selecting nothing is a query error too *)
  (match
     Engine.update_robust engine
       (Update.Delete (Update.By_path "//no_such_tag_anywhere"))
   with
  | Error (Err.Query_error _) | Error (Err.Policy_error _) -> ()
  | Error e -> Alcotest.failf "empty target: wrong error %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "empty target accepted")

let () =
  Alcotest.run "smoqe_update"
    [
      ( "splice",
        [
          Alcotest.test_case "random edits: spliced = rebuilt, tax = built"
            `Quick test_splice_physical;
          Alcotest.test_case "tag-lineage token" `Quick
            test_token_changes_on_new_tag;
        ] );
      ( "legality",
        [
          Alcotest.test_case "illegal updates denied and no-op" `Quick
            test_denied_is_noop;
          Alcotest.test_case "delete-then-reinsert round-trip" `Quick
            test_delete_reinsert_roundtrip;
          Alcotest.test_case "by-path targets" `Quick test_by_path_target;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "disjoint plans survive" `Quick
            test_scoped_invalidation;
        ] );
    ]
