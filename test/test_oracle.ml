(* The differential conformance battery: the serving engine (rewrite +
   HyPE, cache cold and warm, Dom and Stax) against the naive oracle
   (materialize the view, evaluate on the copy, map provenance back).
   The two paths share no evaluation code, so agreement is evidence. *)

module Engine = Smoqe.Engine
module Session = Smoqe.Session
module Stats = Smoqe_hype.Stats
module Derive = Smoqe_security.Derive
module Materialize = Smoqe_security.Materialize
module Naive = Smoqe_baseline.Naive
module Hospital = Smoqe_workload.Hospital
module Bib = Smoqe_workload.Bib
module Queries = Smoqe_workload.Queries
module Random_dtd = Smoqe_workload.Random_dtd
module Docgen = Smoqe_workload.Docgen
module Dtd = Smoqe_xml.Dtd
module Rx_parser = Smoqe_rxpath.Parser
module Pretty = Smoqe_rxpath.Pretty
module Pool = Smoqe_exec.Pool
module Err = Smoqe_robust.Error

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let parse s = ok (Rx_parser.path_of_string s)

(* Naive-on-the-materialized-view oracle: answers as document node ids. *)
let oracle view doc path =
  let m = Materialize.materialize view doc in
  (Naive.run m.Materialize.tree path).Naive.answers
  |> List.map (fun v -> m.Materialize.provenance.(v))
  |> List.sort_uniq compare

let visible_set view doc =
  let m = Materialize.materialize view doc in
  Array.fold_left
    (fun acc id -> List.cons id acc)
    [] m.Materialize.provenance

let modes = [ (Engine.Dom, "dom"); (Engine.Stax, "stax") ]

(* One workload: every query, both modes, cold then warm; the warm run
   must be a cache hit and byte-identical to the cold one. *)
let battery ~name ~dtd ~policy ~doc queries =
  let engine = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy engine ~group:"members" policy);
  let view =
    match Engine.view engine ~group:"members" with
    | Some v -> v
    | None -> Alcotest.fail "view not registered"
  in
  let visible = visible_set view doc in
  List.iter
    (fun (qname, text) ->
      let path = parse text in
      let expected = oracle view doc path in
      (* the two oracle spellings agree with each other too *)
      Alcotest.(check (list int))
        (Printf.sprintf "%s %s: naive oracle = doc_answers" name qname)
        (Materialize.doc_answers view doc path)
        expected;
      List.iter
        (fun (mode, mname) ->
          let label what =
            Printf.sprintf "%s %s (%s, %s)" name qname mname what
          in
          let run () = ok (Engine.query engine ~group:"members" ~mode text) in
          let cold = run () in
          Alcotest.(check (list int)) (label "answers")
            expected
            (List.sort_uniq compare cold.Engine.answers);
          List.iter
            (fun id ->
              if not (List.mem id visible) then
                Alcotest.failf "%s: node %d is policy-hidden" (label "leak") id)
            cold.Engine.answers;
          let warm = run () in
          Alcotest.(check int) (label "warm hit") 1
            warm.Engine.stats.Stats.plan_cache_hit;
          Alcotest.(check (list int)) (label "warm answers") cold.Engine.answers
            warm.Engine.answers;
          Alcotest.(check (list string)) (label "warm xml") cold.Engine.answer_xml
            warm.Engine.answer_xml;
          (* Tables off: the generic engine must be byte-identical to the
             table-driven default, and record no memo activity. *)
          let generic =
            ok
              (Engine.query engine ~group:"members" ~mode ~use_tables:false
                 text)
          in
          Alcotest.(check (list int)) (label "generic answers")
            cold.Engine.answers generic.Engine.answers;
          Alcotest.(check (list string)) (label "generic xml")
            cold.Engine.answer_xml generic.Engine.answer_xml;
          Alcotest.(check int) (label "generic memo quiet") 0
            (generic.Engine.stats.Stats.memo_hits
            + generic.Engine.stats.Stats.memo_misses))
        modes)
    queries

let test_hospital () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  battery ~name:"hospital" ~dtd:Hospital.dtd ~policy:Hospital.policy ~doc
    (Queries.suite @ Queries.view_suite)

let test_bib () =
  let doc = Bib.generate ~seed:11 ~n_books:4 ~section_depth:3 () in
  battery ~name:"bib" ~dtd:Bib.dtd ~policy:Bib.policy ~doc Queries.bib_suite

(* Sessions take the same road as Engine.query; spot-check the oracle holds
   through the login path too. *)
let test_session_oracle () =
  let doc = Hospital.generate ~seed:13 ~n_patients:3 ~recursion_depth:1 () in
  let engine = Engine.of_tree ~dtd:Hospital.dtd doc in
  ok (Engine.register_policy engine ~group:"members" Hospital.policy);
  let view = Option.get (Engine.view engine ~group:"members") in
  let session = ok (Session.login engine (Session.Member "members")) in
  List.iter
    (fun (qname, text) ->
      let outcome = ok (Session.run session text) in
      Alcotest.(check (list int)) qname
        (oracle view doc (parse text))
        (List.sort_uniq compare outcome.Engine.answers))
    Queries.view_suite

(* --- Random property: Dom = Stax = oracle, warm = cold --------------------- *)

let property_case seed =
  let dtd = Random_dtd.generate ~seed ~n_types:(3 + (seed mod 5))
      ~recursion:(seed mod 2 = 0) ()
  in
  let policy = Random_dtd.random_policy ~seed:(seed * 3 + 1) dtd in
  let doc =
    try Some (Docgen.generate ~seed:(seed * 5 + 2) ~max_depth:8 ~fanout:2 dtd)
    with Docgen.No_finite_expansion _ -> None
  in
  match doc with
  | None -> ()
  | Some doc ->
    let engine = Engine.of_tree ~dtd doc in
    (match Engine.register_policy engine ~group:"members" policy with
    | Error _ -> () (* derivation unsupported for this draw: skip *)
    | Ok () ->
      let view = Option.get (Engine.view engine ~group:"members") in
      let tags = Dtd.element_names (Derive.view_dtd view) in
      let query =
        Random_dtd.random_query ~seed:(seed * 7 + 3) ~size:6 ~tags ()
      in
      let text = Pretty.path_to_string query in
      let expected = oracle view doc query in
      let run mode = ok (Engine.query engine ~group:"members" ~mode text) in
      let dom = run Engine.Dom in
      let stax = run Engine.Stax in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: dom = oracle (%s)" seed text)
        expected
        (List.sort_uniq compare dom.Engine.answers);
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: stax = dom (%s)" seed text)
        (List.sort_uniq compare dom.Engine.answers)
        (List.sort_uniq compare stax.Engine.answers);
      let warm = run Engine.Dom in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: warm is a hit" seed)
        1 warm.Engine.stats.Stats.plan_cache_hit;
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: warm xml identical" seed)
        dom.Engine.answer_xml warm.Engine.answer_xml;
      (* tables off, both modes: byte-identical to the table-driven runs *)
      List.iter
        (fun (mode, mname, reference) ->
          let generic =
            ok (Engine.query engine ~group:"members" ~mode ~use_tables:false text)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d: generic %s xml identical (%s)" seed mname
               text)
            reference.Engine.answer_xml generic.Engine.answer_xml)
        [ (Engine.Dom, "dom", dom); (Engine.Stax, "stax", stax) ])

let test_property () =
  for seed = 1 to 40 do
    property_case seed
  done

(* --- Parallel serving: the domain pool vs the sequential engine ------------ *)

(* One workload through a 4-domain pool.  The sequential reference runs on
   its own engine (sharing nothing with the pool run), then the parallel
   engine serves the batch twice: cold (every plan compiled under
   contention) and warm (every run a cache hit).  Both must be
   byte-identical to the reference — answer ids and serialized XML. *)
let parallel_battery ~name ~dtd ~policy ~doc queries =
  let ref_engine = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy ref_engine ~group:"members" policy);
  let reference =
    List.map
      (fun (_, text) ->
        (ok (Engine.query ref_engine ~group:"members" text)).Engine.answer_xml)
      queries
  in
  let engine = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy engine ~group:"members" policy);
  Pool.with_pool ~domains:4 (fun pool ->
      let texts = List.map snd queries in
      let serve label ~expect_hits =
        let results, agg =
          Engine.run_batch engine ~pool ~group:"members" texts
        in
        List.iteri
          (fun i r ->
            let qname = fst (List.nth queries i) in
            match r with
            | Error e ->
              Alcotest.failf "%s %s (%s): %s" name qname label (Err.to_string e)
            | Ok o ->
              Alcotest.(check (list string))
                (Printf.sprintf "%s %s (%s): pool = sequential" name qname label)
                (List.nth reference i)
                o.Engine.answer_xml)
          results;
        if expect_hits then
          (* flags aggregate to counts: a fully warm batch hits every time *)
          Alcotest.(check int)
            (Printf.sprintf "%s (%s): every run a cache hit" name label)
            (List.length queries)
            agg.Stats.plan_cache_hit
      in
      serve "pool cold" ~expect_hits:false;
      serve "pool warm" ~expect_hits:true)

let test_parallel_hospital () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  parallel_battery ~name:"hospital" ~dtd:Hospital.dtd ~policy:Hospital.policy
    ~doc
    (Queries.suite @ Queries.view_suite)

let test_parallel_bib () =
  let doc = Bib.generate ~seed:11 ~n_books:4 ~section_depth:3 () in
  parallel_battery ~name:"bib" ~dtd:Bib.dtd ~policy:Bib.policy ~doc
    Queries.bib_suite

(* Random DTD/policy draws through one long-lived pool: whatever the draw,
   pooled answers must match inline answers on the same engine. *)
let test_parallel_property () =
  Pool.with_pool ~domains:4 (fun pool ->
      for seed = 1 to 20 do
        let dtd =
          Random_dtd.generate ~seed ~n_types:(3 + (seed mod 5))
            ~recursion:(seed mod 2 = 0) ()
        in
        let policy = Random_dtd.random_policy ~seed:(seed * 3 + 1) dtd in
        match Docgen.generate ~seed:(seed * 5 + 2) ~max_depth:8 ~fanout:2 dtd with
        | exception Docgen.No_finite_expansion _ -> ()
        | doc ->
          let engine = Engine.of_tree ~dtd doc in
          (match Engine.register_policy engine ~group:"members" policy with
          | Error _ -> () (* derivation unsupported for this draw: skip *)
          | Ok () ->
            let view = Option.get (Engine.view engine ~group:"members") in
            let tags = Dtd.element_names (Derive.view_dtd view) in
            let texts =
              List.map
                (fun s ->
                  Pretty.path_to_string
                    (Random_dtd.random_query ~seed:s ~size:6 ~tags ()))
                [ (seed * 7) + 3; (seed * 11) + 5; (seed * 13) + 9 ]
            in
            let inline =
              List.map
                (fun t ->
                  (ok (Engine.query engine ~group:"members" t)).Engine.answer_xml)
                texts
            in
            let results, _ =
              Engine.run_batch engine ~pool ~group:"members" texts
            in
            List.iteri
              (fun i r ->
                match r with
                | Error e ->
                  Alcotest.failf "seed %d q%d: %s" seed i (Err.to_string e)
                | Ok o ->
                  Alcotest.(check (list string))
                    (Printf.sprintf "seed %d q%d: pool = inline" seed i)
                    (List.nth inline i) o.Engine.answer_xml)
              results)
      done)

(* --- Shared-automaton batch serving: run_many vs N sequential runs -------- *)

(* The full batch matrix: Dom/Stax x tables on/off x cold/warm.  The
   sequential reference runs on its own engine (sharing nothing with the
   batch engine), and the batch carries a duplicate of its first query so
   the dedup fan-out is exercised in every cell.  Byte-identical means
   answer ids AND serialized XML. *)
let batch_battery ~name ~dtd ~policy ~doc queries =
  let texts = List.map snd queries @ [ snd (List.hd queries) ] in
  let ref_engine = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy ref_engine ~group:"members" policy);
  List.iter
    (fun (mode, mname) ->
      List.iter
        (fun use_tables ->
          let reference =
            List.map
              (fun text ->
                ok
                  (Engine.query ref_engine ~group:"members" ~mode ~use_tables
                     text))
              texts
          in
          (* a fresh batch engine per cell, so cold really is cold *)
          let engine = Engine.of_tree ~dtd doc in
          ok (Engine.register_policy engine ~group:"members" policy);
          let serve what ~expect_hit =
            let label s =
              Printf.sprintf "%s (%s, tables %b, %s): %s" name mname use_tables
                what s
            in
            let results, agg =
              Engine.run_many engine ~group:"members" ~mode ~use_tables texts
            in
            Alcotest.(check int)
              (label "one slot per query")
              (List.length texts) (Array.length results);
            Array.iteri
              (fun i r ->
                match r with
                | Error e -> Alcotest.failf "%s: %s" (label "member") e
                | Ok o ->
                  let re = List.nth reference i in
                  Alcotest.(check (list int))
                    (label (Printf.sprintf "answers %d" i))
                    re.Engine.answers o.Engine.answers;
                  Alcotest.(check (list string))
                    (label (Printf.sprintf "xml %d" i))
                    re.Engine.answer_xml o.Engine.answer_xml)
              results;
            (* the appended duplicate must have collapsed onto its twin's
               accept set: fewer merged queries than batch slots *)
            Alcotest.(check bool)
              (label "duplicate deduped")
              true
              (agg.Stats.batch_queries > 0
              && agg.Stats.batch_queries < List.length texts);
            Alcotest.(check int)
              (label "plan cache")
              (if expect_hit then 1 else 0)
              agg.Stats.plan_cache_hit
          in
          serve "cold" ~expect_hit:false;
          serve "warm" ~expect_hit:true)
        [ true; false ])
    modes

let test_batch_hospital () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  batch_battery ~name:"hospital" ~dtd:Hospital.dtd ~policy:Hospital.policy ~doc
    (Queries.suite @ Queries.view_suite)

let test_batch_bib () =
  let doc = Bib.generate ~seed:11 ~n_books:4 ~section_depth:3 () in
  batch_battery ~name:"bib" ~dtd:Bib.dtd ~policy:Bib.policy ~doc
    Queries.bib_suite

(* The sharded form: one shared pass per pool worker, results re-concatenated
   in submission order. *)
let batch_pooled ~name ~dtd ~policy ~doc queries =
  let texts = List.map snd queries @ [ snd (List.hd queries) ] in
  let ref_engine = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy ref_engine ~group:"members" policy);
  let reference =
    List.map
      (fun text ->
        (ok (Engine.query ref_engine ~group:"members" text)).Engine.answer_xml)
      texts
  in
  let engine = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy engine ~group:"members" policy);
  Pool.with_pool ~domains:4 (fun pool ->
      let results, _ =
        Engine.run_many_pooled engine ~pool ~group:"members" texts
      in
      Array.iteri
        (fun i r ->
          match r with
          | Error e ->
            Alcotest.failf "%s pooled batch %d: %s" name i (Err.to_string e)
          | Ok o ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s pooled batch %d: sharded = sequential" name i)
              (List.nth reference i) o.Engine.answer_xml)
        results)

let test_batch_pooled_hospital () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  batch_pooled ~name:"hospital" ~dtd:Hospital.dtd ~policy:Hospital.policy ~doc
    (Queries.suite @ Queries.view_suite)

let test_batch_pooled_bib () =
  let doc = Bib.generate ~seed:11 ~n_books:4 ~section_depth:3 () in
  batch_pooled ~name:"bib" ~dtd:Bib.dtd ~policy:Bib.policy ~doc
    Queries.bib_suite

(* A malformed member fails alone: every other slot is still served. *)
let test_batch_bad_member () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  let engine = Engine.of_tree ~dtd:Hospital.dtd doc in
  ok (Engine.register_policy engine ~group:"members" Hospital.policy);
  let good = List.map snd Queries.view_suite in
  let texts =
    match good with
    | g0 :: rest -> (g0 :: "[[[ not a query" :: rest) @ [ g0 ]
    | [] -> Alcotest.fail "empty view suite"
  in
  let reference =
    List.map
      (fun text ->
        match Engine.query engine ~group:"members" text with
        | Ok o -> Some o.Engine.answer_xml
        | Error _ -> None)
      texts
  in
  let results, _ = Engine.run_many engine ~group:"members" texts in
  Array.iteri
    (fun i r ->
      match (r, List.nth reference i) with
      | Error _, None -> ()
      | Ok o, Some xml ->
        Alcotest.(check (list string))
          (Printf.sprintf "surviving member %d" i)
          xml o.Engine.answer_xml
      | Ok _, None -> Alcotest.failf "member %d should have failed" i
      | Error e, Some _ -> Alcotest.failf "member %d failed: %s" i e)
    results

(* Random DTD/policy draws: batch answers equal per-query answers on the
   same engine, Dom and Stax, with a duplicated member each draw. *)
let test_batch_property () =
  for seed = 1 to 20 do
    let dtd =
      Random_dtd.generate ~seed ~n_types:(3 + (seed mod 5))
        ~recursion:(seed mod 2 = 0) ()
    in
    let policy = Random_dtd.random_policy ~seed:(seed * 3 + 1) dtd in
    match Docgen.generate ~seed:(seed * 5 + 2) ~max_depth:8 ~fanout:2 dtd with
    | exception Docgen.No_finite_expansion _ -> ()
    | doc ->
      let engine = Engine.of_tree ~dtd doc in
      (match Engine.register_policy engine ~group:"members" policy with
      | Error _ -> () (* derivation unsupported for this draw: skip *)
      | Ok () ->
        let view = Option.get (Engine.view engine ~group:"members") in
        let tags = Dtd.element_names (Derive.view_dtd view) in
        let base =
          List.map
            (fun s ->
              Pretty.path_to_string
                (Random_dtd.random_query ~seed:s ~size:6 ~tags ()))
            [ (seed * 7) + 3; (seed * 11) + 5; (seed * 13) + 9 ]
        in
        let texts = base @ [ List.hd base ] in
        List.iter
          (fun (mode, mname) ->
            let inline =
              List.map
                (fun t ->
                  (ok (Engine.query engine ~group:"members" ~mode t))
                    .Engine.answer_xml)
                texts
            in
            let results, _ =
              Engine.run_many engine ~group:"members" ~mode texts
            in
            Array.iteri
              (fun i r ->
                match r with
                | Error e ->
                  Alcotest.failf "seed %d %s q%d: %s" seed mname i e
                | Ok o ->
                  Alcotest.(check (list string))
                    (Printf.sprintf "seed %d %s q%d: batch = inline" seed
                       mname i)
                    (List.nth inline i) o.Engine.answer_xml)
              results)
          modes)
  done

(* Spot-check the session road: run_many under a member login equals the
   member's own sequential runs. *)
let test_batch_session () =
  let doc = Hospital.generate ~seed:13 ~n_patients:3 ~recursion_depth:1 () in
  let engine = Engine.of_tree ~dtd:Hospital.dtd doc in
  ok (Engine.register_policy engine ~group:"members" Hospital.policy);
  let session = ok (Session.login engine (Session.Member "members")) in
  let texts = List.map snd Queries.view_suite in
  let reference =
    List.map (fun t -> (ok (Session.run session t)).Engine.answer_xml) texts
  in
  let results, _ = Session.run_many session texts in
  Array.iteri
    (fun i r ->
      match r with
      | Error e -> Alcotest.failf "session batch %d: %s" i e
      | Ok o ->
        Alcotest.(check (list string))
          (Printf.sprintf "session batch %d" i)
          (List.nth reference i) o.Engine.answer_xml)
    results

(* --- The write-path differential oracle ------------------------------------ *)

(* The invariant: after any legal update sequence, `update; query` is
   byte-identical to `re-materialize from scratch; query` — a fresh
   engine built from the updated tree, with the policy re-registered and
   the index rebuilt, answering with none of the incrementally
   maintained state (spliced TAX, surviving plans, frozen tables).  The
   two paths share the compiled automaton but none of the maintenance
   code, so agreement is evidence the splices are right. *)

module Update = Smoqe_update.Update
module Tree = Smoqe_xml.Tree
module Tax = Smoqe_tax.Tax
module Serializer = Smoqe_xml.Serializer

let okr = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Err.to_string e)

(* A random legal update sequence applied as admin: candidates are drawn
   from the live document each step (ids shift as edits land); a
   candidate the DTD rejects is skipped — identity replaces always
   apply, so the sequence never stalls.  Text rewrites change answer
   content, delete/duplicate change answer sets: the oracle is not
   comparing fixed points. *)
let random_updates ~seed ~steps engine =
  let rng = Random.State.make [| seed |] in
  let applied = ref 0 in
  for step = 1 to steps do
    let doc = Engine.document engine in
    let n_nodes = Tree.n_nodes doc in
    if n_nodes > 1 then begin
      let n = 1 + Random.State.int rng (n_nodes - 1) in
      let op =
        match Random.State.int rng 4 with
        | 0 -> Update.Replace (Update.By_id n, Tree.to_source doc n)
        | 1 when Tree.is_text doc n ->
          Update.Replace (Update.By_id n, Tree.T (Printf.sprintf "w%d" step))
        | 1 | 2 -> Update.Delete (Update.By_id n)
        | _ ->
          let p = Option.get (Tree.parent doc n) in
          Update.Insert
            { parent = Update.By_id p; before = Some n;
              source = Tree.to_source doc n }
      in
      match Engine.update_robust engine op with
      | Ok _ -> incr applied
      | Error (Err.Parse_error _) -> ()  (* the DTD rejected it: skip *)
      | Error e ->
        Alcotest.failf "seed %d step %d: %s" seed step (Err.to_string e)
    end
  done;
  if !applied = 0 then begin
    (* every random draw was DTD-rejected: an identity replace of the
       root always applies, so the sequence is never empty *)
    let doc = Engine.document engine in
    match
      Engine.update_robust engine
        (Update.Replace (Update.By_id Tree.root, Tree.to_source doc Tree.root))
    with
    | Ok _ -> incr applied
    | Error e -> Alcotest.failf "seed %d fallback: %s" seed (Err.to_string e)
  end;
  !applied

let write_battery ~name ~dtd ~policy ~doc ~seed queries =
  let engine = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy engine ~group:"members" policy);
  Engine.build_index engine;
  (* warm the cache first so the update sequence exercises scoped
     invalidation on live entries *)
  List.iter
    (fun (_, text) ->
      ignore (okr (Engine.query_robust engine ~group:"members" text)))
    queries;
  let applied = random_updates ~seed ~steps:12 engine in
  Alcotest.(check bool) (name ^ ": updates applied") true (applied > 0);
  let updated = Engine.document engine in
  (* reference: re-materialize everything from scratch *)
  let fresh = Engine.of_tree ~dtd updated in
  ok (Engine.register_policy fresh ~group:"members" policy);
  Engine.build_index fresh;
  Alcotest.(check bool) (name ^ ": spliced index = rebuilt index") true
    (Tax.equal
       (Option.get (Engine.index engine))
       (Option.get (Engine.index fresh)));
  List.iter
    (fun (mode, mname) ->
      List.iter
        (fun use_tables ->
          List.iter
            (fun (qname, text) ->
              let label what =
                Printf.sprintf "%s %s (%s, tables %b, %s)" name qname mname
                  use_tables what
              in
              let reference =
                okr
                  (Engine.query_robust fresh ~group:"members" ~mode ~use_tables
                     text)
              in
              let cold =
                okr
                  (Engine.query_robust engine ~group:"members" ~mode
                     ~use_tables text)
              in
              Alcotest.(check (list int)) (label "answers")
                reference.Engine.answers cold.Engine.answers;
              Alcotest.(check (list string)) (label "xml")
                reference.Engine.answer_xml cold.Engine.answer_xml;
              let warm =
                okr
                  (Engine.query_robust engine ~group:"members" ~mode
                     ~use_tables text)
              in
              Alcotest.(check (list string)) (label "warm xml")
                reference.Engine.answer_xml warm.Engine.answer_xml)
            queries)
        [ true; false ])
    modes;
  (* wholesale replace_document remains byte-identical to both *)
  let whole = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy whole ~group:"members" policy);
  ok (Engine.replace_document whole updated);
  Engine.build_index whole;
  List.iter
    (fun (qname, text) ->
      let reference = okr (Engine.query_robust fresh ~group:"members" text) in
      let o = okr (Engine.query_robust whole ~group:"members" text) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s %s: replace_document agrees" name qname)
        reference.Engine.answer_xml o.Engine.answer_xml)
    queries;
  (* pooled at 4 domains: the updated engine serves the whole suite
     sharded, byte-identical to the fresh reference *)
  Pool.with_pool ~domains:4 (fun pool ->
      let texts = List.map snd queries in
      let reference =
        List.map
          (fun t ->
            (okr (Engine.query_robust fresh ~group:"members" t))
              .Engine.answer_xml)
          texts
      in
      let results, _ =
        Engine.run_many_pooled engine ~pool ~group:"members" texts
      in
      Array.iteri
        (fun i r ->
          match r with
          | Error e ->
            Alcotest.failf "%s pooled %d: %s" name i (Err.to_string e)
          | Ok o ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s pooled %d: updated engine = fresh" name i)
              (List.nth reference i) o.Engine.answer_xml)
        results)

let test_write_hospital () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  write_battery ~name:"hospital" ~dtd:Hospital.dtd ~policy:Hospital.policy
    ~doc ~seed:101
    (Queries.suite @ Queries.view_suite)

let test_write_bib () =
  let doc = Bib.generate ~seed:11 ~n_books:4 ~section_depth:3 () in
  write_battery ~name:"bib" ~dtd:Bib.dtd ~policy:Bib.policy ~doc ~seed:103
    Queries.bib_suite

(* Random DTD draws: a handful of updates, then Dom and Stax answers of
   the updated engine against the from-scratch rebuild. *)
let test_write_property () =
  for seed = 1 to 20 do
    let dtd =
      Random_dtd.generate ~seed ~n_types:(3 + (seed mod 5))
        ~recursion:(seed mod 2 = 0) ()
    in
    let policy = Random_dtd.random_policy ~seed:(seed * 3 + 1) dtd in
    match Docgen.generate ~seed:(seed * 5 + 2) ~max_depth:8 ~fanout:2 dtd with
    | exception Docgen.No_finite_expansion _ -> ()
    | doc ->
      let engine = Engine.of_tree ~dtd doc in
      (match Engine.register_policy engine ~group:"members" policy with
      | Error _ -> ()  (* derivation unsupported for this draw: skip *)
      | Ok () ->
        Engine.build_index engine;
        let view = Option.get (Engine.view engine ~group:"members") in
        let tags = Dtd.element_names (Derive.view_dtd view) in
        let texts =
          List.map
            (fun s ->
              Pretty.path_to_string
                (Random_dtd.random_query ~seed:s ~size:6 ~tags ()))
            [ (seed * 7) + 3; (seed * 11) + 5; (seed * 13) + 9 ]
        in
        (* warm, update, compare against the from-scratch rebuild *)
        List.iter
          (fun t ->
            ignore (okr (Engine.query_robust engine ~group:"members" t)))
          texts;
        let applied = random_updates ~seed:(seed * 19 + 7) ~steps:6 engine in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: updates applied" seed)
          true (applied > 0);
        let fresh = Engine.of_tree ~dtd (Engine.document engine) in
        ok (Engine.register_policy fresh ~group:"members" policy);
        Engine.build_index fresh;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: spliced index = rebuilt" seed)
          true
          (Tax.equal
             (Option.get (Engine.index engine))
             (Option.get (Engine.index fresh)));
        List.iter
          (fun (mode, mname) ->
            List.iter
              (fun t ->
                let reference =
                  okr (Engine.query_robust fresh ~group:"members" ~mode t)
                in
                let o =
                  okr (Engine.query_robust engine ~group:"members" ~mode t)
                in
                Alcotest.(check (list string))
                  (Printf.sprintf "seed %d %s %s: updated = fresh" seed mname
                     t)
                  reference.Engine.answer_xml o.Engine.answer_xml)
              texts)
          modes)
  done

(* --- multi-tenancy: shared artifacts vs per-tenant cold derivation ------

   Tenants sharing a canonical policy key serve through ONE derived view
   and one cached plan per query; the differential claim is that this
   sharing is invisible — every tenant's answers are byte-identical to a
   cold engine that derived the tenant's policy privately, and no tenant
   ever sees a node outside its own materialized view. *)

let policy_of_text dtd text = ok (Smoqe_security.Policy.of_string dtd text)

(* the everything-visible contrast policy: no annotation, default Allow *)
let open_policy dtd = policy_of_text dtd ""

let tenant_reference ~dtd ~policy ~doc =
  let cold = Engine.of_tree ~dtd doc in
  ok (Engine.register_policy cold ~group:"members" policy);
  let view = Option.get (Engine.view cold ~group:"members") in
  (cold, visible_set view doc)

let test_tenant_shared_vs_cold () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  let dtd = Hospital.dtd in
  let engine = Engine.of_tree ~dtd doc in
  let tenants = [ "t0"; "t1"; "t2"; "t3" ] in
  List.iter
    (fun t ->
      ignore (ok (Engine.register_tenant engine ~tenant:t Hospital.policy)))
    tenants;
  let counters = Engine.tenant_counters engine in
  Alcotest.(check int) "one policy key" 1 (List.assoc "policy_keys" counters);
  Alcotest.(check int) "one derivation" 1 (List.assoc "derivations" counters);
  Alcotest.(check int) "three key hits" 3
    (List.assoc "policy_key_hits" counters);
  let cold, visible = tenant_reference ~dtd ~policy:Hospital.policy ~doc in
  List.iter
    (fun (qname, text) ->
      List.iter
        (fun (mode, mname) ->
          let reference = ok (Engine.query cold ~group:"members" ~mode text) in
          List.iteri
            (fun i t ->
              let label what =
                Printf.sprintf "%s (%s, tenant %s, %s)" qname mname t what
              in
              let o = okr (Engine.query_robust engine ~tenant:t ~mode text) in
              Alcotest.(check (list int)) (label "answers")
                reference.Engine.answers o.Engine.answers;
              Alcotest.(check (list string)) (label "xml")
                reference.Engine.answer_xml o.Engine.answer_xml;
              List.iter
                (fun id ->
                  if not (List.mem id visible) then
                    Alcotest.failf "%s: node %d is policy-hidden"
                      (label "leak") id)
                o.Engine.answers;
              (* every tenant after the first rides the first tenant's
                 compiled plan: cross-tenant reuse, the point of the key *)
              if i > 0 then begin
                Alcotest.(check int) (label "cross-tenant plan hit") 1
                  o.Engine.stats.Stats.plan_cache_hit;
                Alcotest.(check int) (label "policy-key hit") 1
                  o.Engine.stats.Stats.policy_key_hits
              end)
            tenants)
        modes)
    (Queries.suite @ Queries.view_suite)

let test_tenant_isolation () =
  let doc = Hospital.generate ~seed:7 ~n_patients:4 ~recursion_depth:2 () in
  let dtd = Hospital.dtd in
  let engine = Engine.of_tree ~dtd doc in
  ignore (ok (Engine.register_tenant engine ~tenant:"locked" Hospital.policy));
  ignore (ok (Engine.register_tenant engine ~tenant:"open" (open_policy dtd)));
  Alcotest.(check int) "two keys" 2
    (List.assoc "policy_keys" (Engine.tenant_counters engine));
  let _, visible_locked =
    tenant_reference ~dtd ~policy:Hospital.policy ~doc
  in
  let cold_open, visible_open =
    tenant_reference ~dtd ~policy:(open_policy dtd) ~doc
  in
  List.iter
    (fun (qname, text) ->
      List.iter
        (fun (mode, mname) ->
          let locked =
            okr (Engine.query_robust engine ~tenant:"locked" ~mode text)
          in
          List.iter
            (fun id ->
              if not (List.mem id visible_locked) then
                Alcotest.failf "%s (%s): locked tenant sees hidden node %d"
                  qname mname id)
            locked.Engine.answers;
          let opened =
            okr (Engine.query_robust engine ~tenant:"open" ~mode text)
          in
          let reference =
            ok (Engine.query cold_open ~group:"members" ~mode text)
          in
          Alcotest.(check (list int))
            (Printf.sprintf "%s (%s): open tenant = open cold" qname mname)
            reference.Engine.answers opened.Engine.answers;
          List.iter
            (fun id ->
              if not (List.mem id visible_open) then
                Alcotest.failf "%s (%s): open tenant leak %d" qname mname id)
            opened.Engine.answers)
        modes)
    (Queries.suite @ Queries.view_suite);
  (* S0 hides pname entirely: the locked tenant must see none, ever *)
  let o = okr (Engine.query_robust engine ~tenant:"locked" "//pname") in
  Alcotest.(check (list int)) "locked //pname is empty" [] o.Engine.answers;
  let o = okr (Engine.query_robust engine ~tenant:"open" "//pname") in
  Alcotest.(check bool) "open //pname is not" true (o.Engine.answers <> [])

let test_tenant_churn_and_update () =
  let doc = Hospital.generate ~seed:9 ~n_patients:3 ~recursion_depth:1 () in
  let dtd = Hospital.dtd in
  let engine = Engine.of_tree ~dtd doc in
  List.iter
    (fun t ->
      ignore (ok (Engine.register_tenant engine ~tenant:t Hospital.policy)))
    [ "t0"; "t1" ];
  let queries = Queries.suite @ Queries.view_suite in
  (* warm the shared plans, then update through the tenant-less admin
     path: tenant answers must keep matching a from-scratch derivation
     over the updated document *)
  List.iter
    (fun (_, text) ->
      ignore (okr (Engine.query_robust engine ~tenant:"t0" text)))
    queries;
  let applied = random_updates ~seed:41 ~steps:8 engine in
  Alcotest.(check bool) "updates applied" true (applied > 0);
  let updated = Engine.document engine in
  let cold, visible =
    tenant_reference ~dtd ~policy:Hospital.policy ~doc:updated
  in
  List.iter
    (fun (qname, text) ->
      let reference = ok (Engine.query cold ~group:"members" text) in
      List.iter
        (fun t ->
          let o = okr (Engine.query_robust engine ~tenant:t text) in
          Alcotest.(check (list string))
            (Printf.sprintf "%s after update (tenant %s)" qname t)
            reference.Engine.answer_xml o.Engine.answer_xml;
          List.iter
            (fun id ->
              if not (List.mem id visible) then
                Alcotest.failf "%s after update: leak %d" qname id)
            o.Engine.answers)
        [ "t0"; "t1" ])
    queries;
  (* churn t1 onto the open policy: t1 follows its new view immediately,
     t0 keeps the old artifacts *)
  ignore (ok (Engine.register_tenant engine ~tenant:"t1" (open_policy dtd)));
  let cold_open, _ =
    tenant_reference ~dtd ~policy:(open_policy dtd) ~doc:updated
  in
  List.iter
    (fun (qname, text) ->
      let ref_locked = ok (Engine.query cold ~group:"members" text) in
      let ref_open = ok (Engine.query cold_open ~group:"members" text) in
      let o0 = okr (Engine.query_robust engine ~tenant:"t0" text) in
      let o1 = okr (Engine.query_robust engine ~tenant:"t1" text) in
      Alcotest.(check (list string))
        (qname ^ ": t0 unchanged by t1 churn")
        ref_locked.Engine.answer_xml o0.Engine.answer_xml;
      Alcotest.(check (list string))
        (qname ^ ": churned t1 = open cold")
        ref_open.Engine.answer_xml o1.Engine.answer_xml)
    queries;
  (* churn t0 away too: the old key's last holder leaves, its artifacts
     retire (generation bump) and no stale plan may serve either tenant *)
  let gen_before =
    List.assoc "generation" (Engine.tenant_counters engine)
  in
  ignore (ok (Engine.register_tenant engine ~tenant:"t0" (open_policy dtd)));
  let gen_after = List.assoc "generation" (Engine.tenant_counters engine) in
  Alcotest.(check bool) "retirement bumps the generation" true
    (gen_after > gen_before);
  List.iter
    (fun (qname, text) ->
      let ref_open = ok (Engine.query cold_open ~group:"members" text) in
      List.iter
        (fun t ->
          let o = okr (Engine.query_robust engine ~tenant:t text) in
          Alcotest.(check (list string))
            (Printf.sprintf "%s: %s after full churn = open cold" qname t)
            ref_open.Engine.answer_xml o.Engine.answer_xml)
        [ "t0"; "t1" ])
    queries

(* Random tenant pairs over random DTD draws: any two tenants registered
   with the same policy draw must answer byte-identically to the
   per-tenant cold derivation, under shared artifacts. *)
let test_tenant_property () =
  for seed = 1 to 12 do
    let dtd =
      Random_dtd.generate ~seed ~n_types:(3 + (seed mod 5))
        ~recursion:(seed mod 2 = 0) ()
    in
    let policy = Random_dtd.random_policy ~seed:(seed * 3 + 1) dtd in
    match Docgen.generate ~seed:(seed * 5 + 2) ~max_depth:8 ~fanout:2 dtd with
    | exception Docgen.No_finite_expansion _ -> ()
    | doc ->
      let engine = Engine.of_tree ~dtd doc in
      (match Engine.register_tenant engine ~tenant:"a" policy with
      | Error _ -> ()  (* derivation unsupported for this draw: skip *)
      | Ok _ ->
        ignore (ok (Engine.register_tenant engine ~tenant:"b" policy));
        let cold = Engine.of_tree ~dtd doc in
        ok (Engine.register_policy cold ~group:"members" policy);
        let view = Option.get (Engine.view cold ~group:"members") in
        let visible = visible_set view doc in
        let tags = Dtd.element_names (Derive.view_dtd view) in
        List.iter
          (fun s ->
            let text =
              Pretty.path_to_string
                (Random_dtd.random_query ~seed:s ~size:6 ~tags ())
            in
            let reference = ok (Engine.query cold ~group:"members" text) in
            List.iter
              (fun t ->
                let o = okr (Engine.query_robust engine ~tenant:t text) in
                Alcotest.(check (list string))
                  (Printf.sprintf "seed %d %s (tenant %s)" seed text t)
                  reference.Engine.answer_xml o.Engine.answer_xml;
                List.iter
                  (fun id ->
                    if not (List.mem id visible) then
                      Alcotest.failf "seed %d %s: tenant %s leak %d" seed
                        text t id)
                  o.Engine.answers)
              [ "a"; "b" ])
          [ (seed * 7) + 3; (seed * 11) + 5 ])
  done

let () =
  Alcotest.run "smoqe_oracle"
    [
      ( "differential",
        [
          Alcotest.test_case "hospital battery" `Quick test_hospital;
          Alcotest.test_case "bib battery" `Quick test_bib;
          Alcotest.test_case "session path" `Quick test_session_oracle;
        ] );
      ( "property",
        [ Alcotest.test_case "random views, dom=stax=oracle" `Quick
            test_property ] );
      ( "parallel",
        [
          Alcotest.test_case "hospital via pool" `Quick test_parallel_hospital;
          Alcotest.test_case "bib via pool" `Quick test_parallel_bib;
          Alcotest.test_case "random draws via pool" `Quick
            test_parallel_property;
        ] );
      ( "batch",
        [
          Alcotest.test_case "hospital run_many matrix" `Quick
            test_batch_hospital;
          Alcotest.test_case "bib run_many matrix" `Quick test_batch_bib;
          Alcotest.test_case "hospital sharded across pool" `Quick
            test_batch_pooled_hospital;
          Alcotest.test_case "bib sharded across pool" `Quick
            test_batch_pooled_bib;
          Alcotest.test_case "malformed member fails alone" `Quick
            test_batch_bad_member;
          Alcotest.test_case "random draws, batch = inline" `Quick
            test_batch_property;
          Alcotest.test_case "session road" `Quick test_batch_session;
        ] );
      ( "write-path",
        [
          Alcotest.test_case "hospital: update = rematerialize" `Quick
            test_write_hospital;
          Alcotest.test_case "bib: update = rematerialize" `Quick
            test_write_bib;
          Alcotest.test_case "random draws: update = rematerialize" `Quick
            test_write_property;
        ] );
      ( "tenant",
        [
          Alcotest.test_case "shared artifacts = cold derivation" `Quick
            test_tenant_shared_vs_cold;
          Alcotest.test_case "isolation across distinct keys" `Quick
            test_tenant_isolation;
          Alcotest.test_case "churn + update keep the oracle" `Quick
            test_tenant_churn_and_update;
          Alcotest.test_case "random pairs share one key" `Quick
            test_tenant_property;
        ] );
    ]
