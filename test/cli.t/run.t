The smoqe CLI, end to end on the paper's Fig. 3 example.

Generate the workload artifacts:

  $ smoqe gen --kind hospital --size 2 --depth 1 --seed 3 > hospital.xml
  $ smoqe gen --emit-dtd > hospital.dtd
  $ smoqe gen --emit-policy > s0.policy

The schema graph (iSMOQE's view-definition panel, Fig. 2):

  $ smoqe schema hospital.dtd
  schema (root: hospital)
    hospital -> patient*
      patient -> pname, visit*, parent*
        pname -> #PCDATA
        visit -> treatment, date
          treatment -> test | medication
            test -> #PCDATA
            medication -> #PCDATA
          date -> #PCDATA
        parent -> patient
          patient -> (see above)

View derivation (Fig. 3(b) -> 3(c) and 3(d)):

  $ smoqe view -s hospital.dtd -p s0.policy
  == access control policy ==
  ann(hospital, patient) = [visit/treatment/medication = 'autism']
  ann(patient, pname) = N
  ann(patient, visit) = N
  ann(visit, treatment) = [medication]
  ann(treatment, test) = N
  
  == derived view specification ==
  sigma(hospital, patient) = patient[visit/treatment/medication = 'autism']
  sigma(patient, treatment) = visit/treatment[medication]
  sigma(patient, parent) = parent
  sigma(treatment, medication) = medication
  sigma(parent, patient) = patient
  
  == view DTD exposed to users ==
  <!ELEMENT hospital (patient*)>
  <!ELEMENT patient (treatment*, parent*)>
  <!ELEMENT treatment (medication?)>
  <!ELEMENT medication (#PCDATA)>
  <!ELEMENT parent (patient)>



Queries run directly or through the view; hidden types are unreachable:

  $ smoqe query -d hospital.xml -o ids "//pname" | wc -l | tr -d ' '
  3
  $ smoqe query -d hospital.xml -s hospital.dtd -p s0.policy -g staff -o ids "//pname" | wc -l | tr -d ' '
  0

DOM and StAX modes agree:

  $ smoqe query -d hospital.xml --mode dom -o ids "//medication" > dom.ids
  $ smoqe query -d hospital.xml --mode stax -o ids "//medication" > stax.ids
  $ diff dom.ids stax.ids

The rewriter emits an automaton, and DOT when asked:

  $ smoqe rewrite -s hospital.dtd -p s0.policy "patient/treatment" | head -1
  MFA: 27 states, start 0, 2 qualifier(s), 2 atom(s)
  $ smoqe rewrite -s hospital.dtd -p s0.policy --dot "patient" | head -1
  digraph mfa {

The index round-trips through its compressed file form:

  $ smoqe index -d hospital.xml --save hospital.tax
  index written to hospital.tax
  $ test -s hospital.tax

Errors are reported, not crashed on:

  $ smoqe query -d hospital.xml "patient[" 2>&1
  smoqe: query error: at offset 8: expected a step
  [1]
  $ smoqe query -d hospital.xml -g ghosts "patient" 2>&1
  smoqe: policy error: unknown group ghosts
  [1]

Resource budgets: a query over its budget fails with a distinct exit code:

  $ smoqe query -d hospital.xml --max-nodes 5 -o ids "//pname" 2>&1
  smoqe: budget exceeded: max_nodes (limit 5)
  [3]
  $ smoqe query -d hospital.xml --timeout-ms 60000 --max-nodes 100000 -o ids "//pname" | wc -l | tr -d ' '
  3

The plan cache: repeated queries are served compiled, and the counters say
so (saved_compile_ms is wall-clock, so it is filtered out here):

  $ smoqe query -d hospital.xml --repeat 3 --stats -o ids "//pname" 2>&1 \
  >   | sed -n '/-- plan cache --/,$p' | grep -v saved_compile_ms
  -- plan cache --
  hits: 2
  misses: 1
  evictions: 0
  stale_drops: 0
  tag_drops: 0
  entries: 1
  capacity: 128
  $ smoqe query -d hospital.xml --repeat 3 --stats -o ids "//pname" 2>&1 \
  >   | grep 'plan:'
  plan: served from cache

--no-plan-cache disables it: no traffic is recorded, nothing is stored,
and the answers are unchanged:

  $ smoqe query -d hospital.xml --no-plan-cache --repeat 3 --stats -o ids "//pname" 2>&1 \
  >   | sed -n '/-- plan cache --/,$p' | grep -v saved_compile_ms
  -- plan cache --
  hits: 0
  misses: 0
  evictions: 0
  stale_drops: 0
  tag_drops: 0
  entries: 0
  capacity: 0
  $ smoqe query -d hospital.xml --plan-cache 1 -o ids "//pname" > cached.ids
  $ smoqe query -d hospital.xml --no-plan-cache -o ids "//pname" > uncached.ids
  $ diff cached.ids uncached.ids

A budget-tripped query still exits 3 with the cache on:

  $ smoqe query -d hospital.xml --repeat 2 --max-nodes 5 -o ids "//pname" 2>&1
  smoqe: budget exceeded: max_nodes (limit 5)
  [3]

Batch serving: --queries-file answers every query of a file (one per
line, #-comments and blanks skipped) in a single shared-automaton pass.
The duplicated member is deduplicated before compiling — the aggregate
counts 2 merged queries for 3 slots — and answers match the per-query runs:

  $ printf '# the batch\n//pname\n\n//medication\n//pname\n' > batch.txt
  $ smoqe query -d hospital.xml -o ids --queries-file batch.txt
  == query 1: //pname ==
  2
  23
  33
  == query 2: //medication ==
  18
  37
  49
  == query 3: //pname ==
  2
  23
  33
  $ smoqe query -d hospital.xml -o ids --queries-file batch.txt --stats \
  >   | sed -n '/== batch aggregate/,$p' | grep -E 'batch_queries|shared_saved'
  batch_queries: 2
  shared_saved: 1

Sharded across a pool, the batch prints byte-identical output:

  $ smoqe query -d hospital.xml -o ids --queries-file batch.txt > seq.out
  $ smoqe query -d hospital.xml -o ids --jobs 2 --queries-file batch.txt > par.out
  $ diff seq.out par.out

A malformed member fails in its slot without sinking the batch (the exit
code is the first failure's):

  $ printf '//pname\npatient[\n' > bad.txt
  $ smoqe query -d hospital.xml -o ids --queries-file bad.txt
  == query 1: //pname ==
  2
  23
  33
  == query 2: patient[ ==
  error: query error: at offset 8: expected a step
  [1]

A positional QUERY and --queries-file are mutually exclusive:

  $ smoqe query -d hospital.xml --queries-file batch.txt "//pname" 2>&1
  smoqe: a positional QUERY and --queries-file are mutually exclusive
  [1]

The depth budget bounds document ingest itself, not just evaluation:

  $ smoqe query -d hospital.xml --max-depth 2 "//pname" 2>&1
  smoqe: budget exceeded: max_depth (limit 2)
  [3]

Persistent stores:

  $ smoqe store init mystore -d hospital.xml -s hospital.dtd
  store initialized in mystore
  $ smoqe store add-policy mystore researchers -p s0.policy
  policy for group researchers stored
  $ smoqe store info mystore
  document: 53 nodes
  dtd: hospital (9 element types)
  index: loaded
  groups: researchers
  $ smoqe store query mystore -o ids "//pname" | wc -l | tr -d ' '
  3
  $ smoqe store query mystore -g researchers -o ids "//pname" | wc -l | tr -d ' '
  0
  $ smoqe store query mystore -g ghosts "patient" 2>&1
  smoqe: no view registered for group ghosts
  [1]

Malformed input is its own failure class (DESIGN.md §12): parse errors
carry file:line:column and exit 2, distinct from generic failures (1)
and budget trips (3):

  $ printf '<hospital><patient></hospital>' > broken.xml
  $ smoqe query -d broken.xml "//pname" 2>&1
  smoqe: parse error at broken.xml:1:31: closing tag </hospital> does not match <patient>
  [2]
  $ printf '<hospital>&undefined;</hospital>' > badref.xml
  $ smoqe index -d badref.xml 2>&1
  smoqe: parse error at badref.xml:1:22: unknown entity &undefined;
  [2]
  $ smoqe store init brokenstore -d broken.xml -s hospital.dtd 2>&1
  smoqe: parse error at broken.xml:1:31: closing tag </hospital> does not match <patient>
  [2]

A well-formed document that does not validate against the DTD is also
malformed input:

  $ printf '<hospital><mystery/></hospital>' > offschema.xml
  $ smoqe query -d offschema.xml -s hospital.dtd "//pname" 2>&1
  smoqe: parse error: document invalid: node 0 <hospital>: children (mystery) do not match content model patient*
  [2]

The secure update path.  An administrative update succeeds, and a
subsequent query over the written document reflects it:

  $ smoqe query -d hospital.xml -o ids "//pname" | head -1
  2
  $ smoqe update -d hospital.xml -s hospital.dtd --op replace --target-id 2 --xml "<pname>renamed-by-update</pname>" --out updated.xml
  smoqe: update applied at node 2 (53 -> 53 nodes)
  $ smoqe query -d updated.xml "//pname" | grep -c renamed-by-update
  1

A member's update against a view-hidden node is denied with its own
exit code (4), distinct from malformed input (2) and generic failure
(1) -- and the document is untouched:

  $ smoqe update -d hospital.xml -s hospital.dtd -p s0.policy -g staff --op delete --target-id 2 2>&1
  smoqe: update denied: the update target is hidden by the view (node 2)
  [4]

A malformed update -- a broken XML fragment, a missing target, or a
candidate that violates the DTD -- is malformed input (exit 2):

  $ smoqe update -d hospital.xml --op replace --target-id 2 --xml "<broken" 2>&1
  smoqe: parse error: update fragment: 1:8: unexpected end of input
  [2]
  $ smoqe update -d hospital.xml --op replace --xml "<pname>x</pname>" 2>&1
  smoqe: parse error: update: a target is required (--target or --target-id)
  [2]
  $ smoqe update -d hospital.xml -s hospital.dtd --op replace --target-id 2 --xml "<mystery/>" 2>&1
  smoqe: parse error: document invalid: node 1 <patient>: children (mystery, visit, visit,
  visit) do not match content model pname, visit*, parent*
  [2]

Multi-tenant serving.  A tenants file maps tenant names to policy
files; tenants whose policies normalize to the same canonical key share
one derived view and one compiled plan per query (the tenants counters
under --stats show one key, one derivation, and a key hit for the
second registration):

  $ printf '# tenant = policy file\nalice = s0.policy\nbob = s0.policy\n' > tenants.map
  $ smoqe query -d hospital.xml -s hospital.dtd -p s0.policy -g staff -o ids "//medication" > group.ids
  $ smoqe query -d hospital.xml -s hospital.dtd --tenants tenants.map --tenant alice -o ids "//medication" > alice.ids
  $ diff group.ids alice.ids
  $ smoqe query -d hospital.xml -s hospital.dtd --tenants tenants.map --tenant bob --stats -o ids "//medication" | sed -n '/-- tenants --/,$p'
  -- tenants --
  tenants: 2
  policy_keys: 1
  policy_key_hits: 1
  derivations: 1
  generation: 1
  tenant bob: admitted 1, throttled 0

The tenant flags are guarded:

  $ smoqe query -d hospital.xml -s hospital.dtd --tenant alice "//medication" 2>&1
  smoqe: --tenant requires --tenants
  [1]
  $ smoqe query -d hospital.xml -s hospital.dtd --tenants tenants.map --tenant alice -g staff "//medication" 2>&1
  smoqe: --tenant and --group are mutually exclusive
  [1]
  $ smoqe query -d hospital.xml -s hospital.dtd --tenants tenants.map --tenant nobody "//medication" 2>&1
  smoqe: --tenant nobody not in the tenants file
  [1]

Per-tenant admission: --tenant-budget N grants N query tokens; once
they are spent the tenant is throttled with the budget exit code (3),
before any engine work happens:

  $ smoqe query -d hospital.xml -s hospital.dtd --tenants tenants.map --tenant alice --tenant-budget 0 "//medication" 2>&1
  smoqe: budget exceeded: tenant alice admission tokens (limit 0)
  [3]
  $ smoqe query -d hospital.xml -s hospital.dtd --tenants tenants.map --tenant alice --tenant-budget 2 --repeat 2 -o ids "//medication" > two.ids
  $ diff group.ids two.ids
  $ smoqe query -d hospital.xml -s hospital.dtd --tenants tenants.map --tenant alice --tenant-budget 1 --repeat 2 -o ids "//medication" 2>&1
  smoqe: budget exceeded: tenant alice admission tokens (limit 1)
  [3]

Sharded scatter-gather: --shards N serves the document as a federation
of N engine shards; answers merge across shards (byte-identical content
to the single-engine run) and the merged statistics record the fanout:

  $ smoqe query -d hospital.xml "//medication" | sort > one.txt
  $ smoqe query -d hospital.xml --shards 2 "//medication" | sort > fed.txt
  $ diff one.txt fed.txt
  $ smoqe query -d hospital.xml --shards 2 --stats -o ids "//medication" | grep tenancy
  tenancy: 0 policy-key hits, 0 throttled, shard fanout 2

A batch scatters once per shard (one shared-automaton pass over each
slice) and the per-shard statistics aggregate:

  $ printf '//medication\n//pname\n' > fed-queries.txt
  $ smoqe query -d hospital.xml --shards 2 --queries-file fed-queries.txt --stats -o ids | grep -E '^==|^shard_fanout|^tenant_throttled|^policy_key_hits'
  == query 1: //medication ==
  == query 2: //pname ==
  == federation aggregate (2 queries, 2 shards, 1 domains) ==
  policy_key_hits: 0
  tenant_throttled: 0
  shard_fanout: 2

Tenants ride the federation too, with the same throttling exit:

  $ smoqe query -d hospital.xml -s hospital.dtd --tenants tenants.map --tenant alice --shards 2 --tenant-budget 0 "//medication" 2>&1
  smoqe: budget exceeded: tenant alice admission tokens (limit 0)
  [3]
